package er

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/engine"
)

// StageTrace records one pipeline stage execution: wall time under the
// run's clock, input/output sizes, and — for the per-round fusion phases
// — round and inner-iteration counts aggregated across rounds. It is the
// public form of the staged execution engine's trace entry.
type StageTrace struct {
	// Stage names the stage: "tokenize", "block", "iter", "recordgraph",
	// "cliquerank" (or "rss"), "fuse", "cluster", "evaluate".
	Stage string
	// Cached reports that the stage's output was served from a
	// SnapshotCache instead of being computed.
	Cached bool
	// Wall is the stage's wall-clock time, summed across fusion rounds for
	// the per-round phases.
	Wall time.Duration
	// In and Out are the stage's input and output sizes in InUnit/OutUnit
	// (records, terms, pairs, edges, matches, clusters).
	In, Out         int
	InUnit, OutUnit string
	// Rounds counts fusion rounds for the per-round phases; 0 elsewhere.
	Rounds int
	// Iterations sums inner ITER iterations across rounds.
	Iterations int
	// ComponentsFused/ComponentsReused and PairsFused/PairsReused record
	// the delta-scoped resolver's work split for the "deltafuse" stage —
	// components (and their candidate pairs) actually fused this run versus
	// served from the component cache. Zero everywhere else.
	ComponentsFused, ComponentsReused int
	PairsFused, PairsReused           int
	// Events narrates noteworthy stage decisions in order (the blocking
	// degradation steps).
	Events []string
}

// Trace is the ordered stage record of one pipeline execution.
type Trace []StageTrace

// Find returns the first entry for the named stage, or nil.
func (t Trace) Find(stage string) *StageTrace {
	for i := range t {
		if t[i].Stage == stage {
			return &t[i]
		}
	}
	return nil
}

// Total sums the wall time of every recorded stage.
func (t Trace) Total() time.Duration {
	var d time.Duration
	for i := range t {
		d += t[i].Wall
	}
	return d
}

// String renders the trace as an aligned table, one stage per line, with
// events indented beneath their stage.
func (t Trace) String() string {
	var sb strings.Builder
	for _, st := range t {
		fmt.Fprintf(&sb, "%-12s %10s", st.Stage, st.Wall.Round(time.Microsecond))
		if st.InUnit != "" || st.OutUnit != "" {
			fmt.Fprintf(&sb, "  %d %s -> %d %s", st.In, st.InUnit, st.Out, st.OutUnit)
		}
		if st.Rounds > 0 {
			fmt.Fprintf(&sb, "  rounds=%d", st.Rounds)
		}
		if st.Iterations > 0 {
			fmt.Fprintf(&sb, " iterations=%d", st.Iterations)
		}
		if st.ComponentsFused > 0 || st.ComponentsReused > 0 {
			fmt.Fprintf(&sb, "  fused=%d/%dp reused=%d/%dp",
				st.ComponentsFused, st.PairsFused, st.ComponentsReused, st.PairsReused)
		}
		if st.Cached {
			sb.WriteString("  [cached]")
		}
		sb.WriteByte('\n')
		for _, ev := range st.Events {
			fmt.Fprintf(&sb, "             - %s\n", ev)
		}
	}
	return sb.String()
}

// fromEngineTrace converts the engine's trace into the public form.
func fromEngineTrace(et engine.Trace) Trace {
	if len(et) == 0 {
		return nil
	}
	out := make(Trace, len(et))
	for i, st := range et {
		out[i] = StageTrace{
			Stage:            st.Stage,
			Cached:           st.Cached,
			Wall:             st.Wall,
			In:               st.In,
			Out:              st.Out,
			InUnit:           st.InUnit,
			OutUnit:          st.OutUnit,
			Rounds:           st.Rounds,
			Iterations:       st.Iterations,
			ComponentsFused:  st.ComponentsFused,
			ComponentsReused: st.ComponentsReused,
			PairsFused:       st.PairsFused,
			PairsReused:      st.PairsReused,
			Events:           st.Events,
		}
	}
	return out
}

// SnapshotCache shares the pre-matching artifacts of pipeline runs —
// tokenized corpus, blocked candidate graph, degradation report —
// content-keyed by dataset and options, so repeated resolutions of the
// same data skip tokenization and blocking entirely. Hand the same cache
// to many runs via Options.Snapshots; all methods are safe for concurrent
// use. The cached artifacts are immutable and shared, never copied.
type SnapshotCache struct {
	c *engine.Cache
}

// NewSnapshotCache returns a cache holding at most capacity snapshots; a
// non-positive capacity selects the engine default (8). Entries are
// evicted least-recently-used first.
func NewSnapshotCache(capacity int) *SnapshotCache {
	return &SnapshotCache{c: engine.NewCache(capacity)}
}

// CacheStats is a point-in-time view of a SnapshotCache's effectiveness.
type CacheStats struct {
	// Hits and Misses count snapshot lookups since the cache was created.
	Hits, Misses int64
	// Entries is the number of snapshots currently held.
	Entries int
	// ComponentHits and ComponentMisses count per-component fusion-result
	// lookups by the delta-scoped resolver (Collection.Resolve);
	// ComponentEntries is the number of component results currently held.
	ComponentHits, ComponentMisses int64
	ComponentEntries               int
}

// Stats returns the cache's hit/miss counters and current size. A nil
// cache reports zeros.
func (s *SnapshotCache) Stats() CacheStats {
	if s == nil {
		return CacheStats{}
	}
	st := s.c.Stats()
	return CacheStats{
		Hits: st.Hits, Misses: st.Misses, Entries: st.Entries,
		ComponentHits:    st.ComponentHits,
		ComponentMisses:  st.ComponentMisses,
		ComponentEntries: st.ComponentEntries,
	}
}

// engineCache unwraps the internal cache; nil-safe (nil disables reuse).
func (s *SnapshotCache) engineCache() *engine.Cache {
	if s == nil {
		return nil
	}
	return s.c
}
