package er

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/textproc"
)

// Matcher answers query-time lookups against a resolved dataset: given a
// new record's text, it ranks the existing records by the fused similarity
// under the term weights a fusion run learned. This is the incremental
// counterpart of Resolve — matching one incoming record does not require
// re-running the framework.
type Matcher struct {
	terms    map[string]float64
	tokenize textproc.TokenizeOptions
	// inverted maps term -> records containing it (built lazily from the
	// pipeline when the matcher is created from one).
	inverted map[string][]int32
	numRecs  int
}

// Matcher builds a query-time matcher from a fusion outcome. The matcher
// snapshots the learned term weights and the dataset's inverted index; it
// remains valid independently of the pipeline afterwards.
func (p *Pipeline) Matcher(out *FusionOutcome) *Matcher {
	m := &Matcher{
		terms:    make(map[string]float64),
		tokenize: textproc.DefaultTokenizeOptions(),
		inverted: make(map[string][]int32),
		numRecs:  p.dataset.NumRecords(),
	}
	for t, w := range out.TermWeights {
		if w > 0 {
			m.terms[p.corpus.Terms[t]] = w
		}
	}
	for r, doc := range p.corpus.Docs {
		for _, t := range doc {
			surface := p.corpus.Terms[t]
			if m.terms[surface] > 0 {
				m.inverted[surface] = append(m.inverted[surface], int32(r))
			}
		}
	}
	return m
}

// MatchCandidate is one ranked result of a query.
type MatchCandidate struct {
	// Record is the index of the existing record.
	Record int
	// Similarity is the fused similarity Σ shared term weights.
	Similarity float64
	// SharedTerms lists the overlapping terms, heaviest first.
	SharedTerms []string
}

// Match ranks existing records against the query text and returns the top
// k candidates (all scored candidates when k <= 0). Records sharing no
// weighted term with the query are not candidates, mirroring the
// pipeline's blocking rule.
func (m *Matcher) Match(text string, k int) []MatchCandidate {
	tokens := textproc.UniqueTokens(textproc.Tokenize(text, m.tokenize))
	scores := make(map[int32]float64)
	shared := make(map[int32][]string)
	for _, tok := range tokens {
		w := m.terms[tok]
		if w <= 0 {
			continue
		}
		for _, r := range m.inverted[tok] {
			scores[r] += w
			shared[r] = append(shared[r], tok)
		}
	}
	out := make([]MatchCandidate, 0, len(scores))
	for r, s := range scores {
		terms := shared[r]
		sort.Slice(terms, func(a, b int) bool {
			if m.terms[terms[a]] != m.terms[terms[b]] {
				return m.terms[terms[a]] > m.terms[terms[b]]
			}
			return terms[a] < terms[b]
		})
		out = append(out, MatchCandidate{Record: int(r), Similarity: s, SharedTerms: terms})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Similarity != out[b].Similarity {
			return out[a].Similarity > out[b].Similarity
		}
		return out[a].Record < out[b].Record
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// matcherModel is the serialized form.
type matcherModel struct {
	Version  int                      `json:"version"`
	NumRecs  int                      `json:"num_records"`
	Terms    map[string]float64       `json:"terms"`
	Inverted map[string][]int32       `json:"inverted"`
	Tokenize textproc.TokenizeOptions `json:"tokenize"`
}

// Save serializes the matcher as JSON so a fitted model can be reused
// across processes without re-running the fusion framework.
func (m *Matcher) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(matcherModel{
		Version:  1,
		NumRecs:  m.numRecs,
		Terms:    m.terms,
		Inverted: m.inverted,
		Tokenize: m.tokenize,
	})
}

// LoadMatcher reads a matcher saved with Save.
func LoadMatcher(r io.Reader) (*Matcher, error) {
	var model matcherModel
	if err := json.NewDecoder(r).Decode(&model); err != nil {
		return nil, fmt.Errorf("er: decoding matcher: %w", err)
	}
	if model.Version != 1 {
		return nil, fmt.Errorf("%w: unsupported matcher version %d", ErrBadData, model.Version)
	}
	if model.Terms == nil || model.Inverted == nil {
		return nil, fmt.Errorf("%w: matcher model missing fields", ErrBadData)
	}
	return &Matcher{
		terms:    model.Terms,
		tokenize: model.Tokenize,
		inverted: model.Inverted,
		numRecs:  model.NumRecs,
	}, nil
}
