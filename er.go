package er

import (
	"context"
	"fmt"
	"io"
	"os"

	"repro/internal/dataset"
	"repro/internal/guard"
)

// Record is one textual record to resolve.
type Record struct {
	// Text is the record's textual content (all attributes concatenated).
	Text string
	// Source identifies the record's origin for multi-source datasets
	// (e.g. 0 = abt, 1 = buy). Leave 0 for single-source data.
	Source int
	// Entity is an optional ground-truth label. Records with equal
	// non-empty labels refer to the same entity; when every record is
	// labeled, Resolve reports evaluation metrics.
	Entity string
}

// Dataset is a collection of records.
type Dataset struct {
	ds *dataset.Dataset
}

// NewDataset builds a dataset from records. Source values must be dense
// starting at 0.
func NewDataset(name string, records []Record) *Dataset {
	d := &dataset.Dataset{Name: name, NumSources: 1}
	entities := make(map[string]int)
	for i, r := range records {
		entity := -1
		if r.Entity != "" {
			id, ok := entities[r.Entity]
			if !ok {
				id = len(entities)
				entities[r.Entity] = id
			}
			entity = id
		}
		if r.Source+1 > d.NumSources {
			d.NumSources = r.Source + 1
		}
		d.Records = append(d.Records, dataset.Record{
			ID:       i,
			EntityID: entity,
			Source:   r.Source,
			Text:     r.Text,
		})
	}
	return &Dataset{ds: d}
}

// LoadCSV reads a dataset from a CSV stream with header id,entity,source,text.
// It is LoadCSVContext with a background context (no cancellation, raw
// parse errors).
func LoadCSV(r io.Reader, name string) (*Dataset, error) {
	ds, err := dataset.LoadCSV(r, name)
	if err != nil {
		return nil, err
	}
	return &Dataset{ds: ds}, nil
}

// LoadCSVContext reads a dataset from a CSV stream under ctx. The row loop
// polls a cancellation checkpoint, so an oversized or stalled upload aborts
// mid-parse — with an error wrapping context.Canceled or
// context.DeadlineExceeded — instead of only after the whole stream has
// been consumed. Unreadable or structurally malformed input surfaces as an
// error wrapping ErrBadData (retrying the same bytes cannot succeed).
func LoadCSVContext(ctx context.Context, r io.Reader, name string) (*Dataset, error) {
	// Stride 1: a CSV row parse is µs-scale work, so an un-amortized channel
	// poll per row is noise — and amortization would blind small files to an
	// already-canceled context.
	check := guard.FromContext(ctx).WithStride(1)
	ds, err := dataset.LoadCSVCheck(r, name, check)
	if err != nil {
		if ctxErr := check.Err(); ctxErr != nil {
			return nil, fmt.Errorf("er: csv load aborted: %w", ctxErr)
		}
		return nil, fmt.Errorf("%w: %w", ErrBadData, err)
	}
	return &Dataset{ds: ds}, nil
}

// LoadCSVFile reads a dataset from a CSV file.
func LoadCSVFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("er: opening dataset: %w", err)
	}
	defer f.Close()
	return LoadCSV(f, path)
}

// WriteCSV serializes the dataset in the LoadCSV format.
func (d *Dataset) WriteCSV(w io.Writer) error { return dataset.WriteCSV(w, d.ds) }

// Name returns the dataset name.
func (d *Dataset) Name() string { return d.ds.Name }

// NumRecords returns the number of records.
func (d *Dataset) NumRecords() int { return d.ds.NumRecords() }

// NumSources returns the number of record sources.
func (d *Dataset) NumSources() int { return d.ds.NumSources }

// Text returns the text of record i.
func (d *Dataset) Text(i int) string { return d.ds.Records[i].Text }

// HasGroundTruth reports whether every record carries an entity label.
func (d *Dataset) HasGroundTruth() bool { return d.ds.HasGroundTruth() }

// NumTrueMatches returns the number of ground-truth matching pairs
// (cross-source only for multi-source datasets).
func (d *Dataset) NumTrueMatches() int { return d.ds.NumTrueMatches() }

// ReplicaConfig parameterizes the synthetic benchmark replicas.
type ReplicaConfig struct {
	// Seed drives all generator randomness. Equal configurations always
	// produce identical datasets.
	Seed int64
	// Scale multiplies the published dataset sizes; 1.0 reproduces them
	// exactly (858 / 1081+1092 / 1865 records).
	Scale float64
}

func (c ReplicaConfig) gen() dataset.GenConfig {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return dataset.GenConfig{Seed: c.Seed, Scale: c.Scale}
}

// RestaurantReplica generates the Restaurant benchmark replica: 858
// single-source restaurant records with 106 duplicate pairs.
func RestaurantReplica(cfg ReplicaConfig) *Dataset {
	return &Dataset{ds: dataset.GenRestaurant(cfg.gen())}
}

// ProductReplica generates the Product (Abt-Buy) replica: 1081 + 1092
// records from two sources with 1092 matching cross-source pairs.
func ProductReplica(cfg ReplicaConfig) *Dataset {
	return &Dataset{ds: dataset.GenProduct(cfg.gen())}
}

// PaperReplica generates the Paper (Cora) replica: 1865 bibliography records
// with 96 clusters of three or more records, the largest holding 192.
func PaperReplica(cfg ReplicaConfig) *Dataset {
	return &Dataset{ds: dataset.GenPaper(cfg.gen())}
}

// SyntheticConfig parameterizes SyntheticDataset, the open-scale corpus
// generator. Every zero-value field selects a documented default, so
// SyntheticConfig{Records: 100000} is a complete configuration; equal
// configs always generate identical datasets.
type SyntheticConfig struct {
	// Seed drives all randomness. Zero selects the default seed 1.
	Seed int64
	// Records is the exact record count. Values below 1 default to 10000.
	Records int
	// DuplicateRate is the per-step probability of growing an entity's
	// cluster by one more record (geometric, truncated at MaxClusterSize):
	// 0 yields all singletons. Clamped to [0, 0.95].
	DuplicateRate float64
	// MaxClusterSize caps records per entity. Below 1 defaults to 8.
	MaxClusterSize int
	// Sources is the number of record origins; duplicates rotate through
	// them so multi-source configs always produce cross-source matching
	// pairs. Below 1 defaults to 1.
	Sources int
	// VocabSize is the shared filler vocabulary size. Below 16 defaults to
	// 4096; above 100000 clamps.
	VocabSize int
	// ZipfExponent skews term draws toward the vocabulary head; larger is
	// more skewed. At or below 0 defaults to 2.0.
	ZipfExponent float64
	// TokensPerRecord is the approximate description length. Below 1
	// defaults to 8.
	TokensPerRecord int
	// Name labels the dataset. Empty defaults to "Synthetic".
	Name string
}

// SyntheticDataset generates a labeled corpus at an arbitrary scale —
// 10^5 to 10^7 records — with Zipf-skewed term distributions, a tunable
// duplication rate and optional multi-source structure. Unlike the replica
// generators, which are pinned to the published benchmark sizes, this is
// the data source for the scaling benchmarks and cmd/ergen's -records
// mode.
func SyntheticDataset(cfg SyntheticConfig) *Dataset {
	return &Dataset{ds: dataset.GenSynthetic(dataset.SyntheticConfig{
		Seed:            cfg.Seed,
		Records:         cfg.Records,
		DuplicateRate:   cfg.DuplicateRate,
		MaxClusterSize:  cfg.MaxClusterSize,
		Sources:         cfg.Sources,
		VocabSize:       cfg.VocabSize,
		ZipfExponent:    cfg.ZipfExponent,
		TokensPerRecord: cfg.TokensPerRecord,
		Name:            cfg.Name,
	})}
}

// internal returns the underlying dataset for same-module consumers
// (cmd/erbench and the benchmark suite).
func (d *Dataset) internal() *dataset.Dataset { return d.ds }
