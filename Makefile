# Convenience wrappers around the verification gate. `make check` is the
# single entry point CI uses (scripts/check.sh); the other targets run its
# stages individually.

.PHONY: check build test race lint fuzz bench

check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

lint:
	go run ./cmd/erlint ./...

fuzz:
	go test -run='^$$' -fuzz=FuzzLoadCSV -fuzztime=10s ./internal/dataset
	go test -run='^$$' -fuzz=FuzzTokenize -fuzztime=10s ./internal/textproc

bench:
	go test -bench=. -benchmem -run='^$$' .

# Regenerate the kernel benchmark-regression baseline BENCH_core.json.
bench-core:
	./scripts/bench.sh
