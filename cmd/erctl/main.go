// Command erctl is the operator CLI for erserve, built on the retrying
// client in internal/client: every mutation carries an automatically
// generated idempotency key and is retried with full-jitter backoff, so
// running a command again after a dropped connection cannot double-apply.
//
// Usage:
//
//	erctl [flags] create <collection>
//	erctl [flags] drop <collection>
//	erctl [flags] put <collection> <id> <text> [entity [source]]
//	erctl [flags] del <collection> <id>
//	erctl [flags] ls [collection]
//	erctl [flags] resolve <collection>
//	erctl [flags] replay <collection> <trace.jsonl>
//	erctl [flags] ready
//	erctl [flags] stats
//
// replay streams a mutation trace (written by `ergen -mutations`) against
// a collection: upsert and delete lines become record mutations, resolve
// lines trigger a full-corpus resolve and print its match count plus the
// delta-scoped work split (components re-fused vs reused) when the server
// reports one.
//
// Exit codes follow the error taxonomy so scripts can branch without
// parsing output: 0 success, 1 internal/unknown, 2 usage or invalid
// request, 3 not found, 4 conflict (exists, idempotency key reuse),
// 5 unavailable or overloaded after retries, 6 budget exceeded.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	er "repro"
	"repro/internal/client"
)

// Exit codes, one per taxonomy branch.
const (
	exitOK          = 0
	exitInternal    = 1
	exitUsage       = 2
	exitNotFound    = 3
	exitConflict    = 4
	exitUnavailable = 5
	exitBudget      = 6
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(argv []string) int {
	fs := flag.NewFlagSet("erctl", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "http://127.0.0.1:8080", "erserve base URL")
		timeout  = fs.Duration("timeout", 2*time.Minute, "overall deadline for the command")
		attempts = fs.Int("attempts", client.DefaultMaxAttempts, "attempts per request (1 disables retries)")
		verbose  = fs.Bool("v", false, "log each retry decision to stderr")
	)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: erctl [flags] <create|drop|put|del|ls|resolve|replay|ready|stats> [args]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return exitUsage
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return exitUsage
	}

	opts := client.Options{BaseURL: *addr, MaxAttempts: *attempts}
	if *verbose {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "erctl: "+format+"\n", args...)
		}
	}
	c, err := client.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "erctl:", err)
		return exitUsage
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	cmd, args := fs.Arg(0), fs.Args()[1:]
	err = dispatch(ctx, c, cmd, args)
	if err == nil {
		return exitOK
	}
	if errors.Is(err, errUsage) {
		fmt.Fprintln(os.Stderr, "erctl:", err)
		fs.Usage()
		return exitUsage
	}
	fmt.Fprintln(os.Stderr, "erctl:", err)
	return exitCode(err)
}

// errUsage marks argument mistakes detected before any request is sent.
var errUsage = errors.New("usage")

// dispatch routes one subcommand to the client.
func dispatch(ctx context.Context, c *client.Client, cmd string, args []string) error {
	need := func(n int, shape string) error {
		if len(args) != n {
			return fmt.Errorf("%w: %s takes %s", errUsage, cmd, shape)
		}
		return nil
	}
	switch cmd {
	case "create":
		if err := need(1, "<collection>"); err != nil {
			return err
		}
		out, err := c.CreateCollection(ctx, args[0])
		return report(err, "created %s%s\n", args[0], replayNote(out))
	case "drop":
		if err := need(1, "<collection>"); err != nil {
			return err
		}
		out, err := c.DropCollection(ctx, args[0])
		return report(err, "dropped %s%s\n", args[0], replayNote(out))
	case "put":
		if len(args) < 3 || len(args) > 5 {
			return fmt.Errorf("%w: put takes <collection> <id> <text> [entity [source]]", errUsage)
		}
		rec := client.Record{Text: args[2]}
		if len(args) >= 4 {
			rec.Entity = args[3]
		}
		if len(args) == 5 {
			src, err := strconv.Atoi(args[4])
			if err != nil {
				return fmt.Errorf("%w: source must be an integer, got %q", errUsage, args[4])
			}
			rec.Source = src
		}
		out, err := c.PutRecord(ctx, args[0], args[1], rec)
		return report(err, "put %s/%s%s\n", args[0], args[1], replayNote(out))
	case "del":
		if err := need(2, "<collection> <id>"); err != nil {
			return err
		}
		out, err := c.DeleteRecord(ctx, args[0], args[1])
		return report(err, "deleted %s/%s%s\n", args[0], args[1], replayNote(out))
	case "ls":
		switch len(args) {
		case 0:
			cols, err := c.ListCollections(ctx)
			if err != nil {
				return err
			}
			for _, col := range cols {
				fmt.Printf("%s\t%d\n", col.Name, col.Records)
			}
			return nil
		case 1:
			recs, err := c.GetCollection(ctx, args[0])
			if err != nil {
				return err
			}
			for _, r := range recs {
				fmt.Printf("%s\t%s\n", r.ID, r.Text)
			}
			return nil
		default:
			return fmt.Errorf("%w: ls takes at most one <collection>", errUsage)
		}
	case "resolve":
		if err := need(1, "<collection>"); err != nil {
			return err
		}
		res, err := c.Resolve(ctx, args[0])
		if err != nil {
			return err
		}
		return printJSON(res.Raw)
	case "replay":
		if err := need(2, "<collection> <trace.jsonl>"); err != nil {
			return err
		}
		return replay(ctx, c, args[0], args[1])
	case "ready":
		if err := need(0, "no arguments"); err != nil {
			return err
		}
		if err := c.Ready(ctx); err != nil {
			return err
		}
		fmt.Println("ready")
		return nil
	case "stats":
		if err := need(0, "no arguments"); err != nil {
			return err
		}
		raw, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		return printJSON(raw)
	default:
		return fmt.Errorf("%w: unknown command %q", errUsage, cmd)
	}
}

// traceOp mirrors one line of an `ergen -mutations` trace.
type traceOp struct {
	Op     string `json:"op"`
	ID     string `json:"id"`
	Text   string `json:"text"`
	Entity string `json:"entity"`
	Source int    `json:"source"`
}

// resolveDelta is the delta-scoped work split a resolve response carries
// when the server answered through the incremental path.
type resolveDelta struct {
	Components       int `json:"components"`
	ComponentsFused  int `json:"components_fused"`
	ComponentsReused int `json:"components_reused"`
}

// replay streams a mutation trace against a collection, resolving where
// the trace says to and summarizing each resolve's delta-scoped work.
func replay(ctx context.Context, c *client.Client, collection, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	defer f.Close()

	var upserts, deletes, resolves int
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for line := 1; sc.Scan(); line++ {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var op traceOp
		if err := json.Unmarshal(raw, &op); err != nil {
			return fmt.Errorf("%w: %s:%d: %v", er.ErrBadData, path, line, err)
		}
		switch op.Op {
		case "upsert":
			rec := client.Record{Text: op.Text, Entity: op.Entity, Source: op.Source}
			if _, err := c.PutRecord(ctx, collection, op.ID, rec); err != nil {
				return fmt.Errorf("%s:%d: upsert %s: %w", path, line, op.ID, err)
			}
			upserts++
		case "delete":
			if _, err := c.DeleteRecord(ctx, collection, op.ID); err != nil {
				return fmt.Errorf("%s:%d: delete %s: %w", path, line, op.ID, err)
			}
			deletes++
		case "resolve":
			res, err := c.Resolve(ctx, collection)
			if err != nil {
				return fmt.Errorf("%s:%d: resolve: %w", path, line, err)
			}
			resolves++
			var body struct {
				Delta *resolveDelta `json:"delta"`
			}
			if err := json.Unmarshal(res.Raw, &body); err == nil && body.Delta != nil {
				fmt.Printf("resolve #%d: %d matches, %d clusters, delta %d/%d components re-fused (%d reused)\n",
					resolves, res.Matches, res.Clusters,
					body.Delta.ComponentsFused, body.Delta.Components, body.Delta.ComponentsReused)
			} else {
				fmt.Printf("resolve #%d: %d matches, %d clusters\n", resolves, res.Matches, res.Clusters)
			}
		default:
			return fmt.Errorf("%w: %s:%d: unknown op %q", er.ErrBadData, path, line, op.Op)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("%w: reading %s: %v", er.ErrBadData, path, err)
	}
	fmt.Printf("replayed %d upserts, %d deletes, %d resolves\n", upserts, deletes, resolves)
	return nil
}

// report prints the success line unless the call failed.
func report(err error, format string, args ...any) error {
	if err != nil {
		return err
	}
	fmt.Printf(format, args...)
	return nil
}

// replayNote annotates mutations the server answered from its idempotency
// journal — i.e. an earlier attempt already applied this change.
func replayNote(out client.Outcome) string {
	if out.Replayed {
		return " (replayed)"
	}
	return ""
}

// printJSON re-indents a raw response for human eyes.
func printJSON(raw json.RawMessage) error {
	var buf any
	if err := json.Unmarshal(raw, &buf); err != nil {
		return fmt.Errorf("%w: decoding response: %v", er.ErrBadData, err)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(buf)
}

// exitCode maps a command error onto the documented taxonomy exit code.
func exitCode(err error) int {
	switch {
	case errors.Is(err, er.ErrInvalidOptions), errors.Is(err, er.ErrBadData),
		errors.Is(err, er.ErrNoRecords), errors.Is(err, er.ErrNoCandidates):
		return exitUsage
	case errors.Is(err, client.ErrNotFound):
		return exitNotFound
	case errors.Is(err, client.ErrExists), errors.Is(err, client.ErrIdempotencyConflict):
		return exitConflict
	case errors.Is(err, client.ErrOverloaded), errors.Is(err, client.ErrUnavailable):
		return exitUnavailable
	case errors.Is(err, er.ErrBudgetExceeded), errors.Is(err, context.DeadlineExceeded):
		return exitBudget
	default:
		return exitInternal
	}
}
