// Command erbench regenerates every table and figure of the paper's
// evaluation section on the synthetic benchmark replicas.
//
// Usage:
//
//	erbench [-experiment all|table2|table3|table4|table5|fig4|fig5|ablations]
//	        [-scale 1.0] [-seed 1] [-csv DIR]
//
// -scale scales the replicas (1.0 = the published dataset sizes);
// -csv writes the full Figure 4/5 series as CSV files into DIR.
//
// Corpus mode, selected by -input file.csv, skips the experiment tables
// and instead resolves one CSV corpus (e.g. an ergen -records output) end
// to end, printing the per-stage trace and — when the corpus is labeled —
// pairwise evaluation metrics. This is the entry point the CI bench-smoke
// job drives at 100k records:
//
//	erbench -input synthetic.csv [-iterations 5] [-workers 0] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
	"repro/internal/experiments"
	"repro/internal/plot"
)

func main() {
	experiment := flag.String("experiment", "all",
		"which experiment to run: all, table2, table3, table4, table5, fig4, fig5, extended, scaling, ablations, blocking (opt-in)")
	scale := flag.Float64("scale", 1.0, "replica scale (1.0 = published dataset sizes)")
	seed := flag.Int64("seed", 1, "random seed for replica generation and the pipeline")
	csvDir := flag.String("csv", "", "directory to write full figure series as CSV (optional)")
	svgDir := flag.String("svg", "", "directory to write figures as SVG charts (optional)")
	workers := flag.Int("workers", 0, "kernel goroutines per pipeline run (0 = GOMAXPROCS); results are identical for every value")
	input := flag.String("input", "", "corpus mode: resolve this CSV file instead of running experiments")
	iterations := flag.Int("iterations", 5, "corpus mode: fusion iterations")
	maxPairs := flag.Int("max-pairs", 0, "corpus mode: candidate-pair budget (0 = unlimited)")
	flag.Parse()

	if *input != "" {
		runCorpus(*input, *seed, *workers, *iterations, *maxPairs)
		return
	}

	cfg := experiments.Config{Seed: *seed, Scale: *scale, Workers: *workers}
	fmt.Printf("erbench: scale=%.2f seed=%d (α=20, S=20, η=0.98, 5 fusion iterations)\n\n", *scale, *seed)

	run := func(name string, fn func() (string, error)) {
		start := time.Now()
		out, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "erbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Println(out)
		fmt.Printf("[%s completed in %s]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	want := func(name string) bool { return *experiment == "all" || *experiment == name }

	any := false
	if want("table2") {
		any = true
		run("table2", func() (string, error) {
			res, err := experiments.RunTable2(cfg)
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		})
	}
	if want("table3") {
		any = true
		run("table3", func() (string, error) {
			res, err := experiments.RunTable3(cfg)
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		})
	}
	if want("table4") {
		any = true
		run("table4", func() (string, error) {
			res, err := experiments.RunTable4(cfg)
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		})
	}
	if want("table5") {
		any = true
		run("table5", func() (string, error) {
			res, err := experiments.RunTable5(cfg)
			if err != nil {
				return "", err
			}
			return res.Render(), nil
		})
	}
	if want("fig4") {
		any = true
		run("fig4", func() (string, error) {
			res, err := experiments.RunFigure4(cfg)
			if err != nil {
				return "", err
			}
			writeSeriesCSV(*csvDir, "figure4", func() []namedCSV {
				var out []namedCSV
				for _, s := range res.Series {
					out = append(out, namedCSV{string(s.Dataset), s.CSV()})
				}
				return out
			})
			if *svgDir != "" {
				for _, s := range res.Series {
					x := make([]float64, len(s.Scores))
					for i := range x {
						x[i] = float64(i + 1)
					}
					svg := plot.Scatter(plot.Config{
						Title:  fmt.Sprintf("Figure 4 — %s", s.Dataset),
						XLabel: "rank of learned weight",
						YLabel: "score(t)",
					}, plot.Series{Name: string(s.Dataset), X: x, Y: s.Scores})
					writeFile(*svgDir, fmt.Sprintf("figure4_%s.svg", strings.ToLower(string(s.Dataset))), svg)
				}
			}
			return res.Render(), nil
		})
	}
	if want("fig5") {
		any = true
		run("fig5", func() (string, error) {
			res, err := experiments.RunFigure5(cfg)
			if err != nil {
				return "", err
			}
			writeSeriesCSV(*csvDir, "figure5", func() []namedCSV {
				var out []namedCSV
				for _, s := range res.Series {
					out = append(out, namedCSV{string(s.Dataset), s.CSV()})
				}
				return out
			})
			if *svgDir != "" {
				var lines []plot.Series
				for _, s := range res.Series {
					x := make([]float64, len(s.Updates))
					for i := range x {
						x[i] = float64(i + 1)
					}
					lines = append(lines, plot.Series{Name: string(s.Dataset), X: x, Y: s.Updates})
				}
				svg := plot.Line(plot.Config{
					Title:  "Figure 5 — convergence of ITER",
					XLabel: "iteration",
					YLabel: "amount of weight update",
				}, lines...)
				writeFile(*svgDir, "figure5.svg", svg)
			}
			return res.Render(), nil
		})
	}
	if want("extended") {
		any = true
		run("extended", func() (string, error) {
			rows, err := experiments.RunExtended(cfg)
			if err != nil {
				return "", err
			}
			return experiments.RenderExtended(rows), nil
		})
	}
	if want("scaling") {
		any = true
		run("scaling", func() (string, error) {
			points, err := experiments.RunScaling(cfg, nil)
			if err != nil {
				return "", err
			}
			return experiments.RenderScaling(points), nil
		})
	}
	if *experiment == "blocking" { // opt-in: the literal >=1 rule is dense
		any = true
		run("blocking", func() (string, error) {
			points, err := experiments.RunBlockingStudy(cfg)
			if err != nil {
				return "", err
			}
			return experiments.RenderBlockingStudy(points), nil
		})
	}
	if want("ablations") {
		any = true
		run("ablations", func() (string, error) {
			results, err := experiments.RunAblations(cfg)
			if err != nil {
				return "", err
			}
			return experiments.RenderAblations(results), nil
		})
	}
	if !any {
		fmt.Fprintf(os.Stderr, "erbench: unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}
}

// runCorpus resolves one CSV corpus end to end and prints the stage
// trace, the resolution shape and (for labeled corpora) the pairwise
// metrics — the corpus-mode face of the command used by the CI 100k
// bench-smoke job.
func runCorpus(path string, seed int64, workers, iterations, maxPairs int) {
	start := time.Now()
	d, err := er.LoadCSVFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "erbench: %v\n", err)
		os.Exit(1)
	}
	loaded := time.Since(start)

	opts := er.DefaultOptions()
	opts.Seed = seed
	opts.Workers = workers
	opts.FusionIterations = iterations
	opts.MaxCandidatePairs = maxPairs
	res, err := er.Resolve(d, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "erbench: resolving %s: %v\n", path, err)
		os.Exit(1)
	}

	fmt.Printf("corpus %s: %d records, %d sources (loaded in %s)\n",
		d.Name(), d.NumRecords(), d.NumSources(), loaded.Round(time.Millisecond))
	fmt.Printf("resolved: %d matches, %d clusters, graph %d nodes / %d edges, fusion %s\n",
		len(res.Matches), len(res.Clusters), res.GraphNodes, res.GraphEdges,
		res.Elapsed.Round(time.Millisecond))
	if res.Degradation != nil {
		fmt.Printf("degradation: %+v\n", *res.Degradation)
	}
	if res.Evaluation != nil {
		fmt.Printf("evaluation: precision %.4f, recall %.4f, F1 %.4f\n",
			res.Evaluation.Precision, res.Evaluation.Recall, res.Evaluation.F1)
	}
	fmt.Print("stage trace:\n" + res.Trace.String())
	fmt.Printf("[corpus run completed in %s]\n", time.Since(start).Round(time.Millisecond))
}

// writeFile writes one artifact into dir, creating it as needed.
func writeFile(dir, name, data string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "erbench: %v\n", err)
		return
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "erbench: %v\n", err)
		return
	}
	fmt.Printf("wrote %s\n", path)
}

type namedCSV struct {
	name, data string
}

func writeSeriesCSV(dir, prefix string, series func() []namedCSV) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "erbench: %v\n", err)
		return
	}
	for _, s := range series() {
		path := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", prefix, strings.ToLower(s.name)))
		if err := os.WriteFile(path, []byte(s.data), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "erbench: %v\n", err)
			continue
		}
		fmt.Printf("wrote %s\n", path)
	}
}
