// Command erbenchjson turns `go test -bench` output into the repository's
// benchmark-regression baseline BENCH_core.json.
//
// Usage:
//
//	go test ./internal/core/ -run xxx -bench Product -benchmem | \
//	    erbenchjson -baseline results/bench_baseline_seed.txt > BENCH_core.json
//
// It reads benchmark lines from stdin, groups the workers=N sub-benchmarks
// of each kernel, computes each fan-out's speedup against the same binary's
// workers=1 run, and — when -baseline points at a committed seed
// measurement — the serial speedup against the pre-optimization code.
// Custom `<value> stage-<name>-ms` metrics (emitted by the root package's
// BenchmarkResolveStages from the engine's stage trace) are folded into
// each sample's stage_ms map, giving the baseline a per-stage wall-clock
// breakdown. The JSON is the trajectory future PRs regress against:
// scripts/bench.sh regenerates it and CI uploads it as an artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches `BenchmarkName[/sub...][-P]  iters  X ns/op [Y B/op  Z allocs/op]`;
// a trailing `/workers=N` path segment becomes the fan-out dimension.
var benchLine = regexp.MustCompile(`^Benchmark(\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op\s+(\d+) allocs/op)?`)

// stageMetric matches the custom `<value> stage-<name>-ms` metrics the
// root BenchmarkResolveStages emits from the engine's stage trace.
var stageMetric = regexp.MustCompile(`([\d.]+(?:[eE][+-]?\d+)?) stage-([a-z]+)-ms`)

type sample struct {
	NsOp     float64 `json:"ns_op"`
	BytesOp  float64 `json:"bytes_op,omitempty"`
	AllocsOp float64 `json:"allocs_op,omitempty"`
	// SpeedupVs1Worker is ns/op(workers=1) / ns/op(this), from the same
	// binary and run.
	SpeedupVs1Worker float64 `json:"speedup_vs_1_worker,omitempty"`
	// StageMs maps pipeline stage names to their wall-clock milliseconds,
	// from the stage-<name>-ms metrics of BenchmarkResolveStages.
	StageMs map[string]float64 `json:"stage_ms,omitempty"`
}

type kernel struct {
	// Workers maps the fan-out ("1", "2", ...; "serial" for benchmarks
	// without a workers dimension) to its measurement.
	Workers map[string]*sample `json:"workers"`
	// BaselineNsOp is the committed seed (pre-optimization) serial
	// measurement, when the baseline file has this benchmark.
	BaselineNsOp float64 `json:"baseline_ns_op,omitempty"`
	// SerialSpeedupVsBaseline is BaselineNsOp / ns/op(workers=1).
	SerialSpeedupVsBaseline float64 `json:"serial_speedup_vs_baseline,omitempty"`
	BaselineAllocsOp        float64 `json:"baseline_allocs_op,omitempty"`
	BaselineBytesOp         float64 `json:"baseline_bytes_op,omitempty"`
}

type report struct {
	// Note documents how to regenerate and read this file.
	Note    string             `json:"note"`
	CPU     string             `json:"cpu,omitempty"`
	Kernels map[string]*kernel `json:"kernels"`
}

func parse(lines *bufio.Scanner, rep *report) error {
	for lines.Scan() {
		line := lines.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			rep.CPU = strings.TrimSpace(cpu)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name, workers := m[1], "serial"
		if base, w, ok := strings.Cut(name, "/workers="); ok {
			name, workers = base, w
		}
		k := rep.Kernels[name]
		if k == nil {
			k = &kernel{Workers: map[string]*sample{}}
			rep.Kernels[name] = k
		}
		s := &sample{}
		s.NsOp, _ = strconv.ParseFloat(m[2], 64)
		if m[3] != "" {
			s.BytesOp, _ = strconv.ParseFloat(m[3], 64)
			s.AllocsOp, _ = strconv.ParseFloat(m[4], 64)
		}
		for _, sm := range stageMetric.FindAllStringSubmatch(line, -1) {
			v, err := strconv.ParseFloat(sm[1], 64)
			if err != nil {
				continue
			}
			if s.StageMs == nil {
				s.StageMs = map[string]float64{}
			}
			s.StageMs[sm[2]] = v
		}
		k.Workers[workers] = s
	}
	return lines.Err()
}

func main() {
	baseline := flag.String("baseline", "", "committed seed benchmark output to compute serial speedups against")
	flag.Parse()

	rep := &report{
		Note: "Regenerate with scripts/bench.sh. speedup_vs_1_worker compares each fan-out " +
			"to the same binary's serial run; serial_speedup_vs_baseline compares the serial run " +
			"to the committed pre-optimization seed in results/bench_baseline_seed.txt. " +
			"All worker counts produce bit-identical scores (see internal/core determinism tests).",
		Kernels: map[string]*kernel{},
	}
	if err := parse(bufio.NewScanner(os.Stdin), rep); err != nil {
		fmt.Fprintln(os.Stderr, "erbenchjson: read stdin:", err)
		os.Exit(1)
	}
	if len(rep.Kernels) == 0 {
		fmt.Fprintln(os.Stderr, "erbenchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	for _, k := range rep.Kernels {
		one := k.Workers["1"]
		if one == nil {
			one = k.Workers["serial"]
		}
		if one == nil {
			continue
		}
		for _, s := range k.Workers {
			if s.NsOp > 0 {
				s.SpeedupVs1Worker = round2(one.NsOp / s.NsOp)
			}
		}
	}

	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "erbenchjson:", err)
			os.Exit(1)
		}
		base := &report{Kernels: map[string]*kernel{}}
		err = parse(bufio.NewScanner(f), base)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "erbenchjson: read baseline:", err)
			os.Exit(1)
		}
		for name, bk := range base.Kernels {
			k := rep.Kernels[name]
			if k == nil {
				continue
			}
			bs := bk.Workers["serial"]
			if bs == nil {
				bs = bk.Workers["1"]
			}
			one := k.Workers["1"]
			if one == nil {
				one = k.Workers["serial"]
			}
			if bs == nil || one == nil {
				continue
			}
			k.BaselineNsOp = bs.NsOp
			k.BaselineBytesOp = bs.BytesOp
			k.BaselineAllocsOp = bs.AllocsOp
			if one.NsOp > 0 {
				k.SerialSpeedupVsBaseline = round2(bs.NsOp / one.NsOp)
			}
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "erbenchjson:", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(out, '\n'))

	// A human-readable digest on stderr so bench.sh runs read at a glance.
	names := make([]string, 0, len(rep.Kernels))
	for name := range rep.Kernels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		k := rep.Kernels[name]
		var parts []string
		workers := make([]string, 0, len(k.Workers))
		for w := range k.Workers {
			workers = append(workers, w)
		}
		sort.Strings(workers)
		for _, w := range workers {
			s := k.Workers[w]
			parts = append(parts, fmt.Sprintf("w=%s %.0fns (%.2fx)", w, s.NsOp, s.SpeedupVs1Worker))
		}
		if k.SerialSpeedupVsBaseline > 0 {
			parts = append(parts, fmt.Sprintf("serial vs seed %.2fx", k.SerialSpeedupVsBaseline))
		}
		fmt.Fprintf(os.Stderr, "%-20s %s\n", name, strings.Join(parts, "  "))
	}
}

func round2(v float64) float64 {
	return float64(int(v*100+0.5)) / 100
}
