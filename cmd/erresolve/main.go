// Command erresolve runs the unsupervised fusion framework on a CSV dataset
// (header: id,entity,source,text) and prints the matched pairs and entity
// clusters. When the file carries entity labels, pairwise
// precision/recall/F1 are reported as well.
//
// The command exits 0 on success, 2 on usage or configuration errors, and 1
// on runtime failures (unreadable input, no candidates, exhausted budgets,
// interruption). Ctrl-C aborts the run promptly via context cancellation.
//
// Usage:
//
//	erresolve [-eta 0.98] [-iterations 5] [-rss] [-max-pairs N] [-timeout 30s] [-trace] [-v] file.csv
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro"
)

// assemble builds the Result view from the staged pipeline outputs (the
// staged API is used so -explain can reference the same fusion outcome).
func assemble(d *er.Dataset, pipe *er.Pipeline, out *er.FusionOutcome) *er.Result {
	res := &er.Result{
		Probabilities:  out.Probabilities,
		Clusters:       pipe.Clusters(out.Matched),
		GraphNodes:     out.GraphNodes,
		GraphEdges:     out.GraphEdges,
		Converged:      out.Converged,
		NumericRepairs: out.NumericRepairs,
		Degradation:    pipe.Degradation(),
		Elapsed:        out.Elapsed,
	}
	for k, matched := range out.Matched {
		if !matched {
			continue
		}
		i, j := pipe.CandidatePair(k)
		res.Matches = append(res.Matches, er.Match{I: i, J: j, Probability: out.Probabilities[k]})
	}
	if m, ok := pipe.EvaluateMatches(out.Matched); ok {
		res.Evaluation = &m
	}
	return res
}

// indent prefixes every line of a rendered trace for the stderr report.
func indent(s string) string {
	var sb strings.Builder
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		sb.WriteString("  ")
		sb.WriteString(line)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// fail prints a readable, taxonomy-aware message and exits non-zero.
func fail(err error) {
	switch {
	case errors.Is(err, er.ErrInvalidOptions):
		fmt.Fprintf(os.Stderr, "erresolve: bad configuration: %v\n", err)
		os.Exit(2)
	case errors.Is(err, er.ErrNoRecords):
		fmt.Fprintln(os.Stderr, "erresolve: the dataset has no records — is the CSV empty?")
	case errors.Is(err, er.ErrNoCandidates):
		fmt.Fprintln(os.Stderr, "erresolve: no two records share a term, so nothing can match;")
		fmt.Fprintln(os.Stderr, "  check the text column, or relax -eta and the blocking options")
	case errors.Is(err, er.ErrBudgetExceeded):
		fmt.Fprintf(os.Stderr, "erresolve: %v\n  raise -timeout or shrink the dataset\n", err)
	case errors.Is(err, context.Canceled):
		fmt.Fprintln(os.Stderr, "erresolve: interrupted")
	default:
		fmt.Fprintf(os.Stderr, "erresolve: %v\n", err)
	}
	os.Exit(1)
}

func main() {
	eta := flag.Float64("eta", 0.98, "matching probability threshold η")
	iterations := flag.Int("iterations", 5, "ITER ⇄ CliqueRank fusion rounds")
	useRSS := flag.Bool("rss", false, "use the sampling-based RSS estimator instead of CliqueRank")
	maxPairs := flag.Int("max-pairs", 0, "candidate-pair budget (0 = unlimited); degrades blocking gracefully")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole run (0 = unlimited)")
	workers := flag.Int("workers", 0, "kernel goroutines (0 = GOMAXPROCS); results are identical for every value")
	verbose := flag.Bool("v", false, "print every matched pair with its record texts")
	trace := flag.Bool("trace", false, "print per-stage timings (wall, sizes, rounds) to stderr")
	explain := flag.Bool("explain", false, "print the shared-term evidence behind each matched pair")
	maxClusters := flag.Int("clusters", 10, "number of largest clusters to print")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: erresolve [flags] file.csv")
		flag.Usage()
		os.Exit(2)
	}
	d, err := er.LoadCSVFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "erresolve: %v\n", err)
		os.Exit(1)
	}

	opts := er.DefaultOptions()
	opts.Eta = *eta
	opts.FusionIterations = *iterations
	opts.UseRSS = *useRSS
	opts.MaxCandidatePairs = *maxPairs
	opts.MaxWallClock = *timeout
	opts.Workers = *workers

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	pipe, err := er.NewPipelineContext(ctx, d, opts)
	if err != nil {
		fail(err)
	}
	if err := pipe.CheckCandidates(); err != nil {
		fail(err)
	}
	if dr := pipe.Degradation(); dr != nil {
		fmt.Fprintf(os.Stderr, "erresolve: candidate budget exceeded (%d natural pairs > %d); degraded:\n",
			dr.OriginalPairs, *maxPairs)
		for _, step := range dr.Steps {
			fmt.Fprintf(os.Stderr, "  - %s\n", step)
		}
	}
	out, err := pipe.FusionContext(ctx)
	if err != nil {
		fail(err)
	}
	res := assemble(d, pipe, out)
	if *trace {
		fmt.Fprint(os.Stderr, "stage trace:\n"+indent(pipe.Trace().String()+out.Trace.String()))
	}

	fmt.Printf("%s: %d records, %d sources, record graph %d nodes / %d edges\n",
		d.Name(), d.NumRecords(), d.NumSources(), res.GraphNodes, res.GraphEdges)
	fmt.Printf("resolved %d matching pairs in %s\n", len(res.Matches), res.Elapsed.Round(time.Millisecond))
	if !res.Converged {
		fmt.Fprintln(os.Stderr, "erresolve: warning: ITER hit its iteration cap before converging")
	}
	if res.NumericRepairs > 0 {
		fmt.Fprintf(os.Stderr, "erresolve: warning: %d non-finite values repaired during fusion\n", res.NumericRepairs)
	}

	if *verbose || *explain {
		for _, m := range res.Matches {
			fmt.Printf("p=%.3f\n  [%d] %s\n  [%d] %s\n", m.Probability, m.I, d.Text(m.I), m.J, d.Text(m.J))
			if !*explain {
				continue
			}
			if ex, ok := pipe.Explain(out, m.I, m.J); ok {
				fmt.Printf("  evidence (term: learned weight):")
				for _, tw := range ex.SharedTerms {
					fmt.Printf(" %s:%.2f", tw.Term, tw.Weight)
				}
				fmt.Println()
			}
		}
	}

	printed := 0
	for _, c := range res.Clusters {
		if len(c) < 2 || printed >= *maxClusters {
			break
		}
		printed++
		fmt.Printf("entity %d (%d records):\n", printed, len(c))
		for _, r := range c {
			fmt.Printf("  [%d] %s\n", r, d.Text(r))
		}
	}

	if res.Evaluation != nil {
		fmt.Printf("evaluation: precision %.3f, recall %.3f, F1 %.3f\n",
			res.Evaluation.Precision, res.Evaluation.Recall, res.Evaluation.F1)
	}
}
