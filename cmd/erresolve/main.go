// Command erresolve runs the unsupervised fusion framework on a CSV dataset
// (header: id,entity,source,text) and prints the matched pairs and entity
// clusters. When the file carries entity labels, pairwise
// precision/recall/F1 are reported as well.
//
// Usage:
//
//	erresolve [-eta 0.98] [-iterations 5] [-rss] [-v] file.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

// assemble builds the Result view from the staged pipeline outputs (the
// staged API is used so -explain can reference the same fusion outcome).
func assemble(d *er.Dataset, pipe *er.Pipeline, out *er.FusionOutcome) *er.Result {
	res := &er.Result{
		Probabilities: out.Probabilities,
		Clusters:      pipe.Clusters(out.Matched),
		GraphNodes:    out.GraphNodes,
		GraphEdges:    out.GraphEdges,
		Elapsed:       out.Elapsed,
	}
	for k, matched := range out.Matched {
		if !matched {
			continue
		}
		i, j := pipe.CandidatePair(k)
		res.Matches = append(res.Matches, er.Match{I: i, J: j, Probability: out.Probabilities[k]})
	}
	if m, ok := pipe.EvaluateMatches(out.Matched); ok {
		res.Evaluation = &m
	}
	return res
}

func main() {
	eta := flag.Float64("eta", 0.98, "matching probability threshold η")
	iterations := flag.Int("iterations", 5, "ITER ⇄ CliqueRank fusion rounds")
	useRSS := flag.Bool("rss", false, "use the sampling-based RSS estimator instead of CliqueRank")
	verbose := flag.Bool("v", false, "print every matched pair with its record texts")
	explain := flag.Bool("explain", false, "print the shared-term evidence behind each matched pair")
	maxClusters := flag.Int("clusters", 10, "number of largest clusters to print")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: erresolve [flags] file.csv")
		flag.Usage()
		os.Exit(2)
	}
	d, err := er.LoadCSVFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "erresolve: %v\n", err)
		os.Exit(1)
	}

	opts := er.DefaultOptions()
	opts.Eta = *eta
	opts.FusionIterations = *iterations
	opts.UseRSS = *useRSS
	if err := opts.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "erresolve: %v\n", err)
		os.Exit(2)
	}
	pipe := er.NewPipeline(d, opts)
	out := pipe.Fusion()
	res := assemble(d, pipe, out)

	fmt.Printf("%s: %d records, %d sources, record graph %d nodes / %d edges\n",
		d.Name(), d.NumRecords(), d.NumSources(), res.GraphNodes, res.GraphEdges)
	fmt.Printf("resolved %d matching pairs in %s\n", len(res.Matches), res.Elapsed.Round(1e6))

	if *verbose || *explain {
		for _, m := range res.Matches {
			fmt.Printf("p=%.3f\n  [%d] %s\n  [%d] %s\n", m.Probability, m.I, d.Text(m.I), m.J, d.Text(m.J))
			if !*explain {
				continue
			}
			if ex, ok := pipe.Explain(out, m.I, m.J); ok {
				fmt.Printf("  evidence (term: learned weight):")
				for _, tw := range ex.SharedTerms {
					fmt.Printf(" %s:%.2f", tw.Term, tw.Weight)
				}
				fmt.Println()
			}
		}
	}

	printed := 0
	for _, c := range res.Clusters {
		if len(c) < 2 || printed >= *maxClusters {
			break
		}
		printed++
		fmt.Printf("entity %d (%d records):\n", printed, len(c))
		for _, r := range c {
			fmt.Printf("  [%d] %s\n", r, d.Text(r))
		}
	}

	if res.Evaluation != nil {
		fmt.Printf("evaluation: precision %.3f, recall %.3f, F1 %.3f\n",
			res.Evaluation.Precision, res.Evaluation.Recall, res.Evaluation.F1)
	}
}
