// Command ergen writes synthetic benchmark corpora to CSV files in the
// format accepted by cmd/erresolve, cmd/erbench -input and er.LoadCSV.
//
// It has two modes. Replica mode (the default) regenerates the paper's
// three benchmark replicas at their published sizes:
//
//	ergen [-dataset restaurant|product|paper|all] [-scale 1.0] [-seed 1] [-out DIR]
//
// Synthetic mode, selected by -records N, generates an open-scale labeled
// corpus (10^5–10^7 records) with Zipf-skewed term distributions, a
// tunable duplication rate and optional multi-source structure — the
// input for the 100k+ scaling benchmarks:
//
//	ergen -records 100000 [-dup 0.3] [-sources 1] [-max-cluster 8]
//	      [-vocab 4096] [-zipf 2.0] [-tokens 8] [-name synthetic]
//	      [-seed 1] [-out DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	dataset := flag.String("dataset", "all", "replica to generate: restaurant, product, paper or all")
	scale := flag.Float64("scale", 1.0, "replica scale (1.0 = published dataset sizes)")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", ".", "output directory")

	records := flag.Int("records", 0, "synthetic mode: exact record count (0 = replica mode)")
	dup := flag.Float64("dup", 0.3, "synthetic mode: duplication rate in [0, 0.95]")
	sources := flag.Int("sources", 1, "synthetic mode: number of record sources")
	maxCluster := flag.Int("max-cluster", 8, "synthetic mode: max records per entity")
	vocab := flag.Int("vocab", 4096, "synthetic mode: shared vocabulary size")
	zipf := flag.Float64("zipf", 2.0, "synthetic mode: term-distribution skew exponent")
	tokens := flag.Int("tokens", 8, "synthetic mode: approximate description length")
	name := flag.String("name", "synthetic", "synthetic mode: dataset name and output file stem")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "ergen: %v\n", err)
		os.Exit(1)
	}

	if *records > 0 {
		d := er.SyntheticDataset(er.SyntheticConfig{
			Seed:            *seed,
			Records:         *records,
			DuplicateRate:   *dup,
			MaxClusterSize:  *maxCluster,
			Sources:         *sources,
			VocabSize:       *vocab,
			ZipfExponent:    *zipf,
			TokensPerRecord: *tokens,
			Name:            *name,
		})
		writeDataset(d, filepath.Join(*out, *name+".csv"))
		return
	}

	cfg := er.ReplicaConfig{Seed: *seed, Scale: *scale}
	gens := map[string]func(er.ReplicaConfig) *er.Dataset{
		"restaurant": er.RestaurantReplica,
		"product":    er.ProductReplica,
		"paper":      er.PaperReplica,
	}
	names := []string{"restaurant", "product", "paper"}
	if *dataset != "all" {
		if _, ok := gens[*dataset]; !ok {
			fmt.Fprintf(os.Stderr, "ergen: unknown dataset %q\n", *dataset)
			os.Exit(2)
		}
		names = []string{*dataset}
	}
	for _, n := range names {
		writeDataset(gens[n](cfg), filepath.Join(*out, n+".csv"))
	}
}

// writeDataset serializes one dataset and reports its shape, exiting on
// any I/O failure.
func writeDataset(d *er.Dataset, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ergen: %v\n", err)
		os.Exit(1)
	}
	if err := d.WriteCSV(f); err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "ergen: writing %s: %v\n", path, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "ergen: closing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d records, %d true matching pairs -> %s\n",
		d.Name(), d.NumRecords(), d.NumTrueMatches(), path)
}
