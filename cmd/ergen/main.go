// Command ergen writes synthetic benchmark corpora to CSV files in the
// format accepted by cmd/erresolve, cmd/erbench -input and er.LoadCSV.
//
// It has two modes. Replica mode (the default) regenerates the paper's
// three benchmark replicas at their published sizes:
//
//	ergen [-dataset restaurant|product|paper|all] [-scale 1.0] [-seed 1] [-out DIR]
//
// Synthetic mode, selected by -records N, generates an open-scale labeled
// corpus (10^5–10^7 records) with Zipf-skewed term distributions, a
// tunable duplication rate and optional multi-source structure — the
// input for the 100k+ scaling benchmarks:
//
//	ergen -records 100000 [-dup 0.3] [-sources 1] [-max-cluster 8]
//	      [-vocab 4096] [-zipf 2.0] [-tokens 8] [-name synthetic]
//	      [-seed 1] [-out DIR]
//
// Synthetic mode additionally accepts -mutations M, which writes a
// deterministic upsert/delete trace (<name>.mutations.jsonl) alongside the
// CSV: an initial load of every record followed by M seeded mutation steps
// (text revisions, deletions, and re-insertions of deleted records), with a
// resolve op after every -resolve-every mutations and one at the end. The
// trace is the input for `erctl replay`, which drives it against a running
// erserve to exercise the incremental (delta-scoped) resolve path.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	dataset := flag.String("dataset", "all", "replica to generate: restaurant, product, paper or all")
	scale := flag.Float64("scale", 1.0, "replica scale (1.0 = published dataset sizes)")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", ".", "output directory")

	records := flag.Int("records", 0, "synthetic mode: exact record count (0 = replica mode)")
	dup := flag.Float64("dup", 0.3, "synthetic mode: duplication rate in [0, 0.95]")
	sources := flag.Int("sources", 1, "synthetic mode: number of record sources")
	maxCluster := flag.Int("max-cluster", 8, "synthetic mode: max records per entity")
	vocab := flag.Int("vocab", 4096, "synthetic mode: shared vocabulary size")
	zipf := flag.Float64("zipf", 2.0, "synthetic mode: term-distribution skew exponent")
	tokens := flag.Int("tokens", 8, "synthetic mode: approximate description length")
	name := flag.String("name", "synthetic", "synthetic mode: dataset name and output file stem")
	mutations := flag.Int("mutations", 0, "synthetic mode: also write a <name>.mutations.jsonl trace with this many mutation steps")
	resolveEvery := flag.Int("resolve-every", 0, "mutation trace: interleave a resolve op after every N mutations (0 = final resolve only)")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "ergen: %v\n", err)
		os.Exit(1)
	}

	if *records > 0 {
		d := er.SyntheticDataset(er.SyntheticConfig{
			Seed:            *seed,
			Records:         *records,
			DuplicateRate:   *dup,
			MaxClusterSize:  *maxCluster,
			Sources:         *sources,
			VocabSize:       *vocab,
			ZipfExponent:    *zipf,
			TokensPerRecord: *tokens,
			Name:            *name,
		})
		writeDataset(d, filepath.Join(*out, *name+".csv"))
		if *mutations > 0 {
			writeMutations(d, *seed, *mutations, *resolveEvery,
				filepath.Join(*out, *name+".mutations.jsonl"))
		}
		return
	}
	if *mutations > 0 {
		fmt.Fprintln(os.Stderr, "ergen: -mutations requires synthetic mode (-records N)")
		os.Exit(2)
	}

	cfg := er.ReplicaConfig{Seed: *seed, Scale: *scale}
	gens := map[string]func(er.ReplicaConfig) *er.Dataset{
		"restaurant": er.RestaurantReplica,
		"product":    er.ProductReplica,
		"paper":      er.PaperReplica,
	}
	names := []string{"restaurant", "product", "paper"}
	if *dataset != "all" {
		if _, ok := gens[*dataset]; !ok {
			fmt.Fprintf(os.Stderr, "ergen: unknown dataset %q\n", *dataset)
			os.Exit(2)
		}
		names = []string{*dataset}
	}
	for _, n := range names {
		writeDataset(gens[n](cfg), filepath.Join(*out, n+".csv"))
	}
}

// mutationOp is one line of the <name>.mutations.jsonl trace. Op is
// "upsert" (ID, Text, Source set), "delete" (ID set) or "resolve"
// (no other fields); the format matches what erctl replay consumes.
type mutationOp struct {
	Op     string `json:"op"`
	ID     string `json:"id,omitempty"`
	Text   string `json:"text,omitempty"`
	Source int    `json:"source,omitempty"`
}

// writeMutations emits the deterministic mutation trace: an initial load
// of every record, then steps seeded mutation steps — 50% text revision of
// a live record (appending a fresh revision token so its term set, and
// with it the candidate graph, actually changes), 25% deletion of a live
// record, 25% re-insertion of a previously deleted one — with a resolve
// interleaved every resolveEvery mutations and one final resolve. Equal
// seeds give byte-identical traces.
func writeMutations(d *er.Dataset, seed int64, steps, resolveEvery int, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ergen: %v\n", err)
		os.Exit(1)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	emit := func(op mutationOp) {
		if err := enc.Encode(op); err != nil {
			fmt.Fprintf(os.Stderr, "ergen: writing %s: %v\n", path, err)
			os.Exit(1)
		}
	}

	n := d.NumRecords()
	recID := func(i int) string { return fmt.Sprintf("r%06d", i) }
	// Initial load. Sources are intentionally collapsed to 0: the trace is
	// replayed against erserve's default (single-source) resolve options,
	// and carrying the generator's source split would silently empty the
	// candidate set under CrossSourceOnly-style configurations.
	live := make([]int, n)
	for i := 0; i < n; i++ {
		live[i] = i
		emit(mutationOp{Op: "upsert", ID: recID(i), Text: d.Text(i)})
	}

	rng := rand.New(rand.NewSource(seed))
	var deleted []int
	rev := make(map[int]int)
	resolves := 0
	for s := 0; s < steps; s++ {
		switch r := rng.Intn(4); {
		case r < 2 && len(live) > 0: // text revision
			i := live[rng.Intn(len(live))]
			rev[i]++
			emit(mutationOp{Op: "upsert", ID: recID(i),
				Text: fmt.Sprintf("%s rev%d", d.Text(i), rev[i])})
		case r == 2 && len(live) > 1: // delete
			k := rng.Intn(len(live))
			i := live[k]
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			deleted = append(deleted, i)
			emit(mutationOp{Op: "delete", ID: recID(i)})
		case len(deleted) > 0: // re-insert at its original text
			i := deleted[len(deleted)-1]
			deleted = deleted[:len(deleted)-1]
			live = append(live, i)
			delete(rev, i)
			emit(mutationOp{Op: "upsert", ID: recID(i), Text: d.Text(i)})
		default:
			s-- // no eligible target this step; redraw
			continue
		}
		if resolveEvery > 0 && (s+1)%resolveEvery == 0 {
			emit(mutationOp{Op: "resolve"})
			resolves++
		}
	}
	emit(mutationOp{Op: "resolve"})
	resolves++

	if err := w.Flush(); err == nil {
		err = f.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "ergen: closing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d loads, %d mutations, %d resolves -> %s\n",
		d.Name(), n, steps, resolves, path)
}

// writeDataset serializes one dataset and reports its shape, exiting on
// any I/O failure.
func writeDataset(d *er.Dataset, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ergen: %v\n", err)
		os.Exit(1)
	}
	if err := d.WriteCSV(f); err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "ergen: writing %s: %v\n", path, err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "ergen: closing %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d records, %d true matching pairs -> %s\n",
		d.Name(), d.NumRecords(), d.NumTrueMatches(), path)
}
