// Command ergen writes the synthetic benchmark replicas to CSV files in the
// format accepted by cmd/erresolve and er.LoadCSV.
//
// Usage:
//
//	ergen [-dataset restaurant|product|paper|all] [-scale 1.0] [-seed 1] [-out DIR]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	dataset := flag.String("dataset", "all", "replica to generate: restaurant, product, paper or all")
	scale := flag.Float64("scale", 1.0, "replica scale (1.0 = published dataset sizes)")
	seed := flag.Int64("seed", 1, "generator seed")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	cfg := er.ReplicaConfig{Seed: *seed, Scale: *scale}
	gens := map[string]func(er.ReplicaConfig) *er.Dataset{
		"restaurant": er.RestaurantReplica,
		"product":    er.ProductReplica,
		"paper":      er.PaperReplica,
	}
	names := []string{"restaurant", "product", "paper"}
	if *dataset != "all" {
		if _, ok := gens[*dataset]; !ok {
			fmt.Fprintf(os.Stderr, "ergen: unknown dataset %q\n", *dataset)
			os.Exit(2)
		}
		names = []string{*dataset}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "ergen: %v\n", err)
		os.Exit(1)
	}
	for _, name := range names {
		d := gens[name](cfg)
		path := filepath.Join(*out, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ergen: %v\n", err)
			os.Exit(1)
		}
		if err := d.WriteCSV(f); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "ergen: writing %s: %v\n", path, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "ergen: closing %s: %v\n", path, err)
			os.Exit(1)
		}
		fmt.Printf("%s: %d records, %d true matching pairs -> %s\n",
			d.Name(), d.NumRecords(), d.NumTrueMatches(), path)
	}
}
