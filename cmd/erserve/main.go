// Command erserve runs the resolution daemon: an HTTP server that accepts
// resolution jobs (CSV uploads or named benchmark replicas) and executes
// them through the hardened pipeline under admission control, per-job
// deadlines, per-class circuit breaking and graceful drain.
//
// Endpoints:
//
//	POST /resolve    submit a job and wait for its result
//	GET  /jobs/{id}  inspect a retained job
//	GET  /healthz    liveness
//	GET  /readyz     readiness (503 while draining or recovering)
//	GET  /stats      counters, latency quantiles, breaker state
//
// plus the durable collections API (/collections...; see serve.Handler).
// With -data-dir every collection mutation is journaled through a
// checksummed write-ahead log before it is acknowledged; on startup the
// daemon replays the journal (newest snapshot first, then the log tail)
// and reports progress through /readyz.
//
// On SIGTERM or SIGINT the daemon stops admitting work, lets in-flight
// jobs finish within the drain budget, hard-cancels stragglers, writes a
// final state snapshot to the journal, and exits 0 on a clean drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address (use :0 for an ephemeral port)")
		concurrency = flag.Int("concurrency", serve.DefaultMaxConcurrency, "jobs resolved in parallel")
		queueDepth  = flag.Int("queue", serve.DefaultQueueDepth, "admission queue depth (full queue fast-fails 429)")
		jobTimeout  = flag.Duration("job-timeout", serve.DefaultJobTimeout, "per-job deadline, measured from admission")
		drainBudget = flag.Duration("drain-budget", serve.DefaultDrainBudget, "graceful-drain budget on shutdown")
		maxUpload   = flag.Int64("max-upload", serve.DefaultMaxUploadBytes, "maximum CSV upload size in bytes")
		threshold   = flag.Int("breaker-threshold", serve.DefaultBreakerThreshold, "consecutive failures tripping a class breaker (negative disables)")
		cooldown    = flag.Duration("breaker-cooldown", serve.DefaultBreakerCooldown, "initial breaker open interval (doubles per re-trip)")
		quiet       = flag.Bool("quiet", false, "suppress per-job lifecycle logs")
		workers     = flag.Int("workers-per-job", 0, "kernel-goroutine budget per job (0 = GOMAXPROCS/concurrency, min 1)")
		snapshots   = flag.Int("snapshot-cache", 0, "snapshots shared across jobs on the same dataset (0 = default, negative disables)")
		dataDir     = flag.String("data-dir", "", "directory for the durable-collections journal (empty = in-memory collections)")
		fsyncIvl    = flag.Duration("fsync-interval", 0, "group-commit window for journal fsyncs (0 = fsync every mutation; requires -data-dir)")
		maxSegment  = flag.Int64("max-segment-bytes", 0, "journal segment size triggering rotation (0 = default; requires -data-dir)")
	)
	flag.Parse()
	opts := serve.Options{
		MaxConcurrency:   *concurrency,
		WorkersPerJob:    *workers,
		QueueDepth:       *queueDepth,
		JobTimeout:       *jobTimeout,
		DrainBudget:      *drainBudget,
		MaxUploadBytes:   *maxUpload,
		BreakerThreshold: *threshold,
		BreakerCooldown:  *cooldown,
		SnapshotCache:    *snapshots,
		DataDir:          *dataDir,
		FsyncInterval:    *fsyncIvl,
		MaxSegmentBytes:  *maxSegment,
	}
	if !*quiet {
		opts.Logf = log.Printf
	}
	if err := run(*addr, opts, *drainBudget); err != nil {
		fmt.Fprintln(os.Stderr, "erserve:", err)
		os.Exit(1)
	}
}

func run(addr string, opts serve.Options, drainBudget time.Duration) error {
	srv, err := serve.New(opts)
	if err != nil {
		return fmt.Errorf("options: %w", err)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listen: %w", err)
	}
	// Printed (not logged) so scripts binding :0 can scrape the port.
	fmt.Printf("erserve listening on %s\n", ln.Addr())

	// Slowloris guard: a client trickling header bytes (or parking idle
	// keep-alive sockets) must not pin connections forever. No WriteTimeout:
	// response time is governed by the per-job deadline — a resolve can
	// legitimately hold its response for the whole JobTimeout.
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	//lint:ignore goleak Serve returns when Shutdown closes the listener; the goroutine's lifetime is the server's
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("erserve: received %s, draining (budget %s)", s, drainBudget)
	case err := <-serveErr:
		return fmt.Errorf("serve: %w", err)
	}

	// Drain order matters: first the job server (stops admission, waits for
	// in-flight jobs, hard-cancels stragglers past the budget), then the
	// HTTP server (waits for handlers, which unblock when their jobs reach
	// terminal state). The outer context adds slack for straggler
	// cancellation to propagate through guard checkpoints.
	ctx, cancel := context.WithTimeout(context.Background(), drainBudget+10*time.Second)
	defer cancel()
	drainErr := srv.Shutdown(ctx)
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("http shutdown: %w", err)
	}
	if drainErr != nil {
		return drainErr
	}
	log.Printf("erserve: drained cleanly")
	return nil
}
