// Command erlint runs the repository's static-analysis suite: eleven
// repo-specific analyzers — six syntactic checks plus five flow-aware
// concurrency and durability checks built on per-function CFGs and
// interprocedural call summaries — that mechanically enforce the
// pipeline's safety, determinism, cancellation and durability invariants
// (see internal/lint and DESIGN.md §7, §12).
//
// Usage:
//
//	erlint [-json] [-enable a,b] [-disable a,b] [-list] [packages]
//
// The package argument is either "./..." (the default: every non-test
// package of the module) or a comma-free list of directories. erlint exits
// 0 when the tree is clean, 1 when any finding is reported, and 2 on usage
// or load errors. Suppressions:
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>   on or above the line
//	//lint:invariant <reason>                        intentional panic asserts
//	//lint:hotpath <reason>                          allocation-free function
//
// A directive without a reason is itself reported, and so is a directive
// that suppressed nothing in a run covering its scope (stale suppression).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	enable := flag.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := flag.String("disable", "", "comma-separated analyzers to skip")
	list := flag.Bool("list", false, "list available analyzers and exit")
	flag.Parse()

	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "erlint:", err)
		os.Exit(2)
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %-34s %s\n", a.Name, a.Scope, a.Doc)
		}
		return
	}

	loader, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "erlint:", err)
		os.Exit(2)
	}
	paths, err := targetPaths(loader, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "erlint:", err)
		os.Exit(2)
	}
	var pkgs []*lint.Package
	for _, path := range paths {
		p, err := loader.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "erlint:", err)
			os.Exit(2)
		}
		pkgs = append(pkgs, p)
	}

	findings := lint.Run(pkgs, analyzers)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "erlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "erlint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// selectAnalyzers applies -enable/-disable to the full suite.
func selectAnalyzers(enable, disable string) ([]*lint.Analyzer, error) {
	all := lint.All()
	byName := make(map[string]*lint.Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	selected := all
	if enable != "" {
		selected = nil
		for _, name := range strings.Split(enable, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
			}
			selected = append(selected, a)
		}
	}
	if disable != "" {
		skip := make(map[string]bool)
		for _, name := range strings.Split(disable, ",") {
			if _, ok := byName[strings.TrimSpace(name)]; !ok {
				return nil, fmt.Errorf("unknown analyzer %q (try -list)", name)
			}
			skip[strings.TrimSpace(name)] = true
		}
		kept := selected[:0:0]
		for _, a := range selected {
			if !skip[a.Name] {
				kept = append(kept, a)
			}
		}
		selected = kept
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return selected, nil
}

// targetPaths resolves command-line package arguments to import paths.
// "./..." (and no arguments at all) selects every package of the module;
// anything else is a directory resolved against the module.
func targetPaths(loader *lint.Loader, args []string) ([]string, error) {
	if len(args) == 0 {
		return loader.Discover()
	}
	var out []string
	for _, arg := range args {
		if arg == "./..." || arg == "..." {
			paths, err := loader.Discover()
			if err != nil {
				return nil, err
			}
			out = append(out, paths...)
			continue
		}
		abs, err := filepath.Abs(arg)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(loader.ModuleRoot, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("package %q is outside the module", arg)
		}
		if rel == "." {
			out = append(out, loader.ModulePath)
		} else {
			out = append(out, loader.ModulePath+"/"+filepath.ToSlash(rel))
		}
	}
	return out, nil
}
