package main

import (
	"testing"

	"repro/internal/lint"
)

func names(as []*lint.Analyzer) []string {
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = a.Name
	}
	return out
}

func TestSelectAnalyzersDefault(t *testing.T) {
	as, err := selectAnalyzers("", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != len(lint.All()) {
		t.Fatalf("default selection = %v, want the full suite", names(as))
	}
}

func TestSelectAnalyzersEnable(t *testing.T) {
	as, err := selectAnalyzers("nopanic, determinism", "")
	if err != nil {
		t.Fatal(err)
	}
	got := names(as)
	if len(got) != 2 || got[0] != "nopanic" || got[1] != "determinism" {
		t.Fatalf("enable selection = %v", got)
	}
}

func TestSelectAnalyzersDisable(t *testing.T) {
	as, err := selectAnalyzers("", "optzero")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range as {
		if a.Name == "optzero" {
			t.Fatalf("disable left optzero in %v", names(as))
		}
	}
	if len(as) != len(lint.All())-1 {
		t.Fatalf("disable selection = %v", names(as))
	}
}

func TestSelectAnalyzersErrors(t *testing.T) {
	if _, err := selectAnalyzers("nosuch", ""); err == nil {
		t.Error("unknown -enable name accepted")
	}
	if _, err := selectAnalyzers("", "nosuch"); err == nil {
		t.Error("unknown -disable name accepted")
	}
	if _, err := selectAnalyzers("nopanic", "nopanic"); err == nil {
		t.Error("empty selection accepted")
	}
}

func TestTargetPaths(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := targetPaths(loader, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("./... resolved to no packages")
	}
	one, err := targetPaths(loader, []string{"."})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0] != "repro/cmd/erlint" {
		t.Fatalf(". resolved to %v from cmd/erlint", one)
	}
	if _, err := targetPaths(loader, []string{"/"}); err == nil {
		t.Error("path outside the module accepted")
	}
}
