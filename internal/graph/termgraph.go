package graph

import (
	"sort"

	"repro/internal/textproc"
)

// TermGraph is the undirected term co-occurrence graph of the TextRank /
// TW-IDF baseline (§III-B): nodes are terms and an edge connects two terms
// that co-occur within a fixed-size sliding window in some record.
type TermGraph struct {
	// Adj holds, per term, its sorted distinct neighbor term IDs.
	Adj [][]int32
}

// NewTermGraph slides a window of the given size over every record's token
// sequence and connects all distinct term pairs inside the window. Window
// sizes below 2 are treated as 2 (a window of one token has no pairs).
func NewTermGraph(c *textproc.Corpus, window int) *TermGraph {
	if window < 2 {
		window = 2
	}
	sets := make([]map[int32]struct{}, c.NumTerms())
	link := func(a, b int32) {
		if a == b {
			return
		}
		if sets[a] == nil {
			sets[a] = make(map[int32]struct{})
		}
		if sets[b] == nil {
			sets[b] = make(map[int32]struct{})
		}
		sets[a][b] = struct{}{}
		sets[b][a] = struct{}{}
	}
	for _, seq := range c.Seqs {
		for i := range seq {
			end := i + window
			if end > len(seq) {
				end = len(seq)
			}
			for j := i + 1; j < end; j++ {
				link(seq[i], seq[j])
			}
		}
	}
	g := &TermGraph{Adj: make([][]int32, c.NumTerms())}
	for t, set := range sets {
		if len(set) == 0 {
			continue
		}
		nbrs := make([]int32, 0, len(set))
		for n := range set {
			nbrs = append(nbrs, n)
		}
		sort.Slice(nbrs, func(i, j int) bool { return nbrs[i] < nbrs[j] })
		g.Adj[t] = nbrs
	}
	return g
}

// NumTerms returns the node count.
func (g *TermGraph) NumTerms() int { return len(g.Adj) }

// NumEdges returns the undirected edge count.
func (g *TermGraph) NumEdges() int {
	n := 0
	for _, a := range g.Adj {
		n += len(a)
	}
	return n / 2
}

// Degree returns the degree of term t.
func (g *TermGraph) Degree(t int) int { return len(g.Adj[t]) }
