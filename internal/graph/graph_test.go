package graph

import (
	"math/rand"
	"testing"

	"repro/internal/textproc"
)

func TestUnionFindBasics(t *testing.T) {
	u := NewUnionFind(5)
	if u.Count() != 5 {
		t.Fatalf("Count = %d, want 5", u.Count())
	}
	if !u.Union(0, 1) {
		t.Error("first union must report merge")
	}
	if u.Union(1, 0) {
		t.Error("repeated union must report no merge")
	}
	u.Union(1, 2)
	if !u.Connected(0, 2) {
		t.Error("0 and 2 must be connected transitively")
	}
	if u.Connected(0, 3) {
		t.Error("0 and 3 must not be connected")
	}
	if u.Count() != 3 {
		t.Errorf("Count = %d, want 3", u.Count())
	}
}

func TestUnionFindGroups(t *testing.T) {
	u := NewUnionFind(6)
	u.Union(0, 1)
	u.Union(1, 2)
	u.Union(3, 4)
	groups := u.Groups(2)
	if len(groups) != 2 {
		t.Fatalf("Groups(2) = %v, want 2 groups", groups)
	}
	if len(groups[0]) != 3 || groups[0][0] != 0 {
		t.Errorf("first group = %v, want [0 1 2]", groups[0])
	}
	if len(groups[1]) != 2 || groups[1][0] != 3 {
		t.Errorf("second group = %v, want [3 4]", groups[1])
	}
	all := u.Groups(1)
	if len(all) != 3 {
		t.Errorf("Groups(1) = %d groups, want 3 (including singleton 5)", len(all))
	}
}

// TestUnionFindMatchesNaive compares against a brute-force reachability
// model over random union sequences.
func TestUnionFindMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		u := NewUnionFind(n)
		label := make([]int, n)
		for i := range label {
			label[i] = i
		}
		for op := 0; op < 30; op++ {
			a, b := rng.Intn(n), rng.Intn(n)
			u.Union(a, b)
			la, lb := label[a], label[b]
			if la != lb {
				for i := range label {
					if label[i] == lb {
						label[i] = la
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if u.Connected(i, j) != (label[i] == label[j]) {
					t.Fatalf("trial %d: Connected(%d,%d) mismatch", trial, i, j)
				}
			}
		}
	}
}

func TestTermGraphWindow(t *testing.T) {
	c := textproc.BuildCorpus(
		[]string{"aa bb cc dd"},
		textproc.CorpusOptions{Tokenize: textproc.DefaultTokenizeOptions()},
	)
	g2 := NewTermGraph(c, 2)
	// window 2: aa-bb, bb-cc, cc-dd
	if g2.NumEdges() != 3 {
		t.Errorf("window 2 edges = %d, want 3", g2.NumEdges())
	}
	g3 := NewTermGraph(c, 3)
	// window 3 adds aa-cc, bb-dd
	if g3.NumEdges() != 5 {
		t.Errorf("window 3 edges = %d, want 5", g3.NumEdges())
	}
	g4 := NewTermGraph(c, 4)
	if g4.NumEdges() != 6 {
		t.Errorf("window 4 edges = %d, want 6 (complete graph)", g4.NumEdges())
	}
}

func TestTermGraphSymmetricNoSelfLoops(t *testing.T) {
	c := textproc.BuildCorpus(
		[]string{"aa bb aa cc", "bb dd bb", "ee"},
		textproc.CorpusOptions{Tokenize: textproc.DefaultTokenizeOptions()},
	)
	g := NewTermGraph(c, 3)
	for t1, nbrs := range g.Adj {
		for _, t2 := range nbrs {
			if int(t2) == t1 {
				t.Fatalf("self loop at term %d", t1)
			}
			found := false
			for _, back := range g.Adj[t2] {
				if int(back) == t1 {
					found = true
				}
			}
			if !found {
				t.Fatalf("edge %d-%d not symmetric", t1, t2)
			}
		}
	}
	// "ee" appears alone in its record and never co-occurs.
	ee := c.Index["ee"]
	if g.Degree(ee) != 0 {
		t.Errorf("isolated term has degree %d", g.Degree(ee))
	}
}

func TestTermGraphRepeatedTokenNoSelfEdge(t *testing.T) {
	c := textproc.BuildCorpus(
		[]string{"aa aa aa"},
		textproc.CorpusOptions{Tokenize: textproc.DefaultTokenizeOptions()},
	)
	g := NewTermGraph(c, 3)
	if g.NumEdges() != 0 {
		t.Errorf("repeated token produced %d edges, want 0", g.NumEdges())
	}
}
