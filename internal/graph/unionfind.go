// Package graph provides the generic graph structures used across the
// reproduction: a union-find for entity clustering and the term
// co-occurrence graph of the TextRank/TW-IDF baseline. The specialised
// bipartite term/record-pair graph lives in package blocking (it is a direct
// byproduct of candidate generation), and the record graph G_r is
// represented by matrix.Pattern.
package graph

// UnionFind is a disjoint-set forest with union by rank and path
// compression.
type UnionFind struct {
	parent []int32
	rank   []int8
	count  int
}

// NewUnionFind creates n singleton sets.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{parent: make([]int32, n), rank: make([]int8, n), count: n}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Find returns the canonical representative of x's set.
func (u *UnionFind) Find(x int) int {
	root := int32(x)
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for int32(x) != root {
		next := u.parent[x]
		u.parent[x] = root
		x = int(next)
	}
	return int(root)
}

// Union merges the sets of a and b and reports whether they were distinct.
func (u *UnionFind) Union(a, b int) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = int32(ra)
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.count--
	return true
}

// Connected reports whether a and b are in the same set.
func (u *UnionFind) Connected(a, b int) bool { return u.Find(a) == u.Find(b) }

// Count returns the current number of disjoint sets.
func (u *UnionFind) Count() int { return u.count }

// Groups returns the members of every set with at least minSize elements,
// each group sorted ascending, groups ordered by their smallest member.
func (u *UnionFind) Groups(minSize int) [][]int {
	// Flat counting-sort layout instead of a map of per-root slices: at
	// 100k records the map version costs one tiny allocation per set. One
	// pass records each element's root and the per-root sizes, a prefix
	// sum lays the groups out in root-ID order in a single backing array,
	// and a second ascending pass fills members — the same group order
	// (roots ascending) and member order (ascending) the map version
	// produced.
	n := len(u.parent)
	root := make([]int32, n)
	size := make([]int32, n)
	for i := 0; i < n; i++ {
		r := u.Find(i)
		root[i] = int32(r)
		size[r]++
	}
	off := make([]int32, n+1)
	for r := 0; r < n; r++ {
		off[r+1] = off[r] + size[r]
	}
	members := make([]int, n)
	fill := make([]int32, n)
	copy(fill, off[:n])
	for i := 0; i < n; i++ {
		r := root[i]
		members[fill[r]] = i
		fill[r]++
	}
	var out [][]int
	for r := 0; r < n; r++ {
		if int(size[r]) >= minSize && size[r] > 0 {
			out = append(out, members[off[r]:off[r+1]:off[r+1]])
		}
	}
	return out
}
