// Package graph provides the generic graph structures used across the
// reproduction: a union-find for entity clustering and the term
// co-occurrence graph of the TextRank/TW-IDF baseline. The specialised
// bipartite term/record-pair graph lives in package blocking (it is a direct
// byproduct of candidate generation), and the record graph G_r is
// represented by matrix.Pattern.
package graph

// UnionFind is a disjoint-set forest with union by rank and path
// compression.
type UnionFind struct {
	parent []int32
	rank   []int8
	count  int
}

// NewUnionFind creates n singleton sets.
func NewUnionFind(n int) *UnionFind {
	u := &UnionFind{parent: make([]int32, n), rank: make([]int8, n), count: n}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Find returns the canonical representative of x's set.
func (u *UnionFind) Find(x int) int {
	root := int32(x)
	for u.parent[root] != root {
		root = u.parent[root]
	}
	for int32(x) != root {
		next := u.parent[x]
		u.parent[x] = root
		x = int(next)
	}
	return int(root)
}

// Union merges the sets of a and b and reports whether they were distinct.
func (u *UnionFind) Union(a, b int) bool {
	ra, rb := u.Find(a), u.Find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = int32(ra)
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	u.count--
	return true
}

// Connected reports whether a and b are in the same set.
func (u *UnionFind) Connected(a, b int) bool { return u.Find(a) == u.Find(b) }

// Count returns the current number of disjoint sets.
func (u *UnionFind) Count() int { return u.count }

// Groups returns the members of every set with at least minSize elements,
// each group sorted ascending, groups ordered by their smallest member.
func (u *UnionFind) Groups(minSize int) [][]int {
	byRoot := make(map[int][]int)
	for i := range u.parent {
		r := u.Find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	var out [][]int
	for i := range u.parent {
		if u.Find(i) != i {
			continue
		}
		g := byRoot[i]
		if len(g) >= minSize {
			out = append(out, g)
		}
	}
	return out
}
