// Package clock provides an injectable time source for the kernel packages.
//
// The determinism lint (internal/lint, analyzer "determinism") bans
// time.Now and friends inside internal/core, internal/matrix and
// internal/graph: a kernel that reads the wall clock produces run-dependent
// output (elapsed-time fields, progress callbacks) that cannot be replayed
// from a seed. Kernels instead accept a clock.Func — nil selects the system
// clock at the boundary via OrSystem, and tests inject a fake to make
// timing-dependent behavior deterministic.
package clock

import "time"

// Func returns the current time. A Func is the unit of injection: pass
// time.Now (or nil, normalized by OrSystem) for production, a closure over
// a fake counter in tests.
type Func func() time.Time

// OrSystem normalizes a possibly-nil clock: nil selects the system clock
// (time.Now), anything else is returned unchanged. Call it once at the
// kernel boundary so inner code never nil-checks.
func OrSystem(f Func) Func {
	if f == nil {
		return time.Now
	}
	return f
}
