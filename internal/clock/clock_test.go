package clock

import (
	"testing"
	"time"
)

func TestOrSystemNil(t *testing.T) {
	f := OrSystem(nil)
	if f == nil {
		t.Fatal("OrSystem(nil) returned nil")
	}
	before := time.Now()
	got := f()
	if got.Before(before.Add(-time.Second)) {
		t.Errorf("OrSystem(nil)() = %v, want roughly now (%v)", got, before)
	}
}

func TestOrSystemInjected(t *testing.T) {
	fixed := time.Date(2020, 1, 2, 3, 4, 5, 0, time.UTC)
	f := OrSystem(func() time.Time { return fixed })
	if got := f(); !got.Equal(fixed) {
		t.Errorf("injected clock returned %v, want %v", got, fixed)
	}
}
