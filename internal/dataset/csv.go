package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"repro/internal/guard"
)

// CSV layout used by WriteCSV/LoadCSV:
//
//	id,entity,source,text
//
// entity may be empty (unknown ground truth). Extra columns beyond the
// fourth are appended to the text, which makes it easy to feed real
// benchmark exports whose attributes are spread over several columns.

// WriteCSV serializes the dataset, one record per row with a header.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "entity", "source", "text"}); err != nil {
		return err
	}
	for _, r := range d.Records {
		entity := ""
		if r.EntityID >= 0 {
			entity = strconv.Itoa(r.EntityID)
		}
		row := []string{strconv.Itoa(r.ID), entity, strconv.Itoa(r.Source), r.Text}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadCSV parses a dataset written by WriteCSV (or any file with the same
// header). Records are re-indexed densely in file order. It is
// LoadCSVCheck without a cancellation checkpoint.
func LoadCSV(r io.Reader, name string) (*Dataset, error) {
	return LoadCSVCheck(r, name, nil)
}

// LoadCSVCheck is LoadCSV with a cancellation checkpoint polled once per
// row, so a huge (or maliciously unbounded) upload can be aborted mid-parse
// instead of only after the whole stream has been consumed. A canceled
// checkpoint surfaces its cause (context.Canceled / DeadlineExceeded); a
// nil checkpoint never cancels.
func LoadCSVCheck(r io.Reader, name string, check *guard.Checkpoint) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	d := &Dataset{Name: name, NumSources: 1}
	entityIDs := make(map[string]int)
	rowIdx, sawHeader := 0, false
	for {
		if err := check.Tick(); err != nil {
			return nil, fmt.Errorf("dataset: csv load aborted at row %d: %w", rowIdx, err)
		}
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading csv: %w", err)
		}
		if rowIdx == 0 && len(row) >= 1 && row[0] == "id" {
			rowIdx, sawHeader = 1, true
			continue
		}
		rowIdx++
		if len(row) < 4 {
			return nil, fmt.Errorf("dataset: row %d has %d columns, want >=4", rowIdx-1, len(row))
		}
		entity := -1
		if row[1] != "" {
			id, ok := entityIDs[row[1]]
			if !ok {
				id = len(entityIDs)
				entityIDs[row[1]] = id
			}
			entity = id
		}
		source, err := strconv.Atoi(row[2])
		if err != nil {
			return nil, fmt.Errorf("dataset: row %d: bad source %q: %w", rowIdx-1, row[2], err)
		}
		text := row[3]
		for _, extra := range row[4:] {
			if extra != "" {
				text += " " + extra
			}
		}
		if source+1 > d.NumSources {
			d.NumSources = source + 1
		}
		d.Records = append(d.Records, Record{
			ID:       len(d.Records),
			EntityID: entity,
			Source:   source,
			Text:     text,
		})
	}
	if len(d.Records) == 0 && !sawHeader {
		return nil, fmt.Errorf("dataset: empty csv")
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
