package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSV layout used by WriteCSV/LoadCSV:
//
//	id,entity,source,text
//
// entity may be empty (unknown ground truth). Extra columns beyond the
// fourth are appended to the text, which makes it easy to feed real
// benchmark exports whose attributes are spread over several columns.

// WriteCSV serializes the dataset, one record per row with a header.
func WriteCSV(w io.Writer, d *Dataset) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"id", "entity", "source", "text"}); err != nil {
		return err
	}
	for _, r := range d.Records {
		entity := ""
		if r.EntityID >= 0 {
			entity = strconv.Itoa(r.EntityID)
		}
		row := []string{strconv.Itoa(r.ID), entity, strconv.Itoa(r.Source), r.Text}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadCSV parses a dataset written by WriteCSV (or any file with the same
// header). Records are re-indexed densely in file order.
func LoadCSV(r io.Reader, name string) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: empty csv")
	}
	start := 0
	if len(rows[0]) >= 1 && rows[0][0] == "id" {
		start = 1
	}
	d := &Dataset{Name: name, NumSources: 1}
	entityIDs := make(map[string]int)
	for _, row := range rows[start:] {
		if len(row) < 4 {
			return nil, fmt.Errorf("dataset: row %d has %d columns, want >=4", len(d.Records)+start, len(row))
		}
		entity := -1
		if row[1] != "" {
			id, ok := entityIDs[row[1]]
			if !ok {
				id = len(entityIDs)
				entityIDs[row[1]] = id
			}
			entity = id
		}
		source, err := strconv.Atoi(row[2])
		if err != nil {
			return nil, fmt.Errorf("dataset: row %d: bad source %q: %w", len(d.Records)+start, row[2], err)
		}
		text := row[3]
		for _, extra := range row[4:] {
			if extra != "" {
				text += " " + extra
			}
		}
		if source+1 > d.NumSources {
			d.NumSources = source + 1
		}
		d.Records = append(d.Records, Record{
			ID:       len(d.Records),
			EntityID: entity,
			Source:   source,
			Text:     text,
		})
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
