package dataset

import (
	"reflect"
	"testing"
)

func TestSyntheticDeterministic(t *testing.T) {
	cfg := SyntheticConfig{Seed: 7, Records: 500, DuplicateRate: 0.4, Sources: 2}
	a := GenSynthetic(cfg)
	b := GenSynthetic(cfg)
	if !reflect.DeepEqual(a.Records, b.Records) {
		t.Fatal("equal configs generated different datasets")
	}
	c := GenSynthetic(SyntheticConfig{Seed: 8, Records: 500, DuplicateRate: 0.4, Sources: 2})
	if reflect.DeepEqual(a.Records, c.Records) {
		t.Fatal("different seeds generated identical datasets")
	}
}

func TestSyntheticShape(t *testing.T) {
	cfg := SyntheticConfig{Seed: 1, Records: 2000, DuplicateRate: 0.5, MaxClusterSize: 5, Sources: 3}
	d := GenSynthetic(cfg)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumRecords() != cfg.Records {
		t.Fatalf("records = %d, want exactly %d", d.NumRecords(), cfg.Records)
	}
	if !d.HasGroundTruth() {
		t.Fatal("synthetic corpus must be fully labeled")
	}
	if d.NumSources != 3 {
		t.Fatalf("sources = %d, want 3", d.NumSources)
	}
	sizes := d.ClusterSizes()
	if sizes[0] > cfg.MaxClusterSize {
		t.Fatalf("cluster of %d exceeds MaxClusterSize %d", sizes[0], cfg.MaxClusterSize)
	}
	if sizes[0] < 2 {
		t.Fatal("DuplicateRate 0.5 produced no duplicate clusters")
	}
	if d.NumTrueMatches() == 0 {
		t.Fatal("multi-source duplicates produced no cross-source matching pairs")
	}
}

func TestSyntheticSingletonsOnly(t *testing.T) {
	d := GenSynthetic(SyntheticConfig{Seed: 1, Records: 300, DuplicateRate: 0})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := d.NumTrueMatches(); got != 0 {
		t.Fatalf("zero duplicate rate produced %d matching pairs", got)
	}
	for _, s := range d.ClusterSizes() {
		if s != 1 {
			t.Fatalf("cluster of size %d with DuplicateRate 0", s)
		}
	}
}

func TestSyntheticZeroValueDefaults(t *testing.T) {
	a := GenSynthetic(SyntheticConfig{})
	b := GenSynthetic(SyntheticConfig{Seed: 1, Records: 10000, MaxClusterSize: 8,
		Sources: 1, VocabSize: 4096, ZipfExponent: 2.0, TokensPerRecord: 8, Name: "Synthetic"})
	if !reflect.DeepEqual(a.Records, b.Records) {
		t.Fatal("zero-value config must equal the documented defaults")
	}
	if a.NumRecords() != 10000 {
		t.Fatalf("default records = %d, want 10000", a.NumRecords())
	}
}

func TestSyntheticCrossSourceClusters(t *testing.T) {
	d := GenSynthetic(SyntheticConfig{Seed: 3, Records: 1000, DuplicateRate: 0.6, Sources: 2})
	bySources := map[int]map[int]bool{}
	byCount := map[int]int{}
	for _, r := range d.Records {
		if bySources[r.EntityID] == nil {
			bySources[r.EntityID] = map[int]bool{}
		}
		bySources[r.EntityID][r.Source] = true
		byCount[r.EntityID]++
	}
	for e, n := range byCount {
		if n > 1 && len(bySources[e]) < 2 {
			t.Fatalf("entity %d has %d records all in one source; duplicates must rotate sources", e, n)
		}
	}
}
