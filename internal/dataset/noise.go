package dataset

import (
	"math"
	"math/rand"
	"strings"
)

// noiser bundles the deterministic corruption operators the generators use
// to derive record variants from a canonical entity description. All
// randomness flows from a single seeded source so a (seed, scale) pair
// always produces the identical dataset.
type noiser struct {
	rng *rand.Rand
}

func newNoiser(rng *rand.Rand) *noiser { return &noiser{rng: rng} }

const letters = "abcdefghijklmnopqrstuvwxyz"

// typo applies one random character edit (substitute, delete, insert or
// transpose) to a word. Words shorter than 3 runes are returned unchanged:
// corrupting them would usually produce a different real token rather than
// a misspelling.
func (n *noiser) typo(w string) string {
	if len(w) < 3 {
		return w
	}
	b := []byte(w)
	pos := n.rng.Intn(len(b))
	switch n.rng.Intn(4) {
	case 0: // substitute
		b[pos] = letters[n.rng.Intn(len(letters))]
	case 1: // delete
		b = append(b[:pos], b[pos+1:]...)
	case 2: // insert
		c := letters[n.rng.Intn(len(letters))]
		b = append(b[:pos], append([]byte{c}, b[pos:]...)...)
	default: // transpose with next
		if pos == len(b)-1 {
			pos--
		}
		b[pos], b[pos+1] = b[pos+1], b[pos]
	}
	return string(b)
}

// maybeTypo corrupts the word with probability p.
func (n *noiser) maybeTypo(w string, p float64) string {
	if n.rng.Float64() < p {
		return n.typo(w)
	}
	return w
}

// dropWords removes each word of the sentence independently with
// probability p, always keeping at least one word.
func (n *noiser) dropWords(words []string, p float64) []string {
	out := make([]string, 0, len(words))
	for _, w := range words {
		if n.rng.Float64() < p {
			continue
		}
		out = append(out, w)
	}
	if len(out) == 0 && len(words) > 0 {
		out = append(out, words[n.rng.Intn(len(words))])
	}
	return out
}

// shuffleSome swaps adjacent words with probability p per position,
// modelling field reordering between sources.
func (n *noiser) shuffleSome(words []string, p float64) []string {
	out := make([]string, len(words))
	copy(out, words)
	for i := 0; i+1 < len(out); i++ {
		if n.rng.Float64() < p {
			out[i], out[i+1] = out[i+1], out[i]
		}
	}
	return out
}

// abbreviate replaces words with their abbreviation when the table has one,
// each with probability p.
func (n *noiser) abbreviate(words []string, table map[string]string, p float64) []string {
	out := make([]string, len(words))
	for i, w := range words {
		if ab, ok := table[w]; ok && n.rng.Float64() < p {
			out[i] = ab
			continue
		}
		out[i] = w
	}
	return out
}

// pick returns a uniformly random element.
func (n *noiser) pick(pool []string) string { return pool[n.rng.Intn(len(pool))] }

// zipfPick draws from the pool with a Zipf-like bias toward low indexes,
// modelling natural token frequency distributions: index ∝ u^exp over the
// pool, exp > 1 skews toward the head.
func (n *noiser) zipfPick(pool []string, exp float64) string {
	u := n.rng.Float64()
	idx := int(math.Pow(u, exp) * float64(len(pool)))
	if idx >= len(pool) {
		idx = len(pool) - 1
	}
	return pool[idx]
}

// digits returns a string of k random decimal digits (no leading-zero
// restriction; phone numbers and model codes are plain tokens).
func (n *noiser) digits(k int) string {
	var sb strings.Builder
	for i := 0; i < k; i++ {
		sb.WriteByte(byte('0' + n.rng.Intn(10)))
	}
	return sb.String()
}

// code returns an alphanumeric model-style code such as "pslx350h": a few
// letters, a few digits, optionally a trailing letter.
func (n *noiser) code() string {
	var sb strings.Builder
	for i, k := 0, 2+n.rng.Intn(3); i < k; i++ {
		sb.WriteByte(letters[n.rng.Intn(len(letters))])
	}
	sb.WriteString(n.digits(2 + n.rng.Intn(3)))
	if n.rng.Intn(2) == 0 {
		sb.WriteByte(letters[n.rng.Intn(len(letters))])
	}
	return sb.String()
}

// word synthesizes a pronounceable lowercase word of the given syllable
// count, used to extend the fixed vocabularies deterministically.
func (n *noiser) word(syllables int) string {
	const consonants = "bcdfghjklmnpqrstvwz"
	const vowels = "aeiou"
	var sb strings.Builder
	for i := 0; i < syllables; i++ {
		sb.WriteByte(consonants[n.rng.Intn(len(consonants))])
		sb.WriteByte(vowels[n.rng.Intn(len(vowels))])
		if n.rng.Intn(3) == 0 {
			sb.WriteByte(consonants[n.rng.Intn(len(consonants))])
		}
	}
	return sb.String()
}

// wordPool synthesizes count distinct words.
func (n *noiser) wordPool(count, syllables int) []string {
	seen := make(map[string]struct{}, count)
	out := make([]string, 0, count)
	for len(out) < count {
		w := n.word(syllables)
		if _, dup := seen[w]; dup {
			continue
		}
		seen[w] = struct{}{}
		out = append(out, w)
	}
	return out
}
