package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// Paper-size constants for the Paper replica (Cora, §VII-A): 1865 records,
// 96 clusters with at least 3 records, largest cluster 192 records.
const (
	paperRecords       = 1865
	paperLargeClusters = 96
	paperMaxCluster    = 192
)

// paperClusterSizes derives a cluster-size distribution with the published
// shape: one cluster of maxSize, a power-law decay down to size 3 across
// nLarge clusters, and the remaining records split between 2-clusters and
// singletons.
func paperClusterSizes(n, nLarge, maxSize int) []int {
	if maxSize < 3 {
		maxSize = 3
	}
	sizes := make([]int, 0, nLarge)
	for i := 0; i < nLarge; i++ {
		s := int(math.Round(float64(maxSize) / math.Pow(float64(i+1), 1.15)))
		if s < 3 {
			s = 3
		}
		sizes = append(sizes, s)
	}
	sum := 0
	for _, s := range sizes {
		sum += s
	}
	// Shrink from the largest if the big clusters alone exceed the record
	// budget (can happen at small scales).
	for sum > n {
		best := -1
		for i, s := range sizes {
			if s > 3 && (best < 0 || s > sizes[best]) {
				best = i
			}
		}
		if best < 0 {
			sizes = sizes[:len(sizes)-1]
			sum -= 3
			continue
		}
		sizes[best]--
		sum--
	}
	remaining := n - sum
	twos := remaining / 4
	singles := remaining - 2*twos
	for i := 0; i < twos; i++ {
		sizes = append(sizes, 2)
	}
	for i := 0; i < singles; i++ {
		sizes = append(sizes, 1)
	}
	return sizes
}

// GenPaper generates the Paper replica: a single-source bibliography with
// heavily skewed cluster sizes. Citation variants of the same publication
// share rare title words (the discriminative terms) while venue and topic
// words recur across many entities.
func GenPaper(cfg GenConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x7a9e))
	nz := newNoiser(rng)

	n := cfg.scaled(paperRecords)
	nLarge := cfg.scaled(paperLargeClusters)
	maxSize := cfg.scaled(paperMaxCluster)
	sizes := paperClusterSizes(n, nLarge, maxSize)

	// Rare title words: a large synthesized pool so each entity gets
	// (mostly) unique discriminative tokens.
	rarePool := nz.wordPool(3*len(sizes)+64, 3)
	rareNext := 0
	takeRare := func() string {
		w := rarePool[rareNext%len(rarePool)]
		rareNext++
		return w
	}

	type author struct{ first, last string }
	type entity struct {
		authors []author
		title   []string
		venue   []string
		year    int
	}
	// Research communities: groups of ~8 entities draw authors from a small
	// shared pool, publish at the same venue and reuse the same topic
	// vocabulary. Same-community non-matches therefore overlap heavily in
	// tokens (authors + venue + topic), which is what keeps string
	// similarity methods well below the fusion framework on the real Cora —
	// only the rare title words separate two papers by the same group.
	type community struct {
		authors []author
		venue   []string
		topics  []string
	}
	newCommunity := func() community {
		c := community{venue: paperVenues[rng.Intn(len(paperVenues))]}
		for i, k := 0, 3+rng.Intn(2); i < k; i++ {
			c.authors = append(c.authors, author{first: nz.pick(authorFirst), last: nz.pick(authorLast)})
		}
		for i := 0; i < 8; i++ {
			c.topics = append(c.topics, nz.zipfPick(paperTopicWords, 1.6))
		}
		return c
	}
	entities := make([]entity, len(sizes))
	com := newCommunity()
	comLeft := 0
	for e := range entities {
		// Follow-up papers: ~18% of entities are a sequel of the previous
		// one — same authors, venue, year and topic words, only the rare
		// title words differ ("temporal difference methods I" vs "II" in
		// the real Cora). Their cross pairs carry match-level token
		// overlap, which caps set-overlap similarity measures, while the
		// fused similarity stays low because every shared term is a
		// low-weight one.
		if e > 0 && rng.Float64() < 0.22 {
			prev := entities[e-1]
			// The sequel keeps two of the distinctive title words ("temporal
			// difference methods" recurs; only the installment word
			// changes) and replaces the other three.
			title := []string{takeRare(), takeRare()}
			title = append(title, prev.title[2:]...)
			entities[e] = entity{
				authors: prev.authors,
				title:   title,
				venue:   prev.venue,
				year:    prev.year,
			}
			continue
		}
		if comLeft == 0 {
			com = newCommunity()
			comLeft = 5 + rng.Intn(7)
		}
		comLeft--
		na := 2 + rng.Intn(2)
		authors := make([]author, na)
		for i := range authors {
			authors[i] = com.authors[rng.Intn(len(com.authors))]
		}
		title := []string{takeRare(), takeRare(), takeRare(), takeRare(), takeRare()}
		for i, k := 0, 4+rng.Intn(3); i < k; i++ {
			title = append(title, com.topics[rng.Intn(len(com.topics))])
		}
		entities[e] = entity{
			authors: authors,
			title:   title,
			venue:   com.venue,
			year:    1992 + rng.Intn(8),
		}
	}

	render := func(ent entity) []Field {
		// A quarter of the records are short citation-style entries:
		// truncated author list, partial title, no venue or pages — the
		// record-length variance of real bibliography data that spreads
		// in-cluster Jaccard far below the non-match overlap level.
		short := rng.Float64() < 0.15
		var authors []string
		for _, a := range ent.authors {
			if rng.Float64() < 0.2 && len(ent.authors) > 1 {
				continue // citations frequently drop co-authors ("et al")
			}
			if rng.Float64() < 0.5 {
				// Initial-style citation: the single-letter token is later
				// dropped by the tokenizer's MinLen filter, as in real
				// citation data where initials carry little signal.
				authors = append(authors, a.first[:1], nz.maybeTypo(a.last, 0.1))
			} else {
				authors = append(authors, a.first, nz.maybeTypo(a.last, 0.1))
			}
		}
		title := make([]string, len(ent.title))
		for i, w := range ent.title {
			title[i] = nz.maybeTypo(w, 0.05)
		}
		title = nz.dropWords(title, 0.06)
		if short {
			if len(authors) > 2 {
				authors = authors[:2]
			}
			// Short citations lose venue, pages and part of the title; the
			// rare head words mostly survive, so the fusion framework can
			// still anchor on them while set-overlap similarity degrades.
			// CliqueRank needs within-cluster edge weights to stay roughly
			// uniform (§VI-B assumes "similarity scores between matching
			// pairs are generally close to each other"), which bounds how
			// short these entries can get.
			title = nz.dropWords(title, 0.15)
			return []Field{
				{Name: "authors", Value: strings.Join(authors, " ")},
				{Name: "title", Value: strings.Join(title, " ")},
			}
		}
		venue := nz.abbreviate(ent.venue, venueAbbrev, 0.5)
		venue = nz.dropWords(venue, 0.15)
		fields := []Field{
			{Name: "authors", Value: strings.Join(authors, " ")},
			{Name: "title", Value: strings.Join(title, " ")},
			{Name: "venue", Value: strings.Join(venue, " ")},
		}
		if rng.Float64() < 0.8 {
			fields = append(fields, Field{Name: "year", Value: strconv.Itoa(ent.year)})
		}
		if rng.Float64() < 0.6 {
			fields = append(fields, Field{Name: "pages", Value: "pp " + nz.digits(3) + " " + nz.digits(3)})
		}
		return fields
	}

	d := &Dataset{Name: "Paper", NumSources: 1}
	for e, size := range sizes {
		for k := 0; k < size; k++ {
			fields := render(entities[e])
			r := Record{
				ID:       len(d.Records),
				EntityID: e,
				Source:   0,
				Fields:   fields,
				Text:     joinFields(fields),
			}
			d.Records = append(d.Records, r)
		}
	}
	rng.Shuffle(len(d.Records), func(i, j int) {
		d.Records[i], d.Records[j] = d.Records[j], d.Records[i]
	})
	for i := range d.Records {
		d.Records[i].ID = i
	}
	if err := d.Validate(); err != nil {
		//lint:invariant generator self-check: a Validate failure here is a construction bug, not bad input
		panic(fmt.Sprintf("dataset: paper generator produced invalid data: %v", err))
	}
	return d
}
