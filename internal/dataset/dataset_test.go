package dataset

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestGenRestaurantStats(t *testing.T) {
	d := GenRestaurant(DefaultGenConfig())
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumRecords() != 858 {
		t.Errorf("records = %d, want 858", d.NumRecords())
	}
	if got := d.NumTrueMatches(); got != 106 {
		t.Errorf("true matches = %d, want 106", got)
	}
	if d.NumSources != 1 {
		t.Errorf("sources = %d, want 1", d.NumSources)
	}
	sizes := d.ClusterSizes()
	if sizes[0] != 2 {
		t.Errorf("largest cluster = %d, want 2", sizes[0])
	}
}

func TestGenProductStats(t *testing.T) {
	d := GenProduct(DefaultGenConfig())
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	var abt, buy int
	for _, r := range d.Records {
		switch r.Source {
		case SourceAbt:
			abt++
		case SourceBuy:
			buy++
		default:
			t.Fatalf("record %d has source %d", r.ID, r.Source)
		}
	}
	if abt != 1081 {
		t.Errorf("abt records = %d, want 1081", abt)
	}
	if buy != 1092 {
		t.Errorf("buy records = %d, want 1092", buy)
	}
	if got := d.NumTrueMatches(); got != 1092 {
		t.Errorf("true matches = %d, want 1092", got)
	}
}

func TestGenPaperStats(t *testing.T) {
	d := GenPaper(DefaultGenConfig())
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumRecords() != 1865 {
		t.Errorf("records = %d, want 1865", d.NumRecords())
	}
	sizes := d.ClusterSizes()
	if sizes[0] != 192 {
		t.Errorf("largest cluster = %d, want 192", sizes[0])
	}
	large := 0
	for _, s := range sizes {
		if s >= 3 {
			large++
		}
	}
	if large != 96 {
		t.Errorf("clusters with >=3 records = %d, want 96", large)
	}
	// Cora generates far more matching pairs than the other datasets:
	// the largest cluster alone contributes 192*191/2 = 18336.
	if m := d.NumTrueMatches(); m < 18336 {
		t.Errorf("true matches = %d, want >= 18336", m)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	gens := map[string]func(GenConfig) *Dataset{
		"restaurant": GenRestaurant,
		"product":    GenProduct,
		"paper":      GenPaper,
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			cfg := GenConfig{Seed: 42, Scale: 0.1}
			a := gen(cfg)
			b := gen(cfg)
			if !reflect.DeepEqual(a, b) {
				t.Error("same config must generate identical datasets")
			}
			c := gen(GenConfig{Seed: 43, Scale: 0.1})
			if reflect.DeepEqual(a.Records, c.Records) {
				t.Error("different seeds must generate different datasets")
			}
		})
	}
}

func TestGeneratorsScale(t *testing.T) {
	d := GenRestaurant(GenConfig{Seed: 1, Scale: 0.5})
	if got, want := d.NumRecords(), 53*2+323; got != want {
		t.Errorf("scaled records = %d, want %d", got, want)
	}
	if got := d.NumTrueMatches(); got != 53 {
		t.Errorf("scaled matches = %d, want 53", got)
	}
	p := GenPaper(GenConfig{Seed: 1, Scale: 0.25})
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumRecords() != 466 {
		t.Errorf("scaled paper records = %d, want 466", p.NumRecords())
	}
}

func TestPaperClusterSizesInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 50 + rng.Intn(2000)
		nLarge := 1 + rng.Intn(100)
		maxSize := 3 + rng.Intn(200)
		sizes := paperClusterSizes(n, nLarge, maxSize)
		sum := 0
		for _, s := range sizes {
			if s < 1 {
				t.Fatalf("cluster of size %d", s)
			}
			if s > maxSize {
				t.Fatalf("cluster of size %d exceeds max %d", s, maxSize)
			}
			sum += s
		}
		if sum != n {
			t.Fatalf("sizes sum to %d, want %d (n=%d nLarge=%d max=%d)", sum, n, n, nLarge, maxSize)
		}
	}
}

func TestTrueMatchesCrossSourceOnly(t *testing.T) {
	d := &Dataset{
		Name:       "t",
		NumSources: 2,
		Records: []Record{
			{ID: 0, EntityID: 7, Source: 0, Text: "a"},
			{ID: 1, EntityID: 7, Source: 0, Text: "b"},
			{ID: 2, EntityID: 7, Source: 1, Text: "c"},
		},
	}
	// (0,2) and (1,2) cross-source; (0,1) same source excluded.
	if got := d.NumTrueMatches(); got != 2 {
		t.Errorf("NumTrueMatches = %d, want 2", got)
	}
	d.NumSources = 1
	if got := d.NumTrueMatches(); got != 3 {
		t.Errorf("single-source NumTrueMatches = %d, want 3", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	d := GenRestaurant(GenConfig{Seed: 5, Scale: 0.05})
	var buf bytes.Buffer
	if err := WriteCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := LoadCSV(&buf, d.Name)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRecords() != d.NumRecords() {
		t.Fatalf("round trip records %d -> %d", d.NumRecords(), back.NumRecords())
	}
	if back.NumTrueMatches() != d.NumTrueMatches() {
		t.Errorf("round trip matches %d -> %d", d.NumTrueMatches(), back.NumTrueMatches())
	}
	for i, r := range back.Records {
		if r.Text != d.Records[i].Text {
			t.Fatalf("record %d text changed", i)
		}
	}
}

func TestLoadCSVMissingGroundTruth(t *testing.T) {
	in := "id,entity,source,text\n0,,0,hello world\n1,,0,hello there\n"
	d, err := LoadCSV(strings.NewReader(in), "x")
	if err != nil {
		t.Fatal(err)
	}
	if d.HasGroundTruth() {
		t.Error("dataset without entity labels must not claim ground truth")
	}
	if d.NumTrueMatches() != 0 {
		t.Error("no labels means no true matches")
	}
}

func TestLoadCSVExtraColumns(t *testing.T) {
	in := "id,entity,source,text\n0,e1,0,hello,extra tokens\n"
	d, err := LoadCSV(strings.NewReader(in), "x")
	if err != nil {
		t.Fatal(err)
	}
	if d.Records[0].Text != "hello extra tokens" {
		t.Errorf("text = %q", d.Records[0].Text)
	}
}

func TestLoadCSVErrors(t *testing.T) {
	if _, err := LoadCSV(strings.NewReader(""), "x"); err == nil {
		t.Error("empty file must fail")
	}
	if _, err := LoadCSV(strings.NewReader("id,entity,source,text\n0,,zz,text\n"), "x"); err == nil {
		t.Error("bad source must fail")
	}
	if _, err := LoadCSV(strings.NewReader("id,entity,source,text\n0,,0\n"), "x"); err == nil {
		t.Error("short row must fail")
	}
}

func TestProductDiscriminativeModelCodes(t *testing.T) {
	d := GenProduct(GenConfig{Seed: 2, Scale: 0.2})
	// A matching cross-source pair shares the model code most of the time.
	// Verify model codes are unique per entity by checking two different
	// entities never produce identical name fields.
	seen := map[string]int{}
	for _, r := range d.Records {
		if r.Source != SourceAbt {
			continue
		}
		name := r.Fields[0].Value
		model := name[strings.LastIndex(name, " ")+1:]
		if prev, ok := seen[model]; ok && prev != r.EntityID {
			t.Fatalf("model code %q reused across entities %d and %d", model, prev, r.EntityID)
		}
		seen[model] = r.EntityID
	}
}

// TestGeneratorInvariantsAcrossConfigs samples random (seed, scale) pairs
// and checks structural invariants of every replica.
func TestGeneratorInvariantsAcrossConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	gens := map[string]func(GenConfig) *Dataset{
		"restaurant": GenRestaurant,
		"product":    GenProduct,
		"paper":      GenPaper,
	}
	for trial := 0; trial < 8; trial++ {
		cfg := GenConfig{Seed: rng.Int63(), Scale: 0.05 + rng.Float64()*0.45}
		for name, gen := range gens {
			d := gen(cfg)
			if err := d.Validate(); err != nil {
				t.Fatalf("%s %+v: %v", name, cfg, err)
			}
			if d.NumTrueMatches() == 0 {
				t.Errorf("%s %+v: no true matches", name, cfg)
			}
			switch name {
			case "restaurant":
				sizes := d.ClusterSizes()
				if sizes[0] > 2 {
					t.Errorf("restaurant cluster of size %d", sizes[0])
				}
			case "product":
				if d.NumSources != 2 {
					t.Errorf("product sources = %d", d.NumSources)
				}
				for _, r := range d.Records {
					if r.Source != SourceAbt && r.Source != SourceBuy {
						t.Fatalf("product record with source %d", r.Source)
					}
				}
			case "paper":
				// Total records must exactly match the scaled target.
				want := cfg.scaled(paperRecords)
				if d.NumRecords() != want {
					t.Errorf("paper records = %d, want %d", d.NumRecords(), want)
				}
			}
		}
	}
}

// TestReplicaTokenStatistics guards the corpus-level properties the
// pipeline depends on: records are non-trivial, and the phone / model-code
// anchors are unique per entity.
func TestReplicaTokenStatistics(t *testing.T) {
	d := GenRestaurant(GenConfig{Seed: 9, Scale: 0.3})
	phones := map[string]int{}
	for _, r := range d.Records {
		last := r.Fields[len(r.Fields)-1]
		if last.Name != "phone" {
			t.Fatalf("unexpected field layout: %v", r.Fields)
		}
		if last.Value == "" {
			continue
		}
		if prev, ok := phones[last.Value]; ok && prev != r.EntityID {
			t.Fatalf("phone %s shared by entities %d and %d", last.Value, prev, r.EntityID)
		}
		phones[last.Value] = r.EntityID
	}
}

func TestWriteCSVStable(t *testing.T) {
	d := GenProduct(GenConfig{Seed: 4, Scale: 0.05})
	var a, b bytes.Buffer
	if err := WriteCSV(&a, d); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&b, d); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("WriteCSV output not deterministic")
	}
}
