package dataset

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// SyntheticConfig parameterizes GenSynthetic, the open-scale corpus
// generator behind the 100k+ benchmarks. Unlike the replica generators —
// which are pinned to the published sizes of the paper's three benchmarks —
// this one dials record count, duplication, source count and vocabulary
// shape independently, so the scaling suite can grow corpora from 10^5 to
// 10^7 records with realistic (Zipf-skewed) term distributions.
//
// The zero value of every field selects a sensible default (see normalize);
// equal configs always generate identical datasets.
type SyntheticConfig struct {
	// Seed drives all randomness. Zero selects the default seed 1.
	Seed int64
	// Records is the exact number of records to generate. Values below 1
	// default to 10000.
	Records int
	// DuplicateRate is the per-step probability of growing an entity's
	// cluster by one more record (a geometric cluster-size distribution
	// truncated at MaxClusterSize): 0 yields all singletons, values toward
	// 1 yield heavy duplication. Out-of-range values clamp to [0, 0.95].
	DuplicateRate float64
	// MaxClusterSize caps the records per entity. Values below 1 default
	// to 8.
	MaxClusterSize int
	// Sources is the number of record origins. Duplicate records of one
	// entity rotate through the sources, so multi-source configs always
	// produce cross-source matching pairs (the convention TrueMatches
	// counts). Values below 1 default to 1.
	Sources int
	// VocabSize is the size of the shared filler vocabulary. Values below
	// 16 default to 4096; values above 100000 clamp (the synthesized
	// two-syllable word space is finite).
	VocabSize int
	// ZipfExponent skews term draws toward the vocabulary head (index ∝
	// u^exp); larger is more skewed. Values at or below 0 default to 2.0.
	ZipfExponent float64
	// TokensPerRecord is the approximate description length in tokens.
	// Values below 1 default to 8.
	TokensPerRecord int
	// Name labels the dataset. Empty defaults to "Synthetic".
	Name string
}

func (c SyntheticConfig) normalize() SyntheticConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Records < 1 {
		c.Records = 10000
	}
	if c.DuplicateRate < 0 {
		c.DuplicateRate = 0
	}
	if c.DuplicateRate > 0.95 {
		c.DuplicateRate = 0.95
	}
	if c.MaxClusterSize < 1 {
		c.MaxClusterSize = 8
	}
	if c.Sources < 1 {
		c.Sources = 1
	}
	if c.VocabSize < 16 {
		c.VocabSize = 4096
	}
	if c.VocabSize > 100000 {
		c.VocabSize = 100000
	}
	if c.ZipfExponent <= 0 {
		c.ZipfExponent = 2.0
	}
	if c.TokensPerRecord < 1 {
		c.TokensPerRecord = 8
	}
	if c.Name == "" {
		c.Name = "Synthetic"
	}
	return c
}

// GenSynthetic generates an open-scale labeled corpus. Each entity carries
// a unique alphanumeric code token (the "pslx350h"-style discriminative
// term of the paper's introduction) plus a name and description drawn from
// a Zipf-skewed shared vocabulary; duplicate records corrupt the canonical
// rendering with word drops, typos, reordering and fresh filler, the same
// noise model as the benchmark replicas. Entity codes are unique by
// construction (a per-entity suffix), so generation stays O(records) with
// no dedup table — the property that keeps 10^7-record runs cheap.
func GenSynthetic(cfg SyntheticConfig) *Dataset {
	cfg = cfg.normalize()
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x51e7))
	nz := newNoiser(rng)

	vocab := nz.wordPool(cfg.VocabSize, 2)

	d := &Dataset{Name: cfg.Name, NumSources: cfg.Sources}
	d.Records = make([]Record, 0, cfg.Records)

	// sentence draws a Zipf-skewed token sequence of roughly mean length.
	sentence := func(mean int) []string {
		k := 1 + mean/2
		if mean > 1 {
			k += rng.Intn(mean)
		}
		out := make([]string, k)
		for i := range out {
			out[i] = nz.zipfPick(vocab, cfg.ZipfExponent)
		}
		return out
	}

	entity := 0
	for len(d.Records) < cfg.Records {
		// Geometric cluster size, truncated at the cap and at the exact
		// record budget so the total always lands on cfg.Records.
		size := 1
		for size < cfg.MaxClusterSize && rng.Float64() < cfg.DuplicateRate {
			size++
		}
		if remaining := cfg.Records - len(d.Records); size > remaining {
			size = remaining
		}

		code := nz.code() + strconv.FormatInt(int64(entity), 36)
		name := sentence(2)
		desc := sentence(cfg.TokensPerRecord)

		for r := 0; r < size; r++ {
			source := rng.Intn(cfg.Sources)
			if size > 1 {
				// Rotate duplicates through the sources so multi-source
				// clusters always produce cross-source matching pairs.
				source = r % cfg.Sources
			}
			var words []string
			if r == 0 {
				words = make([]string, 0, len(name)+1+len(desc))
				words = append(words, name...)
				words = append(words, code)
				words = append(words, desc...)
			} else {
				kept := nz.dropWords(desc, 0.3)
				words = make([]string, 0, len(name)+3+len(kept))
				words = append(words, name...)
				if rng.Float64() < 0.95 { // variants occasionally lose the code
					words = append(words, code)
				}
				words = append(words, kept...)
				for i, extra := 0, rng.Intn(3); i < extra; i++ {
					words = append(words, nz.zipfPick(vocab, cfg.ZipfExponent))
				}
				for i := range words {
					words[i] = nz.maybeTypo(words[i], 0.08)
				}
				words = nz.shuffleSome(words, 0.2)
			}
			d.Records = append(d.Records, Record{
				ID:       len(d.Records),
				EntityID: entity,
				Source:   source,
				Text:     strings.Join(words, " "),
			})
		}
		entity++
	}

	rng.Shuffle(len(d.Records), func(i, j int) {
		d.Records[i], d.Records[j] = d.Records[j], d.Records[i]
	})
	for i := range d.Records {
		d.Records[i].ID = i
	}
	if err := d.Validate(); err != nil {
		//lint:invariant generator self-check: a Validate failure here is a construction bug, not bad input
		panic(fmt.Sprintf("dataset: synthetic generator produced invalid data: %v", err))
	}
	return d
}
