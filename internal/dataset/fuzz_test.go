package dataset

import (
	"bytes"
	"testing"
)

// FuzzLoadCSV drives the CSV loader with arbitrary bytes. The loader sits
// on the trust boundary of cmd/erresolve (it parses user-supplied files),
// so it must never panic: every malformed input maps to an error. Inputs it
// accepts must produce a dataset that passes Validate and survives a
// WriteCSV -> LoadCSV round trip with the same record count.
func FuzzLoadCSV(f *testing.F) {
	f.Add([]byte("id,entity,source,text\n0,e1,0,hello world\n1,e1,1,hello earth\n"))
	f.Add([]byte("0,,0,no header row\n"))
	f.Add([]byte("id,entity,source,text\n0,e1,0,extra,columns,append\n"))
	f.Add([]byte("id,entity,source,text\n0,e1,notanumber,text\n"))
	f.Add([]byte("id,entity,source\n0,e1,0\n"))
	f.Add([]byte("\"unterminated quote\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := LoadCSV(bytes.NewReader(data), "fuzz")
		if err != nil {
			return
		}
		if verr := d.Validate(); verr != nil {
			t.Fatalf("LoadCSV accepted a dataset that fails Validate: %v", verr)
		}
		var buf bytes.Buffer
		if werr := WriteCSV(&buf, d); werr != nil {
			t.Fatalf("WriteCSV on a loaded dataset: %v", werr)
		}
		back, err := LoadCSV(&buf, "fuzz")
		if err != nil {
			t.Fatalf("round trip rejected WriteCSV output: %v", err)
		}
		if len(back.Records) != len(d.Records) {
			t.Fatalf("round trip changed record count: %d -> %d", len(d.Records), len(back.Records))
		}
	})
}
