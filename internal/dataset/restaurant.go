package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// GenConfig parameterizes the benchmark replica generators.
type GenConfig struct {
	// Seed drives all randomness; equal configs generate identical data.
	Seed int64
	// Scale multiplies the paper's record counts. 1.0 reproduces the
	// published sizes (858 / 1081+1092 / 1865 records).
	Scale float64
}

// DefaultGenConfig is paper-size with a fixed seed.
func DefaultGenConfig() GenConfig { return GenConfig{Seed: 1, Scale: 1.0} }

func (c GenConfig) scaled(n int) int {
	if c.Scale <= 0 {
		return n
	}
	v := int(math.Round(float64(n) * c.Scale))
	if v < 1 {
		v = 1
	}
	return v
}

// Paper-size constants for the Restaurant replica (§VII-A): 858 records, of
// which 106 duplicate pairs — i.e. 106 entities with two records each and
// 646 singletons.
const (
	restaurantDupEntities = 106
	restaurantSingletons  = 646
)

// GenRestaurant generates the Restaurant replica: a single-source dataset of
// restaurant records (name, address, city, phone, cuisine). Duplicates differ
// by typos, street-suffix abbreviations and dropped fields; the phone number
// is the highly discriminative token the paper's introduction mentions.
func GenRestaurant(cfg GenConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5e5a))
	nz := newNoiser(rng)

	nDup := cfg.scaled(restaurantDupEntities)
	nSingle := cfg.scaled(restaurantSingletons)
	nEntities := nDup + nSingle

	// Word pools are large and sampled with a Zipf bias: real vocabulary
	// has a short very-frequent head (removed by the frequent-term filter,
	// like "restaurant" or "street") and a long df=1 tail, with only a thin
	// mid-frequency band. A uniform small pool would put every word in
	// that mid band, where unrelated records form isolated equal-weight
	// cliques that any topological method mistakes for entities; the
	// published G_r (5,320 edges over 858 records) shows the real data is
	// far sparser than that.
	nameWords := append(append([]string{}, restaurantNameWords...), nz.wordPool(370, 2)...)
	streets := append(append([]string{}, streetNames...), nz.wordPool(270, 2)...)
	// Mid-frequency descriptor tokens ("patio", "rooftop", ...) shared by a
	// few dozen records each. They give the spurious edges of G_r a
	// continuous weight spread: without them, all records of one
	// (city, cuisine) group would pair with identical similarity and form
	// an equal-weight clique — indistinguishable from a true entity for any
	// topological method.
	descriptors := nz.wordPool(150, 2)
	generics := []string{"restaurant", "cafe", "grill"}
	suffixes := []string{"street", "avenue", "road", "drive"}

	// Records carry restaurant name, street address and phone, matching the
	// paper's description ("name and address"). There is deliberately no
	// city/cuisine column: those near-universal tokens are exactly what the
	// paper's frequent-term removal strips, and the published G_r is very
	// sparse (5,320 edges over 858 records).
	type entity struct {
		name    []string
		street  []string
		city    string
		cuisine string
		desc    []string
		phone   string
	}

	phoneSeen := make(map[string]struct{})
	uniquePhone := func() string {
		for {
			p := nz.digits(10)
			if _, dup := phoneSeen[p]; !dup {
				phoneSeen[p] = struct{}{}
				return p
			}
		}
	}

	entities := make([]entity, nEntities)
	// Chain restaurants: ~12% of entities share their full name with 1-2
	// other entities at different addresses. These are the high-Jaccard
	// non-matches of the real benchmark ("bel-air dining room" twins) that
	// cap string-similarity methods: only the discriminative tokens (phone,
	// street number) tell them apart.
	var chainName []string
	var chainCity, chainCuisine string
	chainLeft := 0
	for e := range entities {
		var name []string
		fromChain := false
		if chainLeft > 0 {
			name = append([]string{}, chainName...)
			chainLeft--
			fromChain = true
		} else {
			name = []string{nz.zipfPick(nameWords, 1.8), nz.zipfPick(nameWords, 1.8)}
			if rng.Float64() < 0.8 {
				// Generic suffix words are near-universal in this domain;
				// the small pool keeps their df above the frequent-term
				// cutoff so preprocessing strips them, as with real data.
				name = append(name, nz.pick(generics))
			}
			if rng.Float64() < 0.03 {
				chainName = name
				chainCity = cities[rng.Intn(12)]
				chainCuisine = restaurantCuisines[rng.Intn(15)]
				chainLeft = 1 + rng.Intn(2)
			}
		}
		city := cities[rng.Intn(12)]
		cuisine := restaurantCuisines[rng.Intn(15)]
		if fromChain {
			// Chain branches cluster in one metro area and share the menu,
			// so the confusable pairs overlap on name + city (+ cuisine).
			city = chainCity
			if rng.Float64() < 0.7 {
				cuisine = chainCuisine
			}
		}
		street := []string{
			nz.digits(3 + rng.Intn(2)),
			nz.zipfPick(streets, 1.8),
			nz.pick(suffixes),
		}
		entities[e] = entity{
			name:   name,
			street: street,
			// ~12 cities: each is shared by dozens of records (df below the
			// frequent-term cutoff), so unrelated restaurants in one city
			// that also share a name or street word become candidate pairs
			// — the realistic confusable background of the benchmark.
			city: city,
			// Cuisine labels are mid-frequency too; together with the city
			// they give every record a handful of comparable-weight
			// spurious edges, reproducing the published G_r density (5,320
			// edges, average degree ~12). That background is load-bearing:
			// a record whose best edge is a weak coincidence (no
			// competition) is indistinguishable from half of an isolated
			// matching pair.
			cuisine: cuisine,
			phone:   uniquePhone(),
		}
		for k := rng.Intn(3); k > 0; k-- {
			entities[e].desc = append(entities[e].desc, nz.pick(descriptors))
		}
	}

	render := func(ent entity, variant bool) []Field {
		name := ent.name
		street := ent.street
		phone := ent.phone
		cuisine := ent.cuisine
		desc := ent.desc
		if variant {
			desc = nz.dropWords(ent.desc, 0.3)
			nameCopy := make([]string, len(name))
			for i, w := range name {
				nameCopy[i] = nz.maybeTypo(w, 0.5)
			}
			name = nz.dropWords(nameCopy, 0.2)
			street = nz.abbreviate(ent.street, streetAbbrev, 0.7)
			street = nz.dropWords(street, 0.12)
			if rng.Float64() < 0.3 {
				phone = "" // many duplicates lack the phone field
			}
			if rng.Float64() < 0.4 {
				// The two sources frequently disagree on cuisine
				// ("american" vs "steakhouses" in the real benchmark).
				cuisine = restaurantCuisines[rng.Intn(15)]
			}
		}
		return []Field{
			{Name: "name", Value: strings.Join(name, " ")},
			{Name: "address", Value: strings.Join(street, " ")},
			{Name: "city", Value: ent.city},
			{Name: "cuisine", Value: cuisine},
			{Name: "notes", Value: strings.Join(desc, " ")},
			{Name: "phone", Value: phone},
		}
	}

	d := &Dataset{Name: "Restaurant", NumSources: 1}
	add := func(entityID int, fields []Field) {
		r := Record{
			ID:       len(d.Records),
			EntityID: entityID,
			Source:   0,
			Fields:   fields,
		}
		r.Text = joinFields(fields)
		d.Records = append(d.Records, r)
	}
	for e := 0; e < nDup; e++ {
		add(e, render(entities[e], false))
		add(e, render(entities[e], true))
	}
	for e := nDup; e < nEntities; e++ {
		add(e, render(entities[e], false))
	}
	// Shuffle record order, then re-assign dense IDs, so duplicates are not
	// adjacent (the benchmark files are not sorted by entity either).
	rng.Shuffle(len(d.Records), func(i, j int) {
		d.Records[i], d.Records[j] = d.Records[j], d.Records[i]
	})
	for i := range d.Records {
		d.Records[i].ID = i
	}
	if err := d.Validate(); err != nil {
		//lint:invariant generator self-check: a Validate failure here is a construction bug, not bad input
		panic(fmt.Sprintf("dataset: restaurant generator produced invalid data: %v", err))
	}
	return d
}
