package dataset

// Fixed domain vocabularies for the benchmark replicas. They seed the
// common, non-discriminative part of the token distribution; entity-specific
// discriminative tokens (phone numbers, model codes, rare title words) are
// synthesized per entity by the generators.

var restaurantNameWords = []string{
	"golden", "dragon", "palace", "garden", "house", "grill", "kitchen",
	"cafe", "bistro", "corner", "royal", "little", "blue", "red", "green",
	"ocean", "river", "star", "sunset", "village", "old", "new", "grand",
	"silver", "lucky", "jade", "pearl", "lotus", "olive", "maple",
}

var restaurantCuisines = []string{
	"italian", "french", "chinese", "japanese", "mexican", "thai", "indian",
	"american", "mediterranean", "seafood", "steakhouse", "barbecue",
	"vegetarian", "continental", "cajun", "greek", "spanish", "korean",
}

var streetNames = []string{
	"main", "oak", "pine", "maple", "cedar", "elm", "washington", "lake",
	"hill", "park", "sunset", "broadway", "madison", "lincoln", "jefferson",
	"franklin", "jackson", "highland", "valley", "ridge", "spring", "mill",
	"church", "market", "union", "center", "prospect", "grove", "walnut",
}

var streetSuffixes = []string{"street", "avenue", "boulevard", "road", "drive", "lane", "place", "way"}

// streetAbbrev maps full street words to the abbreviations that make the
// Restaurant benchmark hard for plain string matching.
var streetAbbrev = map[string]string{
	"street":    "st",
	"avenue":    "ave",
	"boulevard": "blvd",
	"road":      "rd",
	"drive":     "dr",
	"lane":      "ln",
	"place":     "pl",
	"east":      "e",
	"west":      "w",
	"north":     "n",
	"south":     "s",
}

var cities = []string{
	"newyork", "losangeles", "chicago", "houston", "phoenix", "philadelphia",
	"sanantonio", "sandiego", "dallas", "sanjose", "austin", "atlanta",
	"boston", "denver", "seattle", "miami", "portland", "memphis",
}

var productBrands = []string{
	"sony", "panasonic", "samsung", "toshiba", "philips", "sharp", "canon",
	"nikon", "jvc", "pioneer", "yamaha", "denon", "kenwood", "sanyo", "bose",
	"garmin", "logitech", "netgear", "linksys", "olympus", "casio", "epson",
	"brother", "sandisk", "kingston", "belkin", "haier", "frigidaire",
	"whirlpool", "maytag",
}

var productCategories = []string{
	"turntable", "receiver", "camcorder", "camera", "television", "speaker",
	"headphones", "refrigerator", "microwave", "dishwasher", "washer",
	"dryer", "printer", "scanner", "monitor", "keyboard", "router", "radio",
	"player", "recorder", "projector", "amplifier", "subwoofer", "soundbar",
}

var productAdjectives = []string{
	"black", "white", "silver", "portable", "digital", "wireless", "compact",
	"stereo", "automatic", "programmable", "rechargeable", "waterproof",
	"bluetooth", "remote", "control", "energy", "series", "system", "home",
	"theater", "high", "definition", "widescreen", "inch", "watt", "channel",
	"deluxe", "professional", "edition", "pack",
}

var authorFirst = []string{
	"john", "robert", "michael", "william", "david", "richard", "thomas",
	"mary", "jennifer", "linda", "susan", "karen", "james", "daniel",
	"andrew", "peter", "paul", "mark", "george", "kenneth", "wei", "jun",
	"hiroshi", "pierre", "hans", "sergey", "rajesh", "carlos",
}

var authorLast = []string{
	"smith", "johnson", "williams", "brown", "jones", "miller", "davis",
	"wilson", "anderson", "taylor", "thomas", "moore", "jackson", "martin",
	"lee", "thompson", "white", "harris", "clark", "lewis", "walker", "hall",
	"young", "king", "wright", "lopez", "hill", "scott", "green", "adams",
	"chen", "wang", "zhang", "kumar", "mueller", "tanaka", "ivanov",
}

var paperTopicWords = []string{
	"learning", "neural", "networks", "probabilistic", "inference",
	"reinforcement", "markov", "bayesian", "classification", "clustering",
	"optimization", "genetic", "algorithms", "knowledge", "representation",
	"reasoning", "planning", "search", "constraint", "satisfaction",
	"natural", "language", "processing", "speech", "recognition", "vision",
	"robotics", "agents", "decision", "trees", "boosting", "kernel",
	"methods", "feature", "selection", "dimensionality", "reduction",
	"hidden", "models", "gradient", "descent", "stochastic", "sampling",
	"approximation", "bounds", "complexity", "analysis", "framework",
	"empirical", "evaluation",
}

var paperVenues = [][]string{
	{"proceedings", "international", "conference", "machine", "learning"},
	{"advances", "neural", "information", "processing", "systems"},
	{"journal", "artificial", "intelligence", "research"},
	{"national", "conference", "artificial", "intelligence"},
	{"machine", "learning", "journal"},
	{"international", "joint", "conference", "artificial", "intelligence"},
	{"annual", "conference", "computational", "learning", "theory"},
	{"ieee", "transactions", "pattern", "analysis"},
}

var venueAbbrev = map[string]string{
	"proceedings":   "proc",
	"international": "intl",
	"conference":    "conf",
	"journal":       "j",
	"artificial":    "artif",
	"intelligence":  "intell",
	"transactions":  "trans",
	"computational": "comput",
	"information":   "inf",
	"systems":       "syst",
}
