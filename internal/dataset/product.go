package dataset

import (
	"fmt"
	"math/rand"
	"strings"
)

// Paper-size constants for the Product replica (Abt-Buy, §VII-A): 1081
// records from the abt source, 1092 from the buy source, 1092 matching
// cross-source pairs. We realize those counts with 1081 entities, one abt
// record each, one buy record each, plus a second buy record for 11
// entities: 1070·1 + 11·2 = 1092 matches and 1081 + 11 = 1092 buy records.
const (
	productEntities      = 1081
	productDoubleListing = 11
)

// SourceAbt and SourceBuy label the two origins of the Product replica.
const (
	SourceAbt = 0
	SourceBuy = 1
)

// GenProduct generates the Product replica: a two-source e-commerce catalog.
// Matching records share brand and an alphanumeric model code (the paper's
// "pslx350h"-style discriminative term) but differ heavily in their verbose
// marketing descriptions, which keeps plain Jaccard similarity low — the
// property behind Jaccard's 0.332 F1 on the original Abt-Buy.
func GenProduct(cfg GenConfig) *Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x9d0d))
	nz := newNoiser(rng)

	nEntities := cfg.scaled(productEntities)
	nDouble := cfg.scaled(productDoubleListing)
	if nDouble > nEntities {
		nDouble = nEntities
	}

	// Marketing filler vocabulary: fixed adjectives plus synthesized words
	// shared across entities. Zipf-biased picks make the head words very
	// frequent, as in real product feeds.
	filler := append(append([]string{}, productAdjectives...), nz.wordPool(260, 2)...)

	type entity struct {
		brand    string
		model    string
		category string
		desc     []string
	}
	modelSeen := make(map[string]struct{})
	uniqueModel := func() string {
		for {
			m := nz.code()
			if _, dup := modelSeen[m]; !dup {
				modelSeen[m] = struct{}{}
				return m
			}
		}
	}
	entities := make([]entity, nEntities)
	// Product families: runs of sibling entities share brand, category and
	// a base description and differ only in the model code ("pslx250" vs
	// "pslx350h" in spirit). Sibling cross-source pairs overlap almost as
	// much as true matches — the confusable background that drives plain
	// Jaccard down to 0.332 on the real Abt-Buy — while the model code
	// remains fully discriminative.
	famLeft := 0
	var famBrand, famCategory string
	var famDesc []string
	for e := range entities {
		if famLeft == 0 && rng.Float64() < 0.35 {
			famLeft = 1 + rng.Intn(3)
			famBrand = nz.pick(productBrands)
			famCategory = nz.pick(productCategories)
			famDesc = make([]string, 4+rng.Intn(4))
			for i := range famDesc {
				famDesc[i] = nz.zipfPick(filler, 2.2)
			}
		}
		var brand, category string
		var desc []string
		if famLeft > 0 {
			famLeft--
			brand, category = famBrand, famCategory
			desc = append(desc, famDesc...)
			for i, k := 0, 1+rng.Intn(3); i < k; i++ {
				desc = append(desc, nz.zipfPick(filler, 2.2))
			}
		} else {
			brand = nz.pick(productBrands)
			category = nz.pick(productCategories)
			desc = make([]string, 5+rng.Intn(5))
			for i := range desc {
				desc[i] = nz.zipfPick(filler, 2.2)
			}
		}
		entities[e] = entity{
			brand:    brand,
			model:    uniqueModel(),
			category: category,
			desc:     desc,
		}
	}

	renderAbt := func(ent entity) []Field {
		name := []string{ent.brand, ent.category, ent.model}
		return []Field{
			{Name: "name", Value: strings.Join(name, " ")},
			{Name: "description", Value: strings.Join(ent.desc, " ")},
		}
	}
	renderBuy := func(ent entity) []Field {
		var name []string
		if rng.Float64() < 0.9 { // buy listings sometimes omit the brand
			name = append(name, ent.brand)
		}
		if rng.Float64() < 0.8 { // ... or the model code
			name = append(name, ent.model)
		}
		name = append(name, ent.category)
		// Buy descriptions re-use only a minority of the canonical words
		// and add plenty of fresh marketing filler, so matching pairs
		// overlap far less than their name fields suggest — the regime in
		// which plain Jaccard breaks down on Abt-Buy.
		desc := nz.dropWords(ent.desc, 0.45)
		for i, extra := 0, 5+rng.Intn(7); i < extra; i++ {
			desc = append(desc, nz.zipfPick(filler, 2.2))
		}
		for i := range desc {
			desc[i] = nz.maybeTypo(desc[i], 0.08)
		}
		desc = nz.shuffleSome(desc, 0.2)
		return []Field{
			{Name: "name", Value: strings.Join(name, " ")},
			{Name: "description", Value: strings.Join(desc, " ")},
		}
	}

	d := &Dataset{Name: "Product", NumSources: 2}
	add := func(entityID, source int, fields []Field) {
		r := Record{
			ID:       len(d.Records),
			EntityID: entityID,
			Source:   source,
			Fields:   fields,
		}
		r.Text = joinFields(fields)
		d.Records = append(d.Records, r)
	}
	for e := 0; e < nEntities; e++ {
		add(e, SourceAbt, renderAbt(entities[e]))
	}
	for e := 0; e < nEntities; e++ {
		add(e, SourceBuy, renderBuy(entities[e]))
	}
	for e := 0; e < nDouble; e++ {
		add(e, SourceBuy, renderBuy(entities[e]))
	}
	rng.Shuffle(len(d.Records), func(i, j int) {
		d.Records[i], d.Records[j] = d.Records[j], d.Records[i]
	})
	for i := range d.Records {
		d.Records[i].ID = i
	}
	if err := d.Validate(); err != nil {
		//lint:invariant generator self-check: a Validate failure here is a construction bug, not bad input
		panic(fmt.Sprintf("dataset: product generator produced invalid data: %v", err))
	}
	return d
}
