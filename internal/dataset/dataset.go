// Package dataset defines the record model of the reproduction and provides
// the three benchmark replicas (Restaurant, Product, Paper). The original
// paper evaluates on Fodors-Zagat, Abt-Buy and Cora, which are downloaded
// from URLs and are unavailable offline; the generators in this package
// replicate each dataset's published statistics and noise character (see
// DESIGN.md §1.4 for the substitution argument). Real data can be supplied
// through LoadCSV.
package dataset

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/blocking"
)

// Record is one textual record to be resolved.
type Record struct {
	// ID is the dense index of the record in its dataset.
	ID int
	// EntityID is the ground-truth entity label, or -1 when unknown.
	EntityID int
	// Source identifies the origin of the record (0 for single-source
	// datasets; 0 or 1 for two-source datasets such as Product).
	Source int
	// Fields holds the structured view, in schema order.
	Fields []Field
	// Text is the concatenated textual content handed to the pipeline.
	Text string
}

// Field is one named attribute of a record.
type Field struct {
	Name, Value string
}

// Dataset is a collection of records with optional ground truth.
type Dataset struct {
	Name       string
	Records    []Record
	NumSources int
}

// NumRecords returns the record count.
func (d *Dataset) NumRecords() int { return len(d.Records) }

// Texts returns the record texts in ID order.
func (d *Dataset) Texts() []string {
	out := make([]string, len(d.Records))
	for i, r := range d.Records {
		out[i] = r.Text
	}
	return out
}

// Sources returns the source label of every record.
func (d *Dataset) Sources() []int {
	out := make([]int, len(d.Records))
	for i, r := range d.Records {
		out[i] = r.Source
	}
	return out
}

// HasGroundTruth reports whether every record carries an entity label.
func (d *Dataset) HasGroundTruth() bool {
	for _, r := range d.Records {
		if r.EntityID < 0 {
			return false
		}
	}
	return len(d.Records) > 0
}

// TrueMatches returns the set of ground-truth matching pairs, keyed with
// blocking.Key. For multi-source datasets only cross-source pairs count,
// matching the benchmark convention (Abt-Buy counts abt×buy pairs).
func (d *Dataset) TrueMatches() map[uint64]bool {
	byEntity := make(map[int][]int32)
	for _, r := range d.Records {
		if r.EntityID < 0 {
			continue
		}
		byEntity[r.EntityID] = append(byEntity[r.EntityID], int32(r.ID))
	}
	out := make(map[uint64]bool)
	for _, recs := range byEntity {
		for a := 0; a < len(recs); a++ {
			for b := a + 1; b < len(recs); b++ {
				i, j := recs[a], recs[b]
				if d.NumSources > 1 && d.Records[i].Source == d.Records[j].Source {
					continue
				}
				out[blocking.Key(i, j)] = true
			}
		}
	}
	return out
}

// NumTrueMatches returns the number of ground-truth matching pairs.
func (d *Dataset) NumTrueMatches() int { return len(d.TrueMatches()) }

// ClusterSizes returns the ground-truth cluster sizes in descending order.
func (d *Dataset) ClusterSizes() []int {
	byEntity := make(map[int]int)
	for _, r := range d.Records {
		if r.EntityID >= 0 {
			byEntity[r.EntityID]++
		}
	}
	sizes := make([]int, 0, len(byEntity))
	for _, s := range byEntity {
		sizes = append(sizes, s)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}

// Validate checks internal consistency of IDs and sources.
func (d *Dataset) Validate() error {
	for i, r := range d.Records {
		if r.ID != i {
			return fmt.Errorf("dataset %s: record %d has ID %d", d.Name, i, r.ID)
		}
		if r.Source < 0 || r.Source >= maxInt(d.NumSources, 1) {
			return fmt.Errorf("dataset %s: record %d has source %d outside [0,%d)", d.Name, i, r.Source, d.NumSources)
		}
		if strings.TrimSpace(r.Text) == "" {
			return fmt.Errorf("dataset %s: record %d has empty text", d.Name, i)
		}
	}
	return nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// joinFields assembles Text from fields, skipping empties.
func joinFields(fields []Field) string {
	parts := make([]string, 0, len(fields))
	for _, f := range fields {
		if f.Value != "" {
			parts = append(parts, f.Value)
		}
	}
	return strings.Join(parts, " ")
}
