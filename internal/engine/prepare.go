package engine

import (
	"fmt"
	"math"

	"repro/internal/blocking"
	"repro/internal/cluster"
	"repro/internal/eval"
	"repro/internal/textproc"
)

// Degradation describes how the Block stage degraded candidate generation
// to satisfy a pair budget. Degradation is lossy by design — tightened
// filters and truncation can drop true matches — so every step is
// recorded for the caller to audit. The root package re-exports this as
// er.DegradationReport.
type Degradation struct {
	// OriginalPairs is the candidate count of the untightened blocking
	// pass that exceeded the budget.
	OriginalPairs int
	// FinalPairs is the candidate count actually handed downstream.
	FinalPairs int
	// MinJaccard and MaxTermRecords are the effective blocking parameters
	// of the final pass (tighter than the configured ones).
	MinJaccard     float64
	MaxTermRecords int
	// TruncatedPairs counts pairs dropped by the deterministic last-resort
	// truncation after parameter tightening alone could not reach the
	// budget; 0 when tightening sufficed.
	TruncatedPairs int
	// Steps narrates each degradation step in order, for logs and CLIs.
	Steps []string
}

// PrepareInputs carries everything the pre-matching stages need.
type PrepareInputs struct {
	// Texts and Sources are the dataset's record texts and source labels,
	// index-aligned.
	Texts   []string
	Sources []int
	// Corpus and Blocking are the stage options. Blocking.Check is
	// overwritten with the run's checkpoint.
	Corpus   textproc.CorpusOptions
	Blocking blocking.Options
	// MaxPairs is the candidate-pair budget (0 disables it); exceeding it
	// triggers the graceful degradation recorded in Degradation.
	MaxPairs int
	// Cache, when non-nil, is consulted for (and updated with) the
	// content-keyed snapshot, letting repeated runs on the same dataset
	// skip tokenization and blocking entirely.
	Cache *Cache
}

// Prepare executes the pre-matching stages — tokenize and block — under
// the run, returning their snapshot. On a cache hit both stages are
// recorded as Cached with the sizes of the reused artifacts and no work
// is performed.
func Prepare(r *Run, in PrepareInputs) (*Snapshot, error) {
	key := Key(in.Texts, in.Sources, in.Corpus, in.Blocking, in.MaxPairs)
	if snap, ok := in.Cache.Lookup(key); ok {
		r.Record(StageTrace{
			Stage: StageTokenize, Cached: true,
			In: len(in.Texts), InUnit: "records",
			Out: snap.NumTerms(), OutUnit: "terms",
		})
		st := StageTrace{
			Stage: StageBlock, Cached: true,
			In: snap.NumTerms(), InUnit: "terms",
			Out: snap.NumPairs(), OutUnit: "pairs",
		}
		if snap.Degradation != nil {
			st.Events = append(st.Events, snap.Degradation.Steps...)
		}
		r.Record(st)
		return snap, nil
	}

	snap := &Snapshot{Key: key}
	err := r.Stage(StageTokenize, func(st *StageTrace) error {
		snap.Corpus = textproc.BuildCorpus(in.Texts, in.Corpus)
		st.In, st.InUnit = len(in.Texts), "records"
		st.Out, st.OutUnit = snap.Corpus.NumTerms(), "terms"
		return nil
	})
	if err != nil {
		return nil, err
	}
	err = r.Stage(StageBlock, func(st *StageTrace) error {
		st.In, st.InUnit = snap.Corpus.NumTerms(), "terms"
		st.OutUnit = "pairs"
		g, deg, err := blockWithBudget(r, snap.Corpus, in)
		if err != nil {
			return err
		}
		snap.Graph, snap.Degradation = g, deg
		st.Out = g.NumPairs()
		if deg != nil {
			st.Events = append(st.Events, deg.Steps...)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	in.Cache.Add(snap)
	return snap, nil
}

// blockWithBudget builds the candidate graph and applies the
// MaxPairs budget with graceful degradation: it tightens the two blocking
// knobs geometrically and rebuilds — each attempt prunes the weakest
// candidates first (low-Jaccard pairs, pairs generated only by
// high-frequency terms), the degradation order that costs the least
// recall per dropped pair — truncating deterministically as a last
// resort.
func blockWithBudget(r *Run, corpus *textproc.Corpus, in PrepareInputs) (*blocking.Graph, *Degradation, error) {
	bOpts := in.Blocking
	bOpts.Check = r.check
	// The batch scan runs on the run's worker budget; like the fusion
	// kernels it is bit-identical across worker counts, so the snapshot Key
	// (which excludes Workers) stays valid.
	bOpts.Workers = r.workers
	g, err := blocking.Build(corpus, in.Sources, bOpts)
	if err != nil {
		return nil, nil, err
	}
	budget := in.MaxPairs
	if budget <= 0 || g.NumPairs() <= budget {
		return g, nil, nil
	}
	report := &Degradation{
		OriginalPairs:  g.NumPairs(),
		MinJaccard:     bOpts.MinJaccard,
		MaxTermRecords: bOpts.MaxTermRecords,
	}
	for attempt := 0; attempt < 4 && g.NumPairs() > budget; attempt++ {
		report.MinJaccard = math.Min(0.9, report.MinJaccard+0.15)
		if report.MaxTermRecords <= 0 || report.MaxTermRecords > 256 {
			report.MaxTermRecords = 256
		} else if report.MaxTermRecords > 8 {
			report.MaxTermRecords = report.MaxTermRecords / 2
		}
		bOpts.MinJaccard = report.MinJaccard
		bOpts.MaxTermRecords = report.MaxTermRecords
		if g, err = blocking.Build(corpus, in.Sources, bOpts); err != nil {
			return nil, nil, err
		}
		report.Steps = append(report.Steps, fmt.Sprintf(
			"tightened blocking to MinJaccard=%.2f MaxTermRecords=%d: %d pairs",
			report.MinJaccard, report.MaxTermRecords, g.NumPairs()))
	}
	if g.NumPairs() > budget {
		report.TruncatedPairs = g.NumPairs() - budget
		g = blocking.Truncate(g, budget)
		report.Steps = append(report.Steps, fmt.Sprintf(
			"truncated %d pairs beyond the budget of %d", report.TruncatedPairs, budget))
	}
	report.FinalPairs = g.NumPairs()
	return g, report, nil
}

// Cluster executes the clustering stage: transitive closure over the
// matched candidate pairs.
func Cluster(r *Run, numRecords int, pairs []blocking.Pair, matched []bool) ([][]int, error) {
	var out [][]int
	err := r.Stage(StageCluster, func(st *StageTrace) error {
		out = cluster.FromMatches(numRecords, pairs, matched)
		st.In, st.InUnit = len(pairs), "pairs"
		st.Out, st.OutUnit = len(out), "clusters"
		return nil
	})
	return out, err
}

// Evaluate executes the evaluation stage: pairwise precision/recall/F1 of
// a match assignment against ground truth.
func Evaluate(r *Run, pairs []blocking.Pair, matched []bool, truth map[uint64]bool, totalTrue int) (eval.PRF, error) {
	var prf eval.PRF
	err := r.Stage(StageEvaluate, func(st *StageTrace) error {
		prf = eval.EvaluatePairs(pairs, matched, truth, totalTrue)
		st.In, st.InUnit = len(pairs), "pairs"
		st.Out, st.OutUnit = prf.TP+prf.FP, "matches"
		return nil
	})
	return prf, err
}
