package engine

import (
	"repro/internal/blocking"
	"repro/internal/core"
)

// Fuse executes the fusion stages — the ITER ⇄ record-graph ⇄
// CliqueRank/RSS reinforcement rounds plus the final η thresholding —
// by driving core.FusionRun phase by phase, so each phase's wall time,
// sizes and iteration counts land in the trace without duplicating the
// loop. The run's checkpoint, worker budget and scratch arena override
// the corresponding option fields; the run's clock times the phases
// (opts.Clock, when set, still times the core result's Elapsed).
//
// The per-round phases are recorded as aggregates: one StageITER, one
// StageRecordGraph and one StageCliqueRank (or StageRSS) entry each
// summing all rounds, followed by a StageFuse entry for the
// thresholding. Entries are recorded even when the run is canceled
// mid-loop, so partial traces survive for diagnosis.
func Fuse(r *Run, g *blocking.Graph, numRecords int, opts core.Options) (*core.FusionResult, error) {
	opts.Check = r.check
	opts.Workers = r.workers
	opts.Scratch = &r.scratch
	if opts.Clock == nil {
		opts.Clock = r.clk
	}

	rankStage := StageCliqueRank
	if opts.UseRSS {
		rankStage = StageRSS
	}
	iterSt := StageTrace{Stage: StageITER, In: g.NumTerms, InUnit: "terms", Out: g.NumPairs(), OutUnit: "pairs"}
	graphSt := StageTrace{Stage: StageRecordGraph, In: g.NumPairs(), InUnit: "pairs", OutUnit: "edges"}
	rankSt := StageTrace{Stage: rankStage, InUnit: "edges", Out: g.NumPairs(), OutUnit: "pairs"}

	f := core.NewFusionRun(g, numRecords, opts)
	if opts.ShardComponents {
		// Partition once per run; the stage records how many components the
		// candidate graph splits into. (A no-op under UseRSS — Sharded()
		// stays false and the loop takes the unsharded phases.)
		if err := r.Stage(StagePartition, func(st *StageTrace) error {
			st.In, st.InUnit = g.NumPairs(), "pairs"
			st.Out, st.OutUnit = f.Partition(), "components"
			return nil
		}); err != nil {
			return nil, err
		}
	}
	// In the sharded path graph construction happens inside the rank step
	// (per component), so only the rank aggregate is recorded for it.
	record := func() {
		r.Record(iterSt)
		if !f.Sharded() {
			r.Record(graphSt)
		}
		r.Record(rankSt)
	}

	for f.Next() {
		start := r.clk()
		iterations, err := f.StepITER()
		iterSt.Wall += r.clk().Sub(start)
		iterSt.Rounds++
		iterSt.Iterations += iterations
		if err != nil {
			record()
			return nil, err
		}

		if f.Sharded() {
			start = r.clk()
			edges, err := f.StepShardedRank()
			rankSt.Wall += r.clk().Sub(start)
			rankSt.Rounds++
			rankSt.In = edges
			if err != nil {
				record()
				return nil, err
			}
			continue
		}

		start = r.clk()
		_, edges := f.StepGraph()
		graphSt.Wall += r.clk().Sub(start)
		graphSt.Rounds++
		graphSt.Out = edges

		start = r.clk()
		err = f.StepRank()
		rankSt.Wall += r.clk().Sub(start)
		rankSt.Rounds++
		rankSt.In = edges
		if err != nil {
			record()
			return nil, err
		}
	}

	start := r.clk()
	res := f.Finish()
	fuseSt := StageTrace{Stage: StageFuse, In: g.NumPairs(), InUnit: "pairs", OutUnit: "matches"}
	fuseSt.Wall = r.clk().Sub(start)
	for _, m := range res.Matches {
		if m {
			fuseSt.Out++
		}
	}
	record()
	r.Record(fuseSt)
	return res, nil
}
