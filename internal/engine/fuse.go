package engine

import (
	"repro/internal/blocking"
	"repro/internal/core"
)

// Fuse executes the fusion stages — the ITER ⇄ record-graph ⇄
// CliqueRank/RSS reinforcement rounds plus the final η thresholding —
// by driving core.FusionRun phase by phase, so each phase's wall time,
// sizes and iteration counts land in the trace without duplicating the
// loop. The run's checkpoint, worker budget and scratch arena override
// the corresponding option fields; the run's clock times the phases
// (opts.Clock, when set, still times the core result's Elapsed).
//
// The per-round phases are recorded as aggregates: one StageITER, one
// StageRecordGraph and one StageCliqueRank (or StageRSS) entry each
// summing all rounds, followed by a StageFuse entry for the
// thresholding. Entries are recorded even when the run is canceled
// mid-loop, so partial traces survive for diagnosis.
func Fuse(r *Run, g *blocking.Graph, numRecords int, opts core.Options) (*core.FusionResult, error) {
	opts.Check = r.check
	opts.Workers = r.workers
	opts.Scratch = &r.scratch
	if opts.Clock == nil {
		opts.Clock = r.clk
	}

	rankStage := StageCliqueRank
	if opts.UseRSS {
		rankStage = StageRSS
	}
	iterSt := StageTrace{Stage: StageITER, In: g.NumTerms, InUnit: "terms", Out: g.NumPairs(), OutUnit: "pairs"}
	graphSt := StageTrace{Stage: StageRecordGraph, In: g.NumPairs(), InUnit: "pairs", OutUnit: "edges"}
	rankSt := StageTrace{Stage: rankStage, InUnit: "edges", Out: g.NumPairs(), OutUnit: "pairs"}
	record := func() {
		r.Record(iterSt)
		r.Record(graphSt)
		r.Record(rankSt)
	}

	f := core.NewFusionRun(g, numRecords, opts)
	for f.Next() {
		start := r.clk()
		iterations, err := f.StepITER()
		iterSt.Wall += r.clk().Sub(start)
		iterSt.Rounds++
		iterSt.Iterations += iterations
		if err != nil {
			record()
			return nil, err
		}

		start = r.clk()
		_, edges := f.StepGraph()
		graphSt.Wall += r.clk().Sub(start)
		graphSt.Rounds++
		graphSt.Out = edges

		start = r.clk()
		err = f.StepRank()
		rankSt.Wall += r.clk().Sub(start)
		rankSt.Rounds++
		rankSt.In = edges
		if err != nil {
			record()
			return nil, err
		}
	}

	start := r.clk()
	res := f.Finish()
	fuseSt := StageTrace{Stage: StageFuse, In: g.NumPairs(), InUnit: "pairs", OutUnit: "matches"}
	fuseSt.Wall = r.clk().Sub(start)
	for _, m := range res.Matches {
		if m {
			fuseSt.Out++
		}
	}
	record()
	r.Record(fuseSt)
	return res, nil
}
