package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/textproc"
)

// Snapshot is the cacheable artifact of the pre-matching stages: the
// tokenized corpus and the blocked candidate graph for one dataset under
// one option set, keyed by content. Both structures are immutable once
// built (every downstream stage only reads them), which is what makes
// sharing a snapshot across jobs safe.
type Snapshot struct {
	// Key is the content key the snapshot was stored under (see Key).
	Key string
	// Corpus is the tokenized, frequency-filtered corpus.
	Corpus *textproc.Corpus
	// Graph is the blocked candidate-pair graph.
	Graph *blocking.Graph
	// Degradation describes how blocking was degraded to satisfy the pair
	// budget; nil when the budget was disabled or never exceeded.
	Degradation *Degradation
}

// NumRecords returns the snapshot's record count.
func (s *Snapshot) NumRecords() int { return s.Corpus.NumRecords() }

// NumTerms returns the number of terms that survived pre-processing.
func (s *Snapshot) NumTerms() int { return s.Corpus.NumTerms() }

// NumPairs returns the candidate pair count.
func (s *Snapshot) NumPairs() int { return s.Graph.NumPairs() }

// Key derives the content key of the pre-matching artifacts: a hash over
// the record texts and source labels plus every option that influences
// tokenization or blocking. Runs with equal keys produce byte-identical
// corpora and candidate graphs, so a cached snapshot substitutes exactly.
func Key(texts []string, sources []int, copts textproc.CorpusOptions, bopts blocking.Options, maxPairs int) string {
	h := sha256.New()
	fmt.Fprintf(h, "v1|records=%d|", len(texts))
	for _, t := range texts {
		fmt.Fprintf(h, "%d:", len(t))
		io.WriteString(h, t)
	}
	fmt.Fprintf(h, "|sources=%d|", len(sources))
	for _, s := range sources {
		fmt.Fprintf(h, "%d,", s)
	}
	fmt.Fprintf(h, "|tok=%t,%d,%t|df=%g|mindf=%d|stop=",
		copts.Tokenize.Lowercase, copts.Tokenize.MinLen, copts.Tokenize.KeepDigits,
		copts.MaxDFRatio, copts.MinDF)
	stop := append([]string(nil), copts.Stopwords...)
	sort.Strings(stop)
	for _, w := range stop {
		fmt.Fprintf(h, "%q,", w)
	}
	fmt.Fprintf(h, "|block=%t,%d,%d,%g|budget=%d",
		bopts.CrossSourceOnly, bopts.MaxTermRecords, bopts.MinSharedTerms, bopts.MinJaccard, maxPairs)
	return hex.EncodeToString(h.Sum(nil))
}

// FusionKey derives the content key of a fusion run's term weights on top
// of a snapshot key: the snapshot plus every core option that influences
// the result. Workers, Check, Clock, Progress and Scratch are excluded on
// purpose — fusion output is bit-identical across worker counts and
// independent of instrumentation.
func FusionKey(snapshotKey string, o core.Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|fuse=%g,%d,%g,%d,%g,%d,%d,%t,%d,%t,%t,%t,%d",
		snapshotKey,
		o.Alpha, o.Steps, o.Eta, o.FusionIterations,
		o.ITERTol, o.ITERMaxIters, int(o.Normalization),
		o.UseRSS, o.RSSWalks,
		o.DisableBonus, o.DisableMask, o.DisableDenominator,
		o.Seed)
	return hex.EncodeToString(h.Sum(nil))
}

// DefaultCacheCapacity is the snapshot capacity NewCache selects for
// non-positive requests.
const DefaultCacheCapacity = 8

// CacheStats is a point-in-time view of a cache's effectiveness.
type CacheStats struct {
	// Hits and Misses count snapshot lookups since the cache was created.
	Hits, Misses int64
	// Entries is the number of snapshots currently held.
	Entries int
}

// Cache is a bounded, mutex-guarded LRU of snapshots (and, piggybacked on
// the same keys, of fusion term-weight vectors) shared across runs. All
// methods are safe for concurrent use and nil-safe: a nil *Cache behaves
// as an always-miss cache, so callers can thread an optional cache
// without branching.
type Cache struct {
	mu       sync.Mutex
	capacity int
	snaps    map[string]*Snapshot
	order    []string // least recently used first
	weights  map[string][]float64
	hits     int64
	misses   int64
}

// NewCache returns a cache holding at most capacity snapshots (and at
// most capacity term-weight vectors per snapshot generation). A
// non-positive capacity selects DefaultCacheCapacity.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{
		capacity: capacity,
		snaps:    make(map[string]*Snapshot),
		weights:  make(map[string][]float64),
	}
}

// Lookup returns the snapshot stored under key, marking it most recently
// used. It counts a hit or a miss; a nil cache always misses without
// counting.
func (c *Cache) Lookup(key string) (*Snapshot, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.snaps[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.touch(key)
	return s, true
}

// Add stores a snapshot under its own Key, evicting the least recently
// used entry (and its cached term weights) past capacity. Adding to a nil
// cache is a no-op.
func (c *Cache) Add(s *Snapshot) {
	if c == nil || s == nil || s.Key == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.snaps[s.Key]; ok {
		c.snaps[s.Key] = s
		c.touch(s.Key)
		return
	}
	//lint:ignore guardloop mutex-held eviction over a capacity-bounded cache; no unbounded work
	for len(c.snaps) >= c.capacity && len(c.order) > 0 {
		evict := c.order[0]
		c.order = c.order[1:]
		delete(c.snaps, evict)
		for k := range c.weights {
			if len(k) >= len(evict) && k[:len(evict)] == evict {
				delete(c.weights, k)
			}
		}
	}
	c.snaps[s.Key] = s
	c.order = append(c.order, s.Key)
}

// TermWeights returns a copy of the term-weight vector cached under a
// FusionKey, if present. The copy keeps callers isolated from each other.
func (c *Cache) TermWeights(fusionKey string) ([]float64, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.weights[fusionKey]
	if !ok {
		return nil, false
	}
	return append([]float64(nil), w...), true
}

// AddTermWeights caches a copy of a fusion run's term weights under a
// FusionKey. The copy matters: live fusion results alias per-run scratch
// buffers.
func (c *Cache) AddTermWeights(fusionKey string, w []float64) {
	if c == nil || fusionKey == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.weights) >= 2*c.capacity {
		return // soft bound; weight vectors are small but not free
	}
	c.weights[fusionKey] = append([]float64(nil), w...)
}

// Stats returns the cache's hit/miss counters and current size. A nil
// cache reports zeros.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Entries: len(c.snaps)}
}

// touch moves key to the most-recently-used end of the order. Callers
// hold c.mu.
func (c *Cache) touch(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), key)
			return
		}
	}
	c.order = append(c.order, key)
}
