package engine

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/textproc"
)

// Snapshot is the cacheable artifact of the pre-matching stages: the
// tokenized corpus and the blocked candidate graph for one dataset under
// one option set, keyed by content. Both structures are immutable once
// built (every downstream stage only reads them), which is what makes
// sharing a snapshot across jobs safe.
type Snapshot struct {
	// Key is the content key the snapshot was stored under (see Key).
	Key string
	// Corpus is the tokenized, frequency-filtered corpus.
	Corpus *textproc.Corpus
	// Graph is the blocked candidate-pair graph.
	Graph *blocking.Graph
	// Degradation describes how blocking was degraded to satisfy the pair
	// budget; nil when the budget was disabled or never exceeded.
	Degradation *Degradation
}

// NumRecords returns the snapshot's record count.
func (s *Snapshot) NumRecords() int { return s.Corpus.NumRecords() }

// NumTerms returns the number of terms that survived pre-processing.
func (s *Snapshot) NumTerms() int { return s.Corpus.NumTerms() }

// NumPairs returns the candidate pair count.
func (s *Snapshot) NumPairs() int { return s.Graph.NumPairs() }

// Key derives the content key of the pre-matching artifacts: a hash over
// the record texts and source labels plus every option that influences
// tokenization or blocking. Runs with equal keys produce byte-identical
// corpora and candidate graphs, so a cached snapshot substitutes exactly.
func Key(texts []string, sources []int, copts textproc.CorpusOptions, bopts blocking.Options, maxPairs int) string {
	h := sha256.New()
	fmt.Fprintf(h, "v1|records=%d|", len(texts))
	for _, t := range texts {
		fmt.Fprintf(h, "%d:", len(t))
		io.WriteString(h, t)
	}
	fmt.Fprintf(h, "|sources=%d|", len(sources))
	for _, s := range sources {
		fmt.Fprintf(h, "%d,", s)
	}
	fmt.Fprintf(h, "|tok=%t,%d,%t|df=%g|mindf=%d|stop=",
		copts.Tokenize.Lowercase, copts.Tokenize.MinLen, copts.Tokenize.KeepDigits,
		copts.MaxDFRatio, copts.MinDF)
	stop := append([]string(nil), copts.Stopwords...)
	sort.Strings(stop)
	for _, w := range stop {
		fmt.Fprintf(h, "%q,", w)
	}
	fmt.Fprintf(h, "|block=%t,%d,%d,%g|budget=%d",
		bopts.CrossSourceOnly, bopts.MaxTermRecords, bopts.MinSharedTerms, bopts.MinJaccard, maxPairs)
	return hex.EncodeToString(h.Sum(nil))
}

// FusionKey derives the content key of a fusion run's term weights on top
// of a snapshot key: the snapshot plus every core option that influences
// the result. Workers, Check, Clock, Progress and Scratch are excluded on
// purpose — fusion output is bit-identical across worker counts and
// independent of instrumentation.
func FusionKey(snapshotKey string, o core.Options) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s", snapshotKey, fusionOptsSig(o))
	return hex.EncodeToString(h.Sum(nil))
}

// DefaultCacheCapacity is the snapshot capacity NewCache selects for
// non-positive requests.
const DefaultCacheCapacity = 8

// DefaultComponentCapacity bounds the per-component fusion results a cache
// holds. Components are small (a handful of floats each) and numerous — a
// 100k-record corpus decomposes into tens of thousands — so the bound is
// set well above the snapshot capacity.
const DefaultComponentCapacity = 1 << 16

// CacheStats is a point-in-time view of a cache's effectiveness.
type CacheStats struct {
	// Hits and Misses count snapshot lookups since the cache was created.
	Hits, Misses int64
	// Entries is the number of snapshots currently held.
	Entries int
	// ComponentHits and ComponentMisses count per-component fusion-result
	// lookups by the delta-scoped resolver; ComponentEntries is the number
	// of component results currently held.
	ComponentHits, ComponentMisses int64
	ComponentEntries               int
}

// ComponentResult is the memoized fusion outcome of one candidate-graph
// component: the local pair probabilities (aligned with the component's
// ascending global-pair order) plus the aggregates the resolver folds into
// the global result. Stored under a content key over the component's
// localized structure and the fusion options, so equal keys imply
// bit-identical results.
type ComponentResult struct {
	P              []float64
	Converged      bool
	NumericRepairs int
	Edges          int
}

// Cache is a bounded, mutex-guarded LRU of snapshots (and, piggybacked on
// the same keys, of fusion term-weight vectors) shared across runs. All
// methods are safe for concurrent use and nil-safe: a nil *Cache behaves
// as an always-miss cache, so callers can thread an optional cache
// without branching.
type Cache struct {
	mu       sync.Mutex
	capacity int
	snaps    map[string]*Snapshot
	order    []string // least recently used first
	weights  map[string][]float64
	hits     int64
	misses   int64

	// Component-result section: an approximate-LRU keyed store for the
	// delta-scoped resolver. Entries carry a logical use tick; eviction
	// drops the least recently used eighth when the bound is hit, which
	// keeps lookups O(1) (a true LRU list would cost a linear touch per
	// hit at tens of thousands of entries).
	comps    map[string]*compEntry
	compCap  int
	compTick int64
	compHits int64
	compMiss int64
}

// compEntry pairs a component result with its last-use tick.
type compEntry struct {
	res  *ComponentResult
	used int64
}

// NewCache returns a cache holding at most capacity snapshots (and at
// most capacity term-weight vectors per snapshot generation). A
// non-positive capacity selects DefaultCacheCapacity.
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{
		capacity: capacity,
		snaps:    make(map[string]*Snapshot),
		weights:  make(map[string][]float64),
		comps:    make(map[string]*compEntry),
		compCap:  DefaultComponentCapacity,
	}
}

// Component returns the memoized fusion result stored under a component
// content key, counting a hit or a miss. A nil cache always misses without
// counting. Callers must not mutate the returned result.
func (c *Cache) Component(key string) (*ComponentResult, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.comps[key]
	if !ok {
		c.compMiss++
		return nil, false
	}
	c.compHits++
	c.compTick++
	e.used = c.compTick
	return e.res, true
}

// AddComponent memoizes a component fusion result, evicting the least
// recently used eighth of the section when the bound is hit. Adding to a
// nil cache is a no-op.
func (c *Cache) AddComponent(key string, res *ComponentResult) {
	if c == nil || key == "" || res == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.comps) >= c.compCap {
		c.evictComponents()
	}
	c.compTick++
	c.comps[key] = &compEntry{res: res, used: c.compTick}
}

// evictComponents drops the least recently used eighth of the component
// section. Callers hold c.mu. Which entries survive affects only future hit
// rates, never results — component keys are content keys.
func (c *Cache) evictComponents() {
	ticks := make([]int64, 0, len(c.comps))
	for _, e := range c.comps {
		ticks = append(ticks, e.used)
	}
	sort.Slice(ticks, func(a, b int) bool { return ticks[a] < ticks[b] })
	cut := ticks[len(ticks)/8]
	for k, e := range c.comps {
		if e.used <= cut {
			delete(c.comps, k)
		}
	}
}

// Lookup returns the snapshot stored under key, marking it most recently
// used. It counts a hit or a miss; a nil cache always misses without
// counting.
func (c *Cache) Lookup(key string) (*Snapshot, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.snaps[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.touch(key)
	return s, true
}

// Add stores a snapshot under its own Key, evicting the least recently
// used entry (and its cached term weights) past capacity. Adding to a nil
// cache is a no-op.
func (c *Cache) Add(s *Snapshot) {
	if c == nil || s == nil || s.Key == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.snaps[s.Key]; ok {
		c.snaps[s.Key] = s
		c.touch(s.Key)
		return
	}
	//lint:ignore guardloop mutex-held eviction over a capacity-bounded cache; no unbounded work
	for len(c.snaps) >= c.capacity && len(c.order) > 0 {
		evict := c.order[0]
		c.order = c.order[1:]
		delete(c.snaps, evict)
		for k := range c.weights {
			if len(k) >= len(evict) && k[:len(evict)] == evict {
				delete(c.weights, k)
			}
		}
	}
	c.snaps[s.Key] = s
	c.order = append(c.order, s.Key)
}

// TermWeights returns a copy of the term-weight vector cached under a
// FusionKey, if present. The copy keeps callers isolated from each other.
func (c *Cache) TermWeights(fusionKey string) ([]float64, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	w, ok := c.weights[fusionKey]
	if !ok {
		return nil, false
	}
	return append([]float64(nil), w...), true
}

// AddTermWeights caches a copy of a fusion run's term weights under a
// FusionKey. The copy matters: live fusion results alias per-run scratch
// buffers.
func (c *Cache) AddTermWeights(fusionKey string, w []float64) {
	if c == nil || fusionKey == "" {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.weights) >= 2*c.capacity {
		return // soft bound; weight vectors are small but not free
	}
	c.weights[fusionKey] = append([]float64(nil), w...)
}

// Stats returns the cache's hit/miss counters and current size. A nil
// cache reports zeros.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Entries: len(c.snaps),
		ComponentHits: c.compHits, ComponentMisses: c.compMiss,
		ComponentEntries: len(c.comps),
	}
}

// touch moves key to the most-recently-used end of the order. Callers
// hold c.mu.
func (c *Cache) touch(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(append(c.order[:i:i], c.order[i+1:]...), key)
			return
		}
	}
	c.order = append(c.order, key)
}
