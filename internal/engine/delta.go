package engine

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"slices"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/graph"
)

// StageDeltaFuse is the component-scoped fusion stage of the delta
// resolver: per connected component of the candidate graph, fuse or reuse.
const StageDeltaFuse = "deltafuse"

// DeltaStats is the work split of one delta-scoped resolve: how many
// candidate-graph components the run saw, how many it served from the
// component cache, and how many it actually fused (with their pair counts).
type DeltaStats struct {
	// Components is the number of connected components in the candidate
	// graph (components have at least one pair; isolated records are not
	// counted — they have nothing to fuse).
	Components int
	// ComponentsReused and ComponentsFused split Components into cache hits
	// and actual fusion runs.
	ComponentsReused, ComponentsFused int
	// PairsReused and PairsFused are the candidate pairs covered by each
	// side of the split.
	PairsReused, PairsFused int
}

// component is one connected component of the candidate graph: its global
// record IDs and global pair IDs, both ascending.
type component struct {
	records []int32
	pairs   []int32
}

// partition is the component decomposition of a candidate graph plus the
// global→local renumbering arrays. Record and pair membership is unique, so
// one flat array per dimension serves every component at once — the
// delta path's hot loops stay map-free.
type partition struct {
	comps []component
	// recLocal / pairLocal give a record's / pair's local index within its
	// component (-1 for records in no pair).
	recLocal  []int32
	pairLocal []int32
	// pairComp gives a pair's component index.
	pairComp []int32
}

// partitionCandidates splits the candidate graph into connected components
// over its pairs. The decomposition mirrors core's component sharding:
// records in no pair are excluded, components are numbered by smallest
// record ID, and per-component record/pair lists keep global order.
func partitionCandidates(g *blocking.Graph, numRecords int) *partition {
	uf := graph.NewUnionFind(numRecords)
	inPair := make([]bool, numRecords)
	for _, pr := range g.Pairs {
		uf.Union(int(pr.I), int(pr.J))
		inPair[pr.I] = true
		inPair[pr.J] = true
	}
	compIdx := make([]int32, numRecords)
	compOf := make([]int32, numRecords)
	for i := range compIdx {
		compIdx[i] = -1
	}
	n := 0
	for r := 0; r < numRecords; r++ {
		if !inPair[r] {
			compOf[r] = -1
			continue
		}
		root := uf.Find(r)
		if compIdx[root] < 0 {
			compIdx[root] = int32(n)
			n++
		}
		compOf[r] = compIdx[root]
	}
	part := &partition{
		comps:     make([]component, n),
		recLocal:  make([]int32, numRecords),
		pairLocal: make([]int32, g.NumPairs()),
		pairComp:  make([]int32, g.NumPairs()),
	}
	for r := 0; r < numRecords; r++ {
		ci := compOf[r]
		if ci < 0 {
			part.recLocal[r] = -1
			continue
		}
		part.recLocal[r] = int32(len(part.comps[ci].records))
		part.comps[ci].records = append(part.comps[ci].records, int32(r))
	}
	for pid, pr := range g.Pairs {
		ci := compOf[pr.I]
		part.pairComp[pid] = ci
		part.pairLocal[pid] = int32(len(part.comps[ci].pairs))
		part.comps[ci].pairs = append(part.comps[ci].pairs, int32(pid))
	}
	return part
}

// componentTerms collects the distinct global terms touching a component's
// pairs, ascending. seen is an all-false scratch over terms, restored
// before returning.
func componentTerms(g *blocking.Graph, comp *component, seen []bool) []int32 {
	var terms []int32
	//lint:ignore guardloop bounded by one component's pair-term lists; DeltaFuse polls the checkpoint per component
	for _, pid := range comp.pairs {
		for _, t := range g.PairTerms[g.PairTermPtr[pid]:g.PairTermPtr[pid+1]] {
			if !seen[t] {
				seen[t] = true
				terms = append(terms, t)
			}
		}
	}
	for _, t := range terms {
		seen[t] = false
	}
	slices.Sort(terms)
	return terms
}

// componentKey derives the content key of one component's fusion result: a
// hash over the fusion options and the component's localized structure —
// local pair endpoints plus each touching term's local pair list, in
// ascending global term order but without global term identities. Fusion
// reads nothing but this topology (ITER and CliqueRank are pure functions
// of the term–pair and record–record structure), so components with equal
// keys — across mutations, collections, even within one corpus — have
// bit-identical local results.
// The structure bytes are assembled into the caller's reusable scratch and
// hashed in one shot: a digest allocation plus a 4-byte h.Write per int32
// is measurable when a warm 100k resolve keys ~20k components. The raw
// 32-byte digest serves as the map key directly — the key never leaves the
// cache, so it needs no printable encoding.
func componentKey(sig []byte, g *blocking.Graph, part *partition, ci int, terms []int32, scratch []byte) (string, []byte) {
	comp := &part.comps[ci]
	buf := append(scratch[:0], sig...)
	put := func(v int32) {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	put(int32(len(comp.records)))
	put(int32(len(comp.pairs)))
	for _, pid := range comp.pairs {
		pr := g.Pairs[pid]
		put(part.recLocal[pr.I])
		put(part.recLocal[pr.J])
	}
	put(int32(len(terms)))
	//lint:ignore guardloop bounded by one component's term-pair lists; DeltaFuse polls the checkpoint per component
	for _, t := range terms {
		put(-1) // term separator
		for _, pid := range g.TermPairs[t] {
			if part.pairComp[pid] == int32(ci) {
				put(part.pairLocal[pid])
			}
		}
	}
	sum := sha256.Sum256(buf)
	return string(sum[:]), buf
}

// localizeComponent builds the component's local candidate graph: records
// and pairs renumbered densely (preserving global order, so local key order
// matches global key order), terms restricted to the component in ascending
// global order. Only cache misses pay for this — hits are keyed without
// materializing the graph.
func localizeComponent(g *blocking.Graph, part *partition, ci int, terms []int32) *blocking.Graph {
	comp := &part.comps[ci]
	lg := &blocking.Graph{
		NumRecords: len(comp.records),
		NumTerms:   len(terms),
		Pairs:      make([]blocking.Pair, len(comp.pairs)),
		Index:      make(map[uint64]int32, len(comp.pairs)),
		TermPairs:  make([][]int32, len(terms)),
	}
	for k, pid := range comp.pairs {
		pr := g.Pairs[pid]
		li, lj := part.recLocal[pr.I], part.recLocal[pr.J]
		lg.Pairs[k] = blocking.Pair{I: li, J: lj}
		lg.Index[blocking.Key(li, lj)] = int32(k)
	}
	//lint:ignore guardloop bounded by one component's term-pair lists; DeltaFuse polls the checkpoint per component
	for lt, t := range terms {
		for _, pid := range g.TermPairs[t] {
			if part.pairComp[pid] == int32(ci) {
				lg.TermPairs[lt] = append(lg.TermPairs[lt], part.pairLocal[pid])
			}
		}
	}
	lg.BuildPairIndex()
	return lg
}

// fusionOptsSig serializes every core option that influences fusion output
// — the same field set FusionKey hashes. Workers, Check, Clock, Progress,
// Scratch and ShardComponents are excluded: output is bit-identical across
// all of them.
func fusionOptsSig(o core.Options) string {
	return fmt.Sprintf("fuse=%g,%d,%g,%d,%g,%d,%d,%t,%d,%t,%t,%t,%d",
		o.Alpha, o.Steps, o.Eta, o.FusionIterations,
		o.ITERTol, o.ITERMaxIters, int(o.Normalization),
		o.UseRSS, o.RSSWalks,
		o.DisableBonus, o.DisableMask, o.DisableDenominator,
		o.Seed)
}

// DeltaFuse is the delta-scoped alternative to Fuse: it partitions the
// candidate graph into connected components, fuses each component on its
// own localized graph, and memoizes the per-component results in the cache
// under content keys — so a resolve after a small mutation re-fuses only
// the components the mutation touched and serves every other component from
// cache.
//
// The semantics are per-component fusion: each component runs the full
// ITER ⇄ record-graph ⇄ CliqueRank loop on its local graph (own seeded RNG,
// own convergence test, own term weights for the terms it touches). This is
// deterministic and mutation-order independent — the result is a pure
// function of the collection state and options — but it is not the same
// function as the global Fuse, whose ITER couples components through the
// global convergence test and RNG sequence. Callers that need the global
// semantics use Fuse.
//
// The result's P/Matches/Nodes/Edges/Converged/NumericRepairs are
// populated; X, S and the ITER traces are per-component artifacts and stay
// nil.
func DeltaFuse(r *Run, g *blocking.Graph, numRecords int, opts core.Options, cache *Cache) (*core.FusionResult, DeltaStats, error) {
	opts.Check = r.check
	opts.Workers = r.workers
	opts.Scratch = &r.scratch
	if opts.Clock == nil {
		opts.Clock = r.clk
	}
	// A component is fused whole: sharding inside one component would only
	// re-partition what is already a single component.
	opts.ShardComponents = false

	var part *partition
	if err := r.Stage(StagePartition, func(st *StageTrace) error {
		part = partitionCandidates(g, numRecords)
		st.In, st.InUnit = g.NumPairs(), "pairs"
		st.Out, st.OutUnit = len(part.comps), "components"
		return nil
	}); err != nil {
		return nil, DeltaStats{}, err
	}

	sig := []byte(fusionOptsSig(opts))
	res := &core.FusionResult{
		Converged: true,
		P:         make([]float64, g.NumPairs()),
		Matches:   make([]bool, g.NumPairs()),
		Nodes:     numRecords,
	}
	stats := DeltaStats{Components: len(part.comps)}
	termSeen := make([]bool, g.NumTerms)
	var keyScratch []byte
	err := r.Stage(StageDeltaFuse, func(st *StageTrace) error {
		st.In, st.InUnit = len(part.comps), "components"
		st.OutUnit = "matches"
		for ci := range part.comps {
			if err := r.check.Err(); err != nil {
				return err
			}
			comp := &part.comps[ci]
			terms := componentTerms(g, comp, termSeen)
			var key string
			key, keyScratch = componentKey(sig, g, part, ci, terms, keyScratch)
			cr, ok := cache.Component(key)
			if !ok {
				lg := localizeComponent(g, part, ci, terms)
				f := core.NewFusionRun(lg, len(comp.records), opts)
				for f.Next() {
					if _, err := f.StepITER(); err != nil {
						return err
					}
					f.StepGraph()
					if err := f.StepRank(); err != nil {
						return err
					}
				}
				lres := f.Finish()
				cr = &ComponentResult{
					P:              append([]float64(nil), lres.P...),
					Converged:      lres.Converged,
					NumericRepairs: lres.NumericRepairs,
					Edges:          lres.Edges,
				}
				cache.AddComponent(key, cr)
				stats.ComponentsFused++
				stats.PairsFused += len(comp.pairs)
			} else {
				stats.ComponentsReused++
				stats.PairsReused += len(comp.pairs)
			}
			for k, pid := range comp.pairs {
				p := cr.P[k]
				res.P[pid] = p
				if p >= opts.Eta {
					res.Matches[pid] = true
					st.Out++
				}
			}
			res.Converged = res.Converged && cr.Converged
			res.NumericRepairs += cr.NumericRepairs
			res.Edges += cr.Edges
		}
		st.ComponentsFused = stats.ComponentsFused
		st.ComponentsReused = stats.ComponentsReused
		st.PairsFused = stats.PairsFused
		st.PairsReused = stats.PairsReused
		return nil
	})
	if err != nil {
		return nil, stats, err
	}
	return res, stats, nil
}
