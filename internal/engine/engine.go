// Package engine is the staged execution layer of the resolution
// pipeline. It decomposes the paper's dataflow — tokenize → block →
// (ITER ⇄ record graph ⇄ CliqueRank) → threshold → cluster → evaluate —
// into named stages that run under one shared Run carrying the context's
// guard checkpoint, the worker budget, the fusion scratch arena and the
// injected clock, and that record a per-stage StageTrace (wall time,
// input/output sizes, iteration counts, degradation events).
//
// Stage outputs are first-class artifacts: Prepare produces a
// content-keyed Snapshot of the pre-matching work (tokenized corpus +
// blocking graph + degradation report) that a Cache shares across runs on
// the same dataset, which is what lets erserve and the experiment harness
// skip the dominant pre-matching cost on repeated traffic.
//
// The engine deliberately stays below the public er package: it traffics
// in internal types (textproc.Corpus, blocking.Graph, core.FusionResult)
// and the root package converts its trace into the exported surface.
package engine

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/guard"
)

// Stage names, in pipeline order. Rank runs as either StageCliqueRank or
// StageRSS depending on core.Options.UseRSS.
const (
	StageTokenize    = "tokenize"
	StageBlock       = "block"
	StageMaterialize = "materialize"
	StagePartition   = "partition"
	StageITER        = "iter"
	StageRecordGraph = "recordgraph"
	StageCliqueRank  = "cliquerank"
	StageRSS         = "rss"
	StageFuse        = "fuse"
	StageCluster     = "cluster"
	StageEvaluate    = "evaluate"
)

// StageTrace records one stage execution (or, for the per-round fusion
// phases, the aggregate of every round's execution of that phase).
type StageTrace struct {
	// Stage is the stage name (one of the Stage* constants).
	Stage string
	// Cached reports that the stage's output was served from a Snapshot
	// cache instead of being computed; Wall is then ~0.
	Cached bool
	// Wall is the stage's wall-clock time under the run's clock, summed
	// across rounds for the fusion phases.
	Wall time.Duration
	// In and Out are the stage's input and output sizes in InUnit/OutUnit
	// (records, terms, pairs, edges, matches, clusters).
	In, Out         int
	InUnit, OutUnit string
	// Rounds counts fusion rounds for the per-round phases; 0 elsewhere.
	Rounds int
	// Iterations sums inner-loop iterations (ITER sweeps) across rounds.
	Iterations int
	// ComponentsFused/ComponentsReused and PairsFused/PairsReused record
	// the delta-scoped resolver's work split for the deltafuse stage —
	// components (and their candidate pairs) actually fused this run versus
	// served from the component cache. Zero everywhere else.
	ComponentsFused, ComponentsReused int
	PairsFused, PairsReused           int
	// Events narrates noteworthy stage decisions in order — today the
	// blocking degradation steps.
	Events []string
}

// Trace is the ordered stage record of one Run.
type Trace []StageTrace

// Find returns the first entry for the named stage, or nil.
func (t Trace) Find(stage string) *StageTrace {
	for i := range t {
		if t[i].Stage == stage {
			return &t[i]
		}
	}
	return nil
}

// Total sums the wall time of every recorded stage.
func (t Trace) Total() time.Duration {
	var d time.Duration
	for i := range t {
		d += t[i].Wall
	}
	return d
}

// String renders the trace as an aligned table, one stage per line, with
// degradation events indented beneath their stage.
func (t Trace) String() string {
	var sb strings.Builder
	//lint:ignore guardloop output-sized rendering of an already-computed trace; no unbounded work
	for _, st := range t {
		fmt.Fprintf(&sb, "%-12s %10s", st.Stage, st.Wall.Round(time.Microsecond))
		if st.InUnit != "" || st.OutUnit != "" {
			fmt.Fprintf(&sb, "  %d %s -> %d %s", st.In, st.InUnit, st.Out, st.OutUnit)
		}
		if st.Rounds > 0 {
			fmt.Fprintf(&sb, "  rounds=%d", st.Rounds)
		}
		if st.Iterations > 0 {
			fmt.Fprintf(&sb, " iterations=%d", st.Iterations)
		}
		if st.ComponentsFused > 0 || st.ComponentsReused > 0 {
			fmt.Fprintf(&sb, "  fused=%d/%dp reused=%d/%dp",
				st.ComponentsFused, st.PairsFused, st.ComponentsReused, st.PairsReused)
		}
		if st.Cached {
			sb.WriteString("  [cached]")
		}
		sb.WriteByte('\n')
		for _, ev := range st.Events {
			fmt.Fprintf(&sb, "             - %s\n", ev)
		}
	}
	return sb.String()
}

// RunOptions configures a Run.
type RunOptions struct {
	// Clock supplies stage timestamps; nil selects the system clock.
	Clock clock.Func
	// Workers bounds the goroutines the fusion kernels fan out across
	// (0 = GOMAXPROCS). The run overrides core.Options.Workers with this
	// value so one knob governs every stage.
	Workers int
}

// Run is the shared state one pipeline execution threads through its
// stages: the context's guard checkpoint (polled between and inside
// stages), the injected clock every stage timestamp comes from, the
// worker budget, and the fusion scratch arena reused across Fuse calls on
// the same run. It accumulates the Trace as stages execute. A Run is not
// safe for concurrent use.
type Run struct {
	ctx     context.Context
	check   *guard.Checkpoint
	clk     clock.Func
	workers int
	scratch core.Scratch
	trace   Trace
}

// NewRun binds a run to ctx: cancellation and deadlines are observed via
// the context's guard checkpoint before every stage and inside the hot
// loops.
func NewRun(ctx context.Context, o RunOptions) *Run {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Run{
		ctx:     ctx,
		check:   guard.FromContext(ctx),
		clk:     clock.OrSystem(o.Clock),
		workers: o.Workers,
	}
}

// Context returns the context the run was bound to.
func (r *Run) Context() context.Context { return r.ctx }

// Check returns the run's guard checkpoint (nil-safe to poll).
func (r *Run) Check() *guard.Checkpoint { return r.check }

// Clock returns the run's clock.
func (r *Run) Clock() clock.Func { return r.clk }

// Workers returns the run's worker budget.
func (r *Run) Workers() int { return r.workers }

// Trace returns a copy of the stages recorded so far, in execution order.
func (r *Run) Trace() Trace { return append(Trace(nil), r.trace...) }

// Stages returns the number of stages recorded so far.
func (r *Run) Stages() int { return len(r.trace) }

// Record appends a stage record to the run's trace.
func (r *Run) Record(st StageTrace) { r.trace = append(r.trace, st) }

// Stage polls for cancellation, times fn under the run's clock and
// records the resulting StageTrace (also when fn fails, so partial traces
// survive for diagnosis). fn receives the entry to fill in sizes and
// events.
func (r *Run) Stage(name string, fn func(st *StageTrace) error) error {
	if err := r.check.Err(); err != nil {
		return err
	}
	st := StageTrace{Stage: name}
	start := r.clk()
	err := fn(&st)
	st.Wall = r.clk().Sub(start)
	r.Record(st)
	return err
}
