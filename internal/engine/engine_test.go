package engine

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/textproc"
)

// fakeClock returns an injected clock advancing 1ms per reading, so stage
// walls are deterministic and non-zero without touching ambient time.
func fakeClock() func() time.Time {
	base := time.Unix(0, 0)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Millisecond)
	}
}

func testInputs(t *testing.T, cache *Cache) PrepareInputs {
	t.Helper()
	ds := dataset.GenRestaurant(dataset.GenConfig{Seed: 1, Scale: 0.05})
	return PrepareInputs{
		Texts:   ds.Texts(),
		Sources: ds.Sources(),
		Corpus:  textproc.CorpusOptions{Tokenize: textproc.DefaultTokenizeOptions(), MaxDFRatio: 0.12},
		Blocking: blocking.Options{
			CrossSourceOnly: ds.NumSources > 1,
			MinSharedTerms:  2,
			MinJaccard:      0.2,
		},
		Cache: cache,
	}
}

func TestPrepareRecordsStages(t *testing.T) {
	run := NewRun(context.Background(), RunOptions{Clock: fakeClock()})
	in := testInputs(t, nil)
	snap, err := Prepare(run, in)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	tr := run.Trace()
	if len(tr) != 2 || tr[0].Stage != StageTokenize || tr[1].Stage != StageBlock {
		t.Fatalf("trace stages = %+v, want [tokenize block]", tr)
	}
	tok := tr.Find(StageTokenize)
	if tok.In != len(in.Texts) || tok.InUnit != "records" {
		t.Errorf("tokenize in = %d %s, want %d records", tok.In, tok.InUnit, len(in.Texts))
	}
	if tok.Out != snap.NumTerms() || tok.Wall <= 0 {
		t.Errorf("tokenize out=%d wall=%s, want %d terms and positive wall", tok.Out, tok.Wall, snap.NumTerms())
	}
	blk := tr.Find(StageBlock)
	if blk.Out != snap.NumPairs() || blk.Wall <= 0 {
		t.Errorf("block out=%d wall=%s, want %d pairs and positive wall", blk.Out, blk.Wall, snap.NumPairs())
	}
	if snap.Key == "" || snap.Corpus == nil || snap.Graph == nil {
		t.Fatalf("incomplete snapshot: %+v", snap)
	}
	if s := tr.String(); !strings.Contains(s, "tokenize") || !strings.Contains(s, "pairs") {
		t.Errorf("trace rendering missing stages:\n%s", s)
	}
}

func TestPrepareCacheHit(t *testing.T) {
	cache := NewCache(4)
	in := testInputs(t, cache)

	run1 := NewRun(context.Background(), RunOptions{Clock: fakeClock()})
	snap1, err := Prepare(run1, in)
	if err != nil {
		t.Fatalf("first Prepare: %v", err)
	}
	run2 := NewRun(context.Background(), RunOptions{Clock: fakeClock()})
	snap2, err := Prepare(run2, in)
	if err != nil {
		t.Fatalf("second Prepare: %v", err)
	}
	if snap2 != snap1 {
		t.Fatalf("cache miss: second Prepare rebuilt the snapshot")
	}
	for _, st := range run2.Trace() {
		if !st.Cached {
			t.Errorf("stage %s not marked cached on a hit", st.Stage)
		}
	}
	stats := cache.Stats()
	if stats.Hits != 1 || stats.Misses != 1 || stats.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 entry", stats)
	}
}

func TestKeySensitivity(t *testing.T) {
	in := testInputs(t, nil)
	base := Key(in.Texts, in.Sources, in.Corpus, in.Blocking, 0)

	if k := Key(in.Texts, in.Sources, in.Corpus, in.Blocking, 0); k != base {
		t.Errorf("key not stable: %s vs %s", k, base)
	}
	texts := append([]string(nil), in.Texts...)
	texts[0] += "x"
	if k := Key(texts, in.Sources, in.Corpus, in.Blocking, 0); k == base {
		t.Errorf("key ignores text content")
	}
	b2 := in.Blocking
	b2.MinJaccard = 0.3
	if k := Key(in.Texts, in.Sources, in.Corpus, b2, 0); k == base {
		t.Errorf("key ignores blocking options")
	}
	if k := Key(in.Texts, in.Sources, in.Corpus, in.Blocking, 100); k == base {
		t.Errorf("key ignores the pair budget")
	}
	c2 := in.Corpus
	c2.Stopwords = []string{"b", "a"}
	c3 := in.Corpus
	c3.Stopwords = []string{"a", "b"}
	if Key(in.Texts, in.Sources, c2, in.Blocking, 0) != Key(in.Texts, in.Sources, c3, in.Blocking, 0) {
		t.Errorf("key depends on stopword order")
	}
}

func TestFuseMatchesRunFusion(t *testing.T) {
	run := NewRun(context.Background(), RunOptions{Clock: fakeClock()})
	snap, err := Prepare(run, testInputs(t, nil))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	opts := core.DefaultOptions()
	opts.FusionIterations = 3

	res, err := Fuse(run, snap.Graph, snap.Corpus.NumRecords(), opts)
	if err != nil {
		t.Fatalf("Fuse: %v", err)
	}
	want, err := core.RunFusion(snap.Graph, snap.Corpus.NumRecords(), opts)
	if err != nil {
		t.Fatalf("RunFusion: %v", err)
	}
	for k := range want.P {
		if res.P[k] != want.P[k] || res.Matches[k] != want.Matches[k] {
			t.Fatalf("pair %d diverges: engine p=%v matched=%v, core p=%v matched=%v",
				k, res.P[k], res.Matches[k], want.P[k], want.Matches[k])
		}
	}
	for tm := range want.X {
		if res.X[tm] != want.X[tm] {
			t.Fatalf("term %d weight diverges: %v vs %v", tm, res.X[tm], want.X[tm])
		}
	}

	tr := run.Trace()
	iter := tr.Find(StageITER)
	if iter == nil || iter.Rounds != 3 || iter.Iterations <= 0 || iter.Wall <= 0 {
		t.Fatalf("iter stage = %+v, want 3 rounds with iterations and wall", iter)
	}
	rank := tr.Find(StageCliqueRank)
	if rank == nil || rank.Rounds != 3 || rank.In != res.Graph.NumEdges() {
		t.Fatalf("cliquerank stage = %+v, want 3 rounds over %d edges", rank, res.Graph.NumEdges())
	}
	fuse := tr.Find(StageFuse)
	matched := 0
	for _, m := range res.Matches {
		if m {
			matched++
		}
	}
	if fuse == nil || fuse.Out != matched {
		t.Fatalf("fuse stage = %+v, want Out=%d", fuse, matched)
	}
}

func TestFuseCanceledRecordsPartialTrace(t *testing.T) {
	run0 := NewRun(context.Background(), RunOptions{Clock: fakeClock()})
	snap, err := Prepare(run0, testInputs(t, nil))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	run := NewRun(ctx, RunOptions{Clock: fakeClock()})
	if _, err := Fuse(run, snap.Graph, snap.Corpus.NumRecords(), core.DefaultOptions()); err == nil {
		t.Fatalf("Fuse on a canceled context succeeded")
	}
	if run.Stages() == 0 {
		t.Errorf("canceled fuse recorded no stages; want a partial trace")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	cache := NewCache(1)
	a := &Snapshot{Key: "a"}
	b := &Snapshot{Key: "b"}
	cache.Add(a)
	cache.AddTermWeights("a|fuse", []float64{1, 2})
	cache.Add(b)
	if _, ok := cache.Lookup("a"); ok {
		t.Errorf("capacity-1 cache retained the evicted snapshot")
	}
	if _, ok := cache.TermWeights("a|fuse"); ok {
		t.Errorf("eviction left the snapshot's term weights behind")
	}
	if _, ok := cache.Lookup("b"); !ok {
		t.Errorf("most recent snapshot missing")
	}
}

func TestTermWeightsCopied(t *testing.T) {
	cache := NewCache(2)
	src := []float64{1, 2, 3}
	cache.AddTermWeights("k", src)
	src[0] = 99
	w, ok := cache.TermWeights("k")
	if !ok || w[0] != 1 {
		t.Fatalf("cached weights alias the caller's slice: %v", w)
	}
	w[1] = 99
	w2, _ := cache.TermWeights("k")
	if w2[1] != 2 {
		t.Fatalf("returned weights alias the cache's copy: %v", w2)
	}
}

func TestFusionKeyIgnoresInstrumentation(t *testing.T) {
	a := core.DefaultOptions()
	b := a
	b.Workers = 7
	b.Clock = fakeClock()
	if FusionKey("snap", a) != FusionKey("snap", b) {
		t.Errorf("fusion key depends on workers/clock, which cannot change the result")
	}
	c := a
	c.Seed = 42
	if FusionKey("snap", a) == FusionKey("snap", c) {
		t.Errorf("fusion key ignores the seed")
	}
}

func TestPrepareDegradation(t *testing.T) {
	run := NewRun(context.Background(), RunOptions{Clock: fakeClock()})
	in := testInputs(t, nil)
	in.MaxPairs = 1
	snap, err := Prepare(run, in)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if snap.Degradation == nil {
		t.Fatalf("tiny budget triggered no degradation")
	}
	if snap.NumPairs() > in.MaxPairs {
		t.Errorf("budget violated: %d pairs > %d", snap.NumPairs(), in.MaxPairs)
	}
	blk := run.Trace().Find(StageBlock)
	if blk == nil || len(blk.Events) != len(snap.Degradation.Steps) {
		t.Errorf("degradation steps not mirrored into the block stage's events")
	}
}
