package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Interprocedural call-graph summaries. A program is built once per lint
// run from every package in the run; each function body gets a CFG and a
// summary of the facts the flow-aware analyzers propagate:
//
//	blocking   — the function (transitively) performs a blocking
//	             operation: fsync, durability wait, channel op, network
//	             I/O, sleep. Consumed by lockhold.
//	acquires   — the set of lock identities the function (transitively)
//	             acquires. Consumed by lockorder.
//	cancelable — the function (transitively) reaches a cancellation
//	             point: a select, a channel receive, a range over a
//	             channel, or any use of a context.Context. Consumed by
//	             goleak.
//
// Summaries reach a fixed point over the static call graph (module-
// internal calls only; unknown callees contribute nothing, which is the
// conservative direction for each consumer). A //lint:ignore lockhold on
// a blocking primitive excludes that operation from its function's
// summary as well as from direct findings: the suppression blesses the
// operation for every caller, so one reviewed reason never cascades into
// a chain of suppressions up the call stack.

// blockFact records why a function is considered blocking.
type blockFact struct {
	desc    string         // "file fsync", "channel send", ...
	rootPos token.Position // position of the underlying primitive
	via     string         // display name of the callee chain head, "" when direct
}

// funcInfo is one function declaration with its CFG and summary facts.
type funcInfo struct {
	pkg  *Package
	decl *ast.FuncDecl
	obj  types.Object
	c    *cfg

	blocking   *blockFact
	acquires   map[string]token.Position // lock id → first acquisition site
	cancelable bool

	// syncCalls are the statically resolved module-internal callees
	// reached by ordinary (non-go, non-deferred) calls.
	syncCalls []types.Object
}

// program is the whole-run view the module-level analyzers consume.
type program struct {
	pkgs   []*Package
	fileOf map[string]*Package
	funcs  map[types.Object]*funcInfo
	infos  []*funcInfo // deterministic order: package order, then file, then decl
}

// itemOp is one interesting operation found in a CFG item.
type itemOp struct {
	pos       token.Pos
	blockDesc string       // non-empty for a blocking primitive
	callee    types.Object // non-nil for a resolved static call
	calleeStr string       // display form of the callee
}

// newProgram builds CFGs and fixed-point summaries for every function of
// the run.
func newProgram(pkgs []*Package) *program {
	prog := &program{
		pkgs:   pkgs,
		fileOf: make(map[string]*Package),
		funcs:  make(map[types.Object]*funcInfo),
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			prog.fileOf[p.Fset.Position(f.Pos()).Filename] = p
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj := p.Info.Defs[fn.Name]
				fi := &funcInfo{
					pkg:      p,
					decl:     fn,
					obj:      obj,
					c:        buildCFG(fn.Body),
					acquires: make(map[string]token.Position),
				}
				if obj != nil {
					prog.funcs[obj] = fi
				}
				prog.infos = append(prog.infos, fi)
			}
		}
	}
	for _, fi := range prog.infos {
		prog.directFacts(fi)
	}
	prog.fixpoint()
	return prog
}

// directFacts computes the intra-procedural part of a summary.
func (prog *program) directFacts(fi *funcInfo) {
	p := fi.pkg
	for _, b := range fi.c.blocks {
		for _, item := range b.items {
			for _, op := range scanItem(p, fi.c, item) {
				if op.blockDesc != "" {
					// A reasoned //lint:ignore lockhold on the primitive
					// removes it from the summary (see package comment).
					if p.suppressed("lockhold", p.Fset.Position(op.pos)) {
						continue
					}
					if fi.blocking == nil {
						fi.blocking = &blockFact{desc: op.blockDesc, rootPos: p.Fset.Position(op.pos)}
					}
					continue
				}
				if op.callee != nil {
					fi.syncCalls = append(fi.syncCalls, op.callee)
				}
			}
			for _, lop := range itemLockOps(p, fi.c, item) {
				if lop.acquire {
					if _, ok := fi.acquires[lop.id]; !ok {
						fi.acquires[lop.id] = p.Fset.Position(lop.pos)
					}
				}
			}
		}
	}
	fi.cancelable = hasCancellationPoint(p, fi.decl.Body)
}

// fixpoint propagates blocking/acquires/cancelable over sync calls until
// stable.
func (prog *program) fixpoint() {
	for changed := true; changed; {
		changed = false
		for _, fi := range prog.infos {
			for _, callee := range fi.syncCalls {
				g, ok := prog.funcs[callee]
				if !ok || g == fi {
					continue
				}
				if g.blocking != nil && fi.blocking == nil {
					fi.blocking = &blockFact{
						desc:    g.blocking.desc,
						rootPos: g.blocking.rootPos,
						via:     funcDisplayName(callee),
					}
					changed = true
				}
				for id, pos := range g.acquires {
					if _, ok := fi.acquires[id]; !ok {
						fi.acquires[id] = pos
						changed = true
					}
				}
				if g.cancelable && !fi.cancelable {
					fi.cancelable = true
					changed = true
				}
			}
		}
	}
}

// scanItem finds the blocking primitives and static calls of one CFG item
// in source order. Select-clause communications are scanned for calls but
// never count as blocking (a chosen clause is ready by definition);
// go-statement payloads are skipped entirely — what the spawned goroutine
// does is goleak's concern, not the current goroutine's.
func scanItem(p *Package, c *cfg, item ast.Node) []itemOp {
	if c.goStmts[item] {
		return nil
	}
	skipChan := c.selectComms[item]
	var ops []itemOp
	switch x := item.(type) {
	case *ast.SelectStmt:
		if !selectHasDefault(x) {
			ops = append(ops, itemOp{pos: x.Pos(), blockDesc: "select with no default case"})
		}
		return ops // clause bodies are separate items
	case *ast.RangeStmt:
		if t := typeOf(p, x.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				ops = append(ops, itemOp{pos: x.Pos(), blockDesc: "range over a channel"})
			}
		}
		return ops // the body lives in its own blocks
	}
	ast.Inspect(item, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			return false // decomposed into separate items
		case *ast.SendStmt:
			if !skipChan {
				ops = append(ops, itemOp{pos: x.Arrow, blockDesc: "channel send"})
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !skipChan {
				ops = append(ops, itemOp{pos: x.OpPos, blockDesc: "channel receive"})
			}
		case *ast.CallExpr:
			if _, isLock := lockCall(p, x); isLock {
				return true // lock ops are the lattice's concern
			}
			if desc := blockingCallDesc(p, x); desc != "" {
				ops = append(ops, itemOp{pos: x.Pos(), blockDesc: desc})
				return true
			}
			if obj := calleeObject(p, x); obj != nil {
				ops = append(ops, itemOp{pos: x.Pos(), callee: obj, calleeStr: funcDisplayName(obj)})
			}
		}
		return true
	})
	return ops
}

// blockingCallDesc classifies a call as a blocking primitive, or returns
// "". The set is deliberately the durability/concurrency surface of this
// codebase: fsync barriers (Sync/SyncDir), durability waits, WaitGroup
// and Cond waits, sleeps, and network I/O. Buffered disk writes (Write,
// Create, …) are excluded on purpose — the WAL protocol stages page-cache
// writes under the store lock by design; the fsync is the operation that
// parks a goroutine on the disk.
func blockingCallDesc(p *Package, call *ast.CallExpr) string {
	if pkgPath, fn, ok := importedCallee(p, call); ok {
		switch {
		case pkgPath == "time" && fn == "Sleep":
			return "time.Sleep"
		case pkgPath == "net" || strings.HasPrefix(pkgPath, "net/"):
			return "network I/O (" + fn + ")"
		}
		return ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	switch sel.Sel.Name {
	case "Sync":
		if len(call.Args) == 0 {
			return "file fsync"
		}
	case "SyncDir":
		return "directory fsync"
	case "WaitDurable":
		return "durability wait (WaitDurable)"
	case "AppendDurable":
		return "durability wait (AppendDurable)"
	case "Wait":
		if recv := methodReceiverType(p, call); recv == "sync.WaitGroup" || recv == "sync.Cond" {
			return recv + ".Wait"
		}
	case "Accept", "AcceptTCP":
		return "network accept"
	}
	return ""
}

// hasCancellationPoint reports whether body contains a direct
// cancellation marker: a select, a channel receive, a range over a
// channel, or any use of a context.Context value. Go-statement payloads
// are skipped — a goroutine that spawns another cancelable goroutine is
// not itself cancelable.
func hasCancellationPoint(p *Package, body ast.Node) bool {
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := typeOf(p, x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case ast.Expr:
			if isContextType(typeOf(p, x)) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// funcDisplayName renders a function object for findings:
// "(*Log).Append" or "pkg.Open".
func funcDisplayName(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok {
		return obj.Name()
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		star := ""
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
			star = "*"
		}
		if named, isNamed := t.(*types.Named); isNamed {
			return "(" + star + named.Obj().Name() + ")." + fn.Name()
		}
	}
	return fn.Name()
}
