package lint

import (
	"go/ast"
	"go/types"
)

// hotAllocPackages is the scope of the hot-path allocation analyzer: the
// kernel packages whose inner loops dominate the fusion benchmarks.
var hotAllocPackages = map[string]bool{
	"repro/internal/core":     true,
	"repro/internal/matrix":   true,
	"repro/internal/parallel": true,
	// The index's batch shards and delta paths sit on the blocking
	// benchmark's critical path; annotated hot functions there follow the
	// same arena discipline.
	"repro/internal/index": true,
}

// HotAlloc enforces the arena discipline on functions annotated
// //lint:hotpath: no allocation inside a loop. Composite literals, make,
// new, append (which may grow its backing array), map writes, and
// function literals are all flagged at loop depth ≥ 1. The AllocsPerRun
// regression tests catch the steady-state total; this analyzer points at
// the exact expression when one slips in, before the benchmark moves.
func HotAlloc() *Analyzer {
	return &Analyzer{
		Name:    "hotalloc",
		Doc:     "//lint:hotpath functions must not allocate in loops (composite literal, make, new, append, map write, closure)",
		Scope:   "internal/{core,matrix,parallel,index}",
		Applies: func(pkgPath string) bool { return hotAllocPackages[pkgPath] },
		Run:     hotAllocRun,
	}
}

func hotAllocRun(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if p.hotpathFor(fn) == nil {
				continue
			}
			w := &hotWalker{p: p}
			w.walk(fn.Body, 0)
			out = append(out, w.out...)
		}
	}
	return out
}

type hotWalker struct {
	p   *Package
	out []Finding
}

func (w *hotWalker) flag(n ast.Node, msg string) {
	w.out = append(w.out, Finding{Analyzer: "hotalloc", Pos: w.p.Fset.Position(n.Pos()),
		Message: msg + " in a loop on a //lint:hotpath function; hoist or presize outside the loop"})
}

// walk scans n tracking loop depth. A loop's condition, post statement
// and body run once per iteration (depth+1); its init runs once. A
// function literal resets depth for its own body — the closure's code is
// still hot (kernels hand literals to synchronous drivers), but its
// loops start a fresh count — while the literal itself is an allocation
// where it appears.
func (w *hotWalker) walk(root ast.Node, depth int) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil || n == root {
			return true
		}
		switch x := n.(type) {
		case *ast.ForStmt:
			if x.Init != nil {
				w.walk(x.Init, depth)
			}
			if x.Cond != nil {
				w.walk(x.Cond, depth+1)
			}
			if x.Post != nil {
				w.walk(x.Post, depth+1)
			}
			w.walk(x.Body, depth+1)
			return false
		case *ast.RangeStmt:
			w.walk(x.X, depth)
			w.walk(x.Body, depth+1)
			return false
		case *ast.FuncLit:
			if depth > 0 {
				w.flag(x, "function literal (closure allocation)")
			}
			w.walk(x.Body, 0)
			return false
		case *ast.CompositeLit:
			if depth > 0 {
				w.flag(x, "composite literal (heap allocation)")
				return false // one finding per outermost literal
			}
		case *ast.CallExpr:
			if depth > 0 {
				if id, ok := x.Fun.(*ast.Ident); ok {
					if _, isBuiltin := w.p.Info.Uses[id].(*types.Builtin); isBuiltin {
						switch id.Name {
						case "make":
							w.flag(x, "make")
						case "new":
							w.flag(x, "new")
						case "append":
							w.flag(x, "append (may grow the backing array)")
						}
					}
				}
			}
		case *ast.AssignStmt:
			if depth > 0 {
				for _, l := range x.Lhs {
					ix, ok := l.(*ast.IndexExpr)
					if !ok {
						continue
					}
					if t := typeOf(w.p, ix.X); t != nil {
						if _, isMap := t.Underlying().(*types.Map); isMap {
							w.flag(ix, "map write (may allocate a bucket)")
						}
					}
				}
			}
		}
		return true
	})
}
