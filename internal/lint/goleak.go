package lint

import (
	"go/ast"
)

// GoLeak requires every go statement to spawn a goroutine with a
// cancellation path: a select, a channel receive, a range over a
// channel, or a context.Context flowing in — directly in the payload or
// transitively through the module functions it calls. A goroutine with
// none of those can only exit by finishing on its own; if it serves a
// loop, it leaks when its owner shuts down. Intentionally unbounded
// goroutines carry a reasoned //lint:ignore goleak.
func GoLeak() *Analyzer {
	return &Analyzer{
		Name:      "goleak",
		Doc:       "every go statement needs a cancellation path (select, channel receive, range-over-channel, or context) or a reasoned //lint:ignore",
		Scope:     "module-wide",
		Applies:   func(string) bool { return true },
		RunModule: goLeakModule,
	}
}

func goLeakModule(prog *program) []Finding {
	var out []Finding
	for _, fi := range prog.infos {
		p := fi.pkg
		for _, blk := range fi.c.blocks {
			for _, item := range blk.items {
				g, ok := item.(*ast.GoStmt)
				if !ok {
					continue
				}
				if goStmtCancelable(prog, p, g.Call) {
					continue
				}
				out = append(out, Finding{Analyzer: "goleak", Pos: p.Fset.Position(g.Pos()),
					Message: "goroutine has no cancellation path (no select, channel receive, range over a channel, or context use, directly or via called functions); give it a stop signal"})
			}
		}
	}
	return out
}

// goStmtCancelable reports whether the spawned call has a cancellation
// path. The call expression covers both shapes: a function literal
// payload (its body is scanned directly) and a named call (its arguments
// are scanned — a context.Context argument counts — and the callee's
// summary supplies the transitive answer).
func goStmtCancelable(prog *program, p *Package, call *ast.CallExpr) bool {
	if hasCancellationPoint(p, call) {
		return true
	}
	cancel := false
	ast.Inspect(call, func(n ast.Node) bool {
		if cancel {
			return false
		}
		if inner, ok := n.(*ast.CallExpr); ok {
			if obj := calleeObject(p, inner); obj != nil {
				if g, ok := prog.funcs[obj]; ok && g.cancelable {
					cancel = true
				}
			}
		}
		return !cancel
	})
	return cancel
}
