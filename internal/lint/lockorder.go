package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// LockOrder builds the cross-package lock acquisition graph — an edge
// A → B whenever lock B is acquired (directly or through a module call)
// while A is held — and reports every cycle as deadlock risk. The
// interesting graph spans internal/serve, internal/wal and
// internal/engine: the store lock wrapping a journal append, the job
// store wrapping per-job state. One consistent acquisition order is the
// invariant; a cycle means two goroutines can each hold the lock the
// other needs.
func LockOrder() *Analyzer {
	return &Analyzer{
		Name:      "lockorder",
		Doc:       "cross-package lock acquisition graph must be acyclic (consistent lock ordering, no deadlock risk)",
		Scope:     "internal/{serve,wal,engine,client}",
		Applies:   func(pkgPath string) bool { return lockHoldPackages[pkgPath] },
		RunModule: lockOrderModule,
	}
}

// lockEdge is one observed acquisition ordering: to was acquired at pos
// while from was held.
type lockEdge struct {
	from, to string
	pkg      *Package
	pos      token.Pos
}

// lockEdgeKey identifies an ordering pair for dedup.
type lockEdgeKey struct{ from, to string }

func lockOrderModule(prog *program) []Finding {
	// Collect edges, deduping (from,to) pairs and keeping the first
	// (deterministic: program-order) witness.
	edges := make(map[lockEdgeKey]lockEdge)
	addEdge := func(p *Package, held heldSet, to string, pos token.Pos) {
		for from := range held {
			if from == to {
				continue
			}
			k := lockEdgeKey{from, to}
			if _, ok := edges[k]; !ok {
				edges[k] = lockEdge{from: from, to: to, pkg: p, pos: pos}
			}
		}
	}
	for _, fi := range prog.infos {
		p := fi.pkg
		walkHeld(p, fi.c, func(item ast.Node, held heldSet) {
			if len(held) == 0 {
				return
			}
			for _, lop := range itemLockOps(p, fi.c, item) {
				if lop.acquire {
					addEdge(p, held, lop.id, lop.pos)
				}
			}
			for _, op := range scanItem(p, fi.c, item) {
				if op.callee == nil {
					continue
				}
				g, ok := prog.funcs[op.callee]
				if !ok {
					continue
				}
				for id := range g.acquires {
					if _, already := held[id]; !already {
						addEdge(p, held, id, op.pos)
					}
				}
			}
		})
	}
	// Adjacency + reachability over the (small) lock graph.
	adj := make(map[string][]string)
	for k := range edges {
		adj[k.from] = append(adj[k.from], k.to)
	}
	for _, tos := range adj {
		sort.Strings(tos)
	}
	reaches := func(from, to string) bool {
		seen := map[string]bool{}
		stack := []string{from}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == to {
				return true
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			stack = append(stack, adj[n]...)
		}
		return false
	}
	// Every strongly connected set is a deadlock-risk cycle; report once
	// per component, anchored at the lexicographically smallest edge so
	// the finding position is stable across runs.
	var keys []lockEdgeKey
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})
	reported := make(map[string]bool) // canonical component key
	var out []Finding
	for _, k := range keys {
		if !reaches(k.to, k.from) {
			continue // edge not on a cycle
		}
		// Component = every lock mutually reachable with k.from.
		var comp []string
		for n := range adj {
			if n == k.from || (reaches(k.from, n) && reaches(n, k.from)) {
				comp = append(comp, n)
			}
		}
		sort.Strings(comp)
		ck := strings.Join(comp, "|")
		if reported[ck] {
			continue
		}
		reported[ck] = true
		var detail []string
		for _, e := range cycleEdges(comp, edges) {
			p := e.pkg.Fset.Position(e.pos)
			detail = append(detail, fmt.Sprintf("%s -> %s at %s:%d", e.from, e.to, shortFile(p.Filename), p.Line))
		}
		e := edges[k]
		out = append(out, Finding{Analyzer: "lockorder", Pos: e.pkg.Fset.Position(e.pos),
			Message: fmt.Sprintf("lock acquisition order cycle between {%s}: %s; pick one acquisition order",
				strings.Join(comp, ", "), strings.Join(detail, "; "))})
	}
	return out
}

// cycleEdges lists the edges internal to one component in stable order.
func cycleEdges(comp []string, edges map[lockEdgeKey]lockEdge) []lockEdge {
	var out []lockEdge
	for _, from := range comp {
		for _, to := range comp {
			if e, ok := edges[lockEdgeKey{from, to}]; ok {
				out = append(out, e)
			}
		}
	}
	return out
}
