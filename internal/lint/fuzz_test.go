package lint

import (
	"strings"
	"testing"
)

// FuzzDirective drives the //lint: directive parser with arbitrary comment
// text. The parser must never panic, and every accepted directive must obey
// the shape the suppression machinery relies on: a known kind, analyzer
// lists only on ignore directives, and a whitespace-normalized reason.
func FuzzDirective(f *testing.F) {
	f.Add("ignore lockhold the group-commit barrier")
	f.Add("ignore nopanic,goleak one reason covering two analyzers")
	f.Add("invariant negative n is a programmer error")
	f.Add("hotpath the fusion kernel")
	f.Add("ignore")
	f.Add("ignore lockhold")
	f.Add("invariant")
	f.Add("hotpath")
	f.Add("unknown directive text")
	f.Add("")
	f.Add("   ")
	f.Add("ignore  lockhold,   spaced reason")
	f.Add("ignore lockhold,")
	f.Add("ignore ,lockhold reason")
	f.Add("ignore\tlockhold\ttabs")
	f.Fuzz(func(t *testing.T, text string) {
		d, ok := parseDirective(text)
		if !ok {
			if d != nil {
				t.Fatalf("parseDirective(%q): not-ok but non-nil directive", text)
			}
			return
		}
		switch d.kind {
		case "ignore", "invariant", "hotpath":
		default:
			t.Fatalf("parseDirective(%q): accepted unknown kind %q", text, d.kind)
		}
		if d.kind != "ignore" && d.analyzers != nil {
			t.Fatalf("parseDirective(%q): %s directive carries an analyzer list", text, d.kind)
		}
		if d.kind == "ignore" && d.reason != "" && len(d.analyzers) == 0 {
			t.Fatalf("parseDirective(%q): ignore with a reason but no analyzers", text)
		}
		if d.reason != strings.TrimSpace(d.reason) {
			t.Fatalf("parseDirective(%q): reason %q not whitespace-normalized", text, d.reason)
		}
		if strings.ContainsAny(d.reason, "\n\r") {
			t.Fatalf("parseDirective(%q): reason %q spans lines", text, d.reason)
		}
		if d.used {
			t.Fatalf("parseDirective(%q): directive born used", text)
		}
	})
}
