package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Abstract lock-state interpretation over the CFG. The lattice element is
// the *may-hold* set: the locks that might be held at a program point, as
// a map from lock identity to the position of the acquisition that put it
// there. Merges union (may-analysis), so a lock released on only one
// branch is still reported held after the join — the sound direction for
// lockhold and lockorder, whose findings must not miss the path that
// keeps the lock.

// lockOp is one classified sync.Mutex/RWMutex call.
type lockOp struct {
	id      string // stable lock identity, e.g. "repro/internal/wal.Log.mu"
	acquire bool   // Lock/RLock/TryLock vs Unlock/RUnlock
	pos     token.Pos
}

// lockMethods classifies the method names of sync.Mutex and sync.RWMutex.
var lockMethods = map[string]bool{
	"Lock": true, "TryLock": true, "RLock": true, "TryRLock": true,
	"Unlock": false, "RUnlock": false,
}

// lockCall classifies call as a mutex operation and derives the lock's
// identity, or reports ok=false.
func lockCall(p *Package, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	acquire, known := lockMethods[sel.Sel.Name]
	if !known {
		return lockOp{}, false
	}
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return lockOp{}, false
	}
	recv := s.Obj().(*types.Func).Type().(*types.Signature).Recv()
	if recv == nil || !isSyncMutexType(recv.Type()) {
		return lockOp{}, false
	}
	var id string
	if isSyncMutexType(typeOf(p, sel.X)) {
		id = lockIDOf(p, sel.X)
	} else if owner := namedTypeName(typeOf(p, sel.X)); owner != "" {
		// Lock method promoted through an embedded mutex: identify the
		// lock by the embedding type.
		id = owner + ".<embedded>"
	}
	if id == "" {
		return lockOp{}, false
	}
	return lockOp{id: id, acquire: acquire, pos: call.Pos()}, true
}

// isSyncMutexType reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex.
func isSyncMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" &&
		(named.Obj().Name() == "Mutex" || named.Obj().Name() == "RWMutex")
}

// lockIDOf derives a stable identity for the mutex expression e:
//
//	field of a named struct  →  "pkgpath.Type.field"  (s.cols.mu, l.mu)
//	package-level variable   →  "pkgpath.name"
//	local variable           →  "pkgpath.name@file:line"
//	embedded mutex           →  "pkgpath.Type.<embedded>"
//
// Identity is per declaration site, not per instance: two *Log values
// share "wal.Log.mu". That is the right granularity for ordering rules
// (the protocol is about lock *classes*) and is conservative for
// lockhold.
func lockIDOf(p *Package, e ast.Expr) string {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		if s, ok := p.Info.Selections[x]; ok && s.Kind() == types.FieldVal {
			if owner := namedTypeName(s.Recv()); owner != "" {
				return owner + "." + x.Sel.Name
			}
		}
		if id, ok := x.X.(*ast.Ident); ok {
			if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
				return pn.Imported().Path() + "." + x.Sel.Name
			}
		}
		return ""
	case *ast.Ident:
		obj := p.Info.Uses[x]
		if obj == nil {
			obj = p.Info.Defs[x]
		}
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		pos := p.Fset.Position(obj.Pos())
		return fmt.Sprintf("%s.%s@%s:%d", obj.Pkg().Path(), obj.Name(), shortFile(pos.Filename), pos.Line)
	case *ast.ParenExpr:
		return lockIDOf(p, x.X)
	case *ast.UnaryExpr:
		return lockIDOf(p, x.X)
	}
	return ""
}

func typeOf(p *Package, e ast.Expr) types.Type {
	if tv, ok := p.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// namedTypeName renders a (possibly pointer-wrapped) named type as
// "pkgpath.Name", or "".
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// heldSet maps a held lock's identity to the acquisition that introduced
// it.
type heldSet map[string]token.Pos

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

func (h heldSet) equal(o heldSet) bool {
	if len(h) != len(o) {
		return false
	}
	for k := range h {
		if _, ok := o[k]; !ok {
			return false
		}
	}
	return true
}

// sortedIDs returns the held lock identities in stable order.
func (h heldSet) sortedIDs() []string {
	ids := make([]string, 0, len(h))
	for id := range h {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// itemLockOps extracts the mutex operations of one CFG item in source
// order. Function literals are descended into (kernels pass them to
// synchronous drivers like parallel.For); go-statement payloads are not —
// the spawned goroutine's locks are its own.
func itemLockOps(p *Package, c *cfg, item ast.Node) []lockOp {
	var ops []lockOp
	if c.goStmts[item] {
		return nil
	}
	ast.Inspect(item, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			// Clause bodies are separate items; do not double-count.
			return false
		case *ast.CallExpr:
			if op, ok := lockCall(p, x); ok {
				ops = append(ops, op)
			}
		}
		return true
	})
	return ops
}

// walkHeld runs the may-hold fixed point over fn's CFG and then replays
// it, invoking visit for every item with the set of locks held *before*
// the item executes. It returns the state at the synthetic exit after the
// deferred calls ran — the defer-unlock idiom therefore reports a clean
// exit, while a path that leaks a lock reports it held.
func walkHeld(p *Package, c *cfg, visit func(item ast.Node, held heldSet)) heldSet {
	in := make([]heldSet, len(c.blocks))
	for i := range in {
		in[i] = heldSet{}
	}
	transfer := func(b *block, state heldSet) heldSet {
		out := state.clone()
		for _, item := range b.items {
			for _, op := range itemLockOps(p, c, item) {
				if op.acquire {
					if _, ok := out[op.id]; !ok {
						out[op.id] = op.pos
					}
				} else {
					delete(out, op.id)
				}
			}
		}
		return out
	}
	// Fixed point: iterate until no block's in-state grows. Block count is
	// small (one function), so a simple round-robin sweep suffices.
	for changed := true; changed; {
		changed = false
		for _, b := range c.blocks {
			out := transfer(b, in[b.id])
			for _, s := range b.succs {
				merged := in[s.id].clone()
				for id, pos := range out {
					if _, ok := merged[id]; !ok {
						merged[id] = pos
					}
				}
				if !merged.equal(in[s.id]) {
					in[s.id] = merged
					changed = true
				}
			}
		}
	}
	if visit != nil {
		for _, b := range c.blocks {
			state := in[b.id].clone()
			for _, item := range b.items {
				visit(item, state)
				for _, op := range itemLockOps(p, c, item) {
					if op.acquire {
						if _, ok := state[op.id]; !ok {
							state[op.id] = op.pos
						}
					} else {
						delete(state, op.id)
					}
				}
			}
		}
	}
	exit := in[c.exit.id].clone()
	for _, call := range c.defers {
		ast.Inspect(call, func(n ast.Node) bool {
			if x, ok := n.(*ast.CallExpr); ok {
				if op, ok := lockCall(p, x); ok {
					if op.acquire {
						if _, ok := exit[op.id]; !ok {
							exit[op.id] = op.pos
						}
					} else {
						delete(exit, op.id)
					}
				}
			}
			return true
		})
		// The deferred call expression itself (defer mu.Unlock()) is the
		// common case and is handled by the Inspect above.
	}
	return exit
}

// shortFile trims a filename to its base for compact lock identities.
func shortFile(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		if name[i] == '/' {
			return name[i+1:]
		}
	}
	return name
}
