package lint

import (
	"go/ast"
	"go/token"
)

// This file builds per-function control-flow graphs from go/ast, the
// substrate of the flow-aware analyzers (lockhold, lockorder, fsyncorder).
// The x/tools CFG package is unavailable by design (the lint suite runs
// anywhere the repository compiles), so the builder lives here.
//
// Shape: every block holds a sequence of "items" — simple statements and
// the condition/tag expressions of decomposed control statements — that
// execute in order, plus successor edges. Structured statements are
// decomposed (if/for/range/switch/type-switch/select, labeled break and
// continue); returns route to a single synthetic exit block; deferred
// calls are collected separately and interpreted at exit, which is what
// makes the defer-unlock idiom come out right in the lock lattice.

// block is one basic block of a cfg.
type block struct {
	id    int
	kind  string // human label for tests and debug output
	items []ast.Node
	succs []*block
}

// cfg is the control-flow graph of one function body.
type cfg struct {
	blocks []*block
	entry  *block
	exit   *block
	// defers holds every deferred call in source order. They are not items:
	// their effects (the canonical one being mu.Unlock) apply at exit.
	defers []*ast.CallExpr
	// selectComms marks the communication statements of select clauses.
	// They appear as items in their clause blocks so their sub-expressions
	// are scanned, but a chosen clause's send/receive is ready by
	// definition and must not count as a blocking channel operation.
	selectComms map[ast.Node]bool
	// goStmts marks go-statement items; analyzers skip their payload when
	// reasoning about what the *current* goroutine does.
	goStmts map[ast.Node]bool
}

// cfgScope is one break/continue target frame.
type cfgScope struct {
	label string
	brk   *block
	cont  *block // nil for switch/select frames
}

type cfgBuilder struct {
	c      *cfg
	cur    *block // nil after a terminator (return/break/continue)
	scopes []cfgScope
}

// buildCFG constructs the graph for one function body.
func buildCFG(body *ast.BlockStmt) *cfg {
	c := &cfg{selectComms: make(map[ast.Node]bool), goStmts: make(map[ast.Node]bool)}
	b := &cfgBuilder{c: c}
	c.entry = b.newBlock("entry")
	c.exit = b.newBlock("exit")
	b.cur = c.entry
	b.stmts(body.List, "")
	if b.cur != nil {
		b.edge(b.cur, c.exit)
	}
	return c
}

func (b *cfgBuilder) newBlock(kind string) *block {
	blk := &block{id: len(b.c.blocks), kind: kind}
	b.c.blocks = append(b.c.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *block) {
	for _, s := range from.succs {
		if s == to {
			return
		}
	}
	from.succs = append(from.succs, to)
}

// here returns the current block, reviving a dead position (after a
// terminator) as an unreachable block so later items still have a home.
func (b *cfgBuilder) here() *block {
	if b.cur == nil {
		b.cur = b.newBlock("unreachable")
	}
	return b.cur
}

func (b *cfgBuilder) item(n ast.Node) {
	if n == nil {
		return
	}
	blk := b.here()
	blk.items = append(blk.items, n)
}

func (b *cfgBuilder) stmts(list []ast.Stmt, label string) {
	for _, s := range list {
		b.stmt(s, label)
		label = ""
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt, label string) {
	switch x := s.(type) {
	case *ast.BlockStmt:
		b.stmts(x.List, "")
	case *ast.LabeledStmt:
		b.stmt(x.Stmt, x.Label.Name)
	case *ast.ExprStmt:
		b.item(x.X)
	case *ast.AssignStmt, *ast.IncDecStmt, *ast.DeclStmt, *ast.SendStmt:
		b.item(s)
	case *ast.GoStmt:
		b.item(s)
		b.c.goStmts[s] = true
	case *ast.DeferStmt:
		b.c.defers = append(b.c.defers, x.Call)
	case *ast.ReturnStmt:
		b.item(s)
		b.edge(b.here(), b.c.exit)
		b.cur = nil
	case *ast.BranchStmt:
		b.branch(x)
	case *ast.IfStmt:
		b.ifStmt(x)
	case *ast.ForStmt:
		b.forStmt(x, label)
	case *ast.RangeStmt:
		b.rangeStmt(x, label)
	case *ast.SwitchStmt:
		b.switchStmt(x.Init, x.Tag, nil, x.Body, label, "switch")
	case *ast.TypeSwitchStmt:
		b.switchStmt(x.Init, nil, x.Assign, x.Body, label, "typeswitch")
	case *ast.SelectStmt:
		b.selectStmt(x, label)
	case *ast.EmptyStmt:
	default:
		// Anything unmodeled (e.g. a bare goto target) is recorded as an
		// opaque item so its sub-expressions are still scanned.
		b.item(s)
	}
}

func (b *cfgBuilder) branch(x *ast.BranchStmt) {
	label := ""
	if x.Label != nil {
		label = x.Label.Name
	}
	switch x.Tok {
	case token.BREAK:
		for i := len(b.scopes) - 1; i >= 0; i-- {
			sc := b.scopes[i]
			if label == "" || sc.label == label {
				b.edge(b.here(), sc.brk)
				b.cur = nil
				return
			}
		}
		b.cur = nil
	case token.CONTINUE:
		for i := len(b.scopes) - 1; i >= 0; i-- {
			sc := b.scopes[i]
			if sc.cont != nil && (label == "" || sc.label == label) {
				b.edge(b.here(), sc.cont)
				b.cur = nil
				return
			}
		}
		b.cur = nil
	case token.GOTO:
		// Rare in this codebase; model conservatively as an exit edge so
		// the may-analyses stay sound for everything before the jump.
		b.edge(b.here(), b.c.exit)
		b.cur = nil
	case token.FALLTHROUGH:
		// Handled structurally by switchStmt.
	}
}

func (b *cfgBuilder) ifStmt(x *ast.IfStmt) {
	b.item(x.Init)
	b.item(x.Cond)
	cond := b.here()
	join := b.newBlock("if.join")
	then := b.newBlock("if.then")
	b.edge(cond, then)
	b.cur = then
	b.stmts(x.Body.List, "")
	if b.cur != nil {
		b.edge(b.cur, join)
	}
	if x.Else != nil {
		els := b.newBlock("if.else")
		b.edge(cond, els)
		b.cur = els
		b.stmt(x.Else, "")
		if b.cur != nil {
			b.edge(b.cur, join)
		}
	} else {
		b.edge(cond, join)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(x *ast.ForStmt, label string) {
	b.item(x.Init)
	head := b.newBlock("for.head")
	b.edge(b.here(), head)
	b.cur = head
	b.item(x.Cond)
	body := b.newBlock("for.body")
	after := b.newBlock("for.after")
	b.edge(head, body)
	if x.Cond != nil {
		b.edge(head, after)
	}
	cont := head
	var post *block
	if x.Post != nil {
		post = b.newBlock("for.post")
		cont = post
	}
	b.scopes = append(b.scopes, cfgScope{label: label, brk: after, cont: cont})
	b.cur = body
	b.stmts(x.Body.List, "")
	if b.cur != nil {
		b.edge(b.cur, cont)
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	if post != nil {
		b.cur = post
		b.item(x.Post)
		b.edge(post, head)
	}
	b.cur = after
}

func (b *cfgBuilder) rangeStmt(x *ast.RangeStmt, label string) {
	b.item(x.X) // the ranged expression is evaluated once, before the loop
	head := b.newBlock("range.head")
	b.edge(b.here(), head)
	// The RangeStmt node itself is the head item: analyzers use it to spot
	// range-over-channel (a blocking receive per iteration) without
	// re-walking the body, which lives in its own blocks.
	head.items = append(head.items, x)
	body := b.newBlock("range.body")
	after := b.newBlock("range.after")
	b.edge(head, body)
	b.edge(head, after)
	b.scopes = append(b.scopes, cfgScope{label: label, brk: after, cont: head})
	b.cur = body
	b.stmts(x.Body.List, "")
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = after
}

// switchStmt decomposes expression and type switches: one block per case
// clause, all fed from the head; fallthrough chains clause bodies.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, label, kind string) {
	b.item(init)
	b.item(tag)
	b.item(assign)
	head := b.here()
	after := b.newBlock(kind + ".after")
	b.scopes = append(b.scopes, cfgScope{label: label, brk: after})
	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.newBlock(kind + ".case")
		b.edge(head, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, after)
	}
	for i, cc := range clauses {
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.item(e)
		}
		list := cc.Body
		fallsThrough := false
		if n := len(list); n > 0 {
			if br, ok := list[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				list = list[:n-1]
			}
		}
		b.stmts(list, "")
		if b.cur != nil {
			if fallsThrough && i+1 < len(blocks) {
				b.edge(b.cur, blocks[i+1])
			} else {
				b.edge(b.cur, after)
			}
		}
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = after
}

func (b *cfgBuilder) selectStmt(x *ast.SelectStmt, label string) {
	// The SelectStmt node itself is an item in the head block: that is
	// where "does this select block?" is judged (no default ⇒ it can park
	// the goroutine). Clause bodies are decomposed normally.
	b.item(x)
	head := b.here()
	after := b.newBlock("select.after")
	b.scopes = append(b.scopes, cfgScope{label: label, brk: after})
	for _, cs := range x.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		cb := b.newBlock("select.case")
		b.edge(head, cb)
		b.cur = cb
		if cc.Comm != nil {
			b.item(cc.Comm)
			b.c.selectComms[cc.Comm] = true
		}
		b.stmts(cc.Body, "")
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	// A clause-free select{} parks forever: after keeps no predecessors and
	// whatever follows is analyzed as unreachable.
	b.cur = after
}

// selectHasDefault reports whether a select statement has a default clause
// (which makes the select itself non-blocking).
func selectHasDefault(x *ast.SelectStmt) bool {
	for _, cs := range x.Body.List {
		if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
