package lint

import (
	"go/ast"
	"strings"
)

// ErrWrap returns the analyzer enforcing the error taxonomy at the public
// API boundary (the root er package): callers are promised they can branch
// with errors.Is against the Err* sentinels, so every constructed error
// must either wrap (%w) or be one of them. Concretely:
//
//   - fmt.Errorf without a %w verb creates a leaf error no errors.Is can
//     classify — wrap a sentinel or the underlying cause;
//   - errors.New inside a function body creates a stringly-typed sentinel
//     invisible to the taxonomy — the package-level sentinels in errors.go
//     are the only legal errors.New sites.
//
// The WAL takes the same discipline: crash recovery branches on the
// wal.Err* sentinels (a typed ErrCorrupt is the contract that keeps a
// damaged journal from being mistaken for a torn tail), so every error it
// constructs must stay classifiable.
func ErrWrap() *Analyzer {
	return &Analyzer{
		Name:    "errwrap",
		Scope:   "repro, internal/{wal,client}",
		Doc:     "public-API errors must wrap the errors.go taxonomy (%w); no ad-hoc sentinels",
		Applies: func(pkgPath string) bool { return errWrapPackages[pkgPath] },
		Run:     runErrWrap,
	}
}

// errWrapPackages are the packages whose error values are contract: the
// public er API and the journal whose sentinels gate recovery decisions.
var errWrapPackages = map[string]bool{
	"repro":              true,
	"repro/internal/wal": true,
	// The client's sentinels are the er taxonomy's HTTP-side mirror;
	// callers branch on them with errors.Is, so they are contract too.
	"repro/internal/client": true,
}

func runErrWrap(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		fileName := p.Fset.Position(f.Pos()).Filename
		inErrorsGo := strings.HasSuffix(fileName, "errors.go")
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, fn, ok := importedCallee(p, call)
			if !ok {
				return true
			}
			switch {
			case pkgPath == "fmt" && fn == "Errorf":
				if format, ok := stringLit(call.Args[0]); ok && !strings.Contains(format, "%w") {
					out = append(out, Finding{
						Analyzer: "errwrap",
						Pos:      p.Fset.Position(call.Pos()),
						Message:  "fmt.Errorf without %w crosses the public API unclassifiable by errors.Is; wrap a taxonomy sentinel or the underlying error",
					})
				}
			case pkgPath == "errors" && fn == "New":
				if fd := enclosingFunc(f, call.Pos()); fd != nil {
					out = append(out, Finding{
						Analyzer: "errwrap",
						Pos:      p.Fset.Position(call.Pos()),
						Message:  "errors.New inside a function creates a stringly-typed sentinel; add it to the taxonomy in errors.go or wrap an existing sentinel",
					})
				} else if !inErrorsGo {
					out = append(out, Finding{
						Analyzer: "errwrap",
						Pos:      p.Fset.Position(call.Pos()),
						Message:  "taxonomy sentinels live in errors.go so the API contract stays reviewable in one place",
					})
				}
			}
			return true
		})
	}
	return out
}

// stringLit unquotes a string literal expression.
func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok {
		return "", false
	}
	s := lit.Value
	if len(s) >= 2 && (s[0] == '"' || s[0] == '`') {
		return s[1 : len(s)-1], true
	}
	return "", false
}
