package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// FloatGuard returns the analyzer protecting the fusion loop's numerics.
// The ITER/CliqueRank fixed points converge to *something* on almost any
// input — a NaN or ±Inf introduced by an unguarded division does not crash,
// it silently corrupts the result, which is why PR 1 added the sanitization
// pass (core.sanitizeNonNegative / sanitizeProbabilities). This analyzer
// keeps new arithmetic inside that envelope in internal/core:
//
//   - float division requires a visible pole guard: the denominator must be
//     a constant, contain a non-zero literal term, or have one of its
//     operands compared (==, !=, <, >, <=, >=) somewhere in the enclosing
//     function;
//   - float equality between two non-constant operands is flagged (NaN
//     never compares equal and rounding makes == meaningless); comparisons
//     against constants stay legal because `x == 0` zero-guards are the
//     sanctioned idiom.
//
// Divisions whose safety is structural rather than visible carry a
// //lint:ignore floatguard <reason>.
func FloatGuard() *Analyzer {
	return &Analyzer{
		Name:    "floatguard",
		Scope:   "internal/core",
		Doc:     "fusion-loop float divisions need a visible zero-guard; no float equality",
		Applies: func(pkgPath string) bool { return pkgPath == "repro/internal/core" },
		Run:     runFloatGuard,
	}
}

func runFloatGuard(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				switch n.Op {
				case token.EQL, token.NEQ:
					if isFloat(p, n.X) && isFloat(p, n.Y) && !isConstant(p, n.X) && !isConstant(p, n.Y) {
						out = append(out, Finding{
							Analyzer: "floatguard",
							Pos:      p.Fset.Position(n.OpPos),
							Message:  "float equality between non-constant operands: NaN and rounding make == unreliable; compare a difference against a tolerance",
						})
					}
				case token.QUO:
					if isFloat(p, n.Y) {
						out = append(out, checkDenominator(p, f, n.Y)...)
					}
				}
			case *ast.AssignStmt:
				if n.Tok == token.QUO_ASSIGN && len(n.Rhs) == 1 && isFloat(p, n.Lhs[0]) {
					out = append(out, checkDenominator(p, f, n.Rhs[0])...)
				}
			}
			return true
		})
	}
	return out
}

// checkDenominator flags d unless it is visibly protected against zero.
func checkDenominator(p *Package, f *ast.File, d ast.Expr) []Finding {
	if isConstant(p, d) || containsNonzeroLiteral(d) {
		return nil
	}
	fn := enclosingFunc(f, d.Pos())
	if fn != nil && comparedInFunc(p, fn, d) {
		return nil
	}
	return []Finding{{
		Analyzer: "floatguard",
		Pos:      p.Fset.Position(d.Pos()),
		Message:  "float division by " + types.ExprString(d) + " has no visible zero-guard in this function; guard the denominator or annotate with //lint:ignore floatguard <reason>",
	}}
}

// containsNonzeroLiteral reports whether the expression contains a numeric
// literal other than zero — `1 + x` style denominators are poles only when
// x can reach exactly -1, which the additive form makes a deliberate
// choice rather than an oversight.
func containsNonzeroLiteral(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok {
			return true
		}
		switch lit.Kind {
		case token.INT, token.FLOAT:
			if v, err := strconv.ParseFloat(lit.Value, 64); err == nil && v != 0 {
				found = true
			}
		}
		return !found
	})
	return found
}

// comparedInFunc reports whether any atom of the denominator (an
// identifier, selector or index expression inside it) appears as an
// operand of a comparison somewhere in the enclosing function — the
// visible-guard criterion. The match is textual on purpose: the guard and
// the division must name the same thing for a reader to connect them.
func comparedInFunc(p *Package, fn *ast.FuncDecl, d ast.Expr) bool {
	atoms := exprAtoms(p, d)
	if len(atoms) == 0 {
		return false
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		cmp, ok := n.(*ast.BinaryExpr)
		if !ok {
			return !found
		}
		switch cmp.Op {
		case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
			for _, operand := range []ast.Expr{cmp.X, cmp.Y} {
				for atom := range exprAtoms(p, operand) {
					if atoms[atom] {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// exprAtoms collects the value-naming sub-expressions of e (identifiers,
// selectors, index expressions) by their source text. Identifiers that name
// builtins or types (len, float64) are excluded: `float64(len(xs))` guards
// on xs, not on the conversion machinery around it.
func exprAtoms(p *Package, e ast.Expr) map[string]bool {
	atoms := make(map[string]bool)
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			switch p.Info.Uses[n].(type) {
			case *types.Builtin, *types.TypeName, nil:
				return true
			}
			atoms[n.Name] = true
		case *ast.SelectorExpr, *ast.IndexExpr:
			atoms[types.ExprString(n.(ast.Expr))] = true
		}
		return true
	})
	return atoms
}
