package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader parses and type-checks the packages of one Go module using only
// the standard library: module-internal imports ("repro/...") are resolved
// against the module tree and type-checked recursively, while standard
// library imports are delegated to the source importer (which reads GOROOT
// and therefore works offline). The golang.org/x/tools machinery this
// replaces is not available in the build environment by design — the lint
// suite must be runnable anywhere the repository compiles.
type Loader struct {
	// ModuleRoot is the absolute directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod ("repro").
	ModulePath string
	// Fset is shared by every file of every loaded package, so positions
	// from different packages are directly comparable.
	Fset *token.FileSet

	std  types.Importer
	pkgs map[string]*Package
}

// Package is one parsed, type-checked, non-test package of the module —
// the unit every analyzer runs on.
type Package struct {
	// Path is the import path (e.g. "repro/internal/core").
	Path string
	// Dir is the absolute directory of the package.
	Dir string
	// Fset is the loader's shared file set.
	Fset *token.FileSet
	// Files holds the parsed non-test files, sorted by file name.
	Files []*ast.File
	// Types and Info carry the go/types results for the package.
	Types *types.Package
	// Info holds type-checker facts (expression types, uses, selections).
	Info *types.Info

	suppressions map[string][]*directive
}

// NewLoader builds a loader for the module rooted at dir (or any directory
// below the module root; the root is found by walking up to go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		Fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}

// Discover returns the import paths of every non-test Go package under the
// module root, sorted. Directories named testdata, hidden directories and
// vendor trees are skipped, mirroring the go tool's "./..." semantics.
func (l *Loader) Discover() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		has, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if !has {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleRoot, path)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.ModulePath)
		} else {
			paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}

func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && isLintedFile(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

// isLintedFile reports whether a file participates in the lint run:
// ordinary .go sources, excluding tests (test-only panics and fixed seeds
// are legitimate) and editor artifacts.
func isLintedFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// Load parses and type-checks the package with the given module-internal
// import path (results are cached, so shared dependencies are checked once).
func (l *Loader) Load(path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir, ok := l.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("lint: import path %q is outside module %s", path, l.ModulePath)
	}
	return l.LoadDir(dir, path)
}

// LoadDir parses and type-checks the package in dir under the given import
// path. It exists separately from Load for the fixture packages of the
// analyzer tests, which live under testdata and therefore have no real
// import path.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isLintedFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importerFunc(l.importDep)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	p.buildSuppressions()
	l.pkgs[path] = p
	return p, nil
}

// importDep resolves one import encountered during type-checking:
// module-internal paths recurse into Load, everything else goes to the
// standard library source importer.
func (l *Loader) importDep(path string) (*types.Package, error) {
	if _, ok := l.dirFor(path); ok {
		p, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) (string, bool) {
	if path == l.ModulePath {
		return l.ModuleRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// importerFunc adapts a function to the types.Importer interface.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
