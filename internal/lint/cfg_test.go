package lint

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"reflect"
	"sort"
	"testing"
)

// These tests live inside the package: they pin the unexported CFG builder
// and the lock lattice, which the fixture tests only exercise indirectly
// through analyzer findings.

// loadCFGPackage type-checks the cfg fixture package.
func loadCFGPackage(t *testing.T) *Package {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p, err := loader.LoadDir(filepath.Join("testdata", "src", "cfg"), "fixture/cfg")
	if err != nil {
		t.Fatalf("loading cfg fixture: %v", err)
	}
	return p
}

func findFunc(t *testing.T, p *Package, name string) *ast.FuncDecl {
	t.Helper()
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.Name == name {
				return fn
			}
		}
	}
	t.Fatalf("function %s not found in cfg fixture", name)
	return nil
}

// edgeStrings renders a CFG as sorted "kind#n -> kind#n" edges, numbering
// blocks of the same kind in creation order (which is deterministic).
func edgeStrings(c *cfg) []string {
	names := make(map[*block]string, len(c.blocks))
	count := make(map[string]int)
	for _, b := range c.blocks {
		count[b.kind]++
		names[b] = fmt.Sprintf("%s#%d", b.kind, count[b.kind])
	}
	var out []string
	for _, b := range c.blocks {
		for _, s := range b.succs {
			out = append(out, names[b]+" -> "+names[s])
		}
	}
	sort.Strings(out)
	return out
}

func TestCFGShapes(t *testing.T) {
	p := loadCFGPackage(t)
	cases := []struct {
		fn       string
		edges    []string
		exitHeld []string
	}{
		{
			fn:    "deferUnlock",
			edges: []string{"entry#1 -> exit#1"},
			// The deferred unlock applies at exit: clean.
			exitHeld: nil,
		},
		{
			fn: "earlyReturn",
			edges: []string{
				"entry#1 -> if.join#1",
				"entry#1 -> if.then#1",
				"if.join#1 -> exit#1",
				"if.then#1 -> exit#1",
			},
			// The late return leaks the lock; the may-union keeps it.
			exitHeld: []string{"fixture/cfg.guarded.mu"},
		},
		{
			fn: "labeledLoops",
			edges: []string{
				"entry#1 -> range.head#1",
				"if.join#1 -> if.join#2",
				"if.join#1 -> if.then#2",
				"if.join#2 -> range.head#2",
				"if.then#1 -> range.head#1",  // continue outer
				"if.then#2 -> range.after#1", // break outer
				"range.after#1 -> exit#1",
				"range.after#2 -> range.head#1",
				"range.body#1 -> range.head#2",
				"range.body#2 -> if.join#1",
				"range.body#2 -> if.then#1",
				"range.head#1 -> range.after#1",
				"range.head#1 -> range.body#1",
				"range.head#2 -> range.after#2",
				"range.head#2 -> range.body#2",
			},
			exitHeld: nil,
		},
		{
			fn: "selector",
			edges: []string{
				"entry#1 -> for.head#1",
				"for.after#1 -> exit#1", // unreachable: for{} has no normal exit
				"for.body#1 -> select.case#1",
				"for.body#1 -> select.case#2",
				"for.head#1 -> for.body#1",
				"select.after#1 -> for.head#1",
				"select.case#1 -> exit#1",
				"select.case#2 -> exit#1",
			},
			exitHeld: nil,
		},
		{
			fn: "typeSwitch",
			edges: []string{
				"entry#1 -> typeswitch.case#1",
				"entry#1 -> typeswitch.case#2",
				"entry#1 -> typeswitch.case#3",
				"typeswitch.after#1 -> exit#1", // unreachable: every clause returns
				"typeswitch.case#1 -> exit#1",
				"typeswitch.case#2 -> exit#1",
				"typeswitch.case#3 -> exit#1",
			},
			exitHeld: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.fn, func(t *testing.T) {
			fn := findFunc(t, p, tc.fn)
			c := buildCFG(fn.Body)
			if got := edgeStrings(c); !reflect.DeepEqual(got, tc.edges) {
				t.Errorf("edges:\n got  %q\n want %q", got, tc.edges)
			}
			got := walkHeld(p, c, nil).sortedIDs()
			if len(got) != len(tc.exitHeld) || (len(got) > 0 && !reflect.DeepEqual(got, tc.exitHeld)) {
				t.Errorf("exit lock state: got %q, want %q", got, tc.exitHeld)
			}
		})
	}
}

// TestWalkHeldVisitsPreState pins the visit contract: the callback sees the
// locks held *before* each item runs.
func TestWalkHeldVisitsPreState(t *testing.T) {
	p := loadCFGPackage(t)
	fn := findFunc(t, p, "deferUnlock")
	c := buildCFG(fn.Body)
	var states []int
	walkHeld(p, c, func(item ast.Node, held heldSet) {
		states = append(states, len(held))
	})
	// Item 1: the Lock call itself (nothing held yet). Item 2: the return
	// (the lock held).
	want := []int{0, 1}
	if !reflect.DeepEqual(states, want) {
		t.Errorf("per-item held counts: got %v, want %v", states, want)
	}
}
