package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// fsyncOrderPackages is the scope of the WAL durability protocol: the
// journal itself and the store that drives it.
var fsyncOrderPackages = map[string]bool{
	"repro/internal/wal":   true,
	"repro/internal/serve": true,
}

// FsyncOrder checks the three ordering rules of the WAL durability
// protocol:
//
//	R1  a staged file is fsynced before it is renamed into place, on
//	    every path (must-analysis; a rename of unsynced bytes can
//	    surface an empty file after a crash),
//	R2  a directory-entry mutation — create, rename, error-checked
//	    remove — has a directory fsync reachable after it (the entry
//	    itself is not durable until the directory is synced; a
//	    best-effort `_ = fs.Remove(tmp)` cleanup is exempt),
//	R3  the journal append precedes the in-memory apply (an apply that
//	    can reach the append mutated state before the WAL recorded it —
//	    a crash in between loses the write that readers already saw).
//
// Sync/SyncDir performed inside a called module function count at the
// call site, so the write-snapshot helper satisfies its caller.
func FsyncOrder() *Analyzer {
	return &Analyzer{
		Name:      "fsyncorder",
		Doc:       "WAL durability protocol: fsync before rename, directory fsync after entry mutations, journal append before in-memory apply",
		Scope:     "internal/{wal,serve}",
		Applies:   func(pkgPath string) bool { return fsyncOrderPackages[pkgPath] },
		RunModule: fsyncOrderModule,
	}
}

// fsyncEvent is one protocol-relevant operation inside a CFG item, in
// source order.
type fsyncEvent struct {
	kind      string // sync, syncdir, create, rename, remove, append, apply, call
	name      string // method name as written, for messages
	pos       token.Pos
	callee    types.Object // for kind "call"
	discarded bool         // kind "remove": error result is discarded
}

// fsyncFacts is the interprocedural (may) summary consumed at call
// sites.
type fsyncFacts struct{ syncs, syncDirs bool }

func fsyncOrderModule(prog *program) []Finding {
	// Fixed point for the callee facts: does a function, on some path,
	// perform a file fsync / a directory fsync (directly or transitively)?
	facts := make(map[types.Object]*fsyncFacts)
	for obj := range prog.funcs {
		facts[obj] = &fsyncFacts{}
	}
	factsOf := func(obj types.Object) *fsyncFacts {
		if obj == nil {
			return nil
		}
		return facts[obj]
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range prog.infos {
			if fi.obj == nil {
				continue
			}
			f := facts[fi.obj]
			for _, b := range fi.c.blocks {
				for _, item := range b.items {
					for _, ev := range scanFsync(fi.pkg, fi.c, item) {
						switch ev.kind {
						case "sync":
							if !f.syncs {
								f.syncs, changed = true, true
							}
						case "syncdir":
							if !f.syncDirs {
								f.syncDirs, changed = true, true
							}
						case "call":
							if g := factsOf(ev.callee); g != nil {
								if g.syncs && !f.syncs {
									f.syncs, changed = true, true
								}
								if g.syncDirs && !f.syncDirs {
									f.syncDirs, changed = true, true
								}
							}
						}
					}
				}
			}
		}
	}

	var out []Finding
	for _, fi := range prog.infos {
		out = append(out, fsyncCheckFunc(fi, factsOf)...)
	}
	return out
}

// fsyncCheckFunc runs all three rules over one function.
func fsyncCheckFunc(fi *funcInfo, factsOf func(types.Object) *fsyncFacts) []Finding {
	p, c := fi.pkg, fi.c
	// perBlock[b.id][i] holds the events of block b's i-th item.
	perBlock := make([][][]fsyncEvent, len(c.blocks))
	for _, b := range c.blocks {
		perBlock[b.id] = make([][]fsyncEvent, len(b.items))
		for i, item := range b.items {
			perBlock[b.id][i] = scanFsync(p, c, item)
		}
	}

	isSyncDir := func(ev fsyncEvent) bool {
		if ev.kind == "syncdir" {
			return true
		}
		if ev.kind == "call" {
			if g := factsOf(ev.callee); g != nil {
				return g.syncDirs
			}
		}
		return false
	}
	isSync := func(ev fsyncEvent) bool {
		if ev.kind == "sync" {
			return true
		}
		if ev.kind == "call" {
			if g := factsOf(ev.callee); g != nil {
				return g.syncs
			}
		}
		return false
	}

	// Reachability helper: does an event satisfying pred occur after
	// (block b, item i, event e), searching the rest of the item, the rest
	// of the block, then every transitively reachable successor block?
	blockHas := func(bid int, fromItem, fromEv int, pred func(fsyncEvent) bool) bool {
		for i := fromItem; i < len(perBlock[bid]); i++ {
			start := 0
			if i == fromItem {
				start = fromEv
			}
			for _, ev := range perBlock[bid][i][start:] {
				if pred(ev) {
					return true
				}
			}
		}
		return false
	}
	reachableHas := func(b *block, fromItem, fromEv int, pred func(fsyncEvent) bool) bool {
		if blockHas(b.id, fromItem, fromEv, pred) {
			return true
		}
		seen := make([]bool, len(c.blocks))
		stack := append([]*block(nil), b.succs...)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[n.id] {
				continue
			}
			seen[n.id] = true
			if blockHas(n.id, 0, 0, pred) {
				return true
			}
			stack = append(stack, n.succs...)
		}
		return false
	}

	var out []Finding

	// R1: forward must-analysis of the "staged file is synced" bit.
	// Entry and create reset it; a file fsync (direct or via a callee)
	// sets it; merges AND, so a path that skips the fsync wins.
	preds := make([][]*block, len(c.blocks))
	for _, b := range c.blocks {
		for _, s := range b.succs {
			preds[s.id] = append(preds[s.id], b)
		}
	}
	transfer := func(bid int, bit bool) bool {
		for i := range perBlock[bid] {
			for _, ev := range perBlock[bid][i] {
				switch {
				case ev.kind == "create":
					bit = false
				case isSync(ev):
					bit = true
				}
			}
		}
		return bit
	}
	in := make([]bool, len(c.blocks))
	for i := range in {
		in[i] = true // TOP for the must-analysis
	}
	in[c.entry.id] = false
	for changed := true; changed; {
		changed = false
		for _, b := range c.blocks {
			if b == c.entry {
				continue
			}
			v := true
			if len(preds[b.id]) == 0 {
				v = in[b.id] // unreachable: keep TOP
			}
			for _, pb := range preds[b.id] {
				v = v && transfer(pb.id, in[pb.id])
			}
			if v != in[b.id] {
				in[b.id] = v
				changed = true
			}
		}
	}
	for _, b := range c.blocks {
		bit := in[b.id]
		for i := range perBlock[b.id] {
			for _, ev := range perBlock[b.id][i] {
				switch {
				case ev.kind == "create":
					bit = false
				case isSync(ev):
					bit = true
				case ev.kind == "rename" && !bit:
					out = append(out, Finding{Analyzer: "fsyncorder", Pos: p.Fset.Position(ev.pos),
						Message: "rename without a file fsync of the staged file on some path; fsync before renaming into place"})
				}
			}
		}
	}

	// R2: directory fsync reachable after every directory-entry mutation.
	for _, b := range c.blocks {
		for i := range perBlock[b.id] {
			for e, ev := range perBlock[b.id][i] {
				switch ev.kind {
				case "create", "rename", "remove":
					if ev.kind == "remove" && ev.discarded {
						continue // best-effort cleanup, durability not claimed
					}
					if !reachableHas(b, i, e+1, isSyncDir) {
						out = append(out, Finding{Analyzer: "fsyncorder", Pos: p.Fset.Position(ev.pos),
							Message: fmt.Sprintf("%s mutates a directory entry but no directory fsync is reachable; call SyncDir before returning", ev.name)})
					}
				}
			}
		}
	}

	// R3: the journal append must precede the in-memory apply.
	isAppend := func(ev fsyncEvent) bool { return ev.kind == "append" }
	for _, b := range c.blocks {
		for i := range perBlock[b.id] {
			for e, ev := range perBlock[b.id][i] {
				if ev.kind != "apply" {
					continue
				}
				if reachableHas(b, i, e+1, isAppend) {
					out = append(out, Finding{Analyzer: "fsyncorder", Pos: p.Fset.Position(ev.pos),
						Message: "in-memory apply happens before the journal append it can reach; append to the WAL first, then apply"})
				}
			}
		}
	}
	return out
}

// scanFsync extracts the protocol-relevant events of one CFG item in
// source order. Go-statement payloads are skipped (the spawned
// goroutine's protocol is checked where its function is declared).
func scanFsync(p *Package, c *cfg, item ast.Node) []fsyncEvent {
	if c.goStmts[item] {
		return nil
	}
	var evs []fsyncEvent
	ast.Inspect(item, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			return false // clause bodies are separate items
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch name {
			case "Sync":
				if len(x.Args) == 0 {
					evs = append(evs, fsyncEvent{kind: "sync", name: name, pos: x.Pos()})
					return true
				}
			case "SyncDir":
				evs = append(evs, fsyncEvent{kind: "syncdir", name: name, pos: x.Pos()})
				return true
			case "Create", "OpenFile":
				evs = append(evs, fsyncEvent{kind: "create", name: name, pos: x.Pos()})
				return true
			case "Rename":
				evs = append(evs, fsyncEvent{kind: "rename", name: name, pos: x.Pos()})
				return true
			case "Remove", "RemoveAll":
				evs = append(evs, fsyncEvent{kind: "remove", name: name, pos: x.Pos(),
					discarded: errDiscarded(item, x)})
				return true
			case "Append", "AppendDurable":
				if owner := namedTypeName(typeOf(p, sel.X)); strings.HasSuffix(owner, ".Log") {
					evs = append(evs, fsyncEvent{kind: "append", name: name, pos: x.Pos()})
					return true
				}
			case "apply", "applyLocked":
				evs = append(evs, fsyncEvent{kind: "apply", name: name, pos: x.Pos()})
				return true
			}
			if obj := calleeObject(p, x); obj != nil {
				evs = append(evs, fsyncEvent{kind: "call", name: name, pos: x.Pos(), callee: obj})
			}
		}
		return true
	})
	return evs
}

// errDiscarded reports whether call's error result is thrown away inside
// item: the call stands alone as an expression statement, or every
// assignment target is the blank identifier.
func errDiscarded(item ast.Node, call *ast.CallExpr) bool {
	if item == ast.Node(call) {
		return true // ExprStmt: bare `fs.Remove(tmp)`
	}
	if as, ok := item.(*ast.AssignStmt); ok {
		usesCall := false
		for _, r := range as.Rhs {
			if r == ast.Expr(call) {
				usesCall = true
			}
		}
		if !usesCall {
			return false
		}
		for _, l := range as.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok || id.Name != "_" {
				return false
			}
		}
		return true
	}
	return false
}
