package lint

import (
	"go/ast"
	"go/types"
)

// NoPanic returns the analyzer enforcing the PR-1 panic policy: library
// code must not panic. The public entry points install a recovery boundary
// (er.recoverToError) that converts internal panics into errors wrapping
// er.ErrInternal, but that boundary exists for bugs — it must not become a
// control-flow channel, and new code must not grow panics that a future
// refactor could move outside the boundary. Intentional programmer-error
// asserts (dimension checks in internal/matrix, alignment preconditions)
// are allowed when annotated with //lint:invariant <reason> on the panic or
// in the enclosing function's doc comment.
//
// Commands and examples (package main) are exempt: a CLI terminating on an
// impossible state crashes only itself.
func NoPanic() *Analyzer {
	return &Analyzer{
		Name:  "nopanic",
		Scope: "module-wide",
		Doc:   "library code must not call panic() without a //lint:invariant justification",
		Run:   runNoPanic,
	}
}

func runNoPanic(p *Package) []Finding {
	if p.Types.Name() == "main" {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true // a local function shadowing the builtin
			}
			pos := p.Fset.Position(call.Pos())
			if p.invariantAt(pos, enclosingFunc(f, call.Pos())) {
				return true
			}
			out = append(out, Finding{
				Analyzer: "nopanic",
				Pos:      pos,
				Message:  "panic in library code: return an error wrapping the er taxonomy, or annotate an intentional assert with //lint:invariant <reason>",
			})
			return true
		})
	}
	return out
}
