package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// determinismCallPackages are the kernel packages where ambient
// non-determinism is banned outright: equal seeds must give bit-identical
// results there, because the unsupervised fixed points have no labels to
// reveal a run that silently diverged.
var determinismCallPackages = map[string]bool{
	"repro/internal/core":     true,
	"repro/internal/matrix":   true,
	"repro/internal/graph":    true,
	"repro/internal/parallel": true,
	// The staged engine times every stage; those readings must come from
	// the run's injected clock, or traces stop being replayable.
	"repro/internal/engine": true,
	// The serve daemon is not a kernel, but its breaker transitions and
	// latency accounting must be reproducible under a fake clock in tests,
	// so it takes the same discipline: all time flows through an injected
	// clock.Func.
	"repro/internal/serve": true,
	// The journal decides truncation points and replay outcomes; a wall
	// clock or ambient env read there would make crash recovery depend on
	// when (or where) the process restarted.
	"repro/internal/wal": true,
	// The retrying client's backoff schedule must be testable with an
	// injected rand.Rand and its sleeps cancellable; ambient clock reads
	// would smuggle untestable timing into the retry loop.
	"repro/internal/client": true,
	// The corpus generators promise identical datasets for equal configs
	// — the property every determinism test upstream builds on — so all
	// their randomness must flow from the seeded noiser RNG.
	"repro/internal/dataset": true,
	// The incremental index promises batch/streaming equivalence: the same
	// record set must yield bit-identical candidate graphs regardless of
	// mutation history, so no ambient state may leak into its decisions.
	"repro/internal/index": true,
}

// determinismMapPackages additionally ban order-sensitive accumulation over
// map iteration. The blocking package and the public er package participate
// because their outputs (candidate enumeration order, cluster and match
// listings) feed position-aligned slices downstream.
var determinismMapPackages = map[string]bool{
	"repro":                   true,
	"repro/internal/core":     true,
	"repro/internal/matrix":   true,
	"repro/internal/graph":    true,
	"repro/internal/blocking": true,
	"repro/internal/parallel": true,
	// The engine's snapshot keys hash option sets (sorted stopwords) and
	// its cache renders stats; neither may depend on map iteration order.
	"repro/internal/engine": true,
	// serve's /stats output lists breaker classes built from a map; the
	// wire format must not leak map iteration order.
	"repro/internal/serve": true,
	// Replay applies records in seq order and equal states must produce
	// identical segment bytes; map iteration must not order anything the
	// journal writes or restores.
	"repro/internal/wal": true,
	// The client renders nothing ordered today, but it shares the serve
	// wire format; keep it under the same discipline as it grows.
	"repro/internal/client": true,
	// Dataset records and ground-truth summaries are position-aligned with
	// downstream score vectors; map iteration must not order anything the
	// generators or accessors emit.
	"repro/internal/dataset": true,
	// The index materializes views whose pair enumeration and position
	// assignment feed position-aligned vectors downstream, and its deltas
	// are asserted bit-identical to batch builds; map iteration must not
	// order anything it emits.
	"repro/internal/index": true,
}

// Determinism returns the analyzer enforcing seeded, injected-ambient
// kernels:
//
//   - no time.Now/Since/Until in the kernel packages — inject a clock
//     (internal/clock) so runs are replayable;
//   - no os.Getenv/LookupEnv/Environ — configuration flows through Options;
//   - no global math/rand functions — only seeded *rand.Rand instances
//     (the constructors rand.New/rand.NewSource stay legal);
//   - no map iteration that accumulates into ordered output (append, or
//     float += where rounding depends on order) unless the result is sorted
//     later in the same function.
func Determinism() *Analyzer {
	return &Analyzer{
		Name:  "determinism",
		Scope: "kernel + pipeline packages",
		Doc:   "kernels use seeded RNGs and injected clocks; map iteration must not feed ordered output",
		Applies: func(pkgPath string) bool {
			return determinismCallPackages[pkgPath] || determinismMapPackages[pkgPath]
		},
		Run: runDeterminism,
	}
}

// randConstructors are the math/rand functions that build seeded generators
// rather than consuming the global one.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDeterminism(p *Package) []Finding {
	var out []Finding
	inCall, inMap := determinismCallPackages[p.Path], determinismMapPackages[p.Path]
	// A package outside both scopes can only be a test fixture (the runner
	// filters by Applies before Run); fixtures exercise every check.
	banCalls := inCall || (!inCall && !inMap)
	banMaps := inMap || (!inCall && !inMap)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if banCalls {
					if fd := bannedCall(p, n); fd != nil {
						out = append(out, *fd)
					}
				}
			case *ast.RangeStmt:
				if banMaps {
					out = append(out, mapOrderFindings(p, f, n)...)
				}
			}
			return true
		})
	}
	return out
}

// bannedCall flags ambient-state calls in kernel packages.
func bannedCall(p *Package, call *ast.CallExpr) *Finding {
	pkgPath, fn, ok := importedCallee(p, call)
	if !ok {
		return nil
	}
	var msg string
	switch pkgPath {
	case "time":
		if fn == "Now" || fn == "Since" || fn == "Until" {
			msg = "time." + fn + " in a kernel package: accept an injected clock (internal/clock) so runs are replayable"
		}
	case "os":
		if fn == "Getenv" || fn == "LookupEnv" || fn == "Environ" {
			msg = "os." + fn + " in a kernel package: configuration must flow through Options"
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn] {
			msg = "global math/rand." + fn + " is process-seeded: draw from a seeded *rand.Rand instead"
		}
	}
	if msg == "" {
		return nil
	}
	return &Finding{Analyzer: "determinism", Pos: p.Fset.Position(call.Pos()), Message: msg}
}

// mapOrderFindings flags order-sensitive accumulation inside a range over a
// map: appends to slices declared outside the loop, and floating-point
// compound accumulation (where the rounding of the total depends on
// iteration order). A sort call later in the same function neutralizes the
// append case — sorted output no longer depends on iteration order.
func mapOrderFindings(p *Package, f *ast.File, rng *ast.RangeStmt) []Finding {
	tv, ok := p.Info.Types[rng.X]
	if !ok || tv.Type == nil {
		return nil
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return nil
	}
	fn := enclosingFunc(f, rng.Pos())
	var out []Finding
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			id, ok := n.Fun.(*ast.Ident)
			if !ok || id.Name != "append" || len(n.Args) == 0 {
				return true
			}
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			if !declaredOutside(p, n.Args[0], rng) || sortedLater(p, fn, rng) {
				return true
			}
			out = append(out, Finding{
				Analyzer: "determinism",
				Pos:      p.Fset.Position(n.Pos()),
				Message:  "append inside map iteration feeds ordered output: sort the result afterwards or iterate a sorted key slice",
			})
		case *ast.AssignStmt:
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			default:
				return true
			}
			lhs := n.Lhs[0]
			if !isFloat(p, lhs) || !declaredOutside(p, lhs, rng) {
				return true
			}
			out = append(out, Finding{
				Analyzer: "determinism",
				Pos:      p.Fset.Position(n.Pos()),
				Message:  "floating-point accumulation inside map iteration: the rounding of the total depends on map order; accumulate over a sorted key slice",
			})
		}
		return true
	})
	return out
}

// declaredOutside reports whether the root object of an expression was
// declared outside the range statement (accumulating into it therefore
// escapes the loop).
func declaredOutside(p *Package, e ast.Expr, rng *ast.RangeStmt) bool {
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			e = x.X
			continue
		case *ast.SelectorExpr:
			e = x.X
			continue
		case *ast.Ident:
			obj := p.Info.Uses[x]
			if obj == nil {
				obj = p.Info.Defs[x]
			}
			if obj == nil {
				return false
			}
			return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
		default:
			return false
		}
	}
}

// sortedLater reports whether the enclosing function calls into package
// sort at a position after the range statement.
func sortedLater(p *Package, fn *ast.FuncDecl, rng *ast.RangeStmt) bool {
	if fn == nil {
		return false
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if pkgPath, _, ok := importedCallee(p, call); ok && pkgPath == "sort" {
			found = true
		}
		return !found
	})
	return found
}
