package lint

import (
	"go/ast"
	"go/types"
)

// guardCheckpointType is the fully-qualified receiver type whose method
// calls count as cancellation polls.
const guardCheckpointType = "repro/internal/guard.Checkpoint"

// guardLoopPackages are the hot-path packages whose kernels must stay
// cancellable: every candidate enumeration, ITER sweep, CliqueRank power
// and baseline iteration lives here, and a nested loop that never polls a
// checkpoint is exactly how a new kernel silently becomes uncancellable.
var guardLoopPackages = map[string]bool{
	"repro/internal/core":      true,
	"repro/internal/blocking":  true,
	"repro/internal/baselines": true,
	// The staged engine owns the blocking degradation loop and drives the
	// fusion rounds; its loops must poll the run's checkpoint.
	"repro/internal/engine": true,
	// WAL replay walks every frame of every segment; recovery of a large
	// journal must stay cancellable through the same checkpoint contract.
	"repro/internal/wal": true,
	// The index's batch build and pair rebuilds enumerate term posting
	// lists — the same quadratic-prone shape as blocking — and must stay
	// cancellable at 100k-record scale.
	"repro/internal/index": true,
}

// GuardLoop returns the analyzer enforcing the PR-1 cancellation contract:
// in the hot-path packages, any function containing a nested loop must
// reach a guard.Checkpoint poll (Tick or Err) — directly, or through a
// same-package function it calls. Single-level loops are exempt (they are
// linear in an input that an upstream guarded stage already bounded);
// output-sized copies and other intentionally unguarded nested loops are
// suppressed with //lint:ignore guardloop <reason>.
func GuardLoop() *Analyzer {
	return &Analyzer{
		Name:    "guardloop",
		Scope:   "internal/{core,blocking,baselines,engine,wal,index}",
		Doc:     "nested loops in hot-path packages must poll a guard.Checkpoint",
		Applies: func(pkgPath string) bool { return guardLoopPackages[pkgPath] },
		Run:     runGuardLoop,
	}
}

// guardFuncInfo is the per-function summary the analyzer derives.
type guardFuncInfo struct {
	decl       *ast.FuncDecl
	file       *ast.File
	nestedLoop ast.Node // first nested loop found, nil when none
	polls      bool     // calls a guard.Checkpoint method directly
	callees    []types.Object
}

func runGuardLoop(p *Package) []Finding {
	// Pass 1: summarize every function — does it poll, whom does it call,
	// does it contain a nested loop (counting loops inside closures, which
	// run on the same goroutine budget).
	infos := make(map[types.Object]*guardFuncInfo)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj := p.Info.Defs[fn.Name]
			if obj == nil {
				continue
			}
			info := &guardFuncInfo{decl: fn, file: f}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.ForStmt:
					if info.nestedLoop == nil && containsLoop(n.Body) {
						info.nestedLoop = n
					}
				case *ast.RangeStmt:
					if info.nestedLoop == nil && containsLoop(n.Body) {
						info.nestedLoop = n
					}
				case *ast.CallExpr:
					if methodReceiverType(p, n) == guardCheckpointType {
						info.polls = true
					}
					if callee := calleeObject(p, n); callee != nil && callee.Pkg() == p.Types {
						info.callees = append(info.callees, callee)
					}
				}
				return true
			})
			infos[obj] = info
		}
	}

	// Pass 2: propagate "reaches a poll" through the same-package call
	// graph to a fixed point, so helpers called from a polling driver
	// (and drivers delegating the poll to a kernel) both qualify.
	reaches := make(map[types.Object]bool)
	for obj, info := range infos {
		if info.polls {
			reaches[obj] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for obj, info := range infos {
			if reaches[obj] {
				continue
			}
			for _, callee := range info.callees {
				if reaches[callee] {
					reaches[obj] = true
					changed = true
					break
				}
			}
		}
	}

	var out []Finding
	for obj, info := range infos {
		if info.nestedLoop == nil || reaches[obj] {
			continue
		}
		out = append(out, Finding{
			Analyzer: "guardloop",
			Pos:      p.Fset.Position(info.nestedLoop.Pos()),
			Message:  "nested loop in hot-path function " + obj.Name() + " never reaches a guard.Checkpoint poll; add opts.Check.Tick()/Err() or call a kernel that polls",
		})
	}
	return out
}

// containsLoop reports whether a statement block contains any for/range
// statement (at any depth, including inside function literals).
func containsLoop(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			found = true
		}
		return !found
	})
	return found
}

// calleeObject resolves the called function or method to its declaration
// object, or nil for builtins, closures and indirect calls.
func calleeObject(p *Package, call *ast.CallExpr) types.Object {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		if obj, ok := p.Info.Uses[fn].(*types.Func); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if obj, ok := p.Info.Uses[fn.Sel].(*types.Func); ok {
			return obj
		}
	}
	return nil
}
