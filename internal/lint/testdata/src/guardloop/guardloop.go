// Package guardloop is a golden fixture for the guardloop analyzer.
package guardloop

import "repro/internal/guard"

// BadNested contains a nested loop that never reaches a checkpoint poll.
func BadNested(m [][]float64) float64 {
	s := 0.0
	for i := range m { // want guardloop
		for j := range m[i] {
			s += m[i][j]
		}
	}
	return s
}

// BadClosure hides the unguarded nested loop inside a function literal,
// which runs on the same goroutine budget.
func BadClosure(m [][]float64) func() float64 {
	return func() float64 {
		s := 0.0
		for i := range m { // want guardloop
			for range m[i] {
				s++
			}
		}
		return s
	}
}

// GoodDirect polls Tick inside the outer loop.
func GoodDirect(check *guard.Checkpoint, m [][]float64) float64 {
	s := 0.0
	for i := range m {
		if check.Tick() != nil {
			return s
		}
		for j := range m[i] {
			s += m[i][j]
		}
	}
	return s
}

// GoodViaCallee reaches a poll through a same-package helper.
func GoodViaCallee(check *guard.Checkpoint, m [][]float64) float64 {
	s := 0.0
	for i := range m {
		for j := range m[i] {
			s += weighted(check, m[i][j])
		}
	}
	return s
}

func weighted(check *guard.Checkpoint, v float64) float64 {
	if check.Err() != nil {
		return 0
	}
	return v
}

// SingleLoop is exempt: linear passes are bounded by an upstream guarded
// stage.
func SingleLoop(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Copy is an intentionally unguarded output-sized copy.
func Copy(dst, src [][]float64) {
	//lint:ignore guardloop output-sized copy bounded by the caller
	for i := range src {
		for j := range src[i] {
			dst[i][j] = src[i][j]
		}
	}
}
