// Package determinism is a golden fixture for the determinism analyzer.
package determinism

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

// AmbientTime reads the wall clock twice.
func AmbientTime() time.Duration {
	start := time.Now()      // want determinism
	return time.Since(start) // want determinism
}

// AmbientEnv reads process configuration.
func AmbientEnv() string {
	return os.Getenv("HOME") // want determinism
}

// GlobalRand draws from the process-seeded global generator.
func GlobalRand() float64 {
	return rand.Float64() // want determinism
}

// SeededRand uses the legal constructor-plus-instance idiom.
func SeededRand(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// MapAppendBad enumerates map keys into ordered output without sorting.
func MapAppendBad(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want determinism
	}
	return keys
}

// MapAppendSorted is the sanctioned idiom: the later sort neutralizes the
// iteration order.
func MapAppendSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// MapFloatAccum rounds differently depending on iteration order.
func MapFloatAccum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want determinism
	}
	return total
}

// MapIntAccum is exact regardless of order and therefore legal.
func MapIntAccum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// SliceAppend ranges a slice, not a map.
func SliceAppend(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// SuppressedFloat carries a reasoned ignore.
func SuppressedFloat(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m {
		//lint:ignore determinism fixture exercises the suppression path
		t += v
	}
	return t
}
