// Package errwrap is a golden fixture for the errwrap analyzer.
package errwrap

import (
	"errors"
	"fmt"
)

// ErrStray is a sentinel declared outside errors.go.
var ErrStray = errors.New("stray sentinel") // want errwrap

// BadLeaf builds an error no errors.Is can classify.
func BadLeaf(name string) error {
	return fmt.Errorf("unknown dataset %q", name) // want errwrap
}

// GoodWrap wraps the underlying cause.
func GoodWrap(err error) error {
	return fmt.Errorf("loading fixture: %w", err)
}

// GoodSentinelWrap wraps the taxonomy root.
func GoodSentinelWrap(name string) error {
	return fmt.Errorf("%w: unknown dataset %q", ErrFixture, name)
}

// BadLocalSentinel mints a stringly-typed sentinel inside a function.
func BadLocalSentinel() error {
	return errors.New("ad hoc") // want errwrap
}

// SuppressedLeaf carries a reasoned ignore.
func SuppressedLeaf(name string) error {
	//lint:ignore errwrap fixture exercises the suppression path
	return fmt.Errorf("bad name %q", name)
}
