package errwrap

import "errors"

// ErrFixture is the fixture taxonomy root: package-level sentinels in
// errors.go are the one legal errors.New site.
var ErrFixture = errors.New("fixture error")
