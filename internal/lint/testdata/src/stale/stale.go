// Package stalefix exercises stale-directive detection: an eligible
// directive that suppressed nothing in a full run is itself a finding,
// while a directive naming an analyzer whose scope excludes this package
// is left alone — a scope-limited run must not declare it stale.
package stalefix

// boom carries a used suppression: nopanic fires on the panic and the
// ignore consumes it.
func boom() {
	//lint:ignore nopanic fixture: the suppression is exercised
	panic("boom")
}

// calm carries an ignore that suppresses nothing: stale.
func calm() int {
	// want+1 lint
	//lint:ignore nopanic fixture: nothing left to suppress
	return 1
}

// outOfScope names an analyzer that does not cover this package: silent.
func outOfScope() {
	//lint:ignore lockhold fixture: lockhold does not apply to this package
	_ = 0
}

// checkInvariant panics behind a reasoned invariant: the directive is
// consulted and therefore used.
func checkInvariant(n int) {
	if n < 0 {
		//lint:invariant fixture: negative n is a programmer error
		panic("negative")
	}
}

// noPanicHere carries an invariant never matched by any panic: stale.
//
// want+2 lint
//
//lint:invariant fixture: never matched by any panic
func noPanicHere() {}
