// Package servefix models lock-ordering discipline: two functions that
// acquire the same pair of locks in opposite orders form a deadlock-risk
// cycle; a pair acquired consistently — even through a helper — does not.
package servefix

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

type C struct{ mu sync.Mutex }

type D struct{ mu sync.Mutex }

type pair struct {
	a *A
	b *B
	c *C
	d *D
}

// lockAB takes A then B; lockBA takes B then A. Together they form the
// cycle, reported once at its lexicographically first edge.
func (p *pair) lockAB() {
	p.a.mu.Lock()
	p.b.mu.Lock() // want lockorder
	p.b.mu.Unlock()
	p.a.mu.Unlock()
}

func (p *pair) lockBA() {
	p.b.mu.Lock()
	p.a.mu.Lock()
	p.a.mu.Unlock()
	p.b.mu.Unlock()
}

// lockCD orders C before D consistently: clean.
func (p *pair) lockCD() {
	p.c.mu.Lock()
	p.d.mu.Lock()
	p.d.mu.Unlock()
	p.c.mu.Unlock()
}

// lockCViaHelper acquires D through a helper while holding C: the
// interprocedural edge agrees with lockCD's order, still clean.
func (p *pair) lockCViaHelper() {
	p.c.mu.Lock()
	p.helperD()
	p.c.mu.Unlock()
}

func (p *pair) helperD() {
	p.d.mu.Lock()
	p.d.mu.Unlock()
}
