// Package goleakfix models goroutine lifecycle discipline: every go
// statement needs a cancellation path — a select, a channel receive, a
// range over a channel, or a context flowing in — or a reasoned ignore.
package goleakfix

import "context"

type worker struct {
	jobs chan int
	stop chan struct{}
}

func process(int) {}

// spin has no way to stop: it leaks when its owner shuts down.
func (w *worker) spin() {
	go func() { // want goleak
		for {
			process(0)
		}
	}()
}

// drain ranges over a channel: closing the channel stops it.
func (w *worker) drain() {
	go func() {
		for j := range w.jobs {
			process(j)
		}
	}()
}

// selectLoop selects on a stop channel.
func (w *worker) selectLoop() {
	go func() {
		for {
			select {
			case j := <-w.jobs:
				process(j)
			case <-w.stop:
				return
			}
		}
	}()
}

// withContext hands the goroutine a context: cancelable through run's
// summary and through the context-typed argument itself.
func (w *worker) withContext(ctx context.Context) {
	go w.run(ctx)
}

func (w *worker) run(ctx context.Context) {
	<-ctx.Done()
}

// named spawns a named function with no cancellation path: the summary
// carries the answer across the call.
func (w *worker) named() {
	go w.spinForever() // want goleak
}

func (w *worker) spinForever() {
	for {
		process(1)
	}
}

// blessed documents an intentionally unbounded goroutine.
func (w *worker) blessed() {
	//lint:ignore goleak fixture: goroutine lifetime equals process lifetime by design
	go w.spinForever()
}
