// Package fsyncfix models the WAL durability protocol: fsync the staged
// file before renaming it into place, fsync the directory after entry
// mutations, and append to the journal before applying in memory.
package fsyncfix

type file interface {
	Write([]byte) (int, error)
	Sync() error
	Close() error
}

type dirFS interface {
	Create(string) (file, error)
	Rename(string, string) error
	Remove(string) error
	SyncDir(string) error
}

// Log stands in for the WAL journal.
type Log struct{}

// Append journals one record.
func (l *Log) Append(b []byte) error { return nil }

type state struct {
	fs  dirFS
	log *Log
	n   int
}

// publishGood follows the protocol: sync the staged file, rename, sync the
// directory. The discarded Remove is best-effort cleanup and exempt.
func (s *state) publishGood(dir, tmp, final string, b []byte) error {
	f, err := s.fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		_ = s.fs.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		return err
	}
	return s.fs.SyncDir(dir)
}

// publishUnsynced renames bytes that were never fsynced: a crash can
// surface an empty published file.
func (s *state) publishUnsynced(dir, tmp, final string, b []byte) error {
	f, err := s.fs.Create(tmp)
	if err != nil {
		return err
	}
	_, _ = f.Write(b)
	_ = f.Close()
	if err := s.fs.Rename(tmp, final); err != nil { // want fsyncorder
		return err
	}
	return s.fs.SyncDir(dir)
}

// publishMaybeSynced fsyncs on only one branch: the must-analysis keeps
// the path that skipped it.
func (s *state) publishMaybeSynced(dir, tmp, final string, b []byte, fast bool) error {
	f, err := s.fs.Create(tmp)
	if err != nil {
		return err
	}
	_, _ = f.Write(b)
	if !fast {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	if err := s.fs.Rename(tmp, final); err != nil { // want fsyncorder
		return err
	}
	return s.fs.SyncDir(dir)
}

// renameNoDirSync persists the file but never the directory entry.
func (s *state) renameNoDirSync(tmp, final string, f file) error {
	if err := f.Sync(); err != nil {
		return err
	}
	return s.fs.Rename(tmp, final) // want fsyncorder
}

// removeChecked checks the remove error — claiming durability — but never
// syncs the directory.
func (s *state) removeChecked(path string) error {
	if err := s.fs.Remove(path); err != nil { // want fsyncorder
		return err
	}
	s.n++
	return nil
}

// removeBestEffort discards the error: exempt cleanup.
func (s *state) removeBestEffort(path string) {
	_ = s.fs.Remove(path)
}

// helperSync performs the directory barrier for its callers: the summary
// satisfies them at the call site.
func (s *state) helperSync(dir string) error { return s.fs.SyncDir(dir) }

func (s *state) renameViaHelper(tmp, final, dir string, f file) error {
	if err := f.Sync(); err != nil {
		return err
	}
	if err := s.fs.Rename(tmp, final); err != nil {
		return err
	}
	return s.helperSync(dir)
}

// applyThenJournal mutates memory before the WAL records the write: a
// crash in between loses a write readers already observed.
func (s *state) applyThenJournal(b []byte) error {
	s.applyLocked(b) // want fsyncorder
	return s.log.Append(b)
}

// journalThenApply is the correct order.
func (s *state) journalThenApply(b []byte) error {
	if err := s.log.Append(b); err != nil {
		return err
	}
	s.applyLocked(b)
	return nil
}

func (s *state) applyLocked(b []byte) { s.n += len(b) }
