// Package floatguard is a golden fixture for the floatguard analyzer.
package floatguard

// EqBad compares two non-constant floats for equality.
func EqBad(a, b float64) bool {
	return a == b // want floatguard
}

// NeqBad is the inverse form.
func NeqBad(a, b float64) bool {
	return a != b // want floatguard
}

// EqConst is the sanctioned zero-guard idiom.
func EqConst(a float64) bool {
	return a == 0
}

// DivBad divides with no visible guard on the denominator.
func DivBad(num, den float64) float64 {
	return num / den // want floatguard
}

// DivGuarded compares the denominator before dividing.
func DivGuarded(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// DivByLen normalizes by a length that is never checked.
func DivByLen(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs)) // want floatguard
}

// DivByLenGuarded checks the length first; the guard and the division name
// the same slice.
func DivByLenGuarded(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// DivAssignBad uses the compound form with an unguarded denominator.
func DivAssignBad(vals []float64, norm float64) {
	for i := range vals {
		vals[i] /= norm // want floatguard
	}
}

// NonzeroLiteral denominators are poles only by deliberate choice.
func NonzeroLiteral(x, y float64) float64 {
	return x / (1 + y)
}

// ConstDiv divides by a compile-time constant.
func ConstDiv(x float64) float64 {
	const scale = 2.5
	return x / scale
}

// SuppressedDiv carries a reasoned ignore.
func SuppressedDiv(x, y float64) float64 {
	//lint:ignore floatguard fixture exercises the suppression path
	return x / y
}
