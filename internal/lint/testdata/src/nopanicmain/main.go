// Command nopanicmain is a golden fixture: package main is exempt from the
// nopanic analyzer — a CLI terminating on an impossible state crashes only
// itself.
package main

func main() {
	run()
}

func run() {
	panic("commands may crash")
}
