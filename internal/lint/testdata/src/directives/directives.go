// Package directives is a golden fixture for the directive checker:
// suppressions without a reason or an analyzer list are themselves findings,
// and a reasonless ignore does not suppress anything.
package directives

// MissingReason carries an ignore with no justification: the directive is
// reported and the panic stays reported.
//
// want+2 lint
//
//lint:ignore nopanic
func MissingReason() {
	panic("still reported") // want nopanic
}

// MissingInvariantReason marks an invariant without saying which one.
//
// want+2 lint
//
//lint:invariant
func MissingInvariantReason() {
	panic("still reported") // want nopanic
}

// MissingList does not say which analyzer it silences.
//
// want+2 lint
//
//lint:ignore
func MissingList() {}
