// Package nopanic is a golden fixture for the nopanic analyzer.
package nopanic

// Bad panics without justification.
func Bad(x int) int {
	if x < 0 {
		panic("negative input") // want nopanic
	}
	return x
}

// InlineInvariant documents the assert on the panic line.
func InlineInvariant(dims []int) {
	if len(dims) == 0 {
		panic("empty dims") //lint:invariant caller constructs dims non-empty by definition
	}
}

// DocInvariant documents the assert in the function doc.
//
//lint:invariant alignment is checked by the only constructor
func DocInvariant(n, m int) {
	if n != m {
		panic("misaligned")
	}
}

// Suppressed carries a reasoned ignore on the line above.
func Suppressed() {
	//lint:ignore nopanic exercising the suppression path in the fixture
	panic("suppressed")
}

// Shadowed calls a local function named panic, not the builtin.
func Shadowed() {
	panic := func(string) {}
	panic("not the builtin")
}
