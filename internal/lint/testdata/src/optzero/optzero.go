// Package optzero is a golden fixture for the optzero analyzer.
package optzero

// Options mirrors the shape the analyzer enforces on er.Options and
// core.Options.
type Options struct {
	// Alpha blends structural and textual similarity; zero keeps the
	// paper's default of 0.5.
	Alpha float64

	// Seed seeds the kernels for the run.
	Seed int64 // want optzero

	Steps int // want optzero

	Eta float64 // zero selects the paper's decay 0.1

	// Verbose enables progress logging.
	Verbose bool

	Quiet bool

	//lint:ignore optzero fixture exercises the suppression path
	Workers int
}

// NotOptions is a struct with another name; the analyzer ignores it.
type NotOptions struct {
	Undocumented int
}
