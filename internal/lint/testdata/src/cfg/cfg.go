// Package cfgfix hosts the function shapes the CFG builder tests
// decompose: defer-unlock, early return, labeled break and continue,
// select, and type switch.
package cfgfix

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
	ch chan int
}

// deferUnlock is the canonical idiom: the unlock applies at exit.
func (g *guarded) deferUnlock() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// earlyReturn releases on the early path and leaks the lock on the late
// one: the may-analysis reports it held at exit.
func (g *guarded) earlyReturn(flag bool) int {
	g.mu.Lock()
	if flag {
		g.mu.Unlock()
		return 0
	}
	return g.n
}

// labeledLoops exercises labeled break and continue across two nested
// ranges.
func labeledLoops(xs [][]int) int {
	total := 0
outer:
	for i := range xs {
		for _, v := range xs[i] {
			if v < 0 {
				continue outer
			}
			if v == 0 {
				break outer
			}
			total += v
		}
	}
	return total
}

// selector exercises select decomposition inside an unconditional loop.
func (g *guarded) selector(stop chan struct{}) int {
	for {
		select {
		case v := <-g.ch:
			return v
		case <-stop:
			return 0
		}
	}
}

// typeSwitch exercises type-switch decomposition with a default clause.
func typeSwitch(v any) int {
	switch x := v.(type) {
	case int:
		return x
	case string:
		return len(x)
	default:
		return 0
	}
}
