// Package walfix models the PR 6 bug class: blocking operations performed
// while a mutex is held. The store lock wrapping an fsync is the exact
// shape that review caught by hand — every concurrent reader became a disk
// wait.
package walfix

import (
	"os"
	"sync"
)

type journal struct {
	mu sync.Mutex
	f  *os.File
}

// sealLocked is the blessed barrier: the one designed fsync under the
// journal lock. The suppression on the primitive excludes it from the
// interprocedural summary, so callers stay clean without their own
// directives.
func (j *journal) sealLocked() error {
	//lint:ignore lockhold fixture: the one designed fsync under the journal lock
	return j.f.Sync()
}

type store struct {
	mu  sync.Mutex
	f   *os.File
	ch  chan error
	log *journal
}

// appendDirect reproduces the PR 6 finding: an fsync while the store mutex
// is held.
func (s *store) appendDirect(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(b); err != nil { // buffered write: fine under the lock
		return err
	}
	return s.f.Sync() // want lockhold
}

// fsyncAll is a helper whose fsync is not blessed.
func (s *store) fsyncAll() error { return s.f.Sync() }

// appendViaHelper blocks through a call: the summary carries the fsync up
// to the call site.
func (s *store) appendViaHelper(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = s.f.Write(b)
	return s.fsyncAll() // want lockhold
}

// appendBlessed calls the suppressed barrier: one reviewed reason on the
// primitive, no suppression cascade up the call chain.
func (s *store) appendBlessed() error {
	s.log.mu.Lock()
	defer s.log.mu.Unlock()
	return s.log.sealLocked()
}

// appendOutside moves the fsync outside the critical section: clean.
func (s *store) appendOutside(b []byte) error {
	s.mu.Lock()
	_, err := s.f.Write(b)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.f.Sync()
}

// notifyUnderLock sends on a channel while holding the lock: the receiver
// decides when the critical section ends.
func (s *store) notifyUnderLock(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- err // want lockhold
}

// nudge uses a select with a default: it never parks, so holding the lock
// across it is fine.
func (s *store) nudge() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- nil:
	default:
	}
}

// waitUnderLock parks on a select with no default while holding the lock.
func (s *store) waitUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want lockhold
	case err := <-s.ch:
		return err
	}
}
