// Package hotallocfix seeds an allocation regression into a copy of the
// fusion-product arena path: the bad variant re-allocates its scratch
// buffers once per row, the good variant hoists them, and an unannotated
// function allocates freely without complaint.
package hotallocfix

type edge struct {
	Row, Col int32
	Val      float64
}

type arena struct {
	f64 [][]float64
}

// getF64 mirrors the real arena getter: the frees-list scan runs in a
// loop, but every allocation sits at loop depth zero.
//
//lint:hotpath fixture: mirrors the real arena getter
func (a *arena) getF64(n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	for k := len(a.f64) - 1; k >= 0; k-- {
		if cap(a.f64[k]) >= n {
			b := a.f64[k][:n]
			a.f64 = a.f64[:len(a.f64)-1]
			for i := range b {
				b[i] = 0
			}
			return b
		}
	}
	return make([]float64, n)
}

// fusionRowsBad is the seeded regression: scratch state allocated once per
// row instead of once per call.
//
//lint:hotpath fixture: seeded per-row allocation regression
func fusionRowsBad(rows [][]edge, p []float64) []float64 {
	out := make([]float64, len(p))
	for r := range rows {
		scratch := make([]float64, len(p)) // want hotalloc
		acc := map[int32]float64{}         // want hotalloc
		for _, e := range rows[r] {
			acc[e.Col] += e.Val // want hotalloc
		}
		for c, v := range acc {
			scratch[c] = v
		}
		tmp := edge{Row: int32(r)} // want hotalloc
		_ = tmp
		grown := append(scratch, 0) // want hotalloc
		_ = grown
		f := func() float64 { return p[r] } // want hotalloc
		out[r] = f()
	}
	return out
}

// fusionRowsGood hoists every buffer out of the loop: allocation-free
// steady state.
//
//lint:hotpath fixture: allocation-free steady state
func fusionRowsGood(rows [][]edge, p []float64, scratch []float64) []float64 {
	out := make([]float64, len(p))
	for r := range rows {
		for i := range scratch {
			scratch[i] = 0
		}
		for _, e := range rows[r] {
			scratch[e.Col] += e.Val
		}
		out[r] = scratch[r]
	}
	return out
}

// unannotated allocates freely: not a hot path, not hotalloc's business.
func unannotated(n int) []float64 {
	var out []float64
	for i := 0; i < n; i++ {
		out = append(out, float64(i))
	}
	return out
}
