package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// optZeroPackages hold the Options structs whose zero values are API
// surface: the public er.Options, the internal core.Options it lowers
// into, and the daemon's serve.Options (whose zero value must boot a
// working server).
var optZeroPackages = map[string]bool{
	"repro":                true,
	"repro/internal/core":  true,
	"repro/internal/serve": true,
	// wal.Options is configured from serve.Options field by field; its
	// zero values (fsync-per-append, default segment size) are the safety
	// defaults and must stay documented.
	"repro/internal/wal": true,
}

// zeroDocPattern recognizes a documented zero-value behavior. It accepts
// the vocabulary the existing fields use — "zero", "default", "nil",
// "unset", "empty", "omitted" — plus the "0 disables/means/selects/..."
// phrasing, while not being fooled by decimal constants like 0.98.
var zeroDocPattern = regexp.MustCompile(`(?i)\bzero\b|\bdefault\b|\bnil\b|\bunset\b|\bempty\b|\bomitted\b|\b0 (disables|means|keeps|selects|is|enables|leaves|relies|reproduces)\b`)

// OptZero returns the analyzer enforcing Options hygiene: every non-bool
// field of er.Options and core.Options must carry a doc comment that states
// what the zero value does. The zero value is the one configuration every
// caller who forgets a field silently runs with — "A zero Seed selects the
// default seed 1" is API, not prose. Bool fields are exempt: false is the
// documented feature-off state by Go convention.
func OptZero() *Analyzer {
	return &Analyzer{
		Name:    "optzero",
		Scope:   "repro, internal/{core,serve}",
		Doc:     "every Options field documents its zero-value behavior in its doc comment",
		Applies: func(pkgPath string) bool { return optZeroPackages[pkgPath] },
		Run:     runOptZero,
	}
}

func runOptZero(p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "Options" {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				out = append(out, checkOptionsFields(p, st)...)
			}
		}
	}
	return out
}

func checkOptionsFields(p *Package, st *ast.StructType) []Finding {
	var out []Finding
	for _, field := range st.Fields.List {
		if len(field.Names) == 0 {
			continue // embedded field: documented by its own type
		}
		if isBoolField(p, field.Type) {
			continue
		}
		doc := fieldDoc(field)
		names := make([]string, 0, len(field.Names))
		for _, n := range field.Names {
			names = append(names, n.Name)
		}
		name := strings.Join(names, ", ")
		switch {
		case doc == "":
			out = append(out, Finding{
				Analyzer: "optzero",
				Pos:      p.Fset.Position(field.Pos()),
				Message:  "Options field " + name + " has no doc comment; document what the zero value does",
			})
		case !zeroDocPattern.MatchString(doc):
			out = append(out, Finding{
				Analyzer: "optzero",
				Pos:      p.Fset.Position(field.Pos()),
				Message:  "Options field " + name + " does not document its zero-value behavior (say what zero/nil/unset selects)",
			})
		}
	}
	return out
}

// isBoolField reports whether the field's type is boolean.
func isBoolField(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsBoolean != 0
}

// fieldDoc joins a field's doc comment and trailing line comment.
func fieldDoc(field *ast.Field) string {
	var parts []string
	if field.Doc != nil {
		parts = append(parts, field.Doc.Text())
	}
	if field.Comment != nil {
		parts = append(parts, field.Comment.Text())
	}
	return strings.TrimSpace(strings.Join(parts, " "))
}
