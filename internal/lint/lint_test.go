package lint_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
)

// Fixture packages live under testdata/src (which both the go tool and the
// loader's Discover skip) and are loaded under synthetic import paths chosen
// to satisfy each analyzer's Applies scope. Expected findings are declared
// in the fixtures themselves with trailing markers:
//
//	// want <analyzer> [<analyzer>...]   findings on this line
//	// want+N <analyzer>                 findings N lines below
//
// The want+N form exists for lines that cannot carry a second comment, such
// as //lint: directives whose own malformedness is the finding.
var wantMarker = regexp.MustCompile(`// want(\+\d+)? ([a-z][a-z, ]*)$`)

// loadFixture type-checks one fixture package under the given import path.
// Each fixture gets a fresh loader so two fixtures may claim the same
// synthetic path without colliding in the cache.
func loadFixture(t *testing.T, name, asPath string) *lint.Package {
	t.Helper()
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	p, err := loader.LoadDir(filepath.Join("testdata", "src", name), asPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return p
}

// expectedFindings scans a fixture directory for want markers and returns a
// multiset keyed "file:line:analyzer".
func expectedFindings(t *testing.T, name string) map[string]int {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	want := make(map[string]int)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantMarker.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			target := i + 1 // 1-based line of the marker itself
			if m[1] != "" {
				n, err := strconv.Atoi(m[1][1:])
				if err != nil {
					t.Fatalf("bad want marker %q in %s", line, e.Name())
				}
				target += n
			}
			for _, a := range strings.Fields(strings.ReplaceAll(m[2], ",", " ")) {
				want[fmt.Sprintf("%s:%d:%s", e.Name(), target, a)]++
			}
		}
	}
	return want
}

// checkFixture runs the analyzers over the fixture and compares the
// surviving findings against the want markers.
func checkFixture(t *testing.T, name, asPath string, analyzers ...*lint.Analyzer) {
	t.Helper()
	p := loadFixture(t, name, asPath)
	findings := lint.Run([]*lint.Package{p}, analyzers)
	got := make(map[string]int)
	for _, f := range findings {
		got[fmt.Sprintf("%s:%d:%s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Analyzer)]++
	}
	want := expectedFindings(t, name)
	for key, n := range want {
		if got[key] != n {
			t.Errorf("fixture %s: want %d finding(s) at %s, got %d", name, n, key, got[key])
		}
	}
	for key, n := range got {
		if want[key] != n {
			t.Errorf("fixture %s: unexpected finding at %s (x%d)", name, key, n)
		}
	}
	if t.Failed() {
		for _, f := range findings {
			t.Logf("  %s", f)
		}
	}
}

func TestNoPanicFixture(t *testing.T) {
	checkFixture(t, "nopanic", "fixture/nopanic", lint.NoPanic())
}

func TestNoPanicMainExempt(t *testing.T) {
	checkFixture(t, "nopanicmain", "fixture/nopanicmain", lint.NoPanic())
}

func TestGuardLoopFixture(t *testing.T) {
	checkFixture(t, "guardloop", "repro/internal/baselines", lint.GuardLoop())
}

func TestDeterminismFixture(t *testing.T) {
	checkFixture(t, "determinism", "repro/internal/core", lint.Determinism())
}

func TestFloatGuardFixture(t *testing.T) {
	checkFixture(t, "floatguard", "repro/internal/core", lint.FloatGuard())
}

func TestErrWrapFixture(t *testing.T) {
	checkFixture(t, "errwrap", "repro", lint.ErrWrap())
}

func TestOptZeroFixture(t *testing.T) {
	checkFixture(t, "optzero", "repro/internal/core", lint.OptZero())
}

func TestDirectiveFindings(t *testing.T) {
	checkFixture(t, "directives", "fixture/directives", lint.NoPanic())
}

func TestLockHoldFixture(t *testing.T) {
	checkFixture(t, "lockhold", "repro/internal/wal", lint.LockHold())
}

func TestLockOrderFixture(t *testing.T) {
	checkFixture(t, "lockorder", "repro/internal/serve", lint.LockOrder())
}

func TestGoLeakFixture(t *testing.T) {
	checkFixture(t, "goleak", "fixture/goleak", lint.GoLeak())
}

func TestFsyncOrderFixture(t *testing.T) {
	checkFixture(t, "fsyncorder", "repro/internal/wal", lint.FsyncOrder())
}

func TestHotAllocFixture(t *testing.T) {
	checkFixture(t, "hotalloc", "repro/internal/core", lint.HotAlloc())
}

// TestStaleDirectiveFixture runs the full suite so every directive in the
// fixture is eligible for staleness: used ones stay silent, unexercised
// ones fire, and one naming an analyzer that does not cover the package is
// left alone.
func TestStaleDirectiveFixture(t *testing.T) {
	checkFixture(t, "stale", "repro/internal/core", lint.All()...)
}

// TestAppliesScoping pins each analyzer's package scope: running the full
// suite on a fixture must only ever produce findings from analyzers whose
// Applies accepts the fixture's path.
func TestAppliesScoping(t *testing.T) {
	p := loadFixture(t, "floatguard", "repro/internal/textproc")
	findings := lint.Run([]*lint.Package{p}, []*lint.Analyzer{lint.FloatGuard()})
	if len(findings) != 0 {
		t.Errorf("floatguard ran outside repro/internal/core: %v", findings)
	}
}

// TestDiscoverSkipsTestdata pins the walker's ./... semantics.
func TestDiscoverSkipsTestdata(t *testing.T) {
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	paths, err := loader.Discover()
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	seen := make(map[string]bool, len(paths))
	for _, p := range paths {
		if strings.Contains(p, "testdata") {
			t.Errorf("Discover returned a testdata package: %s", p)
		}
		seen[p] = true
	}
	for _, must := range []string{"repro", "repro/internal/core", "repro/internal/lint", "repro/cmd/erlint"} {
		if !seen[must] {
			t.Errorf("Discover missed %s (got %v)", must, paths)
		}
	}
	if !sort.StringsAreSorted(paths) {
		t.Errorf("Discover output not sorted: %v", paths)
	}
}

// TestRepoIsClean is the acceptance gate: the committed tree must lint
// clean, so any PR that introduces a violation fails the ordinary go test
// run even before CI invokes the erlint binary.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	loader, err := lint.NewLoader(".")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	paths, err := loader.Discover()
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	var pkgs []*lint.Package
	for _, path := range paths {
		p, err := loader.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		pkgs = append(pkgs, p)
	}
	findings := lint.Run(pkgs, lint.All())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Errorf("%d finding(s); fix or suppress with a reasoned //lint:ignore", len(findings))
	}
}
