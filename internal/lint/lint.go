// Package lint implements erlint, the repository's static-analysis suite.
// Each analyzer mechanically enforces one invariant the resolution pipeline
// depends on but the compiler cannot check.
//
// Six analyzers are syntactic, per package: panics stay behind the public
// recovery boundary (nopanic), hot loops remain cancellable (guardloop),
// kernels stay deterministic (determinism), float arithmetic in the fusion
// loop stays guarded against poles and NaN traps (floatguard), errors
// crossing the public API wrap the taxonomy (errwrap), and every Options
// field documents its zero value (optzero).
//
// Five analyzers are flow-aware, built on per-function control-flow graphs
// (cfg.go), an abstract lock-state lattice (lockstate.go) and interprocedural
// call-graph summaries (facts.go): no blocking operation while a mutex is
// held (lockhold), a cycle-free cross-package lock acquisition order
// (lockorder), a cancellation path for every spawned goroutine (goleak), the
// WAL durability protocol — fsync before rename, directory fsync after entry
// mutations, journal append before in-memory apply (fsyncorder) — and no
// loop allocations in //lint:hotpath-annotated kernels (hotalloc).
//
// Findings are suppressed per line with a mandatory reason:
//
//	//lint:ignore <analyzer>[,<analyzer>] <reason>
//
// on the offending line or the line directly above it. Intentional
// programmer-error asserts are marked with the nopanic-specific form
//
//	//lint:invariant <reason>
//
// on the panic itself or in the enclosing function's doc comment, and hot
// kernels opt into the allocation discipline with
//
//	//lint:hotpath <reason>
//
// in the function's doc comment. A directive without a reason is itself a
// finding: unexplained suppressions rot into unreviewable noise. So is a
// stale directive — one that suppressed nothing in a run that included every
// analyzer it names: a suppression that outlives its finding hides the next
// real one at the same spot.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation at a source position.
type Finding struct {
	// Analyzer names the rule that fired.
	Analyzer string `json:"analyzer"`
	// Pos locates the violation.
	Pos token.Position `json:"pos"`
	// Message explains the violation and the expected fix.
	Message string `json:"message"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one named rule over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in findings, -enable/-disable flags and
	// //lint:ignore directives.
	Name string
	// Doc is a one-line description for the driver's usage output.
	Doc string
	// Scope is a one-line human description of where the analyzer applies
	// ("module-wide", "internal/{serve,wal,engine}", ...), for -list output.
	Scope string
	// Applies reports whether the analyzer covers the package; nil means
	// every package. Scoping lives here (not in the driver) so the fixture
	// tests and the driver cannot disagree about coverage. Module analyzers
	// are filtered by the package owning each finding's file.
	Applies func(pkgPath string) bool
	// Run inspects one package and returns raw findings; the runner applies
	// suppressions afterwards. Exactly one of Run and RunModule is set.
	Run func(p *Package) []Finding
	// RunModule inspects the whole run at once over the interprocedural
	// program view — the flow-aware analyzers need call-graph summaries
	// that cross package boundaries.
	RunModule func(prog *program) []Finding
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		NoPanic(),
		GuardLoop(),
		Determinism(),
		FloatGuard(),
		ErrWrap(),
		OptZero(),
		LockHold(),
		LockOrder(),
		GoLeak(),
		FsyncOrder(),
		HotAlloc(),
	}
}

// Run executes the analyzers over the packages, applies //lint:ignore
// suppressions, reports malformed and stale directives, and returns the
// surviving findings sorted by position. Module-level analyzers see every
// package at once (their facts cross package boundaries); their findings
// are attributed to the package owning the file and filtered through that
// package's Applies scope and suppressions.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	for _, p := range pkgs {
		p.resetDirectives()
	}
	var prog *program
	for _, a := range analyzers {
		if a.RunModule != nil {
			prog = newProgram(pkgs)
			break
		}
	}
	var out []Finding
	for _, p := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil || (a.Applies != nil && !a.Applies(p.Path)) {
				continue
			}
			for _, f := range a.Run(p) {
				if !p.suppressed(a.Name, f.Pos) {
					out = append(out, f)
				}
			}
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		for _, f := range a.RunModule(prog) {
			p := prog.fileOf[f.Pos.Filename]
			if p == nil || (a.Applies != nil && !a.Applies(p.Path)) {
				continue
			}
			if !p.suppressed(a.Name, f.Pos) {
				out = append(out, f)
			}
		}
	}
	for _, p := range pkgs {
		out = append(out, p.directiveErrors()...)
		out = append(out, p.staleFindings(analyzers)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// directive is one parsed //lint: comment.
type directive struct {
	// kind is "ignore", "invariant" or "hotpath".
	kind string
	// analyzers lists the analyzer names an ignore covers (nil for
	// invariant and hotpath, which bind to single analyzers by definition).
	analyzers []string
	// reason is the mandatory justification.
	reason string
	// pos is the directive's own position.
	pos token.Position
	// used records whether the directive had any effect during the current
	// run; an eligible directive that stays unused is itself a finding.
	used bool
}

// parseDirective parses the text following "//lint:" into a directive, or
// reports ok=false for an unknown kind. Split out from buildSuppressions so
// the fuzzer can drive the parser directly.
func parseDirective(text string) (*directive, bool) {
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return nil, false
	}
	d := &directive{kind: fields[0]}
	switch d.kind {
	case "ignore":
		if len(fields) > 1 {
			d.analyzers = strings.Split(fields[1], ",")
		}
		if len(fields) > 2 {
			d.reason = strings.Join(fields[2:], " ")
		}
	case "invariant", "hotpath":
		if len(fields) > 1 {
			d.reason = strings.Join(fields[1:], " ")
		}
	default:
		return nil, false
	}
	return d, true
}

// buildSuppressions indexes every //lint: directive by file and line.
func (p *Package) buildSuppressions() {
	p.suppressions = make(map[string][]*directive)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				d, ok := parseDirective(text)
				if !ok {
					continue
				}
				d.pos = p.Fset.Position(c.Pos())
				p.suppressions[d.pos.Filename] = append(p.suppressions[d.pos.Filename], d)
			}
		}
	}
}

// resetDirectives clears the used flags before a run (packages are cached
// by the loader and may be linted more than once).
func (p *Package) resetDirectives() {
	for _, ds := range p.suppressions {
		for _, d := range ds {
			d.used = false
		}
	}
}

// suppressed reports whether a finding at pos is covered by an ignore
// directive for the analyzer on the same line or the line directly above,
// marking the directive used.
func (p *Package) suppressed(analyzer string, pos token.Position) bool {
	for _, d := range p.suppressions[pos.Filename] {
		if d.kind != "ignore" || d.reason == "" {
			continue
		}
		if d.pos.Line != pos.Line && d.pos.Line != pos.Line-1 {
			continue
		}
		for _, a := range d.analyzers {
			if a == analyzer {
				d.used = true
				return true
			}
		}
	}
	return false
}

// invariantAt reports whether a //lint:invariant directive with a reason
// covers pos: same line, the line directly above, or the doc comment of the
// enclosing function (fn may be nil). Matching directives are marked used.
func (p *Package) invariantAt(pos token.Position, fn *ast.FuncDecl) bool {
	for _, d := range p.suppressions[pos.Filename] {
		if d.kind != "invariant" || d.reason == "" {
			continue
		}
		if d.pos.Line == pos.Line || d.pos.Line == pos.Line-1 {
			d.used = true
			return true
		}
	}
	if fn != nil && fn.Doc != nil {
		start := p.Fset.Position(fn.Doc.Pos())
		end := p.Fset.Position(fn.Doc.End())
		for _, d := range p.suppressions[start.Filename] {
			if d.kind == "invariant" && d.reason != "" && d.pos.Line >= start.Line && d.pos.Line <= end.Line {
				d.used = true
				return true
			}
		}
	}
	return false
}

// hotpathFor returns the //lint:hotpath directive in fn's doc comment, or
// nil. The directive is marked used: an annotation the hotalloc analyzer
// actually consulted is doing its job even when no finding results.
func (p *Package) hotpathFor(fn *ast.FuncDecl) *directive {
	if fn == nil || fn.Doc == nil {
		return nil
	}
	start := p.Fset.Position(fn.Doc.Pos())
	end := p.Fset.Position(fn.Doc.End())
	for _, d := range p.suppressions[start.Filename] {
		if d.kind == "hotpath" && d.pos.Line >= start.Line && d.pos.Line <= end.Line {
			d.used = true
			return d
		}
	}
	return nil
}

// staleFindings reports directives that had no effect in this run even
// though every analyzer they bind to ran on this package. A partial run
// (-enable some-analyzer) never declares other analyzers' directives stale.
func (p *Package) staleFindings(analyzers []*Analyzer) []Finding {
	byName := make(map[string]*Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	ranHere := func(name string) bool {
		a, ok := byName[name]
		return ok && (a.Applies == nil || a.Applies(p.Path))
	}
	var out []Finding
	for _, ds := range p.suppressions {
		for _, d := range ds {
			if d.used || d.reason == "" {
				continue // malformed directives are directiveErrors' findings
			}
			eligible := false
			switch d.kind {
			case "ignore":
				eligible = len(d.analyzers) > 0
				for _, name := range d.analyzers {
					eligible = eligible && ranHere(name)
				}
			case "invariant":
				eligible = ranHere("nopanic")
			case "hotpath":
				eligible = ranHere("hotalloc")
			}
			if eligible {
				out = append(out, Finding{Analyzer: "lint", Pos: d.pos,
					Message: fmt.Sprintf("stale //lint:%s directive: it suppressed nothing in this run; delete it", d.kind)})
			}
		}
	}
	return out
}

// directiveErrors reports malformed directives: ignore/invariant without a
// reason, and ignore without an analyzer list. These are always findings —
// a suppression that does not say what it silences or why cannot be
// reviewed.
func (p *Package) directiveErrors() []Finding {
	var out []Finding
	for _, ds := range p.suppressions {
		for _, d := range ds {
			switch {
			case d.kind == "ignore" && len(d.analyzers) == 0:
				out = append(out, Finding{Analyzer: "lint", Pos: d.pos,
					Message: "//lint:ignore needs an analyzer list: //lint:ignore <analyzer> <reason>"})
			case d.reason == "":
				out = append(out, Finding{Analyzer: "lint", Pos: d.pos,
					Message: fmt.Sprintf("//lint:%s needs a reason", d.kind)})
			}
		}
	}
	return out
}

// --- shared AST helpers used by several analyzers ---

// enclosingFunc returns the innermost FuncDecl whose body spans pos, or nil.
func enclosingFunc(f *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range f.Decls {
		if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil && fn.Body.Pos() <= pos && pos <= fn.Body.End() {
			return fn
		}
	}
	return nil
}

// importedCallee resolves a call of the form pkg.Fn to the imported
// package's path and the function name. It returns ok=false for local
// calls, method calls and anything more complex.
func importedCallee(p *Package, call *ast.CallExpr) (pkgPath, fn string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	x, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := p.Info.Uses[x].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// methodReceiverType returns the fully-qualified type name ("pkgpath.Type")
// of the receiver of a method call, or "" when call is not a method call on
// a named type.
func methodReceiverType(p *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return ""
	}
	t := s.Recv()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + "." + named.Obj().Name()
}

// isFloat reports whether an expression has a floating-point type.
func isFloat(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// isConstant reports whether the type checker evaluated e to a constant.
func isConstant(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	return ok && tv.Value != nil
}
