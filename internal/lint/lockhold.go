package lint

import (
	"fmt"
	"go/ast"
)

// lockHoldPackages is the scope of the lock-hold analyzer: the stateful
// concurrent subsystems whose locks sit on request paths. Kernel packages
// hold no locks; the breadth there belongs to determinism/hotalloc.
var lockHoldPackages = map[string]bool{
	"repro/internal/serve":  true,
	"repro/internal/wal":    true,
	"repro/internal/engine": true,
	// The client guards its shared rand.Rand with a mutex on the retry
	// path; a sleep or network call under that lock would serialize every
	// concurrent request's backoff.
	"repro/internal/client": true,
	// The index itself is single-writer, but scoping it keeps any future
	// internal locking honest — a blocking call under an index lock would
	// stall every collection resolve behind it.
	"repro/internal/index": true,
}

// LockHold reports blocking operations performed while a sync.Mutex or
// sync.RWMutex is held: file and directory fsyncs, durability waits,
// channel operations, network I/O, and sleeps — the exact class of bug
// the PR 6 review caught by hand (an fsync under the store lock turns
// every concurrent reader into a disk wait). Facts propagate through
// module-internal calls, so holding a lock across a call whose callee
// eventually fsyncs is reported at the call site. A reasoned
// //lint:ignore lockhold on the blocking primitive itself blesses that
// operation for every caller (the group-commit barrier in the WAL is the
// canonical case) — one reviewed reason, no suppression cascade.
func LockHold() *Analyzer {
	return &Analyzer{
		Name:      "lockhold",
		Doc:       "no blocking operation (fsync, durability wait, channel op, network I/O, sleep) while a mutex is held",
		Scope:     "internal/{serve,wal,engine,client,index}",
		Applies:   func(pkgPath string) bool { return lockHoldPackages[pkgPath] },
		RunModule: lockHoldModule,
	}
}

func lockHoldModule(prog *program) []Finding {
	var out []Finding
	for _, fi := range prog.infos {
		p := fi.pkg
		walkHeld(p, fi.c, func(item ast.Node, held heldSet) {
			if len(held) == 0 {
				return
			}
			lock := held.sortedIDs()[0]
			acq := p.Fset.Position(held[lock])
			for _, op := range scanItem(p, fi.c, item) {
				switch {
				case op.blockDesc != "":
					out = append(out, Finding{Analyzer: "lockhold", Pos: p.Fset.Position(op.pos),
						Message: fmt.Sprintf("%s while %s is held (acquired at %s:%d); move the blocking operation outside the lock",
							op.blockDesc, lock, shortFile(acq.Filename), acq.Line)})
				case op.callee != nil:
					g, ok := prog.funcs[op.callee]
					if !ok || g.blocking == nil {
						continue
					}
					root := g.blocking.rootPos
					out = append(out, Finding{Analyzer: "lockhold", Pos: p.Fset.Position(op.pos),
						Message: fmt.Sprintf("call to %s blocks (%s at %s:%d) while %s is held (acquired at %s:%d)",
							op.calleeStr, g.blocking.desc, shortFile(root.Filename), root.Line,
							lock, shortFile(acq.Filename), acq.Line)})
				}
			}
		})
	}
	return out
}
