// Allocation pins for the scheduler fan-out. The race detector changes
// allocation behavior, so these run only in non-race builds (check.sh and
// CI run the package both ways).
//
//go:build !race

package parallel

import (
	"sync/atomic"
	"testing"
)

// TestForGrainFanOutAllocs pins the satellite-1 fix: a steady-state
// ForGrain invocation must not allocate at any worker count. Before the
// pooled forJob, every For call allocated one closure per worker plus the
// WaitGroup/atomic state, which is why CliqueRankProduct's allocs/op grew
// 40 → 200 → 280 at 1/2/4 workers.
func TestForGrainFanOutAllocs(t *testing.T) {
	var sink atomic.Int64
	body := func(lo, hi int) {
		sink.Add(int64(hi - lo))
	}
	for _, w := range []int{1, 2, 4} {
		// Warm the job pool (and the runtime's goroutine free list) before
		// measuring.
		for i := 0; i < 10; i++ {
			ForGrain(w, 1<<14, 256, body)
		}
		avg := testing.AllocsPerRun(50, func() {
			ForGrain(w, 1<<14, 256, body)
		})
		if avg > 1 {
			t.Errorf("workers=%d: ForGrain allocates %.1f allocs/op, want ≤1", w, avg)
		}
	}
}
