package parallel

import (
	"runtime"
	"sync"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, n := range []int{1, 2, 7, 64} {
		if got := Workers(n); got != n {
			t.Fatalf("Workers(%d) = %d", n, got)
		}
	}
}

// TestForCoversAllOnce asserts every index in [0, n) is visited exactly once
// for sizes around the chunk-grain boundaries and several worker counts.
func TestForCoversAllOnce(t *testing.T) {
	for _, n := range []int{0, 1, Grain - 1, Grain, Grain + 1, 3*Grain + 17, 10 * Grain} {
		for _, w := range []int{0, 1, 2, 3, 16} {
			visits := make([]int32, n)
			var mu sync.Mutex
			For(w, n, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("n=%d w=%d: bad chunk [%d,%d)", n, w, lo, hi)
				}
				mu.Lock()
				for i := lo; i < hi; i++ {
					visits[i]++
				}
				mu.Unlock()
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, v)
				}
			}
		}
	}
}

// TestForChunksAreFixed asserts chunk boundaries are a pure function of n:
// the same [lo, hi) set regardless of worker count.
func TestForChunksAreFixed(t *testing.T) {
	n := 5*Grain + 3
	ranges := func(w int) map[[2]int]bool {
		var mu sync.Mutex
		set := make(map[[2]int]bool)
		For(w, n, func(lo, hi int) {
			mu.Lock()
			set[[2]int{lo, hi}] = true
			mu.Unlock()
		})
		return set
	}
	serial := ranges(1)
	for _, w := range []int{2, 4, 9} {
		got := ranges(w)
		if len(got) != len(serial) {
			t.Fatalf("w=%d: %d chunks, serial has %d", w, len(got), len(serial))
		}
		for r := range serial {
			if !got[r] {
				t.Fatalf("w=%d: missing chunk %v", w, r)
			}
		}
	}
}

// TestForGrainCoversAllOnce asserts every index in [0, n) is visited
// exactly once for a spread of explicit grains, sizes around the chunk
// boundaries, and several worker counts.
func TestForGrainCoversAllOnce(t *testing.T) {
	for _, g := range []int{1, 3, 100, 4096} {
		for _, n := range []int{0, 1, g - 1, g, g + 1, 3*g + 1, 10 * g} {
			for _, w := range []int{0, 1, 2, 3, 16} {
				visits := make([]int32, n)
				var mu sync.Mutex
				ForGrain(w, n, g, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("g=%d n=%d w=%d: bad chunk [%d,%d)", g, n, w, lo, hi)
					}
					if hi-lo > g {
						t.Errorf("g=%d n=%d w=%d: oversize chunk [%d,%d)", g, n, w, lo, hi)
					}
					mu.Lock()
					for i := lo; i < hi; i++ {
						visits[i]++
					}
					mu.Unlock()
				})
				for i, v := range visits {
					if v != 1 {
						t.Fatalf("g=%d n=%d w=%d: index %d visited %d times", g, n, w, i, v)
					}
				}
			}
		}
	}
}

// TestForGrainChunksAreFixed asserts the chunk set is a pure function of
// (n, grain): identical for every worker count, and aligned to multiples
// of the grain.
func TestForGrainChunksAreFixed(t *testing.T) {
	n, g := 5*37+13, 37
	ranges := func(w int) map[[2]int]bool {
		var mu sync.Mutex
		set := make(map[[2]int]bool)
		ForGrain(w, n, g, func(lo, hi int) {
			mu.Lock()
			set[[2]int{lo, hi}] = true
			mu.Unlock()
		})
		return set
	}
	serial := ranges(1)
	for r := range serial {
		if r[0]%g != 0 {
			t.Fatalf("chunk %v not aligned to grain %d", r, g)
		}
	}
	for _, w := range []int{2, 4, 9} {
		got := ranges(w)
		if len(got) != len(serial) {
			t.Fatalf("w=%d: %d chunks, serial has %d", w, len(got), len(serial))
		}
		for r := range serial {
			if !got[r] {
				t.Fatalf("w=%d: missing chunk %v", w, r)
			}
		}
	}
}

// TestForGrainDegenerate pins the non-positive-grain fallback: the loop
// must still cover [0, n) exactly once.
func TestForGrainDegenerate(t *testing.T) {
	n := 17
	visits := make([]int32, n)
	ForGrain(1, n, 0, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			visits[i]++
		}
	})
	for i, v := range visits {
		if v != 1 {
			t.Fatalf("grain=0: index %d visited %d times", i, v)
		}
	}
}

func TestGrainFor(t *testing.T) {
	cases := []struct {
		n, work, target, want int
	}{
		{1000, 1000, 1, 1},             // one unit per item, one per chunk
		{1000, 1000, 10, 10},           // ten items per chunk
		{1000, 10_000, 100, 10},        // ten units per item
		{100, 10, 1000, 100},           // clamp to n
		{100, 1_000_000, 1, 1},         // clamp to 1
		{0, 100, 100, Grain},           // degenerate n
		{100, 0, 100, Grain},           // degenerate work
		{100, 100, 0, Grain},           // degenerate target
		{1 << 20, 1 << 40, 1 << 22, 4}, // no int overflow at large sizes
	}
	for _, c := range cases {
		if got := GrainFor(c.n, c.work, c.target); got != c.want {
			t.Errorf("GrainFor(%d, %d, %d) = %d, want %d", c.n, c.work, c.target, got, c.want)
		}
	}
}

// TestReduceSumBitIdentical asserts the reduction produces the exact same
// float64 bits for every worker count, on inputs adversarial to naive
// reassociation (alternating magnitudes).
func TestReduceSumBitIdentical(t *testing.T) {
	n := 7*Grain + 41
	vals := make([]float64, n)
	for i := range vals {
		// Mix of huge and tiny terms so any reassociation shows up in the
		// low bits of the sum.
		if i%2 == 0 {
			vals[i] = 1e16 / float64(i+1)
		} else {
			vals[i] = 1e-16 * float64(i)
		}
	}
	sum := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += vals[i]
		}
		return s
	}
	want := ReduceSum(1, n, sum)
	for _, w := range []int{0, 2, 3, 8} {
		for rep := 0; rep < 10; rep++ {
			if got := ReduceSum(w, n, sum); got != want {
				t.Fatalf("workers=%d rep=%d: sum %v != serial %v", w, rep, got, want)
			}
		}
	}
}

func TestReduceSumEmpty(t *testing.T) {
	if got := ReduceSum(4, 0, func(lo, hi int) float64 { return 1 }); got != 0 {
		t.Fatalf("empty reduction = %v, want 0", got)
	}
}

func TestPoolReuse(t *testing.T) {
	var p Pool
	b := p.Get(100)
	if len(b) != 100 {
		t.Fatalf("Get(100) len = %d", len(b))
	}
	b[0] = 42
	p.Put(b)
	c := p.Get(50)
	if len(c) != 50 {
		t.Fatalf("Get(50) len = %d", len(c))
	}
	p.Put(nil) // must not panic
	d := p.Get(200)
	if len(d) != 200 {
		t.Fatalf("Get(200) len = %d", len(d))
	}
}
