package parallel

import (
	"runtime"
	"sync"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, n := range []int{1, 2, 7, 64} {
		if got := Workers(n); got != n {
			t.Fatalf("Workers(%d) = %d", n, got)
		}
	}
}

// TestForCoversAllOnce asserts every index in [0, n) is visited exactly once
// for sizes around the chunk-grain boundaries and several worker counts.
func TestForCoversAllOnce(t *testing.T) {
	for _, n := range []int{0, 1, Grain - 1, Grain, Grain + 1, 3*Grain + 17, 10 * Grain} {
		for _, w := range []int{0, 1, 2, 3, 16} {
			visits := make([]int32, n)
			var mu sync.Mutex
			For(w, n, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("n=%d w=%d: bad chunk [%d,%d)", n, w, lo, hi)
				}
				mu.Lock()
				for i := lo; i < hi; i++ {
					visits[i]++
				}
				mu.Unlock()
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("n=%d w=%d: index %d visited %d times", n, w, i, v)
				}
			}
		}
	}
}

// TestForChunksAreFixed asserts chunk boundaries are a pure function of n:
// the same [lo, hi) set regardless of worker count.
func TestForChunksAreFixed(t *testing.T) {
	n := 5*Grain + 3
	ranges := func(w int) map[[2]int]bool {
		var mu sync.Mutex
		set := make(map[[2]int]bool)
		For(w, n, func(lo, hi int) {
			mu.Lock()
			set[[2]int{lo, hi}] = true
			mu.Unlock()
		})
		return set
	}
	serial := ranges(1)
	for _, w := range []int{2, 4, 9} {
		got := ranges(w)
		if len(got) != len(serial) {
			t.Fatalf("w=%d: %d chunks, serial has %d", w, len(got), len(serial))
		}
		for r := range serial {
			if !got[r] {
				t.Fatalf("w=%d: missing chunk %v", w, r)
			}
		}
	}
}

// TestReduceSumBitIdentical asserts the reduction produces the exact same
// float64 bits for every worker count, on inputs adversarial to naive
// reassociation (alternating magnitudes).
func TestReduceSumBitIdentical(t *testing.T) {
	n := 7*Grain + 41
	vals := make([]float64, n)
	for i := range vals {
		// Mix of huge and tiny terms so any reassociation shows up in the
		// low bits of the sum.
		if i%2 == 0 {
			vals[i] = 1e16 / float64(i+1)
		} else {
			vals[i] = 1e-16 * float64(i)
		}
	}
	sum := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += vals[i]
		}
		return s
	}
	want := ReduceSum(1, n, sum)
	for _, w := range []int{0, 2, 3, 8} {
		for rep := 0; rep < 10; rep++ {
			if got := ReduceSum(w, n, sum); got != want {
				t.Fatalf("workers=%d rep=%d: sum %v != serial %v", w, rep, got, want)
			}
		}
	}
}

func TestReduceSumEmpty(t *testing.T) {
	if got := ReduceSum(4, 0, func(lo, hi int) float64 { return 1 }); got != 0 {
		t.Fatalf("empty reduction = %v, want 0", got)
	}
}

func TestPoolReuse(t *testing.T) {
	var p Pool
	b := p.Get(100)
	if len(b) != 100 {
		t.Fatalf("Get(100) len = %d", len(b))
	}
	b[0] = 42
	p.Put(b)
	c := p.Get(50)
	if len(c) != 50 {
		t.Fatalf("Get(50) len = %d", len(c))
	}
	p.Put(nil) // must not panic
	d := p.Get(200)
	if len(d) != 200 {
		t.Fatalf("Get(200) len = %d", len(d))
	}
}
