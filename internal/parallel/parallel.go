// Package parallel is the repository's single deterministic chunked
// scheduler. Every data-parallel loop of the resolution pipeline — ITER's
// bipartite sweeps, CliqueRank's masked matrix powers, RSS edge sampling,
// the dense and sparse matrix kernels — fans out through this package, so
// there is exactly one place where the determinism argument has to hold:
//
//   - The index range [0, n) is split into fixed-size chunks of Grain
//     elements. Chunk boundaries depend only on n and the grain — never on
//     the worker count or GOMAXPROCS — so the set of fn(lo, hi) calls is
//     identical for every Workers setting.
//   - Workers race only for *which* chunk to run next (one atomic add), not
//     for how a chunk is computed. A kernel whose chunks write disjoint
//     state (out[lo:hi], a per-row slice) is therefore bit-identical serial
//     vs. parallel.
//   - Reductions never accumulate across goroutines: each chunk produces a
//     partial into its own slot and the partials are folded in ascending
//     chunk order after the barrier (ReduceSum), so floating-point rounding
//     is schedule-independent too.
//
// The erlint determinism analyzer includes this package in its kernel
// scope: no ambient time, environment, or process-seeded randomness.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Grain is the fixed chunk size, in elements (or rows), of every scheduled
// loop. It is deliberately a package constant rather than a knob: changing
// it changes the bracketing of chunked reductions, which would silently
// shift bit-identical results between versions. 256 elements amortize one
// goroutine handoff and one guard poll over enough work that even the
// cheapest per-element kernels (an add and a multiply) win from fanning
// out, while a sub-256 input stays on the caller's goroutine with no
// scheduling overhead at all.
const Grain = 256

// Workers resolves a worker-count knob: values below 1 (the zero value of
// the Workers options fields) select runtime.GOMAXPROCS(0), anything else
// is taken literally. The result is how many goroutines For may use, not a
// promise — small inputs use fewer.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// chunks returns the number of Grain-sized chunks covering [0, n).
func chunks(n int) int { return (n + Grain - 1) / Grain }

// For runs fn over [0, n) in fixed Grain-sized chunks using at most workers
// goroutines (workers < 1 selects GOMAXPROCS). fn is invoked once per chunk
// with a half-open range [lo, hi); the same chunk set is produced for every
// worker count, so kernels whose chunks touch disjoint state are
// bit-identical serial vs. parallel. When the input fits one chunk, or only
// one worker is available, fn runs on the calling goroutine with no
// goroutine or synchronization overhead.
//
//lint:hotpath every kernel fans out through For; anything allocated per chunk multiplies across the whole pipeline
func For(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	nc := chunks(n)
	w := Workers(workers)
	if w > nc {
		w = nc
	}
	if w <= 1 {
		for lo := 0; lo < n; lo += Grain {
			hi := lo + Grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		//lint:ignore goleak workers drain a bounded chunk counter and exit; For returns only after wg.Wait sees them all finish
		go func() { //lint:ignore hotalloc one closure per worker at fan-out, not per chunk; the loop bound is the worker count
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nc {
					return
				}
				lo := c * Grain
				hi := lo + Grain
				if hi > n {
					hi = n
				}
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// partials recycles the per-chunk accumulator slices of ReduceSum so a
// steady-state reduction performs no allocation.
var partials = sync.Pool{New: func() any { b := make([]float64, 0, 64); return &b }}

// ReduceSum computes an order-stable parallel sum: fn returns the partial
// for chunk [lo, hi), each partial lands in the slot of its chunk index,
// and the partials are folded in ascending chunk order. The bracketing —
// (((p0+p1)+p2)+…) over Grain-sized chunk sums — is therefore a pure
// function of n, independent of the worker count and the goroutine
// schedule, so serial and parallel runs agree to the last bit.
//
//lint:hotpath every reduction fans out through ReduceSum; anything allocated per chunk multiplies across the whole pipeline
func ReduceSum(workers, n int, fn func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	nc := chunks(n)
	if nc == 1 || Workers(workers) == 1 {
		// Same chunking, same fold order, no goroutines: sum += p_c in
		// ascending c is exactly the parallel path's bracketing.
		var sum float64
		for lo := 0; lo < n; lo += Grain {
			hi := lo + Grain
			if hi > n {
				hi = n
			}
			sum += fn(lo, hi)
		}
		return sum
	}
	bp := partials.Get().(*[]float64)
	parts := *bp
	if cap(parts) < nc {
		parts = make([]float64, nc)
	}
	parts = parts[:nc]
	For(workers, n, func(lo, hi int) {
		parts[lo/Grain] = fn(lo, hi)
	})
	var sum float64
	for _, v := range parts {
		sum += v
	}
	*bp = parts[:0]
	partials.Put(bp)
	return sum
}

// Pool recycles float64 scratch buffers across rounds of an iterative
// kernel. Get returns a buffer with at least n capacity, length n, contents
// unspecified; Put recycles it. The zero value is ready to use. Pool is
// safe for concurrent use.
type Pool struct {
	p sync.Pool
}

// Get returns a length-n buffer (contents unspecified).
func (p *Pool) Get(n int) []float64 {
	if v := p.p.Get(); v != nil {
		b := *(v.(*[]float64))
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]float64, n)
}

// Put recycles a buffer obtained from Get.
func (p *Pool) Put(b []float64) {
	if b == nil {
		return
	}
	b = b[:0]
	p.p.Put(&b)
}
