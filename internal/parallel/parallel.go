// Package parallel is the repository's single deterministic chunked
// scheduler. Every data-parallel loop of the resolution pipeline — ITER's
// bipartite sweeps, CliqueRank's masked matrix powers, RSS edge sampling,
// the dense and sparse matrix kernels — fans out through this package, so
// there is exactly one place where the determinism argument has to hold:
//
//   - The index range [0, n) is split into fixed-size chunks (Grain
//     elements by default; a per-kernel size via ForGrain/GrainFor). Chunk
//     boundaries depend only on n and the grain — never on the worker
//     count or GOMAXPROCS — so the set of fn(lo, hi) calls is identical
//     for every Workers setting.
//   - Workers race only for *which* chunk to run next (one atomic add), not
//     for how a chunk is computed. A kernel whose chunks write disjoint
//     state (out[lo:hi], a per-row slice) is therefore bit-identical serial
//     vs. parallel.
//   - Reductions never accumulate across goroutines: each chunk produces a
//     partial into its own slot and the partials are folded in ascending
//     chunk order after the barrier (ReduceSum), so floating-point rounding
//     is schedule-independent too.
//
// The erlint determinism analyzer includes this package in its kernel
// scope: no ambient time, environment, or process-seeded randomness.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Grain is the default chunk size, in elements (or rows), of a scheduled
// loop. It is deliberately a package constant rather than a knob: changing
// it changes the bracketing of chunked reductions, which would silently
// shift bit-identical results between versions. 256 elements amortize one
// goroutine handoff and one guard poll over enough work that even the
// cheapest per-element kernels (an add and a multiply) win from fanning
// out, while a sub-256 input stays on the caller's goroutine with no
// scheduling overhead at all.
//
// Kernels whose per-element cost is far from that baseline pick their own
// grain with ForGrain/GrainFor. Reductions (ReduceSum) always bracket at
// Grain — their fold order is part of the bit-identity contract.
const Grain = 256

// GrainFor picks a chunk size for a loop of n items that together perform
// roughly work abstract units, aiming for target units per chunk. It is a
// pure function of the three sizes — never of the worker count or
// GOMAXPROCS — so the chunk set it induces is deterministic, and results
// of disjoint-write kernels stay bit-identical across worker counts. The
// result is clamped to [1, n] (and to Grain when the sizes are degenerate).
func GrainFor(n, work, target int) int {
	if n <= 0 || work <= 0 || target <= 0 {
		return Grain
	}
	g := int(int64(n) * int64(target) / int64(work))
	if g < 1 {
		g = 1
	}
	if g > n {
		g = n
	}
	return g
}

// Workers resolves a worker-count knob: values below 1 (the zero value of
// the Workers options fields) select runtime.GOMAXPROCS(0), anything else
// is taken literally. The result is how many goroutines For may use, not a
// promise — small inputs use fewer.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// chunks returns the number of Grain-sized chunks covering [0, n).
func chunks(n int) int { return (n + Grain - 1) / Grain }

// For runs fn over [0, n) in fixed Grain-sized chunks using at most workers
// goroutines (workers < 1 selects GOMAXPROCS). fn is invoked once per chunk
// with a half-open range [lo, hi); the same chunk set is produced for every
// worker count, so kernels whose chunks touch disjoint state are
// bit-identical serial vs. parallel. When the input fits one chunk, or only
// one worker is available, fn runs on the calling goroutine with no
// goroutine or synchronization overhead.
func For(workers, n int, fn func(lo, hi int)) {
	ForGrain(workers, n, Grain, fn)
}

// forJob is the pooled fan-out state of ForGrain. The no-arg body method
// value is bound once, when the pool constructs the job, so spawning a
// worker is `go j.body()` — no per-invocation closure, which is what kept
// CliqueRankProduct's allocs/op climbing with the worker count. The job is
// recycled only after wg.Wait has seen every worker exit, so a pooled job
// is never live on two invocations at once.
type forJob struct {
	next  atomic.Int64
	wg    sync.WaitGroup
	n     int
	grain int
	fn    func(lo, hi int)
	body  func()
}

func (j *forJob) run() {
	defer j.wg.Done()
	for {
		c := int(j.next.Add(1)) - 1
		lo := c * j.grain
		if lo >= j.n {
			return
		}
		hi := lo + j.grain
		if hi > j.n {
			hi = j.n
		}
		j.fn(lo, hi)
	}
}

var forJobs = sync.Pool{New: func() any {
	j := &forJob{}
	j.body = j.run
	return j
}}

// ForGrain is For with an explicit chunk size. The grain must be a pure
// function of the problem size (use GrainFor), never of the worker count:
// the chunk set [0,g), [g,2g), … depends only on n and grain, so
// disjoint-write kernels remain bit-identical across worker counts, just
// as with For. The calling goroutine participates as one of the workers,
// and the fan-out state is pooled, so a steady-state invocation performs
// no allocation at any worker count.
//
//lint:hotpath every kernel fans out through ForGrain; anything allocated per chunk multiplies across the whole pipeline
func ForGrain(workers, n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	nc := (n + grain - 1) / grain
	w := Workers(workers)
	if w > nc {
		w = nc
	}
	if w <= 1 {
		for lo := 0; lo < n; lo += grain {
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		return
	}
	j := forJobs.Get().(*forJob)
	j.next.Store(0)
	j.n, j.grain, j.fn = n, grain, fn
	j.wg.Add(w)
	for i := 1; i < w; i++ {
		//lint:ignore goleak workers drain a bounded chunk counter and exit; ForGrain returns only after wg.Wait sees them all finish
		go j.body()
	}
	j.body()
	j.wg.Wait()
	j.fn = nil
	forJobs.Put(j)
}

// partials recycles the per-chunk accumulator slices of ReduceSum so a
// steady-state reduction performs no allocation.
var partials = sync.Pool{New: func() any { b := make([]float64, 0, 64); return &b }}

// ReduceSum computes an order-stable parallel sum: fn returns the partial
// for chunk [lo, hi), each partial lands in the slot of its chunk index,
// and the partials are folded in ascending chunk order. The bracketing —
// (((p0+p1)+p2)+…) over Grain-sized chunk sums — is therefore a pure
// function of n, independent of the worker count and the goroutine
// schedule, so serial and parallel runs agree to the last bit.
//
//lint:hotpath every reduction fans out through ReduceSum; anything allocated per chunk multiplies across the whole pipeline
func ReduceSum(workers, n int, fn func(lo, hi int) float64) float64 {
	if n <= 0 {
		return 0
	}
	nc := chunks(n)
	if nc == 1 || Workers(workers) == 1 {
		// Same chunking, same fold order, no goroutines: sum += p_c in
		// ascending c is exactly the parallel path's bracketing.
		var sum float64
		for lo := 0; lo < n; lo += Grain {
			hi := lo + Grain
			if hi > n {
				hi = n
			}
			sum += fn(lo, hi)
		}
		return sum
	}
	bp := partials.Get().(*[]float64)
	parts := *bp
	if cap(parts) < nc {
		parts = make([]float64, nc)
	}
	parts = parts[:nc]
	For(workers, n, func(lo, hi int) {
		parts[lo/Grain] = fn(lo, hi)
	})
	var sum float64
	for _, v := range parts {
		sum += v
	}
	*bp = parts[:0]
	partials.Put(bp)
	return sum
}

// Pool recycles float64 scratch buffers across rounds of an iterative
// kernel. Get returns a buffer with at least n capacity, length n, contents
// unspecified; Put recycles it. The zero value is ready to use. Pool is
// safe for concurrent use.
type Pool struct {
	p sync.Pool
}

// Get returns a length-n buffer (contents unspecified).
func (p *Pool) Get(n int) []float64 {
	if v := p.p.Get(); v != nil {
		b := *(v.(*[]float64))
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]float64, n)
}

// Put recycles a buffer obtained from Get.
func (p *Pool) Put(b []float64) {
	if b == nil {
		return
	}
	b = b[:0]
	p.p.Put(&b)
}
