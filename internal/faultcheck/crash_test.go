package faultcheck

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/wal"
)

// TestCrashRecoveryKill9 is the crash-recovery acceptance test: a real
// child process appends durably to a WAL and reports each acknowledged
// sequence number over its stdout pipe; the parent SIGKILLs it mid-write
// — no deferred cleanup, no final fsync, exactly like a power cut — then
// replays the directory and asserts every acknowledged record survived
// with its payload intact.
//
// The child is this same test binary re-executed with -test.run pointed
// at TestCrashWriterHelper and WAL_CRASH_DIR set.
func TestCrashRecoveryKill9(t *testing.T) {
	if os.Getenv("WAL_CRASH_DIR") != "" {
		t.Skip("crash helper invocation")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestCrashWriterHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "WAL_CRASH_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("StdoutPipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting crash writer: %v", err)
	}

	// Collect acknowledgments until enough have landed, then pull the
	// plug. Anything read from the pipe was acknowledged before the kill.
	var maxAcked uint64
	scanner := bufio.NewScanner(stdout)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "acked ") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimPrefix(line, "acked "), 10, 64)
		if err != nil {
			t.Fatalf("bad acknowledgment line %q: %v", line, err)
		}
		maxAcked = seq
		if maxAcked >= 50 {
			break
		}
	}
	if maxAcked < 50 {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		t.Fatalf("crash writer exited after only %d acknowledgment(s): %v", maxAcked, scanner.Err())
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	_ = cmd.Wait() // reaps the child; the kill makes a non-nil error expected

	l, rec, err := wal.Open(context.Background(), wal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("recovery after SIGKILL: %v", err)
	}
	defer l.Close()
	if rec.LastSeq < maxAcked {
		t.Fatalf("recovered through %d but %d was acknowledged before the kill", rec.LastSeq, maxAcked)
	}
	// Every replayed record — acknowledged or in-flight past the ack we
	// read — must be contiguous with the payload the writer assigned it.
	for i, r := range rec.Records {
		want := uint64(i) + 1
		if r.Seq != want {
			t.Fatalf("record %d has seq %d, want %d", i, r.Seq, want)
		}
		if got := string(r.Data); got != crashPayload(want) {
			t.Fatalf("record %d payload %q, want %q", want, got, crashPayload(want))
		}
	}
	// The reopened log keeps working where the dead process stopped.
	if _, err := l.AppendDurable(context.Background(), 1, []byte("post-crash")); err != nil {
		t.Fatalf("append after crash recovery: %v", err)
	}
}

func crashPayload(seq uint64) string {
	return fmt.Sprintf("crash-record-%06d", seq)
}

// TestCrashWriterHelper is the child side of TestCrashRecoveryKill9. It
// only runs when WAL_CRASH_DIR is set; under a normal `go test` it skips.
func TestCrashWriterHelper(t *testing.T) {
	dir := os.Getenv("WAL_CRASH_DIR")
	if dir == "" {
		t.Skip("not a crash helper invocation")
	}
	l, _, err := wal.Open(context.Background(), wal.Options{Dir: dir})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crash writer Open: %v\n", err)
		os.Exit(1)
	}
	// Append until the parent kills us. Each "acked" line is printed only
	// after AppendDurable returned, i.e. after the covering fsync; the cap
	// bounds the helper if the parent dies without killing it.
	for seq := uint64(1); seq <= 100000; seq++ {
		got, err := l.AppendDurable(context.Background(), 1, []byte(crashPayload(seq)))
		if err != nil || got != seq {
			fmt.Fprintf(os.Stderr, "crash writer append %d: got %d, %v\n", seq, got, err)
			os.Exit(1)
		}
		fmt.Printf("acked %d\n", seq)
	}
	// Unreachable in the orchestrated run; pause so the parent's kill is
	// what ends the process even if the loop somehow completes.
	time.Sleep(time.Minute)
}
