package faultcheck

import (
	"io"
	"net"
	"sync"
	"time"
)

// ConnPlan scripts the faults injected into one proxied TCP connection.
// The zero value proxies cleanly.
type ConnPlan struct {
	// Delay stalls the connection before any byte is forwarded — a slow
	// network, not a broken one.
	Delay time.Duration
	// CutAfterRequestBytes kills the connection once this many
	// client-to-server bytes have been forwarded: the request dies on the
	// wire and the server sees a truncated stream. Zero disables the cut.
	CutAfterRequestBytes int64
	// DropResponse forwards the client's bytes intact, waits for the
	// server's first response bytes, then kills the connection without
	// delivering them — the ambiguous failure where the mutation WAS
	// applied but the client cannot know. This is the case that separates
	// at-most-once from exactly-once.
	DropResponse bool
	// Reset ends a killed connection with an RST (SO_LINGER 0) instead of
	// an orderly FIN.
	Reset bool
}

// Proxy is a TCP proxy that injects connection-level faults between an
// HTTP client and a backend, per a scripted plan. The backend address can
// be swapped mid-flight (SetTarget) to model a crashed-and-restarted
// server listening on a new port.
type Proxy struct {
	ln net.Listener

	mu     sync.Mutex
	target string
	next   int
	conns  map[net.Conn]struct{}

	plan   func(connIndex int) ConnPlan
	closed chan struct{}
	wg     sync.WaitGroup
}

// NewProxy listens on an ephemeral local port and forwards connections to
// target, applying plan(i) to the i-th accepted connection (0-based). A
// nil plan proxies everything cleanly.
func NewProxy(target string, plan func(connIndex int) ConnPlan) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	if plan == nil {
		plan = func(int) ConnPlan { return ConnPlan{} }
	}
	p := &Proxy{ln: ln, target: target, plan: plan, conns: make(map[net.Conn]struct{}), closed: make(chan struct{})}
	p.wg.Add(1)
	go p.acceptLoop() // exits when Close closes the listener
	return p, nil
}

// Addr returns the proxy's listen address for clients to dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetTarget atomically redirects future connections to a new backend
// address — existing connections keep their old backend.
func (p *Proxy) SetTarget(target string) {
	p.mu.Lock()
	p.target = target
	p.mu.Unlock()
}

// Close stops accepting, force-closes every proxied connection (idle
// keep-alive conns included — their handlers would otherwise block
// forever), and waits for all handlers to drain.
func (p *Proxy) Close() error {
	close(p.closed)
	err := p.ln.Close()
	p.mu.Lock()
	for c := range p.conns {
		_ = c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
	return err
}

// track registers a connection for Close's teardown sweep; it refuses
// (and closes) connections that race past a concurrent Close.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case <-p.closed:
		_ = c.Close()
		return false
	default:
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		idx, target := p.next, p.target
		p.next++
		p.mu.Unlock()
		if !p.track(conn) {
			return
		}
		p.wg.Add(1)
		go p.handle(conn, target, p.plan(idx))
	}
}

// handle proxies one connection under its plan.
func (p *Proxy) handle(client net.Conn, target string, plan ConnPlan) {
	defer p.wg.Done()
	defer p.untrack(client)
	defer closeConn(client, plan.Reset)
	if plan.Delay > 0 {
		t := time.NewTimer(plan.Delay)
		select {
		case <-t.C:
		case <-p.closed:
			t.Stop()
			return
		}
	}
	server, err := net.Dial("tcp", target)
	if err != nil {
		return // backend down: the client sees its connection drop
	}
	defer server.Close()
	if !p.track(server) {
		return
	}
	defer p.untrack(server)

	done := make(chan struct{})
	p.wg.Add(1)
	//lint:ignore goleak the copy returns when either conn closes; handle's teardown closes both and then receives on done
	go func() {
		defer p.wg.Done()
		defer close(done)
		if plan.CutAfterRequestBytes > 0 {
			// Forward only the allowed prefix, then kill both sides: the
			// server got a truncated request, the client a dead connection.
			_, _ = io.CopyN(server, client, plan.CutAfterRequestBytes)
			closeConn(client, plan.Reset)
			_ = server.Close()
			return
		}
		_, _ = io.Copy(server, client)
		closeWrite(server)
	}()

	if plan.DropResponse {
		// Swallow the first response bytes, then tear down. By the time the
		// server writes a response its handler has committed the mutation,
		// so the client observes "request sent, connection died" with the
		// work already applied.
		buf := make([]byte, 32<<10)
		_, _ = server.Read(buf)
	} else {
		_, _ = io.Copy(client, server)
	}
	// Unblock the client→server copy (its reads fail once both conns are
	// closed) and wait for it so Close's wg drains deterministically.
	_ = server.Close()
	closeConn(client, plan.Reset)
	<-done
}

// closeConn closes a connection, with an RST instead of a FIN when reset
// is set.
func closeConn(c net.Conn, reset bool) {
	if tc, ok := c.(*net.TCPConn); ok && reset {
		_ = tc.SetLinger(0)
	}
	_ = c.Close()
}

// closeWrite half-closes the server side so an EOF from the client
// propagates as end-of-request, matching what a real intermediary does.
func closeWrite(c net.Conn) {
	type writeCloser interface{ CloseWrite() error }
	if wc, ok := c.(writeCloser); ok {
		_ = wc.CloseWrite()
	}
}
