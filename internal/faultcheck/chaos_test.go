package faultcheck

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/wal"
)

// The WAL chaos suite: drive the log through FaultFS under every injected
// storage failure and assert the crash-recovery contract — acknowledged
// records always replay, unacknowledged damage surfaces as a typed error
// or a reported torn tail, and nothing ever panics.

func chaosPayload(i int) []byte { return []byte(fmt.Sprintf("chaos-%04d", i)) }

// reopenClean replays dir through the real filesystem (the faults are
// write-time; recovery itself must run clean) and returns the recovery.
func reopenClean(t *testing.T, dir string) *wal.Recovery {
	t.Helper()
	l, rec, err := wal.Open(context.Background(), wal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("recovery Open: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("recovery Close: %v", err)
	}
	return rec
}

// wantAcked asserts the recovery contains every acknowledged record, in
// order, with the payloads that were written.
func wantAcked(t *testing.T, rec *wal.Recovery, acked []uint64) {
	t.Helper()
	if len(rec.Records) < len(acked) {
		t.Fatalf("replayed %d record(s), want at least the %d acknowledged", len(rec.Records), len(acked))
	}
	for i, seq := range acked {
		r := rec.Records[i]
		if r.Seq != seq {
			t.Fatalf("record %d: seq %d, want %d", i, r.Seq, seq)
		}
	}
}

func TestChaosShortWrites(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(wal.OSFS{})
	fs.ShortWriteEvery = 3
	l, _, err := wal.Open(context.Background(), wal.Options{Dir: dir, FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var acked []uint64
	var failures int
	for i := 1; i <= 20; i++ {
		seq, err := l.AppendDurable(context.Background(), 1, chaosPayload(i))
		if err != nil {
			if !errors.Is(err, ErrInjectedIO) {
				t.Fatalf("append %d failed with a non-injected error: %v", i, err)
			}
			failures++
			continue
		}
		acked = append(acked, seq)
	}
	if failures == 0 {
		t.Fatal("ShortWriteEvery=3 injected no failures")
	}
	if len(acked) == 0 {
		t.Fatal("every append failed; the tail repair is not recovering the segment")
	}
	if l.Stats().Wedged {
		t.Fatal("repaired short writes wedged the log")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rec := reopenClean(t, dir)
	if len(rec.Records) != len(acked) {
		t.Fatalf("replayed %d record(s), want exactly the %d acknowledged", len(rec.Records), len(acked))
	}
	wantAcked(t, rec, acked)
	if rec.TornTail {
		t.Fatal("repaired segment still has a torn tail")
	}
}

func TestChaosFsyncFailureWedges(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(wal.OSFS{})
	fs.FailSyncAfter = 2
	l, _, err := wal.Open(context.Background(), wal.Options{Dir: dir, FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Syncs 0 and 1 succeed, so two appends are acknowledged; the third
	// append's fsync fails and must wedge the log.
	var acked []uint64
	var wedgeErr error
	for i := 1; i <= 5; i++ {
		seq, err := l.AppendDurable(context.Background(), 1, chaosPayload(i))
		if err != nil {
			wedgeErr = err
			break
		}
		acked = append(acked, seq)
	}
	if len(acked) != 2 {
		t.Fatalf("%d append(s) acknowledged before the fsync fault, want 2", len(acked))
	}
	if !errors.Is(wedgeErr, wal.ErrWedged) || !errors.Is(wedgeErr, ErrInjectedIO) {
		t.Fatalf("fsync failure surfaced as %v, want ErrWedged wrapping the injected error", wedgeErr)
	}
	if !l.Stats().Wedged {
		t.Fatal("Stats does not report the wedge")
	}
	// Every further write fails fast with the same sticky error.
	if _, err := l.Append(1, nil); !errors.Is(err, wal.ErrWedged) {
		t.Fatalf("append on wedged log: %v, want ErrWedged", err)
	}
	if err := l.WriteSnapshot(nil, l.LastSeq()); !errors.Is(err, wal.ErrWedged) {
		t.Fatalf("snapshot on wedged log: %v, want ErrWedged", err)
	}
	_ = l.Close()
	// The durable prefix — exactly the acknowledged records — survives.
	rec := reopenClean(t, dir)
	wantAcked(t, rec, acked)
}

func TestChaosGroupCommitFsyncFailure(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(wal.OSFS{})
	fs.FailSyncAfter = 0
	l, _, err := wal.Open(context.Background(), wal.Options{
		Dir:           dir,
		FS:            fs,
		FsyncInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// The append stages fine; the failure lands in the background group
	// commit and must be delivered to the durability waiter.
	seq, err := l.Append(1, chaosPayload(1))
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	err = l.WaitDurable(context.Background(), seq)
	if !errors.Is(err, wal.ErrWedged) || !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("WaitDurable: %v, want ErrWedged wrapping the injected error", err)
	}
	_ = l.Close()
}

func TestChaosOutOfSpace(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(wal.OSFS{})
	fs.Capacity = 120 // magic + a few frames
	l, _, err := wal.Open(context.Background(), wal.Options{Dir: dir, FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var acked []uint64
	var spaceErr error
	for i := 1; i <= 10; i++ {
		seq, err := l.AppendDurable(context.Background(), 1, chaosPayload(i))
		if err != nil {
			spaceErr = err
			break
		}
		acked = append(acked, seq)
	}
	if !errors.Is(spaceErr, ErrNoSpace) {
		t.Fatalf("full-disk append failed with %v, want ErrNoSpace", spaceErr)
	}
	if len(acked) == 0 {
		t.Fatal("no appends fit under the capacity")
	}
	if l.Stats().Wedged {
		t.Fatal("ENOSPC with a successful tail repair must not wedge the log")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rec := reopenClean(t, dir)
	if len(rec.Records) != len(acked) {
		t.Fatalf("replayed %d record(s), want exactly the %d acknowledged", len(rec.Records), len(acked))
	}
	wantAcked(t, rec, acked)
}

func TestChaosTornFinalRecord(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(wal.OSFS{})
	l, _, err := wal.Open(context.Background(), wal.Options{Dir: dir, FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 1; i <= 8; i++ {
		if _, err := l.AppendDurable(context.Background(), 1, chaosPayload(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	// Power cut: the process vanishes (no Close) and the final record's
	// tail never reached the platter.
	if err := fs.Crash(5); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	rec := reopenClean(t, dir)
	if !rec.TornTail {
		t.Fatal("torn final record not reported")
	}
	if rec.LastSeq != 7 {
		t.Fatalf("recovered through %d, want 7 (record 8 was torn)", rec.LastSeq)
	}
	wantAcked(t, rec, []uint64{1, 2, 3, 4, 5, 6, 7})
	for i, r := range rec.Records {
		if !bytes.Equal(r.Data, chaosPayload(i+1)) {
			t.Fatalf("record %d data %q", r.Seq, r.Data)
		}
	}
}

func TestChaosBitFlipAtTailTruncates(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(wal.OSFS{})
	frame := int64(8 + 10 + len(chaosPayload(1))) // header + record header + data
	// Flip a bit inside record 3's frame (after the magic and two frames).
	fs.FlipBitAfter = 8 + 2*frame + 12
	l, _, err := wal.Open(context.Background(), wal.Options{Dir: dir, FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 1; i <= 4; i++ {
		if _, err := l.AppendDurable(context.Background(), 1, chaosPayload(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The flip is invisible to the writer; replay's checksum catches it.
	// In the final segment that is a torn tail: the intact prefix 1..2
	// survives, the damage is truncated and reported — never silent.
	rec := reopenClean(t, dir)
	if !rec.TornTail {
		t.Fatal("checksum damage at the tail not reported as torn")
	}
	if rec.LastSeq != 2 {
		t.Fatalf("recovered through %d, want 2", rec.LastSeq)
	}
	wantAcked(t, rec, []uint64{1, 2})
}

func TestChaosBitFlipInSealedSegmentFailsTyped(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(wal.OSFS{})
	frame := int64(8 + 10 + len(chaosPayload(1)))
	fs.FlipBitAfter = 8 + 12 // inside record 1's frame
	l, _, err := wal.Open(context.Background(), wal.Options{
		Dir: dir,
		FS:  fs,
		// One frame per segment: record 1's segment is sealed by the
		// rotation record 2 triggers.
		MaxSegmentBytes: 8 + frame,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := l.AppendDurable(context.Background(), 1, chaosPayload(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Checksum damage in sealed history cannot be a torn write: recovery
	// must refuse with a typed error rather than silently drop record 1.
	_, _, err = wal.Open(context.Background(), wal.Options{Dir: dir})
	if !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("Open over sealed damage: %v, want ErrCorrupt", err)
	}
}

func TestChaosStormSurvivesEveryFault(t *testing.T) {
	// One combined sweep: for every fault configuration, the log either
	// acknowledges records that then replay, or fails typed. Nothing
	// panics, nothing is silently lost.
	configs := []struct {
		name string
		set  func(fs *FaultFS)
	}{
		{"short writes", func(fs *FaultFS) { fs.ShortWriteEvery = 2 }},
		{"fsync failures", func(fs *FaultFS) { fs.FailSyncAfter = 3 }},
		{"tight capacity", func(fs *FaultFS) { fs.Capacity = 90 }},
		{"bit flip", func(fs *FaultFS) { fs.FlipBitAfter = 40 }},
		{"everything at once", func(fs *FaultFS) {
			fs.ShortWriteEvery = 3
			fs.FailSyncAfter = 5
			fs.Capacity = 200
			fs.FlipBitAfter = 60
		}},
	}
	for _, cfg := range configs {
		t.Run(cfg.name, func(t *testing.T) {
			dir := t.TempDir()
			fs := NewFaultFS(wal.OSFS{})
			cfg.set(fs)
			l, _, err := wal.Open(context.Background(), wal.Options{Dir: dir, FS: fs})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			var acked []uint64
			for i := 1; i <= 15; i++ {
				seq, err := l.AppendDurable(context.Background(), 1, chaosPayload(i))
				if err != nil {
					if errors.Is(err, wal.ErrWedged) {
						break
					}
					continue
				}
				acked = append(acked, seq)
			}
			_ = l.Close()

			// Recovery over the surviving bytes: every acknowledged record
			// is replayed unless the at-rest bit flip destroyed it — and
			// then it is reported (torn tail) or typed (sealed corruption),
			// never silent.
			l2, rec, err := wal.Open(context.Background(), wal.Options{Dir: dir})
			if err != nil {
				if !errors.Is(err, wal.ErrCorrupt) {
					t.Fatalf("recovery failed untyped: %v", err)
				}
				return
			}
			defer l2.Close()
			flipped := fs.FlipBitAfter >= 0
			if !flipped {
				wantAcked(t, rec, acked)
			} else if len(rec.Records) < len(acked) && !rec.TornTail {
				t.Fatalf("lost %d acknowledged record(s) with no torn-tail report", len(acked)-len(rec.Records))
			}
			for i, r := range rec.Records {
				if r.Seq != uint64(i)+1 {
					t.Fatalf("record %d has seq %d", i, r.Seq)
				}
			}
		})
	}
}

// TestChaosDirSyncFailureOnOpen covers the directory-entry half of the
// durability contract: if the data directory's fsync fails while the
// initial segment is created, the segment's very existence is not
// durable, so Open must fail typed instead of handing out a log whose
// entries could vanish in a power loss.
func TestChaosDirSyncFailureOnOpen(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(wal.OSFS{})
	fs.FailDirSyncAfter = 0
	_, _, err := wal.Open(context.Background(), wal.Options{Dir: dir, FS: fs})
	if !errors.Is(err, wal.ErrWedged) || !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("Open = %v, want ErrWedged wrapping the injected error", err)
	}
}

// TestChaosDirSyncFailureOnSnapshot injects the fault after the initial
// segment's directory fsync, so it lands on the fsync that persists the
// snapshot rename. The snapshot must be refused before any compaction —
// the full journal still backs every acknowledged record — and the log
// must stay usable.
func TestChaosDirSyncFailureOnSnapshot(t *testing.T) {
	dir := t.TempDir()
	fs := NewFaultFS(wal.OSFS{})
	fs.FailDirSyncAfter = 1
	l, _, err := wal.Open(context.Background(), wal.Options{Dir: dir, FS: fs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var acked []uint64
	for i := 1; i <= 3; i++ {
		seq, err := l.AppendDurable(context.Background(), 1, chaosPayload(i))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		acked = append(acked, seq)
	}
	if err := l.WriteSnapshot([]byte("chaos-state@3"), l.LastSeq()); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("snapshot with failing directory fsync = %v, want the injected error", err)
	}
	if l.Stats().Wedged {
		t.Fatal("a refused snapshot must not wedge the log")
	}
	// The segment was never compacted away, so appends keep working and
	// everything acknowledged survives a restart.
	seq, err := l.AppendDurable(context.Background(), 1, chaosPayload(4))
	if err != nil {
		t.Fatalf("append after refused snapshot: %v", err)
	}
	acked = append(acked, seq)
	_ = l.Close()
	rec := reopenClean(t, dir)
	if rec.LastSeq != 4 {
		t.Fatalf("recovered through %d, want 4", rec.LastSeq)
	}
	// Whether or not the renamed-but-unsynced snapshot file survived (the
	// shim's rename itself succeeded), recovery restores records 1..4:
	// either all four from the journal, or 1..3 from the snapshot payload
	// plus record 4 from the tail.
	if rec.SnapshotRestored {
		if !bytes.Equal(rec.SnapshotData, []byte("chaos-state@3")) {
			t.Fatalf("snapshot data %q", rec.SnapshotData)
		}
		if len(rec.Records) != 1 || rec.Records[0].Seq != 4 {
			t.Fatalf("records after snapshot = %+v, want exactly seq 4", rec.Records)
		}
	} else {
		wantAcked(t, rec, acked)
	}
}
