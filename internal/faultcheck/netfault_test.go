package faultcheck

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/serve"
	"repro/internal/wal"
)

// chaosPlan scripts the network faults for the exactly-once suites: the
// first faultyConns accepted connections cycle through the fault
// repertoire (cut mid-request, drop-response, drop-response+RST, latency),
// everything after proxies cleanly — so every retried request
// deterministically finds a working path once the fault budget is spent.
func chaosPlan(faultyConns int) func(int) ConnPlan {
	return func(i int) ConnPlan {
		if i >= faultyConns {
			return ConnPlan{}
		}
		switch i % 4 {
		case 0:
			// Die mid-request: the server sees a truncated stream and
			// applies nothing.
			return ConnPlan{CutAfterRequestBytes: 40, Reset: i%8 == 0}
		case 1:
			// The ambiguous failure: applied server-side, response lost.
			return ConnPlan{DropResponse: true}
		case 2:
			return ConnPlan{DropResponse: true, Reset: true}
		default:
			return ConnPlan{Delay: 5 * time.Millisecond}
		}
	}
}

// countKeyedRecords replays the WAL directory and returns how many times
// each idempotency key was journaled as a mutation (the exactly-once
// oracle: acked-once must mean journaled-once), plus the total number of
// keyed records.
func countKeyedRecords(t *testing.T, dir string) (map[string]int, int) {
	t.Helper()
	l, rec, err := wal.Open(context.Background(), wal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("opening WAL for the oracle: %v", err)
	}
	defer l.Close()
	counts := make(map[string]int)
	total := 0
	for _, r := range rec.Records {
		if r.Key == "" {
			continue
		}
		counts[r.Key]++
		total++
	}
	return counts, total
}

// TestNetFaultExactlyOnceStorm is the in-process chaos acceptance: a storm
// of mutations driven through the fault proxy by the retrying client, with
// connections cut mid-request, responses dropped (with and without RST)
// and latency injected. Every logical mutation must be acknowledged
// exactly once, the WAL must hold exactly one keyed record per logical
// request, and the drop-response faults must be visible as server-side
// replays — proof the retries actually exercised the dedup path rather
// than getting lucky.
func TestNetFaultExactlyOnceStorm(t *testing.T) {
	dir := t.TempDir()
	srv, err := serve.New(serve.Options{DataDir: dir, BreakerThreshold: -1})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	const faultyConns = 16
	proxy, err := NewProxy(hs.Listener.Addr().String(), chaosPlan(faultyConns))
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer proxy.Close()

	c, err := client.New(client.Options{
		BaseURL:        "http://" + proxy.Addr(),
		MaxAttempts:    faultyConns + 4, // worst case: one request eats the whole fault budget
		BaseBackoff:    2 * time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
		AttemptTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("client.New: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := c.CreateCollection(ctx, "chaos"); err != nil {
		t.Fatalf("create collection through proxy: %v", err)
	}

	const n = 24
	errs := Storm(n, func(i int) error {
		_, err := c.PutRecord(ctx, "chaos", fmt.Sprintf("r%02d", i),
			client.Record{Entity: fmt.Sprintf("e%d", i), Text: fmt.Sprintf("record %d payload", i)})
		return err
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("mutation %d failed through the chaos proxy: %v", i, err)
		}
	}

	recs, err := c.GetCollection(ctx, "chaos")
	if err != nil {
		t.Fatalf("listing after storm: %v", err)
	}
	if len(recs) != n {
		t.Fatalf("collection holds %d records, want %d", len(recs), n)
	}

	// The WAL oracle: one create + n puts, each journaled under its key
	// exactly once no matter how many times the wire ate the exchange.
	counts, total := countKeyedRecords(t, dir)
	if want := n + 1; total != want {
		t.Fatalf("WAL holds %d keyed mutation records, want %d: a retry was re-applied", total, want)
	}
	for key, got := range counts {
		if got != 1 {
			t.Fatalf("idempotency key %q journaled %d times, want exactly 1", key, got)
		}
	}

	// The faults must have actually bitten: drop-response connections force
	// the applied-but-unacked retry, observable as server-side replays.
	var st struct {
		Idempotency serve.IdempotencyStats `json:"idempotency"`
	}
	raw, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	if st.Idempotency.Replays == 0 {
		t.Fatal("no server-side replays recorded: the chaos plan never exercised the dedup path")
	}
	if st.Idempotency.Conflicts != 0 {
		t.Fatalf("%d idempotency conflicts: retries mutated their bodies", st.Idempotency.Conflicts)
	}
}

// TestNetFaultExactlyOnceAcrossSIGKILL is the full crash chaos
// acceptance: mutations retried through the fault proxy while the backend
// — a real erserve-style child process — is SIGKILLed mid-storm and
// restarted over the same journal directory. The retrying client bridges
// the outage; the restarted server's replayed dedup table absorbs retries
// of mutations the dead process had already applied. The WAL must end with
// exactly one keyed record per logical mutation.
func TestNetFaultExactlyOnceAcrossSIGKILL(t *testing.T) {
	if os.Getenv("CHAOS_SERVE_DIR") != "" {
		t.Skip("chaos helper invocation")
	}
	dir := t.TempDir()
	child := startChaosServe(t, dir)

	proxy, err := NewProxy(child.addr, chaosPlan(8))
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer proxy.Close()

	c, err := client.New(client.Options{
		BaseURL: "http://" + proxy.Addr(),
		// Generous budget: retries must ride out the fault plan AND the
		// restart window (connection-refused + recovering 503s).
		MaxAttempts:    60,
		BaseBackoff:    5 * time.Millisecond,
		MaxBackoff:     250 * time.Millisecond,
		AttemptTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("client.New: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if _, err := c.CreateCollection(ctx, "chaos"); err != nil {
		t.Fatalf("create collection: %v", err)
	}

	// Kill the backend as soon as a quarter of the storm has been acked,
	// restart it on the same directory, and repoint the proxy. Mutations
	// in flight during the outage retry until the new process is ready;
	// the last quarter of the storm is gated on the restart, so a
	// deterministic share of the acks comes from the second incarnation
	// answering against its replayed dedup table.
	const n = 16
	var (
		acked          atomic.Int64
		postKill       atomic.Bool
		ackedPostKill  atomic.Int64
		restartedReady = make(chan struct{})
	)
	go func() {
		defer close(restartedReady)
		for acked.Load() < n/4 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(5 * time.Millisecond):
			}
		}
		child.kill(t)
		postKill.Store(true)
		restarted := startChaosServe(t, dir)
		proxy.SetTarget(restarted.addr)
	}()

	errs := Storm(n, func(i int) error {
		if i >= n*3/4 {
			select {
			case <-restartedReady:
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		_, err := c.PutRecord(ctx, "chaos", fmt.Sprintf("r%02d", i),
			client.Record{Entity: fmt.Sprintf("e%d", i), Text: fmt.Sprintf("record %d payload", i)})
		if err == nil {
			acked.Add(1)
			if postKill.Load() {
				ackedPostKill.Add(1)
			}
		}
		return err
	})
	<-restartedReady
	for i, err := range errs {
		if err != nil {
			t.Fatalf("mutation %d failed across the crash: %v", i, err)
		}
	}
	if got := ackedPostKill.Load(); got < n/4 {
		t.Fatalf("only %d mutation(s) acknowledged after the kill, want at least %d: the crash did not interleave the storm", got, n/4)
	}

	// End with SIGKILL, never Shutdown: a clean drain would fold the log
	// into a final snapshot and erase the records the oracle counts.
	killChaosServe(t)

	counts, total := countKeyedRecords(t, dir)
	if want := n + 1; total != want {
		t.Fatalf("WAL holds %d keyed mutation records, want %d: a retry was re-applied across the crash", total, want)
	}
	for key, got := range counts {
		if got != 1 {
			t.Fatalf("idempotency key %q journaled %d times, want exactly 1", key, got)
		}
	}
}

// chaosChild tracks one helper process serving the collections API.
type chaosChild struct {
	cmd  *exec.Cmd
	addr string
}

// liveChaosServe holds the currently-running helper so the final
// teardown can kill whichever incarnation is alive.
var liveChaosServe atomic.Pointer[chaosChild]

// startChaosServe re-executes this test binary as a durable collections
// server over dir, scrapes its listen address, and waits until it reports
// ready.
func startChaosServe(t *testing.T, dir string) *chaosChild {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestChaosServeHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "CHAOS_SERVE_DIR="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("StdoutPipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting chaos serve helper: %v", err)
	}
	child := &chaosChild{cmd: cmd}
	scanner := bufio.NewScanner(stdout)
	for scanner.Scan() {
		line := scanner.Text()
		if addr, ok := strings.CutPrefix(line, "chaos-serve listening "); ok {
			child.addr = addr
			break
		}
	}
	if child.addr == "" {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		t.Fatalf("chaos serve helper never reported its address: %v", scanner.Err())
	}
	// Wait for recovery to finish so the first storm requests do not all
	// burn attempts on 503 recovering.
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get("http://" + child.addr + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("chaos serve helper never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
	liveChaosServe.Store(child)
	return child
}

// kill SIGKILLs the child — no drain, no final snapshot, exactly like a
// power cut.
func (c *chaosChild) kill(t *testing.T) {
	t.Helper()
	if err := c.cmd.Process.Kill(); err != nil {
		t.Errorf("SIGKILL chaos serve: %v", err)
	}
	_ = c.cmd.Wait()
}

// killChaosServe kills whichever helper incarnation is currently alive.
func killChaosServe(t *testing.T) {
	t.Helper()
	if c := liveChaosServe.Swap(nil); c != nil {
		c.kill(t)
	}
}

// TestChaosServeHelper is the child side of the SIGKILL chaos test: a
// durable collections server on an ephemeral port, alive until killed. It
// only runs when CHAOS_SERVE_DIR is set; under a normal `go test` it
// skips.
func TestChaosServeHelper(t *testing.T) {
	dir := os.Getenv("CHAOS_SERVE_DIR")
	if dir == "" {
		t.Skip("not a chaos helper invocation")
	}
	srv, err := serve.New(serve.Options{DataDir: dir, BreakerThreshold: -1})
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos serve New: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos serve listen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("chaos-serve listening %s\n", ln.Addr())
	// Serve until the parent kills the process; there is deliberately no
	// graceful path out.
	if err := http.Serve(ln, srv.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "chaos serve: %v\n", err)
		os.Exit(1)
	}
}
