// Package faultcheck provides deterministic fault-injection primitives for
// robustness testing: a chaos io.Reader that fragments and corrupts byte
// streams the way unreliable transports do, and adversarial dataset
// generators covering the degenerate corpus shapes that break naive
// entity-resolution pipelines (empty texts, single records, all-identical
// records, one giant block, unicode garbage). Serving-oriented drivers
// round out the suite: a slow-client reader, a reader that cancels a
// context at an exact stream offset, and a concurrent storm driver for
// admission-control tests.
//
// Everything is seeded and reproducible: the same configuration always
// injects the same faults, so a failure found by the harness can be
// replayed as a regression test.
package faultcheck

import (
	"context"
	"errors"
	"io"
	"math/rand"
	"strings"
	"sync"
)

// ErrInjected is the error a ChaosReader returns when its failure point is
// reached. Tests assert on it with errors.Is to distinguish injected faults
// from genuine ones.
var ErrInjected = errors.New("faultcheck: injected read error")

// ChaosReader wraps an io.Reader with deterministic fault injection. Reads
// are fragmented into short random chunks (exercising every resumption path
// in the consumer), and an error can be injected after a byte threshold
// (exercising mid-stream failure handling).
type ChaosReader struct {
	src io.Reader
	rng *rand.Rand

	// MaxChunk caps the bytes returned per Read call; 0 disables
	// fragmentation. Chunk sizes are drawn uniformly from [1, MaxChunk].
	MaxChunk int
	// FailAfter injects ErrInjected once this many bytes have been
	// delivered; negative (the default from New) never fails.
	FailAfter int64

	delivered int64
	failed    bool
}

// New returns a ChaosReader over src with deterministic randomness. By
// default it only fragments (MaxChunk 7) and never fails; adjust MaxChunk
// and FailAfter to taste.
func New(src io.Reader, seed int64) *ChaosReader {
	return &ChaosReader{src: src, rng: rand.New(rand.NewSource(seed)), MaxChunk: 7, FailAfter: -1}
}

// Read implements io.Reader with short reads and the configured mid-stream
// failure. After the failure point every call keeps returning ErrInjected,
// matching how a broken socket stays broken.
func (c *ChaosReader) Read(p []byte) (int, error) {
	if c.failed {
		return 0, ErrInjected
	}
	if len(p) == 0 {
		return 0, nil
	}
	n := len(p)
	if c.MaxChunk > 0 && n > c.MaxChunk {
		n = 1 + c.rng.Intn(c.MaxChunk)
	}
	if c.FailAfter >= 0 {
		if remaining := c.FailAfter - c.delivered; remaining <= 0 {
			c.failed = true
			return 0, ErrInjected
		} else if int64(n) > remaining {
			n = int(remaining)
		}
	}
	n, err := c.src.Read(p[:n])
	c.delivered += int64(n)
	return n, err
}

// SlowReader simulates a slow client: it delivers src in Chunk-byte pieces
// and invokes Pause between deliveries. Pause is a plain hook (tests inject
// time.Sleep, a channel wait, or a counter), which keeps the driver itself
// deterministic and clock-free.
type SlowReader struct {
	src io.Reader
	// Chunk caps the bytes per Read; values below 1 are treated as 1.
	Chunk int
	// Pause runs before every Read (nil pauses nothing).
	Pause func()
}

// NewSlowReader returns a SlowReader delivering chunk-byte reads with pause
// between them.
func NewSlowReader(src io.Reader, chunk int, pause func()) *SlowReader {
	return &SlowReader{src: src, Chunk: chunk, Pause: pause}
}

// Read implements io.Reader with throttled, fragmented delivery.
func (s *SlowReader) Read(p []byte) (int, error) {
	if s.Pause != nil {
		s.Pause()
	}
	if len(p) == 0 {
		return 0, nil
	}
	n := s.Chunk
	if n < 1 {
		n = 1
	}
	if n > len(p) {
		n = len(p)
	}
	return s.src.Read(p[:n])
}

// CancelAfterReader cancels a context once a byte threshold has been
// delivered, then keeps serving bytes normally — the consumer's own
// cancellation checkpoints, not the reader, must abort the work. It drives
// mid-job cancellation tests: the cancel fires at a deterministic point in
// the stream regardless of scheduler timing.
type CancelAfterReader struct {
	src io.Reader
	// After is the delivered-byte threshold that triggers Cancel.
	After int64
	// Cancel runs once when After bytes have been delivered.
	Cancel context.CancelFunc

	delivered int64
	fired     bool
}

// NewCancelAfterReader returns a reader that invokes cancel after the first
// `after` bytes of src have been delivered.
func NewCancelAfterReader(src io.Reader, after int64, cancel context.CancelFunc) *CancelAfterReader {
	return &CancelAfterReader{src: src, After: after, Cancel: cancel}
}

// Read implements io.Reader, firing the cancellation exactly once at the
// configured offset.
func (c *CancelAfterReader) Read(p []byte) (int, error) {
	n, err := c.src.Read(p)
	c.delivered += int64(n)
	if !c.fired && c.delivered >= c.After && c.Cancel != nil {
		c.fired = true
		c.Cancel()
	}
	return n, err
}

// Storm fires n invocations of f concurrently — an overload burst — and
// returns the per-invocation results in index order. It is the load driver
// for admission-control tests: every invocation starts as close to
// simultaneously as a barrier can arrange, so a bounded queue sees the full
// burst at once.
func Storm(n int, f func(i int) error) []error {
	out := make([]error, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			out[i] = f(i)
		}(i)
	}
	close(start)
	wg.Wait()
	return out
}

// Record mirrors er.Record structurally (text, source, entity label)
// without importing the root package, so both the root tests and internal
// tests can consume the generators.
type Record struct {
	Text   string
	Source int
	Entity string
}

// Case is one adversarial dataset: a name for subtests and the records.
type Case struct {
	Name    string
	Records []Record
}

// Cases returns the adversarial dataset suite. Every case is deterministic.
// The suite deliberately includes inputs where blocking produces zero
// candidate pairs, exactly one record, quadratically many pairs from a
// single block, and tokenizer-hostile byte sequences — a robust pipeline
// must return finite, panic-free results on all of them.
func Cases() []Case {
	return []Case{
		{Name: "empty-texts", Records: repeat(6, func(i int) Record {
			return Record{Text: ""}
		})},
		{Name: "one-record", Records: []Record{{Text: "single lonely record"}}},
		{Name: "all-identical", Records: repeat(12, func(i int) Record {
			return Record{Text: "acme turbo encabulator 9000"}
		})},
		{Name: "single-giant-block", Records: repeat(30, func(i int) Record {
			// Every record shares the same two terms, so blocking puts all
			// of them in one block and emits the full quadratic pair set.
			return Record{Text: "blk common u" + string(rune('a'+i%26)) + string(rune('a'+i/26))}
		})},
		{Name: "unicode-garbage", Records: unicodeGarbage(10, 99)},
		{Name: "whitespace-only", Records: repeat(4, func(i int) Record {
			return Record{Text: " \t\n\v  "}
		})},
	}
}

func repeat(n int, gen func(i int) Record) []Record {
	out := make([]Record, n)
	for i := range out {
		out[i] = gen(i)
	}
	return out
}

// unicodeGarbage builds records of tokenizer-hostile runes: combining
// marks, bidirectional controls, zero-width joiners, astral-plane symbols,
// lone control bytes and invalid UTF-8.
func unicodeGarbage(n int, seed int64) []Record {
	rng := rand.New(rand.NewSource(seed))
	hostile := []string{
		"́̂̃",                    // combining marks with no base
		"‮‭",                     // bidi overrides
		"‍‌",                     // zero-width joiner / non-joiner
		"\U0001F4A9\U0001F680",   // astral-plane emoji
		"\x00\x01\x02",           // control bytes
		"\xff\xfe\xfd",           // invalid UTF-8
		"ﬁﬂﬀ",                    // ligatures
		"ｆｕｌｌｗｉｄｔｈ",              // fullwidth forms
		"אְבֱ",                   // RTL with points
		strings.Repeat("ä", 300), // long run of two-byte runes
	}
	out := make([]Record, n)
	for i := range out {
		var b strings.Builder
		for w := 0; w < 3+rng.Intn(4); w++ {
			if w > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(hostile[rng.Intn(len(hostile))])
		}
		out[i] = Record{Text: b.String()}
	}
	return out
}
