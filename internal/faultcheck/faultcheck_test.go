package faultcheck

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/guard"
)

func sampleCSV() string {
	var b strings.Builder
	b.WriteString("id,entity,source,text\n")
	rows := []string{
		`0,e0,0,"ipod nano 4gb silver"`,
		`1,e0,1,"apple ipod nano 4 gb"`,
		`2,e1,0,"canon powershot sd1100"`,
		`3,e1,1,"canon power shot sd 1100 is"`,
		`4,,0,"unlabeled widget, with comma"`,
	}
	b.WriteString(strings.Join(rows, "\n"))
	b.WriteString("\n")
	return b.String()
}

// TestChaosReaderDeliversEverything checks that pure fragmentation (no
// failure point) is invisible to the consumer: the bytes come out intact.
func TestChaosReaderDeliversEverything(t *testing.T) {
	payload := sampleCSV()
	for seed := int64(1); seed <= 20; seed++ {
		cr := New(strings.NewReader(payload), seed)
		cr.MaxChunk = 1 + int(seed)%5
		got, err := io.ReadAll(cr)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if string(got) != payload {
			t.Fatalf("seed %d: payload corrupted by fragmentation", seed)
		}
	}
}

// TestChaosReaderFailsMidStream checks the failure point: exactly FailAfter
// bytes are delivered, then every Read returns ErrInjected.
func TestChaosReaderFailsMidStream(t *testing.T) {
	payload := sampleCSV()
	cr := New(strings.NewReader(payload), 7)
	cr.FailAfter = 10
	got, err := io.ReadAll(cr)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("want ErrInjected, got %v", err)
	}
	if len(got) != 10 {
		t.Fatalf("delivered %d bytes before failing, want 10", len(got))
	}
	if _, err := cr.Read(make([]byte, 8)); !errors.Is(err, ErrInjected) {
		t.Fatal("reader must stay broken after the injected failure")
	}
}

// TestLoadCSVUnderShortReads feeds LoadCSV through aggressive fragmentation
// at many seeds and requires the parse to be byte-for-byte equivalent to a
// clean read.
func TestLoadCSVUnderShortReads(t *testing.T) {
	payload := sampleCSV()
	want, err := dataset.LoadCSV(strings.NewReader(payload), "clean")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 25; seed++ {
		cr := New(strings.NewReader(payload), seed)
		cr.MaxChunk = 3
		got, err := dataset.LoadCSV(cr, "clean")
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(got.Records) != len(want.Records) {
			t.Fatalf("seed %d: %d records, want %d", seed, len(got.Records), len(want.Records))
		}
		for i := range got.Records {
			g, w := got.Records[i], want.Records[i]
			if g.ID != w.ID || g.EntityID != w.EntityID || g.Source != w.Source || g.Text != w.Text {
				t.Fatalf("seed %d: record %d differs: %+v vs %+v", seed, i, g, w)
			}
		}
	}
}

// TestLoadCSVMidStreamError injects a failure at every byte offset of the
// stream and requires LoadCSV to return an error wrapping ErrInjected —
// never a panic, never a silently truncated dataset.
func TestLoadCSVMidStreamError(t *testing.T) {
	payload := sampleCSV()
	for off := int64(0); off < int64(len(payload)); off++ {
		cr := New(strings.NewReader(payload), 3)
		cr.FailAfter = off
		d, err := dataset.LoadCSV(cr, "chaos")
		if err == nil {
			t.Fatalf("offset %d: parse succeeded on a truncated, failed stream (%d records)",
				off, len(d.Records))
		}
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("offset %d: error %v does not wrap the injected fault", off, err)
		}
	}
}

// TestChaosReaderEmptyBuffer documents the io.Reader contract corner: a
// zero-length destination reads zero bytes without consuming the failure
// budget.
func TestChaosReaderEmptyBuffer(t *testing.T) {
	cr := New(bytes.NewReader([]byte("abc")), 1)
	if n, err := cr.Read(nil); n != 0 || err != nil {
		t.Fatalf("Read(nil) = %d, %v", n, err)
	}
}

// TestSlowReaderDeliversEverything checks that throttling is invisible to
// the consumer (bytes intact, Pause invoked once per read).
func TestSlowReaderDeliversEverything(t *testing.T) {
	payload := sampleCSV()
	pauses := 0
	sr := NewSlowReader(strings.NewReader(payload), 3, func() { pauses++ })
	got, err := io.ReadAll(sr)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != payload {
		t.Fatal("payload corrupted by throttled delivery")
	}
	if pauses < len(payload)/3 {
		t.Fatalf("Pause invoked %d times for %d bytes of 3-byte reads", pauses, len(payload))
	}
}

// TestCancelAfterReaderFiresOnce pins the cancellation offset: the hook
// fires exactly once, at the first read that crosses the threshold, and the
// stream keeps delivering afterwards.
func TestCancelAfterReaderFiresOnce(t *testing.T) {
	payload := sampleCSV()
	fired := 0
	cr := NewCancelAfterReader(strings.NewReader(payload), 10, func() { fired++ })
	got, err := io.ReadAll(cr)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != payload {
		t.Fatal("payload corrupted")
	}
	if fired != 1 {
		t.Fatalf("cancel fired %d times, want 1", fired)
	}
}

// TestLoadCSVCheckCancelsMidParse is the satellite acceptance test: a huge
// CSV stream whose context is canceled partway must abort the parse with
// the cancellation cause well before the stream is consumed — the row loop,
// not only the final Validate, observes the checkpoint.
func TestLoadCSVCheckCancelsMidParse(t *testing.T) {
	var b strings.Builder
	b.WriteString("id,entity,source,text\n")
	for i := 0; i < 50_000; i++ {
		fmt.Fprintf(&b, "%d,,0,record number %d with some words\n", i, i)
	}
	payload := b.String()
	ctx, cancel := context.WithCancel(context.Background())
	src := NewCancelAfterReader(strings.NewReader(payload), int64(len(payload)/10), cancel)
	check := guard.FromContext(ctx).WithStride(1)
	d, err := dataset.LoadCSVCheck(src, "huge", check)
	if err == nil {
		t.Fatalf("canceled mid-parse yet parsed %d records to completion", len(d.Records))
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if src.delivered > int64(len(payload))/2 {
		t.Fatalf("parse consumed %d of %d bytes after cancellation — row loop is not polling",
			src.delivered, len(payload))
	}
}

// TestStormRunsEveryInvocation checks the storm driver's accounting: n
// results, index-aligned, none lost.
func TestStormRunsEveryInvocation(t *testing.T) {
	errs := Storm(32, func(i int) error {
		if i%2 == 0 {
			return nil
		}
		return fmt.Errorf("odd %d", i)
	})
	if len(errs) != 32 {
		t.Fatalf("%d results for 32 invocations", len(errs))
	}
	for i, err := range errs {
		if (i%2 == 0) != (err == nil) {
			t.Fatalf("result %d misaligned: %v", i, err)
		}
	}
}

// TestCasesAreDeterministic ensures replayability: two invocations generate
// identical suites.
func TestCasesAreDeterministic(t *testing.T) {
	a, b := Cases(), Cases()
	if len(a) != len(b) {
		t.Fatal("suite size not deterministic")
	}
	for i := range a {
		if a[i].Name != b[i].Name || len(a[i].Records) != len(b[i].Records) {
			t.Fatalf("case %d differs between invocations", i)
		}
		for j := range a[i].Records {
			if a[i].Records[j] != b[i].Records[j] {
				t.Fatalf("case %s record %d not deterministic", a[i].Name, j)
			}
		}
	}
}
