package faultcheck

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/wal"
)

// Filesystem-level fault injection for the durability layer. FaultFS wraps
// a wal.FS and injects, deterministically and per configuration, the
// storage failures a write-ahead log must survive: short writes, silent
// bit-flips, fsync failures, out-of-space errors, and — via Crash — the
// torn final record a power cut leaves behind. The WAL chaos suite drives
// every wal I/O path through it and asserts the crash-recovery contract:
// acknowledged records always replay, everything else fails typed, nothing
// panics.

// ErrInjectedIO is the error injected for short writes and fsync
// failures. Tests assert on it with errors.Is to distinguish injected
// faults from genuine ones.
var ErrInjectedIO = errors.New("faultcheck: injected I/O error")

// ErrNoSpace is the injected out-of-space error (the harness's ENOSPC).
var ErrNoSpace = errors.New("faultcheck: injected no space left on device")

// FaultFS wraps a wal.FS with deterministic fault injection. The zero
// knobs inject nothing; configure before handing it to wal.Open. All
// counters are FS-global, so a knob like FailSyncAfter counts syncs
// across every file the log touches.
type FaultFS struct {
	// Base is the filesystem being wrapped (typically wal.OSFS over a
	// test temp dir).
	Base wal.FS

	// ShortWriteEvery injects, on every Nth Write call, a half-length
	// write returning ErrInjectedIO; 0 disables.
	ShortWriteEvery int
	// FlipBitAfter silently flips the low bit of the first byte written
	// once this many bytes have passed through the FS — at-rest
	// corruption the writer cannot see; negative disables.
	FlipBitAfter int64
	// FailSyncAfter makes every Sync past the first N fail with
	// ErrInjectedIO; negative disables, 0 fails the first Sync.
	FailSyncAfter int
	// FailDirSyncAfter makes every SyncDir past the first N fail with
	// ErrInjectedIO; negative disables, 0 fails the first directory
	// fsync. Directory fsyncs are counted separately from file fsyncs so
	// the two fault matrices compose independently.
	FailDirSyncAfter int
	// Capacity bounds the total bytes writable through the FS; writes
	// past it deliver a prefix and return ErrNoSpace, like a full disk;
	// 0 disables.
	Capacity int64

	mu       sync.Mutex
	writes   int
	syncs    int
	dirSyncs int
	written  int64
	flipped  bool
	lastPath string           // most recently written file, for Crash
	sizes    map[string]int64 // bytes on disk per created path, for Crash
}

// NewFaultFS wraps base with all faults disabled (FlipBitAfter,
// FailSyncAfter and FailDirSyncAfter are set to their -1 "never" values).
func NewFaultFS(base wal.FS) *FaultFS {
	return &FaultFS{Base: base, FlipBitAfter: -1, FailSyncAfter: -1, FailDirSyncAfter: -1}
}

// Crash simulates a power cut with a torn final record: it truncates the
// most recently written file by tearBytes, discarding its tail the way a
// partially persisted write does. Call it after abandoning the Log (a
// crashed process runs no Close), then re-open the directory to exercise
// recovery.
func (f *FaultFS) Crash(tearBytes int64) error {
	f.mu.Lock()
	path, size := f.lastPath, f.sizes[f.lastPath]
	f.mu.Unlock()
	if path == "" {
		return fmt.Errorf("faultcheck: no file written yet: %w", ErrInjectedIO)
	}
	keep := size - tearBytes
	if keep < 0 {
		keep = 0
	}
	return f.Base.Truncate(path, keep)
}

// MkdirAll implements wal.FS.
func (f *FaultFS) MkdirAll(dir string) error { return f.Base.MkdirAll(dir) }

// ReadDir implements wal.FS.
func (f *FaultFS) ReadDir(dir string) ([]string, error) { return f.Base.ReadDir(dir) }

// Create implements wal.FS, returning a fault-injecting file handle.
func (f *FaultFS) Create(path string) (wal.File, error) {
	file, err := f.Base.Create(path)
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	if f.sizes == nil {
		f.sizes = make(map[string]int64)
	}
	f.sizes[path] = 0
	f.lastPath = path
	f.mu.Unlock()
	return &faultFile{fs: f, path: path, file: file}, nil
}

// Open implements wal.FS; reads are not perturbed (the chaos suite
// corrupts at-rest bytes via FlipBitAfter and Crash instead).
func (f *FaultFS) Open(path string) (wal.File, error) { return f.Base.Open(path) }

// Rename implements wal.FS.
func (f *FaultFS) Rename(oldPath, newPath string) error {
	err := f.Base.Rename(oldPath, newPath)
	if err == nil {
		f.mu.Lock()
		if size, ok := f.sizes[oldPath]; ok {
			f.sizes[newPath] = size
			delete(f.sizes, oldPath)
		}
		if f.lastPath == oldPath {
			f.lastPath = newPath
		}
		f.mu.Unlock()
	}
	return err
}

// Remove implements wal.FS.
func (f *FaultFS) Remove(path string) error { return f.Base.Remove(path) }

// SyncDir implements wal.FS with the configured directory-fsync fault.
func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	n := f.dirSyncs
	f.dirSyncs++
	fail := f.FailDirSyncAfter >= 0 && n >= f.FailDirSyncAfter
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("faultcheck: fsync of directory %s: %w", dir, ErrInjectedIO)
	}
	return f.Base.SyncDir(dir)
}

// Truncate implements wal.FS.
func (f *FaultFS) Truncate(path string, size int64) error {
	err := f.Base.Truncate(path, size)
	if err == nil {
		f.mu.Lock()
		if cur, ok := f.sizes[path]; ok && cur > size {
			f.sizes[path] = size
		}
		f.mu.Unlock()
	}
	return err
}

// faultFile injects the configured write and sync faults for one file.
type faultFile struct {
	fs   *FaultFS
	path string
	file wal.File
}

// Read implements wal.File.
func (ff *faultFile) Read(p []byte) (int, error) { return ff.file.Read(p) }

// Close implements wal.File.
func (ff *faultFile) Close() error { return ff.file.Close() }

// Write implements wal.File with the configured short-write, bit-flip and
// capacity faults.
func (ff *faultFile) Write(p []byte) (int, error) {
	f := ff.fs
	f.mu.Lock()
	f.writes++
	limit := len(p)
	var injected error
	if f.ShortWriteEvery > 0 && f.writes%f.ShortWriteEvery == 0 && limit > 1 {
		limit /= 2
		injected = ErrInjectedIO
	}
	if f.Capacity > 0 && f.written+int64(limit) > f.Capacity {
		limit = int(f.Capacity - f.written)
		if limit < 0 {
			limit = 0
		}
		injected = ErrNoSpace
	}
	data := p[:limit]
	if f.FlipBitAfter >= 0 && !f.flipped && f.written+int64(limit) > f.FlipBitAfter {
		at := f.FlipBitAfter - f.written
		if at < 0 {
			at = 0
		}
		corrupted := append([]byte(nil), data...)
		corrupted[at] ^= 0x01
		data = corrupted
		f.flipped = true
	}
	f.mu.Unlock()

	n, err := ff.file.Write(data)

	f.mu.Lock()
	f.written += int64(n)
	f.sizes[ff.path] += int64(n)
	f.lastPath = ff.path
	f.mu.Unlock()
	if err == nil {
		err = injected
	}
	if err != nil {
		return n, fmt.Errorf("faultcheck: write to %s: %w", ff.path, err)
	}
	return n, nil
}

// Sync implements wal.File with the configured fsync fault.
func (ff *faultFile) Sync() error {
	f := ff.fs
	f.mu.Lock()
	n := f.syncs
	f.syncs++
	fail := f.FailSyncAfter >= 0 && n >= f.FailSyncAfter
	f.mu.Unlock()
	if fail {
		return fmt.Errorf("faultcheck: fsync of %s: %w", ff.path, ErrInjectedIO)
	}
	return ff.file.Sync()
}
