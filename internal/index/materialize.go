package index

import (
	"slices"
	"sort"
	"strings"

	"repro/internal/parallel"
	"repro/internal/textproc"
)

// sortInt32 insertion-sorts a short slice in place. Docs are a dozen or so
// terms; at that length insertion sort beats sort.Slice's closure-and-
// interface machinery several times over, and this runs once per record
// per materialize.
func sortInt32(a []int32) {
	//lint:ignore guardloop bounded by one record's dozen-term doc; the caller's scheduler chunk polls per record
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// ensureSorted maintains the lexicographic vocabulary order. Surfaces are
// interned append-only (a deleted record's terms keep their slot with
// DF 0), so ix.sortedIIDs always covers exactly the first len(sortedIIDs)
// intern IDs: only the surfaces interned since the last call need sorting,
// and a linear merge folds them in. A handful of new terms therefore costs
// O(new log new + V) instead of the O(V log V) full re-sort — the
// difference between a term-introducing upsert and a free one on the warm
// resolve path.
func (ix *Index) ensureSorted() {
	if !ix.vocabDirty && len(ix.sortedIIDs) == len(ix.surfaces) {
		return
	}
	old := ix.sortedIIDs
	fresh := make([]int32, len(ix.surfaces)-len(old))
	for i := range fresh {
		fresh[i] = int32(len(old) + i)
	}
	slices.SortFunc(fresh, func(a, b int32) int {
		return strings.Compare(ix.surfaces[a], ix.surfaces[b])
	})
	merged := make([]int32, 0, len(ix.surfaces))
	i, j := 0, 0
	for i < len(old) && j < len(fresh) {
		// Interned surfaces are unique, so the order of equal elements
		// never arises; <= keeps the merge stable anyway.
		if ix.surfaces[old[i]] <= ix.surfaces[fresh[j]] {
			merged = append(merged, old[i])
			i++
		} else {
			merged = append(merged, fresh[j])
			j++
		}
	}
	merged = append(merged, old[i:]...)
	merged = append(merged, fresh[j:]...)
	ix.sortedIIDs = merged
	if cap(ix.rankOf) < len(ix.surfaces) {
		ix.rankOf = make([]int32, len(ix.surfaces))
	}
	ix.rankOf = ix.rankOf[:len(ix.surfaces)]
	for pos, iid := range ix.sortedIIDs {
		ix.rankOf[iid] = int32(pos)
	}
	ix.vocabDirty = false
}

// ensureOrder rebuilds the ascending-external-ID record order after an
// insert or delete changed the ID set.
func (ix *Index) ensureOrder() {
	if !ix.orderDirty {
		return
	}
	ix.order = ix.order[:0]
	for rid, id := range ix.extID {
		if id != "" {
			ix.order = append(ix.order, int32(rid))
		}
	}
	sort.Slice(ix.order, func(a, b int) bool {
		return ix.extID[ix.order[a]] < ix.extID[ix.order[b]]
	})
	ix.orderDirty = false
}

// Materialize assembles the current Corpus and candidate Graph over the
// live records in ascending external-ID order — bit-identical to running
// textproc.BuildCorpus + BuildGraph over the same records from scratch —
// and drains the touched-record set accumulated since the previous call.
// The cost is proportional to the corpus surface (tokens + surviving
// pairs), not to the quadratic blocking scan the batch path performs.
func (ix *Index) Materialize() *View {
	ix.ensureSorted()
	ix.ensureOrder()
	n := len(ix.order)
	maxDF := ix.maxKeptDF()

	// Kept terms in lexicographic order become the dense corpus IDs. The
	// layout (dense ID assignment, surface map, eligibility flags) is
	// cached across calls: mutations invalidate it only when they intern a
	// new surface or flip a term's kept/eligible status, so the common
	// small mutation reuses the 50k-entry string map instead of rebuilding
	// it. Document frequencies change on every mutation, so Corpus.DF is
	// always re-derived from the cached kept-term list.
	if !ix.denseValid {
		denseOf := make([]int32, len(ix.surfaces))
		for i := range denseOf {
			denseOf[i] = -1
		}
		var surfaces []string
		var denseIIDs []int32
		for _, iid := range ix.sortedIIDs {
			f := ix.df[iid]
			if f < 1 || !ix.keptAt(iid, f, maxDF) {
				continue
			}
			denseOf[iid] = int32(len(surfaces))
			surfaces = append(surfaces, ix.surfaces[iid])
			denseIIDs = append(denseIIDs, iid)
		}
		eligible := make([]bool, len(surfaces))
		for dense, iid := range denseIIDs {
			eligible[dense] = ix.eligAt(iid, ix.df[iid], maxDF)
		}
		index := make(map[string]int, len(surfaces))
		for dense, s := range surfaces {
			index[s] = dense
		}
		ix.denseOf = denseOf
		ix.denseIIDs = denseIIDs
		ix.denseSurfaces = surfaces
		ix.denseIndex = index
		ix.denseElig = eligible
		ix.denseValid = true
	}
	denseOf, eligible := ix.denseOf, ix.denseElig
	nt := len(ix.denseSurfaces)
	denseDF := make([]int, nt)
	for dense, iid := range ix.denseIIDs {
		denseDF[dense] = int(ix.df[iid])
	}

	c := &textproc.Corpus{
		Terms: ix.denseSurfaces,
		Index: ix.denseIndex,
		Docs:  make([][]int32, n),
		Seqs:  make([][]int32, n),
		DF:    denseDF,
	}
	posOf := make([]int32, len(ix.extID))
	ids := make([]string, n)
	sources := make([]int, n)
	for pos, rid := range ix.order {
		posOf[rid] = int32(pos)
	}
	// Per-record view assembly. All docs (and all seqs) share one backing
	// array — two bulk allocations instead of 2n small ones, which is what
	// keeps the GC out of the warm resolve path — and the work fans out
	// over the deterministic scheduler: chunk boundaries come from the
	// offset arrays, every chunk writes only its own positions' rows, so
	// the view is bit-identical at every worker count.
	workers := ix.cfg.Block.Workers
	docOff := make([]int32, n+1)
	seqOff := make([]int32, n+1)
	for pos, rid := range ix.order {
		docOff[pos+1] = docOff[pos] + int32(len(ix.terms[rid]))
		seqOff[pos+1] = seqOff[pos] + int32(len(ix.seqs[rid]))
	}
	docBuf := make([]int32, docOff[n])
	seqBuf := make([]int32, seqOff[n])
	parallel.ForGrain(workers, n, 1<<10, func(lo, hi int) {
		//lint:ignore guardloop output-sized copy: assembles each record's term list once per chunk; no quadratic candidate enumeration happens here
		for pos := lo; pos < hi; pos++ {
			rid := ix.order[pos]
			ids[pos] = ix.extID[rid]
			sources[pos] = int(ix.sources[rid])
			doc := docBuf[docOff[pos]:docOff[pos]:docOff[pos+1]]
			for _, t := range ix.terms[rid] {
				if d := denseOf[t]; d >= 0 {
					doc = append(doc, d)
				}
			}
			sortInt32(doc)
			c.Docs[pos] = doc
			seq := seqBuf[seqOff[pos]:seqOff[pos]:seqOff[pos+1]]
			for _, t := range ix.seqs[rid] {
				if d := denseOf[t]; d >= 0 {
					seq = append(seq, d)
				}
			}
			c.Seqs[pos] = seq
		}
	})

	// Survivors from the pair table, re-keyed to positions and tagged with
	// their first eligible shared dense term, then assembled in the exact
	// batch enumeration order. Map iteration order is irrelevant:
	// assembleGraph sorts by (firstT, key).
	pairKeys := make([]uint64, 0, len(ix.pairs))
	shareds := make([]int32, 0, len(ix.pairs))
	for key, shared := range ix.pairs {
		pairKeys = append(pairKeys, key)
		shareds = append(shareds, shared)
	}
	survivors := make([]survivor, len(pairKeys))
	parallel.ForGrain(workers, len(pairKeys), 1<<12, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			key := pairKeys[i]
			ra, rb := int32(key>>32), int32(key&0xffffffff)
			pa, pb := posOf[ra], posOf[rb]
			if pa > pb {
				pa, pb = pb, pa
			}
			first := int32(-1)
			di, dj := c.Docs[pa], c.Docs[pb]
			x, y := 0, 0
			for x < len(di) && y < len(dj) {
				switch {
				case di[x] < dj[y]:
					x++
				case di[x] > dj[y]:
					y++
				default:
					if eligible[di[x]] {
						first = di[x]
						x = len(di) // break
					} else {
						x++
						y++
					}
				}
			}
			survivors[i] = survivor{r: pa, q: pb, shared: shareds[i], firstT: first}
		}
	})
	g := assembleGraph(c, survivors, eligible, n, nt)

	touched := make([]int, 0, len(ix.touchedIDs))
	for id := range ix.touchedIDs {
		if rid, ok := ix.byID[id]; ok {
			touched = append(touched, int(posOf[rid]))
		}
	}
	sort.Ints(touched)
	ix.touchedIDs = make(map[string]struct{})

	return &View{Corpus: c, Graph: g, Sources: sources, IDs: ids, Touched: touched}
}
