package index

import (
	"sort"
	"strings"

	"repro/internal/textproc"
)

// Config parameterizes a mutable Index. The corpus options must match the
// pipeline's (tokenizer, MaxDFRatio, MinDF, stopwords) for Materialize to
// reproduce textproc.BuildCorpus bit for bit; the block options carry the
// candidate filters. Block.Check and Block.Workers apply to the full
// pair-table rebuild fallback; single-record mutations are delta-sized and
// run inline.
type Config struct {
	Corpus textproc.CorpusOptions
	Block  BatchOptions
}

// Delta reports what one mutation changed in the candidate pair set. Pair
// endpoints are external record IDs. When the mutation's blast radius made
// an incremental update more expensive than starting over (a frequency
// threshold crossed on a high-df term), the index rebuilds the pair table
// instead and reports only Rebuilt — the per-pair lists would be the whole
// corpus.
type Delta struct {
	// AddedPairs lists candidate pairs the mutation created.
	AddedPairs [][2]string
	// RemovedPairs lists candidate pairs the mutation destroyed.
	RemovedPairs [][2]string
	// Touched lists the external IDs whose candidate rows were recomputed.
	Touched []string
	// Rebuilt reports that the pair table was rebuilt from scratch instead
	// of patched (AddedPairs/RemovedPairs are nil in that case).
	Rebuilt bool
}

// View is one materialized snapshot of the index: a Corpus and candidate
// Graph bit-identical to what textproc.BuildCorpus + BuildGraph would
// produce over the live records in ascending external-ID order, plus the
// position-aligned bookkeeping a resolver needs.
type View struct {
	Corpus  *textproc.Corpus
	Graph   *Graph
	Sources []int
	// IDs maps record position to external ID (ascending).
	IDs []string
	// Touched lists the positions whose candidate rows changed since the
	// previous Materialize (advisory: the delta-scoped resolver's
	// correctness rests on per-component content keys, not on this set).
	Touched []int
}

// Index is a mutable inverted index over a keyed record collection that
// maintains the blocking survivor set incrementally: Upsert and Delete
// re-derive only the candidate rows their blast radius can have changed —
// the mutated record, plus every record holding a term whose eligibility
// flipped (document-frequency thresholds move with df and with the corpus
// size). Materialize then assembles a Corpus + Graph bit-identical to a
// from-scratch batch build, in time proportional to the corpus surface, not
// to the blocking scan.
//
// Not safe for concurrent use; callers serialize access.
type Index struct {
	cfg  Config
	stop map[string]struct{}

	// Interned vocabulary. Term IDs (iids) are stable across mutations;
	// lexicographic order is maintained lazily in sorted/rankOf.
	surfaces   []string
	vocab      map[string]int32
	df         []int32
	stopped    []bool
	postings   [][]int32 // iid -> sorted live rids
	vocabDirty bool
	sortedIIDs []int32 // iids in lexicographic surface order
	rankOf     []int32 // iid -> position in sortedIIDs

	// Records. Handles (rids) are stable; deleted rids go on the free list.
	extID   []string // rid -> external id ("" when free)
	byID    map[string]int32
	seqs    [][]int32 // rid -> token iid sequence (with duplicates, in order)
	terms   [][]int32 // rid -> sorted unique iids
	sources []int32
	docLen  []int32 // rid -> count of corpus-kept terms
	freeRid []int32
	live    int

	// Survivor pair table: every candidate pair that passes the blocking
	// filters under the current corpus state, keyed by record handles.
	pairs map[uint64]int32 // Key(ridA, ridB) -> shared eligible-term count
	adj   [][]int32        // rid -> partner rids; staleness resolved against pairs

	// Mutation scratch, reused across calls.
	cnt    []int32
	marked []bool

	// Cached ascending-external-ID record order for Materialize.
	order      []int32
	orderDirty bool

	// Cached dense vocabulary layout for Materialize: the kept terms in
	// lexicographic order with their dense IDs, surface→dense map and
	// eligibility flags. Valid while no mutation interned a new surface or
	// flipped any term's kept/eligible status — document frequencies may
	// change freely (Corpus.DF is rebuilt every Materialize), but the
	// layout, and with it the 50k-entry string map, is reused. denseValid
	// starts false and is cleared conservatively: a spurious rebuild costs
	// time, a missed one would corrupt the batch-equivalence promise.
	denseValid    bool
	denseOf       []int32
	denseIIDs     []int32
	denseSurfaces []string
	denseIndex    map[string]int
	denseElig     []bool

	// External IDs whose candidate rows changed since the last Materialize.
	touchedIDs map[string]struct{}
}

// New returns an empty index.
func New(cfg Config) *Index {
	stop := make(map[string]struct{}, len(cfg.Corpus.Stopwords))
	for _, w := range cfg.Corpus.Stopwords {
		stop[strings.ToLower(w)] = struct{}{}
	}
	return &Index{
		cfg:        cfg,
		stop:       stop,
		vocab:      make(map[string]int32),
		byID:       make(map[string]int32),
		pairs:      make(map[uint64]int32),
		touchedIDs: make(map[string]struct{}),
	}
}

// Len returns the number of live records.
func (ix *Index) Len() int { return ix.live }

// maxKeptDF returns the frequent-term threshold for the current corpus
// size — the exact formula of textproc.BuildCorpus.
func (ix *Index) maxKeptDF() int32 { return ix.maxKeptDFAt(ix.live) }

// keptAt reports whether a term with document frequency f survives the
// corpus filters (frequency band + stopword list) at threshold maxDF.
func (ix *Index) keptAt(iid, f, maxDF int32) bool {
	return f >= 1 && f >= int32(ix.cfg.Corpus.MinDF) && f <= maxDF && !ix.stopped[iid]
}

// eligAt reports whether a term with document frequency f participates in
// candidate enumeration at threshold maxDF (corpus-kept, df >= 2, under
// the MaxTermRecords cap).
func (ix *Index) eligAt(iid, f, maxDF int32) bool {
	if !ix.keptAt(iid, f, maxDF) || f < 2 {
		return false
	}
	return ix.cfg.Block.MaxTermRecords <= 0 || f <= int32(ix.cfg.Block.MaxTermRecords)
}

// intern returns the stable term ID for a surface form.
func (ix *Index) intern(surface string) int32 {
	if iid, ok := ix.vocab[surface]; ok {
		return iid
	}
	iid := int32(len(ix.surfaces))
	ix.vocab[surface] = iid
	ix.surfaces = append(ix.surfaces, surface)
	ix.df = append(ix.df, 0)
	_, banned := ix.stop[surface]
	ix.stopped = append(ix.stopped, banned)
	ix.postings = append(ix.postings, nil)
	ix.vocabDirty = true
	ix.denseValid = false
	return iid
}

// minSharedFloor returns the clamped MinSharedTerms filter.
func (ix *Index) minSharedFloor() int32 {
	m := int32(ix.cfg.Block.MinSharedTerms)
	if m < 1 {
		m = 1
	}
	return m
}

// Upsert inserts or replaces the record with the given external ID and
// returns what changed in the candidate pair set.
func (ix *Index) Upsert(id, text string, source int) Delta {
	toks := textproc.Tokenize(text, ix.cfg.Corpus.Tokenize)
	seq := make([]int32, len(toks))
	for i, tk := range toks {
		seq[i] = ix.intern(tk)
	}
	terms := uniqueSorted(seq)

	rid, exists := ix.byID[id]
	var oldTerms []int32
	nBefore := ix.live
	if exists {
		oldTerms = ix.terms[rid]
	} else {
		rid = ix.allocRid(id)
		ix.live++
		ix.orderDirty = true
	}
	return ix.applyMutation(rid, id, oldTerms, terms, seq, int32(source), ix.maxKeptDFAt(nBefore), true)
}

// Delete removes the record with the given external ID, reporting whether
// it existed and what its removal changed in the candidate pair set.
func (ix *Index) Delete(id string) (Delta, bool) {
	rid, ok := ix.byID[id]
	if !ok {
		return Delta{}, false
	}
	maxBefore := ix.maxKeptDF()
	oldTerms := ix.terms[rid]
	ix.live--
	ix.orderDirty = true
	d := ix.applyMutation(rid, id, oldTerms, nil, nil, 0, maxBefore, false)
	ix.releaseRid(rid, id)
	return d, true
}

// maxKeptDFAt is maxKeptDF for an explicit corpus size.
func (ix *Index) maxKeptDFAt(n int) int32 {
	if ix.cfg.Corpus.MaxDFRatio <= 0 {
		return int32(n + 1)
	}
	m := int32(ix.cfg.Corpus.MaxDFRatio * float64(n))
	if m < 2 {
		m = 2
	}
	return m
}

// applyMutation performs the shared structural update for Upsert/Delete:
// swap the record's terms, adjust document frequencies and postings, find
// every term whose eligibility flipped (df moved, or the frequency
// thresholds moved with the corpus size), patch docLens, and re-derive the
// candidate rows of the affected records. keep reports whether the record
// remains live (upsert) or is being removed (delete).
func (ix *Index) applyMutation(rid int32, id string, oldTerms, newTerms, newSeq []int32, source, maxBefore int32, keep bool) Delta {
	maxAfter := ix.maxKeptDF()

	// dfTouched: terms whose df changes (symmetric difference of the old
	// and new term sets). Record each one's pre-mutation state.
	type termFlip struct {
		iid          int32
		wasKept, was bool // corpus-kept / block-eligible before
	}
	var flips []termFlip
	noteBefore := func(t int32) {
		f := ix.df[t]
		flips = append(flips, termFlip{
			iid:     t,
			wasKept: ix.keptAt(t, f, maxBefore),
			was:     ix.eligAt(t, f, maxBefore),
		})
	}
	forSymDiff(oldTerms, newTerms, func(t int32, inOld bool) {
		noteBefore(t)
		if inOld {
			ix.postingRemove(t, rid)
		} else {
			ix.postingAdd(t, rid)
		}
	})

	// Threshold shift: when the kept band moved with the corpus size, any
	// term sitting between the old and new thresholds flips. An O(V) scan
	// finds them; the band moves at most every ~1/MaxDFRatio mutations and
	// V is small next to the blocking scan this replaces. With no ratio cap
	// the threshold n+1 moves on every mutation but exceeds every possible
	// df, so no term can flip and the scan is skipped.
	if maxBefore != maxAfter && ix.cfg.Corpus.MaxDFRatio > 0 {
		lo, hi := maxBefore, maxAfter
		if lo > hi {
			lo, hi = hi, lo
		}
		inDiff := func(t int32) bool {
			for _, fl := range flips {
				if fl.iid == t {
					return true
				}
			}
			return false
		}
		for t := int32(0); t < int32(len(ix.df)); t++ {
			f := ix.df[t]
			if f > lo && f <= hi && !ix.stopped[t] && !inDiff(t) {
				flips = append(flips, termFlip{
					iid:     t,
					wasKept: ix.keptAt(t, f, maxBefore),
					was:     ix.eligAt(t, f, maxBefore),
				})
			}
		}
	}

	// Swap the record body.
	ix.terms[rid] = newTerms
	ix.seqs[rid] = newSeq
	ix.sources[rid] = source

	// Diff each candidate term's eligibility, patch docLens for kept
	// flips, and collect the affected records.
	affected := make(map[int32]struct{})
	if keep {
		affected[rid] = struct{}{}
	}
	//lint:ignore guardloop bounded by one record's term flips × capped posting lists; a single-record mutation never approaches batch scale
	for _, fl := range flips {
		f := ix.df[fl.iid]
		isKept := ix.keptAt(fl.iid, f, maxAfter)
		isElig := ix.eligAt(fl.iid, f, maxAfter)
		if isKept != fl.wasKept {
			d := int32(1)
			if !isKept {
				d = -1
			}
			for _, q := range ix.postings[fl.iid] {
				ix.docLen[q] += d
			}
		}
		if isKept != fl.wasKept || isElig != fl.was {
			ix.denseValid = false
			for _, q := range ix.postings[fl.iid] {
				affected[q] = struct{}{}
			}
		}
	}
	// The mutated record's own docLen is recomputed outright.
	if keep {
		ix.docLen[rid] = ix.countKept(newTerms, maxAfter)
	}
	// Records that only lost/gained rid-shared terms still need their
	// docLen adjusted for terms whose kept status did NOT flip but whose
	// membership in rid changed — those affect only rid's docLen, already
	// recomputed. (A term leaving rid changes no other record's docLen.)

	delete(affected, rid)
	if !keep {
		// Removal: drop every pair involving rid directly.
		var removed [][2]string
		for _, p := range ix.adj[rid] {
			key := Key(rid, p)
			if _, ok := ix.pairs[key]; ok {
				delete(ix.pairs, key)
				removed = append(removed, [2]string{id, ix.extID[p]})
				ix.touchedIDs[ix.extID[p]] = struct{}{}
			}
		}
		ix.adj[rid] = nil
		ix.touchedIDs[id] = struct{}{}
		d := ix.recomputeRows(affected, maxAfter)
		d.RemovedPairs = append(d.RemovedPairs, removed...)
		d.Touched = append(d.Touched, id)
		return d
	}

	affected[rid] = struct{}{}
	ix.touchedIDs[id] = struct{}{}
	return ix.recomputeRows(affected, maxAfter)
}

// recomputeRows re-derives the candidate rows of the affected records,
// patching the pair table in place, or falls back to a full rebuild when
// the affected set is a large fraction of the corpus.
func (ix *Index) recomputeRows(affected map[int32]struct{}, maxDF int32) Delta {
	if len(affected) == 0 {
		return Delta{}
	}
	if len(affected) > ix.rebuildThreshold() {
		ix.rebuildPairs(maxDF)
		return Delta{Rebuilt: true}
	}
	// Deterministic processing order (ascending rid) so the Delta's pair
	// lists are reproducible; the resulting table state is order-free.
	rids := make([]int32, 0, len(affected))
	for r := range affected {
		rids = append(rids, r)
	}
	sort.Slice(rids, func(a, b int) bool { return rids[a] < rids[b] })

	var d Delta
	for _, r := range rids {
		ix.touchedIDs[ix.extID[r]] = struct{}{}
		d.Touched = append(d.Touched, ix.extID[r])
		add, rem := ix.recomputeRow(r, maxDF)
		d.AddedPairs = append(d.AddedPairs, add...)
		d.RemovedPairs = append(d.RemovedPairs, rem...)
	}
	return d
}

// rebuildThreshold is the affected-set size above which patching rows one
// by one loses to rebuilding the pair table outright.
func (ix *Index) rebuildThreshold() int {
	t := ix.live / 8
	if t < 1024 {
		t = 1024
	}
	return t
}

// recomputeRow re-derives every candidate pair involving record r and
// diffs it against the stored table.
func (ix *Index) recomputeRow(r int32, maxDF int32) (added, removed [][2]string) {
	cnt := ix.scratchCnt()
	marked := ix.scratchMarked()
	minShared := ix.minSharedFloor()
	cross := ix.cfg.Block.CrossSourceOnly

	var touched []int32
	//lint:ignore guardloop bounded by one record's eligible terms × MaxTermRecords-capped posting lists; large affected sets take the rebuildPairs path, which polls
	for _, t := range ix.terms[r] {
		if !ix.eligAt(t, ix.df[t], maxDF) {
			continue
		}
		for _, q := range ix.postings[t] {
			if q == r {
				continue
			}
			if cross && ix.sources[q] == ix.sources[r] {
				continue
			}
			if cnt[q] == 0 {
				touched = append(touched, q)
			}
			cnt[q]++
		}
	}
	dlr := ix.docLen[r]
	for _, q := range touched {
		s := cnt[q]
		cnt[q] = 0
		if s < minShared {
			continue
		}
		if ix.cfg.Block.MinJaccard > 0 {
			union := int(dlr) + int(ix.docLen[q]) - int(s)
			if union <= 0 || float64(s)/float64(union) < ix.cfg.Block.MinJaccard {
				continue
			}
		}
		key := Key(r, q)
		if _, ok := ix.pairs[key]; !ok {
			// Stale tombstones from earlier removals may linger in either
			// adjacency; re-adding without the membership check would
			// duplicate entries that then survive compaction forever.
			if !containsInt32(ix.adj[r], q) {
				ix.adj[r] = append(ix.adj[r], q)
			}
			if !containsInt32(ix.adj[q], r) {
				ix.adj[q] = append(ix.adj[q], r)
			}
			added = append(added, ix.pairIDs(r, q))
			ix.touchedIDs[ix.extID[q]] = struct{}{}
		}
		ix.pairs[key] = s
		marked[q] = true
	}
	// Drop stored pairs the fresh row no longer produces, compacting the
	// adjacency as we go.
	keepAdj := ix.adj[r][:0]
	for _, p := range ix.adj[r] {
		key := Key(r, p)
		if _, ok := ix.pairs[key]; !ok {
			continue // stale entry from an earlier removal
		}
		if marked[p] {
			keepAdj = append(keepAdj, p)
			continue
		}
		delete(ix.pairs, key)
		removed = append(removed, ix.pairIDs(r, p))
		ix.touchedIDs[ix.extID[p]] = struct{}{}
	}
	ix.adj[r] = keepAdj
	for _, q := range touched {
		marked[q] = false
	}
	return added, removed
}

// pairIDs returns a pair's external IDs in (smaller rid, larger rid) order.
func (ix *Index) pairIDs(a, b int32) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{ix.extID[a], ix.extID[b]}
}

// rebuildPairs recomputes the whole survivor table from the live records —
// the fallback when a mutation's blast radius approaches the corpus.
func (ix *Index) rebuildPairs(maxDF int32) {
	ix.pairs = make(map[uint64]int32)
	for r := range ix.adj {
		ix.adj[r] = nil
	}
	cnt := ix.scratchCnt()
	minShared := ix.minSharedFloor()
	cross := ix.cfg.Block.CrossSourceOnly
	// The rebuild runs to completion even under cancellation: a mutation
	// must leave a coherent table, and the work is bounded by the live
	// corpus. Resolve-level callers observe cancellation through their own
	// checkpoints.
	//lint:ignore guardloop bounded single-corpus rebuild; a partial table would corrupt the incremental invariant
	for r := range ix.terms {
		ri := int32(r)
		if ix.extID[r] == "" {
			continue
		}
		ix.touchedIDs[ix.extID[r]] = struct{}{}
		var touched []int32
		for _, t := range ix.terms[r] {
			if !ix.eligAt(t, ix.df[t], maxDF) {
				continue
			}
			for _, q := range ix.postings[t] {
				if q <= ri {
					continue
				}
				if cross && ix.sources[q] == ix.sources[ri] {
					continue
				}
				if cnt[q] == 0 {
					touched = append(touched, q)
				}
				cnt[q]++
			}
		}
		dlr := ix.docLen[r]
		for _, q := range touched {
			s := cnt[q]
			cnt[q] = 0
			if s < minShared {
				continue
			}
			if ix.cfg.Block.MinJaccard > 0 {
				union := int(dlr) + int(ix.docLen[q]) - int(s)
				if union <= 0 || float64(s)/float64(union) < ix.cfg.Block.MinJaccard {
					continue
				}
			}
			ix.pairs[Key(ri, q)] = s
			ix.adj[ri] = append(ix.adj[ri], q)
			ix.adj[q] = append(ix.adj[q], ri)
		}
	}
}

// countKept counts the corpus-kept terms of a term set.
func (ix *Index) countKept(terms []int32, maxDF int32) int32 {
	var n int32
	for _, t := range terms {
		if ix.keptAt(t, ix.df[t], maxDF) {
			n++
		}
	}
	return n
}

// allocRid assigns a record handle for a new external ID.
func (ix *Index) allocRid(id string) int32 {
	var rid int32
	if n := len(ix.freeRid); n > 0 {
		rid = ix.freeRid[n-1]
		ix.freeRid = ix.freeRid[:n-1]
	} else {
		rid = int32(len(ix.extID))
		ix.extID = append(ix.extID, "")
		ix.seqs = append(ix.seqs, nil)
		ix.terms = append(ix.terms, nil)
		ix.sources = append(ix.sources, 0)
		ix.docLen = append(ix.docLen, 0)
		ix.adj = append(ix.adj, nil)
	}
	ix.extID[rid] = id
	ix.byID[id] = rid
	return rid
}

// releaseRid frees a record handle after deletion.
func (ix *Index) releaseRid(rid int32, id string) {
	ix.extID[rid] = ""
	ix.seqs[rid] = nil
	ix.terms[rid] = nil
	ix.docLen[rid] = 0
	ix.adj[rid] = nil
	delete(ix.byID, id)
	ix.freeRid = append(ix.freeRid, rid)
}

// postingAdd inserts rid into a term's posting list (kept sorted) and
// bumps its df.
func (ix *Index) postingAdd(t, rid int32) {
	p := ix.postings[t]
	i := sort.Search(len(p), func(k int) bool { return p[k] >= rid })
	p = append(p, 0)
	copy(p[i+1:], p[i:])
	p[i] = rid
	ix.postings[t] = p
	ix.df[t]++
}

// postingRemove deletes rid from a term's posting list and drops its df.
func (ix *Index) postingRemove(t, rid int32) {
	p := ix.postings[t]
	i := sort.Search(len(p), func(k int) bool { return p[k] >= rid })
	if i < len(p) && p[i] == rid {
		ix.postings[t] = append(p[:i], p[i+1:]...)
		ix.df[t]--
	}
}

// scratchCnt returns the all-zero per-record counter scratch, growing it to
// the current handle space.
func (ix *Index) scratchCnt() []int32 {
	if cap(ix.cnt) < len(ix.extID) {
		ix.cnt = make([]int32, len(ix.extID))
	}
	ix.cnt = ix.cnt[:len(ix.extID)]
	return ix.cnt
}

// scratchMarked returns the all-false per-record flag scratch.
func (ix *Index) scratchMarked() []bool {
	if cap(ix.marked) < len(ix.extID) {
		ix.marked = make([]bool, len(ix.extID))
	}
	ix.marked = ix.marked[:len(ix.extID)]
	return ix.marked
}

// containsInt32 reports membership by linear scan; adjacency rows are
// survivor-bounded and short.
func containsInt32(s []int32, v int32) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// forSymDiff walks the symmetric difference of two sorted term sets.
func forSymDiff(old, new []int32, fn func(t int32, inOld bool)) {
	i, j := 0, 0
	for i < len(old) && j < len(new) {
		switch {
		case old[i] < new[j]:
			fn(old[i], true)
			i++
		case old[i] > new[j]:
			fn(new[j], false)
			j++
		default:
			i++
			j++
		}
	}
	for ; i < len(old); i++ {
		fn(old[i], true)
	}
	for ; j < len(new); j++ {
		fn(new[j], false)
	}
}

// uniqueSorted returns the sorted distinct values of a sequence.
func uniqueSorted(seq []int32) []int32 {
	if len(seq) == 0 {
		return nil
	}
	out := make([]int32, len(seq))
	copy(out, seq)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}
