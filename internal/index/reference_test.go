package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/textproc"
)

// referenceBuild is a verbatim copy of the historical serial two-pass
// blocking.Build (map-based shared counts, term-major enumeration). It is
// the oracle the parallel BuildGraph and the mutable Index are pinned
// against: "bit-identical to today's blocking.Build output" means equal to
// this function's output, field for field.
func referenceBuild(c *textproc.Corpus, source []int, opts BatchOptions) *Graph {
	n := c.NumRecords()
	inv := make([][]int32, c.NumTerms())
	for r, doc := range c.Docs {
		for _, t := range doc {
			inv[t] = append(inv[t], int32(r))
		}
	}
	g := &Graph{
		NumRecords: n,
		NumTerms:   c.NumTerms(),
		Index:      make(map[uint64]int32),
		TermPairs:  make([][]int32, c.NumTerms()),
	}
	termEligible := func(recs []int32) bool {
		if len(recs) < 2 {
			return false
		}
		return opts.MaxTermRecords <= 0 || len(recs) <= opts.MaxTermRecords
	}
	shared := make(map[uint64]int32)
	for _, recs := range inv {
		if !termEligible(recs) {
			continue
		}
		for a := 0; a < len(recs); a++ {
			for b := a + 1; b < len(recs); b++ {
				ri, rj := recs[a], recs[b]
				if opts.CrossSourceOnly && source[ri] == source[rj] {
					continue
				}
				shared[Key(ri, rj)]++
			}
		}
	}
	minShared := int32(opts.MinSharedTerms)
	if minShared < 1 {
		minShared = 1
	}
	for t, recs := range inv {
		if !termEligible(recs) {
			continue
		}
		for a := 0; a < len(recs); a++ {
			for b := a + 1; b < len(recs); b++ {
				ri, rj := recs[a], recs[b]
				if opts.CrossSourceOnly && source[ri] == source[rj] {
					continue
				}
				key := Key(ri, rj)
				if shared[key] < minShared {
					continue
				}
				if opts.MinJaccard > 0 {
					union := len(c.Docs[ri]) + len(c.Docs[rj]) - int(shared[key])
					if union <= 0 || float64(shared[key])/float64(union) < opts.MinJaccard {
						continue
					}
				}
				id, ok := g.Index[key]
				if !ok {
					id = int32(len(g.Pairs))
					g.Pairs = append(g.Pairs, Pair{I: ri, J: rj})
					g.Index[key] = id
				}
				g.TermPairs[t] = append(g.TermPairs[t], id)
			}
		}
	}
	g.BuildPairIndex()
	return g
}

// requireGraphsEqual compares two graphs field by field, with empty and nil
// slices considered equal (append-built vs make-built adjacency rows).
func requireGraphsEqual(t *testing.T, want, got *Graph) {
	t.Helper()
	if want.NumRecords != got.NumRecords || want.NumTerms != got.NumTerms {
		t.Fatalf("shape mismatch: want %d records/%d terms, got %d/%d",
			want.NumRecords, want.NumTerms, got.NumRecords, got.NumTerms)
	}
	if !reflect.DeepEqual(normPairs(want.Pairs), normPairs(got.Pairs)) {
		t.Fatalf("pairs mismatch:\nwant %v\ngot  %v", want.Pairs, got.Pairs)
	}
	if len(want.Index) != len(got.Index) {
		t.Fatalf("index size mismatch: want %d, got %d", len(want.Index), len(got.Index))
	}
	for k, id := range want.Index {
		if got.Index[k] != id {
			t.Fatalf("index mismatch at key %d: want %d, got %d", k, id, got.Index[k])
		}
	}
	if len(want.TermPairs) != len(got.TermPairs) {
		t.Fatalf("termpairs length mismatch: want %d, got %d", len(want.TermPairs), len(got.TermPairs))
	}
	for tt := range want.TermPairs {
		w, g := want.TermPairs[tt], got.TermPairs[tt]
		if len(w) == 0 && len(g) == 0 {
			continue
		}
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("termpairs[%d] mismatch: want %v, got %v", tt, w, g)
		}
	}
	if !reflect.DeepEqual(normInt32(want.PairTermPtr), normInt32(got.PairTermPtr)) {
		t.Fatalf("pairtermptr mismatch: want %v, got %v", want.PairTermPtr, got.PairTermPtr)
	}
	if !reflect.DeepEqual(normInt32(want.PairTerms), normInt32(got.PairTerms)) {
		t.Fatalf("pairterms mismatch: want %v, got %v", want.PairTerms, got.PairTerms)
	}
}

func normPairs(p []Pair) []Pair {
	if len(p) == 0 {
		return nil
	}
	return p
}

func normInt32(p []int32) []int32 {
	if len(p) == 0 {
		return nil
	}
	return p
}

// randomTexts generates a corpus of synthetic token strings with duplicate
// structure: clusters of records share a base token set with per-record
// mutations, over a small vocabulary so frequent-term filters and the
// MaxTermRecords cap actually engage.
func randomTexts(rng *rand.Rand, n, vocab int) ([]string, []int) {
	texts := make([]string, 0, n)
	sources := make([]int, 0, n)
	for len(texts) < n {
		k := 3 + rng.Intn(6)
		base := make([]string, k)
		for i := range base {
			base[i] = fmt.Sprintf("w%d", rng.Intn(vocab))
		}
		cluster := 1 + rng.Intn(3)
		for c := 0; c < cluster && len(texts) < n; c++ {
			toks := append([]string(nil), base...)
			if rng.Intn(2) == 0 && len(toks) > 1 {
				toks[rng.Intn(len(toks))] = fmt.Sprintf("w%d", rng.Intn(vocab))
			}
			if rng.Intn(2) == 0 {
				toks = append(toks, fmt.Sprintf("w%d", rng.Intn(vocab)))
			}
			text := ""
			for i, tk := range toks {
				if i > 0 {
					text += " "
				}
				text += tk
			}
			texts = append(texts, text)
			sources = append(sources, c%2)
		}
	}
	return texts, sources
}

// TestBuildGraphMatchesReference pins the parallel batch builder to the
// historical serial enumeration, bit for bit, across worker counts, filter
// settings and single/multi-source corpora.
func TestBuildGraphMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 20 + rng.Intn(180)
		vocab := 10 + rng.Intn(60)
		texts, sources := randomTexts(rng, n, vocab)
		c := textproc.BuildCorpus(texts, textproc.CorpusOptions{
			Tokenize:   textproc.DefaultTokenizeOptions(),
			MaxDFRatio: []float64{0, 0.12, 0.5}[trial%3],
		})
		opts := BatchOptions{
			CrossSourceOnly: trial%4 == 1,
			MaxTermRecords:  []int{0, 8, 64}[trial%3],
			MinSharedTerms:  []int{0, 1, 2}[trial%3],
			MinJaccard:      []float64{0, 0.2, 0.4}[(trial/3)%3],
		}
		want := referenceBuild(c, sources, opts)
		for _, workers := range []int{1, 2, 4} {
			opts.Workers = workers
			got, err := BuildGraph(c, sources, opts)
			if err != nil {
				t.Fatalf("trial %d workers %d: %v", trial, workers, err)
			}
			requireGraphsEqual(t, want, got)
		}
	}
}
