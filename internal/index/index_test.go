package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/textproc"
)

// liveRecord is the test's shadow model of the collection: the plain
// key->record map the Index must stay equivalent to.
type liveRecord struct {
	text   string
	source int
}

// batchView builds the oracle Corpus+Graph from the shadow model the way the
// batch pipeline would: records in ascending external-ID order through
// textproc.BuildCorpus and the serial reference enumeration.
func batchView(t *testing.T, model map[string]liveRecord, cfg Config) (*textproc.Corpus, *Graph, []string, []int) {
	t.Helper()
	ids := make([]string, 0, len(model))
	for id := range model {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	texts := make([]string, len(ids))
	sources := make([]int, len(ids))
	for i, id := range ids {
		texts[i] = model[id].text
		sources[i] = model[id].source
	}
	c := textproc.BuildCorpus(texts, cfg.Corpus)
	g := referenceBuild(c, sources, cfg.Block)
	return c, g, ids, sources
}

// requireCorporaEqual compares two corpora field by field with nil/empty
// slice rows considered equal.
func requireCorporaEqual(t *testing.T, want, got *textproc.Corpus) {
	t.Helper()
	if !reflect.DeepEqual(want.Terms, got.Terms) {
		t.Fatalf("terms mismatch:\nwant %v\ngot  %v", want.Terms, got.Terms)
	}
	if !reflect.DeepEqual(want.DF, got.DF) {
		t.Fatalf("df mismatch:\nwant %v\ngot  %v", want.DF, got.DF)
	}
	if len(want.Docs) != len(got.Docs) {
		t.Fatalf("docs length mismatch: want %d, got %d", len(want.Docs), len(got.Docs))
	}
	for i := range want.Docs {
		if !reflect.DeepEqual(normInt32(want.Docs[i]), normInt32(got.Docs[i])) {
			t.Fatalf("docs[%d] mismatch: want %v, got %v", i, want.Docs[i], got.Docs[i])
		}
		if !reflect.DeepEqual(normInt32(want.Seqs[i]), normInt32(got.Seqs[i])) {
			t.Fatalf("seqs[%d] mismatch: want %v, got %v", i, want.Seqs[i], got.Seqs[i])
		}
	}
	if len(want.Index) != len(got.Index) {
		t.Fatalf("index size mismatch: want %d, got %d", len(want.Index), len(got.Index))
	}
	for s, d := range want.Index {
		if got.Index[s] != d {
			t.Fatalf("index[%q] mismatch: want %d, got %d", s, d, got.Index[s])
		}
	}
}

// TestIncrementalMatchesBatch drives random upsert/delete/replace sequences
// against a mutable Index and, after every small batch of mutations, checks
// that Materialize reproduces the from-scratch batch build bit for bit —
// corpus and candidate graph. Configurations exercise the MaxDFRatio
// threshold shifting with the corpus size, the MaxTermRecords cap, the
// Jaccard floor and cross-source filtering.
func TestIncrementalMatchesBatch(t *testing.T) {
	type scenario struct {
		name string
		cfg  Config
	}
	base := textproc.DefaultTokenizeOptions()
	scenarios := []scenario{
		{"plain", Config{
			Corpus: textproc.CorpusOptions{Tokenize: base},
			Block:  BatchOptions{MinSharedTerms: 1},
		}},
		{"ratio-threshold", Config{
			Corpus: textproc.CorpusOptions{Tokenize: base, MaxDFRatio: 0.25, MinDF: 1},
			Block:  BatchOptions{MinSharedTerms: 2, MinJaccard: 0.2},
		}},
		{"cross-source-capped", Config{
			Corpus: textproc.CorpusOptions{Tokenize: base, MaxDFRatio: 0.5},
			Block:  BatchOptions{CrossSourceOnly: true, MaxTermRecords: 8, MinSharedTerms: 1, MinJaccard: 0.1},
		}},
		{"stopworded", Config{
			Corpus: textproc.CorpusOptions{Tokenize: base, Stopwords: []string{"w1", "w2", "w3"}},
			Block:  BatchOptions{MinSharedTerms: 1},
		}},
	}
	for si, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + si)))
			ix := New(sc.cfg)
			model := make(map[string]liveRecord)
			vocab := 14 + rng.Intn(20)
			randomText := func() string {
				k := 2 + rng.Intn(7)
				s := ""
				for i := 0; i < k; i++ {
					if i > 0 {
						s += " "
					}
					s += fmt.Sprintf("w%d", rng.Intn(vocab))
				}
				return s
			}
			ops := 0
			for step := 0; step < 60; step++ {
				// A small burst of mutations, then a full equivalence check.
				burst := 1 + rng.Intn(4)
				for b := 0; b < burst; b++ {
					ops++
					switch {
					case len(model) > 4 && rng.Intn(4) == 0: // delete
						ids := make([]string, 0, len(model))
						for id := range model {
							ids = append(ids, id)
						}
						sort.Strings(ids)
						id := ids[rng.Intn(len(ids))]
						delete(model, id)
						if _, ok := ix.Delete(id); !ok {
							t.Fatalf("step %d: delete %q reported missing", step, id)
						}
					case len(model) > 2 && rng.Intn(3) == 0: // replace
						ids := make([]string, 0, len(model))
						for id := range model {
							ids = append(ids, id)
						}
						sort.Strings(ids)
						id := ids[rng.Intn(len(ids))]
						rec := liveRecord{text: randomText(), source: rng.Intn(2)}
						model[id] = rec
						ix.Upsert(id, rec.text, rec.source)
					default: // insert
						id := fmt.Sprintf("r%04d", rng.Intn(400))
						rec := liveRecord{text: randomText(), source: rng.Intn(2)}
						model[id] = rec
						ix.Upsert(id, rec.text, rec.source)
					}
				}
				if ix.Len() != len(model) {
					t.Fatalf("step %d: live count %d, model has %d", step, ix.Len(), len(model))
				}
				v := ix.Materialize()
				wantC, wantG, wantIDs, wantSrc := batchView(t, model, sc.cfg)
				if !reflect.DeepEqual(wantIDs, v.IDs) {
					t.Fatalf("step %d: id order mismatch:\nwant %v\ngot  %v", step, wantIDs, v.IDs)
				}
				if !reflect.DeepEqual(wantSrc, v.Sources) {
					t.Fatalf("step %d: sources mismatch", step)
				}
				requireCorporaEqual(t, wantC, v.Corpus)
				requireGraphsEqual(t, wantG, v.Graph)
			}
			if ops < 60 {
				t.Fatalf("scenario exercised only %d mutations", ops)
			}
		})
	}
}

// TestIndexDeltaReportsPairs pins the Delta bookkeeping on a hand-built
// example: two records that come to share two terms become a candidate pair,
// and deleting one endpoint removes it.
func TestIndexDeltaReportsPairs(t *testing.T) {
	cfg := Config{
		Corpus: textproc.CorpusOptions{Tokenize: textproc.DefaultTokenizeOptions()},
		Block:  BatchOptions{MinSharedTerms: 2},
	}
	ix := New(cfg)
	ix.Upsert("a", "alpha beta gamma", 0)
	d := ix.Upsert("b", "alpha beta delta", 1)
	if len(d.AddedPairs) != 1 || d.AddedPairs[0] != [2]string{"a", "b"} {
		t.Fatalf("expected pair {a b} added, got %+v", d)
	}
	d = ix.Upsert("b", "epsilon zeta", 1)
	if len(d.RemovedPairs) != 1 || d.RemovedPairs[0] != [2]string{"a", "b"} {
		t.Fatalf("expected pair {a b} removed on replace, got %+v", d)
	}
	d = ix.Upsert("b", "alpha beta", 1)
	if len(d.AddedPairs) != 1 {
		t.Fatalf("expected pair re-added, got %+v", d)
	}
	d, ok := ix.Delete("a")
	if !ok || len(d.RemovedPairs) != 1 || d.RemovedPairs[0] != [2]string{"a", "b"} {
		t.Fatalf("expected delete to remove pair {a b}, got %+v ok=%v", d, ok)
	}
	if ix.Len() != 1 {
		t.Fatalf("expected 1 live record, got %d", ix.Len())
	}
	// The survivor table must now be empty.
	v := ix.Materialize()
	if v.Graph.NumPairs() != 0 {
		t.Fatalf("expected empty candidate set, got %d pairs", v.Graph.NumPairs())
	}
}

// TestIndexTouchedPositions checks that Materialize reports and then drains
// the touched-record positions.
func TestIndexTouchedPositions(t *testing.T) {
	cfg := Config{
		Corpus: textproc.CorpusOptions{Tokenize: textproc.DefaultTokenizeOptions()},
		Block:  BatchOptions{MinSharedTerms: 1},
	}
	ix := New(cfg)
	ix.Upsert("a", "alpha beta", 0)
	ix.Upsert("b", "alpha beta", 0)
	ix.Upsert("c", "omega psi", 0)
	v := ix.Materialize()
	if len(v.Touched) != 3 {
		t.Fatalf("initial build should touch all records, got %v", v.Touched)
	}
	// No mutations: nothing touched.
	v = ix.Materialize()
	if len(v.Touched) != 0 {
		t.Fatalf("expected no touched records, got %v", v.Touched)
	}
	// Mutating c touches only c (it shares no terms with a/b).
	ix.Upsert("c", "omega chi", 0)
	v = ix.Materialize()
	if len(v.Touched) != 1 || v.IDs[v.Touched[0]] != "c" {
		t.Fatalf("expected only c touched, got %v", v.Touched)
	}
}
