// Package index is the blocking layer's shared batch + streaming
// substrate: the candidate graph types (Graph, Pair), a parallel batch
// builder (BuildGraph) that is bit-identical to the historical serial
// enumeration, and a mutable inverted index (Index) supporting
// Upsert/Delete with incremental candidate-pair maintenance, so a record
// collection can be re-blocked in time proportional to the delta instead
// of the corpus.
//
// Package blocking is a thin façade over this package — its Graph and
// Pair are aliases of the types here — so every downstream consumer of
// the candidate graph (core, engine, similarity, eval, cluster) is
// unaffected by the refactor.
package index

// Pair is a candidate record pair with I < J.
type Pair struct {
	I, J int32
}

// Key packs a pair into a map key.
func Key(i, j int32) uint64 {
	if i > j {
		i, j = j, i
	}
	return uint64(uint32(i))<<32 | uint64(uint32(j))
}

// Graph is the candidate set plus the bipartite term/pair adjacency of the
// paper's §V-B: a term node t is connected to a pair node (ri, rj) iff t
// appears in both records after the blocking filters.
type Graph struct {
	NumRecords int
	NumTerms   int
	// Pairs lists the candidate pairs; the slice index is the pair-node ID.
	Pairs []Pair
	// Index maps Key(i,j) to the pair-node ID.
	Index map[uint64]int32
	// TermPairs holds, per term, the IDs of the pair nodes it connects to.
	// len(TermPairs[t]) is the paper's P_t after candidate restriction.
	TermPairs [][]int32
	// PairTermPtr/PairTerms are the transpose of TermPairs in CSR layout:
	// the terms connected to pair p are PairTerms[PairTermPtr[p]:
	// PairTermPtr[p+1]], ascending. The transpose turns ITER's term→pair
	// scatter into a race-free per-pair gather; because terms are visited in
	// ascending order either way, the gather adds contributions in exactly
	// the scatter's order and the sweep stays bit-identical to the serial
	// term-major loop. Built by BuildPairIndex; nil on hand-rolled graphs,
	// in which case consumers fall back to the serial scatter.
	PairTermPtr []int32
	PairTerms   []int32
}

// BuildPairIndex (re)builds the pair→term CSR transpose of TermPairs.
// BuildGraph and Truncate call it; a caller that assembles a Graph by hand
// only needs it to opt into the parallel ITER sweep.
func (g *Graph) BuildPairIndex() {
	np := g.NumPairs()
	ptr := make([]int32, np+1)
	//lint:ignore guardloop output-sized transpose of the already-built adjacency; the guarded stage is the quadratic enumeration in BuildGraph, upstream
	for _, pairIDs := range g.TermPairs {
		for _, pid := range pairIDs {
			ptr[pid+1]++
		}
	}
	for p := 0; p < np; p++ {
		ptr[p+1] += ptr[p]
	}
	terms := make([]int32, ptr[np])
	fill := make([]int32, np)
	copy(fill, ptr[:np])
	// Terms are scanned ascending, so each pair's term list comes out
	// ascending — the property the gather's bit-identity argument needs.
	for t, pairIDs := range g.TermPairs {
		for _, pid := range pairIDs {
			terms[fill[pid]] = int32(t)
			fill[pid]++
		}
	}
	g.PairTermPtr = ptr
	g.PairTerms = terms
}

// Truncate returns a graph restricted to the first maxPairs candidate pairs
// (enumeration order). It is the last-resort degradation step of the pair
// budget: when tightening MinJaccard/MaxTermRecords cannot bring the
// candidate set under budget, the caller drops the tail deterministically.
// The input graph is not modified; when it is already within budget it is
// returned unchanged.
func Truncate(g *Graph, maxPairs int) *Graph {
	if maxPairs < 0 {
		maxPairs = 0
	}
	if g.NumPairs() <= maxPairs {
		return g
	}
	out := &Graph{
		NumRecords: g.NumRecords,
		NumTerms:   g.NumTerms,
		Pairs:      g.Pairs[:maxPairs:maxPairs],
		Index:      make(map[uint64]int32, maxPairs),
		TermPairs:  make([][]int32, g.NumTerms),
	}
	for _, p := range out.Pairs {
		out.Index[Key(p.I, p.J)] = int32(len(out.Index))
	}
	//lint:ignore guardloop output-sized copy of the already-built graph; the guarded stage is BuildGraph, upstream
	for t, pairIDs := range g.TermPairs {
		for _, pid := range pairIDs {
			if int(pid) < maxPairs {
				out.TermPairs[t] = append(out.TermPairs[t], pid)
			}
		}
	}
	out.BuildPairIndex()
	return out
}

// NumPairs returns the candidate pair count (edges of G_r).
func (g *Graph) NumPairs() int { return len(g.Pairs) }

// Pt returns the number of pair nodes connected to term t.
func (g *Graph) Pt(t int) int { return len(g.TermPairs[t]) }

// PairID returns the pair-node ID for records (i, j) and whether the pair is
// a candidate.
func (g *Graph) PairID(i, j int32) (int32, bool) {
	id, ok := g.Index[Key(i, j)]
	return id, ok
}

// BipartiteEdges returns the total number of term→pair edges (Σ_t P_t).
func (g *Graph) BipartiteEdges() int {
	n := 0
	for _, tp := range g.TermPairs {
		n += len(tp)
	}
	return n
}
