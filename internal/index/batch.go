package index

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"repro/internal/guard"
	"repro/internal/parallel"
	"repro/internal/textproc"
)

// BatchOptions controls batch candidate generation. The filter fields have
// the same semantics as the historical blocking.Options; Workers bounds the
// goroutines the per-record partner scan fans out across (zero selects
// GOMAXPROCS) and — like every kernel on the parallel scheduler — changes
// only wall-clock time, never the output.
type BatchOptions struct {
	// CrossSourceOnly restricts pairs to records from different sources,
	// the standard setting for two-source datasets such as Product
	// (abt × buy).
	CrossSourceOnly bool
	// MaxTermRecords skips terms contained in more than this many records
	// when enumerating pairs. Such terms generate quadratically many pair
	// connections while carrying no discriminative signal; the paper's
	// pre-processing removes "very frequent" terms for the same reason.
	// Zero means no cap.
	MaxTermRecords int
	// MinJaccard requires candidate pairs to reach this Jaccard similarity
	// over their filtered term sets. Zero disables the floor.
	MinJaccard float64
	// MinSharedTerms requires candidate pairs to share at least this many
	// terms. Values <= 1 reproduce the paper's footnote rule; the default
	// pipeline uses 2 (see blocking.Options for the full rationale).
	MinSharedTerms int
	// Check, when non-nil, is polled during candidate enumeration so a
	// canceled run aborts promptly instead of completing an O(Σ |block|²)
	// pass on adversarial input. BuildGraph returns the checkpoint's error.
	Check *guard.Checkpoint
	// Workers bounds the scan fan-out; zero selects GOMAXPROCS.
	Workers int
}

// survivor is one candidate pair that passed every blocking filter, tagged
// with the first eligible term shared by its records — the term under which
// the historical serial enumeration would have assigned its pair-node ID.
type survivor struct {
	r, q   int32 // record positions, r < q
	shared int32 // number of eligible shared terms
	firstT int32 // smallest eligible shared term (dense corpus ID)
}

// batchScratch is one worker's dense partner-accumulation state. cnt is
// kept all-zero between records (the reset loop clears exactly the touched
// entries), so reusing a pooled scratch never leaks counts across records
// or builds.
type batchScratch struct {
	cnt     []int32 // per-record shared-term count with the current record
	firstT  []int32 // valid only where cnt > 0
	touched []int32 // partners touched by the current record, first-touch order
}

var batchScratchPool = sync.Pool{New: func() any { return &batchScratch{} }}

func getBatchScratch(n int) *batchScratch {
	s := batchScratchPool.Get().(*batchScratch)
	if cap(s.cnt) < n {
		s.cnt = make([]int32, n)
		s.firstT = make([]int32, n)
	}
	s.cnt = s.cnt[:n]
	s.firstT = s.firstT[:n]
	return s
}

// BuildGraph constructs the candidate set and bipartite graph for the
// corpus, bit-identical to the historical serial term-major enumeration:
// pair-node IDs follow the order (first eligible shared term, record pair),
// and each TermPairs[t] lists its pairs in ascending record order — exactly
// the order the serial two-pass loop produced. The scan itself is a
// per-record partner accumulation fanned out over parallel.ForGrain, so
// chunk outputs depend only on the chunk's records, never on the schedule.
//
// source[i] gives the origin of record i; it may be nil when
// !opts.CrossSourceOnly. It returns an error when the source labels are
// misaligned with the corpus or when opts.Check reports cancellation
// mid-enumeration; the returned graph is nil in both cases.
func BuildGraph(c *textproc.Corpus, source []int, opts BatchOptions) (*Graph, error) {
	n := c.NumRecords()
	if opts.CrossSourceOnly && len(source) != n {
		return nil, fmt.Errorf("index: %d records but %d source labels", n, len(source))
	}
	nt := c.NumTerms()

	// Inverted index in CSR layout: term -> records containing it
	// (ascending, since records are scanned in order). Corpus.DF already
	// holds the posting lengths.
	ptr := make([]int32, nt+1)
	for t := 0; t < nt; t++ {
		ptr[t+1] = ptr[t] + int32(c.DF[t])
	}
	postings := make([]int32, ptr[nt])
	fill := make([]int32, nt)
	copy(fill, ptr[:nt])
	for r, doc := range c.Docs {
		for _, t := range doc {
			postings[fill[t]] = int32(r)
			fill[t]++
		}
	}
	eligible := make([]bool, nt)
	work := 0
	for t := 0; t < nt; t++ {
		df := c.DF[t]
		if df >= 2 && (opts.MaxTermRecords <= 0 || df <= opts.MaxTermRecords) {
			eligible[t] = true
			work += df * df
		}
	}

	minShared := int32(opts.MinSharedTerms)
	if minShared < 1 {
		minShared = 1
	}

	// Per-record partner scan: for each record r, accumulate shared-term
	// counts against every later record co-occurring under an eligible
	// term, then apply the MinSharedTerms/MinJaccard filters. Each pair is
	// examined exactly once, at its smaller endpoint. Chunk outputs land in
	// the slot of their chunk index and are concatenated in chunk order, so
	// the survivor sequence is a pure function of the corpus.
	grain := parallel.GrainFor(n, work, 1<<16)
	numChunks := (n + grain - 1) / grain
	chunkOut := make([][]survivor, numChunks)
	parallel.ForGrain(opts.Workers, n, grain, func(lo, hi int) {
		sc := getBatchScratch(n)
		cnt, firstT := sc.cnt, sc.firstT
		out := chunkOut[lo/grain]
		for r := lo; r < hi; r++ {
			if opts.Check.Tick() != nil {
				break
			}
			touched := sc.touched[:0]
			ri := int32(r)
			for _, t := range c.Docs[r] {
				if !eligible[t] {
					continue
				}
				// Partners after r in the posting: binary-search the start.
				post := postings[ptr[t]:ptr[t+1]]
				a := sort.Search(len(post), func(i int) bool { return post[i] > ri })
				for _, q := range post[a:] {
					if opts.CrossSourceOnly && source[ri] == source[q] {
						continue
					}
					if cnt[q] == 0 {
						firstT[q] = t
						touched = append(touched, q)
					}
					cnt[q]++
				}
			}
			docLenR := len(c.Docs[r])
			for _, q := range touched {
				s := cnt[q]
				cnt[q] = 0
				if s < minShared {
					continue
				}
				if opts.MinJaccard > 0 {
					union := docLenR + len(c.Docs[q]) - int(s)
					if union <= 0 || float64(s)/float64(union) < opts.MinJaccard {
						continue
					}
				}
				out = append(out, survivor{r: ri, q: q, shared: s, firstT: firstT[q]})
			}
			sc.touched = touched[:0]
		}
		chunkOut[lo/grain] = out
		batchScratchPool.Put(sc)
	})
	if err := opts.Check.Err(); err != nil {
		return nil, err
	}

	total := 0
	for _, out := range chunkOut {
		total += len(out)
	}
	survivors := make([]survivor, 0, total)
	for _, out := range chunkOut {
		survivors = append(survivors, out...)
	}
	return assembleGraph(c, survivors, eligible, n, nt), nil
}

// assembleGraph turns the surviving pairs into a Graph in the historical
// enumeration order: pair-node IDs ascend by (first eligible shared term,
// pair key), and TermPairs[t] lists pairs in ascending key order.
func assembleGraph(c *textproc.Corpus, survivors []survivor, eligible []bool, n, nt int) *Graph {
	// slices.SortFunc, not sort.Slice: the reflection-based swapper is
	// measurable on the warm resolve path at 100k records.
	slices.SortFunc(survivors, func(a, b survivor) int {
		if a.firstT != b.firstT {
			return int(a.firstT) - int(b.firstT)
		}
		ka, kb := Key(a.r, a.q), Key(b.r, b.q)
		switch {
		case ka < kb:
			return -1
		case ka > kb:
			return 1
		}
		return 0
	})
	g := &Graph{
		NumRecords: n,
		NumTerms:   nt,
		Pairs:      make([]Pair, len(survivors)),
		Index:      make(map[uint64]int32, len(survivors)),
		TermPairs:  make([][]int32, nt),
	}
	for id, s := range survivors {
		g.Pairs[id] = Pair{I: s.r, J: s.q}
		g.Index[Key(s.r, s.q)] = int32(id)
	}
	// Bipartite adjacency: visit pairs in ascending key order so each
	// term's pair list comes out in the serial enumeration's order.
	byKey := make([]int32, len(survivors))
	for i := range byKey {
		byKey[i] = int32(i)
	}
	slices.SortFunc(byKey, func(a, b int32) int {
		ka := Key(survivors[a].r, survivors[a].q)
		kb := Key(survivors[b].r, survivors[b].q)
		switch {
		case ka < kb:
			return -1
		case ka > kb:
			return 1
		}
		return 0
	})
	// Emit (term, pair) references flat, then lay TermPairs out with a
	// stable counting sort into one backing array: a pair's shared count is
	// exactly its eligible shared terms, so the reference total is known up
	// front and no per-term slice ever grows — at 100k records the append
	// version costs ~30k small allocations per materialize. Stability keeps
	// each term's pair list in the byKey emission order, identical to the
	// appends it replaces.
	total := 0
	for _, s := range survivors {
		total += int(s.shared)
	}
	refT := make([]int32, 0, total)
	refP := make([]int32, 0, total)
	//lint:ignore guardloop output-sized adjacency fill over the already-filtered survivors; the guarded stage is the quadratic scan in BuildGraph, upstream
	for _, id := range byKey {
		s := survivors[id]
		di, dj := c.Docs[s.r], c.Docs[s.q]
		x, y := 0, 0
		for x < len(di) && y < len(dj) {
			switch {
			case di[x] < dj[y]:
				x++
			case di[x] > dj[y]:
				y++
			default:
				if eligible[di[x]] {
					refT = append(refT, di[x])
					refP = append(refP, id)
				}
				x++
				y++
			}
		}
	}
	counts := make([]int32, nt+1)
	for _, t := range refT {
		counts[t+1]++
	}
	for t := 0; t < nt; t++ {
		counts[t+1] += counts[t]
	}
	backing := make([]int32, len(refP))
	fill := make([]int32, nt)
	copy(fill, counts[:nt])
	for k, t := range refT {
		backing[fill[t]] = refP[k]
		fill[t]++
	}
	for t := 0; t < nt; t++ {
		if counts[t+1] > counts[t] {
			g.TermPairs[t] = backing[counts[t]:counts[t+1]:counts[t+1]]
		}
	}
	g.BuildPairIndex()
	return g
}
