package core

import (
	"math"
	"math/rand"

	"repro/internal/blocking"
	"repro/internal/parallel"
)

// ITERResult holds the output of one ITER run.
type ITERResult struct {
	// X is the learned term weight (discrimination power) x_t per term.
	X []float64
	// S is the learned pair similarity s(ri, rj) per candidate pair.
	S []float64
	// Updates records Σ_t |Δx_t| per inner iteration — the series plotted
	// in Figure 5.
	Updates []float64
	// Iterations is the number of inner iterations executed.
	Iterations int
	// Converged reports whether the loop stopped because Σ|Δx_t| fell
	// below opts.ITERTol (as opposed to hitting opts.ITERMaxIters or being
	// canceled mid-run).
	Converged bool
}

// iterScratch carries the working vectors of runITER across fusion rounds so
// the reinforcement loop performs no steady-state allocation. The zero value
// is ready to use; buffers grow on first use and are reused afterwards. The
// X/S slices of a result produced with a scratch alias these buffers and are
// only valid until the next runITER call on the same scratch.
type iterScratch struct {
	x, s, raw []float64
	active    []int32
}

func (sc *iterScratch) grow(numTerms, numPairs int) {
	if cap(sc.x) < numTerms {
		sc.x = make([]float64, numTerms)
	}
	sc.x = sc.x[:numTerms]
	if cap(sc.s) < numPairs {
		sc.s = make([]float64, numPairs)
	}
	sc.s = sc.s[:numPairs]
}

// RunITER executes Algorithm 1 on the bipartite term/pair graph. p is the
// edge weight p(ri, rj) per pair node (initialized to 1 before CliqueRank
// has produced an estimate). rng drives the random initialization of x_t.
//
// Each iteration performs the two propagation sweeps of Eq. 6–7:
//
//	s(ri,rj) ← Σ_{t ∈ ri ∧ t ∈ rj} x_t                 (term → pair)
//	x_t      ← Σ_{(ri,rj) ∋ t} p(ri,rj)·s(ri,rj) / P_t  (pair → term)
//	x_t      ← x_t / (1 + x_t)                          (normalization)
//
// and runs until Σ|Δx_t| < opts.ITERTol or opts.ITERMaxIters is reached.
// Terms connected to no pair node (P_t = 0) keep weight 0: they occur in a
// single record and cannot influence any similarity.
//
// Both sweeps and the convergence reductions fan out over opts.Workers
// goroutines through the deterministic chunked scheduler; the output is
// bit-identical for every worker count.
func RunITER(g *blocking.Graph, p []float64, opts Options, rng *rand.Rand) *ITERResult {
	return runITER(g, p, opts, rng, &iterScratch{})
}

func runITER(g *blocking.Graph, p []float64, opts Options, rng *rand.Rand, sc *iterScratch) *ITERResult {
	if len(p) != g.NumPairs() {
		//lint:invariant alignment is established by RunFusion, the only production caller; tests assert on this panic
		panic("core: p must be aligned with candidate pairs")
	}
	sc.grow(g.NumTerms, g.NumPairs())
	x, s := sc.x, sc.s
	for t := range x {
		if g.Pt(t) > 0 {
			x[t] = rng.Float64()
		} else {
			x[t] = 0
		}
	}
	res := &ITERResult{X: x, S: s}

	// Terms connected to at least one pair node; only these carry weight.
	sc.active = sc.active[:0]
	for t := range g.TermPairs {
		if g.Pt(t) > 0 {
			sc.active = append(sc.active, int32(t))
		}
	}
	active := sc.active
	if cap(sc.raw) < len(active) {
		sc.raw = make([]float64, len(active))
	}
	sc.raw = sc.raw[:len(active)]
	raw := sc.raw

	workers := opts.Workers

	// Term → pair sweep: s(ri,rj) = Σ shared x_t. When the sweep actually
	// fans out, the pair→term CSR transpose turns it into a race-free
	// per-pair gather; each pair's terms are ascending, the same order the
	// serial term-major scatter adds them in, and skipping x_t = 0 in the
	// scatter is exact for non-negative weights, so both forms produce
	// bit-identical sums (TestITERGatherMatchesScatter pins this). On one
	// worker the term-major scatter is kept instead: its streaming stores
	// pipeline better than the gather's dependent loads, and hand-rolled
	// graphs without the transpose take the same path.
	resolvedWorkers := parallel.Workers(workers)
	termToPair := func() {
		if g.PairTermPtr == nil || resolvedWorkers <= 1 {
			for k := range s {
				s[k] = 0
			}
			for t, pairIDs := range g.TermPairs {
				xt := x[t]
				if xt == 0 {
					continue
				}
				for _, pid := range pairIDs {
					s[pid] += xt
				}
			}
			return
		}
		ptr, terms := g.PairTermPtr, g.PairTerms
		parallel.For(workers, len(s), func(lo, hi int) {
			// One poll per chunk (≤ Grain pairs): cheap enough to leave the
			// gather branch-free, frequent enough that a canceled run stops
			// within a few thousand additions.
			if opts.Check.Tick() != nil {
				return
			}
			for pid := lo; pid < hi; pid++ {
				var acc float64
				for k, end := ptr[pid], ptr[pid+1]; k < end; k++ {
					acc += x[terms[k]]
				}
				s[pid] = acc
			}
		})
	}

	// Pair → term sweep with the P_t punishment and the p(ri,rj) edge
	// weight. Chunks write disjoint raw[lo:hi], so the fan-out is race-free
	// and order-independent.
	pairToTerm := func(lo, hi int) {
		// Polled per chunk, like the gather above.
		if opts.Check.Tick() != nil {
			return
		}
		for k := lo; k < hi; k++ {
			pairIDs := g.TermPairs[active[k]]
			var acc float64
			for _, pid := range pairIDs {
				acc += p[pid] * s[pid]
			}
			if !opts.DisableDenominator {
				//lint:ignore floatguard active terms have Pt > 0, so pairIDs is never empty
				acc /= float64(len(pairIDs))
			}
			raw[k] = acc
		}
	}

	// Normalization passes: the bounded map x = x/(1+x) (the paper's
	// 1/(1+1/x), written division-safely) or the L2 alternative §V-C
	// mentions. Each returns the chunk's Σ|Δx_t| partial; ReduceSum folds
	// partials in ascending chunk order, so the convergence series is a pure
	// function of the input regardless of worker count.
	normBounded := func(lo, hi int) float64 {
		var delta float64
		for k := lo; k < hi; k++ {
			t := active[k]
			nx := raw[k] / (1 + raw[k])
			delta += math.Abs(nx - x[t])
			x[t] = nx
		}
		return delta
	}
	sumSquares := func(lo, hi int) float64 {
		var norm float64
		for k := lo; k < hi; k++ {
			norm += raw[k] * raw[k]
		}
		return norm
	}

	for iter := 0; iter < opts.ITERMaxIters; iter++ {
		// Cancellation is polled once per sweep pair: a canceled run exits
		// with the weights of the last completed iteration, and the caller
		// (RunFusion) surfaces the checkpoint's error.
		if opts.Check.Err() != nil {
			break
		}
		termToPair()
		parallel.For(workers, len(active), pairToTerm)
		var delta float64
		switch opts.Normalization {
		case NormL2:
			norm := math.Sqrt(parallel.ReduceSum(workers, len(active), sumSquares))
			delta = parallel.ReduceSum(workers, len(active), func(lo, hi int) float64 {
				var d float64
				for k := lo; k < hi; k++ {
					t := active[k]
					nx := 0.0
					if norm > 0 {
						nx = raw[k] / norm
					}
					d += math.Abs(nx - x[t])
					x[t] = nx
				}
				return d
			})
		default: // NormBounded
			delta = parallel.ReduceSum(workers, len(active), normBounded)
		}
		res.Updates = append(res.Updates, delta)
		res.Iterations = iter + 1
		if delta < opts.ITERTol {
			res.Converged = true
			break
		}
	}
	// Final term → pair sweep so S reflects the converged weights.
	termToPair()
	return res
}
