package core

import (
	"math"
	"math/rand"

	"repro/internal/blocking"
)

// ITERResult holds the output of one ITER run.
type ITERResult struct {
	// X is the learned term weight (discrimination power) x_t per term.
	X []float64
	// S is the learned pair similarity s(ri, rj) per candidate pair.
	S []float64
	// Updates records Σ_t |Δx_t| per inner iteration — the series plotted
	// in Figure 5.
	Updates []float64
	// Iterations is the number of inner iterations executed.
	Iterations int
	// Converged reports whether the loop stopped because Σ|Δx_t| fell
	// below opts.ITERTol (as opposed to hitting opts.ITERMaxIters or being
	// canceled mid-run).
	Converged bool
}

// RunITER executes Algorithm 1 on the bipartite term/pair graph. p is the
// edge weight p(ri, rj) per pair node (initialized to 1 before CliqueRank
// has produced an estimate). rng drives the random initialization of x_t.
//
// Each iteration performs the two propagation sweeps of Eq. 6–7:
//
//	s(ri,rj) ← Σ_{t ∈ ri ∧ t ∈ rj} x_t                 (term → pair)
//	x_t      ← Σ_{(ri,rj) ∋ t} p(ri,rj)·s(ri,rj) / P_t  (pair → term)
//	x_t      ← x_t / (1 + x_t)                          (normalization)
//
// and runs until Σ|Δx_t| < opts.ITERTol or opts.ITERMaxIters is reached.
// Terms connected to no pair node (P_t = 0) keep weight 0: they occur in a
// single record and cannot influence any similarity.
func RunITER(g *blocking.Graph, p []float64, opts Options, rng *rand.Rand) *ITERResult {
	if len(p) != g.NumPairs() {
		//lint:invariant alignment is established by RunFusion, the only production caller; tests assert on this panic
		panic("core: p must be aligned with candidate pairs")
	}
	x := make([]float64, g.NumTerms)
	for t := range x {
		if g.Pt(t) > 0 {
			x[t] = rng.Float64()
		}
	}
	s := make([]float64, g.NumPairs())
	res := &ITERResult{X: x, S: s}

	// Terms connected to at least one pair node; only these carry weight.
	active := make([]int, 0, g.NumTerms)
	for t := range g.TermPairs {
		if g.Pt(t) > 0 {
			active = append(active, t)
		}
	}
	raw := make([]float64, len(active))

	for iter := 0; iter < opts.ITERMaxIters; iter++ {
		// Cancellation is polled once per sweep pair: a canceled run exits
		// with the weights of the last completed iteration, and the caller
		// (RunFusion) surfaces the checkpoint's error.
		if opts.Check.Err() != nil {
			break
		}
		// Term → pair sweep: s(ri,rj) = Σ shared x_t. Traversing the
		// bipartite edges term-side gives the same sums without needing a
		// per-pair term list.
		for k := range s {
			s[k] = 0
		}
		for t, pairIDs := range g.TermPairs {
			xt := x[t]
			if xt == 0 {
				continue
			}
			for _, pid := range pairIDs {
				s[pid] += xt
			}
		}
		// Pair → term sweep with the P_t punishment and the p(ri,rj) edge
		// weight, then the per-iteration normalization: the bounded map
		// x = x/(1+x) (the paper's 1/(1+1/x), written division-safely) or
		// the L2 alternative §V-C mentions.
		for k, t := range active {
			if opts.Check.Tick() != nil {
				break
			}
			pairIDs := g.TermPairs[t]
			var acc float64
			for _, pid := range pairIDs {
				acc += p[pid] * s[pid]
			}
			if !opts.DisableDenominator {
				//lint:ignore floatguard active terms have Pt > 0, so pairIDs is never empty
				acc /= float64(len(pairIDs))
			}
			raw[k] = acc
		}
		var delta float64
		switch opts.Normalization {
		case NormL2:
			var norm float64
			for _, v := range raw {
				norm += v * v
			}
			norm = math.Sqrt(norm)
			for k, t := range active {
				nx := 0.0
				if norm > 0 {
					nx = raw[k] / norm
				}
				delta += math.Abs(nx - x[t])
				x[t] = nx
			}
		default: // NormBounded
			for k, t := range active {
				nx := raw[k] / (1 + raw[k])
				delta += math.Abs(nx - x[t])
				x[t] = nx
			}
		}
		res.Updates = append(res.Updates, delta)
		res.Iterations = iter + 1
		if delta < opts.ITERTol {
			res.Converged = true
			break
		}
	}
	// Final term → pair sweep so S reflects the converged weights.
	for k := range s {
		s[k] = 0
	}
	for t, pairIDs := range g.TermPairs {
		xt := x[t]
		if xt == 0 {
			continue
		}
		for _, pid := range pairIDs {
			s[pid] += xt
		}
	}
	return res
}
