package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/blocking"
	"repro/internal/textproc"
)

func setup(texts ...string) (*textproc.Corpus, *blocking.Graph) {
	c := textproc.BuildCorpus(texts, textproc.CorpusOptions{Tokenize: textproc.DefaultTokenizeOptions()})
	g, err := blocking.Build(c, nil, blocking.Options{})
	if err != nil {
		panic(err)
	}
	return c, g
}

func onesP(g *blocking.Graph) []float64 {
	p := make([]float64, g.NumPairs())
	for i := range p {
		p[i] = 1
	}
	return p
}

// A small corpus where "model1"/"model2" are discriminative (shared only by
// matching duplicates) and "product" is a domain stop word shared by
// everyone.
var craftedTexts = []string{
	"product model1 alpha",  // 0 \ entity A
	"product model1 beta",   // 1 /
	"product model2 gamma",  // 2 \ entity B
	"product model2 delta",  // 3 /
	"product epsilon zeta1", // 4 singletons
	"product theta2 iota",   // 5
}

func TestRunITERConverges(t *testing.T) {
	_, g := setup(craftedTexts...)
	opts := DefaultOptions()
	res := RunITER(g, onesP(g), opts, rand.New(rand.NewSource(1)))
	if res.Iterations >= opts.ITERMaxIters {
		t.Errorf("ITER did not converge within %d iterations", opts.ITERMaxIters)
	}
	last := res.Updates[len(res.Updates)-1]
	if last >= opts.ITERTol {
		t.Errorf("final update %g not below tol %g", last, opts.ITERTol)
	}
	// The paper's Figure 5 shape: updates spike early then decay.
	if res.Updates[0] <= last {
		t.Error("update magnitude must decay from first to last iteration")
	}
}

func TestRunITERWeightsBounded(t *testing.T) {
	_, g := setup(craftedTexts...)
	res := RunITER(g, onesP(g), DefaultOptions(), rand.New(rand.NewSource(2)))
	for tID, x := range res.X {
		if x < 0 || x >= 1 {
			t.Errorf("x[%d] = %g outside [0,1) after x/(1+x) normalization", tID, x)
		}
	}
	for pid, s := range res.S {
		if s < 0 {
			t.Errorf("s[%d] = %g negative", pid, s)
		}
	}
}

func TestRunITERDiscriminativeTermsWin(t *testing.T) {
	c, g := setup(craftedTexts...)
	res := RunITER(g, onesP(g), DefaultOptions(), rand.New(rand.NewSource(3)))
	model1 := res.X[c.Index["model1"]]
	common := res.X[c.Index["product"]]
	if model1 <= common {
		t.Errorf("discriminative term weight %g must exceed stop-word weight %g", model1, common)
	}
	// And consequently the duplicate pair outscores a spurious pair that
	// only shares the stop word.
	dup, _ := g.PairID(0, 1)
	spurious, _ := g.PairID(0, 2)
	if res.S[dup] <= res.S[spurious] {
		t.Errorf("duplicate similarity %g must exceed spurious %g", res.S[dup], res.S[spurious])
	}
}

func TestRunITERWithoutDenominatorFavorsCommonTerms(t *testing.T) {
	// Ablation 4 (DESIGN.md): dropping the P_t denominator makes the
	// frequent term accumulate mass from its many pairs, PageRank-style.
	c, g := setup(craftedTexts...)
	opts := DefaultOptions()
	opts.DisableDenominator = true
	res := RunITER(g, onesP(g), opts, rand.New(rand.NewSource(3)))
	model1 := res.X[c.Index["model1"]]
	common := res.X[c.Index["product"]]
	if common <= model1 {
		t.Errorf("without the P_t denominator the frequent term (%g) should dominate the rare one (%g)", common, model1)
	}
}

func TestRunITERPairProbabilityGatesPropagation(t *testing.T) {
	// Setting p = 0 on the spurious pairs must raise the relative weight of
	// terms shared only by matching pairs.
	c, g := setup(craftedTexts...)
	rng := rand.New(rand.NewSource(4))
	uniform := RunITER(g, onesP(g), DefaultOptions(), rand.New(rand.NewSource(4)))

	p := onesP(g)
	for pid, pair := range g.Pairs {
		match := (pair.I == 0 && pair.J == 1) || (pair.I == 2 && pair.J == 3)
		if !match {
			p[pid] = 0
		}
	}
	gated := RunITER(g, p, DefaultOptions(), rng)
	common := c.Index["product"]
	if gated.X[common] >= uniform.X[common] {
		t.Errorf("zeroing non-matching pairs must reduce stop-word weight: %g -> %g",
			uniform.X[common], gated.X[common])
	}
}

func TestRunITERDeterministic(t *testing.T) {
	_, g := setup(craftedTexts...)
	a := RunITER(g, onesP(g), DefaultOptions(), rand.New(rand.NewSource(7)))
	b := RunITER(g, onesP(g), DefaultOptions(), rand.New(rand.NewSource(7)))
	for i := range a.X {
		if a.X[i] != b.X[i] {
			t.Fatal("same seed must reproduce identical weights")
		}
	}
}

func TestRunITERSeedInsensitiveAtConvergence(t *testing.T) {
	// Theorem 1: the iteration converges to the principal eigenvector, so
	// different random initializations must land on (nearly) the same
	// fixed point.
	_, g := setup(craftedTexts...)
	a := RunITER(g, onesP(g), DefaultOptions(), rand.New(rand.NewSource(1)))
	b := RunITER(g, onesP(g), DefaultOptions(), rand.New(rand.NewSource(99)))
	for i := range a.X {
		if math.Abs(a.X[i]-b.X[i]) > 1e-3 {
			t.Fatalf("x[%d] differs across seeds: %g vs %g", i, a.X[i], b.X[i])
		}
	}
}

// TestITERLoopMatchesMatrixForm cross-validates one loop iteration against
// the §V-D matrix formulation y = Sᵀx, x = D⁻¹SCy.
func TestITERLoopMatchesMatrixForm(t *testing.T) {
	_, g := setup(craftedTexts...)
	p := make([]float64, g.NumPairs())
	rng := rand.New(rand.NewSource(5))
	for i := range p {
		p[i] = rng.Float64()
	}
	x0 := make([]float64, g.NumTerms)
	for i := range x0 {
		if g.Pt(i) > 0 {
			x0[i] = rng.Float64()
		}
	}

	// Matrix form.
	xMat, yMat := iterMatrixStep(g, p, x0)

	// Loop form, one iteration, starting from the same x0.
	s := make([]float64, g.NumPairs())
	for tID, pairIDs := range g.TermPairs {
		for _, pid := range pairIDs {
			s[pid] += x0[tID]
		}
	}
	for pid := range s {
		if math.Abs(s[pid]-yMat[pid]) > 1e-12 {
			t.Fatalf("pair %d: loop s=%g, matrix y=%g", pid, s[pid], yMat[pid])
		}
	}
	xLoop := make([]float64, g.NumTerms)
	for tID, pairIDs := range g.TermPairs {
		if len(pairIDs) == 0 {
			continue
		}
		var acc float64
		for _, pid := range pairIDs {
			acc += p[pid] * s[pid]
		}
		acc /= float64(len(pairIDs))
		xLoop[tID] = acc / (1 + acc)
	}
	for tID := range xLoop {
		if math.Abs(xLoop[tID]-xMat[tID]) > 1e-12 {
			t.Fatalf("term %d: loop x=%g, matrix x=%g", tID, xLoop[tID], xMat[tID])
		}
	}
}

func TestRunITERPanicsOnMisalignedP(t *testing.T) {
	_, g := setup(craftedTexts...)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on misaligned p")
		}
	}()
	RunITER(g, make([]float64, 1), DefaultOptions(), rand.New(rand.NewSource(1)))
}

func TestRunITERL2Normalization(t *testing.T) {
	c, g := setup(craftedTexts...)
	opts := DefaultOptions()
	opts.Normalization = NormL2
	res := RunITER(g, onesP(g), opts, rand.New(rand.NewSource(6)))
	// Unit Euclidean norm over active terms.
	var norm float64
	for _, x := range res.X {
		norm += x * x
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Errorf("L2 norm of weights = %g, want 1", math.Sqrt(norm))
	}
	// The discriminative-vs-common ordering must be normalization-invariant.
	if res.X[c.Index["model1"]] <= res.X[c.Index["product"]] {
		t.Error("L2 normalization must preserve term ordering")
	}
	if res.Iterations >= opts.ITERMaxIters {
		t.Error("L2 variant did not converge")
	}
}

func TestNormalizationString(t *testing.T) {
	if NormBounded.String() != "bounded" || NormL2.String() != "l2" {
		t.Error("unexpected Stringer output")
	}
	if Normalization(99).String() != "unknown" {
		t.Error("unknown normalization must stringify to unknown")
	}
}
