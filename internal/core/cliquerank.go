package core

import (
	"math"

	"repro/internal/matrix"
)

// CliqueRank implements the matrix reformulation of RSS (§VI-C). It builds
// the non-linearly normalized transition matrix M_t (Eq. 11, 13), the
// weight-boosted first-step matrix M_b (Eq. 12), iterates
//
//	Mᵏ = M_t × (Mᵏ⁻¹ ⊙ M_n),  M¹ = M_b,
//
// and accumulates the bidirectional matching probability of Eq. 15:
//
//	p(ri, rj) = Σ_{k=1..S} (Mᵏ[i,j] + Mᵏ[j,i]) / 2,  clamped to [0, 1].
//
// Because every iterate is masked by the adjacency M_n before the next
// product, the whole chain lives on the record graph's sparsity pattern;
// each step costs Σ_i deg(i)² sparse-dot operations instead of n³
// (matrix.MaskedMul). This replaces the Eigen-based dense products of the
// original implementation.
//
// The returned slice is aligned with the candidate pairs; dropped pairs get
// probability 0.
func CliqueRank(rg *RecordGraph, opts Options) []float64 {
	pat := rg.Pattern

	// Per-row max-normalized powered weights w(i,j) = (s(i,j)/smax_i)^α and
	// their row sums. Normalizing before powering keeps w finite for any α.
	w := matrix.NewPatVec(pat)
	rowSum := make([]float64, pat.N)
	for i := 0; i < pat.N; i++ {
		_, vals := rg.S.RowSlice(i)
		smax := 0.0
		for _, v := range vals {
			if v > smax {
				smax = v
			}
		}
		if smax == 0 {
			continue
		}
		lo, hi := pat.RowPtr[i], pat.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			w.Val[k] = math.Pow(rg.S.Val[k]/smax, opts.Alpha)
			rowSum[i] += w.Val[k]
		}
	}

	// M_t: Eq. 11. Rows with zero sum stay zero (isolated or zero-weight).
	mt := matrix.NewPatVec(pat)
	for i := 0; i < pat.N; i++ {
		if rowSum[i] == 0 {
			continue
		}
		for k := pat.RowPtr[i]; k < pat.RowPtr[i+1]; k++ {
			mt.Val[k] = w.Val[k] / rowSum[i]
		}
	}

	// M_b: Eq. 12. In RSS the bonus b ∈ (0,1) is redrawn at every step of
	// every one of the M walks, so the per-walk boosted transition
	// probability that the success frequency estimates is the expectation
	// over b. The matrix analog is therefore E_b[p_b(i → j)], which we
	// evaluate by midpoint quadrature: norm = rowSum_i − w(i,j) + (1+b)^α·
	// w(i,j) per sample. (Sampling b once per entry instead would make
	// weak-tied entries saturate at ≈1 whenever the single draw lands
	// high — a false-positive generator RSS does not have.)
	mb := mt
	if !opts.DisableBonus {
		mb = matrix.NewPatVec(pat)
		const quadraturePoints = 8
		boost := make([]float64, quadraturePoints)
		for q := range boost {
			b := (float64(q) + 0.5) / quadraturePoints
			boost[q] = math.Pow(1+b, opts.Alpha)
		}
		for i := 0; i < pat.N; i++ {
			if rowSum[i] == 0 {
				continue
			}
			for k := pat.RowPtr[i]; k < pat.RowPtr[i+1]; k++ {
				var sum float64
				for _, bf := range boost {
					boosted := bf * w.Val[k]
					if norm := rowSum[i] - w.Val[k] + boosted; norm > 0 {
						sum += boosted / norm
					}
				}
				mb.Val[k] = sum / quadraturePoints
			}
		}
	}

	if opts.DisableMask {
		return cliqueRankUnmasked(rg, mt, mb, opts)
	}
	acc := mb.Clone()
	a := mb
	for step := 2; step <= opts.Steps; step++ {
		// One poll per matrix power: each masked product is the expensive
		// unit of work (Σ_i deg(i)² sparse dots), so a canceled run gives
		// up at most one power of latency. The partial accumulator is
		// discarded by RunFusion once it observes the checkpoint's error.
		if opts.Check.Err() != nil {
			break
		}
		a = matrix.MaskedMul(mt, a.Transpose())
		acc.AddScaled(a, 1)
	}
	return probsFromPattern(rg, func(slotIJ, slotJI int32) float64 {
		return (clamp01(acc.Val[slotIJ]) + clamp01(acc.Val[slotJI])) / 2
	})
}

// clamp01 caps a per-direction step-sum at 1. Σ_k Mᵏ[i,j] approximates the
// probability of reaching j within S steps (it sums exactly-k arrival
// probabilities without first-arrival exclusion, so it can exceed 1); each
// direction must be a probability BEFORE the bidirectional average of
// Eq. 15, exactly as RSS averages two success frequencies — otherwise one
// saturated direction would defeat the "bi-directional walks depress
// one-sided corner cases" property of §VI-B.
func clamp01(v float64) float64 {
	if v > 1 {
		return 1
	}
	if v < 0 {
		return 0
	}
	return v
}

// cliqueRankUnmasked is the ablation path (DisableMask): the iterates are
// not confined to the adjacency pattern, so the chain is computed with
// dense products — the O(S·n³) formulation the paper starts from.
func cliqueRankUnmasked(rg *RecordGraph, mt, mb *matrix.PatVec, opts Options) []float64 {
	mtD := mt.ToDense()
	a := mb.ToDense()
	acc := a.Clone()
	for step := 2; step <= opts.Steps; step++ {
		if opts.Check.Err() != nil {
			break
		}
		a = mtD.Mul(a)
		acc = acc.Add(a)
	}
	return probsFromPattern(rg, func(slotIJ, slotJI int32) float64 {
		i, j := slotCoords(rg, slotIJ)
		return (clamp01(acc.At(i, j)) + clamp01(acc.At(j, i))) / 2
	})
}

// probsFromPattern assembles the per-pair probability slice from a function
// of the two directed slots of each kept edge.
func probsFromPattern(rg *RecordGraph, read func(slotIJ, slotJI int32) float64) []float64 {
	p := make([]float64, len(rg.PairSlot))
	for pid, slot := range rg.PairSlot {
		if slot < 0 {
			continue
		}
		i, j := slotCoords(rg, slot)
		slotJI := int32(rg.Pattern.Slot(j, i))
		p[pid] = read(slot, slotJI)
	}
	return p
}

// slotCoords recovers the (row, col) coordinates of a directed slot.
func slotCoords(rg *RecordGraph, slot int32) (int, int) {
	pat := rg.Pattern
	j := int(pat.Col[slot])
	lo, hi := 0, pat.N
	for lo < hi {
		mid := (lo + hi) / 2
		if pat.RowPtr[mid+1] <= slot {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, j
}
