package core

import (
	"math"

	"repro/internal/matrix"
	"repro/internal/parallel"
)

// CliqueRank implements the matrix reformulation of RSS (§VI-C). It builds
// the non-linearly normalized transition matrix M_t (Eq. 11, 13), the
// weight-boosted first-step matrix M_b (Eq. 12), iterates
//
//	Mᵏ = M_t × (Mᵏ⁻¹ ⊙ M_n),  M¹ = M_b,
//
// and accumulates the bidirectional matching probability of Eq. 15:
//
//	p(ri, rj) = Σ_{k=1..S} (Mᵏ[i,j] + Mᵏ[j,i]) / 2,  clamped to [0, 1].
//
// Because every iterate is masked by the adjacency M_n before the next
// product, the whole chain lives on the record graph's sparsity pattern;
// each step costs Σ_i deg(i)² sparse-dot operations instead of n³
// (matrix.MaskedMul). This replaces the Eigen-based dense products of the
// original implementation.
//
// The returned slice is aligned with the candidate pairs; dropped pairs get
// probability 0.
func CliqueRank(rg *RecordGraph, opts Options) []float64 {
	p := make([]float64, len(rg.PairSlot))
	CliqueRankInto(rg, opts, p)
	return p
}

// CliqueRankInto writes the CliqueRank probabilities into p (length
// len(rg.PairSlot)), overwriting every element, and draws all matrix
// scratch from the record graph's arena when it has one. The row loops, the
// masked products, and the readout fan out over opts.Workers goroutines
// through the deterministic scheduler; every worker count produces
// bit-identical probabilities.
func CliqueRankInto(rg *RecordGraph, opts Options, p []float64) {
	pat := rg.Pattern
	ar := rg.arena
	nnz := pat.NNZ()
	workers := opts.Workers

	// Per-row max-normalized powered weights w(i,j) = (s(i,j)/smax_i)^α and
	// their row sums, the transition matrix M_t of Eq. 11 (zero-sum rows
	// stay zero: isolated or zero-weight), and the boosted first-step matrix
	// M_b of Eq. 12, all in one parallel row pass — each row writes only its
	// own slots of w/mt/mb and its own rowSum entry, so the fan-out is
	// race-free and bit-identical for any worker count.
	//
	// On M_b: in RSS the bonus b ∈ (0,1) is redrawn at every step of every
	// one of the M walks, so the per-walk boosted transition probability
	// that the success frequency estimates is the expectation over b. The
	// matrix analog is therefore E_b[p_b(i → j)], which we evaluate by
	// midpoint quadrature: norm = rowSum_i − w(i,j) + (1+b)^α·w(i,j) per
	// sample. (Sampling b once per entry instead would make weak-tied
	// entries saturate at ≈1 whenever the single draw lands high — a
	// false-positive generator RSS does not have.)
	w := &matrix.PatVec{P: pat, Val: ar.getF64(nnz)}
	rowSum := ar.getF64(pat.N)
	mt := &matrix.PatVec{P: pat, Val: ar.getF64(nnz)}
	mb := mt
	const quadraturePoints = 8
	var boost [quadraturePoints]float64
	if !opts.DisableBonus {
		mb = &matrix.PatVec{P: pat, Val: ar.getF64(nnz)}
		for q := range boost {
			b := (float64(q) + 0.5) / quadraturePoints
			boost[q] = math.Pow(1+b, opts.Alpha)
		}
	}
	// Grains are pure functions of the graph shape (never the worker
	// count), so the chunk sets — and with them the bits — are identical
	// for every Workers setting. The row pass costs ~deg(i) pow calls per
	// row, the accumulate pass one add per slot, so the default Grain=256
	// rows is far too coarse for the former and too fine for the latter.
	rowGrain := parallel.GrainFor(pat.N, nnz+pat.N, 512)
	const addGrain = 8192
	parallel.ForGrain(workers, pat.N, rowGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			// One poll per row bounds post-cancellation work to a row per
			// worker; the torn matrices are discarded by RunFusion together
			// with the checkpoint's error.
			if opts.Check.Tick() != nil {
				return
			}
			_, vals := rg.S.RowSlice(i)
			smax := 0.0
			for _, v := range vals {
				if v > smax {
					smax = v
				}
			}
			if smax == 0 {
				continue
			}
			klo, khi := pat.RowPtr[i], pat.RowPtr[i+1]
			for k := klo; k < khi; k++ {
				w.Val[k] = math.Pow(rg.S.Val[k]/smax, opts.Alpha)
				rowSum[i] += w.Val[k]
			}
			if rowSum[i] == 0 {
				continue
			}
			for k := klo; k < khi; k++ {
				mt.Val[k] = w.Val[k] / rowSum[i]
			}
			if opts.DisableBonus {
				continue
			}
			for k := klo; k < khi; k++ {
				var sum float64
				for _, bf := range boost {
					boosted := bf * w.Val[k]
					if norm := rowSum[i] - w.Val[k] + boosted; norm > 0 {
						sum += boosted / norm
					}
				}
				mb.Val[k] = sum / quadraturePoints
			}
		}
	})

	if opts.DisableMask {
		cliqueRankUnmasked(rg, mt, mb, opts, p)
	} else {
		// Ping-pong the power chain through two scratch iterates (M_b and
		// M_t stay read-only, so the DisableBonus aliasing mb == mt is
		// safe). Per-slot accumulation is element-wise, hence order-free.
		acc := &matrix.PatVec{P: pat, Val: ar.getF64(nnz)}
		copy(acc.Val, mb.Val)
		cur := &matrix.PatVec{P: pat, Val: ar.getF64(nnz)}
		next := &matrix.PatVec{P: pat, Val: ar.getF64(nnz)}
		a := mb
		var addSrc []float64
		addIn := func(lo, hi int) {
			for k := lo; k < hi; k++ {
				acc.Val[k] += addSrc[k]
			}
		}
		// The masked product runs through a MaskPlan: the per-slot merges
		// and the dead rows are resolved once, and every step is then a
		// branch-free gather — bit-identical to the transpose+merge kernel
		// (the plan skips only terms that are exactly +0). One closure is
		// hoisted over the whole loop; a and next are rebound per step.
		var plan *matrix.MaskPlan
		if opts.Steps >= 2 {
			plan = matrix.BuildMaskPlan(mt, workers, 0)
		}
		if plan != nil {
			mulRange := func(lo, hi int) { plan.MulRangeInto(next, mt, a, lo, hi) }
			planGrain := plan.Grain()
			for step := 2; step <= opts.Steps; step++ {
				// One poll per matrix power: each masked product is the
				// expensive unit of work, so a canceled run gives up at
				// most one power of latency.
				if opts.Check.Err() != nil {
					break
				}
				parallel.ForGrain(workers, nnz, planGrain, mulRange)
				addSrc = next.Val
				parallel.ForGrain(workers, nnz, addGrain, addIn)
				a = next
				next, cur = cur, next
			}
			plan.Release()
		} else {
			// Fallback when the plan would exceed its memory ceiling: the
			// original transpose + merge product, same bits.
			at := &matrix.PatVec{P: pat, Val: ar.getF64(nnz)}
			for step := 2; step <= opts.Steps; step++ {
				if opts.Check.Err() != nil {
					break
				}
				a.TransposeInto(at)
				matrix.MaskedMulInto(next, mt, at, workers)
				addSrc = next.Val
				parallel.ForGrain(workers, nnz, addGrain, addIn)
				a = next
				next, cur = cur, next
			}
			ar.putF64(at.Val)
		}
		probsFromPatternInto(rg, p, workers, func(slotIJ, slotJI int32) float64 {
			return (clamp01(acc.Val[slotIJ]) + clamp01(acc.Val[slotJI])) / 2
		})
		ar.putF64(acc.Val)
		ar.putF64(cur.Val)
		ar.putF64(next.Val)
	}

	ar.putF64(w.Val)
	ar.putF64(rowSum)
	ar.putF64(mt.Val)
	if mb != mt {
		ar.putF64(mb.Val)
	}
}

// clamp01 caps a per-direction step-sum at 1. Σ_k Mᵏ[i,j] approximates the
// probability of reaching j within S steps (it sums exactly-k arrival
// probabilities without first-arrival exclusion, so it can exceed 1); each
// direction must be a probability BEFORE the bidirectional average of
// Eq. 15, exactly as RSS averages two success frequencies — otherwise one
// saturated direction would defeat the "bi-directional walks depress
// one-sided corner cases" property of §VI-B.
func clamp01(v float64) float64 {
	if v > 1 {
		return 1
	}
	if v < 0 {
		return 0
	}
	return v
}

// cliqueRankUnmasked is the ablation path (DisableMask): the iterates are
// not confined to the adjacency pattern, so the chain is computed with
// dense products — the O(S·n³) formulation the paper starts from.
func cliqueRankUnmasked(rg *RecordGraph, mt, mb *matrix.PatVec, opts Options, p []float64) {
	mtD := mt.ToDense()
	a := mb.ToDense()
	acc := a.Clone()
	for step := 2; step <= opts.Steps; step++ {
		if opts.Check.Err() != nil {
			break
		}
		a = mtD.Mul(a)
		acc = acc.Add(a)
	}
	probsFromPatternInto(rg, p, opts.Workers, func(slotIJ, slotJI int32) float64 {
		i, j := slotCoords(rg, slotIJ)
		return (clamp01(acc.At(i, j)) + clamp01(acc.At(j, i))) / 2
	})
}

// probsFromPattern assembles the per-pair probability slice from a function
// of the two directed slots of each kept edge.
func probsFromPattern(rg *RecordGraph, read func(slotIJ, slotJI int32) float64) []float64 {
	p := make([]float64, len(rg.PairSlot))
	probsFromPatternInto(rg, p, 0, read)
	return p
}

// probsFromPatternInto is the readout behind probsFromPattern: it zeroes p,
// then fills the kept pairs from read, fanning out over workers. The
// transposed slot comes from the pattern's precomputed permutation
// (Pattern.TSlot), so the readout performs no per-pair search.
//
//lint:hotpath runs every CliqueRank iteration over every kept pair; the AllocsPerRun tests pin its steady state at zero
func probsFromPatternInto(rg *RecordGraph, p []float64, workers int, read func(slotIJ, slotJI int32) float64) {
	// Each pair costs two clamped loads; 4096 pairs per chunk amortize the
	// handoff. The grain is a constant, so chunk sets stay worker-free.
	const readoutGrain = 4096
	parallel.ForGrain(workers, len(rg.PairSlot), readoutGrain, func(lo, hi int) {
		for pid := lo; pid < hi; pid++ {
			slot := rg.PairSlot[pid]
			if slot < 0 {
				p[pid] = 0
				continue
			}
			p[pid] = read(slot, rg.Pattern.TSlot(slot))
		}
	})
}

// slotCoords recovers the (row, col) coordinates of a directed slot via the
// record graph's precomputed slot→row index.
func slotCoords(rg *RecordGraph, slot int32) (int, int) {
	return int(rg.SlotRow[slot]), int(rg.Pattern.Col[slot])
}
