package core

import (
	"repro/internal/blocking"
	"repro/internal/matrix"
)

// iterMatrixStep performs one ITER iteration in the matrix form of §V-D,
//
//	y = Sᵀ x ;  x = D⁻¹ S C y,
//
// where S is the m×q bipartite adjacency (terms × pair nodes), D the
// diagonal of P_t and C the diagonal of p(ri, rj), followed by the same
// x/(1+x) normalization as the loop implementation. It exists to
// cross-validate RunITER against the formulation the convergence proof
// (Theorem 1) is stated in; the loop form is the production path.
func iterMatrixStep(g *blocking.Graph, p, x []float64) (xNext, y []float64) {
	s := bipartiteCSR(g)
	y = s.MulVecT(x) // y = Sᵀ x
	cy := make([]float64, len(y))
	for b := range y {
		cy[b] = p[b] * y[b]
	}
	xNext = s.MulVec(cy) // S C y
	for t := range xNext {
		if pt := g.Pt(t); pt > 0 {
			xNext[t] /= float64(pt) // D⁻¹
		}
		xNext[t] = xNext[t] / (1 + xNext[t])
	}
	return xNext, y
}

// bipartiteCSR materializes the bipartite adjacency matrix S with
// S[t, b] = 1 iff term t connects pair node b.
func bipartiteCSR(g *blocking.Graph) *matrix.CSR {
	var entries []matrix.Entry
	//lint:ignore guardloop output-sized materialization used only by the cross-validation path, not production
	for t, pairIDs := range g.TermPairs {
		for _, pid := range pairIDs {
			entries = append(entries, matrix.Entry{Row: int32(t), Col: pid, Val: 1})
		}
	}
	return matrix.NewCSR(g.NumTerms, g.NumPairs(), entries)
}
