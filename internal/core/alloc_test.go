//go:build !race

// The race detector instruments allocation and inflates AllocsPerRun, so
// this regression suite only runs in normal builds; the determinism suite
// covers the same code paths under -race.

package core

import (
	"math/rand"
	"testing"
)

// TestFusionInnerLoopAllocs pins the steady-state allocation count of one
// reinforcement round — ITER with its reused scratch, the arena-backed
// record-graph build, and CliqueRank writing into a caller buffer. The
// pre-arena implementation allocated ~4300 times per round (fresh working
// vectors, per-row sort closures in the pattern build); the budget below is
// the measured ~76 with headroom, so a regression that reintroduces
// per-round buffer churn fails loudly.
func TestFusionInnerLoopAllocs(t *testing.T) {
	_, g := productScaleGraph(t)
	opts := DefaultOptions()
	opts.Workers = 1
	sc := &iterScratch{}
	ar := &arena{}
	p := onesP(g)
	pbuf := make([]float64, g.NumPairs())
	rng := rand.New(rand.NewSource(1))
	round := func() {
		res := runITER(g, p, opts, rng, sc)
		rg := buildRecordGraph(g, res.S, g.NumRecords, ar)
		CliqueRankInto(rg, opts, pbuf)
		rg.release()
	}
	round() // warm the scratch and arena
	round()
	if got := testing.AllocsPerRun(5, round); got > 120 {
		t.Errorf("fusion round allocates %.0f times, budget 120", got)
	}

	// The kernels alone must stay near-zero: the only per-call allocations
	// are the result struct, the Updates series, and a fixed set of closure
	// headers.
	if got := testing.AllocsPerRun(5, func() { runITER(g, p, opts, rng, sc) }); got > 40 {
		t.Errorf("runITER allocates %.0f times with warm scratch, budget 40", got)
	}
	res := runITER(g, p, opts, rng, sc)
	rg := buildRecordGraph(g, res.S, g.NumRecords, ar)
	defer rg.release()
	if got := testing.AllocsPerRun(5, func() { CliqueRankInto(rg, opts, pbuf) }); got > 60 {
		t.Errorf("CliqueRankInto allocates %.0f times with warm arena, budget 60", got)
	}
}

// TestCliqueRankAllocsFlatAcrossWorkers pins the fix for the per-worker
// allocation growth the fixed-grain scheduler used to cause: the old fan-out
// spawned fresh goroutine closures per chunk, so CliqueRank's allocs_op
// climbed 40 → 200 → 280 going from 1 to 2 to 4 workers. With the pooled
// ForGrain jobs the fan-out itself is allocation-free, so the kernel's
// count must stay flat (within a small slack for pool misses) as workers
// grow.
func TestCliqueRankAllocsFlatAcrossWorkers(t *testing.T) {
	_, g := productScaleGraph(t)
	opts := DefaultOptions()
	iter := RunITER(g, onesP(g), opts, rand.New(rand.NewSource(1)))
	ar := &arena{}
	rg := buildRecordGraph(g, iter.S, g.NumRecords, ar)
	defer rg.release()
	pbuf := make([]float64, g.NumPairs())

	measure := func(w int) float64 {
		opts.Workers = w
		CliqueRankInto(rg, opts, pbuf) // warm the arena and goroutine pools
		return testing.AllocsPerRun(5, func() { CliqueRankInto(rg, opts, pbuf) })
	}
	serial := measure(1)
	if serial > 60 {
		t.Errorf("workers=1: %.0f allocs, budget 60", serial)
	}
	for _, w := range []int{2, 4} {
		if got := measure(w); got > serial+10 {
			t.Errorf("workers=%d: %.0f allocs vs %.0f serial; fan-out must not allocate per worker",
				w, got, serial)
		}
	}
}
