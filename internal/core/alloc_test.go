//go:build !race

// The race detector instruments allocation and inflates AllocsPerRun, so
// this regression suite only runs in normal builds; the determinism suite
// covers the same code paths under -race.

package core

import (
	"math/rand"
	"testing"
)

// TestFusionInnerLoopAllocs pins the steady-state allocation count of one
// reinforcement round — ITER with its reused scratch, the arena-backed
// record-graph build, and CliqueRank writing into a caller buffer. The
// pre-arena implementation allocated ~4300 times per round (fresh working
// vectors, per-row sort closures in the pattern build); the budget below is
// the measured ~76 with headroom, so a regression that reintroduces
// per-round buffer churn fails loudly.
func TestFusionInnerLoopAllocs(t *testing.T) {
	_, g := productScaleGraph(t)
	opts := DefaultOptions()
	opts.Workers = 1
	sc := &iterScratch{}
	ar := &arena{}
	p := onesP(g)
	pbuf := make([]float64, g.NumPairs())
	rng := rand.New(rand.NewSource(1))
	round := func() {
		res := runITER(g, p, opts, rng, sc)
		rg := buildRecordGraph(g, res.S, g.NumRecords, ar)
		CliqueRankInto(rg, opts, pbuf)
		rg.release()
	}
	round() // warm the scratch and arena
	round()
	if got := testing.AllocsPerRun(5, round); got > 120 {
		t.Errorf("fusion round allocates %.0f times, budget 120", got)
	}

	// The kernels alone must stay near-zero: the only per-call allocations
	// are the result struct, the Updates series, and a fixed set of closure
	// headers.
	if got := testing.AllocsPerRun(5, func() { runITER(g, p, opts, rng, sc) }); got > 40 {
		t.Errorf("runITER allocates %.0f times with warm scratch, budget 40", got)
	}
	res := runITER(g, p, opts, rng, sc)
	rg := buildRecordGraph(g, res.S, g.NumRecords, ar)
	defer rg.release()
	if got := testing.AllocsPerRun(5, func() { CliqueRankInto(rg, opts, pbuf) }); got > 60 {
		t.Errorf("CliqueRankInto allocates %.0f times with warm arena, budget 60", got)
	}
}
