package core

import (
	"math/rand"
	"testing"

	"repro/internal/blocking"
)

// randomCandidateGraph builds a random blocking graph over n records with
// the given edge density and random positive similarities.
func randomCandidateGraph(rng *rand.Rand, n int, density float64) (*blocking.Graph, []float64) {
	g := &blocking.Graph{NumRecords: n, Index: map[uint64]int32{}}
	var s []float64
	for i := int32(0); i < int32(n); i++ {
		for j := i + 1; j < int32(n); j++ {
			if rng.Float64() >= density {
				continue
			}
			g.Index[blocking.Key(i, j)] = int32(len(g.Pairs))
			g.Pairs = append(g.Pairs, blocking.Pair{I: i, J: j})
			s = append(s, 0.05+rng.Float64())
		}
	}
	return g, s
}

// TestCliqueRankProbabilityInvariants checks, over many random graphs, that
// CliqueRank always emits probabilities in [0, 1], is deterministic, and
// assigns 0 to pairs whose edge was dropped.
func TestCliqueRankProbabilityInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(20)
		g, s := randomCandidateGraph(rng, n, 0.1+rng.Float64()*0.6)
		if len(g.Pairs) == 0 {
			continue
		}
		// Randomly zero some similarities: those pairs lose their edge.
		for k := range s {
			if rng.Intn(7) == 0 {
				s[k] = 0
			}
		}
		rg := BuildRecordGraph(g, s, n)
		opts := DefaultOptions()
		opts.Steps = 5 + rng.Intn(10)
		opts.Alpha = []float64{1, 5, 20}[rng.Intn(3)]
		p := CliqueRank(rg, opts)
		q := CliqueRank(rg, opts)
		if len(p) != len(g.Pairs) {
			t.Fatalf("trial %d: %d probabilities for %d pairs", trial, len(p), len(g.Pairs))
		}
		for k, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("trial %d: p[%d] = %g outside [0,1]", trial, k, v)
			}
			if v != q[k] {
				t.Fatalf("trial %d: nondeterministic CliqueRank", trial)
			}
			if s[k] == 0 && v != 0 {
				t.Fatalf("trial %d: dropped pair has p = %g", trial, v)
			}
		}
	}
}

// TestRSSProbabilityInvariants mirrors the CliqueRank invariants for the
// sampling estimator.
func TestRSSProbabilityInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(12)
		g, s := randomCandidateGraph(rng, n, 0.2+rng.Float64()*0.4)
		if len(g.Pairs) == 0 {
			continue
		}
		rg := BuildRecordGraph(g, s, n)
		opts := DefaultOptions()
		opts.RSSWalks = 10
		opts.Steps = 8
		p := RSS(rg, opts)
		for k, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("trial %d: RSS p[%d] = %g outside [0,1]", trial, k, v)
			}
			// With M walks the estimate is a multiple of 1/M.
			scaled := v * float64(opts.RSSWalks)
			if diff := scaled - float64(int(scaled+0.5)); diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("trial %d: RSS p[%d] = %g is not a multiple of 1/M", trial, k, v)
			}
		}
	}
}

// TestCliqueRankDisjointComponentsStayDisjoint verifies that records in
// different connected components can never be assigned a positive matching
// probability (there is no pair node between them at all), and that two
// well-formed cliques both resolve internally.
func TestCliqueRankDisjointComponentsStayDisjoint(t *testing.T) {
	g := &blocking.Graph{NumRecords: 6, Index: map[uint64]int32{}}
	var s []float64
	addClique := func(members []int32) {
		for a := 0; a < len(members); a++ {
			for b := a + 1; b < len(members); b++ {
				g.Index[blocking.Key(members[a], members[b])] = int32(len(g.Pairs))
				g.Pairs = append(g.Pairs, blocking.Pair{I: members[a], J: members[b]})
				s = append(s, 1)
			}
		}
	}
	addClique([]int32{0, 1, 2})
	addClique([]int32{3, 4, 5})
	rg := BuildRecordGraph(g, s, 6)
	p := CliqueRank(rg, DefaultOptions())
	for k := range g.Pairs {
		if p[k] < 0.99 {
			t.Errorf("in-clique pair %d has p = %g, want ~1", k, p[k])
		}
	}
}

// TestFusionScalesWithEta sweeps η and checks the monotone trade-off:
// raising the threshold can only shrink the matched set.
func TestFusionScalesWithEta(t *testing.T) {
	_, g := setup(fusionTexts...)
	counts := make([]int, 0, 3)
	for _, eta := range []float64{0.5, 0.9, 0.999} {
		opts := DefaultOptions()
		opts.Eta = eta
		res := mustFusion(t, g, len(fusionTexts), opts)
		n := 0
		for _, m := range res.Matches {
			if m {
				n++
			}
		}
		counts = append(counts, n)
	}
	if !(counts[0] >= counts[1] && counts[1] >= counts[2]) {
		t.Errorf("matched-set size must shrink with eta: %v", counts)
	}
}
