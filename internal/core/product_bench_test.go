package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/blocking"
	"repro/internal/textproc"
)

// productScaleGraph builds a candidate structure at the scale of the Product
// (abt × buy) benchmark replica: ~2100 records in two-record entities, each
// carrying an entity-specific model code plus common vocabulary that wires
// the record graph together, and a band of noise records. The corpus is
// fully seeded, so every benchmark and determinism test sees the same graph.
func productScaleGraph(tb testing.TB) (*textproc.Corpus, *blocking.Graph) {
	tb.Helper()
	rng := rand.New(rand.NewSource(7))
	common := make([]string, 40)
	for i := range common {
		common[i] = "word" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
	}
	colors := []string{"red", "blue", "green", "black", "white", "silver",
		"gray", "gold", "pink", "cyan", "brown", "olive"}
	var texts []string
	code := func(e int) string {
		return "md" + string(rune('a'+e%26)) + string(rune('a'+(e/26)%26)) +
			string(rune('a'+(e/676)%26)) + string(rune('0'+e%10))
	}
	for e := 0; e < 1050; e++ {
		c := code(e)
		w1, w2, w3 := common[rng.Intn(40)], common[rng.Intn(40)], common[rng.Intn(40)]
		texts = append(texts,
			c+" "+w1+" "+w2+" "+w3+" "+colors[rng.Intn(len(colors))],
			c+" "+w1+" "+w2+" "+w3+" "+colors[rng.Intn(len(colors))])
	}
	for s := 0; s < 300; s++ {
		texts = append(texts,
			common[rng.Intn(40)]+" "+common[rng.Intn(40)]+" solo"+code(s))
	}
	c := textproc.BuildCorpus(texts, textproc.CorpusOptions{Tokenize: textproc.DefaultTokenizeOptions()})
	g, err := blocking.Build(c, nil, blocking.Options{MinSharedTerms: 3, MaxTermRecords: 220})
	if err != nil {
		tb.Fatal(err)
	}
	if g.NumPairs() < 1024 {
		tb.Fatalf("product-scale graph too small: %d pairs", g.NumPairs())
	}
	return c, g
}

// benchWorkers are the fan-outs every product-scale benchmark reports, so
// BENCH_core.json can state the speedup of each worker count against the
// serial baseline of the same binary.
var benchWorkers = []int{1, 2, 4}

func BenchmarkITERProduct(b *testing.B) {
	_, g := productScaleGraph(b)
	p := make([]float64, g.NumPairs())
	for i := range p {
		p[i] = 1
	}
	for _, w := range benchWorkers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opts := DefaultOptions()
			opts.Workers = w
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				RunITER(g, p, opts, rand.New(rand.NewSource(1)))
			}
		})
	}
}

func BenchmarkCliqueRankProduct(b *testing.B) {
	_, g := productScaleGraph(b)
	iter := RunITER(g, onesP(g), DefaultOptions(), rand.New(rand.NewSource(1)))
	rg := BuildRecordGraph(g, iter.S, g.NumRecords)
	for _, w := range benchWorkers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opts := DefaultOptions()
			opts.Workers = w
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				CliqueRank(rg, opts)
			}
		})
	}
}

func BenchmarkFusionProduct(b *testing.B) {
	_, g := productScaleGraph(b)
	for _, w := range benchWorkers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opts := DefaultOptions()
			opts.Workers = w
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := RunFusion(g, g.NumRecords, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
