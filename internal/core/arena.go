package core

import (
	"repro/internal/matrix"

	"repro/internal/parallel"
)

// arena recycles the working buffers of the fusion reinforcement loop —
// PatVec value vectors, slot/edge index slices — across rounds, so the
// steady state of RunFusion allocates only what its result retains. Get/put
// calls happen on the fusion goroutine (kernels fan out internally but
// never touch the arena), with float64 buffers additionally backed by a
// sync.Pool so CliqueRank scratch survives across rounds. A nil arena is
// valid and degrades every get to a fresh allocation, which is how the
// exported single-shot entry points behave.
type arena struct {
	f64   parallel.Pool
	i32   [][]int32
	edges [][]matrix.Edge
}

// getF64 returns a zeroed length-n buffer.
//
//lint:hotpath arena getters run once per fusion round; a loop allocation here defeats the buffer recycling they exist for
func (a *arena) getF64(n int) []float64 {
	if a == nil {
		return make([]float64, n)
	}
	b := a.f64.Get(n)
	for i := range b {
		b[i] = 0
	}
	return b
}

func (a *arena) putF64(b []float64) {
	if a != nil {
		a.f64.Put(b)
	}
}

// getI32 returns a length-n buffer with unspecified contents.
//
//lint:hotpath arena getters run once per fusion round; a loop allocation here defeats the buffer recycling they exist for
func (a *arena) getI32(n int) []int32 {
	if a != nil {
		for k := len(a.i32) - 1; k >= 0; k-- {
			if cap(a.i32[k]) >= n {
				b := a.i32[k][:n]
				a.i32[k] = a.i32[len(a.i32)-1]
				a.i32 = a.i32[:len(a.i32)-1]
				return b
			}
		}
	}
	return make([]int32, n)
}

func (a *arena) putI32(b []int32) {
	if a != nil && b != nil {
		a.i32 = append(a.i32, b[:0])
	}
}

// getEdges returns an empty edge buffer with at least capacity n.
//
//lint:hotpath arena getters run once per fusion round; a loop allocation here defeats the buffer recycling they exist for
func (a *arena) getEdges(n int) []matrix.Edge {
	if a != nil {
		for k := len(a.edges) - 1; k >= 0; k-- {
			if cap(a.edges[k]) >= n {
				b := a.edges[k][:0]
				a.edges[k] = a.edges[len(a.edges)-1]
				a.edges = a.edges[:len(a.edges)-1]
				return b
			}
		}
	}
	return make([]matrix.Edge, 0, n)
}

func (a *arena) putEdges(b []matrix.Edge) {
	if a != nil && b != nil {
		a.edges = append(a.edges, b[:0])
	}
}
