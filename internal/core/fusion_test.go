package core

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/blocking"
	"repro/internal/guard"
)

// mustFusion runs RunFusion and fails the test on an unexpected error.
func mustFusion(t *testing.T, g *blocking.Graph, numRecords int, opts Options) *FusionResult {
	t.Helper()
	res, err := RunFusion(g, numRecords, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// fusionTexts: three duplicate pairs plus noise records. Duplicates share
// two discriminative terms; noise records attach to the cliques through
// mid-frequency terms (red/blue/metal/...). There is deliberately no global
// stop word: the paper's preprocessing removes terms that occur in nearly
// every record, and without that removal singleton records whose edges are
// all equal-weight can be boosted to p ≈ 1 by Eq. 12 (a property
// TestRunFusionStopWordDegeneracy documents explicitly).
// Matching records share four entity-specific terms, so a spurious edge
// (one or two shared common terms) weighs well under half of a matching
// edge — the regime the real benchmarks are in.
var fusionTexts = []string{
	"ax7f k100 alpha prime red metal",     // 0 \ entity A
	"ax7f k100 alpha prime blue metal",    // 1 /
	"bq9k m200 beta second red plastic",   // 2 \ entity B
	"bq9k m200 beta second green plastic", // 3 /
	"cz3m n300 gamma third blue wood",     // 4 \ entity C
	"cz3m n300 gamma third yellow wood",   // 5 /
	"delta red metal odd1",                // 6 noise
	"epsilon blue wood odd2",              // 7 noise
	"zeta green plastic odd3",             // 8 noise
}

func TestRunFusionEndToEnd(t *testing.T) {
	c, g := setup(fusionTexts...)
	_ = c
	opts := DefaultOptions()
	res := mustFusion(t, g, len(fusionTexts), opts)

	matchPairs := [][2]int32{{0, 1}, {2, 3}, {4, 5}}
	for _, mp := range matchPairs {
		id, ok := g.PairID(mp[0], mp[1])
		if !ok {
			t.Fatalf("pair %v not a candidate", mp)
		}
		if !res.Matches[id] {
			t.Errorf("duplicate pair %v not matched (p=%g)", mp, res.P[id])
		}
	}
	// No spurious matches: every flagged pair must be one of the three.
	for pid, matched := range res.Matches {
		if !matched {
			continue
		}
		p := g.Pairs[pid]
		ok := false
		for _, mp := range matchPairs {
			if p.I == mp[0] && p.J == mp[1] {
				ok = true
			}
		}
		if !ok {
			t.Errorf("spurious match (%d,%d) with p=%g", p.I, p.J, res.P[pid])
		}
	}
}

func TestRunFusionWithRSSBackend(t *testing.T) {
	_, g := setup(fusionTexts...)
	opts := DefaultOptions()
	opts.UseRSS = true
	opts.RSSWalks = 100
	opts.FusionIterations = 2
	res := mustFusion(t, g, len(fusionTexts), opts)
	id, _ := g.PairID(0, 1)
	if !res.Matches[id] {
		t.Errorf("RSS backend missed duplicate pair, p=%g", res.P[id])
	}
}

func TestRunFusionProgressCallback(t *testing.T) {
	_, g := setup(fusionTexts...)
	opts := DefaultOptions()
	opts.FusionIterations = 3
	var iterations []int
	var lastElapsed time.Duration
	opts.Progress = func(it int, s, p []float64, elapsed time.Duration) {
		iterations = append(iterations, it)
		if len(s) != g.NumPairs() || len(p) != g.NumPairs() {
			t.Errorf("callback slices misaligned: %d/%d vs %d", len(s), len(p), g.NumPairs())
		}
		if elapsed < lastElapsed {
			t.Error("elapsed time must be monotone")
		}
		lastElapsed = elapsed
	}
	mustFusion(t, g, len(fusionTexts), opts)
	if len(iterations) != 3 || iterations[0] != 1 || iterations[2] != 3 {
		t.Errorf("callback iterations = %v, want [1 2 3]", iterations)
	}
}

func TestRunFusionTraceMatchesIterations(t *testing.T) {
	_, g := setup(fusionTexts...)
	opts := DefaultOptions()
	opts.FusionIterations = 4
	res := mustFusion(t, g, len(fusionTexts), opts)
	if len(res.ITERTrace) != 4 {
		t.Fatalf("trace has %d entries, want 4", len(res.ITERTrace))
	}
	for i, tr := range res.ITERTrace {
		if len(tr) == 0 {
			t.Errorf("fusion iteration %d recorded no ITER updates", i+1)
		}
	}
	if res.Graph == nil || res.Graph.NumNodes() != len(fusionTexts) {
		t.Error("final record graph missing or wrong size")
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed must be positive")
	}
}

func TestRunFusionDeterministic(t *testing.T) {
	_, g := setup(fusionTexts...)
	a := mustFusion(t, g, len(fusionTexts), DefaultOptions())
	b := mustFusion(t, g, len(fusionTexts), DefaultOptions())
	for i := range a.P {
		if a.P[i] != b.P[i] {
			t.Fatal("fusion must be deterministic under a fixed seed")
		}
	}
}

// TestRunFusionStopWordDegeneracy documents why the paper's preprocessing
// removes very frequent terms: when singleton records are connected only
// through a corpus-wide stop word, all their edges have equal weight and
// the Eq. 12 target bonus makes any pair of them mutually reachable with
// probability ≈ 1 — an unavoidable false positive for the walk model.
func TestRunFusionStopWordDegeneracy(t *testing.T) {
	texts := []string{
		"widget ax7f alpha",
		"widget ax7f alpha",
		"widget solo1 only1",
		"widget solo2 only2",
	}
	_, g := setup(texts...)
	res := mustFusion(t, g, len(texts), DefaultOptions())
	id, ok := g.PairID(2, 3)
	if !ok {
		t.Fatal("stop-word pair must be a candidate")
	}
	if res.P[id] < 0.9 {
		t.Errorf("degenerate stop-word pair p = %g; expected ≈ 1 (this documents the failure mode the frequent-term filter prevents)", res.P[id])
	}
}

func TestRunFusionReinforcementSharpensSeparation(t *testing.T) {
	// Table V intuition: feeding p back into ITER should not degrade the
	// margin between matching and spurious pairs.
	_, g := setup(fusionTexts...)
	margin := func(iters int) float64 {
		opts := DefaultOptions()
		opts.FusionIterations = iters
		res := mustFusion(t, g, len(fusionTexts), opts)
		worstMatch, bestSpurious := 1.0, 0.0
		for pid, pair := range g.Pairs {
			isMatch := (pair.I == 0 && pair.J == 1) || (pair.I == 2 && pair.J == 3) || (pair.I == 4 && pair.J == 5)
			if isMatch && res.P[pid] < worstMatch {
				worstMatch = res.P[pid]
			}
			if !isMatch && res.P[pid] > bestSpurious {
				bestSpurious = res.P[pid]
			}
		}
		return worstMatch - bestSpurious
	}
	m1 := margin(1)
	m5 := margin(5)
	if m5 < m1-1e-9 {
		t.Errorf("margin after 5 fusion rounds (%g) worse than after 1 (%g)", m5, m1)
	}
}

func TestRunFusionCanceledCheckpoint(t *testing.T) {
	_, g := setup(fusionTexts...)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := DefaultOptions()
	opts.Check = guard.FromContext(ctx)
	res, err := RunFusion(g, len(fusionTexts), opts)
	if res != nil {
		t.Error("canceled fusion must not return a result")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunFusionCancelMidRun(t *testing.T) {
	_, g := setup(fusionTexts...)
	ctx, cancel := context.WithCancel(context.Background())
	opts := DefaultOptions()
	opts.FusionIterations = 50
	opts.Check = guard.FromContext(ctx)
	fired := false
	opts.Progress = func(it int, s, p []float64, elapsed time.Duration) {
		if it == 2 && !fired {
			fired = true
			cancel()
		}
	}
	_, err := RunFusion(g, len(fusionTexts), opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancellation not surfaced: %v", err)
	}
}

func TestRunFusionReportsConvergence(t *testing.T) {
	_, g := setup(fusionTexts...)
	opts := DefaultOptions()
	res := mustFusion(t, g, len(fusionTexts), opts)
	if !res.Converged {
		t.Error("default tolerance on the crafted corpus must converge")
	}
	if len(res.ITERIterations) != opts.FusionIterations {
		t.Fatalf("ITERIterations has %d entries, want %d", len(res.ITERIterations), opts.FusionIterations)
	}
	for i, n := range res.ITERIterations {
		if n < 1 || n > opts.ITERMaxIters {
			t.Errorf("round %d used %d iterations, outside [1,%d]", i, n, opts.ITERMaxIters)
		}
		if n != len(res.ITERTrace[i]) {
			t.Errorf("round %d: iterations %d != trace length %d", i, n, len(res.ITERTrace[i]))
		}
	}

	// An impossible tolerance with a tiny cap must be reported as truncation,
	// not silently returned as if converged.
	opts.ITERTol = 0
	opts.ITERMaxIters = 2
	res = mustFusion(t, g, len(fusionTexts), opts)
	if res.Converged {
		t.Error("zero tolerance with a 2-iteration cap cannot converge")
	}
	for _, n := range res.ITERIterations {
		if n != 2 {
			t.Errorf("iterations-used = %d, want the cap 2", n)
		}
	}
}

func TestRunFusionZeroSeedEqualsSeedOne(t *testing.T) {
	_, g := setup(fusionTexts...)
	zero := DefaultOptions()
	zero.Seed = 0
	one := DefaultOptions()
	one.Seed = 1
	a := mustFusion(t, g, len(fusionTexts), zero)
	b := mustFusion(t, g, len(fusionTexts), one)
	for i := range a.P {
		if a.P[i] != b.P[i] {
			t.Fatal("Seed 0 must behave exactly like the default seed 1")
		}
	}
}

func TestRunFusionOutputsFinite(t *testing.T) {
	_, g := setup(fusionTexts...)
	res := mustFusion(t, g, len(fusionTexts), DefaultOptions())
	for i, v := range res.P {
		if math.IsNaN(v) || v < 0 || v > 1 {
			t.Errorf("P[%d] = %g outside [0,1]", i, v)
		}
	}
	for i, v := range res.X {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("X[%d] = %g not finite", i, v)
		}
	}
	if res.NumericRepairs != 0 {
		t.Errorf("healthy corpus required %d numeric repairs", res.NumericRepairs)
	}
}

func TestSanitizeNonNegative(t *testing.T) {
	v := []float64{1, math.NaN(), math.Inf(1), math.Inf(-1), -3, 0.5}
	if n := sanitizeNonNegative(v); n != 4 {
		t.Errorf("repairs = %d, want 4", n)
	}
	want := []float64{1, 0, 0, 0, 0, 0.5}
	for i := range v {
		if v[i] != want[i] {
			t.Errorf("v[%d] = %g, want %g", i, v[i], want[i])
		}
	}
}

func TestSanitizeProbabilities(t *testing.T) {
	p := []float64{0.5, math.NaN(), 2, -0.1, math.Inf(1), math.Inf(-1), 1}
	if n := sanitizeProbabilities(p); n != 5 {
		t.Errorf("repairs = %d, want 5", n)
	}
	want := []float64{0.5, 0, 1, 0, 1, 0, 1}
	for i := range p {
		if p[i] != want[i] {
			t.Errorf("p[%d] = %g, want %g", i, p[i], want[i])
		}
	}
}
