package core

import (
	"sync"

	"repro/internal/blocking"
	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/parallel"
)

// Component sharding (Options.ShardComponents) splits the rank phase of the
// fusion loop by connected component of the *candidate* graph. Blocking
// fixes the candidate pairs for the whole run, the record graph of every
// round keeps a subset of those edges (similarity > 0), and CliqueRank
// propagates mass only along record-graph edges — so no probability ever
// flows between candidate components, and ranking each component on its own
// local graph is exact, not an approximation. The partition is computed
// once per run.
//
// ITER is not shardable the same way: its convergence test is a global
// Σ|Δx_t| and its damping RNG draws in a fixed global sequence, so a
// per-component ITER would change results. ITER therefore stays global and
// only graph construction + CliqueRank shard.
//
// Determinism: components are ordered by their smallest record ID, local
// node numbering preserves global record order, and each shard's pairs
// keep global candidate order — so every per-shard kernel sees exactly the
// rows (in the same order, with the same values) it would see inside the
// global graph, and writes its slice of p bit-identically to the unsharded
// run. Large components run one at a time with the full worker budget;
// small components fan out across workers with one worker each, which
// cannot change bits because a kernel's result is worker-independent.

// bigShardPairs is the scheduling cut: components with at least this many
// candidate pairs keep the full worker budget (row-level parallelism pays
// off inside them), smaller ones become units of component-level fan-out.
const bigShardPairs = 4096

// shard is one connected component of the candidate graph.
type shard struct {
	// records lists the component's global record IDs, ascending; a
	// record's position is its local node ID.
	records []int32
	// pairs lists the component's global candidate-pair IDs, ascending; a
	// pair's position is its local pair index.
	pairs []int32
}

// shardSet is the once-per-run component partition.
type shardSet struct {
	shards []shard
	// recLocal maps a global record ID to its local node ID within its
	// shard (-1 for records in no candidate pair).
	recLocal []int32
	// big and small split shard indexes by bigShardPairs; smallGrain is
	// the precomputed fan-out chunk size over small (a pure function of
	// the partition, so chunk sets are worker-independent).
	big        []int32
	small      []int32
	smallGrain int
}

// partitionComponents computes the connected components of the candidate
// graph. Records that appear in no candidate pair are left out — they have
// no pairs to score, so excluding them changes nothing.
func partitionComponents(g *blocking.Graph, numRecords int) *shardSet {
	uf := graph.NewUnionFind(numRecords)
	inPair := make([]bool, numRecords)
	for _, pr := range g.Pairs {
		uf.Union(int(pr.I), int(pr.J))
		inPair[pr.I] = true
		inPair[pr.J] = true
	}

	// Number components by first appearance in ascending record order, so
	// the shard order (and with it every merged aggregate) is a pure
	// function of the candidate graph.
	compIdx := make([]int32, numRecords)
	shardOf := make([]int32, numRecords)
	for i := range compIdx {
		compIdx[i] = -1
	}
	nshards := 0
	for r := 0; r < numRecords; r++ {
		if !inPair[r] {
			shardOf[r] = -1
			continue
		}
		root := uf.Find(r)
		if compIdx[root] < 0 {
			compIdx[root] = int32(nshards)
			nshards++
		}
		shardOf[r] = compIdx[root]
	}

	recCount := make([]int32, nshards)
	pairCount := make([]int32, nshards)
	for r := 0; r < numRecords; r++ {
		if shardOf[r] >= 0 {
			recCount[shardOf[r]]++
		}
	}
	for _, pr := range g.Pairs {
		pairCount[shardOf[pr.I]]++
	}
	ss := &shardSet{shards: make([]shard, nshards), recLocal: make([]int32, numRecords)}
	for si := range ss.shards {
		ss.shards[si].records = make([]int32, 0, recCount[si])
		ss.shards[si].pairs = make([]int32, 0, pairCount[si])
	}
	// Ascending r per shard: a record's local ID preserves the global
	// order, so local neighbor lists sort identically to the global ones —
	// the heart of the bit-identity argument.
	for r := 0; r < numRecords; r++ {
		si := shardOf[r]
		if si < 0 {
			ss.recLocal[r] = -1
			continue
		}
		ss.recLocal[r] = int32(len(ss.shards[si].records))
		ss.shards[si].records = append(ss.shards[si].records, int32(r))
	}
	for pid, pr := range g.Pairs {
		si := shardOf[pr.I]
		ss.shards[si].pairs = append(ss.shards[si].pairs, int32(pid))
	}

	smallPairs := 0
	for si := range ss.shards {
		if len(ss.shards[si].pairs) >= bigShardPairs {
			ss.big = append(ss.big, int32(si))
		} else {
			ss.small = append(ss.small, int32(si))
			smallPairs += len(ss.shards[si].pairs)
		}
	}
	ss.smallGrain = parallel.GrainFor(len(ss.small), smallPairs+len(ss.small), 4096)
	return ss
}

// buildShardGraph is buildRecordGraph restricted to one component: nodes
// are renumbered through recLocal, and PairSlot/Edges are indexed by the
// shard-local pair position rather than the global pair ID.
func buildShardGraph(g *blocking.Graph, sh *shard, recLocal []int32, s []float64, ar *arena) *RecordGraph {
	edges := ar.getEdges(len(sh.pairs))
	kept := ar.getI32(len(sh.pairs))[:0]
	for k, pid := range sh.pairs {
		if s[pid] <= 0 {
			continue
		}
		pr := g.Pairs[pid]
		edges = append(edges, matrix.Edge{I: recLocal[pr.I], J: recLocal[pr.J]})
		kept = append(kept, int32(k))
	}
	pat := matrix.NewPattern(len(sh.records), edges)
	ar.putEdges(edges)
	sv := &matrix.PatVec{P: pat, Val: ar.getF64(pat.NNZ())}
	slot := ar.getI32(len(sh.pairs))
	for i := range slot {
		slot[i] = -1
	}
	for _, k := range kept {
		pid := sh.pairs[k]
		pr := g.Pairs[pid]
		a := pat.Slot(int(recLocal[pr.I]), int(recLocal[pr.J]))
		b := pat.Slot(int(recLocal[pr.J]), int(recLocal[pr.I]))
		sv.Val[a] = s[pid]
		sv.Val[b] = s[pid]
		slot[k] = int32(a)
	}
	slotRow := ar.getI32(pat.NNZ())
	//lint:ignore guardloop output-sized fill of the slot→row index; the surrounding fusion round polls between kernels
	for i := 0; i < pat.N; i++ {
		row := slotRow[pat.RowPtr[i]:pat.RowPtr[i+1]]
		for k := range row {
			row[k] = int32(i)
		}
	}
	return &RecordGraph{Pattern: pat, S: sv, PairSlot: slot, Edges: kept, SlotRow: slotRow, arena: ar}
}

// shardArenas recycles per-task arenas for the small-component fan-out.
// The fusion run's own arena is single-goroutine by contract, so each
// fan-out chunk checks one out for exclusive use and returns it when done.
var shardArenas = sync.Pool{New: func() any { return &arena{} }}

// Partition computes the component partition once per run, enabling the
// sharded rank step; it returns the component count. It is a no-op under
// UseRSS (RSS's per-edge seeding already parallelizes over global pair IDs
// and needs the global graph's Edges list).
func (f *FusionRun) Partition() int {
	if f.opts.UseRSS {
		return 0
	}
	if f.shards == nil {
		f.shards = partitionComponents(f.g, f.numRecords)
	}
	return len(f.shards.shards)
}

// Sharded reports whether Partition has prepared a component partition —
// when true, drive rounds with StepITER + StepShardedRank instead of
// StepITER + StepGraph + StepRank.
func (f *FusionRun) Sharded() bool { return f.shards != nil }

// rankShard scores one component: build its local record graph from the
// round's similarities, run CliqueRank on it with the given worker budget,
// and scatter the probabilities into the global p. Components whose pairs
// all have similarity 0 write zeros directly — exactly what the global
// graph's dropped-edge path produces. Returns the kept-edge count.
func (f *FusionRun) rankShard(sh *shard, ar *arena, workers int) int {
	s := f.res.S
	kept := 0
	for _, pid := range sh.pairs {
		if s[pid] > 0 {
			kept++
		}
	}
	if kept == 0 {
		for _, pid := range sh.pairs {
			f.p[pid] = 0
		}
		return 0
	}
	rg := buildShardGraph(f.g, sh, f.shards.recLocal, s, ar)
	opts := f.opts
	opts.Workers = workers
	pl := ar.getF64(len(sh.pairs))
	CliqueRankInto(rg, opts, pl)
	for k, pid := range sh.pairs {
		f.p[pid] = pl[k]
	}
	ar.putF64(pl)
	rg.release()
	return kept
}

// StepShardedRank is the sharded replacement for StepGraph + StepRank: it
// rebuilds and ranks every component's record graph, merges the per-shard
// probabilities (disjoint slices of p, in deterministic component order),
// and aggregates the node/edge counts into the result. Big components run
// sequentially with the full worker budget; small ones fan out over
// components with one worker each. It returns the total kept-edge count
// and the checkpoint's error when the run was canceled.
func (f *FusionRun) StepShardedRank() (edges int, err error) {
	if err := f.opts.Check.Err(); err != nil {
		return 0, err
	}
	ss := f.shards
	res := f.res
	if res.Graph != nil {
		// A caller may have mixed unsharded rounds in; the global graph is
		// stale the moment similarities change.
		res.Graph.release()
		res.Graph = nil
	}
	counts := f.ar.getI32(len(ss.shards))
	for i := range counts {
		counts[i] = 0
	}
	for _, si := range ss.big {
		if f.opts.Check.Err() != nil {
			break
		}
		counts[si] = int32(f.rankShard(&ss.shards[si], f.ar, f.opts.Workers))
	}
	if f.opts.Check.Err() == nil && len(ss.small) > 0 {
		parallel.ForGrain(f.opts.Workers, len(ss.small), ss.smallGrain, func(lo, hi int) {
			ar := shardArenas.Get().(*arena)
			for k := lo; k < hi; k++ {
				// One poll per component bounds post-cancellation work; the
				// torn p slices are discarded with the error below.
				if f.opts.Check.Err() != nil {
					break
				}
				si := ss.small[k]
				counts[si] = int32(f.rankShard(&ss.shards[si], ar, 1))
			}
			shardArenas.Put(ar)
		})
	}
	if err := f.opts.Check.Err(); err != nil {
		f.ar.putI32(counts)
		return 0, err
	}
	for _, c := range counts {
		edges += int(c)
	}
	f.ar.putI32(counts)
	res.Nodes, res.Edges = f.numRecords, edges
	res.NumericRepairs += sanitizeProbabilities(f.p)
	if f.opts.Progress != nil {
		f.opts.Progress(f.round, res.S, f.p, f.now().Sub(f.start))
	}
	return edges, nil
}
