package core

import (
	"math/rand"
	"time"

	"repro/internal/blocking"
)

// FusionResult is the output of the full ITER ⇄ CliqueRank framework.
type FusionResult struct {
	// X is the final term weight vector.
	X []float64
	// S is the final pair similarity s(ri, rj).
	S []float64
	// P is the final matching probability p(ri, rj) ∈ [0, 1].
	P []float64
	// Matches flags the pairs with P >= opts.Eta.
	Matches []bool
	// Graph is the record graph of the last iteration (Table III stats).
	Graph *RecordGraph
	// ITERTrace records, per fusion iteration, the Σ|Δx_t| update series of
	// the inner ITER loop (the Figure 5 data, concatenated across fusion
	// iterations).
	ITERTrace [][]float64
	// Elapsed is the total wall-clock time of the fusion loop.
	Elapsed time.Duration
}

// RunFusion executes the full unsupervised framework of Figure 2 on a
// blocked candidate set:
//
//	p ← 1 for every pair
//	repeat FusionIterations times:
//	    x, s ← ITER(bipartite graph, p)      (§V)
//	    G_r  ← record graph weighted by s     (§VI-A)
//	    p    ← CliqueRank(G_r)  (or RSS)      (§VI-B/C)
//
// After the last round, pairs with p >= η are declared matches.
// opts.Progress, when set, observes every iteration (the Table V hook).
func RunFusion(g *blocking.Graph, numRecords int, opts Options) *FusionResult {
	start := time.Now()
	rng := rand.New(rand.NewSource(opts.Seed))

	p := make([]float64, g.NumPairs())
	for k := range p {
		p[k] = 1
	}
	res := &FusionResult{}
	iters := opts.FusionIterations
	if iters < 1 {
		iters = 1
	}
	for it := 1; it <= iters; it++ {
		iterRes := RunITER(g, p, opts, rng)
		res.X, res.S = iterRes.X, iterRes.S
		res.ITERTrace = append(res.ITERTrace, iterRes.Updates)

		res.Graph = BuildRecordGraph(g, res.S, numRecords)
		if opts.UseRSS {
			p = RSS(res.Graph, opts)
		} else {
			p = CliqueRank(res.Graph, opts)
		}
		if opts.Progress != nil {
			opts.Progress(it, res.S, p, time.Since(start))
		}
	}
	res.P = p
	res.Matches = make([]bool, len(p))
	for k, v := range p {
		res.Matches[k] = v >= opts.Eta
	}
	res.Elapsed = time.Since(start)
	return res
}
