package core

import (
	"math"
	"time"

	"repro/internal/blocking"
)

// FusionResult is the output of the full ITER ⇄ CliqueRank framework.
type FusionResult struct {
	// X is the final term weight vector.
	X []float64
	// S is the final pair similarity s(ri, rj).
	S []float64
	// P is the final matching probability p(ri, rj) ∈ [0, 1].
	P []float64
	// Matches flags the pairs with P >= opts.Eta.
	Matches []bool
	// Graph is the record graph of the last iteration (Table III stats).
	// It is nil when the run was sharded by component (ShardComponents):
	// the global graph is never materialized then. Nodes and Edges below
	// are populated either way.
	Graph *RecordGraph
	// Nodes and Edges are the last round's record-graph size — the record
	// count and the kept (similarity > 0) pair count. Unlike Graph, they
	// are populated in both the sharded and unsharded paths.
	Nodes, Edges int
	// ITERTrace records, per fusion iteration, the Σ|Δx_t| update series of
	// the inner ITER loop (the Figure 5 data, concatenated across fusion
	// iterations).
	ITERTrace [][]float64
	// ITERIterations records, per fusion iteration, how many inner ITER
	// iterations ran before the Σ|Δx_t| < ITERTol stop (or the
	// ITERMaxIters cap).
	ITERIterations []int
	// Converged reports whether every inner ITER run reached its tolerance
	// before hitting ITERMaxIters. When false, the result was truncated at
	// the iteration cap and X/S carry the last (unconverged) sweep.
	Converged bool
	// NumericRepairs counts the non-finite values (NaN, ±Inf) detected in
	// x, s or p across fusion rounds and replaced by the documented
	// fallback (0 for weights and similarities; p additionally clamped to
	// [0, 1]). A non-zero count signals a numeric instability upstream —
	// the outputs remain finite but should be treated with suspicion.
	NumericRepairs int
	// Elapsed is the total wall-clock time of the fusion loop.
	Elapsed time.Duration
}

// RunFusion executes the full unsupervised framework of Figure 2 on a
// blocked candidate set:
//
//	p ← 1 for every pair
//	repeat FusionIterations times:
//	    x, s ← ITER(bipartite graph, p)      (§V)
//	    G_r  ← record graph weighted by s     (§VI-A)
//	    p    ← CliqueRank(G_r)  (or RSS)      (§VI-B/C)
//
// After the last round, pairs with p >= η are declared matches.
// opts.Progress, when set, observes every iteration (the Table V hook).
//
// A zero opts.Seed is normalized to 1 (the library-wide default). When
// opts.Check reports cancellation, RunFusion stops between sweeps and
// returns the checkpoint's error with a nil result; after every round the
// x/s/p vectors are scanned for NaN/±Inf and sanitized (see
// FusionResult.NumericRepairs).
func RunFusion(g *blocking.Graph, numRecords int, opts Options) (*FusionResult, error) {
	// The reinforcement loop reuses its working memory across rounds: the
	// ITER scratch carries the x/s/raw vectors, the arena recycles the
	// record-graph and CliqueRank buffers, and p is rewritten in place. Only
	// the last round's buffers survive into the result, so the steady state
	// of the loop allocates nothing but the per-round adjacency pattern.
	f := NewFusionRun(g, numRecords, opts)
	if opts.ShardComponents {
		f.Partition()
	}
	for f.Next() {
		if _, err := f.StepITER(); err != nil {
			return nil, err
		}
		if f.Sharded() {
			if _, err := f.StepShardedRank(); err != nil {
				return nil, err
			}
		} else {
			f.StepGraph()
			if err := f.StepRank(); err != nil {
				return nil, err
			}
		}
	}
	return f.Finish(), nil
}

// sanitizeNonNegative replaces NaN/±Inf (and the negative values that only a
// numeric fault can produce in term weights or shared-term similarities)
// with 0 — the neutral element of both vectors: a zero term weight carries
// no evidence and a zero similarity drops the edge from G_r. It returns the
// number of repairs.
func sanitizeNonNegative(v []float64) int {
	n := 0
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			v[i] = 0
			n++
		}
	}
	return n
}

// sanitizeProbabilities forces p into [0, 1]: NaN becomes 0 (no evidence),
// +Inf and overshoots clamp to 1, -Inf and undershoots to 0. It returns the
// number of repairs. Ordinary rounding noise is not counted — CliqueRank
// already clamps per direction — so any repair here indicates a real fault.
func sanitizeProbabilities(p []float64) int {
	n := 0
	for i, x := range p {
		switch {
		case math.IsNaN(x):
			p[i] = 0
			n++
		case x > 1:
			p[i] = 1
			n++
		case x < 0:
			p[i] = 0
			n++
		}
	}
	return n
}
