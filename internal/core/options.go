// Package core implements the paper's primary contribution: the ITER
// algorithm (§V), the RSS random-surfer sampler and the CliqueRank matrix
// algorithm (§VI), and the fusion loop that reinforces them against each
// other (§IV, §VII-F).
package core

import (
	"time"

	"repro/internal/clock"
	"repro/internal/guard"
)

// Options carries the framework parameters. The defaults are the universal
// setting of §VII-C: α = 20, S = 20, η = 0.98, 5 fusion iterations — the
// paper uses the same values on all three datasets.
type Options struct {
	// Alpha is the exponent of the non-linear transition probability
	// (Eq. 11). Large values concentrate the random walk on high-weight
	// edges so it stays inside the ground-truth clique. A zero Alpha
	// flattens the transform (w^0 = 1), making every walk uniform; use
	// DefaultOptions for the paper's setting of 20.
	Alpha float64
	// Steps is S, the maximum random-walk length (Eq. 14–15). Zero permits
	// no steps, so every walk fails to reach its target.
	Steps int
	// Eta is the matching-probability threshold η; pairs with
	// p(ri, rj) >= Eta are declared matches. Zero declares every surviving
	// candidate pair a match.
	Eta float64
	// FusionIterations is the number of ITER → CliqueRank rounds (5 in the
	// paper's Table V). Values below 1 — including the zero value — are
	// normalized to a single round.
	FusionIterations int

	// ITERTol stops the inner ITER loop once Σ|Δx_t| falls below it. Zero
	// disables the early-convergence exit: the loop runs the full
	// ITERMaxIters.
	ITERTol float64
	// ITERMaxIters bounds the inner ITER loop. Zero runs no inner
	// iterations, leaving the randomly initialized weights untouched.
	ITERMaxIters int
	// Normalization selects the per-iteration term-weight normalization.
	// The zero value is NormBounded, the paper's x/(1+x) map.
	Normalization Normalization

	// UseRSS replaces CliqueRank with the sampling-based RSS estimator
	// (Algorithm 2). Exponentially slower on dense graphs; kept for the
	// Table III speedup comparison and cross-validation tests.
	UseRSS bool
	// RSSWalks is M, the number of sampled walks per edge (half from each
	// endpoint). Zero samples no walks, pinning every RSS estimate at 0.
	RSSWalks int

	// DisableBonus turns off the target-edge weight boosting of Eq. 12
	// (ablation 2 in DESIGN.md).
	DisableBonus bool
	// DisableMask turns off the ⊙ M_n early-stop masking in CliqueRank and
	// the corresponding early-stop in RSS walks (ablation 3).
	DisableMask bool
	// DisableDenominator drops the P_t normalization of Eq. 6, degrading
	// ITER to PageRank-like accumulation (ablation 4).
	DisableDenominator bool

	// Seed drives all randomness (x_t initialization, bonus draws, RSS
	// walks); runs with equal seeds are identical. A zero Seed selects the
	// default seed 1, matching the zero-value behavior of er.ReplicaConfig
	// and er.Options.
	Seed int64

	// Workers bounds the goroutines the ITER, CliqueRank and RSS kernels fan
	// out across. All parallel loops run through the deterministic chunked
	// scheduler (internal/parallel), so every Workers setting — including 1 —
	// produces bit-identical scores. The zero value (and any value below 1)
	// selects runtime.GOMAXPROCS(0).
	Workers int

	// ShardComponents splits the rank phase by connected component of the
	// candidate graph: each round builds and ranks a per-component record
	// graph instead of one global graph, with components fanned out over
	// Workers. The scores are bit-identical to the unsharded run (the
	// determinism suite pins this) — the flag trades the global graph in
	// FusionResult.Graph (left nil) for coarse-grained parallelism that
	// scales on corpora with many components. Ignored under UseRSS.
	ShardComponents bool

	// Scratch, when non-nil, recycles the record-graph and rank-kernel
	// arena across sequential fusion runs on the same goroutine (see
	// Scratch). Nil allocates a private arena per run.
	Scratch *Scratch

	// Check, when non-nil, is polled from the hot loops of ITER, CliqueRank
	// and RSS. Once it reports cancellation, RunFusion abandons the
	// remaining work and returns the checkpoint's error (for context-backed
	// checkpoints: context.Canceled or context.DeadlineExceeded).
	Check *guard.Checkpoint

	// Progress, when non-nil, is invoked after every fusion iteration with
	// the iteration number (1-based), the current pair similarities and
	// matching probabilities, and the cumulative elapsed time. It powers
	// the Table V harness without coupling core to the evaluation code.
	// The s and p slices are scratch the fusion loop rewrites each round:
	// they are valid only during the callback and must be copied to be
	// retained.
	Progress func(iteration int, s, p []float64, elapsed time.Duration)

	// Clock supplies the timestamps behind FusionResult.Elapsed and the
	// Progress callback; nil selects the system clock. It exists so the
	// kernel never reads ambient time directly (the determinism lint bans
	// time.Now here) and timing-dependent tests can inject a fake.
	Clock clock.Func
}

// Normalization identifies an ITER term-weight normalization scheme. The
// additive rule of Eq. 7 grows without bound, so §V-C normalizes x_t every
// iteration; the paper's implementation uses the bounded map and notes that
// an L2 normalization "can also be applied".
type Normalization int

const (
	// NormBounded is x_t ← x_t/(1+x_t) (the paper's 1/(1 + 1/x_t)).
	NormBounded Normalization = iota
	// NormL2 rescales the weight vector to unit Euclidean norm.
	NormL2
)

// String implements fmt.Stringer.
func (n Normalization) String() string {
	switch n {
	case NormBounded:
		return "bounded"
	case NormL2:
		return "l2"
	default:
		return "unknown"
	}
}

// DefaultOptions returns the paper's universal parameter setting.
func DefaultOptions() Options {
	return Options{
		Alpha:            20,
		Steps:            20,
		Eta:              0.98,
		FusionIterations: 5,
		ITERTol:          1e-6,
		ITERMaxIters:     100,
		RSSWalks:         20,
		Seed:             1,
	}
}
