package core

import (
	"math"
	"math/rand"

	"repro/internal/parallel"
)

// RSS implements Algorithm 2, the Random-Surfer Sampling estimator of the
// matching probability: for every edge (ri, rj) of G_r it simulates M
// rectified random walks (half from each endpoint, Algorithm 3) and
// estimates p(ri, rj) as the fraction that reached the other endpoint
// within S steps.
//
// The returned slice is aligned with the candidate pairs of the blocking
// graph the RecordGraph was built from; pairs whose edge was dropped
// (similarity 0) get probability 0.
//
// Each edge's walks run on an RNG seeded from (opts.Seed, pair ID), so
// results are deterministic and independent of the parallel schedule.
func RSS(rg *RecordGraph, opts Options) []float64 {
	p := make([]float64, len(rg.PairSlot))
	RSSInto(rg, opts, p)
	return p
}

// RSSInto writes the RSS estimates into p (length len(rg.PairSlot)),
// overwriting every element. Edges fan out over opts.Workers goroutines;
// per-edge seeding keeps the estimates bit-identical for any worker count.
func RSSInto(rg *RecordGraph, opts Options, p []float64) {
	for k := range p {
		p[k] = 0
	}
	sampleEdges(rg, opts, rg.Edges, p)
}

// RSSOnEdges estimates matching probabilities only for the given subset of
// edge positions (indexes into rg.Edges). The Table III harness uses it to
// time RSS on a sample and extrapolate the full cost, which is how the
// published 60x speedup on the dense Paper graph stays measurable.
func RSSOnEdges(rg *RecordGraph, opts Options, positions []int) []float64 {
	p := make([]float64, len(rg.PairSlot))
	subset := make([]int32, len(positions))
	for k, pos := range positions {
		subset[k] = rg.Edges[pos]
	}
	sampleEdges(rg, opts, subset, p)
	return p
}

func sampleEdges(rg *RecordGraph, opts Options, pairIDs []int32, out []float64) {
	m := opts.RSSWalks
	if m < 2 {
		m = 2
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	parallel.For(opts.Workers, len(pairIDs), func(lo, hi int) {
		// One probability scratch per chunk, grown to the largest degree
		// the chunk's walks visit: Algorithm 3 needs a per-step transition
		// distribution, and reusing the buffer keeps the sampler free of
		// per-step allocation.
		var probs []float64
		for k := lo; k < hi; k++ {
			// Each edge costs M walks of up to S steps; polling per edge
			// bounds post-cancellation work to one edge per worker. The
			// zeros left in out are discarded by RunFusion alongside the
			// checkpoint's error.
			if opts.Check.Tick() != nil {
				return
			}
			pid := pairIDs[k]
			slot := rg.PairSlot[pid]
			if slot < 0 {
				continue
			}
			i, j := endpointsOf(rg, pid)
			rng := rand.New(rand.NewSource(opts.Seed ^ (int64(pid)+1)*0x5851f42d4c957f2d))
			c := 0
			for w := 0; w < m/2; w++ {
				c += randomWalk(rg, i, j, opts, rng, &probs)
			}
			for w := 0; w < m-m/2; w++ {
				c += randomWalk(rg, j, i, opts, rng, &probs)
			}
			out[pid] = float64(c) / float64(m)
		}
	})
}

// endpointsOf recovers the two records of a candidate pair from the slot of
// its directed (I → J) entry, using the record graph's O(1) slot→row index.
func endpointsOf(rg *RecordGraph, pid int32) (int, int) {
	slot := rg.PairSlot[pid]
	return int(rg.SlotRow[slot]), int(rg.Pattern.Col[slot])
}

// randomWalk is Algorithm 3: a rectified random walk from start that
// returns 1 when it reaches target within opts.Steps steps. Transition
// probabilities are the non-linear transform of Eq. 11 with the per-step
// target bonus of Eq. 12; stepping to a node that is not a neighbor of the
// target aborts the walk (early stop, lines 8–9). scratch is the caller's
// reusable transition-distribution buffer.
func randomWalk(rg *RecordGraph, start, target int, opts Options, rng *rand.Rand, scratch *[]float64) int {
	cur := start
	for s := 0; s < opts.Steps; s++ {
		// A canceled walk reports "target not reached": RSS's caller polls
		// the same checkpoint and surfaces the error; the partial estimate
		// is discarded with it.
		if opts.Check.Tick() != nil {
			return 0
		}
		nbrs, weights := rg.S.RowSlice(cur)
		if len(nbrs) == 0 {
			return 0
		}
		// Bonus factor for the edge toward the target, redrawn each step.
		bonus := 1.0
		if !opts.DisableBonus {
			bonus = 1 + rng.Float64()
		}
		// Row-max normalization before powering keeps w^α inside float64
		// range for any α.
		smax := 0.0
		for k, w := range weights {
			if int(nbrs[k]) == target {
				w *= bonus
			}
			if w > smax {
				smax = w
			}
		}
		if smax == 0 {
			return 0
		}
		if cap(*scratch) < len(nbrs) {
			*scratch = make([]float64, len(nbrs))
		}
		probs := (*scratch)[:len(nbrs)]
		var total float64
		for k, w := range weights {
			if int(nbrs[k]) == target {
				w *= bonus
			}
			probs[k] = math.Pow(w/smax, opts.Alpha)
			total += probs[k]
		}
		r := rng.Float64() * total
		next := int(nbrs[len(nbrs)-1])
		for k, pr := range probs {
			r -= pr
			if r <= 0 {
				next = int(nbrs[k])
				break
			}
		}
		if next == target {
			return 1
		}
		if !opts.DisableMask && !rg.Pattern.Has(next, target) {
			return 0
		}
		cur = next
	}
	return 0
}
