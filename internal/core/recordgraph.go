package core

import (
	"repro/internal/blocking"
	"repro/internal/matrix"
)

// RecordGraph is G_r (§VI-A): nodes are records, edges are candidate pairs,
// edge weights are the ITER similarities s(ri, rj). The symmetric sparsity
// pattern is shared by every matrix in the CliqueRank chain.
type RecordGraph struct {
	// Pattern is the adjacency structure M_n.
	Pattern *matrix.Pattern
	// S holds the symmetric edge weights.
	S *matrix.PatVec
	// PairSlot maps a candidate pair ID to the slot of its (I → J) entry,
	// or -1 when the pair's similarity was 0 and the edge was dropped.
	PairSlot []int32
	// Edges lists the pair IDs that became edges, aligned with graph order.
	Edges []int32
	// SlotRow maps every directed slot to its row index, so the CliqueRank
	// and RSS readouts recover slot coordinates in O(1) instead of a binary
	// search over RowPtr per pair.
	SlotRow []int32

	// arena, when non-nil, recycles this graph's buffers (and CliqueRank's
	// scratch) across fusion rounds; see release.
	arena *arena
}

// BuildRecordGraph assembles G_r from the candidate set and per-pair
// similarities. Pairs with similarity 0 (possible when every shared term
// ended with weight 0) are excluded: a zero-weight edge can never be chosen
// by the walk and would only add zero rows to the transition matrix.
func BuildRecordGraph(g *blocking.Graph, s []float64, numRecords int) *RecordGraph {
	return buildRecordGraph(g, s, numRecords, nil)
}

func buildRecordGraph(g *blocking.Graph, s []float64, numRecords int, ar *arena) *RecordGraph {
	edges := ar.getEdges(g.NumPairs())
	kept := ar.getI32(g.NumPairs())[:0]
	for pid, p := range g.Pairs {
		if s[pid] <= 0 {
			continue
		}
		edges = append(edges, matrix.Edge{I: p.I, J: p.J})
		kept = append(kept, int32(pid))
	}
	pat := matrix.NewPattern(numRecords, edges)
	ar.putEdges(edges)
	sv := &matrix.PatVec{P: pat, Val: ar.getF64(pat.NNZ())}
	slot := ar.getI32(g.NumPairs())
	for i := range slot {
		slot[i] = -1
	}
	for _, pid := range kept {
		p := g.Pairs[pid]
		a := pat.Slot(int(p.I), int(p.J))
		b := pat.Slot(int(p.J), int(p.I))
		sv.Val[a] = s[pid]
		sv.Val[b] = s[pid]
		slot[pid] = int32(a)
	}
	slotRow := ar.getI32(pat.NNZ())
	//lint:ignore guardloop output-sized fill of the slot→row index; the surrounding fusion round polls between kernels
	for i := 0; i < pat.N; i++ {
		row := slotRow[pat.RowPtr[i]:pat.RowPtr[i+1]]
		for k := range row {
			row[k] = int32(i)
		}
	}
	return &RecordGraph{Pattern: pat, S: sv, PairSlot: slot, Edges: kept, SlotRow: slotRow, arena: ar}
}

// release returns the graph's recyclable buffers to its arena ahead of the
// next fusion round. The graph must not be used afterwards; calling release
// on an arena-less graph is a no-op.
func (rg *RecordGraph) release() {
	ar := rg.arena
	if ar == nil {
		return
	}
	ar.putF64(rg.S.Val)
	ar.putI32(rg.PairSlot)
	ar.putI32(rg.Edges)
	ar.putI32(rg.SlotRow)
	rg.S, rg.PairSlot, rg.Edges, rg.SlotRow, rg.arena = nil, nil, nil, nil, nil
}

// NumNodes returns the record count (Table III "number of nodes in G_r").
func (rg *RecordGraph) NumNodes() int { return rg.Pattern.N }

// NumEdges returns the undirected edge count (Table III "number of edges").
func (rg *RecordGraph) NumEdges() int { return rg.Pattern.NNZ() / 2 }
