package core

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

// workerCounts are the settings the determinism suite compares: serial, a
// small fixed fan-out, and whatever the machine gives. The product-scale
// graph has thousands of pairs, so every loop spans many scheduler chunks.
func workerCounts() []int {
	counts := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
		counts = append(counts, g)
	}
	return counts
}

func bitsEqual(t *testing.T, label string, want, got []float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: length %d != %d", label, len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
			t.Fatalf("%s[%d]: %v (%#x) != %v (%#x)", label, i,
				got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// TestITERBitIdenticalAcrossWorkers asserts the full ITER output — term
// weights, pair similarities, and the per-iteration convergence series — is
// bit-identical for every worker count, for both normalization schemes.
func TestITERBitIdenticalAcrossWorkers(t *testing.T) {
	_, g := productScaleGraph(t)
	p := onesP(g)
	for _, norm := range []Normalization{NormBounded, NormL2} {
		opts := DefaultOptions()
		opts.Normalization = norm
		opts.Workers = 1
		want := RunITER(g, p, opts, rand.New(rand.NewSource(3)))
		for _, w := range workerCounts()[1:] {
			opts.Workers = w
			got := RunITER(g, p, opts, rand.New(rand.NewSource(3)))
			bitsEqual(t, norm.String()+" X", want.X, got.X)
			bitsEqual(t, norm.String()+" S", want.S, got.S)
			bitsEqual(t, norm.String()+" Updates", want.Updates, got.Updates)
			if got.Iterations != want.Iterations || got.Converged != want.Converged {
				t.Fatalf("workers=%d: iterations %d/%v != %d/%v",
					w, got.Iterations, got.Converged, want.Iterations, want.Converged)
			}
		}
	}
}

// TestITERGatherMatchesScatter asserts the parallel pair→term-CSR gather is
// bit-identical to the legacy serial term-major scatter, which runs when a
// hand-assembled graph has no transposed layout.
func TestITERGatherMatchesScatter(t *testing.T) {
	_, g := productScaleGraph(t)
	p := onesP(g)
	opts := DefaultOptions()
	opts.Workers = 2
	withCSR := RunITER(g, p, opts, rand.New(rand.NewSource(5)))
	gc := *g
	gc.PairTermPtr, gc.PairTerms = nil, nil
	serial := RunITER(&gc, p, opts, rand.New(rand.NewSource(5)))
	bitsEqual(t, "X", serial.X, withCSR.X)
	bitsEqual(t, "S", serial.S, withCSR.S)
}

// TestCliqueRankBitIdenticalAcrossWorkers covers the masked power chain and
// the quadrature bonus row pass.
func TestCliqueRankBitIdenticalAcrossWorkers(t *testing.T) {
	_, g := productScaleGraph(t)
	opts := DefaultOptions()
	iter := RunITER(g, onesP(g), opts, rand.New(rand.NewSource(1)))
	rg := BuildRecordGraph(g, iter.S, g.NumRecords)
	opts.Workers = 1
	want := CliqueRank(rg, opts)
	for _, w := range workerCounts()[1:] {
		opts.Workers = w
		bitsEqual(t, "p", want, CliqueRank(rg, opts))
	}
}

// TestRSSBitIdenticalAcrossWorkers covers the per-edge seeded sampler.
func TestRSSBitIdenticalAcrossWorkers(t *testing.T) {
	_, g := productScaleGraph(t)
	opts := DefaultOptions()
	opts.RSSWalks = 4
	opts.Steps = 5
	iter := RunITER(g, onesP(g), opts, rand.New(rand.NewSource(1)))
	rg := BuildRecordGraph(g, iter.S, g.NumRecords)
	opts.Workers = 1
	want := RSS(rg, opts)
	for _, w := range workerCounts()[1:] {
		opts.Workers = w
		bitsEqual(t, "p", want, RSS(rg, opts))
	}
}

// TestFusionBitIdenticalAcrossWorkers asserts the end-to-end reinforcement
// loop — with its buffer reuse, arena recycling, and in-place p rewrites —
// produces bit-identical similarities, probabilities and match decisions
// for every worker count.
func TestFusionBitIdenticalAcrossWorkers(t *testing.T) {
	_, g := productScaleGraph(t)
	opts := DefaultOptions()
	opts.FusionIterations = 3
	opts.Workers = 1
	want, err := RunFusion(g, g.NumRecords, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts()[1:] {
		opts.Workers = w
		got, err := RunFusion(g, g.NumRecords, opts)
		if err != nil {
			t.Fatal(err)
		}
		bitsEqual(t, "X", want.X, got.X)
		bitsEqual(t, "S", want.S, got.S)
		bitsEqual(t, "P", want.P, got.P)
		for i := range want.Matches {
			if want.Matches[i] != got.Matches[i] {
				t.Fatalf("workers=%d: match[%d] %v != %v", w, i, got.Matches[i], want.Matches[i])
			}
		}
	}
}

// TestShardedFusionBitIdenticalAcrossWorkers is the satellite property
// test for component sharding: the sharded run must reproduce the
// unsharded serial run — similarities, probabilities, match decisions, and
// the graph size aggregates — to the last bit, for every worker count.
func TestShardedFusionBitIdenticalAcrossWorkers(t *testing.T) {
	_, g := productScaleGraph(t)
	opts := DefaultOptions()
	opts.FusionIterations = 3
	opts.Workers = 1
	want, err := RunFusion(g, g.NumRecords, opts)
	if err != nil {
		t.Fatal(err)
	}
	if want.Graph == nil || want.Nodes != want.Graph.NumNodes() || want.Edges != want.Graph.NumEdges() {
		t.Fatalf("unsharded aggregates %d/%d disagree with Graph %d/%d",
			want.Nodes, want.Edges, want.Graph.NumNodes(), want.Graph.NumEdges())
	}
	opts.ShardComponents = true
	for _, w := range workerCounts() {
		opts.Workers = w
		got, err := RunFusion(g, g.NumRecords, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Graph != nil {
			t.Fatalf("workers=%d: sharded run materialized a global graph", w)
		}
		if got.Nodes != want.Nodes || got.Edges != want.Edges {
			t.Fatalf("workers=%d: nodes/edges %d/%d, want %d/%d",
				w, got.Nodes, got.Edges, want.Nodes, want.Edges)
		}
		bitsEqual(t, "X", want.X, got.X)
		bitsEqual(t, "S", want.S, got.S)
		bitsEqual(t, "P", want.P, got.P)
		for i := range want.Matches {
			if want.Matches[i] != got.Matches[i] {
				t.Fatalf("workers=%d: match[%d] %v != %v", w, i, got.Matches[i], want.Matches[i])
			}
		}
	}
}

// TestFusionReuseMatchesSingleShot asserts the scratch/arena path RunFusion
// takes is bit-identical to composing the exported single-shot kernels by
// hand — the reuse must be invisible.
func TestFusionReuseMatchesSingleShot(t *testing.T) {
	_, g := productScaleGraph(t)
	opts := DefaultOptions()
	opts.FusionIterations = 2
	opts.Workers = 2
	res, err := RunFusion(g, g.NumRecords, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	p := onesP(g)
	var iter *ITERResult
	for it := 0; it < 2; it++ {
		iter = RunITER(g, p, opts, rng)
		rg := BuildRecordGraph(g, iter.S, g.NumRecords)
		p = CliqueRank(rg, opts)
	}
	bitsEqual(t, "S", iter.S, res.S)
	bitsEqual(t, "P", p, res.P)
}
