package core

import (
	"math"
	"testing"

	"repro/internal/blocking"
	"repro/internal/matrix"
)

// cliqueFixture builds a record graph with two internally well-connected
// cliques {0,1,2} and {3,4,5} joined by one weak bridge (2,3). Weights: 1.0
// inside cliques, bridge weight w.
func cliqueFixture(t *testing.T, bridge float64) (*blocking.Graph, *RecordGraph) {
	t.Helper()
	pairs := [][2]int32{
		{0, 1}, {0, 2}, {1, 2},
		{3, 4}, {3, 5}, {4, 5},
		{2, 3},
	}
	g := &blocking.Graph{
		NumRecords: 6,
		Index:      map[uint64]int32{},
	}
	s := make([]float64, len(pairs))
	for k, ij := range pairs {
		g.Pairs = append(g.Pairs, blocking.Pair{I: ij[0], J: ij[1]})
		g.Index[blocking.Key(ij[0], ij[1])] = int32(k)
		s[k] = 1
	}
	s[len(s)-1] = bridge
	return g, BuildRecordGraph(g, s, 6)
}

func TestBuildRecordGraphStructure(t *testing.T) {
	g, rg := cliqueFixture(t, 0.2)
	if rg.NumNodes() != 6 || rg.NumEdges() != 7 {
		t.Fatalf("graph %d nodes %d edges, want 6/7", rg.NumNodes(), rg.NumEdges())
	}
	for pid := range g.Pairs {
		slot := rg.PairSlot[pid]
		if slot < 0 {
			t.Fatalf("pair %d lost its edge", pid)
		}
	}
	// Symmetric weights.
	if rg.S.At(2, 3) != rg.S.At(3, 2) || rg.S.At(2, 3) != 0.2 {
		t.Errorf("bridge weight %g/%g, want 0.2 both ways", rg.S.At(2, 3), rg.S.At(3, 2))
	}
}

func TestBuildRecordGraphDropsZeroPairs(t *testing.T) {
	g := &blocking.Graph{
		NumRecords: 3,
		Pairs:      []blocking.Pair{{I: 0, J: 1}, {I: 1, J: 2}},
		Index: map[uint64]int32{
			blocking.Key(0, 1): 0,
			blocking.Key(1, 2): 1,
		},
	}
	rg := BuildRecordGraph(g, []float64{0.5, 0}, 3)
	if rg.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1 (zero-similarity pair dropped)", rg.NumEdges())
	}
	if rg.PairSlot[1] != -1 {
		t.Error("dropped pair must have slot -1")
	}
}

func TestCliqueRankSeparatesCliques(t *testing.T) {
	g, rg := cliqueFixture(t, 0.2)
	opts := DefaultOptions()
	p := CliqueRank(rg, opts)
	within, _ := g.PairID(0, 1)
	cross, _ := g.PairID(2, 3)
	if p[within] < 0.9 {
		t.Errorf("within-clique probability %g, want >= 0.9", p[within])
	}
	if p[cross] > 0.1 {
		t.Errorf("cross-clique probability %g, want <= 0.1", p[cross])
	}
	for pid, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("p[%d] = %g outside [0,1]", pid, v)
		}
	}
}

func TestCliqueRankLowAlphaLeaksAcrossBridge(t *testing.T) {
	// Ablation 1: with α = 1 (linear transition), the weak bridge is taken
	// often enough that the cross probability rises substantially.
	g, rg := cliqueFixture(t, 0.5)
	sharp := DefaultOptions()
	soft := DefaultOptions()
	soft.Alpha = 1
	pSharp := CliqueRank(rg, sharp)
	pSoft := CliqueRank(rg, soft)
	cross, _ := g.PairID(2, 3)
	if pSoft[cross] <= pSharp[cross] {
		t.Errorf("linear walk must leak more across the bridge: α=1 gives %g, α=20 gives %g",
			pSoft[cross], pSharp[cross])
	}
}

// TestCliqueRankMatchesDenseReference validates the masked-pattern chain
// against a direct dense implementation of the §VI-C recurrence
// Mᵏ = M_t × (Mᵏ⁻¹ ⊙ M_n) with M¹ = M_t (bonus disabled so both sides use
// the same first-step matrix).
func TestCliqueRankMatchesDenseReference(t *testing.T) {
	g, rg := cliqueFixture(t, 0.3)
	opts := DefaultOptions()
	opts.DisableBonus = true
	opts.Steps = 6
	got := CliqueRank(rg, opts)

	// Dense reference.
	n := rg.Pattern.N
	mt := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		nbrs, vals := rg.S.RowSlice(i)
		smax := 0.0
		for _, v := range vals {
			if v > smax {
				smax = v
			}
		}
		var sum float64
		w := make([]float64, len(nbrs))
		for k, v := range vals {
			w[k] = math.Pow(v/smax, opts.Alpha)
			sum += w[k]
		}
		for k, j := range nbrs {
			mt.Set(i, int(j), w[k]/sum)
		}
	}
	mask := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		for _, j := range rg.Pattern.Neighbors(i) {
			mask.Set(i, int(j), 1)
		}
	}
	mk := mt.Clone()
	acc := mk.Clone()
	for step := 2; step <= opts.Steps; step++ {
		mk = mt.Mul(mk.Hadamard(mask))
		acc = acc.Add(mk)
	}
	clamp := func(v float64) float64 {
		if v > 1 {
			return 1
		}
		return v
	}
	for pid, pair := range g.Pairs {
		want := (clamp(acc.At(int(pair.I), int(pair.J))) + clamp(acc.At(int(pair.J), int(pair.I)))) / 2
		if math.Abs(got[pid]-want) > 1e-9 {
			t.Fatalf("pair %d: CliqueRank %g, dense reference %g", pid, got[pid], want)
		}
	}
}

func TestCliqueRankBonusHelpsBigClique(t *testing.T) {
	// Ablation 2: in a large clique the per-edge transition probability is
	// ~1/(k-1), so without the target bonus the S-step reaching probability
	// of a member pair is visibly lower.
	k := 40
	var pairs []blocking.Pair
	idx := map[uint64]int32{}
	var s []float64
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			idx[blocking.Key(int32(i), int32(j))] = int32(len(pairs))
			pairs = append(pairs, blocking.Pair{I: int32(i), J: int32(j)})
			s = append(s, 1)
		}
	}
	g := &blocking.Graph{NumRecords: k, Pairs: pairs, Index: idx}
	rg := BuildRecordGraph(g, s, k)

	with := DefaultOptions()
	without := DefaultOptions()
	without.DisableBonus = true
	pWith := CliqueRank(rg, with)
	pWithout := CliqueRank(rg, without)
	var meanWith, meanWithout float64
	for pid := range pairs {
		meanWith += pWith[pid]
		meanWithout += pWithout[pid]
	}
	meanWith /= float64(len(pairs))
	meanWithout /= float64(len(pairs))
	if meanWith <= meanWithout {
		t.Errorf("bonus must raise in-clique probability: with %g, without %g", meanWith, meanWithout)
	}
}

func TestCliqueRankDeterministic(t *testing.T) {
	_, rg := cliqueFixture(t, 0.2)
	a := CliqueRank(rg, DefaultOptions())
	b := CliqueRank(rg, DefaultOptions())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same options must give identical probabilities")
		}
	}
}

func TestCliqueRankUnmaskedAblation(t *testing.T) {
	g, rg := cliqueFixture(t, 0.4)
	opts := DefaultOptions()
	opts.DisableMask = true
	p := CliqueRank(rg, opts)
	for pid, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("unmasked p[%d] = %g outside [0,1]", pid, v)
		}
	}
	// Without the mask the walk may wander outside the clique and return,
	// so the cross-clique probability cannot be lower than the masked one.
	masked := CliqueRank(rg, DefaultOptions())
	cross, _ := g.PairID(2, 3)
	if p[cross] < masked[cross]-1e-9 {
		t.Errorf("unmasked cross probability %g below masked %g", p[cross], masked[cross])
	}
}
