package core

import (
	"testing"

	"repro/internal/blocking"
)

func TestRSSSeparatesCliques(t *testing.T) {
	g, rg := cliqueFixture(t, 0.2)
	opts := DefaultOptions()
	opts.RSSWalks = 200
	p := RSS(rg, opts)
	within, _ := g.PairID(0, 1)
	cross, _ := g.PairID(2, 3)
	if p[within] < 0.9 {
		t.Errorf("within-clique RSS probability %g, want >= 0.9", p[within])
	}
	if p[cross] > 0.15 {
		t.Errorf("cross-clique RSS probability %g, want <= 0.15", p[cross])
	}
	for pid, v := range p {
		if v < 0 || v > 1 {
			t.Fatalf("p[%d] = %g outside [0,1]", pid, v)
		}
	}
}

func TestRSSAgreesWithCliqueRankQualitatively(t *testing.T) {
	// RSS and CliqueRank are different estimators of the same reachability
	// quantity; on a clearly separated graph both must put matching pairs
	// near 1 and the bridge near 0.
	g, rg := cliqueFixture(t, 0.1)
	opts := DefaultOptions()
	opts.RSSWalks = 400
	pRSS := RSS(rg, opts)
	pCR := CliqueRank(rg, opts)
	cross, _ := g.PairID(2, 3)
	for pid := range g.Pairs {
		if pid == int(cross) {
			continue
		}
		if pRSS[pid] < 0.85 || pCR[pid] < 0.85 {
			t.Errorf("pair %d: RSS %g CliqueRank %g, both should be near 1", pid, pRSS[pid], pCR[pid])
		}
	}
	if pRSS[cross] > 0.2 || pCR[cross] > 0.2 {
		t.Errorf("bridge: RSS %g CliqueRank %g, both should be near 0", pRSS[cross], pCR[cross])
	}
}

func TestRSSDeterministicAndScheduleIndependent(t *testing.T) {
	_, rg := cliqueFixture(t, 0.2)
	opts := DefaultOptions()
	opts.RSSWalks = 50
	a := RSS(rg, opts)
	b := RSS(rg, opts)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must reproduce identical RSS estimates")
		}
	}
	// With α = 20 every estimate saturates at exactly 0 or 1, so seed
	// sensitivity is only observable with a soft exponent.
	opts.Alpha = 1.5
	opts.Seed = 1
	c := RSS(rg, opts)
	opts.Seed = 2
	d := RSS(rg, opts)
	diff := false
	for i := range c {
		if c[i] != d[i] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds should perturb non-saturated estimates")
	}
}

func TestRSSOnEdgesSubset(t *testing.T) {
	_, rg := cliqueFixture(t, 0.2)
	opts := DefaultOptions()
	opts.RSSWalks = 100
	full := RSS(rg, opts)
	subset := RSSOnEdges(rg, opts, []int{0, 2})
	for pos, pid := range rg.Edges {
		switch pos {
		case 0, 2:
			if subset[pid] != full[pid] {
				t.Errorf("edge %d: subset %g != full %g (same per-edge seed)", pos, subset[pid], full[pid])
			}
		default:
			if subset[pid] != 0 {
				t.Errorf("unsampled edge %d must stay 0, got %g", pos, subset[pid])
			}
		}
	}
}

func TestRSSSingleEdgeGraph(t *testing.T) {
	// Corner case from §VI-B: a node with a single neighbor always reaches
	// it, so p must be 1 for an isolated matched pair.
	g := &blocking.Graph{
		NumRecords: 2,
		Pairs:      []blocking.Pair{{I: 0, J: 1}},
		Index:      map[uint64]int32{blocking.Key(0, 1): 0},
	}
	rg := BuildRecordGraph(g, []float64{0.7}, 2)
	opts := DefaultOptions()
	opts.RSSWalks = 20
	p := RSS(rg, opts)
	id, _ := g.PairID(0, 1)
	if p[id] != 1 {
		t.Errorf("single-edge pair probability = %g, want 1", p[id])
	}
	pc := CliqueRank(rg, opts)
	if pc[id] < 0.999 {
		t.Errorf("CliqueRank single-edge probability = %g, want ~1", pc[id])
	}
}
