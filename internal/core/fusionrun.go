package core

import (
	"math/rand"
	"time"

	"repro/internal/blocking"
	"repro/internal/clock"
)

// Scratch recycles the fusion loop's record-graph and rank-kernel arena
// across sequential fusion runs on the same goroutine, so a caller that
// resolves many jobs (or many competitor configurations of the same
// dataset) pays the buffer allocations once. The zero value is ready to
// use. A Scratch must not be shared between concurrent runs: the arena's
// free lists are unsynchronized by design (get/put happen on the fusion
// goroutine only).
//
// Sharing is safe across sequential runs because the buffers a finished
// run retains — the final round's RecordGraph — are taken out of the free
// lists when handed out and only re-enter them through an explicit
// release, which the fusion loop performs solely on superseded per-round
// graphs.
type Scratch struct {
	ar arena
}

// FusionRun is the resumable form of RunFusion: the same reinforcement
// loop decomposed into its three per-round phases (ITER, record-graph
// construction, CliqueRank/RSS) so instrumented callers — the staged
// execution engine — can time and size each phase without duplicating the
// orchestration. The phase sequence and every cancellation poll sit
// exactly where RunFusion's monolithic loop had them, so driving
//
//	f := NewFusionRun(g, numRecords, opts)
//	for f.Next() {
//	    f.StepITER(); f.StepGraph(); f.StepRank()
//	}
//	res := f.Finish()
//
// is bit-identical to RunFusion (which is implemented this way).
type FusionRun struct {
	g          *blocking.Graph
	numRecords int
	opts       Options
	now        clock.Func
	start      time.Time
	rng        *rand.Rand
	p          []float64
	res        *FusionResult
	sc         *iterScratch
	ar         *arena
	shards     *shardSet
	rounds     int
	round      int
}

// NewFusionRun prepares a fusion run: p ← 1 for every pair, the seeded
// RNG, and the working scratch (taken from opts.Scratch when set). A zero
// opts.Seed is normalized to 1 and FusionIterations below 1 to a single
// round, as in RunFusion.
func NewFusionRun(g *blocking.Graph, numRecords int, opts Options) *FusionRun {
	now := clock.OrSystem(opts.Clock)
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	p := make([]float64, g.NumPairs())
	for k := range p {
		p[k] = 1
	}
	rounds := opts.FusionIterations
	if rounds < 1 {
		rounds = 1
	}
	ar := &arena{}
	if opts.Scratch != nil {
		ar = &opts.Scratch.ar
	}
	return &FusionRun{
		g:          g,
		numRecords: numRecords,
		opts:       opts,
		now:        now,
		start:      now(),
		rng:        rand.New(rand.NewSource(opts.Seed)),
		p:          p,
		res:        &FusionResult{Converged: true},
		sc:         &iterScratch{},
		ar:         ar,
		rounds:     rounds,
	}
}

// Next advances to the next fusion round, reporting false once all rounds
// have run. Each round must execute StepITER, StepGraph and StepRank in
// order before calling Next again.
func (f *FusionRun) Next() bool {
	if f.round >= f.rounds {
		return false
	}
	f.round++
	return true
}

// StepITER runs the round's inner ITER loop and folds its output into the
// accumulating result (trace, convergence, sanitized X/S). It returns the
// number of inner iterations executed and the checkpoint's error when the
// run was canceled.
func (f *FusionRun) StepITER() (iterations int, err error) {
	if err := f.opts.Check.Err(); err != nil {
		return 0, err
	}
	iterRes := runITER(f.g, f.p, f.opts, f.rng, f.sc)
	if err := f.opts.Check.Err(); err != nil {
		return iterRes.Iterations, err
	}
	res := f.res
	res.X, res.S = iterRes.X, iterRes.S
	res.ITERTrace = append(res.ITERTrace, iterRes.Updates)
	res.ITERIterations = append(res.ITERIterations, iterRes.Iterations)
	res.Converged = res.Converged && iterRes.Converged
	res.NumericRepairs += sanitizeNonNegative(res.X)
	res.NumericRepairs += sanitizeNonNegative(res.S)
	return iterRes.Iterations, nil
}

// StepGraph rebuilds the record graph from the round's similarities,
// releasing the previous round's graph back into the arena. It returns
// the new graph's node and edge counts.
func (f *FusionRun) StepGraph() (nodes, edges int) {
	if f.res.Graph != nil {
		f.res.Graph.release()
	}
	f.res.Graph = buildRecordGraph(f.g, f.res.S, f.numRecords, f.ar)
	f.res.Nodes, f.res.Edges = f.res.Graph.NumNodes(), f.res.Graph.NumEdges()
	return f.res.Nodes, f.res.Edges
}

// StepRank runs CliqueRank (or RSS) on the round's record graph, writing
// the matching probabilities in place, sanitizing them, and invoking the
// Progress hook. It returns the checkpoint's error when the run was
// canceled.
func (f *FusionRun) StepRank() error {
	if f.opts.UseRSS {
		RSSInto(f.res.Graph, f.opts, f.p)
	} else {
		CliqueRankInto(f.res.Graph, f.opts, f.p)
	}
	if err := f.opts.Check.Err(); err != nil {
		return err
	}
	f.res.NumericRepairs += sanitizeProbabilities(f.p)
	if f.opts.Progress != nil {
		f.opts.Progress(f.round, f.res.S, f.p, f.now().Sub(f.start))
	}
	return nil
}

// Finish seals and returns the result: final probabilities, the η
// thresholding, and the total elapsed time.
func (f *FusionRun) Finish() *FusionResult {
	res := f.res
	res.P = f.p
	res.Matches = make([]bool, len(f.p))
	for k, v := range f.p {
		res.Matches[k] = v >= f.opts.Eta
	}
	res.Elapsed = f.now().Sub(f.start)
	return res
}
