package core

import (
	"math/rand"
	"testing"

	"repro/internal/blocking"
	"repro/internal/textproc"
)

// benchGraph builds a moderately sized candidate structure from synthetic
// texts: 60 duplicate pairs over shared code terms plus noise records.
func benchGraph(b *testing.B) (*textproc.Corpus, *blocking.Graph) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta"}
	var texts []string
	for e := 0; e < 60; e++ {
		code := "cd" + string(rune('a'+e%26)) + string(rune('0'+e%10)) + string(rune('a'+(e/26)%26))
		common := words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
		texts = append(texts, code+" "+common+" red", code+" "+common+" blue")
	}
	for s := 0; s < 80; s++ {
		texts = append(texts,
			words[rng.Intn(len(words))]+" "+words[rng.Intn(len(words))]+" solo"+string(rune('a'+s%26)))
	}
	c := textproc.BuildCorpus(texts, textproc.CorpusOptions{Tokenize: textproc.DefaultTokenizeOptions()})
	g, err := blocking.Build(c, nil, blocking.Options{MinSharedTerms: 2})
	if err != nil {
		b.Fatal(err)
	}
	if g.NumPairs() == 0 {
		b.Fatal("bench graph has no candidates")
	}
	return c, g
}

func BenchmarkRunITER(b *testing.B) {
	_, g := benchGraph(b)
	p := make([]float64, g.NumPairs())
	for i := range p {
		p[i] = 1
	}
	opts := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RunITER(g, p, opts, rand.New(rand.NewSource(1)))
	}
}

func BenchmarkCliqueRankSteps(b *testing.B) {
	_, g := benchGraph(b)
	opts := DefaultOptions()
	iter := RunITER(g, onesP(g), opts, rand.New(rand.NewSource(1)))
	rg := BuildRecordGraph(g, iter.S, g.NumRecords)
	for _, steps := range []int{5, 20, 40} {
		o := opts
		o.Steps = steps
		b.Run(map[int]string{5: "S=5", 20: "S=20", 40: "S=40"}[steps], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				CliqueRank(rg, o)
			}
		})
	}
}

func BenchmarkRSSWalks(b *testing.B) {
	_, g := benchGraph(b)
	opts := DefaultOptions()
	iter := RunITER(g, onesP(g), opts, rand.New(rand.NewSource(1)))
	rg := BuildRecordGraph(g, iter.S, g.NumRecords)
	for _, m := range []int{10, 50} {
		o := opts
		o.RSSWalks = m
		b.Run(map[int]string{10: "M=10", 50: "M=50"}[m], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				RSS(rg, o)
			}
		})
	}
}

func BenchmarkBuildRecordGraph(b *testing.B) {
	_, g := benchGraph(b)
	iter := RunITER(g, onesP(g), DefaultOptions(), rand.New(rand.NewSource(1)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildRecordGraph(g, iter.S, g.NumRecords)
	}
}

func BenchmarkRunFusion(b *testing.B) {
	_, g := benchGraph(b)
	opts := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunFusion(g, g.NumRecords, opts); err != nil {
			b.Fatal(err)
		}
	}
}
