package experiments

import (
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

// ScalingPoint is one measurement of the complexity study: graph size and
// per-call CliqueRank / RSS-extrapolated cost at one replica scale.
type ScalingPoint struct {
	Scale int // percent of the published dataset size
	Nodes int
	Edges int
	// SumDegSq is Σ_i deg(i)², the masked-product work bound per CliqueRank
	// step (§VI-C complexity analysis; the dense formulation is O(n³)).
	SumDegSq int64
	// CliqueRank is the measured wall-clock of one CliqueRank call.
	CliqueRank time.Duration
	// RSSPerEdge is the measured per-edge RSS sampling cost.
	RSSPerEdge time.Duration
}

// RunScaling sweeps the Paper replica (the densest graph) across scales and
// measures how CliqueRank's cost tracks the Σ deg² bound rather than n³ —
// the quantitative backing for replacing the paper's Eigen-based dense
// chain with the masked sparse product.
func RunScaling(cfg Config, scales []int) ([]ScalingPoint, error) {
	if len(scales) == 0 {
		scales = []int{20, 40, 60, 80, 100}
	}
	var out []ScalingPoint
	for _, pct := range scales {
		sub := cfg
		sub.Scale = cfg.Scale * float64(pct) / 100
		b, err := sub.Bench(Paper)
		if err != nil {
			return nil, err
		}
		// One fusion round = ITER on the all-ones prior, one record graph,
		// one CliqueRank call — the exact per-call cost the study plots.
		fres, trace, err := b.Fusion(func(o *core.Options) { o.FusionIterations = 1 })
		if err != nil {
			return nil, err
		}
		opts := b.CoreOptions()
		rg := fres.Graph

		var sumDegSq int64
		for i := 0; i < rg.Pattern.N; i++ {
			d := int64(rg.Pattern.Degree(i))
			sumDegSq += d * d
		}

		var crTime time.Duration
		if st := trace.Find(engine.StageCliqueRank); st != nil {
			crTime = st.Wall
		}

		sample := rg.NumEdges()
		if sample > rssSampleEdges {
			sample = rssSampleEdges
		}
		var perEdge time.Duration
		if sample > 0 {
			positions := rand.New(rand.NewSource(opts.Seed)).Perm(rg.NumEdges())[:sample]
			start := time.Now()
			core.RSSOnEdges(rg, opts, positions)
			perEdge = time.Since(start) / time.Duration(sample)
		}
		out = append(out, ScalingPoint{
			Scale:      pct,
			Nodes:      rg.NumNodes(),
			Edges:      rg.NumEdges(),
			SumDegSq:   sumDegSq,
			CliqueRank: crTime,
			RSSPerEdge: perEdge,
		})
	}
	return out, nil
}

// RenderScaling formats the study.
func RenderScaling(points []ScalingPoint) string {
	header := []string{"Scale", "Nodes", "Edges", "Σ deg²", "CliqueRank", "RSS/edge"}
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{
			fmtInt(p.Scale) + "%",
			fmtInt(p.Nodes),
			fmtInt(p.Edges),
			fmtInt(int(p.SumDegSq)),
			dur(p.CliqueRank),
			p.RSSPerEdge.String(),
		})
	}
	return "Scaling — CliqueRank cost vs masked-product work bound (Paper replica)\n" +
		renderTable(header, rows)
}
