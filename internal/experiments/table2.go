package experiments

import (
	"math"

	"repro/internal/eval"
)

// Table2Row is one competitor's F1 across the three datasets.
type Table2Row struct {
	Group      string
	Method     string
	Backend    bool // implemented and measured by this reproduction
	Restaurant Cell
	Product    Cell
	Paper      Cell
}

// Table2Result reproduces Table II: F1-scores of all competitors.
type Table2Result struct {
	Rows []Table2Row
}

// RunTable2 measures every implemented method on the three replicas and
// merges in the published values, including the machine-learning and
// crowd-sourcing rows that the original paper itself copied from the cited
// publications (printed as reported-only).
func RunTable2(cfg Config) (*Table2Result, error) {
	measured := map[string][3]float64{}
	for di, name := range AllDatasets {
		p, err := cfg.Pipeline(name)
		if err != nil {
			return nil, err
		}
		record := func(method string, f1 float64) {
			row := measured[method]
			row[di] = f1
			measured[method] = row
		}
		if _, m, ok := p.EvaluateScores(p.Jaccard()); ok {
			record("Jaccard", m.F1)
		}
		if _, m, ok := p.EvaluateScores(p.TFIDF()); ok {
			record("TF-IDF", m.F1)
		}
		sb := p.SimRank()
		if _, m, ok := p.EvaluateScores(sb); ok {
			record("SimRank", m.F1)
		}
		su, _ := p.PageRank()
		if _, m, ok := p.EvaluateScores(su); ok {
			record("PageRank", m.F1)
		}
		if _, m, ok := p.EvaluateScores(p.Hybrid(0.5)); ok {
			record("Hybrid", m.F1)
		}
		out := p.Fusion()
		if m, ok := p.EvaluateMatches(out.Matched); ok {
			record("ITER+CliqueRank", m.F1)
		}
	}

	res := &Table2Result{}
	for _, ref := range eval.TableII {
		row := Table2Row{Group: ref.Group, Method: ref.Method, Backend: ref.Implemented}
		pub := [3]float64{ref.Restaurant, ref.Product, ref.Paper1}
		got, ok := measured[ref.Method]
		for di := range AllDatasets {
			cell := Cell{Measured: math.NaN(), Published: pub[di]}
			if ok && ref.Implemented {
				cell.Measured = got[di]
			}
			switch di {
			case 0:
				row.Restaurant = cell
			case 1:
				row.Product = cell
			case 2:
				row.Paper = cell
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the table for terminal output. Measured values come first;
// the published value follows in parentheses.
func (t *Table2Result) Render() string {
	header := []string{"Group", "Method", "Restaurant", "Product", "Paper"}
	var rows [][]string
	cell := func(c Cell, implemented bool) string {
		if !implemented {
			if math.IsNaN(c.Published) {
				return "-"
			}
			return f3(c.Published) + " (reported)"
		}
		return f3(c.Measured) + " (" + f3(c.Published) + ")"
	}
	for _, r := range t.Rows {
		rows = append(rows, []string{
			r.Group, r.Method,
			cell(r.Restaurant, r.Backend),
			cell(r.Product, r.Backend),
			cell(r.Paper, r.Backend),
		})
	}
	return "Table II — F1 scores, measured (published)\n" + renderTable(header, rows)
}

// Row returns the row for a method name, or nil.
func (t *Table2Result) Row(method string) *Table2Row {
	for i := range t.Rows {
		if t.Rows[i].Method == method {
			return &t.Rows[i]
		}
	}
	return nil
}
