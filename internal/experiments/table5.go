package experiments

import (
	"time"

	"repro/internal/eval"

	"repro"
)

// Table5Iteration is one fusion round's F1 and cumulative time per dataset.
type Table5Iteration struct {
	Iteration int
	F1        [3]Cell
	Time      [3]time.Duration
}

// Table5Result reproduces Table V: the effect of reinforcement across the
// fusion iterations.
type Table5Result struct {
	Iterations []Table5Iteration
}

// RunTable5 runs the full fusion loop once per dataset, scoring the
// intermediate matching probabilities via the Progress hook.
func RunTable5(cfg Config) (*Table5Result, error) {
	iters := cfg.options().FusionIterations
	res := &Table5Result{Iterations: make([]Table5Iteration, iters)}
	for i := range res.Iterations {
		res.Iterations[i].Iteration = i + 1
	}
	for di, name := range AllDatasets {
		d, err := cfg.Dataset(name)
		if err != nil {
			return nil, err
		}
		opts := cfg.options()
		var pipe *er.Pipeline
		opts.Progress = func(it int, s, p []float64, elapsed time.Duration) {
			matched := make([]bool, len(p))
			for k, v := range p {
				matched[k] = v >= opts.Eta
			}
			if m, ok := pipe.EvaluateMatches(matched); ok {
				row := &res.Iterations[it-1]
				published := eval.TableV[it-1][di]
				row.F1[di] = Cell{Measured: m.F1, Published: published}
				row.Time[di] = elapsed
			}
		}
		pipe = er.NewPipeline(d, opts)
		pipe.Fusion()
	}
	return res, nil
}

// Render formats the table.
func (t *Table5Result) Render() string {
	header := []string{"Iteration",
		"Restaurant F1", "Time",
		"Product F1", "Time",
		"Paper F1", "Time",
	}
	var rows [][]string
	for _, it := range t.Iterations {
		row := []string{fmtInt(it.Iteration)}
		for di := 0; di < 3; di++ {
			row = append(row, f3(it.F1[di].Measured)+" ("+f3(it.F1[di].Published)+")", dur(it.Time[di]))
		}
		rows = append(rows, row)
	}
	return "Table V — effect of reinforcement, F1 measured (published)\n" + renderTable(header, rows)
}
