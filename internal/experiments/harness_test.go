package experiments

import (
	"testing"

	"repro"
	"repro/internal/engine"
)

// TestBenchSnapshotKeyMatchesPipeline pins the harness's duplicated
// option mappings (benchCorpusOptions, benchBlockingOptions) to the root
// package's unexported conversions: if either side drifts, the snapshot
// keys diverge and engine-level caches stop being shared with
// pipeline-level ones.
func TestBenchSnapshotKeyMatchesPipeline(t *testing.T) {
	cfg := Config{Seed: 1, Scale: 0.1}
	for _, name := range AllDatasets {
		b, err := cfg.Bench(name)
		if err != nil {
			t.Fatalf("Bench(%s): %v", name, err)
		}
		p, err := cfg.Pipeline(name)
		if err != nil {
			t.Fatalf("Pipeline(%s): %v", name, err)
		}
		if b.SnapshotKey() != p.SnapshotKey() {
			t.Errorf("%s: harness snapshot key %s != pipeline key %s; the bench* option mappings drifted from er.Options'",
				name, b.SnapshotKey(), p.SnapshotKey())
		}
	}
}

// TestConfigSharesCaches exercises both reuse paths of a configured
// experiment run: the pipeline-level snapshot cache and the engine-level
// harness cache with fusion term weights.
func TestConfigSharesCaches(t *testing.T) {
	cfg := Config{
		Seed:      1,
		Scale:     0.1,
		Snapshots: er.NewSnapshotCache(2),
		Cache:     engine.NewCache(2),
	}

	p1, err := cfg.Pipeline(Restaurant)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := cfg.Pipeline(Restaurant)
	if err != nil {
		t.Fatal(err)
	}
	if p1.SnapshotKey() != p2.SnapshotKey() {
		t.Fatalf("same config produced different snapshot keys")
	}
	for _, st := range p2.Trace() {
		if !st.Cached {
			t.Errorf("second pipeline recomputed stage %s; want a snapshot-cache hit", st.Stage)
		}
	}
	if stats := cfg.Snapshots.Stats(); stats.Hits < 1 {
		t.Errorf("snapshot cache stats = %+v, want at least one hit", stats)
	}

	b1, err := cfg.Bench(Restaurant)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := b1.FusionWeights()
	if err != nil {
		t.Fatal(err)
	}
	before := cfg.Cache.Stats().Hits
	b2, err := cfg.Bench(Restaurant)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := b2.FusionWeights()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Cache.Stats().Hits <= before {
		t.Errorf("second harness did not hit the engine cache")
	}
	if len(w1) != len(w2) {
		t.Fatalf("weights length changed across cache reuse: %d vs %d", len(w1), len(w2))
	}
	for i := range w1 {
		if w1[i] != w2[i] {
			t.Fatalf("cached weights diverge at term %d: %v vs %v", i, w1[i], w2[i])
		}
	}
}
