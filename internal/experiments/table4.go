package experiments

import "repro/internal/eval"

// Table4Result reproduces Table IV: Spearman's rank correlation between
// learned term weights and the score(t) oracle, for PageRank salience and
// ITER weights.
type Table4Result struct {
	PageRank [3]Cell
	ITER     [3]Cell
}

// RunTable4 measures both weighting schemes on the three replicas. The
// fusion term weights go through the harness cache, so a Figure 4 run on
// the same Config reuses them instead of re-running the whole framework.
func RunTable4(cfg Config) (*Table4Result, error) {
	res := &Table4Result{}
	for di, name := range AllDatasets {
		b, err := cfg.Bench(name)
		if err != nil {
			return nil, err
		}
		if rho, ok := b.TermWeightQuality(b.PageRankSalience()); ok {
			res.PageRank[di] = Cell{Measured: rho, Published: eval.TableIV["PageRank"][di]}
		}
		weights, err := b.FusionWeights()
		if err != nil {
			return nil, err
		}
		if rho, ok := b.TermWeightQuality(weights); ok {
			res.ITER[di] = Cell{Measured: rho, Published: eval.TableIV["ITER"][di]}
		}
	}
	return res, nil
}

// Render formats the table.
func (t *Table4Result) Render() string {
	header := []string{"Method", "Restaurant", "Product", "Paper"}
	cell := func(c Cell) string { return f3(c.Measured) + " (" + f3(c.Published) + ")" }
	rows := [][]string{
		{"PageRank", cell(t.PageRank[0]), cell(t.PageRank[1]), cell(t.PageRank[2])},
		{"ITER", cell(t.ITER[0]), cell(t.ITER[1]), cell(t.ITER[2])},
	}
	return "Table IV — Spearman rank correlation, measured (published)\n" + renderTable(header, rows)
}
