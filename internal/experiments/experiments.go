// Package experiments regenerates every table and figure of the paper's
// evaluation section (§VII) on the three benchmark replicas. It is the
// engine behind cmd/erbench and the root-level benchmark suite.
//
// All experiments run with the universal parameter setting of §VII-C via
// er.DefaultOptions (α = 20, S = 20, η = 0.98, 5 fusion iterations) so the
// harness exercises exactly the configuration the paper reports.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro"
	"repro/internal/engine"
)

// DatasetName identifies one of the three benchmark replicas.
type DatasetName string

// The benchmark replicas, in the paper's column order.
const (
	Restaurant DatasetName = "Restaurant"
	Product    DatasetName = "Product"
	Paper      DatasetName = "Paper"
)

// AllDatasets lists the replicas in Table II column order.
var AllDatasets = []DatasetName{Restaurant, Product, Paper}

// Config parameterizes an experiment run.
type Config struct {
	// Seed drives replica generation and the pipeline.
	Seed int64
	// Scale multiplies the published dataset sizes (1.0 = paper size).
	Scale float64
	// Options are the pipeline parameters; zero value means
	// er.DefaultOptions.
	Options *er.Options
	// Workers bounds the kernel goroutines per pipeline run (0 =
	// GOMAXPROCS). Ignored when Options is set — explicit Options carry
	// their own Workers field.
	Workers int
	// Snapshots, when non-nil, is injected into every pipeline the config
	// builds (unless explicit Options already carry a cache), so the
	// pipeline-based experiments share tokenization and blocking per
	// replica. Nil disables reuse. DefaultConfig sets one.
	Snapshots *er.SnapshotCache
	// Cache, when non-nil, backs the engine-level Bench harness: prepared
	// snapshots and fusion term weights are shared across experiments on
	// the same replica. Nil disables reuse. DefaultConfig sets one.
	Cache *engine.Cache
}

// DefaultConfig runs at paper scale with the universal parameters and
// shared snapshot caches, so the experiment suite pays for tokenization
// and blocking once per replica.
func DefaultConfig() Config {
	return Config{
		Seed:      1,
		Scale:     1.0,
		Snapshots: er.NewSnapshotCache(len(AllDatasets)),
		Cache:     engine.NewCache(2 * len(AllDatasets)),
	}
}

func (c Config) options() er.Options {
	if c.Options != nil {
		o := *c.Options
		if o.Snapshots == nil {
			o.Snapshots = c.Snapshots
		}
		return o
	}
	o := er.DefaultOptions()
	o.Seed = c.Seed
	o.Workers = c.Workers
	o.Snapshots = c.Snapshots
	return o
}

// Dataset generates the named replica. Unknown names report an error
// wrapping er.ErrInvalidOptions, so callers can branch with errors.Is.
func (c Config) Dataset(name DatasetName) (*er.Dataset, error) {
	cfg := er.ReplicaConfig{Seed: c.Seed, Scale: c.Scale}
	switch name {
	case Restaurant:
		return er.RestaurantReplica(cfg), nil
	case Product:
		return er.ProductReplica(cfg), nil
	case Paper:
		return er.PaperReplica(cfg), nil
	}
	return nil, fmt.Errorf("%w: experiments: unknown dataset %q", er.ErrInvalidOptions, name)
}

// Pipeline builds the standard pipeline for the named replica.
func (c Config) Pipeline(name DatasetName) (*er.Pipeline, error) {
	d, err := c.Dataset(name)
	if err != nil {
		return nil, err
	}
	return er.NewPipeline(d, c.options()), nil
}

// Cell is one measured value with the corresponding published value (NaN
// when the original paper did not report it).
type Cell struct {
	Measured, Published float64
}

// renderTable formats rows of labeled columns into an aligned text table.
func renderTable(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(width) && len(cell) > width[i] {
				width[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			for pad := len(cell); pad < width[i]; pad++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	return sb.String()
}

func f3(v float64) string {
	if v != v { // NaN
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

func dur(d time.Duration) string {
	switch {
	case d >= time.Minute:
		return fmt.Sprintf("%.1fmin", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.1fs", d.Seconds())
	default:
		return fmt.Sprintf("%dms", d.Milliseconds())
	}
}

func f1x(v float64) string {
	if v != v {
		return "-"
	}
	return fmt.Sprintf("%.1fx", v)
}

func fmtInt(v int) string { return fmt.Sprintf("%d", v) }
