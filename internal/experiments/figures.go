package experiments

import (
	"fmt"
	"strings"
)

// Figure4Series is the Figure 4 data for one dataset: score(t) of terms
// ordered by descending learned weight.
type Figure4Series struct {
	Dataset DatasetName
	// Scores[i] is score(t) of the term with the (i+1)-th largest x_t.
	Scores []float64
}

// Figure4Result reproduces Figure 4 (a-c).
type Figure4Result struct {
	Series []Figure4Series
}

// RunFigure4 extracts the ranked score(t) series per dataset, reusing the
// fusion term weights a Table IV run on the same Config already cached.
func RunFigure4(cfg Config) (*Figure4Result, error) {
	res := &Figure4Result{}
	for _, name := range AllDatasets {
		b, err := cfg.Bench(name)
		if err != nil {
			return nil, err
		}
		weights, err := b.FusionWeights()
		if err != nil {
			return nil, err
		}
		series, ok := b.TermScoreSeries(weights)
		if !ok {
			continue
		}
		res.Series = append(res.Series, Figure4Series{Dataset: name, Scores: series})
	}
	return res, nil
}

// FrontBackMeans summarizes a series by the mean score(t) of its first and
// last deciles — the quantitative core of the figure's visual claim
// (discriminative terms cluster at the front of the ranking).
func (s Figure4Series) FrontBackMeans() (front, back float64) {
	k := len(s.Scores) / 10
	if k == 0 {
		k = 1
	}
	for i := 0; i < k; i++ {
		front += s.Scores[i]
		back += s.Scores[len(s.Scores)-1-i]
	}
	return front / float64(k), back / float64(k)
}

// CSV serializes the series as "rank,score" lines for plotting.
func (s Figure4Series) CSV() string {
	var sb strings.Builder
	sb.WriteString("rank,score\n")
	for i, v := range s.Scores {
		fmt.Fprintf(&sb, "%d,%.6f\n", i+1, v)
	}
	return sb.String()
}

// Render prints the decile summary for each dataset.
func (f *Figure4Result) Render() string {
	header := []string{"Dataset", "Terms", "Mean score(t), top decile", "Mean score(t), bottom decile"}
	var rows [][]string
	for _, s := range f.Series {
		front, back := s.FrontBackMeans()
		rows = append(rows, []string{string(s.Dataset), fmtInt(len(s.Scores)), f3(front), f3(back)})
	}
	return "Figure 4 — score(t) vs rank of learned weight (decile summary;\n" +
		"full series via -csv; paper shows score≈1 clustered at the front)\n" +
		renderTable(header, rows)
}

// Figure5Series is the ITER convergence trace for one dataset: Σ|Δx_t| per
// inner iteration of the first fusion round.
type Figure5Series struct {
	Dataset DatasetName
	// Updates[i] is the total weight update in inner iteration i+1,
	// concatenated across fusion rounds as the paper plots the first 20
	// iterations of the whole run.
	Updates []float64
}

// Figure5Result reproduces Figure 5 (convergence of ITER).
type Figure5Result struct {
	Series []Figure5Series
}

// RunFigure5 collects the update traces.
func RunFigure5(cfg Config) (*Figure5Result, error) {
	res := &Figure5Result{}
	for _, name := range AllDatasets {
		p, err := cfg.Pipeline(name)
		if err != nil {
			return nil, err
		}
		out := p.Fusion()
		var updates []float64
		for _, trace := range out.ITERUpdateTrace {
			updates = append(updates, trace...)
		}
		if len(updates) > 20 {
			updates = updates[:20]
		}
		res.Series = append(res.Series, Figure5Series{Dataset: name, Updates: updates})
	}
	return res, nil
}

// CSV serializes a series as "iteration,update" lines.
func (s Figure5Series) CSV() string {
	var sb strings.Builder
	sb.WriteString("iteration,update\n")
	for i, v := range s.Updates {
		fmt.Fprintf(&sb, "%d,%.6f\n", i+1, v)
	}
	return sb.String()
}

// Render prints the traces. The paper's shape: a sharp early peak followed
// by rapid decay to (near) zero.
func (f *Figure5Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 5 — convergence of ITER (Σ weight update per iteration)\n")
	for _, s := range f.Series {
		fmt.Fprintf(&sb, "%-12s", s.Dataset)
		for _, v := range s.Updates {
			fmt.Fprintf(&sb, " %8.3f", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
