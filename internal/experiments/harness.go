package experiments

import (
	"context"
	"fmt"

	"repro"
	"repro/internal/baselines"
	"repro/internal/blocking"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/engine"
	"repro/internal/eval"
	"repro/internal/textproc"
)

// Bench is the engine-backed experiment harness: a prepared snapshot of
// one replica (tokenized corpus + candidate graph, shared through
// Config.Cache) plus stage-level access to the fusion loop. It replaces
// the deprecated er.Pipeline.Internals bridge — experiments that need to
// time ITER and CliqueRank separately, or to run ablated core options,
// go through here instead of re-orchestrating the loop by hand.
type Bench struct {
	Name  DatasetName
	snap  *engine.Snapshot
	core  core.Options
	truth map[uint64]bool
	cache *engine.Cache
}

// replica generates the named replica as an internal dataset, with the
// same zero-value defaults as er.ReplicaConfig (Seed 0 → 1, Scale ≤ 0 →
// 1).
func (c Config) replica(name DatasetName) (*dataset.Dataset, error) {
	gc := dataset.GenConfig{Seed: c.Seed, Scale: c.Scale}
	if gc.Seed == 0 {
		gc.Seed = 1
	}
	if gc.Scale <= 0 {
		gc.Scale = 1
	}
	switch name {
	case Restaurant:
		return dataset.GenRestaurant(gc), nil
	case Product:
		return dataset.GenProduct(gc), nil
	case Paper:
		return dataset.GenPaper(gc), nil
	}
	return nil, fmt.Errorf("%w: experiments: unknown dataset %q", er.ErrInvalidOptions, name)
}

// Bench prepares the engine snapshot for the named replica, serving it
// from Config.Cache when a previous Bench (or a previous call on the same
// config) already built it.
func (c Config) Bench(name DatasetName) (*Bench, error) {
	o := c.options()
	if err := o.Validate(); err != nil {
		return nil, err
	}
	ds, err := c.replica(name)
	if err != nil {
		return nil, err
	}
	run := engine.NewRun(context.Background(), engine.RunOptions{Workers: o.Workers})
	snap, err := engine.Prepare(run, engine.PrepareInputs{
		Texts:    ds.Texts(),
		Sources:  ds.Sources(),
		Corpus:   benchCorpusOptions(o),
		Blocking: benchBlockingOptions(o, ds.NumSources > 1),
		MaxPairs: o.MaxCandidatePairs,
		Cache:    c.Cache,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: prepare %s: %w", name, err)
	}
	b := &Bench{Name: name, snap: snap, core: benchCoreOptions(o), cache: c.Cache}
	if ds.HasGroundTruth() {
		b.truth = ds.TrueMatches()
	}
	return b, nil
}

// The bench* option mappings mirror er.Options' unexported conversions.
// TestBenchSnapshotKeyMatchesPipeline pins them in sync: if either side
// drifts, the snapshot keys diverge and the test fails.

func benchCorpusOptions(o er.Options) textproc.CorpusOptions {
	return textproc.CorpusOptions{
		Tokenize:   textproc.DefaultTokenizeOptions(),
		MaxDFRatio: o.MaxDFRatio,
		Stopwords:  o.Stopwords,
	}
}

func benchBlockingOptions(o er.Options, multiSource bool) blocking.Options {
	return blocking.Options{
		CrossSourceOnly: multiSource,
		MaxTermRecords:  o.MaxTermRecords,
		MinSharedTerms:  o.MinSharedTerms,
		MinJaccard:      o.MinJaccard,
	}
}

// benchCoreOptions mirrors er.Options.coreOptions but deliberately leaves
// ShardComponents off: the experiment tables (Table III, scaling) read the
// concrete FusionResult.Graph, which the sharded path never materializes.
// The scores are bit-identical either way, so the tables are unaffected.
func benchCoreOptions(o er.Options) core.Options {
	c := core.DefaultOptions()
	c.Alpha = o.Alpha
	c.Steps = o.Steps
	c.Eta = o.Eta
	c.FusionIterations = o.FusionIterations
	c.UseRSS = o.UseRSS
	c.RSSWalks = o.RSSWalks
	if o.L2Normalization {
		c.Normalization = core.NormL2
	}
	c.Seed = o.Seed
	c.Workers = o.Workers
	c.Progress = o.Progress
	return c
}

// Graph returns the blocked candidate graph.
func (b *Bench) Graph() *blocking.Graph { return b.snap.Graph }

// Corpus returns the tokenized corpus.
func (b *Bench) Corpus() *textproc.Corpus { return b.snap.Corpus }

// NumRecords returns the replica's record count.
func (b *Bench) NumRecords() int { return b.snap.NumRecords() }

// SnapshotKey returns the snapshot's content key.
func (b *Bench) SnapshotKey() string { return b.snap.Key }

// CoreOptions returns a copy of the core option set the harness runs
// with.
func (b *Bench) CoreOptions() core.Options { return b.core }

// Fusion executes the fusion stages through the engine, optionally with
// modified core options (the ablation hook), returning the result and
// the per-stage trace (iter, recordgraph, cliquerank/rss, fuse). The
// run's term weights are published to Config.Cache for FusionWeights.
func (b *Bench) Fusion(modify func(*core.Options)) (*core.FusionResult, engine.Trace, error) {
	opts := b.core
	if modify != nil {
		modify(&opts)
	}
	run := engine.NewRun(context.Background(), engine.RunOptions{Workers: opts.Workers})
	res, err := engine.Fuse(run, b.snap.Graph, b.snap.NumRecords(), opts)
	if err != nil {
		return nil, nil, err
	}
	b.cache.AddTermWeights(engine.FusionKey(b.snap.Key, opts), res.X)
	return res, run.Trace(), nil
}

// FusionWeights returns the learned term weights of the unmodified fusion
// configuration, reusing the vector a previous Fusion on the same
// snapshot and options cached (so e.g. Table IV and Figure 4 pay for one
// fusion run between them).
func (b *Bench) FusionWeights() ([]float64, error) {
	key := engine.FusionKey(b.snap.Key, b.core)
	if w, ok := b.cache.TermWeights(key); ok {
		return w, nil
	}
	res, _, err := b.Fusion(nil)
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), res.X...), nil
}

// EvaluateMatches scores a boolean match assignment against ground truth;
// false without ground truth.
func (b *Bench) EvaluateMatches(matched []bool) (eval.PRF, bool) {
	if b.truth == nil {
		return eval.PRF{}, false
	}
	return eval.EvaluatePairs(b.snap.Graph.Pairs, matched, b.truth, len(b.truth)), true
}

// PageRankSalience returns the PageRank/TW-IDF term salience vector (the
// Table IV baseline weighting).
func (b *Bench) PageRankSalience() []float64 {
	_, salience := baselines.PageRankTWIDF(b.snap.Corpus, b.snap.Graph, baselines.DefaultPageRankOptions())
	return salience
}

// TermWeightQuality computes Spearman's ρ between a weight vector and the
// score(t) oracle (the Table IV diagnostic); false without ground truth.
func (b *Bench) TermWeightQuality(weights []float64) (float64, bool) {
	if b.truth == nil {
		return 0, false
	}
	oracle := eval.TermScores(b.snap.Graph, b.truth)
	var w, o []float64
	for t, s := range oracle {
		if s < 0 {
			continue
		}
		w = append(w, weights[t])
		o = append(o, s)
	}
	rho, err := eval.Spearman(w, o)
	if err != nil {
		return 0, false
	}
	return rho, true
}

// TermScoreSeries returns the Figure 4 series for a weight vector:
// score(t) of terms ordered by descending weight; false without ground
// truth.
func (b *Bench) TermScoreSeries(weights []float64) ([]float64, bool) {
	if b.truth == nil {
		return nil, false
	}
	return eval.RankSeries(weights, eval.TermScores(b.snap.Graph, b.truth)), true
}
