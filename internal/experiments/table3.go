package experiments

import (
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

// Table3Row reproduces one Table III column: record-graph size, running
// time and the CliqueRank-over-RSS speedup for one dataset.
type Table3Row struct {
	Dataset    DatasetName
	GraphNodes int
	GraphEdges int
	// TotalTime is the full 5-round fusion wall-clock time.
	TotalTime time.Duration
	// ITERTime is the part spent in the ITER inner loops.
	ITERTime time.Duration
	// CliqueRankTime is the part spent in CliqueRank.
	CliqueRankTime time.Duration
	// RSSEstimate extrapolates the cost of replacing every CliqueRank call
	// with full RSS sampling, measured on a sample of edges (running RSS
	// exhaustively on dense graphs is exactly what the paper shows to be
	// impractical — its published speedup on Paper is 60x).
	RSSEstimate time.Duration
	// Speedup is RSSEstimate / CliqueRankTime.
	Speedup float64
	// PublishedSpeedup is the paper's Table III value.
	PublishedSpeedup float64
}

// Table3Result reproduces Table III.
type Table3Result struct {
	Rows []Table3Row
}

// rssSampleEdges bounds the number of edges used to estimate the per-edge
// RSS cost.
const rssSampleEdges = 400

// RunTable3 runs the fusion stages through the engine, reads the
// per-phase walls off the stage trace, and estimates the RSS cost on each
// dataset's final record graph.
func RunTable3(cfg Config) (*Table3Result, error) {
	res := &Table3Result{}
	published := map[DatasetName]float64{Restaurant: 1.3, Product: 1.5, Paper: 60}
	for _, name := range AllDatasets {
		b, err := cfg.Bench(name)
		if err != nil {
			return nil, err
		}
		fres, trace, err := b.Fusion(nil)
		if err != nil {
			return nil, err
		}
		opts := b.CoreOptions()

		row := Table3Row{Dataset: name, PublishedSpeedup: published[name]}
		row.TotalTime = fres.Elapsed
		if st := trace.Find(engine.StageITER); st != nil {
			row.ITERTime = st.Wall
		}
		if st := trace.Find(engine.StageCliqueRank); st != nil {
			row.CliqueRankTime = st.Wall
		}
		rg := fres.Graph
		row.GraphNodes = rg.NumNodes()
		row.GraphEdges = rg.NumEdges()

		// Estimate RSS on a sample of the final graph's edges, then
		// extrapolate to all edges and all fusion iterations.
		sample := rg.NumEdges()
		if sample > rssSampleEdges {
			sample = rssSampleEdges
		}
		if sample > 0 {
			positions := make([]int, sample)
			perm := rand.New(rand.NewSource(opts.Seed)).Perm(rg.NumEdges())
			copy(positions, perm[:sample])
			t0 := time.Now()
			core.RSSOnEdges(rg, opts, positions)
			perEdge := time.Since(t0) / time.Duration(sample)
			row.RSSEstimate = perEdge * time.Duration(rg.NumEdges()*opts.FusionIterations)
			if row.CliqueRankTime > 0 {
				row.Speedup = float64(row.RSSEstimate) / float64(row.CliqueRankTime)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the result in the paper's row layout.
func (t *Table3Result) Render() string {
	header := []string{"Metric"}
	for _, r := range t.Rows {
		header = append(header, string(r.Dataset))
	}
	metric := func(label string, get func(Table3Row) string) []string {
		row := []string{label}
		for _, r := range t.Rows {
			row = append(row, get(r))
		}
		return row
	}
	rows := [][]string{
		metric("Nodes in G_r", func(r Table3Row) string { return itoa(r.GraphNodes) }),
		metric("Edges in G_r", func(r Table3Row) string { return itoa(r.GraphEdges) }),
		metric("Total running time", func(r Table3Row) string { return dur(r.TotalTime) }),
		metric("Running time for ITER", func(r Table3Row) string { return dur(r.ITERTime) }),
		metric("Running time for CliqueRank", func(r Table3Row) string { return dur(r.CliqueRankTime) }),
		metric("Estimated RSS time", func(r Table3Row) string { return dur(r.RSSEstimate) }),
		metric("Speedup vs RSS (published)", func(r Table3Row) string {
			return f1x(r.Speedup) + " (" + f1x(r.PublishedSpeedup) + ")"
		}),
	}
	return "Table III — efficiency of ITER+CliqueRank\n" + renderTable(header, rows)
}

func itoa(v int) string { return fmtInt(v) }
