package experiments

import (
	"repro"
)

// BlockingPoint measures one blocking configuration on one dataset.
type BlockingPoint struct {
	Dataset    DatasetName
	Rule       string
	Candidates int
	// Recall is the fraction of true matches surviving blocking.
	Recall float64
	// FusionF1 is ITER+CliqueRank's F1 on that candidate set.
	FusionF1 float64
	// JaccardF1 is the oracle-threshold Jaccard F1 on that candidate set.
	JaccardF1 float64
}

// blockingRules are the three settings compared by the study: the paper's
// literal footnote rule and the two documented floors (DESIGN.md §5.1).
var blockingRules = []struct {
	name  string
	apply func(*er.Options)
}{
	{"shared>=1 (paper literal)", func(o *er.Options) { o.MinSharedTerms = 1; o.MinJaccard = 0 }},
	{"shared>=2", func(o *er.Options) { o.MinSharedTerms = 2; o.MinJaccard = 0 }},
	{"shared>=2 + jaccard>=0.2 (default)", func(o *er.Options) { o.MinSharedTerms = 2; o.MinJaccard = 0.2 }},
}

// RunBlockingStudy quantifies the DESIGN.md §5.1 deviation: what each
// blocking floor costs in recall and buys in fusion precision. The literal
// rule makes dense graphs (run it at reduced -scale); it is therefore not
// part of erbench's "all" set.
func RunBlockingStudy(cfg Config) ([]BlockingPoint, error) {
	var out []BlockingPoint
	for _, name := range AllDatasets {
		d, err := cfg.Dataset(name)
		if err != nil {
			return nil, err
		}
		for _, rule := range blockingRules {
			opts := cfg.options()
			rule.apply(&opts)
			p := er.NewPipeline(d, opts)
			recall, _ := p.BlockingRecall()
			fusion := p.Fusion()
			point := BlockingPoint{
				Dataset:    name,
				Rule:       rule.name,
				Candidates: p.NumCandidates(),
				Recall:     recall,
			}
			if m, ok := p.EvaluateMatches(fusion.Matched); ok {
				point.FusionF1 = m.F1
			}
			if _, m, ok := p.EvaluateScores(p.Jaccard()); ok {
				point.JaccardF1 = m.F1
			}
			out = append(out, point)
		}
	}
	return out, nil
}

// RenderBlockingStudy formats the study.
func RenderBlockingStudy(points []BlockingPoint) string {
	header := []string{"Dataset", "Blocking rule", "Candidates", "Block recall", "Fusion F1", "Jaccard F1"}
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{
			string(p.Dataset), p.Rule, fmtInt(p.Candidates),
			f3(p.Recall), f3(p.FusionF1), f3(p.JaccardF1),
		})
	}
	return "Blocking study — cost/benefit of the candidate floors (DESIGN.md §5.1)\n" +
		renderTable(header, rows)
}
