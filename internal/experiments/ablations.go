package experiments

import (
	"repro/internal/core"
)

// AblationResult measures the F1 impact of disabling one design choice of
// the framework (DESIGN.md §4) across the replicas.
type AblationResult struct {
	Name string
	// F1 per dataset with the full framework.
	Full [3]float64
	// F1 per dataset with the ablated variant.
	Ablated [3]float64
}

// ablationSpec describes how to derive the ablated option set.
type ablationSpec struct {
	name  string
	apply func(*core.Options)
}

var ablationSpecs = []ablationSpec{
	{"alpha=1 (linear transition, Eq. 11 off)", func(o *core.Options) { o.Alpha = 1 }},
	{"no target bonus (Eq. 12 off)", func(o *core.Options) { o.DisableBonus = true }},
	{"no early-stop mask (⊙ M_n off)", func(o *core.Options) { o.DisableMask = true }},
	{"no P_t denominator (Eq. 6 degraded)", func(o *core.Options) { o.DisableDenominator = true }},
	{"single fusion round (no reinforcement)", func(o *core.Options) { o.FusionIterations = 1 }},
	{"L2 weight normalization (§V-C alternative)", func(o *core.Options) { o.Normalization = core.NormL2 }},
}

// RunAblations evaluates every ablation on every replica.
func RunAblations(cfg Config) ([]AblationResult, error) {
	results := make([]AblationResult, len(ablationSpecs))
	for i, spec := range ablationSpecs {
		results[i].Name = spec.name
	}
	for di, name := range AllDatasets {
		b, err := cfg.Bench(name)
		if err != nil {
			return nil, err
		}
		full := benchFusionF1(b, nil)
		for i, spec := range ablationSpecs {
			results[i].Full[di] = full
			results[i].Ablated[di] = benchFusionF1(b, spec.apply)
		}
	}
	return results, nil
}

// benchFusionF1 runs the fusion stages on the harness snapshot with
// optionally modified core options and returns the resulting F1.
func benchFusionF1(b *Bench, modify func(*core.Options)) float64 {
	res, _, err := b.Fusion(modify)
	if err != nil {
		return 0
	}
	if m, ok := b.EvaluateMatches(res.Matches); ok {
		return m.F1
	}
	return 0
}

// RenderAblations formats the ablation study.
func RenderAblations(results []AblationResult) string {
	header := []string{"Ablation", "Restaurant", "Product", "Paper"}
	var rows [][]string
	cell := func(full, ablated float64) string {
		return f3(ablated) + " (full " + f3(full) + ")"
	}
	for _, r := range results {
		rows = append(rows, []string{
			r.Name,
			cell(r.Full[0], r.Ablated[0]),
			cell(r.Full[1], r.Ablated[1]),
			cell(r.Full[2], r.Ablated[2]),
		})
	}
	return "Ablations — F1 with one design choice disabled\n" + renderTable(header, rows)
}
