package experiments

// ExtendedRow is one of the library's additional similarity metrics (beyond
// the paper's competitor set) evaluated with the same oracle threshold
// protocol.
type ExtendedRow struct {
	Method string
	F1     [3]float64
}

// RunExtended evaluates the extra metrics the library ships beyond the
// paper's competitor set (Soft TF-IDF, Monge-Elkan and the BiRank-weighted
// TW-IDF variant) on the three replicas. These have no
// published counterpart in the paper's Table II; they quantify how far
// classic hybrid string metrics get on the same candidate sets.
func RunExtended(cfg Config) ([]ExtendedRow, error) {
	rows := []ExtendedRow{{Method: "SoftTFIDF"}, {Method: "MongeElkan"}, {Method: "BiRank+TW-IDF"}}
	for di, name := range AllDatasets {
		p, err := cfg.Pipeline(name)
		if err != nil {
			return nil, err
		}
		if _, m, ok := p.EvaluateScores(p.SoftTFIDF()); ok {
			rows[0].F1[di] = m.F1
		}
		if _, m, ok := p.EvaluateScores(p.MongeElkan()); ok {
			rows[1].F1[di] = m.F1
		}
		if br, _ := p.BiRank(); br != nil {
			if _, m, ok := p.EvaluateScores(br); ok {
				rows[2].F1[di] = m.F1
			}
		}
	}
	return rows, nil
}

// RenderExtended formats the extra-metric comparison.
func RenderExtended(rows []ExtendedRow) string {
	header := []string{"Method", "Restaurant", "Product", "Paper"}
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Method, f3(r.F1[0]), f3(r.F1[1]), f3(r.F1[2])})
	}
	return "Extended metrics — additional string-similarity family members\n" + renderTable(header, out)
}
