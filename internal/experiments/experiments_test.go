package experiments

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"repro"
)

// Tests run at a small scale so the whole suite stays quick; the full-scale
// numbers are produced by cmd/erbench and recorded in EXPERIMENTS.md.
func testConfig() Config { return Config{Seed: 1, Scale: 0.15} }

func TestConfigDatasets(t *testing.T) {
	cfg := testConfig()
	for _, name := range AllDatasets {
		d, err := cfg.Dataset(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.NumRecords() == 0 {
			t.Errorf("%s: empty dataset", name)
		}
		if !d.HasGroundTruth() {
			t.Errorf("%s: replicas must carry ground truth", name)
		}
	}
}

func TestConfigUnknownDataset(t *testing.T) {
	if _, err := testConfig().Dataset("Nope"); !errors.Is(err, er.ErrInvalidOptions) {
		t.Errorf("unknown dataset: err = %v, want ErrInvalidOptions", err)
	}
	if _, err := testConfig().Pipeline("Nope"); !errors.Is(err, er.ErrInvalidOptions) {
		t.Errorf("unknown pipeline dataset: err = %v, want ErrInvalidOptions", err)
	}
}

func TestRunTable2(t *testing.T) {
	res, err := RunTable2(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(res.Rows))
	}
	implemented := 0
	for _, row := range res.Rows {
		if !row.Backend {
			if !math.IsNaN(row.Product.Measured) {
				t.Errorf("%s: reported-only row must have NaN measured value", row.Method)
			}
			continue
		}
		implemented++
		for _, cell := range []Cell{row.Restaurant, row.Product, row.Paper} {
			if math.IsNaN(cell.Measured) || cell.Measured < 0 || cell.Measured > 1 {
				t.Errorf("%s: measured F1 %v out of range", row.Method, cell.Measured)
			}
		}
	}
	if implemented != 6 {
		t.Errorf("implemented rows = %d, want 6", implemented)
	}
	fusion := res.Row("ITER+CliqueRank")
	simrank := res.Row("SimRank")
	if fusion == nil || simrank == nil {
		t.Fatal("missing rows")
	}
	// Shape check on the Product column (the paper's headline): the fusion
	// framework must beat the naive SimRank baseline.
	if fusion.Product.Measured <= simrank.Product.Measured {
		t.Errorf("fusion %.3f must beat SimRank %.3f on Product",
			fusion.Product.Measured, simrank.Product.Measured)
	}
	out := res.Render()
	for _, want := range []string{"Table II", "CrowdER", "(reported)", "ITER+CliqueRank"} {
		if !strings.Contains(out, want) {
			t.Errorf("render output missing %q", want)
		}
	}
}

func TestRunTable3(t *testing.T) {
	res, err := RunTable3(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.GraphNodes == 0 || row.GraphEdges == 0 {
			t.Errorf("%s: empty record graph", row.Dataset)
		}
		if row.TotalTime <= 0 || row.ITERTime <= 0 || row.CliqueRankTime <= 0 {
			t.Errorf("%s: missing timings %+v", row.Dataset, row)
		}
		if row.Speedup <= 1 {
			t.Errorf("%s: CliqueRank should be faster than RSS, speedup %.2f", row.Dataset, row.Speedup)
		}
	}
	if !strings.Contains(res.Render(), "Speedup vs RSS") {
		t.Error("render output missing speedup row")
	}
}

func TestRunTable4(t *testing.T) {
	res, err := RunTable4(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for di, name := range AllDatasets {
		iter := res.ITER[di].Measured
		pr := res.PageRank[di].Measured
		if iter <= pr {
			t.Errorf("%s: ITER rho %.3f must exceed PageRank rho %.3f", name, iter, pr)
		}
		if iter < -1 || iter > 1 || pr < -1 || pr > 1 {
			t.Errorf("%s: rho out of [-1,1]", name)
		}
	}
	if !strings.Contains(res.Render(), "Spearman") {
		t.Error("render output missing title")
	}
}

func TestRunTable5(t *testing.T) {
	res, err := RunTable5(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) != 5 {
		t.Fatalf("iterations = %d, want 5", len(res.Iterations))
	}
	for di := range AllDatasets {
		prev := time.Duration(0)
		for _, it := range res.Iterations {
			f1 := it.F1[di].Measured
			if f1 < 0 || f1 > 1 {
				t.Errorf("iteration %d dataset %d: F1 %v", it.Iteration, di, f1)
			}
			if it.Time[di] < prev {
				t.Errorf("iteration %d dataset %d: cumulative time decreased", it.Iteration, di)
			}
			prev = it.Time[di]
		}
	}
}

func TestRunFigure4(t *testing.T) {
	res, err := RunFigure4(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d, want 3", len(res.Series))
	}
	for _, s := range res.Series {
		front, back := s.FrontBackMeans()
		if front <= back {
			t.Errorf("%s: top decile %f must exceed bottom decile %f", s.Dataset, front, back)
		}
		csv := s.CSV()
		if !strings.HasPrefix(csv, "rank,score\n") {
			t.Errorf("%s: bad csv header", s.Dataset)
		}
		if strings.Count(csv, "\n") != len(s.Scores)+1 {
			t.Errorf("%s: csv row count mismatch", s.Dataset)
		}
	}
}

func TestRunFigure5(t *testing.T) {
	res, err := RunFigure5(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Series {
		if len(s.Updates) == 0 {
			t.Fatalf("%s: empty trace", s.Dataset)
		}
		peak, last := 0.0, s.Updates[len(s.Updates)-1]
		for _, v := range s.Updates {
			if v > peak {
				peak = v
			}
		}
		// Figure 5 shape: sharp peak, decayed tail.
		if last >= peak {
			t.Errorf("%s: no convergence decay (peak %f, last %f)", s.Dataset, peak, last)
		}
	}
	if !strings.Contains(res.Render(), "Figure 5") {
		t.Error("render output missing title")
	}
}

func TestRunAblations(t *testing.T) {
	res, err := RunAblations(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 6 {
		t.Fatalf("ablations = %d, want 6", len(res))
	}
	byName := map[string]AblationResult{}
	for _, r := range res {
		byName[r.Name] = r
	}
	// The linear-walk ablation must hurt at least one dataset noticeably.
	lin := byName["alpha=1 (linear transition, Eq. 11 off)"]
	hurt := false
	for di := range AllDatasets {
		if lin.Ablated[di] < lin.Full[di]-0.05 {
			hurt = true
		}
	}
	if !hurt {
		t.Errorf("linear-walk ablation had no effect: %+v", lin)
	}
	out := RenderAblations(res)
	if !strings.Contains(out, "Ablations") {
		t.Error("render output missing title")
	}
}

func TestRenderTableAlignment(t *testing.T) {
	out := renderTable([]string{"A", "LongHeader"}, [][]string{{"xxxxx", "y"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want 3", len(lines))
	}
	if len(lines[0]) != len(lines[1]) {
		t.Error("separator not aligned with header")
	}
}

func TestRunExtended(t *testing.T) {
	rows, err := RunExtended(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("extended rows = %d, want 3", len(rows))
	}
	for _, r := range rows {
		for di, f1 := range r.F1 {
			if f1 <= 0 || f1 > 1 {
				t.Errorf("%s dataset %d: F1 %g out of range", r.Method, di, f1)
			}
		}
	}
	if !strings.Contains(RenderExtended(rows), "SoftTFIDF") {
		t.Error("render missing method name")
	}
}

func TestRunScaling(t *testing.T) {
	points, err := RunScaling(Config{Seed: 1, Scale: 1}, []int{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d, want 2", len(points))
	}
	if points[1].Nodes <= points[0].Nodes || points[1].Edges <= points[0].Edges {
		t.Errorf("graph must grow with scale: %+v", points)
	}
	if points[0].SumDegSq <= 0 || points[0].CliqueRank <= 0 {
		t.Errorf("missing measurements: %+v", points[0])
	}
	if !strings.Contains(RenderScaling(points), "Scaling") {
		t.Error("render missing title")
	}
}

func TestRunBlockingStudy(t *testing.T) {
	points, err := RunBlockingStudy(Config{Seed: 1, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 9 {
		t.Fatalf("points = %d, want 3 datasets x 3 rules", len(points))
	}
	// Within a dataset, tightening the rule must not grow the candidate
	// set and must not raise blocking recall.
	for d := 0; d < 3; d++ {
		base := points[d*3]
		for r := 1; r < 3; r++ {
			p := points[d*3+r]
			if p.Candidates > base.Candidates {
				t.Errorf("%s: rule %q grew candidates %d -> %d", p.Dataset, p.Rule, base.Candidates, p.Candidates)
			}
			if p.Recall > base.Recall+1e-9 {
				t.Errorf("%s: rule %q raised blocking recall", p.Dataset, p.Rule)
			}
		}
	}
	if !strings.Contains(RenderBlockingStudy(points), "Blocking study") {
		t.Error("render missing title")
	}
}
