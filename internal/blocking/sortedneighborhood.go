package blocking

import (
	"sort"

	"repro/internal/textproc"
)

// SortedNeighborhood implements the classic sorted-neighborhood method
// (Hernández & Stolfo): records are sorted by a blocking key and every pair
// within a sliding window of the sorted order becomes a candidate. It is an
// alternative to the inverted-index blocking of Build for datasets whose
// records have a reliable sort key, and is offered as library functionality
// (the paper's pipeline uses term-sharing blocking only).
//
// keyOf derives the blocking key of a record; nil uses the default key
// (the record's rarest term, breaking ties lexicographically — rare terms
// are the most entity-specific sort anchors). window is the sliding-window
// size; values below 2 are treated as 2.
func SortedNeighborhood(c *textproc.Corpus, keyOf func(record int) string, window int) []Pair {
	if window < 2 {
		window = 2
	}
	if keyOf == nil {
		keyOf = func(r int) string { return defaultKey(c, r) }
	}
	n := c.NumRecords()
	order := make([]int32, n)
	keys := make([]string, n)
	for i := 0; i < n; i++ {
		order[i] = int32(i)
		keys[i] = keyOf(i)
	}
	sort.SliceStable(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })

	seen := make(map[uint64]struct{})
	var out []Pair
	//lint:ignore guardloop O(n·window) sliding pass offered as library utility outside the guarded pipeline
	for i := 0; i < n; i++ {
		end := i + window
		if end > n {
			end = n
		}
		for j := i + 1; j < end; j++ {
			ri, rj := order[i], order[j]
			if ri > rj {
				ri, rj = rj, ri
			}
			key := Key(ri, rj)
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			out = append(out, Pair{I: ri, J: rj})
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}

// defaultKey returns the record's rarest term (smallest document
// frequency, ties broken by term order), or "" for an empty record.
func defaultKey(c *textproc.Corpus, r int) string {
	best := ""
	bestDF := -1
	for _, t := range c.Docs[r] {
		df := c.DF[t]
		if bestDF < 0 || df < bestDF || (df == bestDF && c.Terms[t] < best) {
			best, bestDF = c.Terms[t], df
		}
	}
	return best
}

// MultiPass runs SortedNeighborhood over several key functions and unions
// the candidate sets — the standard multi-pass variant that recovers pairs
// a single noisy key would miss.
func MultiPass(c *textproc.Corpus, keys []func(record int) string, window int) []Pair {
	seen := make(map[uint64]struct{})
	var out []Pair
	//lint:ignore guardloop unions the output-sized passes of SortedNeighborhood, outside the guarded pipeline
	for _, keyOf := range keys {
		for _, p := range SortedNeighborhood(c, keyOf, window) {
			k := Key(p.I, p.J)
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			out = append(out, p)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}
