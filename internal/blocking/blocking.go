// Package blocking generates candidate record pairs with an inverted index
// and assembles the paper's bipartite graph between terms and record-record
// pairs (§V-B): a term node t is connected to a pair node (ri, rj) iff t
// appears in both records. Pairs that share no term are excluded — exactly
// the footnote of §VI ("two records are connected only if they share at
// least one term"), which also defines the edge set of the record graph G_r.
//
// Since the incremental-blocking refactor this package is a façade over
// internal/index, which owns the graph types, the parallel batch builder
// and the mutable streaming index; Graph and Pair are aliases so every
// existing consumer of the candidate graph keeps compiling unchanged.
package blocking

import (
	"repro/internal/guard"
	"repro/internal/index"
	"repro/internal/textproc"
)

// Pair is a candidate record pair with I < J.
type Pair = index.Pair

// Graph is the candidate set plus the bipartite term/pair adjacency.
type Graph = index.Graph

// Key packs a pair into a map key.
func Key(i, j int32) uint64 { return index.Key(i, j) }

// Options controls candidate generation.
type Options struct {
	// CrossSourceOnly restricts pairs to records from different sources,
	// the standard setting for two-source datasets such as Product
	// (abt × buy).
	CrossSourceOnly bool
	// MaxTermRecords skips terms contained in more than this many records
	// when enumerating pairs. Such terms generate quadratically many pair
	// connections while carrying no discriminative signal; the paper's
	// pre-processing removes "very frequent" terms for the same reason.
	// Zero means no cap.
	MaxTermRecords int
	// MinJaccard requires candidate pairs to reach this Jaccard similarity
	// over their filtered term sets. The crowd-sourcing systems the paper
	// compares against pre-filter the Restaurant/Product/Paper benchmarks
	// at Jaccard >= 0.3 (§I cites [10], [12]), and the published G_r edge
	// counts (e.g. 5,320 edges for Restaurant out of 367,653 candidate
	// pairs) are only consistent with a floor of this kind on top of the
	// shared-term rule. Zero disables the floor.
	MinJaccard float64
	// MinSharedTerms requires candidate pairs to share at least this many
	// terms. Values <= 1 reproduce the paper's footnote ("two records are
	// connected only if they share at least one term"). The default
	// pipeline uses 2: records sharing exactly one mid-frequency term form
	// isolated equal-weight components in G_r that are topologically
	// indistinguishable from true entities, so any purely topological
	// estimator marks them matches; requiring a second shared term
	// dissolves those fake cliques while true matches — which per §V-A
	// "share a considerable number of discriminative terms" — are
	// unaffected.
	MinSharedTerms int
	// Check, when non-nil, is polled during candidate enumeration so a
	// canceled run aborts promptly instead of completing an O(Σ |block|²)
	// pass on adversarial input. Build returns the checkpoint's error.
	Check *guard.Checkpoint
	// Workers bounds the goroutines the batch scan fans out across; like
	// every kernel on the parallel scheduler it changes only wall-clock
	// time, never the output. Zero selects GOMAXPROCS.
	Workers int
}

// Build constructs the candidate set and bipartite graph for the corpus.
// source[i] gives the origin of record i; it may be nil when
// !opts.CrossSourceOnly. It returns an error when the source labels are
// misaligned with the corpus or when opts.Check reports cancellation
// mid-enumeration; the returned graph is nil in both cases.
func Build(c *textproc.Corpus, source []int, opts Options) (*Graph, error) {
	return index.BuildGraph(c, source, index.BatchOptions{
		CrossSourceOnly: opts.CrossSourceOnly,
		MaxTermRecords:  opts.MaxTermRecords,
		MinJaccard:      opts.MinJaccard,
		MinSharedTerms:  opts.MinSharedTerms,
		Check:           opts.Check,
		Workers:         opts.Workers,
	})
}

// Truncate returns a graph restricted to the first maxPairs candidate pairs
// (enumeration order). It is the last-resort degradation step of the pair
// budget: when tightening MinJaccard/MaxTermRecords cannot bring the
// candidate set under budget, the caller drops the tail deterministically.
// The input graph is not modified; when it is already within budget it is
// returned unchanged.
func Truncate(g *Graph, maxPairs int) *Graph { return index.Truncate(g, maxPairs) }
