// Package blocking generates candidate record pairs with an inverted index
// and assembles the paper's bipartite graph between terms and record-record
// pairs (§V-B): a term node t is connected to a pair node (ri, rj) iff t
// appears in both records. Pairs that share no term are excluded — exactly
// the footnote of §VI ("two records are connected only if they share at
// least one term"), which also defines the edge set of the record graph G_r.
package blocking

import (
	"fmt"

	"repro/internal/guard"
	"repro/internal/textproc"
)

// Pair is a candidate record pair with I < J.
type Pair struct {
	I, J int32
}

// Key packs a pair into a map key.
func Key(i, j int32) uint64 {
	if i > j {
		i, j = j, i
	}
	return uint64(uint32(i))<<32 | uint64(uint32(j))
}

// Options controls candidate generation.
type Options struct {
	// CrossSourceOnly restricts pairs to records from different sources,
	// the standard setting for two-source datasets such as Product
	// (abt × buy).
	CrossSourceOnly bool
	// MaxTermRecords skips terms contained in more than this many records
	// when enumerating pairs. Such terms generate quadratically many pair
	// connections while carrying no discriminative signal; the paper's
	// pre-processing removes "very frequent" terms for the same reason.
	// Zero means no cap.
	MaxTermRecords int
	// MinJaccard requires candidate pairs to reach this Jaccard similarity
	// over their filtered term sets. The crowd-sourcing systems the paper
	// compares against pre-filter the Restaurant/Product/Paper benchmarks
	// at Jaccard >= 0.3 (§I cites [10], [12]), and the published G_r edge
	// counts (e.g. 5,320 edges for Restaurant out of 367,653 candidate
	// pairs) are only consistent with a floor of this kind on top of the
	// shared-term rule. Zero disables the floor.
	MinJaccard float64
	// MinSharedTerms requires candidate pairs to share at least this many
	// terms. Values <= 1 reproduce the paper's footnote ("two records are
	// connected only if they share at least one term"). The default
	// pipeline uses 2: records sharing exactly one mid-frequency term form
	// isolated equal-weight components in G_r that are topologically
	// indistinguishable from true entities, so any purely topological
	// estimator marks them matches; requiring a second shared term
	// dissolves those fake cliques while true matches — which per §V-A
	// "share a considerable number of discriminative terms" — are
	// unaffected.
	MinSharedTerms int
	// Check, when non-nil, is polled during candidate enumeration so a
	// canceled run aborts promptly instead of completing an O(Σ |block|²)
	// pass on adversarial input. Build returns the checkpoint's error.
	Check *guard.Checkpoint
}

// Graph is the candidate set plus the bipartite term/pair adjacency.
type Graph struct {
	NumRecords int
	NumTerms   int
	// Pairs lists the candidate pairs; the slice index is the pair-node ID.
	Pairs []Pair
	// Index maps Key(i,j) to the pair-node ID.
	Index map[uint64]int32
	// TermPairs holds, per term, the IDs of the pair nodes it connects to.
	// len(TermPairs[t]) is the paper's P_t after candidate restriction.
	TermPairs [][]int32
	// PairTermPtr/PairTerms are the transpose of TermPairs in CSR layout:
	// the terms connected to pair p are PairTerms[PairTermPtr[p]:
	// PairTermPtr[p+1]], ascending. The transpose turns ITER's term→pair
	// scatter into a race-free per-pair gather; because terms are visited in
	// ascending order either way, the gather adds contributions in exactly
	// the scatter's order and the sweep stays bit-identical to the serial
	// term-major loop. Built by BuildPairIndex; nil on hand-rolled graphs,
	// in which case consumers fall back to the serial scatter.
	PairTermPtr []int32
	PairTerms   []int32
}

// BuildPairIndex (re)builds the pair→term CSR transpose of TermPairs. Build
// and Truncate call it; a caller that assembles a Graph by hand only needs
// it to opt into the parallel ITER sweep.
func (g *Graph) BuildPairIndex() {
	np := g.NumPairs()
	ptr := make([]int32, np+1)
	//lint:ignore guardloop output-sized transpose of the already-built adjacency; the guarded stage is the quadratic enumeration in Build, upstream
	for _, pairIDs := range g.TermPairs {
		for _, pid := range pairIDs {
			ptr[pid+1]++
		}
	}
	for p := 0; p < np; p++ {
		ptr[p+1] += ptr[p]
	}
	terms := make([]int32, ptr[np])
	fill := make([]int32, np)
	copy(fill, ptr[:np])
	// Terms are scanned ascending, so each pair's term list comes out
	// ascending — the property the gather's bit-identity argument needs.
	for t, pairIDs := range g.TermPairs {
		for _, pid := range pairIDs {
			terms[fill[pid]] = int32(t)
			fill[pid]++
		}
	}
	g.PairTermPtr = ptr
	g.PairTerms = terms
}

// Build constructs the candidate set and bipartite graph for the corpus.
// source[i] gives the origin of record i; it may be nil when
// !opts.CrossSourceOnly. It returns an error when the source labels are
// misaligned with the corpus or when opts.Check reports cancellation
// mid-enumeration; the returned graph is nil in both cases.
func Build(c *textproc.Corpus, source []int, opts Options) (*Graph, error) {
	n := c.NumRecords()
	if opts.CrossSourceOnly && len(source) != n {
		return nil, fmt.Errorf("blocking: %d records but %d source labels", n, len(source))
	}
	// Inverted index: term -> records containing it (ascending, since we
	// scan records in order).
	inv := make([][]int32, c.NumTerms())
	for r, doc := range c.Docs {
		for _, t := range doc {
			inv[t] = append(inv[t], int32(r))
		}
	}
	g := &Graph{
		NumRecords: n,
		NumTerms:   c.NumTerms(),
		Index:      make(map[uint64]int32),
		TermPairs:  make([][]int32, c.NumTerms()),
	}
	termEligible := func(recs []int32) bool {
		if len(recs) < 2 {
			return false
		}
		return opts.MaxTermRecords <= 0 || len(recs) <= opts.MaxTermRecords
	}
	// First pass: count shared terms per co-occurring record pair so the
	// MinSharedTerms floor can be applied before pair IDs are assigned. A
	// single over-frequent term makes this loop quadratic in the block size,
	// so cancellation is polled once per outer record position.
	shared := make(map[uint64]int32)
	for _, recs := range inv {
		if !termEligible(recs) {
			continue
		}
		for a := 0; a < len(recs); a++ {
			if err := opts.Check.Tick(); err != nil {
				return nil, err
			}
			for b := a + 1; b < len(recs); b++ {
				ri, rj := recs[a], recs[b]
				if opts.CrossSourceOnly && source[ri] == source[rj] {
					continue
				}
				shared[Key(ri, rj)]++
			}
		}
	}
	minShared := int32(opts.MinSharedTerms)
	if minShared < 1 {
		minShared = 1
	}
	// Second pass: materialize surviving pairs and the bipartite adjacency.
	for t, recs := range inv {
		if !termEligible(recs) {
			continue
		}
		for a := 0; a < len(recs); a++ {
			if err := opts.Check.Tick(); err != nil {
				return nil, err
			}
			for b := a + 1; b < len(recs); b++ {
				ri, rj := recs[a], recs[b]
				if opts.CrossSourceOnly && source[ri] == source[rj] {
					continue
				}
				key := Key(ri, rj)
				if shared[key] < minShared {
					continue
				}
				if opts.MinJaccard > 0 {
					union := len(c.Docs[ri]) + len(c.Docs[rj]) - int(shared[key])
					if union <= 0 || float64(shared[key])/float64(union) < opts.MinJaccard {
						continue
					}
				}
				id, ok := g.Index[key]
				if !ok {
					id = int32(len(g.Pairs))
					g.Pairs = append(g.Pairs, Pair{I: ri, J: rj})
					g.Index[key] = id
				}
				g.TermPairs[t] = append(g.TermPairs[t], id)
			}
		}
	}
	g.BuildPairIndex()
	return g, nil
}

// Truncate returns a graph restricted to the first maxPairs candidate pairs
// (enumeration order). It is the last-resort degradation step of the pair
// budget: when tightening MinJaccard/MaxTermRecords cannot bring the
// candidate set under budget, the caller drops the tail deterministically.
// The input graph is not modified; when it is already within budget it is
// returned unchanged.
func Truncate(g *Graph, maxPairs int) *Graph {
	if maxPairs < 0 {
		maxPairs = 0
	}
	if g.NumPairs() <= maxPairs {
		return g
	}
	out := &Graph{
		NumRecords: g.NumRecords,
		NumTerms:   g.NumTerms,
		Pairs:      g.Pairs[:maxPairs:maxPairs],
		Index:      make(map[uint64]int32, maxPairs),
		TermPairs:  make([][]int32, g.NumTerms),
	}
	for _, p := range out.Pairs {
		out.Index[Key(p.I, p.J)] = int32(len(out.Index))
	}
	//lint:ignore guardloop output-sized copy of the already-built graph; the guarded stage is Build, upstream
	for t, pairIDs := range g.TermPairs {
		for _, pid := range pairIDs {
			if int(pid) < maxPairs {
				out.TermPairs[t] = append(out.TermPairs[t], pid)
			}
		}
	}
	out.BuildPairIndex()
	return out
}

// NumPairs returns the candidate pair count (edges of G_r).
func (g *Graph) NumPairs() int { return len(g.Pairs) }

// Pt returns the number of pair nodes connected to term t.
func (g *Graph) Pt(t int) int { return len(g.TermPairs[t]) }

// PairID returns the pair-node ID for records (i, j) and whether the pair is
// a candidate.
func (g *Graph) PairID(i, j int32) (int32, bool) {
	id, ok := g.Index[Key(i, j)]
	return id, ok
}

// BipartiteEdges returns the total number of term→pair edges (Σ_t P_t).
func (g *Graph) BipartiteEdges() int {
	n := 0
	for _, tp := range g.TermPairs {
		n += len(tp)
	}
	return n
}
