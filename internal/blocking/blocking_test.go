package blocking

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/guard"
	"repro/internal/textproc"
)

func corpus(texts ...string) *textproc.Corpus {
	return textproc.BuildCorpus(texts, textproc.CorpusOptions{Tokenize: textproc.DefaultTokenizeOptions()})
}

// mustBuild builds a candidate graph and fails the test on error.
func mustBuild(t *testing.T, c *textproc.Corpus, source []int, opts Options) *Graph {
	t.Helper()
	g, err := Build(c, source, opts)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildSingleSource(t *testing.T) {
	c := corpus(
		"sony turntable pslx350h", // 0
		"sony turntable",          // 1
		"pioneer receiver",        // 2
		"pioneer amp",             // 3
	)
	g := mustBuild(t, c, nil, Options{})
	// candidates: (0,1) share sony+turntable, (2,3) share pioneer
	if g.NumPairs() != 2 {
		t.Fatalf("NumPairs = %d, want 2", g.NumPairs())
	}
	if _, ok := g.PairID(0, 1); !ok {
		t.Error("pair (0,1) missing")
	}
	if _, ok := g.PairID(0, 2); ok {
		t.Error("pair (0,2) must not be a candidate (no shared term)")
	}
	sony := c.Index["sony"]
	if g.Pt(sony) != 1 {
		t.Errorf("Pt(sony) = %d, want 1", g.Pt(sony))
	}
	// bipartite edges: sony->1, turntable->1, pioneer->1 => 3
	if g.BipartiteEdges() != 3 {
		t.Errorf("BipartiteEdges = %d, want 3", g.BipartiteEdges())
	}
}

func TestBuildCrossSourceOnly(t *testing.T) {
	c := corpus(
		"sony tv x100", // 0 source 0
		"sony tv x200", // 1 source 0
		"sony tv x100", // 2 source 1
	)
	src := []int{0, 0, 1}
	g := mustBuild(t, c, src, Options{CrossSourceOnly: true})
	if _, ok := g.PairID(0, 1); ok {
		t.Error("same-source pair (0,1) must be excluded")
	}
	if _, ok := g.PairID(0, 2); !ok {
		t.Error("cross-source pair (0,2) missing")
	}
	if _, ok := g.PairID(1, 2); !ok {
		t.Error("cross-source pair (1,2) missing")
	}
	if g.NumPairs() != 2 {
		t.Errorf("NumPairs = %d, want 2", g.NumPairs())
	}
	x100 := c.Index["x100"]
	if g.Pt(x100) != 1 {
		t.Errorf("Pt(x100) = %d, want 1", g.Pt(x100))
	}
}

func TestBuildMaxTermRecordsCap(t *testing.T) {
	// "common" is in all four records; with a cap of 3 it generates no pairs.
	c := corpus(
		"common aa",
		"common aa",
		"common bb",
		"common bb",
	)
	g := mustBuild(t, c, nil, Options{MaxTermRecords: 3})
	// only aa (0,1) and bb (2,3) survive
	if g.NumPairs() != 2 {
		t.Fatalf("NumPairs = %d, want 2", g.NumPairs())
	}
	common := c.Index["common"]
	if g.Pt(common) != 0 {
		t.Errorf("capped term still has Pt = %d", g.Pt(common))
	}
}

func TestPairIDOrderInsensitive(t *testing.T) {
	c := corpus("aa bb", "aa cc")
	g := mustBuild(t, c, nil, Options{})
	a, ok1 := g.PairID(0, 1)
	b, ok2 := g.PairID(1, 0)
	if !ok1 || !ok2 || a != b {
		t.Error("PairID must be order-insensitive")
	}
}

func TestKeyPacksDistinctly(t *testing.T) {
	seen := map[uint64]bool{}
	for i := int32(0); i < 50; i++ {
		for j := i + 1; j < 50; j++ {
			k := Key(i, j)
			if seen[k] {
				t.Fatalf("duplicate key for (%d,%d)", i, j)
			}
			seen[k] = true
			if k != Key(j, i) {
				t.Fatalf("Key not symmetric for (%d,%d)", i, j)
			}
		}
	}
}

func TestPairsConsistentWithTermPairs(t *testing.T) {
	c := corpus(
		"aa bb cc",
		"aa bb dd",
		"cc dd ee",
		"ee ff",
	)
	g := mustBuild(t, c, nil, Options{})
	// Every pair node referenced by a term must share that term.
	for term, pairIDs := range g.TermPairs {
		for _, pid := range pairIDs {
			p := g.Pairs[pid]
			shared := textproc.IntersectSorted(c.Docs[p.I], c.Docs[p.J])
			found := false
			for _, s := range shared {
				if int(s) == term {
					found = true
				}
			}
			if !found {
				t.Fatalf("term %q linked to pair (%d,%d) that does not share it", c.Terms[term], p.I, p.J)
			}
		}
	}
	// Every candidate pair must actually share >=1 term and each shared
	// term must list it exactly once.
	for pid, p := range g.Pairs {
		shared := textproc.IntersectSorted(c.Docs[p.I], c.Docs[p.J])
		if len(shared) == 0 {
			t.Fatalf("pair %d shares no terms", pid)
		}
		for _, s := range shared {
			count := 0
			for _, q := range g.TermPairs[s] {
				if q == int32(pid) {
					count++
				}
			}
			if count != 1 {
				t.Fatalf("term %q lists pair %d %d times", c.Terms[s], pid, count)
			}
		}
	}
}

func TestSortedNeighborhoodWindow(t *testing.T) {
	c := corpus("aa x1", "aa x2", "bb y1", "bb y2", "cc z1")
	// Key by the record's first term: sorted groups aa,aa,bb,bb,cc.
	keyOf := func(r int) string { return c.Terms[c.Docs[r][0]] }
	pairs := SortedNeighborhood(c, keyOf, 2)
	// Window 2 pairs adjacent records in sorted order: 4 pairs for 5 records.
	if len(pairs) != 4 {
		t.Fatalf("pairs = %v, want 4 adjacent pairs", pairs)
	}
	// Records sharing the key must be adjacent and hence paired.
	found := func(i, j int32) bool {
		for _, p := range pairs {
			if p.I == i && p.J == j {
				return true
			}
		}
		return false
	}
	if !found(0, 1) || !found(2, 3) {
		t.Errorf("same-key pairs missing from %v", pairs)
	}
}

func TestSortedNeighborhoodFullWindowIsComplete(t *testing.T) {
	c := corpus("aa", "bb", "cc", "dd")
	pairs := SortedNeighborhood(c, nil, 4)
	if len(pairs) != 6 {
		t.Errorf("window = n must produce all C(4,2)=6 pairs, got %d", len(pairs))
	}
	for _, p := range pairs {
		if p.I >= p.J {
			t.Errorf("pair %v not normalized", p)
		}
	}
}

func TestSortedNeighborhoodDefaultKeyUsesRarestTerm(t *testing.T) {
	// "rare" has df 2, "common" df 4: default key must sort the two rare
	// records together even with window 2.
	c := corpus(
		"common rare",
		"common aaa1",
		"common zzz9",
		"common rare",
	)
	pairs := SortedNeighborhood(c, nil, 2)
	found := false
	for _, p := range pairs {
		if p.I == 0 && p.J == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("rarest-term key should pair records 0 and 3, got %v", pairs)
	}
}

func TestMultiPassUnion(t *testing.T) {
	c := corpus("aa pp", "aa qq", "bb pp", "bb qq")
	firstTerm := func(r int) string { return c.Terms[c.Docs[r][0]] }
	secondTerm := func(r int) string { return c.Terms[c.Docs[r][1]] }
	single := SortedNeighborhood(c, firstTerm, 2)
	multi := MultiPass(c, []func(int) string{firstTerm, secondTerm}, 2)
	if len(multi) <= len(single) {
		t.Errorf("multi-pass %d pairs must exceed single pass %d", len(multi), len(single))
	}
	// Pairs must be unique.
	seen := map[[2]int32]bool{}
	for _, p := range multi {
		k := [2]int32{p.I, p.J}
		if seen[k] {
			t.Fatalf("duplicate pair %v", p)
		}
		seen[k] = true
	}
}

func TestBuildSourceMismatchError(t *testing.T) {
	c := corpus("aa bb", "aa cc")
	g, err := Build(c, []int{0}, Options{CrossSourceOnly: true})
	if err == nil || g != nil {
		t.Fatal("misaligned source labels must yield an error, not a panic or a graph")
	}
}

func TestBuildCanceledCheckpoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A single giant block: every record shares "common", so enumeration is
	// quadratic — exactly the shape cancellation must be able to interrupt.
	texts := make([]string, 600)
	for i := range texts {
		texts[i] = fmt.Sprintf("common u%da u%db", i, i)
	}
	c := corpus(texts...)
	g, err := Build(c, nil, Options{Check: guard.FromContext(ctx)})
	if g != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Build returned (%v, %v), want (nil, context.Canceled)", g, err)
	}
}

func TestTruncate(t *testing.T) {
	c := corpus(
		"aa bb cc",
		"aa bb dd",
		"cc dd ee",
		"aa cc ee",
	)
	g := mustBuild(t, c, nil, Options{})
	if g.NumPairs() < 3 {
		t.Fatalf("test corpus produced only %d pairs", g.NumPairs())
	}
	tr := Truncate(g, 2)
	if tr.NumPairs() != 2 {
		t.Fatalf("truncated to %d pairs, want 2", tr.NumPairs())
	}
	// Kept pairs retain their IDs and index entries.
	for pid, p := range tr.Pairs {
		if id, ok := tr.PairID(p.I, p.J); !ok || int(id) != pid {
			t.Errorf("pair %d lost or renumbered after truncation", pid)
		}
	}
	// TermPairs must reference only surviving IDs.
	for term, pairIDs := range tr.TermPairs {
		for _, pid := range pairIDs {
			if int(pid) >= tr.NumPairs() {
				t.Errorf("term %d references dropped pair %d", term, pid)
			}
		}
	}
	// Within-budget input is returned unchanged.
	if Truncate(g, g.NumPairs()) != g {
		t.Error("within-budget Truncate must be the identity")
	}
}
