package textproc

import (
	"fmt"
	"sort"
	"strings"
)

// Corpus is the tokenized view of a record collection. Term identifiers are
// dense indexes in [0, NumTerms), record token lists are sorted, de-duplicated
// term-ID sets. All downstream graph models (bipartite term/pair graph,
// record graph, term co-occurrence graph) are built from a Corpus.
type Corpus struct {
	// Terms maps term ID to surface form.
	Terms []string
	// Index maps surface form to term ID.
	Index map[string]int
	// Docs holds, per record, the sorted set of term IDs it contains.
	Docs [][]int32
	// Seqs holds, per record, the original token-ID sequence (with
	// duplicates, in order). Needed by the term co-occurrence graph of the
	// TextRank/TW-IDF baseline, which slides a window over the sequence.
	Seqs [][]int32
	// DF holds the document frequency of each term.
	DF []int
}

// NumRecords returns the number of records in the corpus.
func (c *Corpus) NumRecords() int { return len(c.Docs) }

// NumTerms returns the number of distinct terms in the corpus.
func (c *Corpus) NumTerms() int { return len(c.Terms) }

// CorpusOptions controls corpus construction.
type CorpusOptions struct {
	Tokenize TokenizeOptions
	// MaxDFRatio removes terms occurring in more than this fraction of
	// records ("remove the terms that are very frequent", §VII-A).
	// Zero or negative disables the filter.
	MaxDFRatio float64
	// MinDF removes terms occurring in fewer than MinDF records. Terms with
	// document frequency 1 connect no record pair and carry no signal for
	// entity resolution; the default of 0 keeps them (they are simply
	// isolated nodes in the bipartite graph).
	MinDF int
	// Stopwords are removed regardless of frequency — for domain knowledge
	// the df filter cannot see (e.g. "inc", "llc" in company data).
	Stopwords []string
}

// DefaultCorpusOptions mirrors the paper's pre-processing: tokenize and
// remove very frequent terms.
func DefaultCorpusOptions() CorpusOptions {
	return CorpusOptions{
		Tokenize:   DefaultTokenizeOptions(),
		MaxDFRatio: 0.15,
	}
}

// BuildCorpus tokenizes every text and assembles the corpus, applying the
// frequent-term filter. Term IDs are assigned in lexicographic order so that
// corpus construction is deterministic regardless of input order of equal
// texts.
func BuildCorpus(texts []string, opts CorpusOptions) *Corpus {
	n := len(texts)
	tokenized := make([][]string, n)
	df := make(map[string]int)
	for i, txt := range texts {
		toks := Tokenize(txt, opts.Tokenize)
		tokenized[i] = toks
		for _, t := range UniqueTokens(toks) {
			df[t]++
		}
	}

	stop := make(map[string]struct{}, len(opts.Stopwords))
	for _, w := range opts.Stopwords {
		stop[strings.ToLower(w)] = struct{}{}
	}

	maxDF := n + 1
	if opts.MaxDFRatio > 0 {
		maxDF = int(opts.MaxDFRatio * float64(n))
		if maxDF < 2 {
			maxDF = 2 // never filter so hard that nothing can match
		}
	}
	minDF := opts.MinDF

	kept := make([]string, 0, len(df))
	for t, f := range df {
		if f > maxDF || f < minDF {
			continue
		}
		if _, banned := stop[t]; banned {
			continue
		}
		kept = append(kept, t)
	}
	sort.Strings(kept)

	c := &Corpus{
		Terms: kept,
		Index: make(map[string]int, len(kept)),
		Docs:  make([][]int32, n),
		Seqs:  make([][]int32, n),
		DF:    make([]int, len(kept)),
	}
	for id, t := range kept {
		c.Index[t] = id
	}
	for i, toks := range tokenized {
		seq := make([]int32, 0, len(toks))
		set := make(map[int32]struct{}, len(toks))
		for _, t := range toks {
			id, ok := c.Index[t]
			if !ok {
				continue
			}
			seq = append(seq, int32(id))
			set[int32(id)] = struct{}{}
		}
		doc := make([]int32, 0, len(set))
		for id := range set {
			doc = append(doc, id)
		}
		sort.Slice(doc, func(a, b int) bool { return doc[a] < doc[b] })
		c.Docs[i] = doc
		c.Seqs[i] = seq
	}
	for _, doc := range c.Docs {
		for _, id := range doc {
			c.DF[id]++
		}
	}
	return c
}

// SharedTerms returns the sorted intersection of the term sets of records i
// and j. Both inputs are sorted, so this is a linear merge.
func (c *Corpus) SharedTerms(i, j int) []int32 {
	return IntersectSorted(c.Docs[i], c.Docs[j])
}

// IntersectSorted intersects two ascending int32 slices.
func IntersectSorted(a, b []int32) []int32 {
	var out []int32
	x, y := 0, 0
	for x < len(a) && y < len(b) {
		switch {
		case a[x] < b[y]:
			x++
		case a[x] > b[y]:
			y++
		default:
			out = append(out, a[x])
			x++
			y++
		}
	}
	return out
}

// IntersectCount counts, without allocating, the size of the intersection of
// two ascending int32 slices.
func IntersectCount(a, b []int32) int {
	n := 0
	x, y := 0, 0
	for x < len(a) && y < len(b) {
		switch {
		case a[x] < b[y]:
			x++
		case a[x] > b[y]:
			y++
		default:
			n++
			x++
			y++
		}
	}
	return n
}

// Validate performs internal consistency checks and returns an error
// describing the first violation found. It is used by tests and by the
// dataset loaders to fail fast on malformed input.
func (c *Corpus) Validate() error {
	if len(c.Terms) != len(c.DF) {
		return fmt.Errorf("textproc: %d terms but %d df entries", len(c.Terms), len(c.DF))
	}
	if len(c.Docs) != len(c.Seqs) {
		return fmt.Errorf("textproc: %d docs but %d seqs", len(c.Docs), len(c.Seqs))
	}
	for i, doc := range c.Docs {
		for k, id := range doc {
			if id < 0 || int(id) >= len(c.Terms) {
				return fmt.Errorf("textproc: doc %d contains out-of-range term %d", i, id)
			}
			if k > 0 && doc[k-1] >= id {
				return fmt.Errorf("textproc: doc %d term set not strictly ascending", i)
			}
		}
	}
	df := make([]int, len(c.Terms))
	for _, doc := range c.Docs {
		for _, id := range doc {
			df[id]++
		}
	}
	for t, f := range df {
		if f != c.DF[t] {
			return fmt.Errorf("textproc: term %q df mismatch: stored %d, actual %d", c.Terms[t], c.DF[t], f)
		}
	}
	return nil
}
