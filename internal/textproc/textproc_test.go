package textproc

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	tests := []struct {
		name string
		in   string
		opts TokenizeOptions
		want []string
	}{
		{
			name: "default splits on punctuation and lowercases",
			in:   "Sony PSLX350H, Turntable!",
			opts: DefaultTokenizeOptions(),
			want: []string{"sony", "pslx350h", "turntable"},
		},
		{
			name: "keeps digit tokens",
			in:   "call 2125551234 now",
			opts: DefaultTokenizeOptions(),
			want: []string{"call", "2125551234", "now"},
		},
		{
			name: "drops digit tokens when disabled",
			in:   "call 2125551234 now",
			opts: TokenizeOptions{Lowercase: true, MinLen: 2},
			want: []string{"call", "now"},
		},
		{
			name: "min length filter",
			in:   "a bc d ef",
			opts: TokenizeOptions{Lowercase: true, MinLen: 2, KeepDigits: true},
			want: []string{"bc", "ef"},
		},
		{
			name: "empty input",
			in:   "",
			opts: DefaultTokenizeOptions(),
			want: nil,
		},
		{
			name: "only punctuation",
			in:   "--- ,,, !!!",
			opts: DefaultTokenizeOptions(),
			want: nil,
		},
		{
			name: "preserves case when not lowering",
			in:   "Sony TV",
			opts: TokenizeOptions{MinLen: 2, KeepDigits: true},
			want: []string{"Sony", "TV"},
		},
		{
			name: "unicode letters survive",
			in:   "café naïve",
			opts: DefaultTokenizeOptions(),
			want: []string{"café", "naïve"},
		},
		{
			name: "trailing token flushed",
			in:   "abc def",
			opts: DefaultTokenizeOptions(),
			want: []string{"abc", "def"},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Tokenize(tc.in, tc.opts)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("Tokenize(%q) = %v, want %v", tc.in, got, tc.want)
			}
		})
	}
}

func TestTokenizeNeverPanicsAndTokensAreClean(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s, DefaultTokenizeOptions())
		for _, tok := range toks {
			if len(tok) == 0 {
				return false
			}
			if strings.ContainsAny(tok, " ,.!-") {
				return false
			}
			if tok != strings.ToLower(tok) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUniqueTokens(t *testing.T) {
	got := UniqueTokens([]string{"a", "b", "a", "c", "b"})
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("UniqueTokens = %v, want %v", got, want)
	}
	if got := UniqueTokens(nil); len(got) != 0 {
		t.Errorf("UniqueTokens(nil) = %v, want empty", got)
	}
}

func TestBuildCorpus(t *testing.T) {
	texts := []string{
		"sony turntable pslx350h",
		"sony turntable deluxe",
		"pioneer receiver vsx",
	}
	c := BuildCorpus(texts, CorpusOptions{Tokenize: DefaultTokenizeOptions()})
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumRecords() != 3 {
		t.Fatalf("NumRecords = %d, want 3", c.NumRecords())
	}
	id, ok := c.Index["sony"]
	if !ok {
		t.Fatal("term sony missing")
	}
	if c.DF[id] != 2 {
		t.Errorf("df(sony) = %d, want 2", c.DF[id])
	}
	shared := c.SharedTerms(0, 1)
	if len(shared) != 2 {
		t.Errorf("records 0,1 share %d terms, want 2 (sony, turntable)", len(shared))
	}
	if n := IntersectCount(c.Docs[0], c.Docs[2]); n != 0 {
		t.Errorf("records 0,2 share %d terms, want 0", n)
	}
}

func TestBuildCorpusFrequentTermFilter(t *testing.T) {
	// "common" appears in all 10 records and must be filtered at ratio 0.5.
	texts := make([]string, 10)
	for i := range texts {
		texts[i] = "common unique" + string(rune('a'+i))
	}
	c := BuildCorpus(texts, CorpusOptions{
		Tokenize:   DefaultTokenizeOptions(),
		MaxDFRatio: 0.5,
	})
	if _, ok := c.Index["common"]; ok {
		t.Error("frequent term 'common' should have been removed")
	}
	if c.NumTerms() != 10 {
		t.Errorf("NumTerms = %d, want 10 unique tokens", c.NumTerms())
	}
}

func TestBuildCorpusMinDF(t *testing.T) {
	texts := []string{"aa bb", "aa cc"}
	c := BuildCorpus(texts, CorpusOptions{
		Tokenize: DefaultTokenizeOptions(),
		MinDF:    2,
	})
	if c.NumTerms() != 1 {
		t.Fatalf("NumTerms = %d, want 1 (only 'aa' has df>=2)", c.NumTerms())
	}
	if c.Terms[0] != "aa" {
		t.Errorf("kept term = %q, want aa", c.Terms[0])
	}
}

func TestBuildCorpusDeterminism(t *testing.T) {
	texts := []string{"zebra apple", "apple mango", "mango zebra kiwi"}
	a := BuildCorpus(texts, DefaultCorpusOptions())
	b := BuildCorpus(texts, DefaultCorpusOptions())
	if !reflect.DeepEqual(a, b) {
		t.Error("BuildCorpus is not deterministic")
	}
	if !sort.StringsAreSorted(a.Terms) {
		t.Error("terms are not assigned in sorted order")
	}
}

func TestIntersectSortedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		a := randomSortedSet(rng, 30, 50)
		b := randomSortedSet(rng, 30, 50)
		got := IntersectSorted(a, b)
		want := naiveIntersect(a, b)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("IntersectSorted(%v,%v) = %v, want %v", a, b, got, want)
		}
		if IntersectCount(a, b) != len(want) {
			t.Fatalf("IntersectCount mismatch for %v,%v", a, b)
		}
	}
}

func randomSortedSet(rng *rand.Rand, maxLen, maxVal int) []int32 {
	n := rng.Intn(maxLen)
	set := make(map[int32]struct{})
	for i := 0; i < n; i++ {
		set[int32(rng.Intn(maxVal))] = struct{}{}
	}
	out := make([]int32, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func naiveIntersect(a, b []int32) []int32 {
	var out []int32
	for _, x := range a {
		for _, y := range b {
			if x == y {
				out = append(out, x)
			}
		}
	}
	return out
}

func TestValidateCatchesCorruption(t *testing.T) {
	c := BuildCorpus([]string{"aa bb", "bb cc"}, DefaultCorpusOptions())
	c.DF[0]++
	if err := c.Validate(); err == nil {
		t.Error("Validate should catch df corruption")
	}
}

func TestBuildCorpusStopwords(t *testing.T) {
	c := BuildCorpus(
		[]string{"acme inc widgets", "acme llc gadgets"},
		CorpusOptions{
			Tokenize:  DefaultTokenizeOptions(),
			Stopwords: []string{"INC", "llc"},
		},
	)
	if _, ok := c.Index["inc"]; ok {
		t.Error("stopword inc survived (case-insensitive match expected)")
	}
	if _, ok := c.Index["llc"]; ok {
		t.Error("stopword llc survived")
	}
	if _, ok := c.Index["acme"]; !ok {
		t.Error("non-stopword removed")
	}
}
