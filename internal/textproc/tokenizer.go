// Package textproc implements the text pre-processing pipeline of the
// paper (§VII-A): tokenization of record contents, normalization, and
// removal of very frequent terms that would dilute the effect of
// discriminative terms.
package textproc

import (
	"strings"
	"unicode"
)

// TokenizeOptions controls how raw record text is split into terms.
type TokenizeOptions struct {
	// Lowercase folds all tokens to lower case. The paper's datasets are
	// matched case-insensitively.
	Lowercase bool
	// MinLen drops tokens shorter than this many runes. Zero keeps all.
	MinLen int
	// KeepDigits keeps purely numeric tokens (phone numbers, years and
	// street numbers are discriminative in the benchmark domains).
	KeepDigits bool
}

// DefaultTokenizeOptions mirrors the common practice the paper refers to:
// lowercase, drop 1-character fragments, keep numeric tokens.
func DefaultTokenizeOptions() TokenizeOptions {
	return TokenizeOptions{Lowercase: true, MinLen: 2, KeepDigits: true}
}

// Tokenize splits text into terms on any rune that is not a letter or a
// digit. Alphanumeric model codes such as "pslx350h" survive as single
// tokens, which is essential for the discriminative-term analysis.
func Tokenize(text string, opts TokenizeOptions) []string {
	if opts.Lowercase {
		text = strings.ToLower(text)
	}
	var tokens []string
	start := -1
	flush := func(end int) {
		if start < 0 {
			return
		}
		tok := text[start:end]
		start = -1
		if len([]rune(tok)) < opts.MinLen {
			return
		}
		if !opts.KeepDigits && isAllDigits(tok) {
			return
		}
		tokens = append(tokens, tok)
	}
	for i, r := range text {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		flush(i)
	}
	flush(len(text))
	return tokens
}

func isAllDigits(s string) bool {
	for _, r := range s {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return len(s) > 0
}

// UniqueTokens returns the distinct tokens of a record, preserving first
// occurrence order. The paper's graph models connect terms and records by
// containment, so duplicate occurrences inside one record are irrelevant.
func UniqueTokens(tokens []string) []string {
	seen := make(map[string]struct{}, len(tokens))
	out := tokens[:0:0]
	for _, t := range tokens {
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		out = append(out, t)
	}
	return out
}
