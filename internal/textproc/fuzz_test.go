package textproc

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzTokenize drives the tokenizer with arbitrary text and option
// combinations. Tokenize feeds every downstream stage, so its contract is
// checked structurally: no panics, every token is a maximal alphanumeric
// run drawn from the (folded) input, MinLen and KeepDigits are honored, and
// UniqueTokens stays idempotent.
func FuzzTokenize(f *testing.F) {
	f.Add("Sony PSLX350H turntable", true, 2, true)
	f.Add("caffè 北京 & 123-456", false, 0, false)
	f.Add("", true, 1, true)
	f.Add("a b c aa bb aa", true, 2, true)
	f.Add(strings.Repeat("x", 300)+" \x00\xff invalid utf8", true, 2, true)
	f.Fuzz(func(t *testing.T, text string, lowercase bool, minLen int, keepDigits bool) {
		if minLen < 0 || minLen > 1<<16 {
			return
		}
		opts := TokenizeOptions{Lowercase: lowercase, MinLen: minLen, KeepDigits: keepDigits}
		tokens := Tokenize(text, opts)
		folded := text
		if lowercase {
			folded = strings.ToLower(text)
		}
		for _, tok := range tokens {
			if tok == "" {
				t.Fatal("empty token")
			}
			if len([]rune(tok)) < minLen {
				t.Fatalf("token %q shorter than MinLen %d", tok, minLen)
			}
			if !keepDigits && isAllDigits(tok) {
				t.Fatalf("numeric token %q survived KeepDigits=false", tok)
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					t.Fatalf("token %q contains separator rune %q", tok, r)
				}
			}
			if !strings.Contains(folded, tok) {
				t.Fatalf("token %q not a substring of the folded input", tok)
			}
		}
		unique := UniqueTokens(tokens)
		if len(unique) > len(tokens) {
			t.Fatalf("UniqueTokens grew the slice: %d -> %d", len(tokens), len(unique))
		}
		again := UniqueTokens(unique)
		if len(again) != len(unique) {
			t.Fatalf("UniqueTokens not idempotent: %d -> %d", len(unique), len(again))
		}
	})
}
