package eval

import "math"

// NaN marks a cell the original publication did not report.
var NaN = math.NaN()

// RefRow is one row of the paper's Table II (F1 per dataset).
type RefRow struct {
	Group  string
	Method string
	// Implemented reports whether this reproduction implements the method
	// (true for string-distance and graph-theoretic methods). For the
	// machine-learning and crowd-sourcing rows, the original authors also
	// only copied numbers from the cited publications.
	Implemented                 bool
	Restaurant, Product, Paper1 float64
}

// TableII holds the published F1 scores of all 14 competitors plus the
// proposed method (Table II of the paper), used for paper-vs-measured
// reporting in EXPERIMENTS.md and for printing reference rows in the Table
// II harness.
var TableII = []RefRow{
	{"String-distance", "Jaccard", true, 0.836, 0.332, 0.792},
	{"String-distance", "TF-IDF", true, 0.871, 0.658, 0.821},
	{"Machine-learning", "Gaussian Mixture Model", false, 0.704, NaN, NaN},
	{"Machine-learning", "HGM+Bootstrap", false, 0.844, NaN, NaN},
	{"Machine-learning", "MLE", false, 0.904, NaN, NaN},
	{"Machine-learning", "SVM", false, 0.922, NaN, 0.824},
	{"Crowd-sourcing", "CrowdER", false, 0.934, 0.800, 0.824},
	{"Crowd-sourcing", "TransM", false, 0.930, 0.792, 0.740},
	{"Crowd-sourcing", "GCER", false, 0.930, 0.760, 0.785},
	{"Crowd-sourcing", "ACD", false, 0.934, 0.805, 0.820},
	{"Crowd-sourcing", "Power+", false, 0.934, NaN, 0.820},
	{"Graph-theoretic baseline", "SimRank", true, 0.645, 0.376, 0.730},
	{"Graph-theoretic baseline", "PageRank", true, 0.905, 0.564, 0.316},
	{"Graph-theoretic baseline", "Hybrid", true, 0.946, 0.593, 0.748},
	{"Proposed", "ITER+CliqueRank", true, 0.927, 0.764, 0.890},
}

// TableIV holds the published Spearman coefficients (Table IV).
var TableIV = map[string][3]float64{
	"PageRank": {0.30, 0.02, 0.08},
	"ITER":     {0.96, 0.76, 0.80},
}

// TableV holds the published per-iteration F1 of the reinforcement loop
// (Table V), indexed by fusion iteration 1..5.
var TableV = [5][3]float64{
	{0.916, 0.543, 0.844},
	{0.935, 0.712, 0.888},
	{0.931, 0.747, 0.889},
	{0.931, 0.754, 0.890},
	{0.927, 0.764, 0.890},
}

// TableIIIRSSSpeedup holds the published CliqueRank-over-RSS speedups
// (Table III): 1.3x, 1.5x, 60x.
var TableIIIRSSSpeedup = [3]float64{1.3, 1.5, 60}
