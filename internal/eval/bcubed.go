package eval

// B-cubed cluster evaluation (Bagga & Baldwin). Pairwise F1 — the paper's
// metric — weights large clusters quadratically; B-cubed averages per-record
// precision/recall and is the standard complementary metric for entity
// resolution with skewed cluster sizes (the Paper benchmark's 192-record
// entity dominates pairwise F1 but counts like any other records here).

// BCubed computes B-cubed precision, recall and F1 of a predicted
// clustering against gold entity labels. predicted holds, per cluster, the
// record indexes; gold[i] is record i's entity label (records with negative
// labels are ignored). Records absent from predicted are treated as
// singletons.
func BCubed(predicted [][]int, gold []int) PRF {
	n := len(gold)
	clusterOf := make([]int, n)
	for i := range clusterOf {
		clusterOf[i] = -1
	}
	for cid, members := range predicted {
		for _, r := range members {
			if r >= 0 && r < n {
				clusterOf[r] = cid
			}
		}
	}
	// Singleton-ize unassigned records with fresh cluster ids.
	next := len(predicted)
	for i, c := range clusterOf {
		if c < 0 {
			clusterOf[i] = next
			next++
		}
	}

	// Sizes of (cluster, entity) intersections.
	type ce struct{ c, e int }
	inter := make(map[ce]int)
	clusterSize := make(map[int]int)
	entitySize := make(map[int]int)
	counted := 0
	for i, e := range gold {
		if e < 0 {
			continue
		}
		counted++
		c := clusterOf[i]
		inter[ce{c, e}]++
		clusterSize[c]++
		entitySize[e]++
	}
	if counted == 0 {
		return PRF{}
	}
	var precision, recall float64
	for i, e := range gold {
		if e < 0 {
			continue
		}
		c := clusterOf[i]
		overlap := float64(inter[ce{c, e}])
		precision += overlap / float64(clusterSize[c])
		recall += overlap / float64(entitySize[e])
	}
	precision /= float64(counted)
	recall /= float64(counted)
	out := PRF{Precision: precision, Recall: recall}
	if precision+recall > 0 {
		out.F1 = 2 * precision * recall / (precision + recall)
	}
	return out
}
