package eval

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/blocking"
	"repro/internal/textproc"
)

func pairs(ijs ...[2]int32) []blocking.Pair {
	out := make([]blocking.Pair, len(ijs))
	for k, ij := range ijs {
		out[k] = blocking.Pair{I: ij[0], J: ij[1]}
	}
	return out
}

func truthOf(ps []blocking.Pair, idx ...int) map[uint64]bool {
	m := make(map[uint64]bool)
	for _, k := range idx {
		m[blocking.Key(ps[k].I, ps[k].J)] = true
	}
	return m
}

func TestEvaluatePairsKnown(t *testing.T) {
	ps := pairs([2]int32{0, 1}, [2]int32{0, 2}, [2]int32{1, 2}, [2]int32{3, 4})
	truth := truthOf(ps, 0, 3) // 2 true matches, both candidates
	r := EvaluatePairs(ps, []bool{true, true, false, false}, truth, 2)
	if r.TP != 1 || r.FP != 1 || r.FN != 1 {
		t.Fatalf("TP/FP/FN = %d/%d/%d, want 1/1/1", r.TP, r.FP, r.FN)
	}
	if math.Abs(r.Precision-0.5) > 1e-12 || math.Abs(r.Recall-0.5) > 1e-12 {
		t.Errorf("P/R = %g/%g, want 0.5/0.5", r.Precision, r.Recall)
	}
	if math.Abs(r.F1-0.5) > 1e-12 {
		t.Errorf("F1 = %g, want 0.5", r.F1)
	}
}

func TestEvaluatePairsCountsMissedCandidates(t *testing.T) {
	// 3 true matches overall, only 1 in the candidate set: recall is capped
	// by blocking.
	ps := pairs([2]int32{0, 1})
	truth := map[uint64]bool{
		blocking.Key(0, 1): true,
		blocking.Key(2, 3): true,
		blocking.Key(4, 5): true,
	}
	r := EvaluatePairs(ps, []bool{true}, truth, 3)
	if r.Recall > 0.34 {
		t.Errorf("recall = %g, want 1/3", r.Recall)
	}
	if r.Precision != 1 {
		t.Errorf("precision = %g, want 1", r.Precision)
	}
}

func TestEvaluatePairsEmptyPrediction(t *testing.T) {
	ps := pairs([2]int32{0, 1})
	r := EvaluatePairs(ps, []bool{false}, truthOf(ps, 0), 1)
	if r.F1 != 0 || r.Precision != 0 || r.Recall != 0 {
		t.Errorf("empty prediction must score 0, got %+v", r)
	}
}

func TestBestThresholdFindsSeparator(t *testing.T) {
	ps := pairs([2]int32{0, 1}, [2]int32{2, 3}, [2]int32{4, 5}, [2]int32{6, 7})
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	truth := truthOf(ps, 0, 1)
	th, r := BestThreshold(ps, scores, truth, 2, 1000)
	if r.F1 != 1 {
		t.Fatalf("best F1 = %g, want 1 (perfectly separable)", r.F1)
	}
	if th <= 0.2 || th > 0.8 {
		t.Errorf("threshold = %g, want in (0.2, 0.8]", th)
	}
}

func TestBestThresholdMatchesExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(60)
		ps := make([]blocking.Pair, n)
		scores := make([]float64, n)
		truth := make(map[uint64]bool)
		total := 0
		for k := range ps {
			ps[k] = blocking.Pair{I: int32(2 * k), J: int32(2*k + 1)}
			scores[k] = rng.Float64()
			if rng.Intn(2) == 0 {
				truth[blocking.Key(ps[k].I, ps[k].J)] = true
				total++
			}
		}
		if total == 0 {
			continue
		}
		_, got := BestThreshold(ps, scores, truth, total, 1000)
		// Exhaustive sweep over every observed score as threshold.
		best := 0.0
		for _, th := range scores {
			if r := Threshold(ps, scores, th, truth, total); r.F1 > best {
				best = r.F1
			}
		}
		// The quantized sweep may differ slightly from the exhaustive one,
		// but with 1000 steps it must come very close and never exceed it
		// by construction of the exhaustive set... it can exceed when a
		// quantized threshold separates two scores better than any exact
		// score does — so only assert closeness from below.
		if got.F1 < best-0.02 {
			t.Fatalf("trial %d: quantized best F1 %g far below exhaustive %g", trial, got.F1, best)
		}
	}
}

func TestBestThresholdAllZeroScores(t *testing.T) {
	ps := pairs([2]int32{0, 1})
	_, r := BestThreshold(ps, []float64{0}, truthOf(ps, 0), 1, 1000)
	if r.F1 != 0 {
		t.Errorf("all-zero scores must give F1 0, got %g", r.F1)
	}
}

// mustSpearman fails the test on the (caller-bug) length-mismatch error.
func mustSpearman(t *testing.T, a, b []float64) float64 {
	t.Helper()
	rho, err := Spearman(a, b)
	if err != nil {
		t.Fatalf("Spearman: %v", err)
	}
	return rho
}

func TestSpearmanKnown(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if got := mustSpearman(t, a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("Spearman(a,a) = %g, want 1", got)
	}
	b := []float64{5, 4, 3, 2, 1}
	if got := mustSpearman(t, a, b); math.Abs(got+1) > 1e-12 {
		t.Errorf("Spearman(a,reversed) = %g, want -1", got)
	}
	// Monotone transform preserves perfect correlation.
	c := []float64{1, 4, 9, 16, 25}
	if got := mustSpearman(t, a, c); math.Abs(got-1) > 1e-12 {
		t.Errorf("Spearman(a, a^2) = %g, want 1", got)
	}
}

func TestSpearmanTies(t *testing.T) {
	a := []float64{1, 2, 2, 3}
	b := []float64{1, 2, 2, 3}
	if got := mustSpearman(t, a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("Spearman with aligned ties = %g, want 1", got)
	}
	flat := []float64{7, 7, 7, 7}
	if got := mustSpearman(t, a, flat); got != 0 {
		t.Errorf("Spearman against constant = %g, want 0", got)
	}
}

func TestSpearmanLengthMismatch(t *testing.T) {
	if _, err := Spearman([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("Spearman accepted samples of different lengths")
	}
}

func TestSpearmanRandomInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(40)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = rng.NormFloat64()
			b[i] = rng.NormFloat64()
		}
		got := mustSpearman(t, a, b)
		if got < -1-1e-9 || got > 1+1e-9 {
			t.Fatalf("Spearman out of [-1,1]: %g", got)
		}
		if math.Abs(got-mustSpearman(t, b, a)) > 1e-9 {
			t.Fatal("Spearman must be symmetric")
		}
	}
}

func TestTermScores(t *testing.T) {
	c := textproc.BuildCorpus(
		[]string{"aa bb", "aa bb", "aa cc", "dd"},
		textproc.CorpusOptions{Tokenize: textproc.DefaultTokenizeOptions()},
	)
	g, err := blocking.Build(c, nil, blocking.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// ground truth: records 0 and 1 match.
	truth := map[uint64]bool{blocking.Key(0, 1): true}
	scores := TermScores(g, truth)
	bb := c.Index["bb"]
	// bb connects only (0,1), a match: score 1.
	if scores[bb] != 1 {
		t.Errorf("score(bb) = %g, want 1", scores[bb])
	}
	aa := c.Index["aa"]
	// aa connects (0,1) match, (0,2) and (1,2) non-match: 1/3.
	if math.Abs(scores[aa]-1.0/3) > 1e-12 {
		t.Errorf("score(aa) = %g, want 1/3", scores[aa])
	}
	dd := c.Index["dd"]
	if scores[dd] != -1 {
		t.Errorf("score(dd) = %g, want -1 (no pairs)", scores[dd])
	}
}

func TestRankSeries(t *testing.T) {
	weights := []float64{0.9, 0.1, 0.5, 0.7}
	scores := []float64{1, 0, -1, 0.5}
	// term 2 skipped; order by weight desc: t0(1), t3(0.5), t1(0)
	got := RankSeries(weights, scores)
	want := []float64{1, 0.5, 0}
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("series[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestReferenceTablesWellFormed(t *testing.T) {
	if len(TableII) != 15 {
		t.Errorf("TableII rows = %d, want 15 (14 competitors + proposed)", len(TableII))
	}
	implemented := 0
	for _, r := range TableII {
		if r.Implemented {
			implemented++
		}
		if r.Method == "" || r.Group == "" {
			t.Errorf("row %+v missing labels", r)
		}
	}
	if implemented != 6 {
		t.Errorf("implemented rows = %d, want 6", implemented)
	}
	if TableIV["ITER"][0] != 0.96 {
		t.Error("TableIV ITER Restaurant must be 0.96")
	}
	if TableV[4][2] != 0.890 {
		t.Error("TableV iteration 5 Paper must be 0.890")
	}
}

func TestBCubedPerfectClustering(t *testing.T) {
	gold := []int{0, 0, 1, 1, 2}
	predicted := [][]int{{0, 1}, {2, 3}, {4}}
	r := BCubed(predicted, gold)
	if r.Precision != 1 || r.Recall != 1 || r.F1 != 1 {
		t.Errorf("perfect clustering scored %+v", r)
	}
}

func TestBCubedAllSingletons(t *testing.T) {
	gold := []int{0, 0, 0, 0}
	r := BCubed(nil, gold) // no predicted clusters: all singletons
	if r.Precision != 1 {
		t.Errorf("singleton precision = %g, want 1", r.Precision)
	}
	if math.Abs(r.Recall-0.25) > 1e-12 {
		t.Errorf("singleton recall = %g, want 0.25", r.Recall)
	}
}

func TestBCubedAllMerged(t *testing.T) {
	gold := []int{0, 0, 1, 1}
	predicted := [][]int{{0, 1, 2, 3}}
	r := BCubed(predicted, gold)
	if r.Recall != 1 {
		t.Errorf("merged recall = %g, want 1", r.Recall)
	}
	if math.Abs(r.Precision-0.5) > 1e-12 {
		t.Errorf("merged precision = %g, want 0.5", r.Precision)
	}
}

func TestBCubedHandComputed(t *testing.T) {
	// gold: {0,1,2} entity A, {3,4} entity B.
	// predicted: {0,1}, {2,3}, {4}.
	gold := []int{0, 0, 0, 1, 1}
	predicted := [][]int{{0, 1}, {2, 3}, {4}}
	r := BCubed(predicted, gold)
	// precision: r0: 2/2, r1: 2/2, r2: 1/2, r3: 1/2, r4: 1/1 → 4/5 = 0.8
	if math.Abs(r.Precision-0.8) > 1e-12 {
		t.Errorf("precision = %g, want 0.8", r.Precision)
	}
	// recall: r0: 2/3, r1: 2/3, r2: 1/3, r3: 1/2, r4: 1/2 → (2/3+2/3+1/3+1/2+1/2)/5 = 8/15
	if math.Abs(r.Recall-8.0/15) > 1e-12 {
		t.Errorf("recall = %g, want 8/15", r.Recall)
	}
}

func TestBCubedIgnoresUnlabeled(t *testing.T) {
	gold := []int{0, 0, -1}
	predicted := [][]int{{0, 1, 2}}
	r := BCubed(predicted, gold)
	// record 2 ignored: precision per record = 2/2 (intersection within
	// labeled subset over labeled cluster size).
	if r.Precision != 1 || r.Recall != 1 {
		t.Errorf("unlabeled records must be excluded, got %+v", r)
	}
}

func TestBCubedEmptyGold(t *testing.T) {
	r := BCubed([][]int{{0}}, []int{-1})
	if r.Precision != 0 || r.Recall != 0 || r.F1 != 0 {
		t.Errorf("no labeled records must score zero, got %+v", r)
	}
}

func TestPRCurveMonotoneRecall(t *testing.T) {
	ps := pairs([2]int32{0, 1}, [2]int32{2, 3}, [2]int32{4, 5}, [2]int32{6, 7})
	scores := []float64{0.9, 0.7, 0.7, 0.1}
	truth := truthOf(ps, 0, 1)
	curve := PRCurve(ps, scores, truth, 2)
	// Distinct scores: 0.9, 0.7, 0.1 → 3 points.
	if len(curve) != 3 {
		t.Fatalf("curve has %d points, want 3", len(curve))
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Recall < curve[i-1].Recall {
			t.Error("recall must be non-decreasing along the curve")
		}
		if curve[i].Threshold >= curve[i-1].Threshold {
			t.Error("thresholds must descend")
		}
	}
	if last := curve[len(curve)-1]; last.Recall != 1 {
		t.Errorf("final recall = %g, want 1 (all true pairs are candidates)", last.Recall)
	}
}

func TestPRCurveBestF1MatchesExhaustiveSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(50)
		ps := make([]blocking.Pair, n)
		scores := make([]float64, n)
		truth := make(map[uint64]bool)
		total := 0
		for k := range ps {
			ps[k] = blocking.Pair{I: int32(2 * k), J: int32(2*k + 1)}
			scores[k] = rng.Float64()
			if rng.Intn(2) == 0 {
				truth[blocking.Key(ps[k].I, ps[k].J)] = true
				total++
			}
		}
		if total == 0 {
			continue
		}
		best := BestF1(PRCurve(ps, scores, truth, total))
		exhaustive := 0.0
		for _, th := range scores {
			if r := Threshold(ps, scores, th, truth, total); r.F1 > exhaustive {
				exhaustive = r.F1
			}
		}
		if math.Abs(best.F1-exhaustive) > 1e-12 {
			t.Fatalf("trial %d: curve best F1 %g != exhaustive %g", trial, best.F1, exhaustive)
		}
	}
}

func TestAveragePrecision(t *testing.T) {
	// Perfect ranking: both matches scored above both non-matches → AP 1.
	ps := pairs([2]int32{0, 1}, [2]int32{2, 3}, [2]int32{4, 5}, [2]int32{6, 7})
	truth := truthOf(ps, 0, 1)
	perfect := PRCurve(ps, []float64{0.9, 0.8, 0.2, 0.1}, truth, 2)
	if ap := AveragePrecision(perfect); math.Abs(ap-1) > 1e-12 {
		t.Errorf("perfect ranking AP = %g, want 1", ap)
	}
	// Inverted ranking scores far lower.
	inverted := PRCurve(ps, []float64{0.1, 0.2, 0.8, 0.9}, truth, 2)
	if ap := AveragePrecision(inverted); ap >= 0.6 {
		t.Errorf("inverted ranking AP = %g, want < 0.6", ap)
	}
}
