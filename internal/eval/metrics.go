// Package eval implements the paper's evaluation protocol (§VII): pairwise
// precision/recall/F1, the automatic 1000-value threshold sweep used for all
// score-based competitors, Spearman's rank correlation for Table IV, the
// score(t) discriminativeness oracle of §VII-E, and the literature constants
// for the machine-learning and crowd-based rows of Table II.
package eval

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/blocking"
)

// PRF is a pairwise precision/recall/F1 result.
type PRF struct {
	Precision, Recall, F1 float64
	TP, FP, FN            int
}

// compute fills the derived fields from the counts.
func compute(tp, fp, fn int) PRF {
	r := PRF{TP: tp, FP: fp, FN: fn}
	if tp+fp > 0 {
		r.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		r.Recall = float64(tp) / float64(tp+fn)
	}
	if r.Precision+r.Recall > 0 {
		r.F1 = 2 * r.Precision * r.Recall / (r.Precision + r.Recall)
	}
	return r
}

// EvaluatePairs scores a predicted match set against ground truth.
// predicted[k] marks candidate pair k as a match; totalTrue is the number of
// ground-truth matching pairs in the dataset (true matches outside the
// candidate set count as false negatives, so blocking recall is part of the
// measured recall, as in the paper).
func EvaluatePairs(pairs []blocking.Pair, predicted []bool, truth map[uint64]bool, totalTrue int) PRF {
	tp, fp := 0, 0
	for k, p := range pairs {
		if !predicted[k] {
			continue
		}
		if truth[blocking.Key(p.I, p.J)] {
			tp++
		} else {
			fp++
		}
	}
	return compute(tp, fp, totalTrue-tp)
}

// Threshold classifies candidate pairs by score >= th and evaluates.
func Threshold(pairs []blocking.Pair, scores []float64, th float64, truth map[uint64]bool, totalTrue int) PRF {
	predicted := make([]bool, len(pairs))
	for k, s := range scores {
		predicted[k] = s >= th
	}
	return EvaluatePairs(pairs, predicted, truth, totalTrue)
}

// BestThreshold reproduces the paper's parameter-setting protocol for
// score-based methods (§VII-C): quantize [0, max(score)] into `steps`
// discrete thresholds and return the one with the highest F1 — "an upper
// bound of manually tuned parameters". The sweep runs in O(n log n) by
// sorting pairs once and walking thresholds from high to low.
func BestThreshold(pairs []blocking.Pair, scores []float64, truth map[uint64]bool, totalTrue, steps int) (float64, PRF) {
	if steps <= 0 {
		steps = 1000
	}
	type scored struct {
		s     float64
		match bool
	}
	items := make([]scored, len(pairs))
	maxScore := 0.0
	for k, p := range pairs {
		items[k] = scored{s: scores[k], match: truth[blocking.Key(p.I, p.J)]}
		if scores[k] > maxScore {
			maxScore = scores[k]
		}
	}
	if maxScore == 0 {
		return 0, compute(0, 0, totalTrue)
	}
	sort.Slice(items, func(i, j int) bool { return items[i].s > items[j].s })

	bestTh, best := maxScore, PRF{FN: totalTrue}
	tp, fp := 0, 0
	idx := 0
	for step := steps; step >= 1; step-- {
		th := maxScore * float64(step) / float64(steps)
		for idx < len(items) && items[idx].s >= th {
			if items[idx].match {
				tp++
			} else {
				fp++
			}
			idx++
		}
		if r := compute(tp, fp, totalTrue-tp); r.F1 > best.F1 {
			best = r
			bestTh = th
		}
	}
	return bestTh, best
}

// Spearman returns Spearman's rank correlation coefficient between two
// paired samples, using average ranks for ties (the tie-aware definition,
// computed as Pearson correlation of the rank vectors). Samples of
// different lengths are a caller error, reported rather than panicking so
// the statistic stays safe on externally supplied vectors; fewer than two
// observations yield 0.
func Spearman(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("eval: Spearman requires equal-length samples, got %d and %d", len(a), len(b))
	}
	if len(a) < 2 {
		return 0, nil
	}
	ra, rb := ranks(a), ranks(b)
	return pearson(ra, rb), nil
}

func ranks(x []float64) []float64 {
	n := len(x)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return x[idx[i]] < x[idx[j]] })
	r := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && x[idx[j+1]] == x[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			r[idx[k]] = avg
		}
		i = j + 1
	}
	return r
}

func pearson(a, b []float64) float64 {
	n := float64(len(a))
	var sa, sb float64
	for i := range a {
		sa += a[i]
		sb += b[i]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

// TermScores computes the paper's score(t) oracle (§VII-E): the fraction of
// pair nodes connected to term t that are ground-truth matches. Terms with
// no connected pair (P_t = 0) get -1 and should be excluded from rank
// comparisons.
func TermScores(g *blocking.Graph, truth map[uint64]bool) []float64 {
	out := make([]float64, g.NumTerms)
	for t := range out {
		pairIDs := g.TermPairs[t]
		if len(pairIDs) == 0 {
			out[t] = -1
			continue
		}
		match := 0
		for _, pid := range pairIDs {
			p := g.Pairs[pid]
			if truth[blocking.Key(p.I, p.J)] {
				match++
			}
		}
		out[t] = float64(match) / float64(len(pairIDs))
	}
	return out
}

// RankSeries produces the Figure 4 series: terms are sorted by descending
// learned weight and the y-value at position x is score(t) of the x-th
// ranked term. Terms with score(t) = -1 (no pairs) are skipped.
func RankSeries(weights, termScores []float64) []float64 {
	type tw struct {
		w, s float64
	}
	items := make([]tw, 0, len(weights))
	for t, w := range weights {
		if termScores[t] < 0 {
			continue
		}
		items = append(items, tw{w: w, s: termScores[t]})
	}
	sort.SliceStable(items, func(i, j int) bool { return items[i].w > items[j].w })
	out := make([]float64, len(items))
	for i, it := range items {
		out[i] = it.s
	}
	return out
}
