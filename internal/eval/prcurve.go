package eval

import (
	"sort"

	"repro/internal/blocking"
)

// PRPoint is one precision/recall operating point of a score-based matcher.
type PRPoint struct {
	Threshold             float64
	Precision, Recall, F1 float64
}

// PRCurve computes the precision-recall curve of a pair scoring: one point
// per distinct score value, thresholds descending (recall ascending). The
// curve generalizes BestThreshold — its F1-maximal point equals the
// exhaustive sweep's optimum — and is the standard way to compare matchers
// beyond a single operating point.
func PRCurve(pairs []blocking.Pair, scores []float64, truth map[uint64]bool, totalTrue int) []PRPoint {
	type scored struct {
		s     float64
		match bool
	}
	items := make([]scored, len(pairs))
	for k, p := range pairs {
		items[k] = scored{s: scores[k], match: truth[blocking.Key(p.I, p.J)]}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].s > items[j].s })

	var curve []PRPoint
	tp, fp := 0, 0
	for i := 0; i < len(items); {
		th := items[i].s
		for i < len(items) && items[i].s == th {
			if items[i].match {
				tp++
			} else {
				fp++
			}
			i++
		}
		r := compute(tp, fp, totalTrue-tp)
		curve = append(curve, PRPoint{Threshold: th, Precision: r.Precision, Recall: r.Recall, F1: r.F1})
	}
	return curve
}

// BestF1 returns the curve's F1-maximal point (zero value for an empty
// curve).
func BestF1(curve []PRPoint) PRPoint {
	var best PRPoint
	for _, p := range curve {
		if p.F1 > best.F1 {
			best = p
		}
	}
	return best
}

// AveragePrecision computes AP: the precision integrated over recall
// increments, the single-number summary of the PR curve.
func AveragePrecision(curve []PRPoint) float64 {
	var ap, prevRecall float64
	for _, p := range curve {
		ap += p.Precision * (p.Recall - prevRecall)
		prevRecall = p.Recall
	}
	return ap
}
