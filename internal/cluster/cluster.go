// Package cluster turns a set of matched record pairs into entity clusters.
// The ground-truth record graph of §VI-A is a union of disjoint cliques, so
// the natural output representation of entity resolution is the set of
// connected components of the matched-pair graph (transitive closure).
package cluster

import (
	"slices"

	"repro/internal/blocking"
	"repro/internal/graph"
)

// FromMatches computes entity clusters from the flagged candidate pairs.
// Every record appears in exactly one cluster; unmatched records form
// singleton clusters. Clusters are ordered by size descending, ties broken
// by smallest member, members sorted ascending.
func FromMatches(numRecords int, pairs []blocking.Pair, matched []bool) [][]int {
	u := graph.NewUnionFind(numRecords)
	for k, p := range pairs {
		if matched[k] {
			u.Union(int(p.I), int(p.J))
		}
	}
	groups := u.Groups(1)
	// Typed stable sort: the reflection-based sort.SliceStable swapper is
	// measurable when 100k records yield ~80k singleton clusters on the
	// warm resolve path. The comparator's order is unchanged.
	slices.SortStableFunc(groups, func(a, b []int) int {
		if len(a) != len(b) {
			return len(b) - len(a)
		}
		return a[0] - b[0]
	})
	return groups
}

// ClosurePairs expands clusters back into the full set of implied matching
// pairs (the transitive closure used by crowd-based methods to derive extra
// answers). Keys use blocking.Key.
func ClosurePairs(clusters [][]int) map[uint64]bool {
	out := make(map[uint64]bool)
	for _, c := range clusters {
		for a := 0; a < len(c); a++ {
			for b := a + 1; b < len(c); b++ {
				out[blocking.Key(int32(c[a]), int32(c[b]))] = true
			}
		}
	}
	return out
}

// Stats summarizes a clustering.
type Stats struct {
	Clusters    int // clusters with >= 2 records
	Singletons  int
	LargestSize int
	Records     int
}

// Summarize computes clustering statistics.
func Summarize(clusters [][]int) Stats {
	var s Stats
	for _, c := range clusters {
		s.Records += len(c)
		if len(c) == 1 {
			s.Singletons++
			continue
		}
		s.Clusters++
		if len(c) > s.LargestSize {
			s.LargestSize = len(c)
		}
	}
	return s
}
