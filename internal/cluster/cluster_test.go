package cluster

import (
	"testing"

	"repro/internal/blocking"
)

func TestFromMatchesTransitiveClosure(t *testing.T) {
	pairs := []blocking.Pair{{I: 0, J: 1}, {I: 1, J: 2}, {I: 3, J: 4}, {I: 4, J: 5}}
	matched := []bool{true, true, true, false}
	clusters := FromMatches(6, pairs, matched)
	// {0,1,2}, {3,4}, {5}
	if len(clusters) != 3 {
		t.Fatalf("clusters = %v, want 3 groups", clusters)
	}
	if len(clusters[0]) != 3 || clusters[0][0] != 0 {
		t.Errorf("largest cluster = %v, want [0 1 2]", clusters[0])
	}
	if len(clusters[1]) != 2 || clusters[1][0] != 3 {
		t.Errorf("second cluster = %v, want [3 4]", clusters[1])
	}
	if len(clusters[2]) != 1 || clusters[2][0] != 5 {
		t.Errorf("singleton = %v, want [5]", clusters[2])
	}
}

func TestFromMatchesNoMatches(t *testing.T) {
	pairs := []blocking.Pair{{I: 0, J: 1}}
	clusters := FromMatches(3, pairs, []bool{false})
	if len(clusters) != 3 {
		t.Fatalf("want 3 singletons, got %v", clusters)
	}
}

func TestClosurePairs(t *testing.T) {
	closure := ClosurePairs([][]int{{0, 1, 2}, {3, 4}, {5}})
	want := []uint64{
		blocking.Key(0, 1), blocking.Key(0, 2), blocking.Key(1, 2),
		blocking.Key(3, 4),
	}
	if len(closure) != len(want) {
		t.Fatalf("closure has %d pairs, want %d", len(closure), len(want))
	}
	for _, k := range want {
		if !closure[k] {
			t.Errorf("pair key %d missing from closure", k)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([][]int{{0, 1, 2}, {3, 4}, {5}, {6}})
	if s.Clusters != 2 || s.Singletons != 2 || s.LargestSize != 3 || s.Records != 7 {
		t.Errorf("stats = %+v", s)
	}
}
