package guard

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestNilCheckpointNeverCancels(t *testing.T) {
	var c *Checkpoint
	if err := c.Err(); err != nil {
		t.Fatalf("nil checkpoint Err = %v", err)
	}
	for i := 0; i < 3*DefaultStride; i++ {
		if err := c.Tick(); err != nil {
			t.Fatalf("nil checkpoint Tick = %v", err)
		}
	}
}

func TestFromBackgroundContextIsNil(t *testing.T) {
	if c := FromContext(context.Background()); c != nil {
		t.Fatal("background context must yield a nil (free) checkpoint")
	}
	if c := FromContext(nil); c != nil {
		t.Fatal("nil context must yield a nil checkpoint")
	}
}

func TestErrReportsCancellationCause(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := FromContext(ctx)
	if c == nil {
		t.Fatal("cancelable context must yield a checkpoint")
	}
	if err := c.Err(); err != nil {
		t.Fatalf("premature cancellation: %v", err)
	}
	cancel()
	if err := c.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
}

func TestTickPollsEveryStride(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := FromContext(ctx)
	var got error
	for i := 0; i < DefaultStride; i++ {
		if err := c.Tick(); err != nil {
			got = err
			break
		}
	}
	if !errors.Is(got, context.Canceled) {
		t.Fatalf("Tick never observed cancellation within one stride: %v", got)
	}
}

func TestCheckpointConcurrentTicks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := FromContext(ctx)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				c.Tick()
			}
		}()
	}
	wg.Wait()
	if err := c.Err(); err != nil {
		t.Fatalf("uncanceled checkpoint reported %v", err)
	}
}

func TestNewWithClosedChannelAndNilCause(t *testing.T) {
	done := make(chan struct{})
	close(done)
	c := New(done, func() error { return nil })
	if err := c.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("closed channel with unset cause: Err = %v, want context.Canceled", err)
	}
}
