package guard

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestNilCheckpointNeverCancels(t *testing.T) {
	var c *Checkpoint
	if err := c.Err(); err != nil {
		t.Fatalf("nil checkpoint Err = %v", err)
	}
	for i := 0; i < 3*DefaultStride; i++ {
		if err := c.Tick(); err != nil {
			t.Fatalf("nil checkpoint Tick = %v", err)
		}
	}
}

func TestFromBackgroundContextIsNil(t *testing.T) {
	if c := FromContext(context.Background()); c != nil {
		t.Fatal("background context must yield a nil (free) checkpoint")
	}
	if c := FromContext(nil); c != nil {
		t.Fatal("nil context must yield a nil checkpoint")
	}
}

func TestErrReportsCancellationCause(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := FromContext(ctx)
	if c == nil {
		t.Fatal("cancelable context must yield a checkpoint")
	}
	if err := c.Err(); err != nil {
		t.Fatalf("premature cancellation: %v", err)
	}
	cancel()
	if err := c.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", err)
	}
}

func TestTickPollsEveryStride(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := FromContext(ctx)
	var got error
	for i := 0; i < DefaultStride; i++ {
		if err := c.Tick(); err != nil {
			got = err
			break
		}
	}
	if !errors.Is(got, context.Canceled) {
		t.Fatalf("Tick never observed cancellation within one stride: %v", got)
	}
}

func TestCheckpointConcurrentTicks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c := FromContext(ctx)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10_000; i++ {
				c.Tick()
			}
		}()
	}
	wg.Wait()
	if err := c.Err(); err != nil {
		t.Fatalf("uncanceled checkpoint reported %v", err)
	}
}

func TestNewWithClosedChannelAndNilCause(t *testing.T) {
	done := make(chan struct{})
	close(done)
	c := New(done, func() error { return nil })
	if err := c.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("closed channel with unset cause: Err = %v, want context.Canceled", err)
	}
}

func TestWithStrideZeroAndOnePollEveryTick(t *testing.T) {
	for _, stride := range []uint64{0, 1} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		c := FromContext(ctx).WithStride(stride)
		if err := c.Tick(); !errors.Is(err, context.Canceled) {
			t.Errorf("stride %d: first Tick = %v, want context.Canceled", stride, err)
		}
	}
}

func TestWithStrideLeavesOriginalUntouched(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	orig := FromContext(ctx)
	fast := orig.WithStride(1)
	// The original still amortizes over DefaultStride; the derived
	// checkpoint must observe cancellation immediately without advancing
	// the original's tick counter.
	if err := fast.Tick(); !errors.Is(err, context.Canceled) {
		t.Fatalf("derived Tick = %v, want context.Canceled", err)
	}
	if err := orig.Tick(); err != nil {
		t.Fatalf("original's first Tick should still be amortized away, got %v", err)
	}
}

func TestWithStrideOnNilCheckpoint(t *testing.T) {
	var c *Checkpoint
	if got := c.WithStride(1); got != nil {
		t.Fatal("nil.WithStride must stay nil")
	}
	if err := c.WithStride(0).Tick(); err != nil {
		t.Fatalf("nil derived checkpoint Tick = %v", err)
	}
}

func TestCheckpointAfterDeadlineExpiry(t *testing.T) {
	// An already-expired deadline: the Done channel is closed before the
	// first poll, and the cause must be DeadlineExceeded, not Canceled.
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	c := FromContext(ctx)
	if err := c.Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Err = %v, want context.DeadlineExceeded", err)
	}
	if err := c.WithStride(1).Tick(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Tick = %v, want context.DeadlineExceeded", err)
	}
}

func TestDoneChannel(t *testing.T) {
	var nilC *Checkpoint
	if nilC.Done() != nil {
		t.Fatal("nil checkpoint must expose a nil (never-firing) Done channel")
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := FromContext(ctx)
	select {
	case <-c.Done():
		t.Fatal("Done fired before cancellation")
	default:
	}
	cancel()
	select {
	case <-c.Done():
	case <-time.After(time.Second):
		t.Fatal("Done did not fire after cancellation")
	}
}

func TestSleepCompletesAndCancels(t *testing.T) {
	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatalf("zero-duration Sleep = %v", err)
	}
	if err := Sleep(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("full Sleep = %v", err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(canceled, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep on canceled ctx = %v, want context.Canceled", err)
	}
	ctx, cancel2 := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel2()
	}()
	start := time.Now()
	if err := Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted Sleep = %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Sleep did not abort promptly on cancellation")
	}
}

func TestTrackerDrainWaitsForRelease(t *testing.T) {
	var tr Tracker
	if !tr.Drain(context.Background()) {
		t.Fatal("idle tracker must drain immediately")
	}
	release := tr.Acquire()
	if tr.InFlight() != 1 {
		t.Fatalf("InFlight = %d, want 1", tr.InFlight())
	}
	short, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if tr.Drain(short) {
		t.Fatal("Drain returned true with work in flight")
	}
	done := make(chan bool, 1)
	go func() { done <- tr.Drain(context.Background()) }()
	release()
	select {
	case ok := <-done:
		if !ok {
			t.Fatal("Drain returned false after release")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not observe the release")
	}
	if tr.InFlight() != 0 {
		t.Fatalf("InFlight = %d after release, want 0", tr.InFlight())
	}
}

func TestTrackerReleaseIdempotent(t *testing.T) {
	var tr Tracker
	a, b := tr.Acquire(), tr.Acquire()
	a()
	a() // double release must not free b's slot
	if tr.InFlight() != 1 {
		t.Fatalf("InFlight = %d after double release, want 1", tr.InFlight())
	}
	b()
	if tr.InFlight() != 0 {
		t.Fatalf("InFlight = %d, want 0", tr.InFlight())
	}
}

func TestTrackerConcurrent(t *testing.T) {
	var tr Tracker
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				release := tr.Acquire()
				release()
			}
		}()
	}
	wg.Wait()
	if tr.InFlight() != 0 {
		t.Fatalf("InFlight = %d after all releases, want 0", tr.InFlight())
	}
	if !tr.Drain(context.Background()) {
		t.Fatal("tracker must be drainable after concurrent churn")
	}
}

func TestWithStrideConcurrentTicks(t *testing.T) {
	// Derived and original checkpoints share the cancellation signal but
	// not the tick counter; hammering both from multiple goroutines must be
	// race-free (run under -race) and must never report a spurious error.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	orig := FromContext(ctx)
	fast := orig.WithStride(1)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(useFast bool) {
			defer wg.Done()
			c := orig
			if useFast {
				c = fast
			}
			for i := 0; i < 10_000; i++ {
				if err := c.Tick(); err != nil {
					t.Errorf("spurious cancellation: %v", err)
					return
				}
			}
		}(w%2 == 0)
	}
	wg.Wait()
}
