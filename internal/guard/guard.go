// Package guard provides a lightweight cancellation checkpoint for the hot
// loops of the resolution pipeline. The internal algorithm packages (core,
// blocking) stay free of request-scoped plumbing: they hold an optional
// *Checkpoint and poll it with Tick/Err every few iterations, while the
// public er package constructs checkpoints from a context.Context. A nil
// *Checkpoint is valid everywhere and never reports cancellation, so callers
// that do not need cancellation pay a single nil check per poll.
package guard

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultStride is the number of Tick calls between actual cancellation
// polls. Polling a channel involves a select; a stride amortizes it to one
// atomic add per call, which is negligible inside even the tightest loops.
const DefaultStride = 256

// Checkpoint is a cheap, concurrency-safe cancellation poll. It is shared by
// every goroutine of one resolution run; all methods are safe for concurrent
// use and safe on a nil receiver.
type Checkpoint struct {
	done   <-chan struct{}
	cause  func() error
	stride uint64
	ticks  atomic.Uint64
}

// New builds a checkpoint that reports cancellation once done is closed,
// with cause() supplying the error. A nil done channel never cancels.
func New(done <-chan struct{}, cause func() error) *Checkpoint {
	if done == nil {
		return nil
	}
	return &Checkpoint{done: done, cause: cause, stride: DefaultStride}
}

// FromContext adapts a context to a checkpoint. Contexts that can never be
// canceled (context.Background, context.TODO) yield a nil checkpoint, which
// keeps the pipeline's fast path free of channel operations.
func FromContext(ctx context.Context) *Checkpoint {
	if ctx == nil {
		return nil
	}
	return New(ctx.Done(), func() error { return ctx.Err() })
}

// WithStride returns a checkpoint observing the same cancellation signal
// but polling it every n Tick calls instead of every DefaultStride. Strides
// of 0 and 1 both poll on every Tick (0 would otherwise divide by zero; it
// is normalized rather than rejected so callers can plumb "poll always"
// through an untyped config zero value). The receiver is unchanged and a
// nil receiver stays nil, so derived checkpoints are as free as the
// original when cancellation is off.
func (c *Checkpoint) WithStride(n uint64) *Checkpoint {
	if c == nil {
		return nil
	}
	if n == 0 {
		n = 1
	}
	return &Checkpoint{done: c.done, cause: c.cause, stride: n}
}

// Err polls the cancellation signal immediately. It returns the cause (for a
// context: context.Canceled or context.DeadlineExceeded) once the checkpoint
// is canceled, and nil before that or on a nil checkpoint.
func (c *Checkpoint) Err() error {
	if c == nil {
		return nil
	}
	select {
	case <-c.done:
		if err := c.cause(); err != nil {
			return err
		}
		// The channel is closed but the cause is not set yet (possible in a
		// narrow race when a context's Done closes before Err is published);
		// report generic cancellation.
		return context.Canceled
	default:
		return nil
	}
}

// Tick is the amortized poll for inner loops: it performs one atomic add per
// call and only inspects the cancellation channel once per stride
// (DefaultStride calls, unless WithStride chose another). It returns the
// same errors as Err.
func (c *Checkpoint) Tick() error {
	if c == nil {
		return nil
	}
	if c.ticks.Add(1)%c.stride != 0 {
		return nil
	}
	return c.Err()
}

// Done exposes the checkpoint's cancellation channel so servers can select
// on it alongside queue and timer channels. A nil checkpoint returns a nil
// channel, which blocks forever in a select — the correct behavior for a
// signal that can never fire.
func (c *Checkpoint) Done() <-chan struct{} {
	if c == nil {
		return nil
	}
	return c.done
}

// Sleep blocks for d or until ctx is done, whichever comes first. It returns
// nil after a full sleep and ctx.Err() when interrupted, making backoff and
// probe delays cancellable without hand-rolled timer plumbing. Non-positive
// durations return immediately (after a cancellation poll).
func Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Tracker counts in-flight units of work for graceful drain: a server
// acquires one slot per running job and Drain waits — bounded by a context —
// for the count to return to zero. The zero Tracker is ready to use.
type Tracker struct {
	mu   sync.Mutex
	n    int
	idle chan struct{} // non-nil while n > 0; closed when n returns to 0
}

// Acquire registers one unit of in-flight work and returns its release
// function. The release is idempotent: calling it more than once releases
// the slot only once, so it is safe in a defer alongside explicit early
// release paths.
func (t *Tracker) Acquire() (release func()) {
	t.mu.Lock()
	if t.n == 0 {
		t.idle = make(chan struct{})
	}
	t.n++
	t.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			t.mu.Lock()
			t.n--
			if t.n == 0 {
				close(t.idle)
				t.idle = nil
			}
			t.mu.Unlock()
		})
	}
}

// InFlight returns the number of acquired, unreleased slots.
func (t *Tracker) InFlight() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Drain blocks until every in-flight unit is released or ctx is done. It
// returns true when the tracker reached idle, false when ctx expired first
// (the caller should then cancel the stragglers and wait again). Work
// acquired after Drain observes an idle tracker is the caller's race to
// prevent — stop admission before draining.
func (t *Tracker) Drain(ctx context.Context) bool {
	for {
		t.mu.Lock()
		idle := t.idle
		t.mu.Unlock()
		if idle == nil {
			return true
		}
		select {
		case <-idle:
			// Re-check: a new acquisition may have replaced the channel
			// between the close and this wakeup.
		case <-ctx.Done():
			return false
		}
	}
}
