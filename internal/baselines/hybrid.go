package baselines

import "fmt"

// Hybrid linearly combines topological (SimRank) and textual (TW-IDF) pair
// scores per Eq. 5: s_h = β·s_b + (1-β)·s_u. The two score families live on
// very different scales (SimRank in [0,1], TW-IDF unbounded), so each side
// is max-normalized before combining — without this, β would be meaningless
// and one side would always dominate the sweep. Misaligned inputs yield an
// error: both slices must be indexed by the same candidate-pair enumeration.
func Hybrid(simrank, twidf []float64, beta float64) ([]float64, error) {
	if len(simrank) != len(twidf) {
		return nil, fmt.Errorf("baselines: Hybrid requires aligned score slices, got %d and %d", len(simrank), len(twidf))
	}
	out := make([]float64, len(simrank))
	sb := maxNormalize(simrank)
	su := maxNormalize(twidf)
	for i := range out {
		out[i] = beta*sb[i] + (1-beta)*su[i]
	}
	return out, nil
}

func maxNormalize(x []float64) []float64 {
	var max float64
	for _, v := range x {
		if v > max {
			max = v
		}
	}
	out := make([]float64, len(x))
	if max == 0 {
		return out
	}
	for i, v := range x {
		out[i] = v / max
	}
	return out
}
