package baselines

import (
	"repro/internal/blocking"
	"repro/internal/guard"
	"repro/internal/textproc"
)

// SimRankOptions configures bipartite SimRank (§III-A).
type SimRankOptions struct {
	// C1 and C2 are the decay factors of Eq. 1 and Eq. 2, set to 0.8 in the
	// paper following Jeh & Widom.
	C1, C2 float64
	// Iters is the number of alternating record/term iterations.
	Iters int
	// MaxProduct prunes term pairs whose inverted-list size product exceeds
	// this bound. Bipartite SimRank is quadratic in list sizes; pruned pairs
	// keep similarity 0, a standard sparse-SimRank approximation that only
	// affects very frequent (hence non-discriminative) term pairs.
	// Zero disables pruning.
	MaxProduct int
	// Check, when non-nil, is polled throughout the quadratic expansion
	// sweeps; on cancellation SimRank stops early and returns the current
	// similarity estimates.
	Check *guard.Checkpoint
}

// DefaultSimRankOptions mirrors the paper: C1 = C2 = 0.8, 5 iterations.
func DefaultSimRankOptions() SimRankOptions {
	return SimRankOptions{C1: 0.8, C2: 0.8, Iters: 5, MaxProduct: 200_000}
}

// SimRank computes bipartite SimRank record similarities (Eq. 1–2) on the
// record-term graph. Record-pair similarity is maintained on the candidate
// set (records sharing >= 1 term); term-pair similarity on pairs of terms
// co-occurring in at least one record. Pairs outside these supports stay at
// 0, which is exact for the first expansion and a conservative
// approximation afterwards.
//
// The returned slice is aligned with g.Pairs.
func SimRank(c *textproc.Corpus, g *blocking.Graph, opts SimRankOptions) []float64 {
	if opts.Iters <= 0 {
		opts.Iters = 5
	}

	// Inverted index I(t): records containing term t.
	inv := make([][]int32, c.NumTerms())
	for r, doc := range c.Docs {
		for _, t := range doc {
			inv[t] = append(inv[t], int32(r))
		}
	}

	// Term-pair support: distinct term pairs co-occurring inside a record.
	type tpair struct{ a, b int32 }
	tpairIdx := make(map[tpair]int)
	var tpairs []tpair
	for _, doc := range c.Docs {
		for x := 0; x < len(doc); x++ {
			for y := x + 1; y < len(doc); y++ {
				tp := tpair{doc[x], doc[y]}
				if _, ok := tpairIdx[tp]; !ok {
					if opts.MaxProduct > 0 && len(inv[tp.a])*len(inv[tp.b]) > opts.MaxProduct {
						continue
					}
					tpairIdx[tp] = len(tpairs)
					tpairs = append(tpairs, tp)
				}
			}
		}
	}

	recSim := make([]float64, g.NumPairs()) // aligned with g.Pairs
	termSim := make([]float64, len(tpairs)) // aligned with tpairs

	// recLookup returns s_b(ri, rj) including the diagonal s(r, r) = 1.
	recLookup := func(ri, rj int32) float64 {
		if ri == rj {
			return 1
		}
		if id, ok := g.PairID(ri, rj); ok {
			return recSim[id]
		}
		return 0
	}
	// termLookup returns s_b(ti, tj) including the diagonal.
	termLookup := func(ti, tj int32) float64 {
		if ti == tj {
			return 1
		}
		if ti > tj {
			ti, tj = tj, ti
		}
		if id, ok := tpairIdx[tpair{ti, tj}]; ok {
			return termSim[id]
		}
		return 0
	}

	for iter := 0; iter < opts.Iters; iter++ {
		// Eq. 2: term similarity from record similarity.
		for id, tp := range tpairs {
			if opts.Check.Tick() != nil {
				return recSim
			}
			ia, ib := inv[tp.a], inv[tp.b]
			if len(ia) == 0 || len(ib) == 0 {
				continue
			}
			var sum float64
			for _, ri := range ia {
				for _, rj := range ib {
					sum += recLookup(ri, rj)
				}
			}
			termSim[id] = opts.C2 * sum / (float64(len(ia)) * float64(len(ib)))
		}
		// Eq. 1: record similarity from term similarity.
		for id, p := range g.Pairs {
			if opts.Check.Tick() != nil {
				return recSim
			}
			oa, ob := c.Docs[p.I], c.Docs[p.J]
			if len(oa) == 0 || len(ob) == 0 {
				continue
			}
			var sum float64
			for _, ta := range oa {
				for _, tb := range ob {
					sum += termLookup(ta, tb)
				}
			}
			recSim[id] = opts.C1 * sum / (float64(len(oa)) * float64(len(ob)))
		}
	}
	return recSim
}
