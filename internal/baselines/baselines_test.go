package baselines

import (
	"math"
	"testing"

	"repro/internal/blocking"
	"repro/internal/graph"
	"repro/internal/textproc"
)

func setup(texts ...string) (*textproc.Corpus, *blocking.Graph) {
	c := textproc.BuildCorpus(texts, textproc.CorpusOptions{Tokenize: textproc.DefaultTokenizeOptions()})
	g, err := blocking.Build(c, nil, blocking.Options{})
	if err != nil {
		panic(err)
	}
	return c, g
}

func TestPageRankUniformOnRegularGraph(t *testing.T) {
	// On a cycle (2-regular), PageRank must converge to uniform salience 1.
	c, _ := setup("aa bb", "bb cc", "cc dd", "dd aa")
	tg := graph.NewTermGraph(c, 2)
	s := PageRank(tg, DefaultPageRankOptions())
	for i, v := range s {
		if math.Abs(v-1) > 1e-6 {
			t.Errorf("salience[%d] = %g, want 1 on regular graph", i, v)
		}
	}
}

func TestPageRankHubGetsMoreSalience(t *testing.T) {
	// Star: hub co-occurs with all others.
	c, _ := setup("hub aa", "hub bb", "hub cc", "hub dd")
	tg := graph.NewTermGraph(c, 2)
	s := PageRank(tg, DefaultPageRankOptions())
	hub := c.Index["hub"]
	for term, id := range c.Index {
		if term == "hub" {
			continue
		}
		if s[hub] <= s[id] {
			t.Errorf("salience(hub)=%g not above salience(%s)=%g", s[hub], term, s[id])
		}
	}
}

func TestPageRankIsolatedTermBaseSalience(t *testing.T) {
	c, _ := setup("solo", "aa bb")
	tg := graph.NewTermGraph(c, 2)
	opts := DefaultPageRankOptions()
	s := PageRank(tg, opts)
	solo := c.Index["solo"]
	if math.Abs(s[solo]-(1-opts.Damping)) > 1e-9 {
		t.Errorf("isolated salience = %g, want %g", s[solo], 1-opts.Damping)
	}
}

func TestTWIDFSharedRareBeatsSharedCommon(t *testing.T) {
	// "rare" is shared by exactly one pair; "common" by many.
	c, g := setup(
		"common rare xx1",
		"common rare yy1",
		"common zz1 qq1",
		"common ww1 pp1",
		"common vv1 uu1",
	)
	scores, salience := PageRankTWIDF(c, g, DefaultPageRankOptions())
	if len(salience) != c.NumTerms() {
		t.Fatalf("salience length %d, want %d", len(salience), c.NumTerms())
	}
	rarePair, _ := g.PairID(0, 1)   // shares common+rare
	commonPair, _ := g.PairID(2, 3) // shares only common
	if scores[rarePair] <= scores[commonPair] {
		t.Errorf("pair sharing rare term must outscore pair sharing only common term: %g vs %g",
			scores[rarePair], scores[commonPair])
	}
}

func TestSimRankIdenticalRecordsScoreHighest(t *testing.T) {
	c, g := setup(
		"aa bb cc",
		"aa bb cc",
		"aa dd ee",
		"ff gg hh",
	)
	scores := SimRank(c, g, DefaultSimRankOptions())
	same, _ := g.PairID(0, 1)
	diff, _ := g.PairID(0, 2)
	if scores[same] <= scores[diff] {
		t.Errorf("identical records %g must outscore partial overlap %g", scores[same], scores[diff])
	}
	for id, s := range scores {
		if s < 0 || s > 1+1e-9 {
			t.Errorf("SimRank score %d out of [0,1]: %g", id, s)
		}
	}
}

func TestSimRankFirstIterationMatchesHandComputation(t *testing.T) {
	// Two records sharing their single term; one iteration.
	// Eq.2 first: termSim starts from recSim=0 → all 0.
	// Eq.1 then: s(r0,r1) = C1/(1·1) · termLookup(aa,aa) = C1.
	c, g := setup("aa", "aa")
	scores := SimRank(c, g, SimRankOptions{C1: 0.8, C2: 0.8, Iters: 1})
	id, _ := g.PairID(0, 1)
	if math.Abs(scores[id]-0.8) > 1e-12 {
		t.Errorf("one-iteration SimRank = %g, want 0.8", scores[id])
	}
}

func TestSimRankMorePassesPropagate(t *testing.T) {
	// Records 0,1 share aa; records 2,3 share bb; records 1,2 share cc.
	// After several iterations, (0,2) style second-order effects flow
	// through term similarities; here we only check stability and range.
	c, g := setup("aa cc", "aa", "bb cc", "bb")
	s1 := SimRank(c, g, SimRankOptions{C1: 0.8, C2: 0.8, Iters: 1})
	s5 := SimRank(c, g, SimRankOptions{C1: 0.8, C2: 0.8, Iters: 5})
	if len(s1) != len(s5) {
		t.Fatal("score lengths differ")
	}
	grew := false
	for i := range s5 {
		if s5[i] > s1[i]+1e-12 {
			grew = true
		}
		if s5[i] < s1[i]-1e-9 {
			t.Errorf("pair %d similarity decreased from %g to %g", i, s1[i], s5[i])
		}
	}
	if !grew {
		t.Error("no pair gained similarity from extra iterations")
	}
}

func TestSimRankPruning(t *testing.T) {
	c, g := setup("aa bb", "aa bb", "aa cc", "aa dd")
	// With a tiny MaxProduct, every term pair is pruned; only diagonal
	// term similarity contributes.
	pruned := SimRank(c, g, SimRankOptions{C1: 0.8, C2: 0.8, Iters: 3, MaxProduct: 1})
	full := SimRank(c, g, SimRankOptions{C1: 0.8, C2: 0.8, Iters: 3})
	id, _ := g.PairID(0, 1)
	if pruned[id] > full[id]+1e-12 {
		t.Error("pruning must only lower similarities")
	}
	if pruned[id] == 0 {
		t.Error("shared-term diagonal must survive pruning")
	}
}

// mustHybrid fails the test on the misalignment error.
func mustHybrid(t *testing.T, sb, su []float64, beta float64) []float64 {
	t.Helper()
	h, err := Hybrid(sb, su, beta)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHybridCombination(t *testing.T) {
	sb := []float64{1, 0, 0.5}
	su := []float64{0, 2, 1}
	h := mustHybrid(t, sb, su, 0.5)
	// normalized: sb=[1,0,.5], su=[0,1,.5] → h=[.5,.5,.5]
	for i, v := range h {
		if math.Abs(v-0.5) > 1e-12 {
			t.Errorf("h[%d] = %g, want 0.5", i, v)
		}
	}
	h0 := mustHybrid(t, sb, su, 0)
	if h0[1] != 1 || h0[0] != 0 {
		t.Errorf("beta=0 must return normalized TW-IDF, got %v", h0)
	}
	h1 := mustHybrid(t, sb, su, 1)
	if h1[0] != 1 || h1[1] != 0 {
		t.Errorf("beta=1 must return normalized SimRank, got %v", h1)
	}
}

func TestHybridZeroVectors(t *testing.T) {
	h := mustHybrid(t, []float64{0, 0}, []float64{0, 0}, 0.5)
	for _, v := range h {
		if v != 0 {
			t.Error("all-zero inputs must stay zero")
		}
	}
}

func TestHybridMisalignedError(t *testing.T) {
	if _, err := Hybrid([]float64{1, 2}, []float64{1}, 0.5); err == nil {
		t.Fatal("misaligned inputs must return an error")
	}
}

func TestBiRankConverges(t *testing.T) {
	c, _ := setup(
		"common rare1 aa",
		"common rare1 bb",
		"common cc dd",
		"ee ff gg",
	)
	termRank, recordRank := BiRank(c, DefaultBiRankOptions())
	if len(termRank) != c.NumTerms() || len(recordRank) != c.NumRecords() {
		t.Fatal("rank vector lengths wrong")
	}
	for i, v := range termRank {
		if v <= 0 || math.IsNaN(v) {
			t.Errorf("termRank[%d] = %g, want positive", i, v)
		}
	}
	for i, v := range recordRank {
		if v <= 0 || math.IsNaN(v) {
			t.Errorf("recordRank[%d] = %g, want positive", i, v)
		}
	}
	// The hub term occurring in 3 records must outrank a df-1 term.
	if termRank[c.Index["common"]] <= termRank[c.Index["ee"]] {
		t.Error("frequent term must receive more BiRank mass")
	}
}

func TestBiRankDeterministic(t *testing.T) {
	c, _ := setup("aa bb", "bb cc", "cc dd")
	a, _ := BiRank(c, DefaultBiRankOptions())
	b, _ := BiRank(c, DefaultBiRankOptions())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("BiRank must be deterministic")
		}
	}
}

func TestBiRankTWIDFScoresAligned(t *testing.T) {
	c, g := setup(
		"common rare xx1",
		"common rare yy1",
		"common zz1 qq1",
	)
	scores, salience := BiRankTWIDF(c, g, DefaultBiRankOptions())
	if len(scores) != g.NumPairs() || len(salience) != c.NumTerms() {
		t.Fatal("alignment wrong")
	}
	rarePair, _ := g.PairID(0, 1)
	commonPair, _ := g.PairID(0, 2)
	if scores[rarePair] <= scores[commonPair] {
		t.Errorf("rare-term pair %g must outscore common-term pair %g",
			scores[rarePair], scores[commonPair])
	}
}

func TestBiRankDampingZeroReturnsQueryVector(t *testing.T) {
	c, _ := setup("aa bb", "cc dd")
	opts := DefaultBiRankOptions()
	opts.Alpha = 0
	termRank, _ := BiRank(c, opts)
	want := 1.0 / float64(c.NumTerms())
	for i, v := range termRank {
		if math.Abs(v-want) > 1e-12 {
			t.Errorf("alpha=0 termRank[%d] = %g, want uniform %g", i, v, want)
		}
	}
}
