package baselines

import (
	"math"

	"repro/internal/blocking"
	"repro/internal/guard"
	"repro/internal/textproc"
)

// BiRankOptions configures the BiRank computation.
type BiRankOptions struct {
	// Alpha and Beta damp the record-side and term-side updates (0.85 in
	// the BiRank paper's default setting).
	Alpha, Beta float64
	// MaxIters bounds the alternating iteration.
	MaxIters int
	// Tol stops iteration when the L1 change of the term vector drops
	// below it.
	Tol float64
	// Check, when non-nil, is polled once per alternating iteration; on
	// cancellation BiRank stops early and returns the current iterates.
	Check *guard.Checkpoint
}

// DefaultBiRankOptions mirrors the BiRank paper's defaults.
func DefaultBiRankOptions() BiRankOptions {
	return BiRankOptions{Alpha: 0.85, Beta: 0.85, MaxIters: 100, Tol: 1e-9}
}

// BiRank computes term and record salience on the record-term bipartite
// graph with the symmetrically-normalized alternating updates of He et al.,
// "BiRank: Towards Ranking on Bipartite Graphs" (the paper's ref [28]):
//
//	t = α · S  r + (1-α) · t0
//	r = β · Sᵀ t + (1-β) · r0
//
// where S = D_t^(-1/2) W D_r^(-1/2) is the degree-normalized incidence
// matrix and t0, r0 are uniform query vectors. It is the principled
// bipartite counterpart of the TextRank-style term graph and completes the
// §III family of graph-theoretic weighting baselines.
func BiRank(c *textproc.Corpus, opts BiRankOptions) (termRank, recordRank []float64) {
	m, n := c.NumTerms(), c.NumRecords()
	termDeg := make([]float64, m)
	recDeg := make([]float64, n)
	for r, doc := range c.Docs {
		recDeg[r] = float64(len(doc))
		for _, t := range doc {
			termDeg[t]++
		}
	}
	invSqrt := func(v float64) float64 {
		if v == 0 {
			return 0
		}
		return 1 / math.Sqrt(v)
	}

	t0 := 1.0 / float64(m)
	r0 := 1.0 / float64(n)
	termRank = make([]float64, m)
	recordRank = make([]float64, n)
	for i := range termRank {
		termRank[i] = t0
	}
	for i := range recordRank {
		recordRank[i] = r0
	}

	next := make([]float64, m)
	for iter := 0; iter < opts.MaxIters; iter++ {
		if opts.Check.Err() != nil {
			break
		}
		// t = α S r + (1-α) t0
		for i := range next {
			next[i] = 0
		}
		for r, doc := range c.Docs {
			rr := recordRank[r] * invSqrt(recDeg[r])
			for _, t := range doc {
				next[t] += rr * invSqrt(termDeg[t])
			}
		}
		var delta float64
		for i := range next {
			v := opts.Alpha*next[i] + (1-opts.Alpha)*t0
			delta += math.Abs(v - termRank[i])
			termRank[i] = v
		}
		// r = β Sᵀ t + (1-β) r0
		for r, doc := range c.Docs {
			var sum float64
			for _, t := range doc {
				sum += termRank[t] * invSqrt(termDeg[t])
			}
			recordRank[r] = opts.Beta*sum*invSqrt(recDeg[r]) + (1-opts.Beta)*r0
		}
		if delta < opts.Tol {
			break
		}
	}
	return termRank, recordRank
}

// BiRankTWIDF scores candidate pairs with TW-IDF textual similarity using
// BiRank term salience in place of PageRank salience — the drop-in variant
// of the §III-B baseline on the bipartite graph instead of the term
// co-occurrence graph.
func BiRankTWIDF(c *textproc.Corpus, g *blocking.Graph, opts BiRankOptions) (scores, salience []float64) {
	salience, _ = BiRank(c, opts)
	return TWIDF(c, g, salience), salience
}
