// Package baselines implements the paper's graph-theoretic baseline
// competitors (§III): SimRank on the record-term bipartite graph, PageRank
// term salience with TW-IDF textual similarity on the term co-occurrence
// graph, and their linear Hybrid combination.
package baselines

import (
	"math"

	"repro/internal/blocking"
	"repro/internal/graph"
	"repro/internal/guard"
	"repro/internal/textproc"
)

// PageRankOptions configures the TextRank-style salience computation.
type PageRankOptions struct {
	// Damping is φ in Eq. 3, "generally set to 0.85".
	Damping float64
	// Window is the co-occurrence sliding-window size of the term graph.
	Window int
	// MaxIters bounds the power iteration.
	MaxIters int
	// Tol stops iteration when the L1 change drops below it.
	Tol float64
	// Check, when non-nil, is polled once per power iteration; on
	// cancellation PageRank stops early and returns the current iterate
	// (the nil-safe no-op behavior of guard.Checkpoint applies).
	Check *guard.Checkpoint
}

// DefaultPageRankOptions mirrors the paper's setting (φ = 0.85) with the
// TextRank-standard window of 4.
func DefaultPageRankOptions() PageRankOptions {
	return PageRankOptions{Damping: 0.85, Window: 4, MaxIters: 100, Tol: 1e-9}
}

// PageRank runs the undirected-graph salience recurrence of Eq. 3,
//
//	s(ti) = (1-φ) + φ · Σ_{tj ∈ N(ti)} s(tj)/|N(tj)|,
//
// normalizing each contribution by the emitting node's degree (the TextRank
// convention; the paper's Eq. 3 prints |N(ti)| in the denominator, which
// does not conserve mass on undirected graphs — we follow the TextRank
// original the baseline cites). Isolated terms keep the base salience 1-φ.
func PageRank(g *graph.TermGraph, opts PageRankOptions) []float64 {
	n := g.NumTerms()
	s := make([]float64, n)
	for i := range s {
		s[i] = 1
	}
	next := make([]float64, n)
	for iter := 0; iter < opts.MaxIters; iter++ {
		if opts.Check.Err() != nil {
			break
		}
		var delta float64
		for i := 0; i < n; i++ {
			var sum float64
			for _, j := range g.Adj[i] {
				sum += s[j] / float64(g.Degree(int(j)))
			}
			next[i] = (1 - opts.Damping) + opts.Damping*sum
			delta += math.Abs(next[i] - s[i])
		}
		s, next = next, s
		if delta < opts.Tol {
			break
		}
	}
	return s
}

// TWIDF scores every candidate pair with the TW-IDF textual similarity of
// Eq. 4: the sum over shared terms of salience(t) · log((n+1)/df(t)).
func TWIDF(c *textproc.Corpus, g *blocking.Graph, salience []float64) []float64 {
	n := float64(c.NumRecords())
	idf := make([]float64, c.NumTerms())
	for t, df := range c.DF {
		if df > 0 {
			idf[t] = math.Log((n + 1) / float64(df))
		}
	}
	out := make([]float64, g.NumPairs())
	//lint:ignore guardloop output-sized pass over candidate pairs already bounded by guarded blocking; inner loop is a shared-term intersection
	for id, p := range g.Pairs {
		var s float64
		for _, t := range textproc.IntersectSorted(c.Docs[p.I], c.Docs[p.J]) {
			s += salience[t] * idf[t]
		}
		out[id] = s
	}
	return out
}

// PageRankTWIDF is the full §III-B baseline: build the term co-occurrence
// graph, compute PageRank salience and score candidate pairs with TW-IDF.
// It returns both the pair scores and the term salience (the latter feeds
// the Table IV Spearman comparison).
func PageRankTWIDF(c *textproc.Corpus, g *blocking.Graph, opts PageRankOptions) (scores, salience []float64) {
	tg := graph.NewTermGraph(c, opts.Window)
	salience = PageRank(tg, opts)
	return TWIDF(c, g, salience), salience
}
