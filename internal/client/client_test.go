package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	er "repro"
	"repro/internal/serve"
)

func newTestClient(t *testing.T, baseURL string, mutate func(*Options)) *Client {
	t.Helper()
	opts := Options{
		BaseURL:        baseURL,
		MaxAttempts:    5,
		BaseBackoff:    time.Millisecond,
		MaxBackoff:     5 * time.Millisecond,
		AttemptTimeout: 5 * time.Second,
	}
	if mutate != nil {
		mutate(&opts)
	}
	c, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

// TestRetryUntilSuccessKeepsOneIdempotencyKey is the core retry contract:
// transient 503s are retried, and every attempt of one logical mutation
// carries the same Idempotency-Key — the invariant the server's dedup
// journal depends on.
func TestRetryUntilSuccessKeepsOneIdempotencyKey(t *testing.T) {
	var (
		mu   sync.Mutex
		keys []string
	)
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		keys = append(keys, r.Header.Get("Idempotency-Key"))
		mu.Unlock()
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"serve: draining","kind":"draining"}`)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"id":"r1","text":"x"}`)
	}))
	defer srv.Close()

	c := newTestClient(t, srv.URL, nil)
	out, err := c.PutRecord(context.Background(), "people", "r1", Record{Text: "x"})
	if err != nil {
		t.Fatalf("PutRecord: %v", err)
	}
	if out.Replayed {
		t.Fatal("fresh apply reported as replayed")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(keys) != 3 {
		t.Fatalf("captured %d keys, want 3", len(keys))
	}
	if keys[0] == "" || len(keys[0]) != 32 {
		t.Fatalf("idempotency key %q: want 32 hex chars", keys[0])
	}
	for i, k := range keys[1:] {
		if k != keys[0] {
			t.Fatalf("attempt %d used key %q, first attempt used %q: retries must reuse the key", i+2, k, keys[0])
		}
	}
}

// TestReplayedHeaderSurfaced maps the server's Idempotency-Replayed marker
// onto Outcome.Replayed.
func TestReplayedHeaderSurfaced(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Idempotency-Replayed", "true")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"deleted":"r1"}`)
	}))
	defer srv.Close()
	c := newTestClient(t, srv.URL, nil)
	out, err := c.DeleteRecord(context.Background(), "people", "r1")
	if err != nil {
		t.Fatalf("DeleteRecord: %v", err)
	}
	if !out.Replayed {
		t.Fatal("Outcome.Replayed = false for a replayed response")
	}
}

// TestRetryAfterFloorsBackoff pins Retry-After honoring: with a jitter
// ceiling of microseconds, the planned sleep must still be the server's
// 1-second wish. The caller's context expires mid-sleep, proving both the
// floor and that the wait is cancellable rather than a hard time.Sleep.
func TestRetryAfterFloorsBackoff(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"serve: queue full","kind":"queue_full"}`)
	}))
	defer srv.Close()

	var (
		mu   sync.Mutex
		logs []string
	)
	c := newTestClient(t, srv.URL, func(o *Options) {
		o.BaseBackoff = time.Microsecond
		o.MaxBackoff = time.Microsecond
		o.Logf = func(format string, args ...any) {
			mu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			mu.Unlock()
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.CreateCollection(ctx, "people")
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded from the aborted retry wait", err)
	}
	if elapsed >= time.Second {
		t.Fatalf("call blocked %s: the retry sleep ignored context cancellation", elapsed)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(logs) != 1 || !strings.Contains(logs[0], "in 1s") {
		t.Fatalf("retry log %q: want one line announcing a 1s (Retry-After floored) sleep", logs)
	}
}

// TestBudgetExceededNotRetried pins the deliberate hole in the retry
// policy: 504 reports the job's own budget deterministically elapsing, so
// resubmitting the same work cannot help.
func TestBudgetExceededNotRetried(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusGatewayTimeout)
		fmt.Fprint(w, `{"error":"er: resource budget exceeded","kind":"budget_exceeded"}`)
	}))
	defer srv.Close()
	c := newTestClient(t, srv.URL, nil)
	_, err := c.Resolve(context.Background(), "people")
	if !errors.Is(err, er.ErrBudgetExceeded) {
		t.Fatalf("error = %v, want er.ErrBudgetExceeded", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("error = %#v, want *APIError with status 504", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1 (504 must not be retried)", got)
	}
}

// TestAttemptTimeoutBoundsHungServer: a server that never answers burns
// one AttemptTimeout per attempt, not the whole call.
func TestAttemptTimeoutBoundsHungServer(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		<-r.Context().Done() // hang until the client gives up on this attempt
	}))
	defer srv.Close()
	c := newTestClient(t, srv.URL, func(o *Options) {
		o.MaxAttempts = 2
		o.AttemptTimeout = 50 * time.Millisecond
	})
	_, err := c.DropCollection(context.Background(), "people")
	if err == nil {
		t.Fatal("expected a transport error from the hung server")
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2 (per-attempt timeout must fire per attempt)", got)
	}
}

// TestOverallContextTerminal: once the caller's context ends, no further
// attempts are made even though the failure class is retryable.
func TestOverallContextTerminal(t *testing.T) {
	var calls atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		cancel() // the caller walks away while the server fails over
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"serve: draining","kind":"draining"}`)
	}))
	defer srv.Close()
	c := newTestClient(t, srv.URL, nil)
	_, err := c.CreateCollection(ctx, "people")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1 (canceled caller must not retry)", got)
	}
}

// TestRetriesExhaustedReturnsLastError: a persistently unavailable server
// yields the final attempt's taxonomy-mapped error.
func TestRetriesExhaustedReturnsLastError(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"serve: recovering","kind":"recovering"}`)
	}))
	defer srv.Close()
	c := newTestClient(t, srv.URL, func(o *Options) { o.MaxAttempts = 3 })
	_, err := c.CreateCollection(context.Background(), "people")
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("error = %v, want ErrUnavailable", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

// TestGetRequestsSendNoIdempotencyKey: reads are naturally idempotent and
// must not consume dedup-journal capacity.
func TestGetRequestsSendNoIdempotencyKey(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if k := r.Header.Get("Idempotency-Key"); k != "" {
			t.Errorf("GET carried Idempotency-Key %q", k)
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"collections":[{"name":"people","records":2}]}`)
	}))
	defer srv.Close()
	c := newTestClient(t, srv.URL, nil)
	cols, err := c.ListCollections(context.Background())
	if err != nil {
		t.Fatalf("ListCollections: %v", err)
	}
	if len(cols) != 1 || cols[0].Name != "people" || cols[0].Records != 2 {
		t.Fatalf("collections = %+v", cols)
	}
}

// TestResolveDecodesJobResult covers the happy resolve path end to end.
func TestResolveDecodesJobResult(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/collections/people/resolve" {
			t.Errorf("path = %q", r.URL.Path)
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"job_id":"j1","state":"done","matches":4,"clusters":2,"duration_ms":12}`)
	}))
	defer srv.Close()
	c := newTestClient(t, srv.URL, nil)
	res, err := c.Resolve(context.Background(), "people")
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if res.JobID != "j1" || res.State != "done" || res.Matches != 4 || res.Clusters != 2 {
		t.Fatalf("result = %+v", res)
	}
	var raw map[string]any
	if err := json.Unmarshal(res.Raw, &raw); err != nil || raw["duration_ms"] != float64(12) {
		t.Fatalf("Raw did not retain the full body: %s (%v)", res.Raw, err)
	}
}

// TestErrorTaxonomyRoundTrip pins the satellite contract: every sentinel
// the library can emit survives the server's status+kind encoding and the
// client's SentinelFor decoding unchanged, so errors.Is branches written
// against the library keep working across the HTTP boundary.
func TestErrorTaxonomyRoundTrip(t *testing.T) {
	sentinels := []error{
		er.ErrInvalidOptions,
		er.ErrNoRecords,
		er.ErrBadData,
		er.ErrNoCandidates,
		er.ErrBudgetExceeded,
		er.ErrInternal,
		context.Canceled,
	}
	for _, want := range sentinels {
		status := er.HTTPStatus(want)
		kind := serve.ErrKind(want)
		got := SentinelFor(status, kind)
		if !errors.Is(got, want) {
			t.Errorf("SentinelFor(%d, %q) = %v, want errors.Is against %v", status, kind, got, want)
		}
	}
	// Wrapped errors round-trip the same way: the server classifies by
	// errors.Is, so decoration must not change the mapping.
	wrapped := fmt.Errorf("pipeline: %w", er.ErrBadData)
	if got := SentinelFor(er.HTTPStatus(wrapped), serve.ErrKind(wrapped)); !errors.Is(got, er.ErrBadData) {
		t.Errorf("wrapped ErrBadData mapped to %v", got)
	}
}

// TestSentinelForClientOnlyOutcomes covers the statuses with no er-package
// counterpart.
func TestSentinelForClientOnlyOutcomes(t *testing.T) {
	cases := []struct {
		status int
		kind   string
		want   error
	}{
		{404, "not_found", ErrNotFound},
		{409, "exists", ErrExists},
		{422, "idempotency_conflict", ErrIdempotencyConflict},
		{429, "queue_full", ErrOverloaded},
		{502, "", ErrUnavailable},
		{503, "draining", ErrUnavailable},
		{503, "recovering", ErrUnavailable},
		{503, "breaker_open", ErrUnavailable},
		{500, "internal", er.ErrInternal},
		{418, "", er.ErrInvalidOptions},
	}
	for _, c := range cases {
		if got := SentinelFor(c.status, c.kind); !errors.Is(got, c.want) {
			t.Errorf("SentinelFor(%d, %q) = %v, want %v", c.status, c.kind, got, c.want)
		}
	}
}

// TestAPIErrorUnwrap: errors.Is works through the APIError wrapper, and
// the message prefers the server's text.
func TestAPIErrorUnwrap(t *testing.T) {
	e := &APIError{Status: 404, Kind: "not_found", Message: "serve: collection not found"}
	if !errors.Is(e, ErrNotFound) {
		t.Fatal("APIError{404} should unwrap to ErrNotFound")
	}
	if e.Error() != "serve: collection not found" {
		t.Fatalf("Error() = %q", e.Error())
	}
	if got := (&APIError{Status: 502}).Error(); got != "client: http status 502" {
		t.Fatalf("fallback Error() = %q", got)
	}
}

// TestRetryableStatusTable pins the retry policy's exact membership.
func TestRetryableStatusTable(t *testing.T) {
	for status, want := range map[int]bool{
		429: true, 502: true, 503: true,
		400: false, 404: false, 409: false, 422: false, 499: false,
		500: false, 504: false,
	} {
		if got := retryableStatus(status); got != want {
			t.Errorf("retryableStatus(%d) = %v, want %v", status, got, want)
		}
	}
}

// TestOptionsValidate rejects broken configuration with ErrInvalidOptions.
func TestOptionsValidate(t *testing.T) {
	cases := []Options{
		{},                                     // missing BaseURL
		{BaseURL: "http://x", MaxAttempts: -1}, // negative attempts
		{BaseURL: "http://x", BaseBackoff: -time.Second}, // negative backoff
		{BaseURL: "http://x", MaxBackoff: -time.Second},  // negative cap
	}
	for i, o := range cases {
		if _, err := New(o); !errors.Is(err, er.ErrInvalidOptions) {
			t.Errorf("case %d: New(%+v) err = %v, want ErrInvalidOptions", i, o, err)
		}
	}
	if _, err := New(Options{BaseURL: "http://127.0.0.1:1"}); err != nil {
		t.Errorf("minimal valid options rejected: %v", err)
	}
}

// TestBackoffCeilingGrowsAndCaps draws the jitter at each retry count and
// checks every sample lands under the documented ceiling.
func TestBackoffCeilingGrowsAndCaps(t *testing.T) {
	c := newTestClient(t, "http://127.0.0.1:1", func(o *Options) {
		o.BaseBackoff = 10 * time.Millisecond
		o.MaxBackoff = 40 * time.Millisecond
	})
	ceilings := []time.Duration{
		10 * time.Millisecond, // retry 1
		20 * time.Millisecond, // retry 2
		40 * time.Millisecond, // retry 3
		40 * time.Millisecond, // retry 4: capped
		40 * time.Millisecond, // far past the shift range: capped, no overflow
	}
	retries := []int{1, 2, 3, 4, 80}
	for i, r := range retries {
		for j := 0; j < 200; j++ {
			if d := c.backoff(r, 0); d < 0 || d > ceilings[i] {
				t.Fatalf("backoff(retries=%d) = %s, want within [0, %s]", r, d, ceilings[i])
			}
		}
		if d := c.backoff(r, 2*time.Second); d != 2*time.Second {
			t.Fatalf("backoff(retries=%d, retryAfter=2s) = %s, want the 2s floor", r, d)
		}
	}
}
