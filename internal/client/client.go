// Package client is the retrying HTTP client for erserve: exponential
// backoff with full jitter, Retry-After honoring, per-attempt and overall
// deadline propagation, and automatic idempotency keys on every mutation —
// so a retried PUT/DELETE is applied exactly once no matter how many
// connections drop or how often the server restarts mid-request.
//
// The retry policy is deliberately narrow: transport errors and the
// transient statuses (429 queue-full, 502, 503 draining/recovering/breaker)
// are retried; everything else — including 504, which reports the job's own
// budget deterministically elapsing — is returned immediately, mapped onto
// the er error taxonomy via SentinelFor so callers branch with errors.Is.
package client

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	er "repro"
)

// Default values selected by zero Options fields.
const (
	// DefaultMaxAttempts is the per-call attempt budget selected by a zero
	// Options.MaxAttempts: one initial try plus four retries.
	DefaultMaxAttempts = 5
	// DefaultBaseBackoff is the first backoff ceiling selected by a zero
	// Options.BaseBackoff.
	DefaultBaseBackoff = 100 * time.Millisecond
	// DefaultMaxBackoff caps the exponential ceiling, selected by a zero
	// Options.MaxBackoff.
	DefaultMaxBackoff = 5 * time.Second
	// DefaultAttemptTimeout is the per-attempt deadline selected by a zero
	// Options.AttemptTimeout. It bounds how long one hung connection can
	// eat before the next retry; the caller's context bounds the whole
	// call.
	DefaultAttemptTimeout = 30 * time.Second
	// maxErrorBody caps how much of an error response body is read when
	// decoding the server's structured error.
	maxErrorBody = 1 << 20
)

// Options configures a Client. The zero value of every field except
// BaseURL selects a documented default; BaseURL is required.
type Options struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080". Required.
	BaseURL string
	// HTTPClient is the transport. Nil selects a plain &http.Client{} —
	// deliberately without its own Timeout, because AttemptTimeout and the
	// caller's context govern deadlines.
	HTTPClient *http.Client
	// MaxAttempts bounds tries per logical call (first attempt included).
	// Zero selects DefaultMaxAttempts; 1 disables retries; negative is
	// invalid.
	MaxAttempts int
	// BaseBackoff is the ceiling of the first retry's full-jitter sleep;
	// each further retry doubles the ceiling up to MaxBackoff. Zero selects
	// DefaultBaseBackoff.
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff ceiling. Zero selects DefaultMaxBackoff.
	MaxBackoff time.Duration
	// AttemptTimeout is each attempt's own deadline, layered under the
	// caller's context. Zero selects DefaultAttemptTimeout; negative
	// disables the per-attempt layer entirely.
	AttemptTimeout time.Duration
	// Rand injects the jitter source so tests can pin sleeps. Nil seeds a
	// private source from crypto/rand — distinct clients must not jitter in
	// lockstep, which is the whole point of jitter.
	Rand *rand.Rand
	// Logf receives one line per retry decision. Nil discards logs.
	Logf func(format string, args ...any)
}

// Validate reports the first configuration error, or nil, wrapping
// er.ErrInvalidOptions per the repo convention.
func (o Options) Validate() error {
	switch {
	case o.BaseURL == "":
		return fmt.Errorf("%w: client: BaseURL must be set", er.ErrInvalidOptions)
	case o.MaxAttempts < 0:
		return fmt.Errorf("%w: client: MaxAttempts must be >= 0, got %d", er.ErrInvalidOptions, o.MaxAttempts)
	case o.BaseBackoff < 0:
		return fmt.Errorf("%w: client: BaseBackoff must be >= 0, got %s", er.ErrInvalidOptions, o.BaseBackoff)
	case o.MaxBackoff < 0:
		return fmt.Errorf("%w: client: MaxBackoff must be >= 0, got %s", er.ErrInvalidOptions, o.MaxBackoff)
	}
	if _, err := url.Parse(o.BaseURL); err != nil {
		return fmt.Errorf("%w: client: BaseURL: %v", er.ErrInvalidOptions, err)
	}
	return nil
}

// withDefaults returns a copy with every zero field resolved.
func (o Options) withDefaults() Options {
	if o.HTTPClient == nil {
		o.HTTPClient = &http.Client{}
	}
	if o.MaxAttempts == 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.BaseBackoff == 0 {
		o.BaseBackoff = DefaultBaseBackoff
	}
	if o.MaxBackoff == 0 {
		o.MaxBackoff = DefaultMaxBackoff
	}
	if o.AttemptTimeout == 0 {
		o.AttemptTimeout = DefaultAttemptTimeout
	}
	if o.Rand == nil {
		var seed [8]byte
		_, _ = crand.Read(seed[:]) // an all-zero fallback seed still jitters
		var s int64
		for _, b := range seed {
			s = s<<8 | int64(b)
		}
		o.Rand = rand.New(rand.NewSource(s))
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Client is a retrying erserve client. Create with New; safe for
// concurrent use.
type Client struct {
	opts Options

	mu  sync.Mutex // guards rng (rand.Rand is not thread-safe)
	rng *rand.Rand
}

// New validates opts and builds a client.
func New(opts Options) (*Client, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	return &Client{opts: o, rng: o.Rand}, nil
}

// Record is the wire form of one collection record.
type Record struct {
	ID     string `json:"id,omitempty"`
	Entity string `json:"entity,omitempty"`
	Source int    `json:"source,omitempty"`
	Text   string `json:"text"`
}

// CollectionInfo is the wire form of one collection in a listing.
type CollectionInfo struct {
	Name    string `json:"name"`
	Records int    `json:"records"`
}

// ResolveResult is the subset of a terminal job response callers usually
// branch on; Raw retains the full body for anything else.
type ResolveResult struct {
	JobID    string          `json:"job_id"`
	State    string          `json:"state"`
	Matches  int             `json:"matches"`
	Clusters int             `json:"clusters"`
	Raw      json.RawMessage `json:"-"`
}

// Outcome reports how a mutation call concluded: Replayed is true when the
// server answered from its idempotency journal instead of applying again —
// i.e. an earlier attempt (possibly on a dropped connection) already did
// the work.
type Outcome struct {
	Replayed bool
}

// CreateCollection creates a named collection (exactly-once under retries).
func (c *Client) CreateCollection(ctx context.Context, name string) (Outcome, error) {
	body, err := json.Marshal(map[string]string{"name": name})
	if err != nil {
		return Outcome{}, fmt.Errorf("%w: client: encoding request: %v", er.ErrInvalidOptions, err)
	}
	return c.mutate(ctx, http.MethodPost, "/collections", body, nil)
}

// DropCollection deletes a collection and its records.
func (c *Client) DropCollection(ctx context.Context, name string) (Outcome, error) {
	return c.mutate(ctx, http.MethodDelete, "/collections/"+url.PathEscape(name), nil, nil)
}

// PutRecord upserts one record.
func (c *Client) PutRecord(ctx context.Context, collection, id string, rec Record) (Outcome, error) {
	rec.ID = "" // the ID travels in the path
	body, err := json.Marshal(rec)
	if err != nil {
		return Outcome{}, fmt.Errorf("%w: client: encoding request: %v", er.ErrInvalidOptions, err)
	}
	path := "/collections/" + url.PathEscape(collection) + "/records/" + url.PathEscape(id)
	return c.mutate(ctx, http.MethodPut, path, body, nil)
}

// DeleteRecord deletes one record.
func (c *Client) DeleteRecord(ctx context.Context, collection, id string) (Outcome, error) {
	path := "/collections/" + url.PathEscape(collection) + "/records/" + url.PathEscape(id)
	return c.mutate(ctx, http.MethodDelete, path, nil, nil)
}

// ListCollections lists every collection.
func (c *Client) ListCollections(ctx context.Context) ([]CollectionInfo, error) {
	var out struct {
		Collections []CollectionInfo `json:"collections"`
	}
	_, err := c.do(ctx, http.MethodGet, "/collections", nil, "", &out)
	return out.Collections, err
}

// GetCollection lists one collection's records.
func (c *Client) GetCollection(ctx context.Context, name string) ([]Record, error) {
	var out struct {
		Records []Record `json:"records"`
	}
	_, err := c.do(ctx, http.MethodGet, "/collections/"+url.PathEscape(name), nil, "", &out)
	return out.Records, err
}

// Resolve resolves a collection's full corpus. Resolution is read-only on
// the server, so it retries like any idempotent request but sends no key.
func (c *Client) Resolve(ctx context.Context, collection string) (*ResolveResult, error) {
	var raw json.RawMessage
	path := "/collections/" + url.PathEscape(collection) + "/resolve"
	if _, err := c.do(ctx, http.MethodPost, path, nil, "", &raw); err != nil {
		return nil, err
	}
	res := &ResolveResult{Raw: raw}
	if err := json.Unmarshal(raw, res); err != nil {
		return nil, fmt.Errorf("%w: client: decoding resolve response: %v", er.ErrBadData, err)
	}
	return res, nil
}

// Ready probes /readyz: nil means the server is accepting work.
func (c *Client) Ready(ctx context.Context) error {
	_, err := c.do(ctx, http.MethodGet, "/readyz", nil, "", nil)
	return err
}

// Stats fetches the /stats snapshot as raw JSON.
func (c *Client) Stats(ctx context.Context) (json.RawMessage, error) {
	var raw json.RawMessage
	_, err := c.do(ctx, http.MethodGet, "/stats", nil, "", &raw)
	return raw, err
}

// mutate runs one state-changing call with a fresh idempotency key held
// constant across every retry of this logical request — the contract that
// lets the server collapse duplicates.
func (c *Client) mutate(ctx context.Context, method, path string, body []byte, out any) (Outcome, error) {
	key, err := newIdempotencyKey(c)
	if err != nil {
		return Outcome{}, err
	}
	replayed, err := c.do(ctx, method, path, body, key, out)
	return Outcome{Replayed: replayed}, err
}

// newIdempotencyKey draws 16 random bytes (crypto/rand, falling back to
// the client's seeded source if the platform's entropy read fails) as hex.
func newIdempotencyKey(c *Client) (string, error) {
	var b [16]byte
	if _, err := crand.Read(b[:]); err != nil {
		c.mu.Lock()
		for i := range b {
			b[i] = byte(c.rng.Intn(256))
		}
		c.mu.Unlock()
	}
	return hex.EncodeToString(b[:]), nil
}

// do is the retry loop shared by every call. It rebuilds the request body
// each attempt (a consumed reader cannot be resent), layers the per-attempt
// timeout under the caller's context, and classifies each failure as
// retryable (transport error, 429/502/503 — sleeping with full jitter,
// floored by the server's Retry-After) or terminal (returned immediately as
// an *APIError wrapping the taxonomy sentinel). The bool result reports
// whether the server marked the response Idempotency-Replayed.
func (c *Client) do(ctx context.Context, method, path string, body []byte, idemKey string, out any) (bool, error) {
	var (
		lastErr    error
		retryAfter time.Duration
	)
	for attempt := 1; attempt <= c.opts.MaxAttempts; attempt++ {
		if attempt > 1 {
			d := c.backoff(attempt-1, retryAfter)
			c.opts.Logf("client: retrying %s %s in %s (attempt %d/%d): %v",
				method, path, d, attempt, c.opts.MaxAttempts, lastErr)
			if err := sleep(ctx, d); err != nil {
				return false, err
			}
		}
		replayed, retry, ra, err := c.attempt(ctx, method, path, body, idemKey, out)
		if err == nil {
			return replayed, nil
		}
		if !retry || attempt == c.opts.MaxAttempts {
			return false, err
		}
		// The caller's context ending is terminal no matter how the attempt
		// failed — its cancellation is indistinguishable from (and often the
		// cause of) a transport error on the in-flight request.
		if cerr := ctx.Err(); cerr != nil {
			return false, fmt.Errorf("client: %s %s: %w", method, path, context.Cause(ctx))
		}
		lastErr, retryAfter = err, ra
	}
	return false, lastErr
}

// attempt runs one HTTP exchange. retry reports whether the failure class
// is worth another attempt; ra carries the server's Retry-After wish.
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, idemKey string, out any) (replayed, retry bool, ra time.Duration, err error) {
	actx := ctx
	cancel := func() {}
	if c.opts.AttemptTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, c.opts.AttemptTimeout)
	}
	defer cancel()
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, c.opts.BaseURL+path, rd)
	if err != nil {
		return false, false, 0, fmt.Errorf("%w: client: building request: %v", er.ErrInvalidOptions, err)
	}
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		// Transport failure: connection refused, reset, cut mid-request,
		// attempt timeout. All retryable — the idempotency key makes the
		// ambiguous ones (request sent, response lost) safe to resend.
		return false, true, 0, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out != nil {
			if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
				return false, false, 0, fmt.Errorf("%w: client: decoding %s %s response: %v", er.ErrBadData, method, path, err)
			}
		}
		return resp.Header.Get("Idempotency-Replayed") == "true", false, 0, nil
	}
	apiErr := &APIError{Status: resp.StatusCode}
	var wire struct {
		Error string `json:"error"`
		Kind  string `json:"kind"`
	}
	if raw, rerr := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody)); rerr == nil {
		if jerr := json.Unmarshal(raw, &wire); jerr == nil {
			apiErr.Kind, apiErr.Message = wire.Kind, wire.Error
		}
	}
	return false, retryableStatus(resp.StatusCode), parseRetryAfter(resp.Header), apiErr
}

// backoff draws the sleep before retry number `retries`: full jitter over
// an exponentially growing ceiling (uniform in [0, min(MaxBackoff,
// BaseBackoff·2^(retries-1))]), floored by the server's Retry-After. Full
// jitter over equal or no jitter: a thundering herd that failed together
// must not come back together.
func (c *Client) backoff(retries int, retryAfter time.Duration) time.Duration {
	ceiling := c.opts.BaseBackoff << (retries - 1)
	if ceiling <= 0 || ceiling > c.opts.MaxBackoff {
		ceiling = c.opts.MaxBackoff
	}
	var d time.Duration
	if ceiling > 0 {
		c.mu.Lock()
		d = time.Duration(c.rng.Int63n(int64(ceiling) + 1))
		c.mu.Unlock()
	}
	if d < retryAfter {
		d = retryAfter
	}
	return d
}

// parseRetryAfter reads the delay-seconds form of Retry-After (the only
// form erserve emits; HTTP-date would need a wall clock).
func parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// sleep waits d or until ctx ends, whichever comes first.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("client: retry wait aborted: %w", context.Cause(ctx))
	}
}
