package client

import (
	"context"
	"errors"
	"strconv"

	er "repro"
)

// Client-side sentinels for outcomes that only exist at the HTTP boundary
// (the core taxonomy in the er package has no notion of "collection not
// found" or "server draining"). Every error the client returns wraps one
// of these or an er sentinel, so callers branch with errors.Is exactly as
// they do against the library.
var (
	// ErrNotFound reports a 404: the collection or record does not exist.
	ErrNotFound = errors.New("client: not found")

	// ErrExists reports a 409: the collection already exists.
	ErrExists = errors.New("client: already exists")

	// ErrIdempotencyConflict reports a 422 idempotency_conflict: the
	// idempotency key was already used for a different request body. This
	// is a client bug (a reused key), never worth retrying.
	ErrIdempotencyConflict = errors.New("client: idempotency key reused for a different request")

	// ErrOverloaded reports a 429: the server's admission queue is full.
	// The client retries these; callers see it only once attempts are
	// exhausted.
	ErrOverloaded = errors.New("client: server overloaded")

	// ErrUnavailable reports a 502/503: draining, recovering, breaker open
	// or storage failure. Retried like ErrOverloaded.
	ErrUnavailable = errors.New("client: server unavailable")
)

// SentinelFor maps an HTTP status (plus the server's machine-readable
// error kind, which disambiguates statuses shared by several taxonomy
// classes) back onto the sentinel a caller should errors.Is against. It is
// the inverse of er.HTTPStatus composed with serve.ErrKind, and the
// round-trip test in this package pins that: every er sentinel survives
// status→kind→sentinel unchanged.
func SentinelFor(status int, kind string) error {
	switch status {
	case 400:
		switch kind {
		case "bad_data":
			return er.ErrBadData
		case "no_records":
			return er.ErrNoRecords
		default:
			return er.ErrInvalidOptions
		}
	case 404:
		return ErrNotFound
	case 409:
		return ErrExists
	case 422:
		if kind == "idempotency_conflict" {
			return ErrIdempotencyConflict
		}
		return er.ErrNoCandidates
	case 429:
		return ErrOverloaded
	case er.StatusClientClosedRequest:
		return context.Canceled
	case 502, 503:
		return ErrUnavailable
	case 504:
		return er.ErrBudgetExceeded
	default:
		if status >= 500 {
			return er.ErrInternal
		}
		return er.ErrInvalidOptions
	}
}

// retryableStatus reports whether a failed attempt with this status is
// worth retrying: transient capacity and availability conditions are; 504
// is not — the job's own budget elapsed, and resubmitting the same work
// under the same budget deterministically repeats the outcome.
func retryableStatus(status int) bool {
	switch status {
	case 429, 502, 503:
		return true
	default:
		return false
	}
}

// APIError is a non-2xx response: the HTTP status, the server's
// machine-readable kind, and its human-readable message. Unwrap yields the
// sentinel SentinelFor maps the pair to, so errors.Is works through it.
type APIError struct {
	Status  int
	Kind    string
	Message string
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return e.Message
	}
	return "client: http status " + strconv.Itoa(e.Status)
}

func (e *APIError) Unwrap() error { return SentinelFor(e.Status, e.Kind) }
