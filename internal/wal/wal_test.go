package wal

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	er "repro"
)

// openLog opens a log in dir, failing the test on error and closing it at
// cleanup (a double Close from a test body is a no-op).
func openLog(t *testing.T, opts Options) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(context.Background(), opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { _ = l.Close() })
	return l, rec
}

// appendN durably appends records 1..n with deterministic payloads.
func appendN(t *testing.T, l *Log, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		seq, err := l.AppendDurable(context.Background(), 1, payload(i))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("append %d: got seq %d", i, seq)
		}
	}
}

func payload(i int) []byte { return []byte(fmt.Sprintf("record-%04d", i)) }

// wantRecords asserts rec holds exactly records from..to with the
// deterministic payloads appendN wrote.
func wantRecords(t *testing.T, rec *Recovery, from, to int) {
	t.Helper()
	want := to - from + 1
	if want < 0 {
		want = 0
	}
	if len(rec.Records) != want {
		t.Fatalf("replayed %d record(s), want %d", len(rec.Records), want)
	}
	for i, r := range rec.Records {
		seq := uint64(from + i)
		if r.Seq != seq {
			t.Fatalf("record %d: seq %d, want %d", i, r.Seq, seq)
		}
		if !bytes.Equal(r.Data, payload(from+i)) {
			t.Fatalf("record %d: data %q, want %q", i, r.Data, payload(from+i))
		}
	}
}

func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		ok   bool
	}{
		{"valid", Options{Dir: "x"}, true},
		{"empty dir", Options{}, false},
		{"negative segment bytes", Options{Dir: "x", MaxSegmentBytes: -1}, false},
		{"negative fsync interval", Options{Dir: "x", FsyncInterval: -time.Second}, false},
		{"negative record bytes", Options{Dir: "x", MaxRecordBytes: -1}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.opts.Validate()
			if tc.ok && err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("Validate accepted invalid options")
				}
				if !errors.Is(err, er.ErrInvalidOptions) {
					t.Fatalf("error %v does not wrap ErrInvalidOptions", err)
				}
			}
		})
	}
}

func TestOpenRejectsInvalidOptions(t *testing.T) {
	_, _, err := Open(context.Background(), Options{})
	if !errors.Is(err, er.ErrInvalidOptions) {
		t.Fatalf("Open on empty Dir: %v, want ErrInvalidOptions", err)
	}
}

func TestEmptyLogRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := openLog(t, Options{Dir: dir})
	if rec.LastSeq != 0 || rec.Replayed != 0 || rec.SnapshotRestored {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec = openLog(t, Options{Dir: dir})
	if rec.LastSeq != 0 || rec.Replayed != 0 {
		t.Fatalf("reopened empty log recovered %+v", rec)
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, Options{Dir: dir})
	appendN(t, l, 10)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, rec := openLog(t, Options{Dir: dir})
	wantRecords(t, rec, 1, 10)
	if rec.LastSeq != 10 || rec.TornTail {
		t.Fatalf("recovery %+v", rec)
	}
	// The reopened log continues the sequence.
	seq, err := l2.AppendDurable(context.Background(), 1, payload(11))
	if err != nil || seq != 11 {
		t.Fatalf("append after reopen: seq %d, err %v", seq, err)
	}
}

func TestReplayWithoutCleanClose(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, Options{Dir: dir})
	appendN(t, l, 5)
	// No Close: simulate a process that vanished after its last fsync.
	_, rec := openLog(t, Options{Dir: dir})
	wantRecords(t, rec, 1, 5)
	if rec.TornTail {
		t.Fatal("fsynced log reported a torn tail")
	}
	_ = l.Close()
}

func TestRotation(t *testing.T) {
	dir := t.TempDir()
	// Frames are 8+10+11 = 29 bytes; 64-byte segments hold one frame each
	// after the 8-byte magic.
	l, _ := openLog(t, Options{Dir: dir, MaxSegmentBytes: 64})
	appendN(t, l, 6)
	if got := l.Stats().Rotations; got == 0 {
		t.Fatal("no rotations under a 64-byte segment cap")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) < 3 {
		t.Fatalf("expected multiple segments, found %d file(s)", len(names))
	}
	_, rec := openLog(t, Options{Dir: dir, MaxSegmentBytes: 64})
	wantRecords(t, rec, 1, 6)
	if rec.Segments < 3 {
		t.Fatalf("replay examined %d segment(s), want >= 3", rec.Segments)
	}
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, Options{Dir: dir})
	appendN(t, l, 4)
	if got := l.LastSeq(); got != 4 {
		t.Fatalf("LastSeq = %d, want 4", got)
	}
	if err := l.WriteSnapshot([]byte("state@4"), 4); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	for i := 5; i <= 7; i++ {
		if _, err := l.AppendDurable(context.Background(), 1, payload(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Compaction removed the pre-snapshot segment.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() == "wal-0000000000000001.log" {
			t.Fatal("compaction left the superseded first segment")
		}
	}

	_, rec := openLog(t, Options{Dir: dir})
	if !rec.SnapshotRestored || rec.SnapshotSeq != 4 {
		t.Fatalf("recovery %+v: want snapshot at 4", rec)
	}
	if !bytes.Equal(rec.SnapshotData, []byte("state@4")) {
		t.Fatalf("snapshot data %q", rec.SnapshotData)
	}
	wantRecords(t, rec, 5, 7)
	if rec.LastSeq != 7 {
		t.Fatalf("LastSeq %d, want 7", rec.LastSeq)
	}
}

func TestSnapshotSupersedesOlderSnapshot(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, Options{Dir: dir})
	appendN(t, l, 2)
	if err := l.WriteSnapshot([]byte("state@2"), 2); err != nil {
		t.Fatalf("first snapshot: %v", err)
	}
	for i := 3; i <= 4; i++ {
		if _, err := l.AppendDurable(context.Background(), 1, payload(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.WriteSnapshot([]byte("state@4"), 4); err != nil {
		t.Fatalf("second snapshot: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "snap-0000000000000002.snap")); !os.IsNotExist(err) {
		t.Fatalf("first snapshot not compacted away: %v", err)
	}
	_, rec := openLog(t, Options{Dir: dir})
	if !rec.SnapshotRestored || rec.SnapshotSeq != 4 || rec.Replayed != 0 {
		t.Fatalf("recovery %+v: want snapshot at 4, nothing replayed", rec)
	}
}

func TestCorruptSnapshotFallsBackToChain(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, Options{Dir: dir})
	appendN(t, l, 3)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// A bogus snapshot that verification must reject; the full chain still
	// covers everything, so recovery falls back to it.
	bogus := filepath.Join(dir, "snap-0000000000000002.snap")
	if err := os.WriteFile(bogus, []byte("ERWALSN1 not a real frame"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, rec := openLog(t, Options{Dir: dir})
	if rec.SnapshotRestored {
		t.Fatal("restored a corrupt snapshot")
	}
	wantRecords(t, rec, 1, 3)
}

func TestCorruptSnapshotWithCompactedChainFailsTyped(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, Options{Dir: dir})
	appendN(t, l, 3)
	if err := l.WriteSnapshot([]byte("state@3"), 3); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Corrupt the only snapshot. Compaction already deleted the
	// pre-snapshot segments, so nothing can cover records 1..3: Open must
	// fail typed rather than resurrect a partial history.
	snap := filepath.Join(dir, "snap-0000000000000003.snap")
	buf, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)-1] ^= 0x01
	if err := os.WriteFile(snap, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(context.Background(), Options{Dir: dir})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open: %v, want ErrCorrupt", err)
	}
}

func TestOnSnapshotAndOnRecordHooks(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, Options{Dir: dir})
	appendN(t, l, 3)
	if err := l.WriteSnapshot([]byte("state@3"), 3); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	for i := 4; i <= 5; i++ {
		if _, err := l.AppendDurable(context.Background(), 1, payload(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	var gotSnap []byte
	var gotSeqs []uint64
	_, rec := openLog(t, Options{
		Dir: dir,
		OnSnapshot: func(seq uint64, data []byte) error {
			gotSnap = append([]byte(nil), data...)
			if seq != 3 {
				return fmt.Errorf("snapshot seq %d, want 3: %w", seq, ErrCorrupt)
			}
			return nil
		},
		OnRecord: func(r Record) error {
			gotSeqs = append(gotSeqs, r.Seq)
			return nil
		},
	})
	if !bytes.Equal(gotSnap, []byte("state@3")) {
		t.Fatalf("OnSnapshot got %q", gotSnap)
	}
	if len(gotSeqs) != 2 || gotSeqs[0] != 4 || gotSeqs[1] != 5 {
		t.Fatalf("OnRecord got %v", gotSeqs)
	}
	if rec.Records != nil || rec.SnapshotData != nil {
		t.Fatal("hooks set, but Recovery still carries the data")
	}
}

func TestOnRecordErrorAbortsOpen(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, Options{Dir: dir})
	appendN(t, l, 2)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	rejectErr := errors.New("apply failed")
	_, _, err := Open(context.Background(), Options{
		Dir:      dir,
		OnRecord: func(Record) error { return rejectErr },
	})
	if !errors.Is(err, rejectErr) {
		t.Fatalf("Open: %v, want the hook's error", err)
	}
}

func TestGroupCommitWaitDurable(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, Options{Dir: dir, FsyncInterval: time.Millisecond})
	var seqs []uint64
	for i := 1; i <= 20; i++ {
		seq, err := l.Append(1, payload(i))
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		seqs = append(seqs, seq)
	}
	if err := l.WaitDurable(context.Background(), seqs[len(seqs)-1]); err != nil {
		t.Fatalf("WaitDurable: %v", err)
	}
	stats := l.Stats()
	if stats.DurableSeq != 20 {
		t.Fatalf("DurableSeq %d, want 20", stats.DurableSeq)
	}
	if stats.Syncs >= stats.Appends {
		t.Fatalf("no group commit: %d sync(s) for %d append(s)", stats.Syncs, stats.Appends)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec := openLog(t, Options{Dir: dir})
	wantRecords(t, rec, 1, 20)
}

func TestWaitDurableContextCancel(t *testing.T) {
	dir := t.TempDir()
	// An hour-long interval: the first append is synced on demand, the
	// second stays staged until Close, so its wait must honor ctx.
	l, _ := openLog(t, Options{Dir: dir, FsyncInterval: time.Hour})
	if _, err := l.AppendDurable(context.Background(), 1, payload(1)); err != nil {
		t.Fatalf("append 1: %v", err)
	}
	seq, err := l.Append(1, payload(2))
	if err != nil {
		t.Fatalf("append 2: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := l.WaitDurable(ctx, seq); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitDurable: %v, want deadline exceeded", err)
	}
	// Close flushes the staged tail; the record is still durable.
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec := openLog(t, Options{Dir: dir})
	wantRecords(t, rec, 1, 2)
}

func TestAppendTooLarge(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, Options{Dir: dir, MaxRecordBytes: 8})
	if _, err := l.Append(1, make([]byte, 9)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized append: %v, want ErrTooLarge", err)
	}
	if _, err := l.AppendDurable(context.Background(), 1, make([]byte, 8)); err != nil {
		t.Fatalf("append at the cap: %v", err)
	}
}

func TestClosedLogRejectsWork(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, Options{Dir: dir})
	appendN(t, l, 1)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := l.Append(1, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after Close: %v, want ErrClosed", err)
	}
	if err := l.WriteSnapshot(nil, 1); !errors.Is(err, ErrClosed) {
		t.Fatalf("WriteSnapshot after Close: %v, want ErrClosed", err)
	}
	if err := l.WaitDurable(context.Background(), 99); !errors.Is(err, ErrClosed) {
		t.Fatalf("WaitDurable after Close: %v, want ErrClosed", err)
	}
}

func TestConcurrentAppendDurable(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, Options{Dir: dir, FsyncInterval: time.Millisecond})
	const (
		workers = 8
		each    = 25
	)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < each; i++ {
				data := []byte(fmt.Sprintf("w%d-%d", w, i))
				if _, err := l.AppendDurable(context.Background(), 1, data); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatalf("worker: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec := openLog(t, Options{Dir: dir})
	if rec.Replayed != workers*each {
		t.Fatalf("replayed %d record(s), want %d", rec.Replayed, workers*each)
	}
	for i, r := range rec.Records {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
}

func TestIgnoresForeignAndTempFiles(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, Options{Dir: dir})
	appendN(t, l, 2)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	for _, name := range []string{"README", "snap-0000000000000009.snap.tmp", "wal-zz.log"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, rec := openLog(t, Options{Dir: dir})
	wantRecords(t, rec, 1, 2)
	// The stale temp file was cleared; foreign files were left alone.
	if _, err := os.Stat(filepath.Join(dir, "snap-0000000000000009.snap.tmp")); !os.IsNotExist(err) {
		t.Fatalf("stale temp file survived recovery: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatalf("foreign file was touched: %v", err)
	}
}

func TestParseSeqName(t *testing.T) {
	cases := []struct {
		name string
		seq  uint64
		ok   bool
	}{
		{"wal-0000000000000001.log", 1, true},
		{"wal-00000000000000ff.log", 255, true},
		{"wal-1.log", 0, false},
		{"wal-000000000000000g.log", 0, false},
		{"snap-0000000000000001.snap", 0, false}, // wrong prefix for wal-
		{"wal-0000000000000001.log.tmp", 0, false},
	}
	for _, tc := range cases {
		seq, ok := parseSeqName(tc.name, "wal-", ".log")
		if ok != tc.ok || seq != tc.seq {
			t.Errorf("parseSeqName(%q) = (%d, %v), want (%d, %v)", tc.name, seq, ok, tc.seq, tc.ok)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	frame := appendFrame(nil, 42, 7, "", []byte("hello"))
	rec, next, fault := decodeFrame(frame, 0, DefaultMaxRecordBytes)
	if fault != nil {
		t.Fatalf("decodeFrame: %v", fault)
	}
	if next != len(frame) {
		t.Fatalf("decode consumed %d of %d byte(s)", next, len(frame))
	}
	if rec.Seq != 42 || rec.Type != 7 || string(rec.Data) != "hello" {
		t.Fatalf("decoded %+v", rec)
	}
}

// TestWriteSnapshotStaleRefused pins the coveredSeq contract: a snapshot
// whose stamp does not match the log head is refused outright — nothing
// written, nothing compacted — because accepting it would let compaction
// delete records the payload does not contain.
func TestWriteSnapshotStaleRefused(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, Options{Dir: dir})
	appendN(t, l, 3)
	if err := l.WriteSnapshot([]byte("state@2"), 2); !errors.Is(err, ErrSnapshotStale) {
		t.Fatalf("stale snapshot: %v, want ErrSnapshotStale", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "snap-0000000000000002.snap")); !os.IsNotExist(err) {
		t.Fatalf("refused snapshot left a file behind: %v", err)
	}
	// The refusal is not sticky: the log keeps accepting appends and a
	// correctly stamped snapshot still lands.
	if _, err := l.AppendDurable(context.Background(), 1, payload(4)); err != nil {
		t.Fatalf("append after refused snapshot: %v", err)
	}
	if err := l.WriteSnapshot([]byte("state@4"), l.LastSeq()); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec := openLog(t, Options{Dir: dir})
	if !rec.SnapshotRestored || rec.SnapshotSeq != 4 {
		t.Fatalf("recovery %+v: want snapshot at 4", rec)
	}
}
