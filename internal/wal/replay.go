package wal

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/guard"
)

// Recovery reports what Open reconstructed: the snapshot it restored, how
// many records it replayed, and whether it had to truncate a torn tail.
// erserve surfaces these fields through /readyz and /stats.
type Recovery struct {
	// SnapshotSeq is the sequence number covered by the restored
	// snapshot; 0 when no snapshot was restored.
	SnapshotSeq uint64
	// SnapshotData is the restored snapshot payload when
	// Options.OnSnapshot is nil (the hook consumes it otherwise).
	SnapshotData []byte
	// SnapshotRestored reports whether a snapshot was found and restored.
	SnapshotRestored bool
	// Records holds the replayed post-snapshot records when
	// Options.OnRecord is nil (the hook consumes them otherwise).
	Records []Record
	// Replayed counts the post-snapshot records replayed.
	Replayed int
	// LastSeq is the highest sequence number in the reconstructed log; 0
	// for an empty log.
	LastSeq uint64
	// TornTail reports that the final segment ended in a torn or corrupt
	// frame — the expected residue of a crash mid-write — which was
	// truncated away. Acknowledged records are never inside the torn
	// region (acknowledgment requires a covering fsync).
	TornTail bool
	// TruncatedBytes is the size of the truncated torn region.
	TruncatedBytes int64
	// Segments is the number of live segment files replay examined.
	Segments int
}

// segmentInfo is one on-disk segment discovered by Open.
type segmentInfo struct {
	name  string
	start uint64
}

// parseSeqName extracts the 16-hex-digit sequence number from names like
// wal-<seq>.log / snap-<seq>.snap.
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	hexPart := name[len(prefix) : len(name)-len(suffix)]
	if len(hexPart) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Open recovers the log in dir — newest restorable snapshot first, then
// every intact record after it — and returns a Log ready for appends.
// Torn or corrupt tails of the final segment are truncated (reported in
// Recovery, never an error); damage anywhere else fails with an error
// wrapping ErrCorrupt. ctx cancels a long replay via the usual guard
// checkpoint protocol.
func Open(ctx context.Context, opts Options) (*Log, *Recovery, error) {
	if err := opts.Validate(); err != nil {
		return nil, nil, err
	}
	o := opts.withDefaults()
	if err := o.FS.MkdirAll(o.Dir); err != nil {
		return nil, nil, fmt.Errorf("wal: creating data directory %s: %w", o.Dir, err)
	}
	names, err := o.FS.ReadDir(o.Dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: listing data directory %s: %w", o.Dir, err)
	}

	var segs []segmentInfo
	var snapSeqs []uint64
	for _, name := range names {
		switch {
		case strings.HasSuffix(name, ".tmp"):
			// Unpublished temp files are pre-crash garbage by construction
			// (publication is the atomic rename); clear them.
			if err := o.FS.Remove(filepath.Join(o.Dir, name)); err != nil {
				o.Logf("wal: could not remove stale temp file %s: %v", name, err)
			}
		default:
			if start, ok := parseSeqName(name, "wal-", ".log"); ok {
				segs = append(segs, segmentInfo{name: name, start: start})
			} else if seq, ok := parseSeqName(name, "snap-", ".snap"); ok {
				snapSeqs = append(snapSeqs, seq)
			} else {
				o.Logf("wal: ignoring unrecognized file %s", name)
			}
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].start < segs[j].start })
	sort.Slice(snapSeqs, func(i, j int) bool { return snapSeqs[i] > snapSeqs[j] })

	check := guard.FromContext(ctx)
	rec, err := replay(o, check, segs, snapSeqs)
	if err != nil {
		return nil, nil, err
	}

	l := &Log{
		opts:    o,
		fs:      o.FS,
		nextSeq: rec.LastSeq + 1,
		durable: rec.LastSeq, // everything replayed is on disk by definition
		closeCh: make(chan struct{}),
		syncReq: make(chan struct{}, 1),
	}
	if err := l.openSegmentLocked(l.nextSeq); err != nil {
		return nil, nil, err
	}
	if o.FsyncInterval > 0 {
		l.syncerDone = make(chan struct{})
		go l.syncer()
	}
	return l, rec, nil
}

// replay reconstructs state from the discovered snapshots and segments.
// Snapshot candidates are tried newest-first; a candidate is viable only
// when the surviving segments cover every record after it (no gap), so a
// snapshot corrupted at rest falls back to an older one when — and only
// when — the older history still exists.
func replay(o Options, check *guard.Checkpoint, segs []segmentInfo, snapSeqs []uint64) (*Recovery, error) {
	for _, snapSeq := range snapSeqs {
		data, ok := readSnapshot(o, snapSeq)
		if !ok {
			continue
		}
		rec, err := replayChain(o, check, segs, snapSeq)
		if err != nil || rec == nil {
			if err != nil {
				return nil, err
			}
			o.Logf("wal: snapshot %d is not covered by the surviving segments; trying older", snapSeq)
			continue
		}
		rec.SnapshotSeq = snapSeq
		rec.SnapshotRestored = true
		if o.OnSnapshot != nil {
			if err := o.OnSnapshot(snapSeq, data); err != nil {
				return nil, fmt.Errorf("wal: snapshot restore rejected: %w", err)
			}
		} else {
			rec.SnapshotData = data
		}
		if err := deliverRecords(o, rec); err != nil {
			return nil, err
		}
		return rec, nil
	}
	// No restorable snapshot: the segment chain must reach back to the
	// very first record.
	rec, err := replayChain(o, check, segs, 0)
	if err != nil {
		return nil, err
	}
	if rec == nil {
		return nil, fmt.Errorf("%w: no restorable snapshot and the segment chain does not start at record 1", ErrCorrupt)
	}
	if len(snapSeqs) > 0 {
		o.Logf("wal: no snapshot restorable; replayed the full segment chain instead")
	}
	if err := deliverRecords(o, rec); err != nil {
		return nil, err
	}
	return rec, nil
}

// deliverRecords hands the replayed records to the OnRecord hook (which
// then owns them) or leaves them in the Recovery.
func deliverRecords(o Options, rec *Recovery) error {
	if o.OnRecord == nil {
		return nil
	}
	for _, r := range rec.Records {
		if err := o.OnRecord(r); err != nil {
			return fmt.Errorf("wal: replayed record %d rejected: %w", r.Seq, err)
		}
	}
	rec.Records = nil
	return nil
}

// readSnapshot reads and verifies snap-<seq>.snap, reporting ok=false on
// any damage (the caller falls back to an older snapshot or the full
// chain — a snapshot alone can always be discarded safely).
func readSnapshot(o Options, seq uint64) ([]byte, bool) {
	path := snapPath(o.Dir, seq)
	buf, err := readAll(o.FS, path)
	if err != nil {
		o.Logf("wal: unreadable snapshot %s: %v", path, err)
		return nil, false
	}
	if len(buf) < len(snapMagic) || string(buf[:len(snapMagic)]) != snapMagic {
		o.Logf("wal: snapshot %s has a bad header", path)
		return nil, false
	}
	frame, end, fault := decodeFrame(buf, len(snapMagic), o.MaxRecordBytes)
	if fault != nil || end != len(buf) || frame.Seq != seq {
		o.Logf("wal: snapshot %s failed verification", path)
		return nil, false
	}
	return frame.Data, true
}

// replayChain replays every record with seq > snapSeq from the segment
// files. It returns (nil, nil) when the surviving segments cannot cover
// snapSeq+1 onward — a gap the caller may be able to bridge with an older
// snapshot — and a typed error for damage no fallback can repair.
func replayChain(o Options, check *guard.Checkpoint, segs []segmentInfo, snapSeq uint64) (*Recovery, error) {
	replayStart := snapSeq + 1
	// Trim segments fully superseded by the snapshot: segment i is stale
	// when its successor already starts at or before replayStart.
	first := 0
	for first+1 < len(segs) && segs[first+1].start <= replayStart {
		first++
	}
	chain := segs[first:]
	if len(chain) > 0 && chain[0].start > replayStart {
		return nil, nil // gap before the first surviving segment
	}
	rec := &Recovery{LastSeq: snapSeq, Segments: len(chain)}
	expected := uint64(0) // next seq the chain must produce; 0 = take the first segment's start
	for i, seg := range chain {
		final := i == len(chain)-1
		if expected == 0 {
			expected = seg.start
		} else if seg.start != expected {
			return nil, fmt.Errorf("%w: segment %s starts at record %d, expected %d (missing or misordered segment)", ErrCorrupt, seg.name, seg.start, expected)
		}
		last, err := replaySegment(o, check, seg, final, snapSeq, rec)
		if err != nil {
			return nil, err
		}
		if last >= seg.start {
			expected = last + 1
		}
		// An empty segment is legal only as the freshly-created final
		// segment of a previous incarnation.
		if last < seg.start && !final {
			return nil, fmt.Errorf("%w: sealed segment %s holds no records", ErrCorrupt, seg.name)
		}
	}
	if rec.LastSeq < snapSeq {
		rec.LastSeq = snapSeq
	}
	return rec, nil
}

// replaySegment decodes one segment file. For the final segment a bad
// frame is a torn tail: everything from it on is truncated and reported.
// For sealed segments — fsynced before their successor was created — a
// bad frame is ErrCorrupt. Returns the last sequence number the segment
// produced (seg.start-1 when it held none).
func replaySegment(o Options, check *guard.Checkpoint, seg segmentInfo, final bool, snapSeq uint64, rec *Recovery) (uint64, error) {
	path := filepath.Join(o.Dir, seg.name)
	buf, err := readAll(o.FS, path)
	if err != nil {
		return 0, fmt.Errorf("wal: reading segment %s: %w", seg.name, err)
	}
	last := seg.start - 1
	if len(buf) < len(segMagic) || string(buf[:len(segMagic)]) != segMagic {
		if final {
			// The header write itself was torn; the segment never held a
			// record. Reset it to nothing.
			return last, truncateTail(o, path, 0, int64(len(buf)), rec)
		}
		return 0, fmt.Errorf("%w: sealed segment %s has a bad header", ErrCorrupt, seg.name)
	}
	off := len(segMagic)
	for off < len(buf) {
		if err := check.Tick(); err != nil {
			return 0, fmt.Errorf("wal: replay aborted: %w", err)
		}
		frame, next, fault := decodeFrame(buf, off, o.MaxRecordBytes)
		if fault != nil {
			if final {
				o.Logf("wal: torn tail in %s at offset %d (%s); truncating %d byte(s)", seg.name, off, fault.reason, len(buf)-off)
				return last, truncateTail(o, path, int64(off), int64(len(buf)-off), rec)
			}
			return 0, fmt.Errorf("%w: sealed segment %s at offset %d: %s", ErrCorrupt, seg.name, off, fault.reason)
		}
		want := last + 1
		if frame.Seq != want {
			// A verified frame with the wrong sequence cannot be a torn
			// write — the checksum passed — so even at the tail this is
			// logical corruption.
			return 0, fmt.Errorf("%w: segment %s at offset %d: record %d where %d was expected", ErrCorrupt, seg.name, off, frame.Seq, want)
		}
		last = frame.Seq
		if frame.Seq > snapSeq {
			rec.Records = append(rec.Records, frame)
			rec.Replayed++
			rec.LastSeq = frame.Seq
		}
		off = next
	}
	return last, nil
}

// truncateTail cuts the torn region off the final segment and records it.
func truncateTail(o Options, path string, keep, lost int64, rec *Recovery) error {
	if err := o.FS.Truncate(path, keep); err != nil {
		return fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
	}
	rec.TornTail = true
	rec.TruncatedBytes += lost
	return nil
}

// readAll reads a whole file through the FS abstraction.
func readAll(fs FS, path string) ([]byte, error) {
	f, err := fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf, err := io.ReadAll(f)
	if err != nil {
		return nil, fmt.Errorf("wal: reading %s: %w", path, err)
	}
	return buf, nil
}
