package wal

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// writeSealedAndFinal builds a two-segment log on disk: records 1..sealed
// in a sealed first segment, records sealed+1..sealed+final in the final
// segment, then closes the log. It returns the two segment paths.
func writeSealedAndFinal(t *testing.T, dir string, sealed, final int) (sealedPath, finalPath string) {
	t.Helper()
	// Size the cap so exactly `sealed` records fit before rotation: each
	// frame is frameHeaderLen+recordHeaderLen+len(payload) bytes.
	frame := frameHeaderLen + recordHeaderLen + len(payload(1))
	l, _, err := Open(context.Background(), Options{
		Dir:             dir,
		MaxSegmentBytes: int64(len(segMagic) + sealed*frame),
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 1; i <= sealed+final; i++ {
		if _, err := l.AppendDurable(context.Background(), 1, payload(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return segPath(dir, 1), segPath(dir, uint64(sealed)+1)
}

// frameStart returns the byte offset of the n-th (1-based) frame in a
// segment file.
func frameStart(n int) int64 {
	frame := frameHeaderLen + recordHeaderLen + len(payload(1))
	return int64(len(segMagic) + (n-1)*frame)
}

func mutateFile(t *testing.T, path string, mutate func([]byte) []byte) {
	t.Helper()
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(buf), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptionMatrix is the torn-write/corruption matrix from the
// crash-recovery contract: every fault either recovers the intact prefix
// (torn tail in the final segment, reported in Recovery) or fails Open
// with ErrCorrupt (damage to sealed history) — never a panic, never
// silent loss. The log holds records 1..3 sealed and 4..6 final.
func TestCorruptionMatrix(t *testing.T) {
	type matrixCase struct {
		name string
		// mutate damages the on-disk log; sealedPath/finalPath are the two
		// segment files.
		mutate func(t *testing.T, sealedPath, finalPath string)
		// wantLast is the highest record recovery must restore (0 means
		// Open must fail with ErrCorrupt instead).
		wantLast  uint64
		wantTorn  bool
		wantError bool
	}
	cases := []matrixCase{
		{
			name: "truncated length prefix",
			mutate: func(t *testing.T, _, finalPath string) {
				// Keep 3 bytes of record 6's frame header: not enough to
				// even read the declared length.
				mutateFile(t, finalPath, func(b []byte) []byte { return b[:frameStart(3)+3] })
			},
			wantLast: 5,
			wantTorn: true,
		},
		{
			name: "truncated payload",
			mutate: func(t *testing.T, _, finalPath string) {
				// The header of record 6 survives but half its payload is
				// missing.
				mutateFile(t, finalPath, func(b []byte) []byte { return b[:frameStart(3)+frameHeaderLen+5] })
			},
			wantLast: 5,
			wantTorn: true,
		},
		{
			name: "bad CRC on the final record",
			mutate: func(t *testing.T, _, finalPath string) {
				mutateFile(t, finalPath, func(b []byte) []byte {
					b[frameStart(3)+frameHeaderLen+recordHeaderLen] ^= 0x01 // first data byte of record 6
					return b
				})
			},
			wantLast: 5,
			wantTorn: true,
		},
		{
			name: "zero-filled tail",
			mutate: func(t *testing.T, _, finalPath string) {
				// Preallocated-but-unwritten blocks after a crash read back
				// as zeros; a zero length prefix is below the record header
				// size and must be treated as torn, not decoded.
				mutateFile(t, finalPath, func(b []byte) []byte { return append(b, make([]byte, 64)...) })
			},
			wantLast: 6,
			wantTorn: true,
		},
		{
			name: "bit-flip mid final segment",
			mutate: func(t *testing.T, _, finalPath string) {
				// Damage record 5: it and everything after it are gone, but
				// the intact prefix 1..4 survives.
				mutateFile(t, finalPath, func(b []byte) []byte {
					b[frameStart(2)+frameHeaderLen+2] ^= 0x80
					return b
				})
			},
			wantLast: 4,
			wantTorn: true,
		},
		{
			name: "torn segment header",
			mutate: func(t *testing.T, _, finalPath string) {
				// The crash tore the magic itself: the final segment never
				// held a durable record.
				mutateFile(t, finalPath, func(b []byte) []byte { return b[:4] })
			},
			wantLast: 3,
			wantTorn: true,
		},
		{
			name: "bit-flip in a sealed segment",
			mutate: func(t *testing.T, sealedPath, _ string) {
				mutateFile(t, sealedPath, func(b []byte) []byte {
					b[frameStart(2)+frameHeaderLen+2] ^= 0x01
					return b
				})
			},
			wantError: true,
		},
		{
			name: "truncated sealed segment",
			mutate: func(t *testing.T, sealedPath, _ string) {
				mutateFile(t, sealedPath, func(b []byte) []byte { return b[:frameStart(3)+4] })
			},
			wantError: true,
		},
		{
			name: "bad magic in a sealed segment",
			mutate: func(t *testing.T, sealedPath, _ string) {
				mutateFile(t, sealedPath, func(b []byte) []byte {
					copy(b, "XXXXXXXX")
					return b
				})
			},
			wantError: true,
		},
		{
			name: "missing sealed segment",
			mutate: func(t *testing.T, sealedPath, _ string) {
				if err := os.Remove(sealedPath); err != nil {
					t.Fatal(err)
				}
			},
			wantError: true,
		},
		{
			name: "no damage",
			mutate: func(*testing.T, string, string) {
			},
			wantLast: 6,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			sealedPath, finalPath := writeSealedAndFinal(t, dir, 3, 3)
			tc.mutate(t, sealedPath, finalPath)

			l, rec, err := Open(context.Background(), Options{Dir: dir})
			if tc.wantError {
				if err == nil {
					_ = l.Close()
					t.Fatalf("Open succeeded on damaged history, recovered %+v", rec)
				}
				if !errors.Is(err, ErrCorrupt) {
					t.Fatalf("Open: %v, want ErrCorrupt", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer l.Close()
			if rec.LastSeq != tc.wantLast {
				t.Fatalf("recovered through %d, want %d", rec.LastSeq, tc.wantLast)
			}
			if rec.TornTail != tc.wantTorn {
				t.Fatalf("TornTail = %v, want %v (%+v)", rec.TornTail, tc.wantTorn, rec)
			}
			if tc.wantTorn && rec.TruncatedBytes == 0 {
				t.Fatal("torn tail reported with zero truncated bytes")
			}
			// The intact prefix replays with the right payloads.
			for i, r := range rec.Records {
				if want := uint64(i) + 1; r.Seq != want {
					t.Fatalf("record %d has seq %d", i, r.Seq)
				}
				if string(r.Data) != string(payload(int(r.Seq))) {
					t.Fatalf("record %d data %q", r.Seq, r.Data)
				}
			}
			// The log stays writable and continues the sequence.
			seq, err := l.AppendDurable(context.Background(), 1, []byte("after"))
			if err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if seq != tc.wantLast+1 {
				t.Fatalf("append after recovery got seq %d, want %d", seq, tc.wantLast+1)
			}
		})
	}
}

// TestWrongSequenceIsCorruptEvenAtTail: a frame whose checksum verifies
// but whose sequence breaks the chain cannot be a torn write, so it is
// ErrCorrupt even in the final segment.
func TestWrongSequenceIsCorruptEvenAtTail(t *testing.T) {
	dir := t.TempDir()
	buf := []byte(segMagic)
	buf = appendFrame(buf, 1, 1, "", []byte("one"))
	buf = appendFrame(buf, 3, 1, "", []byte("three")) // record 2 is missing
	if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000001.log"), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := Open(context.Background(), Options{Dir: dir})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open: %v, want ErrCorrupt", err)
	}
}
