package wal

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"strings"
	"testing"
)

// encodeV1Frame builds a version-1 frame by hand, independently of
// appendFrame, so the backward-compatibility tests pin the on-disk layout
// rather than the encoder's own output.
func encodeV1Frame(seq uint64, typ byte, data []byte) []byte {
	payload := make([]byte, recordHeaderLen+len(data))
	payload[0] = 1 // recordVersion1, spelled literally: this is the fixture
	payload[1] = typ
	binary.LittleEndian.PutUint64(payload[2:10], seq)
	copy(payload[recordHeaderLen:], data)
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeaderLen:], payload)
	return frame
}

func TestKeylessAppendStaysV1ByteIdentical(t *testing.T) {
	got := appendFrame(nil, 42, 7, "", []byte("hello"))
	want := encodeV1Frame(42, 7, []byte("hello"))
	if !bytes.Equal(got, want) {
		t.Fatalf("keyless appendFrame drifted from the v1 layout:\n got %x\nwant %x", got, want)
	}
}

func TestKeyedFrameRoundTrip(t *testing.T) {
	for _, key := range []string{"k", "retry-0123456789abcdef", strings.Repeat("x", MaxKeyBytes)} {
		frame := appendFrame(nil, 9, 3, key, []byte("payload"))
		rec, next, fault := decodeFrame(frame, 0, DefaultMaxRecordBytes)
		if fault != nil {
			t.Fatalf("key %d byte(s): decodeFrame: %v", len(key), fault)
		}
		if next != len(frame) {
			t.Fatalf("key %d byte(s): consumed %d of %d byte(s)", len(key), next, len(frame))
		}
		if rec.Seq != 9 || rec.Type != 3 || rec.Key != key || string(rec.Data) != "payload" {
			t.Fatalf("key %d byte(s): decoded %+v", len(key), rec)
		}
	}
}

func TestKeyedAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, Options{Dir: dir})
	keys := []string{"", "alpha", "", "beta", strings.Repeat("k", MaxKeyBytes)}
	for i, key := range keys {
		seq, err := l.AppendKeyed(1, key, payload(i+1))
		if err != nil {
			t.Fatalf("AppendKeyed %d: %v", i, err)
		}
		if err := l.WaitDurable(context.Background(), seq); err != nil {
			t.Fatalf("WaitDurable %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec := openLog(t, Options{Dir: dir})
	if len(rec.Records) != len(keys) {
		t.Fatalf("replayed %d record(s), want %d", len(rec.Records), len(keys))
	}
	for i, r := range rec.Records {
		if r.Key != keys[i] {
			t.Fatalf("record %d: key %q, want %q", i, r.Key, keys[i])
		}
		if !bytes.Equal(r.Data, payload(i+1)) {
			t.Fatalf("record %d: data %q", i, r.Data)
		}
	}
}

// TestV1FixtureReplay replays a segment whose bytes were assembled by hand
// in the pre-idempotency layout: a key-aware build must recover a journal
// written before keys existed, unchanged.
func TestV1FixtureReplay(t *testing.T) {
	dir := t.TempDir()
	buf := []byte(segMagic)
	for i := 1; i <= 3; i++ {
		buf = append(buf, encodeV1Frame(uint64(i), 1, payload(i))...)
	}
	if err := os.WriteFile(segPath(dir, 1), buf, 0o644); err != nil {
		t.Fatalf("writing fixture: %v", err)
	}
	l, rec := openLog(t, Options{Dir: dir})
	wantRecords(t, rec, 1, 3)
	for i, r := range rec.Records {
		if r.Key != "" {
			t.Fatalf("v1 record %d replayed with key %q", i, r.Key)
		}
	}
	// The upgraded log keeps appending — keyed and keyless — after the v1
	// prefix, and the whole mixed chain replays.
	if _, err := l.AppendDurable(context.Background(), 1, payload(4)); err != nil {
		t.Fatalf("append after v1 replay: %v", err)
	}
	seq, err := l.AppendKeyed(1, "mixed", payload(5))
	if err != nil {
		t.Fatalf("AppendKeyed after v1 replay: %v", err)
	}
	if err := l.WaitDurable(context.Background(), seq); err != nil {
		t.Fatalf("WaitDurable: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	_, rec = openLog(t, Options{Dir: dir})
	if len(rec.Records) != 5 {
		t.Fatalf("mixed replay: %d record(s), want 5", len(rec.Records))
	}
	if rec.Records[4].Key != "mixed" || rec.Records[3].Key != "" {
		t.Fatalf("mixed replay keys: %q then %q", rec.Records[3].Key, rec.Records[4].Key)
	}
}

func TestAppendKeyedRejectsOversizedKey(t *testing.T) {
	l, _ := openLog(t, Options{Dir: t.TempDir()})
	_, err := l.AppendKeyed(1, strings.Repeat("x", MaxKeyBytes+1), []byte("data"))
	if !errors.Is(err, ErrKeyTooLarge) {
		t.Fatalf("oversized key: %v, want ErrKeyTooLarge", err)
	}
	// The refusal consumed no sequence number and left the log usable.
	if _, err := l.AppendDurable(context.Background(), 1, payload(1)); err != nil {
		t.Fatalf("append after refusal: %v", err)
	}
	if got := l.LastSeq(); got != 1 {
		t.Fatalf("LastSeq after refusal+append: %d, want 1", got)
	}
}

func TestTornKeyedTailTruncated(t *testing.T) {
	dir := t.TempDir()
	l, _ := openLog(t, Options{Dir: dir})
	for i := 1; i <= 3; i++ {
		seq, err := l.AppendKeyed(1, fmt.Sprintf("key-%d", i), payload(i))
		if err != nil {
			t.Fatalf("AppendKeyed %d: %v", i, err)
		}
		if err := l.WaitDurable(context.Background(), seq); err != nil {
			t.Fatalf("WaitDurable %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Tear the final keyed frame mid-key, as a crash would.
	path := segPath(dir, 1)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := os.Truncate(path, info.Size()-int64(len(payload(3))+3)); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	_, rec := openLog(t, Options{Dir: dir})
	if !rec.TornTail || rec.TruncatedBytes == 0 {
		t.Fatalf("torn keyed tail not reported: %+v", rec)
	}
	if len(rec.Records) != 2 {
		t.Fatalf("replayed %d record(s) after tear, want 2", len(rec.Records))
	}
	if rec.Records[1].Key != "key-2" {
		t.Fatalf("surviving record key %q, want key-2", rec.Records[1].Key)
	}
}

// TestV2KeyLengthOverrun pins the bounds check: a v2 payload whose declared
// key length overruns the payload must fail as a frame fault (torn-tail /
// corruption path), never a slice panic.
func TestV2KeyLengthOverrun(t *testing.T) {
	payload := make([]byte, recordHeaderLen+1+2)
	payload[0] = recordVersion2
	payload[1] = 1
	binary.LittleEndian.PutUint64(payload[2:10], 1)
	payload[recordHeaderLen] = 200 // claims 200 key bytes; only 2 remain
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
	copy(frame[frameHeaderLen:], payload)
	if _, _, fault := decodeFrame(frame, 0, DefaultMaxRecordBytes); fault == nil {
		t.Fatal("overrunning key length decoded without fault")
	}
}
