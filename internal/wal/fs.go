package wal

import (
	"fmt"
	"io"
	"os"
)

// FS is the slice of filesystem behavior the log needs. Production uses
// OSFS; the fault-injection harness (internal/faultcheck.FaultFS) wraps an
// FS to inject short writes, bit-flips, fsync failures, ENOSPC and torn
// final records, which is how the chaos suite drives every I/O failure
// path in this package deterministically.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// ReadDir lists the file names in dir in lexical order.
	ReadDir(dir string) ([]string, error)
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	// Open opens path for reading.
	Open(path string) (File, error)
	// Rename atomically replaces newPath with oldPath.
	Rename(oldPath, newPath string) error
	// Remove deletes path.
	Remove(path string) error
	// Truncate cuts path to size bytes. It must work on a path with an
	// open handle (tail repair truncates the segment being appended to).
	Truncate(path string, size int64) error
	// SyncDir fsyncs the directory itself, making entry creations,
	// renames and removals durable. File-content fsync alone does not
	// persist the entry: after power loss a freshly created segment or a
	// renamed snapshot can vanish from the directory even though its
	// bytes were synced.
	SyncDir(dir string) error
}

// File is the open-file surface the log needs: sequential reads for
// replay, append-mode writes for the write path, and Sync as the
// durability barrier.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes written bytes to stable storage. A record is
	// acknowledged only after the Sync covering it returns nil.
	Sync() error
}

// OSFS is the production FS backed by package os.
type OSFS struct{}

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// ReadDir implements FS; names come back in lexical order.
func (OSFS) ReadDir(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading directory: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// Create implements FS. The file is opened in append mode: after a
// failed frame write is repaired with Truncate, the next write must land
// at the new end of file, not at the stale handle offset (which would
// leave a zero-filled hole).
func (OSFS) Create(path string) (File, error) {
	//lint:ignore fsyncorder OSFS is the primitive layer; the durability protocol is enforced at the call sites of the FS abstraction
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: creating file: %w", err)
	}
	return f, nil
}

// Open implements FS.
func (OSFS) Open(path string) (File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("wal: opening file: %w", err)
	}
	return f, nil
}

// Rename implements FS.
//
//lint:ignore fsyncorder OSFS is the primitive layer; the durability protocol is enforced at the call sites of the FS abstraction
func (OSFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

// Remove implements FS.
//
//lint:ignore fsyncorder OSFS is the primitive layer; the durability protocol is enforced at the call sites of the FS abstraction
func (OSFS) Remove(path string) error { return os.Remove(path) }

// Truncate implements FS.
func (OSFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

// SyncDir implements FS by fsyncing an open handle on the directory.
func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: opening directory for fsync: %w", err)
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return fmt.Errorf("wal: fsync of directory: %w", serr)
	}
	if cerr != nil {
		return fmt.Errorf("wal: closing directory after fsync: %w", cerr)
	}
	return nil
}
