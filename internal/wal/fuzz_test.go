package wal

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to replay as the first (and final)
// segment of a log and asserts the recovery contract mechanically: Open
// either succeeds — yielding a contiguous record chain starting at 1 and
// a log that accepts appends — or fails with an error wrapping ErrCorrupt.
// It must never panic and never return records out of sequence.
func FuzzWALReplay(f *testing.F) {
	// Seeds: an empty segment, a healthy two-record segment, the same
	// segment truncated mid-frame, one with a flipped payload bit, a
	// zero-filled tail, a wrong-sequence chain, and plain garbage.
	healthy := []byte(segMagic)
	healthy = appendFrame(healthy, 1, 1, "", []byte("fuzz-one"))
	healthy = appendFrame(healthy, 2, 1, "", []byte("fuzz-two"))
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	f.Add(healthy)
	f.Add(healthy[:len(healthy)-5])
	flipped := append([]byte(nil), healthy...)
	flipped[len(flipped)-1] ^= 0x40
	f.Add(flipped)
	f.Add(append(append([]byte(nil), healthy...), make([]byte, 32)...))
	wrongSeq := appendFrame([]byte(segMagic), 5, 1, "", []byte("starts at five"))
	f.Add(wrongSeq)
	f.Add([]byte("not a segment at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000001.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, rec, err := Open(context.Background(), Options{Dir: dir, MaxRecordBytes: 1 << 16})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open failed untyped: %v", err)
			}
			return
		}
		defer l.Close()
		for i, r := range rec.Records {
			if r.Seq != uint64(i)+1 {
				t.Fatalf("record %d has seq %d", i, r.Seq)
			}
		}
		if rec.LastSeq != uint64(len(rec.Records)) {
			t.Fatalf("LastSeq %d with %d record(s)", rec.LastSeq, len(rec.Records))
		}
		seq, err := l.AppendDurable(context.Background(), 1, []byte("post-recovery"))
		if err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if seq != rec.LastSeq+1 {
			t.Fatalf("append got seq %d after LastSeq %d", seq, rec.LastSeq)
		}
	})
}
