package wal

import "errors"

// The package's typed error taxonomy, mirroring the PR-2 convention of the
// root package: every error returned by Open, Append, WaitDurable,
// WriteSnapshot and Close wraps one of these sentinels (or a context /
// er.ErrInvalidOptions error), so callers branch with errors.Is instead of
// parsing messages. The crash-recovery contract is stated in terms of
// them: replay either restores every acknowledged record or fails with an
// error wrapping ErrCorrupt — never a panic, never silent loss.
var (
	// ErrCorrupt reports damage replay cannot reconcile with the
	// acknowledged history: a bad checksum or sequence break in a sealed
	// (fsynced) segment, a snapshot that fails its checksum, or a gap
	// between the newest restorable snapshot and the surviving segments.
	// Torn tails of the final segment are NOT ErrCorrupt — they are the
	// expected residue of a crash mid-write and are truncated away.
	ErrCorrupt = errors.New("wal: log corrupted")

	// ErrClosed reports use of a log after Close.
	ErrClosed = errors.New("wal: log closed")

	// ErrWedged reports that an earlier unrepairable I/O failure (a failed
	// fsync, a failed segment rotation) has wedged the log: the durable
	// prefix is intact, but no further writes are accepted, because the
	// log can no longer attest what is on disk. Errors wrapping ErrWedged
	// also wrap the original cause.
	ErrWedged = errors.New("wal: log wedged by an earlier I/O failure")

	// ErrTooLarge reports a record exceeding Options.MaxRecordBytes; the
	// cap is what lets replay reject absurd length prefixes as corruption
	// instead of allocating them.
	ErrTooLarge = errors.New("wal: record exceeds MaxRecordBytes")

	// ErrKeyTooLarge reports an AppendKeyed idempotency key exceeding
	// MaxKeyBytes; the v2 frame stores the key length in one byte.
	ErrKeyTooLarge = errors.New("wal: idempotency key exceeds MaxKeyBytes")

	// ErrSnapshotStale reports a WriteSnapshot whose coveredSeq no longer
	// matches the log: a record was appended after the caller serialized
	// its state. Nothing is written or deleted — accepting the snapshot
	// would stamp it as covering a record its payload predates, and the
	// compaction that follows would silently lose that acknowledged write.
	ErrSnapshotStale = errors.New("wal: snapshot is stale (the log advanced past it)")
)
