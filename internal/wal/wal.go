// Package wal implements the crash-safe append-only log under erserve's
// durable collections: length-prefixed, CRC-32C-checksummed, versioned
// records in rotating segment files, group-committed fsync with a
// configurable flush interval, snapshot-based compaction, and a replay
// path that tolerates — and truncates — the torn tails a crash leaves
// behind, while refusing (with typed errors, never a panic) to silently
// lose an acknowledged write.
//
// Durability contract: Append assigns a sequence number and stages the
// record; the record is acknowledged once WaitDurable (or AppendDurable)
// returns nil, which happens only after an fsync covering it succeeded.
// After a crash, Open replays the newest restorable snapshot plus every
// intact record after it. Acknowledged records are always replayed;
// staged-but-unacknowledged records at the torn tail of the final segment
// may be truncated away — that is the crash window the contract allows.
// Any damage that would force silent loss of acknowledged data (checksum
// failure in a sealed segment, a sequence break, a snapshot/segment gap)
// fails Open with an error wrapping ErrCorrupt.
package wal

import (
	"context"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	er "repro"
)

// Default values selected by zero Options fields.
const (
	// DefaultMaxSegmentBytes is the rotation threshold selected by a zero
	// Options.MaxSegmentBytes.
	DefaultMaxSegmentBytes = 64 << 20
	// DefaultMaxRecordBytes is the per-record cap selected by a zero
	// Options.MaxRecordBytes.
	DefaultMaxRecordBytes = 16 << 20
)

// Options configures a Log. The zero value of every field except Dir
// selects a documented default; Dir is required.
type Options struct {
	// Dir is the directory holding segments and snapshots. Empty is
	// invalid: Validate rejects it (there is no default data directory).
	Dir string
	// FS is the filesystem implementation. Nil selects OSFS; the fault
	// harness injects a faultcheck.FaultFS.
	FS FS
	// MaxSegmentBytes is the segment size that triggers rotation. Zero
	// selects DefaultMaxSegmentBytes; Validate rejects negative values.
	MaxSegmentBytes int64
	// FsyncInterval batches fsyncs: appends are group-committed, with at
	// most this long between an append and the fsync that acknowledges
	// it. Zero selects the strictest mode — fsync on every append —
	// so durability is the default and batching is the opt-in; Validate
	// rejects negative values.
	FsyncInterval time.Duration
	// MaxRecordBytes caps one record's data. Zero selects
	// DefaultMaxRecordBytes; Validate rejects negative values.
	MaxRecordBytes int
	// OnSnapshot, when non-nil, receives the newest restorable snapshot
	// (its covered sequence number and payload) before any record is
	// replayed. Nil skips restore delivery; the payload is then returned
	// in Recovery.SnapshotData instead.
	OnSnapshot func(seq uint64, data []byte) error
	// OnRecord, when non-nil, receives each replayed post-snapshot record
	// in sequence order; an error aborts Open. Nil collects the records
	// into Recovery.Records instead.
	OnRecord func(rec Record) error
	// Logf receives one line per recovery and compaction event. Nil
	// discards logs.
	Logf func(format string, args ...any)
}

// Validate reports the first configuration error, or nil, wrapping
// er.ErrInvalidOptions per the repo convention so callers classify it
// with errors.Is.
func (o Options) Validate() error {
	switch {
	case o.Dir == "":
		return fmt.Errorf("%w: wal: Dir must be set", er.ErrInvalidOptions)
	case o.MaxSegmentBytes < 0:
		return fmt.Errorf("%w: wal: MaxSegmentBytes must be >= 0, got %d", er.ErrInvalidOptions, o.MaxSegmentBytes)
	case o.FsyncInterval < 0:
		return fmt.Errorf("%w: wal: FsyncInterval must be >= 0, got %s", er.ErrInvalidOptions, o.FsyncInterval)
	case o.MaxRecordBytes < 0:
		return fmt.Errorf("%w: wal: MaxRecordBytes must be >= 0, got %d", er.ErrInvalidOptions, o.MaxRecordBytes)
	}
	return nil
}

// withDefaults returns a copy with every zero field resolved.
func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.MaxSegmentBytes == 0 {
		o.MaxSegmentBytes = DefaultMaxSegmentBytes
	}
	if o.MaxRecordBytes == 0 {
		o.MaxRecordBytes = DefaultMaxRecordBytes
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// waiter is one blocked WaitDurable call: released with nil once the log
// has fsynced through seq, or with the wedge/close error.
type waiter struct {
	seq uint64
	ch  chan error
}

// Log is an open write-ahead log. Create with Open; it is safe for
// concurrent use.
type Log struct {
	opts Options
	fs   FS

	mu       sync.Mutex
	seg      File   // current segment, open for append
	segPath  string // path of seg
	segStart uint64 // first sequence number of seg
	segSize  int64  // bytes written to seg (including magic)
	nextSeq  uint64 // sequence number the next Append will take
	durable  uint64 // highest sequence number covered by a successful fsync
	dirty    bool   // seg has writes not yet covered by an fsync
	wedgeErr error  // sticky fatal error; nil while healthy
	closed   bool
	waiters  []waiter

	syncReq    chan struct{} // nudge for the syncer (capacity 1, coalescing)
	closeCh    chan struct{}
	syncerDone chan struct{}

	appends   atomic.Int64
	syncs     atomic.Int64
	rotations atomic.Int64
	snapshots atomic.Int64
}

// Stats is a point-in-time observability snapshot of the log.
type Stats struct {
	NextSeq    uint64 `json:"next_seq"`
	DurableSeq uint64 `json:"durable_seq"`
	Appends    int64  `json:"appends"`
	Syncs      int64  `json:"syncs"`
	Rotations  int64  `json:"rotations"`
	Snapshots  int64  `json:"snapshots"`
	Wedged     bool   `json:"wedged"`
}

// Stats reports the log's counters and high-water marks.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		NextSeq:    l.nextSeq,
		DurableSeq: l.durable,
		Appends:    l.appends.Load(),
		Syncs:      l.syncs.Load(),
		Rotations:  l.rotations.Load(),
		Snapshots:  l.snapshots.Load(),
		Wedged:     l.wedgeErr != nil,
	}
}

func segPath(dir string, start uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.log", start))
}

func snapPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snap-%016x.snap", seq))
}

// Append stages one record and returns its sequence number. The record
// is durable only once WaitDurable(seq) returns nil: with a positive
// FsyncInterval the background syncer group-commits it, with a zero
// interval the WaitDurable call performs the fsync itself — either way
// Append never blocks on disk, so callers may stage under their own
// locks and ack outside them. A write failure is repaired by truncating
// the partial frame (the append fails with a typed error, the log stays
// usable); an unrepairable failure wedges the log.
func (l *Log) Append(typ byte, data []byte) (uint64, error) {
	return l.AppendKeyed(typ, "", data)
}

// AppendKeyed is Append with an idempotency key journaled alongside the
// record: replay surfaces it in Record.Key, which is what lets a restarted
// server rebuild its dedup table from the log alone. An empty key writes
// the v1 (keyless) frame, so logs without keyed traffic stay byte-identical
// to the pre-idempotency format; keys are capped at MaxKeyBytes.
func (l *Log) AppendKeyed(typ byte, key string, data []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return 0, err
	}
	if len(data) > l.opts.MaxRecordBytes {
		return 0, fmt.Errorf("%w: %d byte(s), cap %d", ErrTooLarge, len(data), l.opts.MaxRecordBytes)
	}
	if len(key) > MaxKeyBytes {
		return 0, fmt.Errorf("%w: %d byte(s), cap %d", ErrKeyTooLarge, len(key), MaxKeyBytes)
	}
	frame := appendFrame(nil, l.nextSeq, typ, key, data)
	if l.segSize > int64(len(segMagic)) && l.segSize+int64(len(frame)) > l.opts.MaxSegmentBytes {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	if err := l.writeFrameLocked(frame); err != nil {
		return 0, err
	}
	seq := l.nextSeq
	l.nextSeq++
	l.appends.Add(1)
	l.dirty = true
	if l.opts.FsyncInterval > 0 {
		select {
		case l.syncReq <- struct{}{}:
		default:
		}
	}
	return seq, nil
}

// usableLocked reports why the log cannot accept work, or nil.
func (l *Log) usableLocked() error {
	switch {
	case l.closed:
		return fmt.Errorf("%w: log at %s", ErrClosed, l.opts.Dir)
	case l.wedgeErr != nil:
		return l.wedgeErr
	}
	return nil
}

// writeFrameLocked appends one encoded frame to the current segment. On a
// short or failed write it truncates the partial frame back off the
// segment so the file stays frame-aligned; if even the truncation fails,
// the log is wedged.
func (l *Log) writeFrameLocked(frame []byte) error {
	n, err := l.seg.Write(frame)
	if err == nil && n == len(frame) {
		l.segSize += int64(n)
		return nil
	}
	if err == nil {
		err = fmt.Errorf("%w: %d of %d byte(s)", io.ErrShortWrite, n, len(frame))
	}
	if terr := l.fs.Truncate(l.segPath, l.segSize); terr != nil {
		l.wedgeLocked(fmt.Errorf("write failed (%w) and tail repair failed: %w", err, terr))
		return l.wedgeErr
	}
	return fmt.Errorf("wal: append write failed (segment repaired): %w", err)
}

// wedgeLocked records a fatal I/O failure and releases every waiter with
// it. The durable prefix stays intact; all future writes fail fast.
func (l *Log) wedgeLocked(cause error) {
	if l.wedgeErr != nil {
		return
	}
	l.wedgeErr = fmt.Errorf("%w: %w", ErrWedged, cause)
	l.opts.Logf("wal: wedged: %v", cause)
	l.releaseWaitersLocked(l.durable, l.wedgeErr)
}

// releaseWaitersLocked wakes waiters. Those at or below durableSeq get
// nil; the rest get err if non-nil, or stay queued when err is nil.
func (l *Log) releaseWaitersLocked(durableSeq uint64, err error) {
	kept := l.waiters[:0]
	for _, w := range l.waiters {
		switch {
		case w.seq <= durableSeq:
			//lint:ignore lockhold waiter channels are buffered with capacity 1 and receive exactly one result; the send never parks
			w.ch <- nil
		case err != nil:
			//lint:ignore lockhold waiter channels are buffered with capacity 1 and receive exactly one result; the send never parks
			w.ch <- err
		default:
			kept = append(kept, w)
		}
	}
	l.waiters = kept
}

// rotateLocked seals the current segment (fsync + close, which makes
// every record in it durable) and opens the next one. Rotation failures
// wedge the log: with the old segment closed and no new one open there is
// nowhere safe to append.
func (l *Log) rotateLocked() error {
	//lint:ignore lockhold seal fsync: rotation is itself the durability barrier, and a rotation served from a stale segment would corrupt the journal
	if err := l.seg.Sync(); err != nil {
		l.wedgeLocked(fmt.Errorf("seal fsync of %s: %w", l.segPath, err))
		return l.wedgeErr
	}
	l.syncs.Add(1)
	if err := l.seg.Close(); err != nil {
		l.wedgeLocked(fmt.Errorf("seal close of %s: %w", l.segPath, err))
		return l.wedgeErr
	}
	l.dirty = false
	if l.nextSeq > 0 {
		l.durable = l.nextSeq - 1
	}
	l.releaseWaitersLocked(l.durable, nil)
	if err := l.openSegmentLocked(l.nextSeq); err != nil {
		return err
	}
	l.rotations.Add(1)
	return nil
}

// openSegmentLocked creates the segment whose first record will be start
// and writes its magic header. The directory is fsynced right after the
// create: without it a power loss can erase the entry for a freshly
// rotated segment even though its contents were fsynced, and replay —
// seeing no sequence gap — would silently treat the prior segment as the
// final one.
func (l *Log) openSegmentLocked(start uint64) error {
	path := segPath(l.opts.Dir, start)
	f, err := l.fs.Create(path)
	if err != nil {
		l.seg = nil
		l.wedgeLocked(fmt.Errorf("creating segment %s: %w", path, err))
		return l.wedgeErr
	}
	//lint:ignore lockhold directory fsync after segment create: the rotation path owns this barrier; appends must not race a half-created segment
	if err := l.fs.SyncDir(l.opts.Dir); err != nil {
		_ = f.Close()
		l.seg = nil
		l.wedgeLocked(fmt.Errorf("persisting directory entry of %s: %w", path, err))
		return l.wedgeErr
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		_ = f.Close()
		l.seg = nil
		l.wedgeLocked(fmt.Errorf("writing segment header of %s: %w", path, err))
		return l.wedgeErr
	}
	l.seg = f
	l.segPath = path
	l.segStart = start
	l.segSize = int64(len(segMagic))
	return nil
}

// WaitDurable blocks until every record through seq is fsynced, the log
// wedges or closes, or ctx ends. A nil return is the acknowledgment: the
// record survives any crash after this point. With a zero FsyncInterval
// there is no background syncer, so the waiter performs the fsync
// itself — concurrent appends staged before it share the barrier, which
// is group commit in the strict mode too.
func (l *Log) WaitDurable(ctx context.Context, seq uint64) error {
	l.mu.Lock()
	if l.durable >= seq {
		l.mu.Unlock()
		return nil
	}
	if err := l.usableLocked(); err != nil {
		l.mu.Unlock()
		return err
	}
	if l.opts.FsyncInterval == 0 {
		err := l.syncLocked()
		l.mu.Unlock()
		return err
	}
	ch := make(chan error, 1)
	l.waiters = append(l.waiters, waiter{seq: seq, ch: ch})
	l.mu.Unlock()
	select {
	case err := <-ch:
		return err
	case <-ctx.Done():
		return fmt.Errorf("wal: durability wait aborted: %w", context.Cause(ctx))
	}
}

// AppendDurable is Append + WaitDurable: it returns only once the record
// is acknowledged (or the append failed).
func (l *Log) AppendDurable(ctx context.Context, typ byte, data []byte) (uint64, error) {
	seq, err := l.Append(typ, data)
	if err != nil {
		return 0, err
	}
	return seq, l.WaitDurable(ctx, seq)
}

// syncer is the group-commit goroutine (started only when FsyncInterval
// is positive): it fsyncs on demand, then enforces FsyncInterval of
// spacing before the next fsync, so concurrent appends share barriers.
func (l *Log) syncer() {
	defer close(l.syncerDone)
	// No `if !timer.Stop() { <-timer.C }` drains anywhere in this loop:
	// under Go 1.23+ timer semantics the channel is unbuffered and Stop
	// discards the pending tick, so that idiom deadlocks. A stale tick
	// left behind by a lost Stop race merely shortens one spacing window
	// (an extra fsync), which is harmless.
	timer := time.NewTimer(l.opts.FsyncInterval)
	timer.Stop()
	for {
		select {
		case <-l.closeCh:
			l.syncOnce()
			return
		case <-l.syncReq:
		}
		l.syncOnce()
		timer.Reset(l.opts.FsyncInterval)
		select {
		case <-timer.C:
		case <-l.closeCh:
			timer.Stop()
			l.syncOnce()
			return
		}
	}
}

// syncOnce fsyncs the current segment if it has staged writes, advancing
// the durable mark and releasing the waiters the fsync covered.
func (l *Log) syncOnce() {
	l.mu.Lock()
	defer l.mu.Unlock()
	_ = l.syncLocked() // a failure wedged the log and released the waiters
}

// syncLocked is the single fsync barrier: flush staged writes, advance
// the durable mark, release the waiters the fsync covered. A failure
// wedges the log (the kernel may have dropped the dirty pages; no later
// success can prove the earlier write survived) and returns the wedge.
func (l *Log) syncLocked() error {
	if l.wedgeErr != nil {
		return l.wedgeErr
	}
	if !l.dirty || l.seg == nil {
		return nil
	}
	target := l.nextSeq - 1
	//lint:ignore lockhold group-commit barrier: the syncer batches appends and this is the one designed fsync under the log lock
	if err := l.seg.Sync(); err != nil {
		l.wedgeLocked(fmt.Errorf("fsync of %s: %w", l.segPath, err))
		return l.wedgeErr
	}
	l.syncs.Add(1)
	l.dirty = false
	l.durable = target
	l.releaseWaitersLocked(target, nil)
	return nil
}

// WriteSnapshot durably persists a caller-provided state snapshot, then
// compacts: the current segment is sealed, a fresh one is opened, and
// sealed segments plus older snapshots are deleted. coveredSeq is the
// highest sequence number the serialized state includes — the caller
// captures it (see LastSeq) under the same lock that guards its state,
// so the payload and the stamp cannot diverge. If the log has advanced
// past coveredSeq the snapshot is refused with ErrSnapshotStale and
// nothing is written or deleted: stamping it anyway would cover a record
// the payload predates, and compaction would then silently lose that
// acknowledged write. A failed snapshot write leaves the log untouched
// and usable; only the compaction that follows a durable snapshot
// deletes anything.
func (l *Log) WriteSnapshot(data []byte, coveredSeq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return err
	}
	if snapSeq := l.nextSeq - 1; coveredSeq != snapSeq {
		return fmt.Errorf("%w: snapshot covers seq %d, log is at %d", ErrSnapshotStale, coveredSeq, snapSeq)
	}
	// The snapshot must not claim records the log has not fsynced: seal
	// semantics below sync the segment anyway, but the snapshot file has
	// to be durable first, so a crash between the two never leaves a
	// snapshot attesting state the log cannot back.
	if err := l.writeSnapshotFileLocked(coveredSeq, data); err != nil {
		return err
	}
	l.snapshots.Add(1)
	// Rotate so the current segment holds only post-snapshot records,
	// then drop everything the snapshot supersedes.
	if err := l.rotateLocked(); err != nil {
		return err
	}
	l.compactLocked(coveredSeq)
	return nil
}

// LastSeq reports the highest assigned sequence number (0 before any
// append). Callers serializing state for WriteSnapshot read it under the
// same lock that guards the state they serialize.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq - 1
}

// writeSnapshotFileLocked writes snap-<seq>.snap via a temp file + atomic
// rename: readers either see the whole checksummed snapshot or none.
func (l *Log) writeSnapshotFileLocked(seq uint64, data []byte) error {
	final := snapPath(l.opts.Dir, seq)
	tmp := final + ".tmp"
	f, err := l.fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: creating snapshot %s: %w", tmp, err)
	}
	buf := append([]byte(snapMagic), appendFrame(nil, seq, 0, "", data)...)
	cleanup := func(err error) error {
		_ = f.Close()
		_ = l.fs.Remove(tmp)
		return err
	}
	if n, werr := f.Write(buf); werr != nil || n != len(buf) {
		if werr == nil {
			werr = fmt.Errorf("%w: %d of %d byte(s)", io.ErrShortWrite, n, len(buf))
		}
		return cleanup(fmt.Errorf("wal: writing snapshot %s: %w", tmp, werr))
	}
	//lint:ignore lockhold snapshot fsync: checkpointing runs under the log lock by design; it is rare and amortized by compaction
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("wal: fsync of snapshot %s: %w", tmp, err))
	}
	if err := f.Close(); err != nil {
		_ = l.fs.Remove(tmp)
		return fmt.Errorf("wal: closing snapshot %s: %w", tmp, err)
	}
	if err := l.fs.Rename(tmp, final); err != nil {
		_ = l.fs.Remove(tmp)
		return fmt.Errorf("wal: publishing snapshot %s: %w", final, err)
	}
	// Persist the rename itself. On failure the caller aborts before
	// compaction, so whichever way the crash resolves the rename, the full
	// journal still backs every acknowledged record.
	//lint:ignore lockhold snapshot-rename directory fsync: checkpointing runs under the log lock by design
	if err := l.fs.SyncDir(l.opts.Dir); err != nil {
		return fmt.Errorf("wal: persisting snapshot rename of %s: %w", final, err)
	}
	return nil
}

// compactLocked deletes sealed segments and snapshots superseded by the
// snapshot at snapSeq. Deletion failures are logged and left for the next
// compaction — replay skips stale segments, so leftovers cost only disk.
func (l *Log) compactLocked(snapSeq uint64) {
	names, err := l.fs.ReadDir(l.opts.Dir)
	if err != nil {
		l.opts.Logf("wal: compaction listing failed: %v", err)
		return
	}
	var removed int
	for _, name := range names {
		full := filepath.Join(l.opts.Dir, name)
		if full == l.segPath || full == snapPath(l.opts.Dir, snapSeq) {
			continue
		}
		var remove bool
		if start, ok := parseSeqName(name, "wal-", ".log"); ok {
			remove = start <= snapSeq // sealed: every record it holds is covered
		} else if seq, ok := parseSeqName(name, "snap-", ".snap"); ok {
			remove = seq < snapSeq
		}
		if !remove {
			continue
		}
		if err := l.fs.Remove(full); err != nil {
			l.opts.Logf("wal: compaction could not remove %s: %v", name, err)
		} else {
			removed++
			l.opts.Logf("wal: compacted %s (superseded by snapshot %d)", name, snapSeq)
		}
	}
	// Persist the removals; a failure only resurrects already-superseded
	// files after a crash, which replay skips and the next compaction
	// retries.
	if removed > 0 {
		//lint:ignore lockhold compaction directory fsync: compaction runs under the log lock by design and is rare
		if err := l.fs.SyncDir(l.opts.Dir); err != nil {
			l.opts.Logf("wal: compaction directory fsync failed: %v", err)
		}
	}
}

// Close flushes staged writes, stops the syncer and closes the current
// segment. Records acknowledged before Close stay durable; a dirty tail
// gets one final fsync.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.mu.Unlock()
	close(l.closeCh)
	if l.syncerDone != nil {
		<-l.syncerDone
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var firstErr error
	if l.seg != nil {
		if l.dirty && l.wedgeErr == nil {
			if err := l.syncLocked(); err != nil {
				firstErr = fmt.Errorf("wal: final fsync: %w", err)
			}
		}
		if err := l.seg.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("wal: closing segment: %w", err)
		}
		l.seg = nil
	}
	l.releaseWaitersLocked(l.durable, fmt.Errorf("%w: closed before the fsync covering this record", ErrClosed))
	return firstErr
}
