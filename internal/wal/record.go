package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// On-disk framing (DESIGN.md §11, §13). Every record is one frame:
//
//	offset 0  uint32 LE  payload length n
//	offset 4  uint32 LE  CRC-32C (Castagnoli) of the payload
//	offset 8  payload:
//	          [0]     record-format version (1 or 2)
//	          [1]     record type (caller-defined)
//	          [2:10]  uint64 LE sequence number
//	          v1: [10:n]          caller data
//	          v2: [10]            idempotency-key length k (uint8)
//	              [11:11+k]       idempotency key
//	              [11+k:n]        caller data
//
// Version 1 is the pre-idempotency format; version 2 adds a caller-supplied
// idempotency key between the header and the data. The writer emits v1 for
// keyless records and v2 only when a key is present, so a log written by a
// key-aware server with no keyed traffic is byte-identical to a v1 log, and
// replay accepts both versions interleaved in one segment — an upgraded
// server recovers a pre-idempotency journal unchanged.
//
// The checksum covers the whole payload, so a bit-flip anywhere in
// version, type, sequence, key or data fails verification. The sequence
// number inside the checksummed payload is what lets replay distinguish a
// torn write (frame fails verification) from logical corruption (frame
// verifies but its sequence breaks the chain).
const (
	frameHeaderLen  = 8
	recordHeaderLen = 10
	recordVersion1  = 1
	recordVersion2  = 2
	// MaxKeyBytes caps one record's idempotency key: the v2 frame stores
	// the key length in a single byte.
	MaxKeyBytes = 255
)

// segMagic / snapMagic are the 8-byte file headers of segment and
// snapshot files; replay rejects files that do not start with them.
const (
	segMagic  = "ERWALSG1"
	snapMagic = "ERWALSN1"
)

// crcTable is the Castagnoli polynomial table (CRC-32C, the checksum used
// by iSCSI and ext4 metadata: hardware-accelerated on amd64/arm64).
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Record is one journaled mutation: a caller-defined type byte and opaque
// data, stamped with the log's monotonically increasing sequence number
// and, for records appended through AppendKeyed, the caller's idempotency
// key.
type Record struct {
	// Seq is the record's position in the log; the first record is 1.
	Seq uint64
	// Type is the caller-defined record kind.
	Type byte
	// Key is the idempotency key the record was appended with; empty for
	// keyless (v1) records.
	Key string
	// Data is the caller's payload.
	Data []byte
}

// appendFrame appends the encoded frame for (seq, typ, key, data) to dst.
// An empty key selects the v1 format; a non-empty key the v2 format.
func appendFrame(dst []byte, seq uint64, typ byte, key string, data []byte) []byte {
	var hdr [frameHeaderLen + recordHeaderLen + 1]byte
	hdrLen := frameHeaderLen + recordHeaderLen
	n := recordHeaderLen + len(data)
	hdr[8] = recordVersion1
	if key != "" {
		hdr[8] = recordVersion2
		hdr[frameHeaderLen+recordHeaderLen] = byte(len(key))
		hdrLen++
		n += 1 + len(key)
	}
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(n))
	hdr[9] = typ
	binary.LittleEndian.PutUint64(hdr[10:18], seq)
	crc := crc32.Update(0, crcTable, hdr[frameHeaderLen:hdrLen])
	crc = crc32.Update(crc, crcTable, []byte(key))
	crc = crc32.Update(crc, crcTable, data)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	dst = append(dst, hdr[:hdrLen]...)
	dst = append(dst, key...)
	return append(dst, data...)
}

// frameFault describes why a frame failed to decode. Faults at the tail of
// the final segment are truncated as torn writes; anywhere else they are
// ErrCorrupt.
type frameFault struct {
	reason string
}

func (f *frameFault) Error() string { return f.reason }

// decodeFrame decodes the frame at buf[off:]. It returns the decoded
// record and the offset just past it, or a *frameFault describing why the
// bytes at off are not a valid frame. maxRecord bounds the declared
// payload length so absurd length prefixes are rejected instead of
// trusted.
func decodeFrame(buf []byte, off int, maxRecord int) (Record, int, *frameFault) {
	rest := len(buf) - off
	if rest < frameHeaderLen {
		return Record{}, 0, &frameFault{reason: fmt.Sprintf("truncated frame header: %d byte(s) at offset %d", rest, off)}
	}
	n := int(binary.LittleEndian.Uint32(buf[off : off+4]))
	if n < recordHeaderLen {
		return Record{}, 0, &frameFault{reason: fmt.Sprintf("payload length %d below record header size at offset %d", n, off)}
	}
	if n > maxRecord+recordHeaderLen+1+MaxKeyBytes {
		return Record{}, 0, &frameFault{reason: fmt.Sprintf("payload length %d exceeds MaxRecordBytes at offset %d", n, off)}
	}
	if rest < frameHeaderLen+n {
		return Record{}, 0, &frameFault{reason: fmt.Sprintf("truncated payload: want %d byte(s), have %d at offset %d", n, rest-frameHeaderLen, off)}
	}
	want := binary.LittleEndian.Uint32(buf[off+4 : off+8])
	payload := buf[off+frameHeaderLen : off+frameHeaderLen+n]
	if got := crc32.Checksum(payload, crcTable); got != want {
		return Record{}, 0, &frameFault{reason: fmt.Sprintf("checksum mismatch at offset %d: stored %08x, computed %08x", off, want, got)}
	}
	dataStart := recordHeaderLen
	var key string
	switch payload[0] {
	case recordVersion1:
	case recordVersion2:
		if n < recordHeaderLen+1 {
			return Record{}, 0, &frameFault{reason: fmt.Sprintf("v2 payload length %d below keyed header size at offset %d", n, off)}
		}
		keyLen := int(payload[recordHeaderLen])
		if recordHeaderLen+1+keyLen > n {
			return Record{}, 0, &frameFault{reason: fmt.Sprintf("v2 key length %d overruns payload at offset %d", keyLen, off)}
		}
		key = string(payload[recordHeaderLen+1 : recordHeaderLen+1+keyLen])
		dataStart = recordHeaderLen + 1 + keyLen
	default:
		return Record{}, 0, &frameFault{reason: fmt.Sprintf("unsupported record version %d at offset %d", payload[0], off)}
	}
	rec := Record{
		Seq:  binary.LittleEndian.Uint64(payload[2:10]),
		Type: payload[1],
		Key:  key,
		Data: append([]byte(nil), payload[dataStart:]...),
	}
	return rec, off + frameHeaderLen + n, nil
}
