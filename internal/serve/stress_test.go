package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	er "repro"
	"repro/internal/faultcheck"
	"repro/internal/guard"
)

// TestStressEveryRequestTerminal storms a tiny-queue instance with far
// more concurrent jobs than it can hold and asserts the overload contract:
// every request receives exactly one terminal status, only 200 or 429
// appear, and the terminal counters account for every request with nothing
// lost. Run with -race, this is also the data-race gauntlet for the whole
// admission path.
func TestStressEveryRequestTerminal(t *testing.T) {
	s, hs := newTestServer(t, Options{
		Runner: func(ctx context.Context, _ *er.Dataset, _ er.Options) (*er.Result, error) {
			if err := guard.Sleep(ctx, time.Millisecond); err != nil {
				return nil, fmt.Errorf("stress: %w", context.Cause(ctx))
			}
			return quickResult(), nil
		},
		MaxConcurrency:   2,
		QueueDepth:       2,
		BreakerThreshold: -1,
	})

	const n = 64
	statuses := make([]int64, n)
	errs := faultcheck.Storm(n, func(i int) error {
		resp, err := http.Post(hs.URL+"/resolve", "application/json",
			strings.NewReader(`{"replica":"restaurant","scale":0.05}`))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var jr jobResponse
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			return err
		}
		atomic.StoreInt64(&statuses[i], int64(resp.StatusCode))
		return nil
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d transport error: %v", i, err)
		}
	}

	var ok200, rej429 int64
	for i := range statuses {
		switch atomic.LoadInt64(&statuses[i]) {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			rej429++
		default:
			t.Fatalf("request %d got status %d; overload must yield only 200 or 429", i, statuses[i])
		}
	}
	if ok200+rej429 != n {
		t.Fatalf("lost requests: 200s %d + 429s %d != %d", ok200, rej429, n)
	}
	if ok200 == 0 {
		t.Fatal("storm starved out completely; expected some completions")
	}

	st := s.Stats()
	if st.Completed+st.Rejected != n {
		t.Fatalf("counters leak: completed %d + rejected %d != %d", st.Completed, st.Rejected, n)
	}
	if st.Completed != ok200 || st.Rejected != rej429 {
		t.Fatalf("counters disagree with observed statuses: %d/%d vs %d/%d", st.Completed, st.Rejected, ok200, rej429)
	}
	if st.InFlight != 0 || st.QueueDepth != 0 {
		t.Fatalf("server not idle after storm: in-flight %d, queued %d", st.InFlight, st.QueueDepth)
	}
}

// TestRejectOnlyWhenQueueFull pins the 429 condition deterministically:
// with the single worker blocked and the queue filled to capacity, the
// next request is rejected; until then every request is admitted.
func TestRejectOnlyWhenQueueFull(t *testing.T) {
	gate := make(chan struct{})
	s, hs := newTestServer(t, Options{
		Runner: func(ctx context.Context, _ *er.Dataset, _ er.Options) (*er.Result, error) {
			select {
			case <-gate:
				return quickResult(), nil
			case <-ctx.Done():
				return nil, fmt.Errorf("stress: %w", context.Cause(ctx))
			}
		},
		MaxConcurrency:   1,
		QueueDepth:       1,
		BreakerThreshold: -1,
	})

	results := make(chan int, 2)
	post := func() {
		status, _ := postJSON(t, hs.URL, `{"replica":"restaurant","scale":0.05}`)
		results <- status
	}

	go post() // occupies the worker
	waitFor(t, func() bool { return s.c.running.Load() == 1 })
	go post() // occupies the queue slot
	waitFor(t, func() bool { return len(s.queue) == 1 })

	// Queue provably full: this submission must fast-fail 429 without
	// waiting on the gate.
	status, jr := postJSON(t, hs.URL, `{"replica":"restaurant","scale":0.05}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("full-queue submit = %d (%s), want 429", status, jr.Error)
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if got := <-results; got != http.StatusOK {
			t.Fatalf("admitted request %d = %d, want 200", i, got)
		}
	}
	if st := s.Stats(); st.Rejected != 1 || st.Completed != 2 {
		t.Fatalf("stats = rejected %d completed %d, want 1/2", st.Rejected, st.Completed)
	}
}

// TestChaosAcceptance is the survival gauntlet from the issue: one
// panicking job, one deadline-blown job, and a 2× overload storm — with
// /healthz probed throughout and a normal job afterwards. The daemon must
// answer everything, stay live, and keep working.
func TestChaosAcceptance(t *testing.T) {
	s, hs := newTestServer(t, Options{
		Runner:           chaosRunner,
		MaxConcurrency:   2,
		QueueDepth:       2,
		JobTimeout:       150 * time.Millisecond,
		BreakerThreshold: 20, // present but out of reach: chaos here is client-scripted
	})

	stop := make(chan struct{})
	healthFailures := make(chan string, 64)
	go func() {
		for {
			select {
			case <-stop:
				close(healthFailures)
				return
			default:
			}
			resp, err := http.Get(hs.URL + "/healthz")
			if err != nil {
				healthFailures <- err.Error()
			} else {
				if resp.StatusCode != http.StatusOK {
					healthFailures <- fmt.Sprintf("healthz status %d", resp.StatusCode)
				}
				resp.Body.Close()
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// 2× overload: twice as many concurrent jobs as workers+queue, with a
	// panic and a deadline-stall mixed in.
	const n = 2 * (2 + 2)
	bodies := make([]string, n)
	for i := range bodies {
		bodies[i] = `{"replica":"restaurant","scale":0.05}`
	}
	bodies[1] = `{"replica":"restaurant","scale":0.05,"options":{"seed":666}}` // panics
	bodies[3] = `{"replica":"restaurant","scale":0.05,"options":{"seed":667}}` // stalls to deadline

	statuses := make([]int64, n)
	errs := faultcheck.Storm(n, func(i int) error {
		resp, err := http.Post(hs.URL+"/resolve", "application/json", strings.NewReader(bodies[i]))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var jr jobResponse
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			return err
		}
		atomic.StoreInt64(&statuses[i], int64(resp.StatusCode))
		return nil
	})
	close(stop)
	for i, err := range errs {
		if err != nil {
			t.Fatalf("chaos request %d transport error: %v", i, err)
		}
	}
	for msg := range healthFailures {
		t.Errorf("liveness violated during chaos: %s", msg)
	}

	allowed := map[int64]bool{
		http.StatusOK:                  true, // completed
		http.StatusTooManyRequests:     true, // queue overflow
		http.StatusInternalServerError: true, // recovered panic
		http.StatusGatewayTimeout:      true, // deadline blown (running or shed)
	}
	for i := range statuses {
		if got := atomic.LoadInt64(&statuses[i]); !allowed[got] {
			t.Fatalf("chaos request %d got unexpected status %d", i, got)
		}
	}

	st := s.Stats()
	if total := st.Completed + st.Failed + st.Shed + st.Rejected; total != n {
		t.Fatalf("terminal accounting: completed %d + failed %d + shed %d + rejected %d != %d",
			st.Completed, st.Failed, st.Shed, st.Rejected, n)
	}

	// The daemon must still work after the storm.
	status, jr := postJSON(t, hs.URL, `{"replica":"restaurant","scale":0.05}`)
	if status != http.StatusOK || jr.State != JobCompleted {
		t.Fatalf("post-chaos job = %d/%s (%s), want 200/completed", status, jr.State, jr.Error)
	}
}

// TestShutdownDrainsInFlight proves the graceful path: jobs admitted
// before Shutdown complete with 200 while the drain waits for them, and
// the worker pool exits without leaking goroutines.
func TestShutdownDrainsInFlight(t *testing.T) {
	before := runtime.NumGoroutine()
	gate := make(chan struct{})
	s, err := New(Options{
		Runner: func(ctx context.Context, _ *er.Dataset, _ er.Options) (*er.Result, error) {
			select {
			case <-gate:
				return quickResult(), nil
			case <-ctx.Done():
				return nil, fmt.Errorf("stress: %w", context.Cause(ctx))
			}
		},
		MaxConcurrency:   2,
		DrainBudget:      5 * time.Second,
		BreakerThreshold: -1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())

	results := make(chan int, 2)
	for i := 0; i < 2; i++ {
		go func() {
			status, _ := postJSON(t, hs.URL, `{"replica":"restaurant","scale":0.05}`)
			results <- status
		}()
	}
	waitFor(t, func() bool { return s.c.running.Load() == 2 })

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()
	waitFor(t, func() bool { return s.Draining() })

	// In-flight jobs finish normally once released; the drain must wait
	// for them rather than cancel.
	close(gate)
	for i := 0; i < 2; i++ {
		if got := <-results; got != http.StatusOK {
			t.Fatalf("in-flight job %d = %d, want 200 on graceful drain", i, got)
		}
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	hs.Close()

	// Worker goroutines must be gone. Poll: the runtime needs a moment to
	// reap HTTP keep-alive and test goroutines.
	waitFor(t, func() bool { return runtime.NumGoroutine() <= before+2 })
}

// TestDrainBudgetCancelsStragglers proves the hard edge of drain: a job
// that outlives the budget is canceled through its context, surfaces as a
// 503 draining failure, and Shutdown still completes in bounded time.
func TestDrainBudgetCancelsStragglers(t *testing.T) {
	s, err := New(Options{
		Runner: func(ctx context.Context, _ *er.Dataset, _ er.Options) (*er.Result, error) {
			<-ctx.Done() // ignores the drain request until canceled
			return nil, fmt.Errorf("straggler: %w", context.Cause(ctx))
		},
		MaxConcurrency:   1,
		DrainBudget:      50 * time.Millisecond,
		JobTimeout:       time.Hour,
		BreakerThreshold: -1,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	result := make(chan jobResponse, 1)
	statusCh := make(chan int, 1)
	go func() {
		status, jr := postJSON(t, hs.URL, `{"replica":"restaurant","scale":0.05}`)
		statusCh <- status
		result <- jr
	}()
	waitFor(t, func() bool { return s.c.running.Load() == 1 })

	begin := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if took := time.Since(begin); took > 5*time.Second {
		t.Fatalf("drain took %s; the budget is 50ms plus cancellation latency", took)
	}

	if status := <-statusCh; status != http.StatusServiceUnavailable {
		t.Fatalf("straggler status = %d, want 503", status)
	}
	if jr := <-result; jr.Kind != "draining" {
		t.Fatalf("straggler kind = %q, want draining (error %q)", jr.Kind, jr.Error)
	}
}
