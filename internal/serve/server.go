package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	er "repro"
	"repro/internal/guard"
	"repro/internal/wal"
)

// ErrDraining marks work refused or canceled because the server is
// shutting down. Handlers map it to 503 so load balancers retry elsewhere,
// distinguishing it from a client's own cancellation (499).
var ErrDraining = errors.New("serve: server is draining")

// Server is the resolution daemon: a bounded admission queue feeding a
// fixed worker pool, with per-class circuit breaking and graceful drain.
// Create with New, expose via Handler, stop with Shutdown.
type Server struct {
	opts Options

	queue       chan *job
	workers     sync.WaitGroup
	stopWorkers chan struct{}

	// inflight tracks every admitted job from queue entry to terminal
	// state; Shutdown drains it under the drain budget.
	inflight guard.Tracker

	// baseCtx parents every job context; kill cancels it with ErrDraining
	// when the drain budget expires.
	baseCtx context.Context
	kill    context.CancelCauseFunc

	breaker  *breaker
	jobs     *store
	draining atomic.Bool
	seq      atomic.Int64

	// cols is the durable-collections state; walLog its journal (nil when
	// DataDir is unset). walLog is written by the recovery goroutine
	// before recovery.phase flips to ready and read by handlers only after
	// they observe that phase.
	cols     *colStore
	walLog   *wal.Log
	recovery recoveryState

	// snapshots shares pre-matching artifacts across jobs on the same
	// dataset (nil when Options.SnapshotCache is negative).
	snapshots *er.SnapshotCache

	// resolvers holds the per-collection incremental mirrors the
	// delta-scoped resolve path syncs lazily (see resolver.go).
	resolvers struct {
		sync.Mutex
		m map[string]*colResolver
	}

	c        counters
	queueLat *latencyRing
	runLat   *latencyRing
	totalLat *latencyRing
	stages   *stageTotals

	shutdownOnce sync.Once
	shutdownErr  error
}

// New validates opts, builds a server and starts its worker pool. With a
// DataDir it also launches the background recovery that replays the
// durable-collections journal; /readyz reports 503 until the replay
// finishes. The caller owns the lifecycle: serve HTTP through Handler and
// stop with Shutdown.
func New(opts Options) (*Server, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	o := opts.withDefaults()
	base, kill := context.WithCancelCause(context.Background())
	s := &Server{
		opts:        o,
		queue:       make(chan *job, o.QueueDepth),
		stopWorkers: make(chan struct{}),
		baseCtx:     base,
		kill:        kill,
		breaker:     newBreaker(o.BreakerThreshold, o.BreakerCooldown, o.BreakerMaxCooldown, o.Clock, newEqualJitter()),
		jobs:        newStore(o.RetainedJobs),
		cols:        newColStore(o.DedupCapacity),
		queueLat:    newLatencyRing(o.LatencyWindow),
		runLat:      newLatencyRing(o.LatencyWindow),
		totalLat:    newLatencyRing(o.LatencyWindow),
		stages:      newStageTotals(),
	}
	s.resolvers.m = make(map[string]*colResolver)
	if o.SnapshotCache > 0 {
		s.snapshots = er.NewSnapshotCache(o.SnapshotCache)
	}
	if o.DataDir != "" {
		s.startRecovery()
	}
	for i := 0; i < o.MaxConcurrency; i++ {
		s.workers.Add(1)
		go s.worker()
	}
	return s, nil
}

// httpError is an admission-path rejection: status plus machine-readable
// kind, before a job ever exists.
type httpError struct {
	status     int
	kind       string
	message    string
	retryAfter time.Duration
}

// submit runs admission control for one request: acquire an in-flight
// slot, re-check draining (the order makes the drain race-free: Shutdown
// sets draining before it starts waiting, so any slot acquired after the
// drain observed idle self-rejects here), build the isolated job context,
// and fast-fail with 429 when the queue is full. On success the returned
// job is queued and its release function transferred to the caller.
func (s *Server) submit(reqCtx context.Context, class string, d *er.Dataset, opts er.Options, probe bool, run func(ctx context.Context) (*er.Result, error)) (*job, func(), *httpError) {
	release := s.inflight.Acquire()
	if s.draining.Load() {
		release()
		s.c.unavailable.Add(1)
		return nil, nil, &httpError{
			status:     http.StatusServiceUnavailable,
			kind:       "draining",
			message:    ErrDraining.Error(),
			retryAfter: unavailableRetryAfter,
		}
	}

	// Per-request isolation: the job context derives from baseCtx (so the
	// drain kill reaches it), is linked to the client's request context (a
	// gone client cancels the job), and carries the per-job deadline with
	// ErrBudgetExceeded as its cause so expiry maps to 504 via the
	// taxonomy. The deadline clock starts at admission: queue wait counts
	// against it, which is what makes stale queued work sheddable.
	jctx, cancel := context.WithCancelCause(s.baseCtx)
	unlink := context.AfterFunc(reqCtx, func() { cancel(context.Canceled) })
	dctx, dcancel := context.WithTimeoutCause(jctx, s.opts.JobTimeout, er.ErrBudgetExceeded)

	j := &job{
		id:         "job-" + strconv.FormatInt(s.seq.Add(1), 10),
		class:      class,
		dataset:    d,
		opts:       opts,
		probe:      probe,
		run:        run,
		ctx:        dctx,
		cancel:     cancel,
		enqueuedAt: s.opts.Clock(),
		done:       make(chan struct{}),
		state:      JobQueued,
	}
	j.cleanup = func() {
		unlink()
		dcancel()
		cancel(nil)
	}

	select {
	case s.queue <- j:
		s.c.admitted.Add(1)
		s.jobs.add(j)
		// runJob owns j.cleanup once the job is queued.
		return j, release, nil
	default:
		j.cleanup()
		release()
		s.c.rejected.Add(1)
		return nil, nil, &httpError{
			status:     http.StatusTooManyRequests,
			kind:       "queue_full",
			message:    fmt.Sprintf("serve: admission queue full (%d queued, %d running)", len(s.queue), s.c.running.Load()),
			retryAfter: unavailableRetryAfter,
		}
	}
}

// worker consumes the queue until stopWorkers closes, then sheds whatever
// is left (possible only after a hard drain kill, when every leftover
// context is already canceled).
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		select {
		case j := <-s.queue:
			s.runJob(j)
		case <-s.stopWorkers:
			for {
				select {
				case j := <-s.queue:
					s.runJob(j)
				default:
					return
				}
			}
		}
	}
}

// runJob executes one dequeued job with full fault containment: shed if
// its deadline can no longer be met (or drain canceled it while queued),
// recover panics into ErrInternal, classify the outcome for the circuit
// breaker, and record per-stage latencies. It always closes j.done — the
// waiting handler's single terminal signal.
func (s *Server) runJob(j *job) {
	defer close(j.done)
	defer j.cleanup()
	start := s.opts.Clock()
	queueWait := start.Sub(j.enqueuedAt)
	s.queueLat.add(queueWait)

	// Load shedding: a queued job whose context is already done — deadline
	// expired while waiting, client gone, or drain kill — cannot meet its
	// deadline anymore; answering immediately is cheaper for everyone than
	// running a doomed resolution.
	if err := j.ctx.Err(); err != nil {
		cause := context.Cause(j.ctx)
		if cause == nil {
			cause = err
		}
		j.mu.Lock()
		j.state = JobShed
		j.err = fmt.Errorf("serve: job %s shed before running: %w", j.id, cause)
		j.queueWait = queueWait
		j.mu.Unlock()
		s.c.shed.Add(1)
		s.breaker.onNeutral(j.class)
		s.opts.Logf("serve: %s class=%s shed after %s queued: %v", j.id, j.class, queueWait, cause)
		return
	}

	j.setState(JobRunning)
	s.c.running.Add(1)
	// Per-job worker budget: a client request below the budget is honored
	// (results are worker-count-invariant), anything else — including the
	// "use the machine" zero — is clamped to WorkersPerJob so a full worker
	// pool cannot oversubscribe the CPUs.
	if j.opts.Workers <= 0 || j.opts.Workers > s.opts.WorkersPerJob {
		j.opts.Workers = s.opts.WorkersPerJob
	}
	// Snapshot reuse: every job resolves through the shared cache, so a
	// second job on the same dataset skips tokenization and blocking (its
	// trace reports those stages as cached).
	if j.opts.Snapshots == nil {
		j.opts.Snapshots = s.snapshots
	}
	var res *er.Result
	var err error
	func() {
		// The isolation boundary: a panic anywhere in the job — the
		// pipeline's own recovery should catch library bugs first, but
		// chaos runners and future handler code land here too — becomes a
		// structured ErrInternal instead of a dead process.
		defer func() {
			if r := recover(); r != nil {
				s.c.panics.Add(1)
				res, err = nil, fmt.Errorf("%w: recovered job panic: %v", er.ErrInternal, r)
			}
		}()
		if j.run != nil {
			res, err = j.run(j.ctx)
		} else {
			res, err = s.opts.Runner(j.ctx, j.dataset, j.opts)
		}
	}()
	s.c.running.Add(-1)
	end := s.opts.Clock()
	runTime := end.Sub(start)
	s.runLat.add(runTime)
	s.totalLat.add(end.Sub(j.enqueuedAt))

	// A job canceled by the drain kill reports 503 (retry elsewhere), not
	// the client-cancellation 499 it would otherwise map to.
	if err != nil && errors.Is(err, context.Canceled) {
		if cause := context.Cause(j.ctx); errors.Is(cause, ErrDraining) {
			err = fmt.Errorf("%w: %w", ErrDraining, err)
		}
	}

	j.mu.Lock()
	j.queueWait = queueWait
	j.runTime = runTime
	j.result = res
	j.err = err
	if err == nil {
		j.state = JobCompleted
	} else {
		j.state = JobFailed
	}
	j.mu.Unlock()

	if err == nil {
		if res != nil {
			s.stages.record(res.Trace)
		}
		s.c.completed.Add(1)
		s.breaker.onSuccess(j.class)
		s.opts.Logf("serve: %s class=%s completed in %s (queue %s)", j.id, j.class, runTime, queueWait)
		return
	}
	s.c.failed.Add(1)
	if serverFault(err) {
		if s.breaker.onFailure(j.class) {
			s.opts.Logf("serve: breaker tripped for class=%s after %s: %v", j.class, j.id, err)
		}
	} else {
		s.breaker.onNeutral(j.class)
	}
	s.opts.Logf("serve: %s class=%s failed in %s: %v", j.id, j.class, runTime, err)
}

// serverFault reports whether an error indicts the server rather than the
// request: internal bugs, panics and blown budgets count against the
// circuit breaker; malformed requests and client cancellations do not.
func serverFault(err error) bool {
	switch {
	case errors.Is(err, er.ErrInvalidOptions),
		errors.Is(err, er.ErrBadData),
		errors.Is(err, er.ErrNoRecords),
		errors.Is(err, er.ErrNoCandidates):
		return false
	case errors.Is(err, ErrDraining), errors.Is(err, context.Canceled):
		return false
	default:
		return true
	}
}

// statusFor maps a terminal job error onto its HTTP status: drain
// cancellations are 503 (retryable elsewhere), everything else follows the
// er.HTTPStatus taxonomy table.
func statusFor(err error) int {
	if errors.Is(err, ErrDraining) {
		return http.StatusServiceUnavailable
	}
	return er.HTTPStatus(err)
}

// Draining reports whether admission has been stopped.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown gracefully drains the server: admission stops immediately
// (readyz flips, new jobs get 503), in-flight jobs get DrainBudget to
// finish, stragglers are then hard-canceled with ErrDraining, and the
// worker pool exits. ctx bounds the whole call; a context that expires
// before the stragglers acknowledge cancellation yields an error and may
// leak the stuck workers (nothing else waits on them). Shutdown is
// idempotent: later calls return the first outcome.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() {
		s.draining.Store(true)
		s.opts.Logf("serve: draining: %d in flight, budget %s", s.inflight.InFlight(), s.opts.DrainBudget)
		budgetCtx, cancel := context.WithTimeout(ctx, s.opts.DrainBudget)
		drained := s.inflight.Drain(budgetCtx)
		cancel()
		if !drained {
			s.opts.Logf("serve: drain budget exhausted with %d in flight; canceling stragglers", s.inflight.InFlight())
			s.kill(ErrDraining)
			drained = s.inflight.Drain(ctx)
		}
		close(s.stopWorkers)
		if drained {
			s.workers.Wait()
		} else {
			s.shutdownErr = fmt.Errorf("serve: drain incomplete: %w", ErrDraining)
		}
		// Idempotent: releases baseCtx resources on the clean path too.
		s.kill(ErrDraining)
		// With the drain done no mutation is in flight, so the final
		// snapshot captures a quiesced state.
		s.finishDurability()
		s.opts.Logf("serve: drained (complete=%v)", drained)
	})
	return s.shutdownErr
}

// Stats snapshots the server's counters, gauges, latency quantiles and
// breaker classes.
func (s *Server) Stats() Stats {
	colCount, recCount := s.cols.counts()
	return Stats{
		QueueDepth:     len(s.queue),
		QueueCapacity:  cap(s.queue),
		InFlight:       s.inflight.InFlight(),
		Running:        s.c.running.Load(),
		Draining:       s.draining.Load(),
		Admitted:       s.c.admitted.Load(),
		Completed:      s.c.completed.Load(),
		Failed:         s.c.failed.Load(),
		Shed:           s.c.shed.Load(),
		Rejected:       s.c.rejected.Load(),
		BreakerTripped: s.c.tripped.Load(),
		Unavailable:    s.c.unavailable.Load(),
		Panics:         s.c.panics.Load(),
		QueueLatency:   s.queueLat.quantiles(),
		RunLatency:     s.runLat.quantiles(),
		TotalLatency:   s.totalLat.quantiles(),
		Breakers:       s.breaker.snapshot(),
		Stages:         s.stages.snapshot(),
		SnapshotCache:  snapshotCacheStats(s.snapshots),
		Collections: CollectionsStats{
			Collections:      colCount,
			Records:          recCount,
			DeltaResolves:    s.c.deltaResolves.Load(),
			ResolverRebuilds: s.c.resolverRebuilds.Load(),
		},
		Idempotency: s.cols.idempotencyStats(),
		Durability:  s.durabilityStats(),
	}
}
