package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// doKeyed issues one request with an Idempotency-Key and returns status,
// the Idempotency-Replayed header, and the decoded body.
func doKeyed(t *testing.T, method, url, key, body string) (int, bool, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s %s: decode body: %v", method, url, err)
	}
	return resp.StatusCode, resp.Header.Get("Idempotency-Replayed") == "true", out
}

// TestIdempotentPutReplaysNotReapplies is the core exactly-once contract:
// the same keyed request repeated returns the original outcome, marked
// replayed, without applying again.
func TestIdempotentPutReplaysNotReapplies(t *testing.T) {
	s, hs := newTestServer(t, Options{DataDir: t.TempDir(), BreakerThreshold: -1})
	waitReady(t, s)
	if status, _, body := doKeyed(t, http.MethodPost, hs.URL+"/collections", "", `{"name":"shops"}`); status != http.StatusCreated {
		t.Fatalf("create = %d (%v)", status, body)
	}

	url := hs.URL + "/collections/shops/records/r1"
	const rec = `{"entity":"e1","source":0,"text":"joe's pizza"}`
	status, replayed, body := doKeyed(t, http.MethodPut, url, "key-1", rec)
	if status != http.StatusOK || replayed {
		t.Fatalf("first put = %d replayed=%v (%v), want 200 fresh", status, replayed, body)
	}

	for i := 0; i < 3; i++ {
		rStatus, rReplayed, rBody := doKeyed(t, http.MethodPut, url, "key-1", rec)
		if rStatus != http.StatusOK || !rReplayed {
			t.Fatalf("retry %d = %d replayed=%v, want 200 replayed", i, rStatus, rReplayed)
		}
		if got, _ := json.Marshal(rBody); string(got) != mustJSON(t, body) {
			t.Fatalf("retry %d body %s != original %v", i, got, body)
		}
	}

	st := getStats(t, hs.URL)
	if st.Idempotency.Replays != 3 || st.Idempotency.Conflicts != 0 {
		t.Fatalf("idempotency stats = %+v, want 3 replays, 0 conflicts", st.Idempotency)
	}
	// One keyed PUT → one tracked key; the create above was keyless.
	if st.Idempotency.TrackedKeys != 1 {
		t.Fatalf("tracked keys = %d, want 1 (stats %+v)", st.Idempotency.TrackedKeys, st.Idempotency)
	}
	if st.Collections.Records != 1 {
		t.Fatalf("records = %d, want 1 (retries must not duplicate)", st.Collections.Records)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(b)
}

// TestIdempotencyKeyConflict: the same key with a different body is a
// client bug and must be refused, not guessed at.
func TestIdempotencyKeyConflict(t *testing.T) {
	_, hs := newTestServer(t, Options{BreakerThreshold: -1})
	doKeyed(t, http.MethodPost, hs.URL+"/collections", "", `{"name":"shops"}`)

	url := hs.URL + "/collections/shops/records/r1"
	if status, _, _ := doKeyed(t, http.MethodPut, url, "key-c", `{"text":"original"}`); status != http.StatusOK {
		t.Fatalf("first put = %d", status)
	}
	status, replayed, body := doKeyed(t, http.MethodPut, url, "key-c", `{"text":"different"}`)
	if status != http.StatusUnprocessableEntity || replayed {
		t.Fatalf("conflicting reuse = %d replayed=%v (%v), want 422", status, replayed, body)
	}
	if body["kind"] != "idempotency_conflict" {
		t.Fatalf("kind = %v, want idempotency_conflict", body["kind"])
	}
	// Same key on a different METHOD (delete vs put) conflicts too, even
	// though the delete's mutation body would also differ.
	if status, _, _ := doKeyed(t, http.MethodDelete, url, "key-c", ""); status != http.StatusUnprocessableEntity {
		t.Fatalf("cross-type reuse = %d, want 422", status)
	}
	if st := getStats(t, hs.URL); st.Idempotency.Conflicts != 2 {
		t.Fatalf("conflicts = %d, want 2", st.Idempotency.Conflicts)
	}
}

// TestIdempotencyKeyTooLong: oversized keys are rejected before touching
// state — the journal's key frame caps at 255 bytes and serve below that.
func TestIdempotencyKeyTooLong(t *testing.T) {
	_, hs := newTestServer(t, Options{BreakerThreshold: -1})
	key := strings.Repeat("k", maxIdempotencyKeyBytes+1)
	status, _, body := doKeyed(t, http.MethodPost, hs.URL+"/collections", key, `{"name":"shops"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("oversized key = %d (%v), want 400", status, body)
	}
	if st := getStats(t, hs.URL); st.Collections.Collections != 0 {
		t.Fatal("rejected request must not create the collection")
	}
}

// TestIdempotencyReplayAcrossCrashRestart: the dedup table is journaled,
// so a retry that lands after a crash-restart (no clean shutdown, replay
// from the log) still replays instead of re-applying.
func TestIdempotencyReplayAcrossCrashRestart(t *testing.T) {
	dir := t.TempDir()
	s1, hs1 := newTestServer(t, Options{DataDir: dir, BreakerThreshold: -1})
	waitReady(t, s1)
	doKeyed(t, http.MethodPost, hs1.URL+"/collections", "key-create", `{"name":"shops"}`)
	const rec = `{"entity":"e1","source":0,"text":"joe's pizza"}`
	if status, _, _ := doKeyed(t, http.MethodPut, hs1.URL+"/collections/shops/records/r1", "key-put", rec); status != http.StatusOK {
		t.Fatal("seed put failed")
	}

	// No Shutdown: a second server over the same directory sees exactly
	// what a post-SIGKILL restart sees.
	s2, hs2 := newTestServer(t, Options{DataDir: dir, BreakerThreshold: -1})
	waitReady(t, s2)

	st := getStats(t, hs2.URL)
	if st.Idempotency.TrackedKeys != 2 {
		t.Fatalf("tracked keys after replay = %d, want 2", st.Idempotency.TrackedKeys)
	}
	// Retrying both mutations against the restarted server replays.
	if status, replayed, _ := doKeyed(t, http.MethodPost, hs2.URL+"/collections", "key-create", `{"name":"shops"}`); status != http.StatusCreated || !replayed {
		t.Fatalf("create retry after restart = %d replayed=%v, want 201 replayed", status, replayed)
	}
	if status, replayed, _ := doKeyed(t, http.MethodPut, hs2.URL+"/collections/shops/records/r1", "key-put", rec); status != http.StatusOK || !replayed {
		t.Fatalf("put retry after restart = %d replayed=%v, want 200 replayed", status, replayed)
	}
	if st := getStats(t, hs2.URL); st.Collections.Records != 1 {
		t.Fatalf("records = %d, want 1", st.Collections.Records)
	}
}

// TestIdempotencyTableSurvivesSnapshot: after a clean shutdown (which
// writes a final snapshot and truncates the log) the dedup table rides the
// snapshot, not the discarded tail.
func TestIdempotencyTableSurvivesSnapshot(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Options{DataDir: dir, BreakerThreshold: -1})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs1 := httptest.NewServer(s1.Handler())
	waitReady(t, s1)
	doKeyed(t, http.MethodPost, hs1.URL+"/collections", "key-create", `{"name":"shops"}`)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	hs1.Close()

	s2, hs2 := newTestServer(t, Options{DataDir: dir, BreakerThreshold: -1})
	waitReady(t, s2)
	st := getStats(t, hs2.URL)
	if st.Durability == nil || !st.Durability.SnapshotRestored {
		t.Fatalf("durability = %+v, want snapshot restore", st.Durability)
	}
	if st.Idempotency.TrackedKeys != 1 {
		t.Fatalf("tracked keys from snapshot = %d, want 1", st.Idempotency.TrackedKeys)
	}
	if status, replayed, _ := doKeyed(t, http.MethodPost, hs2.URL+"/collections", "key-create", `{"name":"shops"}`); status != http.StatusCreated || !replayed {
		t.Fatalf("retry after snapshot restore = %d replayed=%v, want 201 replayed", status, replayed)
	}
}

// TestIdempotencyEvictionJournaled: a tiny capacity forces evictions; the
// evicted key loses replay protection (a retry re-applies as fresh), the
// surviving keys keep it, and a crash-restart agrees with the in-memory
// table because the evictions were journaled.
func TestIdempotencyEvictionJournaled(t *testing.T) {
	dir := t.TempDir()
	s1, hs1 := newTestServer(t, Options{DataDir: dir, BreakerThreshold: -1, DedupCapacity: 2})
	waitReady(t, s1)
	doKeyed(t, http.MethodPost, hs1.URL+"/collections", "", `{"name":"shops"}`)
	for _, k := range []string{"key-a", "key-b", "key-c"} {
		url := hs1.URL + "/collections/shops/records/" + k
		if status, _, _ := doKeyed(t, http.MethodPut, url, k, `{"text":"x"}`); status != http.StatusOK {
			t.Fatalf("put %s failed", k)
		}
	}
	st := getStats(t, hs1.URL)
	if st.Idempotency.TrackedKeys != 2 || st.Idempotency.Evictions != 1 || st.Idempotency.Capacity != 2 {
		t.Fatalf("idempotency stats = %+v, want 2 tracked / 1 evicted / cap 2", st.Idempotency)
	}
	// key-a was evicted: its retry applies fresh (observable here as a
	// non-replayed 200 — and it re-enters the table, evicting key-b).
	if _, replayed, _ := doKeyed(t, http.MethodPut, hs1.URL+"/collections/shops/records/key-a", "key-a", `{"text":"x"}`); replayed {
		t.Fatal("evicted key must not replay")
	}
	// key-c survived both evictions and still replays.
	if _, replayed, _ := doKeyed(t, http.MethodPut, hs1.URL+"/collections/shops/records/key-c", "key-c", `{"text":"x"}`); !replayed {
		t.Fatal("resident key must replay")
	}

	// A crash-restart rebuilds the same table from the log: the evict
	// records replay too, so the restarted table matches — even under a
	// different configured capacity, because replay never re-evicts.
	s2, hs2 := newTestServer(t, Options{DataDir: dir, BreakerThreshold: -1, DedupCapacity: 64})
	waitReady(t, s2)
	st2 := getStats(t, hs2.URL)
	if st2.Idempotency.TrackedKeys != 2 {
		t.Fatalf("restarted tracked keys = %d, want 2 (key-a refreshed, key-c resident)", st2.Idempotency.TrackedKeys)
	}
	if _, replayed, _ := doKeyed(t, http.MethodPut, hs2.URL+"/collections/shops/records/key-c", "key-c", `{"text":"x"}`); !replayed {
		t.Fatal("resident key must replay after restart")
	}
	if _, replayed, _ := doKeyed(t, http.MethodPut, hs2.URL+"/collections/shops/records/key-b", "key-b", `{"text":"x"}`); replayed {
		t.Fatal("journal-evicted key must not replay after restart")
	}
}

// TestKeylessMutationsBypassDedup: requests without a key take the plain
// path — every call applies, nothing is tracked.
func TestKeylessMutationsBypassDedup(t *testing.T) {
	_, hs := newTestServer(t, Options{BreakerThreshold: -1})
	doKeyed(t, http.MethodPost, hs.URL+"/collections", "", `{"name":"shops"}`)
	url := hs.URL + "/collections/shops/records/r1"
	for i := 0; i < 3; i++ {
		if status, replayed, _ := doKeyed(t, http.MethodPut, url, "", `{"text":"x"}`); status != http.StatusOK || replayed {
			t.Fatalf("keyless put %d = %d replayed=%v", i, status, replayed)
		}
	}
	if st := getStats(t, hs.URL); st.Idempotency.TrackedKeys != 0 || st.Idempotency.Replays != 0 {
		t.Fatalf("keyless mutations leaked into dedup: %+v", st.Idempotency)
	}
}
