package serve

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced time source, making breaker cooldown
// transitions deterministic.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// TestBreakerStateMachine drives the full closed → open → half-open →
// {closed, open} cycle through a scripted event table against an injected
// clock.
func TestBreakerStateMachine(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(3, 100*time.Millisecond, 400*time.Millisecond, clk.Now, nil)
	const class = "replica:restaurant"

	type step struct {
		name    string
		event   func() // state input: failure, success, neutral, or clock advance
		ok      bool   // expected allow() outcome after the event
		probe   bool
		blocked bool // expect retryAfter > 0
	}
	steps := []step{
		{name: "closed allows", event: func() {}, ok: true},
		{name: "one failure stays closed", event: func() { b.onFailure(class) }, ok: true},
		{name: "two failures stay closed", event: func() { b.onFailure(class) }, ok: true},
		{name: "third failure trips open", event: func() { b.onFailure(class) }, ok: false, blocked: true},
		{name: "open persists before cooldown", event: func() { clk.Advance(50 * time.Millisecond) }, ok: false, blocked: true},
		{name: "cooldown elapses: half-open probe", event: func() { clk.Advance(50 * time.Millisecond) }, ok: true, probe: true},
		{name: "second request during probe blocked", event: func() {}, ok: false, blocked: true},
		{name: "probe failure re-opens with doubled backoff", event: func() { b.onFailure(class) }, ok: false, blocked: true},
		{name: "first cooldown no longer enough", event: func() { clk.Advance(100 * time.Millisecond) }, ok: false, blocked: true},
		{name: "doubled cooldown elapses: probe again", event: func() { clk.Advance(100 * time.Millisecond) }, ok: true, probe: true},
		{name: "neutral probe outcome releases the slot", event: func() { b.onNeutral(class) }, ok: true, probe: true},
		{name: "probe success closes", event: func() { b.onSuccess(class) }, ok: true},
		{name: "closed again: backoff history reset", event: func() {
			b.onFailure(class)
			b.onFailure(class)
			b.onFailure(class)
			clk.Advance(100 * time.Millisecond) // original cooldown suffices after reset
		}, ok: true, probe: true},
	}
	for _, s := range steps {
		s.event()
		ok, probe, retryAfter := b.allow(class)
		if ok != s.ok || probe != s.probe {
			t.Fatalf("%s: allow() = (ok=%v probe=%v), want (ok=%v probe=%v)", s.name, ok, probe, s.ok, s.probe)
		}
		if s.blocked && retryAfter <= 0 {
			t.Fatalf("%s: expected positive retryAfter, got %s", s.name, retryAfter)
		}
		if !s.blocked && retryAfter != 0 {
			t.Fatalf("%s: expected zero retryAfter, got %s", s.name, retryAfter)
		}
		// A granted probe stays outstanding until a later step settles it
		// via onFailure/onSuccess/onNeutral — exactly like a real in-flight
		// probe job.
	}
}

// TestBreakerBackoffCap verifies the exponential backoff saturates at
// maxCooldown instead of growing without bound.
func TestBreakerBackoffCap(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(1, 100*time.Millisecond, 400*time.Millisecond, clk.Now, nil)
	const class = "upload"

	// Trip repeatedly: cooldowns should run 100ms, 200ms, 400ms, 400ms...
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond, 400 * time.Millisecond}
	b.onFailure(class) // trip #1
	for i, cd := range want {
		_, _, retryAfter := b.allow(class)
		if retryAfter != cd {
			t.Fatalf("trip %d: retryAfter = %s, want %s", i+1, retryAfter, cd)
		}
		clk.Advance(cd)
		ok, probe, _ := b.allow(class)
		if !ok || !probe {
			t.Fatalf("trip %d: expected probe after cooldown, got ok=%v probe=%v", i+1, ok, probe)
		}
		b.onFailure(class) // probe fails, re-trip with doubled backoff
	}
}

// TestBreakerIndependentClasses confirms one sick class cannot trip
// another.
func TestBreakerIndependentClasses(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(1, 100*time.Millisecond, 400*time.Millisecond, clk.Now, nil)
	b.onFailure("replica:paper")
	if ok, _, _ := b.allow("replica:paper"); ok {
		t.Fatal("tripped class should be blocked")
	}
	if ok, _, _ := b.allow("replica:restaurant"); !ok {
		t.Fatal("untripped class should be allowed")
	}
	snap := b.snapshot()
	if len(snap) != 2 || snap[0].Class != "replica:paper" || snap[1].Class != "replica:restaurant" {
		t.Fatalf("snapshot not sorted by class: %+v", snap)
	}
}

// TestBreakerDisabled confirms a negative threshold turns the breaker into
// a pass-through.
func TestBreakerDisabled(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(-1, 100*time.Millisecond, 400*time.Millisecond, clk.Now, nil)
	for i := 0; i < 50; i++ {
		b.onFailure("x")
	}
	if ok, probe, retryAfter := b.allow("x"); !ok || probe || retryAfter != 0 {
		t.Fatalf("disabled breaker must always allow, got ok=%v probe=%v retryAfter=%s", ok, probe, retryAfter)
	}
}

// TestEqualJitterBounds pins the jitter contract: every draw lands in
// [d/2, d], so a tripped class always honors at least half its intended
// backoff and never exceeds it.
func TestEqualJitterBounds(t *testing.T) {
	jitter := newEqualJitter()
	for _, d := range []time.Duration{time.Millisecond, time.Second, 5 * time.Second, 2 * time.Minute} {
		var min, max time.Duration
		for i := 0; i < 500; i++ {
			got := jitter(d)
			if got < d/2 || got > d {
				t.Fatalf("jitter(%s) = %s, want within [%s, %s]", d, got, d/2, d)
			}
			if i == 0 || got < min {
				min = got
			}
			if got > max {
				max = got
			}
		}
		// 500 draws from a uniform range collapsing to one value would mean
		// the jitter is not jittering.
		if d >= time.Second && min == max {
			t.Fatalf("jitter(%s) returned %s on all 500 draws", d, min)
		}
	}
	// Degenerate inputs pass through untouched.
	if got := jitter(0); got != 0 {
		t.Fatalf("jitter(0) = %s", got)
	}
}

// TestBreakerTripUsesJitter verifies the trip path routes the open window
// through the injected jitter function.
func TestBreakerTripUsesJitter(t *testing.T) {
	clk := newFakeClock()
	halved := func(d time.Duration) time.Duration { return d / 2 }
	b := newBreaker(1, 100*time.Millisecond, 400*time.Millisecond, clk.Now, halved)
	const class = "x"
	b.onFailure(class)
	if ok, _, _ := b.allow(class); ok {
		t.Fatal("class should be open after trip")
	}
	// The halved jitter shrank the 100ms cooldown to 50ms.
	clk.Advance(50 * time.Millisecond)
	ok, probe, _ := b.allow(class)
	if !ok || !probe {
		t.Fatalf("allow after jittered cooldown: ok=%v probe=%v, want probe admission", ok, probe)
	}
}
