package serve

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually-advanced time source, making breaker cooldown
// transitions deterministic.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// TestBreakerStateMachine drives the full closed → open → half-open →
// {closed, open} cycle through a scripted event table against an injected
// clock.
func TestBreakerStateMachine(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(3, 100*time.Millisecond, 400*time.Millisecond, clk.Now)
	const class = "replica:restaurant"

	type step struct {
		name    string
		event   func() // state input: failure, success, neutral, or clock advance
		ok      bool   // expected allow() outcome after the event
		probe   bool
		blocked bool // expect retryAfter > 0
	}
	steps := []step{
		{name: "closed allows", event: func() {}, ok: true},
		{name: "one failure stays closed", event: func() { b.onFailure(class) }, ok: true},
		{name: "two failures stay closed", event: func() { b.onFailure(class) }, ok: true},
		{name: "third failure trips open", event: func() { b.onFailure(class) }, ok: false, blocked: true},
		{name: "open persists before cooldown", event: func() { clk.Advance(50 * time.Millisecond) }, ok: false, blocked: true},
		{name: "cooldown elapses: half-open probe", event: func() { clk.Advance(50 * time.Millisecond) }, ok: true, probe: true},
		{name: "second request during probe blocked", event: func() {}, ok: false, blocked: true},
		{name: "probe failure re-opens with doubled backoff", event: func() { b.onFailure(class) }, ok: false, blocked: true},
		{name: "first cooldown no longer enough", event: func() { clk.Advance(100 * time.Millisecond) }, ok: false, blocked: true},
		{name: "doubled cooldown elapses: probe again", event: func() { clk.Advance(100 * time.Millisecond) }, ok: true, probe: true},
		{name: "neutral probe outcome releases the slot", event: func() { b.onNeutral(class) }, ok: true, probe: true},
		{name: "probe success closes", event: func() { b.onSuccess(class) }, ok: true},
		{name: "closed again: backoff history reset", event: func() {
			b.onFailure(class)
			b.onFailure(class)
			b.onFailure(class)
			clk.Advance(100 * time.Millisecond) // original cooldown suffices after reset
		}, ok: true, probe: true},
	}
	for _, s := range steps {
		s.event()
		ok, probe, retryAfter := b.allow(class)
		if ok != s.ok || probe != s.probe {
			t.Fatalf("%s: allow() = (ok=%v probe=%v), want (ok=%v probe=%v)", s.name, ok, probe, s.ok, s.probe)
		}
		if s.blocked && retryAfter <= 0 {
			t.Fatalf("%s: expected positive retryAfter, got %s", s.name, retryAfter)
		}
		if !s.blocked && retryAfter != 0 {
			t.Fatalf("%s: expected zero retryAfter, got %s", s.name, retryAfter)
		}
		// A granted probe stays outstanding until a later step settles it
		// via onFailure/onSuccess/onNeutral — exactly like a real in-flight
		// probe job.
	}
}

// TestBreakerBackoffCap verifies the exponential backoff saturates at
// maxCooldown instead of growing without bound.
func TestBreakerBackoffCap(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(1, 100*time.Millisecond, 400*time.Millisecond, clk.Now)
	const class = "upload"

	// Trip repeatedly: cooldowns should run 100ms, 200ms, 400ms, 400ms...
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond, 400 * time.Millisecond}
	b.onFailure(class) // trip #1
	for i, cd := range want {
		_, _, retryAfter := b.allow(class)
		if retryAfter != cd {
			t.Fatalf("trip %d: retryAfter = %s, want %s", i+1, retryAfter, cd)
		}
		clk.Advance(cd)
		ok, probe, _ := b.allow(class)
		if !ok || !probe {
			t.Fatalf("trip %d: expected probe after cooldown, got ok=%v probe=%v", i+1, ok, probe)
		}
		b.onFailure(class) // probe fails, re-trip with doubled backoff
	}
}

// TestBreakerIndependentClasses confirms one sick class cannot trip
// another.
func TestBreakerIndependentClasses(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(1, 100*time.Millisecond, 400*time.Millisecond, clk.Now)
	b.onFailure("replica:paper")
	if ok, _, _ := b.allow("replica:paper"); ok {
		t.Fatal("tripped class should be blocked")
	}
	if ok, _, _ := b.allow("replica:restaurant"); !ok {
		t.Fatal("untripped class should be allowed")
	}
	snap := b.snapshot()
	if len(snap) != 2 || snap[0].Class != "replica:paper" || snap[1].Class != "replica:restaurant" {
		t.Fatalf("snapshot not sorted by class: %+v", snap)
	}
}

// TestBreakerDisabled confirms a negative threshold turns the breaker into
// a pass-through.
func TestBreakerDisabled(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(-1, 100*time.Millisecond, 400*time.Millisecond, clk.Now)
	for i := 0; i < 50; i++ {
		b.onFailure("x")
	}
	if ok, probe, retryAfter := b.allow("x"); !ok || probe || retryAfter != 0 {
		t.Fatalf("disabled breaker must always allow, got ok=%v probe=%v retryAfter=%s", ok, probe, retryAfter)
	}
}
