package serve

import (
	"context"
	"fmt"
	"sync"

	er "repro"
)

// Delta-scoped collection resolution: each collection gets a lazily-synced
// er.Collection mirror of the store's records. Mutations bump a
// per-collection version and append to a capped delta log; a resolve
// catches the mirror up by replaying only the missed mutations (falling
// back to a full rebuild when the log no longer reaches back far enough)
// and then resolves incrementally — re-fusing only the candidate-graph
// components the mutations touched, with everything else served from the
// shared component cache.
//
// The mirror is advisory state derived from the store: it is never
// journaled, and a restart simply rebuilds it on the first resolve. The
// incremental result is a pure function of the collection state and the
// default options (per-component fusion semantics — see er.Collection), so
// responses stay deterministic across restarts and mutation orderings.

// deltaLogCap bounds each collection's mutation log. A resolver lagging
// further behind than the log reaches is rebuilt from the full record set
// instead — correct either way, the log only bounds the cheap path.
const deltaLogCap = 1024

// colMutation is one journal-ordered record change in a collection's delta
// log. Delete distinguishes the two mutation kinds.
type colMutation struct {
	version uint64
	delete  bool
	id      string
	rec     colRecord
}

// colLog is one collection's capped mutation log: entries hold consecutive
// versions start, start+1, ... so a resolver at version v resumes at entry
// v+1-start.
type colLog struct {
	start   uint64
	entries []colMutation
}

// bumpLocked advances a collection's version counter and, for record
// mutations, appends to its delta log, trimming the oldest entries past
// the cap. Called from applyLocked under the store write lock — including
// during WAL replay, so versions count journal order on every path.
func (c *colStore) bumpLocked(typ byte, m mutation) {
	switch typ {
	case mutCreate:
		c.version[m.Collection]++
		c.logs[m.Collection] = &colLog{start: c.version[m.Collection] + 1}
	case mutDrop:
		// Keep the version counter (monotonic across drop/recreate, so a
		// stale resolver of a previous incarnation can never fast-path) and
		// drop the log.
		c.version[m.Collection]++
		delete(c.logs, m.Collection)
	case mutUpsert, mutDelete:
		c.version[m.Collection]++
		lg := c.logs[m.Collection]
		if lg == nil {
			lg = &colLog{start: c.version[m.Collection]}
			c.logs[m.Collection] = lg
		}
		cm := colMutation{version: c.version[m.Collection], id: m.ID}
		if typ == mutDelete {
			cm.delete = true
		} else {
			cm.rec = colRecord{Entity: m.Entity, Source: m.Source, Text: m.Text}
		}
		lg.entries = append(lg.entries, cm)
		if over := len(lg.entries) - deltaLogCap; over > 0 {
			lg.entries = append([]colMutation(nil), lg.entries[over:]...)
			lg.start += uint64(over)
		}
	}
}

// syncPlan computes, under the store's read lock, what a resolver at
// version have must do to reach the current state: replay muts (cheap
// path), or rebuild from the returned record snapshot. exists reports
// whether the collection is still there at all.
func (c *colStore) syncPlan(name string, have uint64, haveCol bool) (cur uint64, muts []colMutation, rebuild map[string]colRecord, exists bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	col, ok := c.cols[name]
	if !ok {
		return 0, nil, nil, false
	}
	cur = c.version[name]
	if lg := c.logs[name]; haveCol && lg != nil && have+1 >= lg.start {
		if idx := int(have + 1 - lg.start); idx <= len(lg.entries) {
			return cur, append([]colMutation(nil), lg.entries[idx:]...), nil, true
		}
	}
	rebuild = make(map[string]colRecord, len(col))
	for id, r := range col {
		rebuild[id] = r
	}
	return cur, nil, rebuild, true
}

// colResolver is one collection's incremental mirror. mu serializes use:
// er.Collection is not safe for concurrent access, so concurrent resolves
// of the same collection queue up here (distinct collections resolve in
// parallel).
type colResolver struct {
	mu      sync.Mutex
	col     *er.Collection
	version uint64
}

// resolverOptions are the fixed pipeline options the incremental mirrors
// run under: the defaults, the server's per-job worker budget, and the
// shared snapshot cache (so component results survive mirror rebuilds and
// are shared across collections).
func (s *Server) resolverOptions() er.Options {
	o := er.DefaultOptions()
	o.Workers = s.opts.WorkersPerJob
	o.Snapshots = s.snapshots
	return o
}

// resolver returns the collection's mirror entry, creating it on first use.
func (s *Server) resolver(name string) *colResolver {
	s.resolvers.Lock()
	defer s.resolvers.Unlock()
	r, ok := s.resolvers.m[name]
	if !ok {
		r = &colResolver{}
		s.resolvers.m[name] = r
	}
	return r
}

// dropResolver discards a collection's mirror (the collection is gone).
func (s *Server) dropResolver(name string) {
	s.resolvers.Lock()
	delete(s.resolvers.m, name)
	s.resolvers.Unlock()
}

// resolveCollectionDelta is the delta-scoped job body for
// POST /collections/{name}/resolve without option overrides: sync the
// mirror to the store's current version, then resolve incrementally.
func (s *Server) resolveCollectionDelta(ctx context.Context, name string) (*er.Result, error) {
	r := s.resolver(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	cur, muts, rebuild, exists := s.cols.syncPlan(name, r.version, r.col != nil)
	if !exists {
		s.dropResolver(name)
		return nil, fmt.Errorf("%w: collection %q was dropped", er.ErrNoRecords, name)
	}
	switch {
	case rebuild != nil:
		col, err := er.NewCollection(s.resolverOptions())
		if err != nil {
			return nil, err
		}
		// Upsert order does not matter: the incremental resolver's result is
		// mutation-order independent.
		for id, rec := range rebuild {
			col.Upsert(id, er.Record{Text: rec.Text, Source: rec.Source, Entity: rec.Entity})
		}
		r.col = col
		s.c.resolverRebuilds.Add(1)
	default:
		for _, m := range muts {
			if m.delete {
				r.col.Delete(m.id)
			} else {
				r.col.Upsert(m.id, er.Record{Text: m.rec.Text, Source: m.rec.Source, Entity: m.rec.Entity})
			}
		}
	}
	r.version = cur
	s.c.deltaResolves.Add(1)
	//lint:ignore lockhold the per-collection resolver mutex IS the serialization point: er.Collection is not safe for concurrent use, so concurrent delta resolves of the same collection must queue here; other collections and batch jobs never touch this lock
	return r.col.ResolveContext(ctx)
}
