package serve

import (
	crand "crypto/rand"
	"encoding/binary"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
)

// breakerState is the circuit-breaker state machine position of one class.
type breakerState int

const (
	// breakerClosed admits traffic and counts consecutive failures.
	breakerClosed breakerState = iota
	// breakerOpen fast-fails traffic until the cooldown elapses.
	breakerOpen
	// breakerHalfOpen admits exactly one probe; its outcome decides
	// between closing and re-opening with doubled backoff.
	breakerHalfOpen
)

// String names the state for /stats and logs.
func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breakerClass is the per-class tracking record.
type breakerClass struct {
	state     breakerState
	failures  int       // consecutive server-side failures while closed
	trips     int       // times tripped since last close, drives backoff
	openUntil time.Time // when open, the earliest half-open probe time
	probing   bool      // half-open: a probe is in flight
}

// breaker is a consecutive-failure circuit breaker keyed by job class
// (dataset kind + configuration family). Server-side failures — budget
// blowups, panics, internal errors — trip a class after `threshold` in a
// row; a tripped class fast-fails with 503 until its cooldown elapses, then
// admits a single half-open probe. Probe success closes the class; probe
// failure re-opens it with the cooldown doubled (capped at maxCooldown).
// Client-attributable outcomes (bad options, bad data, client gone) are
// neutral: they neither trip nor heal.
type breaker struct {
	mu          sync.Mutex
	clock       clock.Func
	threshold   int // <0 disables the breaker entirely
	cooldown    time.Duration
	maxCooldown time.Duration
	jitter      func(time.Duration) time.Duration
	classes     map[string]*breakerClass
}

// newBreaker builds a breaker. jitter randomizes each open interval when a
// class trips (nil keeps the deterministic schedule — tests pin exact
// transition times); production passes newEqualJitter so a fleet of
// synchronized clients cannot re-trip a class in lockstep.
func newBreaker(threshold int, cooldown, maxCooldown time.Duration, clk clock.Func, jitter func(time.Duration) time.Duration) *breaker {
	if jitter == nil {
		jitter = func(d time.Duration) time.Duration { return d }
	}
	return &breaker{
		clock:       clock.OrSystem(clk),
		threshold:   threshold,
		cooldown:    cooldown,
		maxCooldown: maxCooldown,
		jitter:      jitter,
		classes:     make(map[string]*breakerClass),
	}
}

// newEqualJitter returns an equal-jitter randomizer: d maps uniformly into
// [d/2, d], preserving at least half the intended backoff while decorrelating
// the probe times of replicas that tripped together. The rng is seeded from
// crypto/rand (a process-unique seed is the whole point; a deterministic one
// would re-synchronize the fleet) and is only ever called under the
// breaker's mutex, so the non-thread-safe rand.Rand is safe here.
func newEqualJitter() func(time.Duration) time.Duration {
	var seed [8]byte
	_, _ = crand.Read(seed[:]) // a degenerate all-zero seed still jitters
	rng := rand.New(rand.NewSource(int64(binary.LittleEndian.Uint64(seed[:]))))
	return func(d time.Duration) time.Duration {
		half := d / 2
		if half <= 0 {
			return d
		}
		return half + time.Duration(rng.Int63n(int64(d-half)+1))
	}
}

// class returns (creating if needed) the record for a class key. Callers
// hold b.mu.
func (b *breaker) class(key string) *breakerClass {
	c, ok := b.classes[key]
	if !ok {
		c = &breakerClass{}
		b.classes[key] = c
	}
	return c
}

// allow reports whether a request of the given class may proceed. When the
// class is open it returns false with the remaining cooldown (for a
// Retry-After header); when the cooldown has elapsed it transitions to
// half-open and admits the caller as the probe (probe=true). At most one
// probe is outstanding per class.
func (b *breaker) allow(key string) (ok bool, probe bool, retryAfter time.Duration) {
	if b.threshold < 0 {
		return true, false, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.class(key)
	switch c.state {
	case breakerClosed:
		return true, false, 0
	case breakerOpen:
		now := b.clock()
		if now.Before(c.openUntil) {
			return false, false, c.openUntil.Sub(now)
		}
		c.state = breakerHalfOpen
		c.probing = true
		return true, true, 0
	default: // half-open
		if c.probing {
			return false, false, b.backoff(c.trips)
		}
		c.probing = true
		return true, true, 0
	}
}

// onSuccess records a server-side success: a half-open probe (or any
// success) closes the class and resets its failure and backoff history.
func (b *breaker) onSuccess(key string) {
	if b.threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.class(key)
	c.state = breakerClosed
	c.failures = 0
	c.trips = 0
	c.probing = false
}

// onFailure records a server-side failure. Closed classes trip once the
// consecutive count reaches the threshold; a failed half-open probe
// re-opens immediately with doubled backoff. It returns true when this
// failure tripped (or re-tripped) the class, so the caller can log it.
func (b *breaker) onFailure(key string) bool {
	if b.threshold < 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.class(key)
	switch c.state {
	case breakerHalfOpen:
		b.trip(c)
		return true
	case breakerClosed:
		c.failures++
		if c.failures >= b.threshold {
			b.trip(c)
			return true
		}
	}
	return false
}

// onNeutral records an outcome that says nothing about the backend's
// health: client errors, client disconnects, shed work. A half-open class
// releases its probe slot so the next request can probe again.
func (b *breaker) onNeutral(key string) {
	if b.threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	c := b.class(key)
	if c.state == breakerHalfOpen {
		c.probing = false
	}
}

// trip moves a class to open with jittered exponential backoff. Callers
// hold b.mu.
func (b *breaker) trip(c *breakerClass) {
	c.trips++
	c.state = breakerOpen
	c.probing = false
	c.failures = 0
	c.openUntil = b.clock().Add(b.jitter(b.backoff(c.trips)))
}

// backoff returns cooldown * 2^(trips-1), capped at maxCooldown.
func (b *breaker) backoff(trips int) time.Duration {
	d := b.cooldown
	for i := 1; i < trips; i++ {
		d *= 2
		if d >= b.maxCooldown {
			return b.maxCooldown
		}
	}
	if d > b.maxCooldown {
		return b.maxCooldown
	}
	return d
}

// BreakerClassStats is the /stats view of one breaker class.
type BreakerClassStats struct {
	Class    string `json:"class"`
	State    string `json:"state"`
	Failures int    `json:"consecutive_failures"`
	Trips    int    `json:"trips"`
}

// snapshot lists every class sorted by key, for stable /stats output.
func (b *breaker) snapshot() []BreakerClassStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]BreakerClassStats, 0, len(b.classes))
	for key, c := range b.classes {
		out = append(out, BreakerClassStats{
			Class:    key,
			State:    c.state.String(),
			Failures: c.failures,
			Trips:    c.trips,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}
