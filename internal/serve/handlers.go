package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	er "repro"
)

// Handler returns the daemon's HTTP surface:
//
//	POST /resolve    — submit a job (text/csv upload or application/json
//	                   replica request) and wait for its terminal state
//	GET  /jobs/{id}  — inspect a retained job
//	GET  /healthz    — liveness: 200 while the process serves at all
//	GET  /readyz     — readiness: 503 while draining or recovering
//	GET  /stats      — counters, gauges, latency quantiles, breaker classes
//
// plus the durable collections API (journaled through the WAL when a
// DataDir is configured):
//
//	POST   /collections                        — create a collection
//	GET    /collections                        — list collections
//	GET    /collections/{name}                 — list a collection's records
//	DELETE /collections/{name}                 — drop a collection
//	PUT    /collections/{name}/records/{id}    — upsert a record
//	DELETE /collections/{name}/records/{id}    — delete a record
//	POST   /collections/{name}/resolve         — resolve the full corpus
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /resolve", s.handleResolve)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /collections", s.handleCollectionCreate)
	mux.HandleFunc("GET /collections", s.handleCollectionList)
	mux.HandleFunc("GET /collections/{name}", s.handleCollectionGet)
	mux.HandleFunc("DELETE /collections/{name}", s.handleCollectionDrop)
	mux.HandleFunc("PUT /collections/{name}/records/{id}", s.handleRecordPut)
	mux.HandleFunc("DELETE /collections/{name}/records/{id}", s.handleRecordDelete)
	mux.HandleFunc("POST /collections/{name}/resolve", s.handleCollectionResolve)
	return mux
}

// resolveRequest is the application/json form of POST /resolve: a named
// synthetic replica plus optional pipeline overrides.
type resolveRequest struct {
	// Replica selects the dataset: "restaurant", "product" or "paper".
	Replica string `json:"replica"`
	// Seed and Scale parameterize the replica generator (zero = defaults).
	Seed  int64   `json:"seed"`
	Scale float64 `json:"scale"`
	// Options overrides pipeline parameters; absent fields keep defaults.
	Options *jobOptions `json:"options"`
}

// jobOptions is the wire form of the pipeline overrides accepted by both
// request styles. Pointer fields distinguish "absent" from "zero", so a
// client can explicitly request Eta 0 without clobbering every default.
type jobOptions struct {
	Eta               *float64 `json:"eta"`
	FusionIterations  *int     `json:"iterations"`
	UseRSS            *bool    `json:"rss"`
	MinJaccard        *float64 `json:"min_jaccard"`
	MinSharedTerms    *int     `json:"min_shared_terms"`
	MaxDFRatio        *float64 `json:"max_df_ratio"`
	MaxCandidatePairs *int     `json:"max_pairs"`
	MaxWallClockMs    *int64   `json:"max_wall_clock_ms"`
	Seed              *int64   `json:"seed"`
	// Workers requests a kernel-goroutine budget for the job; the server
	// clamps it to Options.WorkersPerJob before running. Results are
	// bit-identical for every value, so this only trades latency for CPU.
	Workers *int `json:"workers"`
}

// apply overlays the wire overrides on a base Options.
func (jo *jobOptions) apply(o er.Options) er.Options {
	if jo == nil {
		return o
	}
	if jo.Eta != nil {
		o.Eta = *jo.Eta
	}
	if jo.FusionIterations != nil {
		o.FusionIterations = *jo.FusionIterations
	}
	if jo.UseRSS != nil {
		o.UseRSS = *jo.UseRSS
	}
	if jo.MinJaccard != nil {
		o.MinJaccard = *jo.MinJaccard
	}
	if jo.MinSharedTerms != nil {
		o.MinSharedTerms = *jo.MinSharedTerms
	}
	if jo.MaxDFRatio != nil {
		o.MaxDFRatio = *jo.MaxDFRatio
	}
	if jo.MaxCandidatePairs != nil {
		o.MaxCandidatePairs = *jo.MaxCandidatePairs
	}
	if jo.MaxWallClockMs != nil {
		o.MaxWallClock = time.Duration(*jo.MaxWallClockMs) * time.Millisecond
	}
	if jo.Seed != nil {
		o.Seed = *jo.Seed
	}
	if jo.Workers != nil {
		o.Workers = *jo.Workers
	}
	return o
}

// matchJSON is the wire form of one resolved pair.
type matchJSON struct {
	I           int     `json:"i"`
	J           int     `json:"j"`
	Probability float64 `json:"p"`
}

// metricsJSON is the wire form of a ground-truth evaluation.
type metricsJSON struct {
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	TP        int     `json:"tp"`
	FP        int     `json:"fp"`
	FN        int     `json:"fn"`
}

// stageJSON is the wire form of one StageTrace entry. The *_fused/_reused
// fields appear only on the "deltafuse" stage of delta-scoped collection
// resolves: the work split between components actually re-fused and
// components served from the component cache.
type stageJSON struct {
	Stage            string  `json:"stage"`
	Cached           bool    `json:"cached,omitempty"`
	WallMs           float64 `json:"wall_ms"`
	In               int     `json:"in,omitempty"`
	Out              int     `json:"out,omitempty"`
	Rounds           int     `json:"rounds,omitempty"`
	Iterations       int     `json:"iterations,omitempty"`
	ComponentsFused  int     `json:"components_fused,omitempty"`
	ComponentsReused int     `json:"components_reused,omitempty"`
	PairsFused       int     `json:"pairs_fused,omitempty"`
	PairsReused      int     `json:"pairs_reused,omitempty"`
}

// deltaJSON is the wire form of er.DeltaStats on a delta-scoped resolve.
type deltaJSON struct {
	Components       int `json:"components"`
	ComponentsFused  int `json:"components_fused"`
	ComponentsReused int `json:"components_reused"`
	PairsFused       int `json:"pairs_fused"`
	PairsReused      int `json:"pairs_reused"`
}

// jobResponse is the wire form of a job's terminal (or inspected) state.
type jobResponse struct {
	JobID       string       `json:"job_id"`
	State       JobState     `json:"state"`
	Class       string       `json:"class"`
	Dataset     string       `json:"dataset,omitempty"`
	Records     int          `json:"records,omitempty"`
	QueueWaitMs float64      `json:"queue_wait_ms"`
	RunMs       float64      `json:"run_ms"`
	Matches     int          `json:"matches,omitempty"`
	Clusters    int          `json:"clusters,omitempty"`
	Converged   bool         `json:"converged,omitempty"`
	Repairs     int          `json:"numeric_repairs,omitempty"`
	Degraded    bool         `json:"degraded,omitempty"`
	Evaluation  *metricsJSON `json:"evaluation,omitempty"`
	Delta       *deltaJSON   `json:"delta,omitempty"`
	Stages      []stageJSON  `json:"stages,omitempty"`
	Pairs       []matchJSON  `json:"pairs,omitempty"`
	Error       string       `json:"error,omitempty"`
	Kind        string       `json:"kind,omitempty"`
}

// errorResponse is the wire form of any non-job failure (admission
// rejections, parse errors).
type errorResponse struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeError(w http.ResponseWriter, status int, kind, msg string) {
	writeJSON(w, status, errorResponse{Error: msg, Kind: kind})
}

// unavailableRetryAfter is the Retry-After hint attached to transient
// fast-fail rejections (full admission queue, draining, recovering): short,
// because the condition clears on the order of a queue drain or a replay —
// the breaker path computes its own, longer hint from the actual cooldown.
const unavailableRetryAfter = time.Second

// writeHTTPError writes an admission-path rejection, including its
// Retry-After hint when the failure is transient. Ceil to whole seconds:
// the header has one-second resolution and rounding down would invite a
// retry that lands inside the window it was told to wait out.
func writeHTTPError(w http.ResponseWriter, herr *httpError) {
	if herr.retryAfter > 0 {
		secs := int64((herr.retryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeError(w, herr.status, herr.kind, herr.message)
}

// ErrKind names the taxonomy class of a terminal job error for machine
// consumption, mirroring the er.HTTPStatus mapping. Exported so the HTTP
// client can assert the status↔kind↔sentinel round trip against the same
// table the server serializes from.
func ErrKind(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, er.ErrInvalidOptions):
		return "invalid_options"
	case errors.Is(err, er.ErrNoRecords):
		return "no_records"
	case errors.Is(err, er.ErrBadData):
		return "bad_data"
	case errors.Is(err, er.ErrNoCandidates):
		return "no_candidates"
	case errors.Is(err, ErrDraining):
		return "draining"
	case errors.Is(err, er.ErrBudgetExceeded), errors.Is(err, context.DeadlineExceeded):
		return "budget_exceeded"
	case errors.Is(err, context.Canceled):
		return "canceled"
	default:
		return "internal"
	}
}

// handleResolve is the job submission endpoint. It parses the dataset
// (upload or replica), runs admission control (breaker → draining →
// queue), then blocks until the job reaches its terminal state and maps
// the outcome onto the documented HTTP status.
func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	d, class, opts, perr := s.parseResolve(r)
	if perr != nil {
		writeError(w, perr.status, perr.kind, perr.message)
		return
	}
	s.runResolve(w, r, d, class, opts, nil)
}

// runResolve pushes a parsed dataset through admission (breaker →
// draining → queue), waits for the job's terminal state and writes the
// response. Shared by /resolve and /collections/{name}/resolve; a non-nil
// run replaces the configured Runner for this job (the delta-scoped
// collection path), with d supplying only the response metadata.
func (s *Server) runResolve(w http.ResponseWriter, r *http.Request, d *er.Dataset, class string, opts er.Options, run func(ctx context.Context) (*er.Result, error)) {
	ok, probe, retryAfter := s.breaker.allow(class)
	if !ok {
		s.c.tripped.Add(1)
		writeHTTPError(w, &httpError{status: http.StatusServiceUnavailable, kind: "breaker_open",
			message:    fmt.Sprintf("serve: circuit open for class %q, retry in %s", class, retryAfter.Round(time.Millisecond)),
			retryAfter: retryAfter})
		return
	}

	j, release, herr := s.submit(r.Context(), class, d, opts, probe, run)
	if herr != nil {
		if probe {
			// The probe never ran; free the half-open slot.
			s.breaker.onNeutral(class)
		}
		writeHTTPError(w, herr)
		return
	}
	defer release()
	<-j.done

	state, res, err, queueWait, runTime := j.view()
	resp := jobResponse{
		JobID:       j.id,
		State:       state,
		Class:       class,
		Dataset:     d.Name(),
		Records:     d.NumRecords(),
		QueueWaitMs: float64(queueWait) / float64(time.Millisecond),
		RunMs:       float64(runTime) / float64(time.Millisecond),
	}
	if err != nil {
		resp.Error = err.Error()
		resp.Kind = ErrKind(err)
		writeJSON(w, statusFor(err), resp)
		return
	}
	fillResult(&resp, res, r.URL.Query().Get("pairs") == "1")
	writeJSON(w, http.StatusOK, resp)
}

// fillResult copies the resolution outcome into the wire response. Pair
// listings are opt-in (?pairs=1): the counts are what most clients need
// and the Product replica resolves a thousand pairs.
func fillResult(resp *jobResponse, res *er.Result, includePairs bool) {
	if res == nil {
		return
	}
	resp.Matches = len(res.Matches)
	resp.Clusters = len(res.Clusters)
	resp.Converged = res.Converged
	resp.Repairs = res.NumericRepairs
	resp.Degraded = res.Degradation != nil
	if res.Evaluation != nil {
		resp.Evaluation = &metricsJSON{
			Precision: res.Evaluation.Precision,
			Recall:    res.Evaluation.Recall,
			F1:        res.Evaluation.F1,
			TP:        res.Evaluation.TP,
			FP:        res.Evaluation.FP,
			FN:        res.Evaluation.FN,
		}
	}
	if res.Delta != nil {
		resp.Delta = &deltaJSON{
			Components:       res.Delta.Components,
			ComponentsFused:  res.Delta.ComponentsFused,
			ComponentsReused: res.Delta.ComponentsReused,
			PairsFused:       res.Delta.PairsFused,
			PairsReused:      res.Delta.PairsReused,
		}
	}
	for _, st := range res.Trace {
		resp.Stages = append(resp.Stages, stageJSON{
			Stage:            st.Stage,
			Cached:           st.Cached,
			WallMs:           float64(st.Wall) / float64(time.Millisecond),
			In:               st.In,
			Out:              st.Out,
			Rounds:           st.Rounds,
			Iterations:       st.Iterations,
			ComponentsFused:  st.ComponentsFused,
			ComponentsReused: st.ComponentsReused,
			PairsFused:       st.PairsFused,
			PairsReused:      st.PairsReused,
		})
	}
	if includePairs {
		resp.Pairs = make([]matchJSON, len(res.Matches))
		for i, m := range res.Matches {
			resp.Pairs[i] = matchJSON{I: m.I, J: m.J, Probability: m.Probability}
		}
	}
}

// parseResolve extracts the dataset, job class and pipeline options from a
// POST /resolve request. CSV uploads are streamed through LoadCSVContext
// under the request context, so a client that disconnects mid-upload
// aborts the parse at the next row checkpoint.
func (s *Server) parseResolve(r *http.Request) (*er.Dataset, string, er.Options, *httpError) {
	var (
		d     *er.Dataset
		class string
		jo    *jobOptions
	)
	ct := r.Header.Get("Content-Type")
	switch {
	case strings.HasPrefix(ct, "text/csv"):
		body := http.MaxBytesReader(nil, r.Body, s.opts.MaxUploadBytes)
		ds, err := er.LoadCSVContext(r.Context(), body, "upload")
		if err != nil {
			var mbe *http.MaxBytesError
			if errors.As(err, &mbe) {
				return nil, "", er.Options{}, &httpError{
					status:  http.StatusRequestEntityTooLarge,
					kind:    "upload_too_large",
					message: fmt.Sprintf("serve: upload exceeds %d bytes", s.opts.MaxUploadBytes),
				}
			}
			return nil, "", er.Options{}, &httpError{
				status:  er.HTTPStatus(err),
				kind:    ErrKind(err),
				message: err.Error(),
			}
		}
		d, class = ds, "upload"
		if q := r.URL.Query().Get("options"); q != "" {
			jo = &jobOptions{}
			if err := json.Unmarshal([]byte(q), jo); err != nil {
				return nil, "", er.Options{}, &httpError{
					status:  http.StatusBadRequest,
					kind:    "invalid_options",
					message: fmt.Sprintf("serve: bad options query parameter: %v", err),
				}
			}
		}
	case strings.HasPrefix(ct, "application/json"):
		var req resolveRequest
		dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.opts.MaxUploadBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			return nil, "", er.Options{}, &httpError{
				status:  http.StatusBadRequest,
				kind:    "bad_request",
				message: fmt.Sprintf("serve: bad request body: %v", err),
			}
		}
		cfg := er.ReplicaConfig{Seed: req.Seed, Scale: req.Scale}
		switch req.Replica {
		case "restaurant":
			d = er.RestaurantReplica(cfg)
		case "product":
			d = er.ProductReplica(cfg)
		case "paper":
			d = er.PaperReplica(cfg)
		default:
			return nil, "", er.Options{}, &httpError{
				status:  http.StatusBadRequest,
				kind:    "invalid_options",
				message: fmt.Sprintf("serve: unknown replica %q (want restaurant, product or paper)", req.Replica),
			}
		}
		class, jo = "replica:"+req.Replica, req.Options
	default:
		return nil, "", er.Options{}, &httpError{
			status:  http.StatusUnsupportedMediaType,
			kind:    "unsupported_media_type",
			message: fmt.Sprintf("serve: unsupported Content-Type %q (want text/csv or application/json)", ct),
		}
	}

	opts := jo.apply(er.DefaultOptions())
	if opts.UseRSS {
		// RSS runs a different estimator with different failure modes;
		// separate breaker class so a sick estimator can't poison the other.
		class += "+rss"
	}
	if err := opts.Validate(); err != nil {
		return nil, "", er.Options{}, &httpError{
			status:  http.StatusBadRequest,
			kind:    "invalid_options",
			message: err.Error(),
		}
	}
	return d, class, opts, nil
}

// handleJob reports a retained job's current state (no pair listings).
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "serve: unknown job id")
		return
	}
	state, res, err, queueWait, runTime := j.view()
	resp := jobResponse{
		JobID:       j.id,
		State:       state,
		Class:       j.class,
		QueueWaitMs: float64(queueWait) / float64(time.Millisecond),
		RunMs:       float64(runTime) / float64(time.Millisecond),
	}
	if err != nil {
		resp.Error = err.Error()
		resp.Kind = ErrKind(err)
	}
	fillResult(&resp, res, false)
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz is liveness: 200 whenever the process can answer at all,
// including while draining — the orchestrator's kill decision keys off
// readiness, not liveness.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 503 while draining, while the durable state
// is still being recovered (with replay progress, so an operator can
// watch a long recovery converge), permanently once recovery failed, or
// once the journal wedges — a wedged log fails every durable write, so
// the replica must leave rotation even though reads still work.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeHTTPError(w, &httpError{status: http.StatusServiceUnavailable, kind: "draining",
			message: ErrDraining.Error(), retryAfter: unavailableRetryAfter})
		return
	}
	switch s.recoveryPhase() {
	case recoveryRunning:
		w.Header().Set("Retry-After", strconv.FormatInt(int64(unavailableRetryAfter/time.Second), 10))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":            "recovering",
			"kind":              "recovering",
			"replayed_records":  s.recovery.replayed.Load(),
			"snapshot_restored": s.recovery.snapshotRestored.Load(),
		})
		return
	case recoveryFailed:
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "recovery_failed",
			"kind":   "recovery_failed",
			"error":  s.recoveryError().Error(),
		})
		return
	case recoveryReady:
		if s.walLog.Stats().Wedged {
			writeError(w, http.StatusServiceUnavailable, "storage_wedged",
				"serve: collections journal is wedged; durable writes are failing")
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleStats reports the full observability snapshot.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
