package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	er "repro"
	"repro/internal/faultcheck"
	"repro/internal/guard"
)

// quickResult is the minimal successful outcome a stub runner returns.
func quickResult() *er.Result {
	return &er.Result{
		Matches:   []er.Match{{I: 0, J: 1, Probability: 1}},
		Clusters:  [][]int{{0, 1}},
		Converged: true,
	}
}

// newTestServer boots a Server plus an httptest front end and tears both
// down in the right order: drain the job server first so blocked handlers
// unblock, then close the HTTP server.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("cleanup shutdown: %v", err)
		}
		hs.Close()
	})
	return s, hs
}

// postJSON submits a replica job and decodes the response body.
func postJSON(t *testing.T, url string, body string) (int, jobResponse) {
	t.Helper()
	resp, err := http.Post(url+"/resolve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /resolve: %v", err)
	}
	defer resp.Body.Close()
	var jr jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return resp.StatusCode, jr
}

func getStats(t *testing.T, url string) Stats {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	return st
}

// TestResolveReplicaEndToEnd runs a real resolution (no stub runner)
// through the full HTTP surface: submit, inspect via /jobs/{id}, and read
// /stats.
func TestResolveReplicaEndToEnd(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	status, jr := postJSON(t, hs.URL, `{"replica":"restaurant","scale":0.2,"seed":7}`)
	if status != http.StatusOK {
		t.Fatalf("status = %d, want 200 (error: %s)", status, jr.Error)
	}
	if jr.State != JobCompleted {
		t.Fatalf("state = %s, want completed", jr.State)
	}
	if jr.Records == 0 || jr.Clusters == 0 {
		t.Fatalf("expected populated result, got records=%d clusters=%d", jr.Records, jr.Clusters)
	}
	if jr.Evaluation == nil {
		t.Fatal("replica datasets carry ground truth; expected an evaluation")
	}

	resp, err := http.Get(hs.URL + "/jobs/" + jr.JobID)
	if err != nil {
		t.Fatalf("GET /jobs/{id}: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job lookup status = %d, want 200", resp.StatusCode)
	}

	st := getStats(t, hs.URL)
	if st.Completed != 1 || st.Admitted != 1 {
		t.Fatalf("stats = completed %d admitted %d, want 1/1", st.Completed, st.Admitted)
	}
	if st.RunLatency.Samples == 0 {
		t.Fatal("expected run-latency samples after a completed job")
	}
}

// TestResolveCSVUpload round-trips a replica through WriteCSV and the
// upload endpoint.
func TestResolveCSVUpload(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	var buf bytes.Buffer
	if err := er.RestaurantReplica(er.ReplicaConfig{Scale: 0.2, Seed: 7}).WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	resp, err := http.Post(hs.URL+"/resolve", "text/csv", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("POST csv: %v", err)
	}
	defer resp.Body.Close()
	var jr jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.StatusCode != http.StatusOK || jr.State != JobCompleted {
		t.Fatalf("upload resolve = %d/%s (error %q), want 200/completed", resp.StatusCode, jr.State, jr.Error)
	}
	if jr.Class != "upload" {
		t.Fatalf("class = %q, want upload", jr.Class)
	}
}

// TestUploadChaosMapsToTaxonomy feeds the upload endpoint a body that
// fails mid-stream via the chaos reader and expects a structured 400
// carrying the bad-data taxonomy kind — not a hang, not a 500.
func TestUploadChaosMapsToTaxonomy(t *testing.T) {
	s, _ := newTestServer(t, Options{})
	var buf bytes.Buffer
	if err := er.RestaurantReplica(er.ReplicaConfig{Scale: 0.2, Seed: 7}).WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	chaos := faultcheck.New(bytes.NewReader(buf.Bytes()), 42)
	chaos.FailAfter = int64(buf.Len() / 2)

	req := httptest.NewRequest(http.MethodPost, "/resolve", io.NopCloser(chaos))
	req.Header.Set("Content-Type", "text/csv")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)

	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400; body: %s", rec.Code, rec.Body.String())
	}
	var er2 errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er2); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if er2.Kind != "bad_data" {
		t.Fatalf("kind = %q, want bad_data; error: %s", er2.Kind, er2.Error)
	}
	if !strings.Contains(er2.Error, "injected read error") {
		t.Fatalf("error should surface the injected fault, got %q", er2.Error)
	}
}

// TestResolveRejectsBadRequests covers the admission-side 4xx surface.
func TestResolveRejectsBadRequests(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	cases := []struct {
		name        string
		contentType string
		body        string
		wantStatus  int
		wantKind    string
	}{
		{"unknown replica", "application/json", `{"replica":"imaginary"}`, http.StatusBadRequest, "invalid_options"},
		{"unknown field", "application/json", `{"replica":"paper","bogus":1}`, http.StatusBadRequest, "bad_request"},
		{"malformed json", "application/json", `{"replica":`, http.StatusBadRequest, "bad_request"},
		{"invalid eta", "application/json", `{"replica":"paper","options":{"eta":1.5}}`, http.StatusBadRequest, "invalid_options"},
		{"wrong media type", "text/plain", "hello", http.StatusUnsupportedMediaType, "unsupported_media_type"},
		{"empty csv", "text/csv", "", http.StatusBadRequest, "bad_data"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(hs.URL+"/resolve", tc.contentType, strings.NewReader(tc.body))
			if err != nil {
				t.Fatalf("POST: %v", err)
			}
			defer resp.Body.Close()
			var body errorResponse
			if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
				t.Fatalf("decode: %v", err)
			}
			if resp.StatusCode != tc.wantStatus || body.Kind != tc.wantKind {
				t.Fatalf("got %d/%q, want %d/%q (error %q)", resp.StatusCode, body.Kind, tc.wantStatus, tc.wantKind, body.Error)
			}
		})
	}
}

// chaosRunner drives failure modes keyed off the request's Seed option, so
// one server can serve healthy, panicking and stalling jobs in one test:
// seed 666 panics, seed 667 stalls until the job deadline, anything else
// succeeds quickly.
func chaosRunner(ctx context.Context, _ *er.Dataset, o er.Options) (*er.Result, error) {
	switch o.Seed {
	case 666:
		panic("chaos: injected panic")
	case 667:
		<-ctx.Done()
		return nil, fmt.Errorf("chaos: stalled out: %w", context.Cause(ctx))
	default:
		if err := guard.Sleep(ctx, time.Millisecond); err != nil {
			return nil, fmt.Errorf("chaos: %w", context.Cause(ctx))
		}
		return quickResult(), nil
	}
}

// TestPanicIsolation proves a panicking job becomes a structured 500 while
// the daemon keeps serving: /healthz stays 200 and the next job succeeds.
func TestPanicIsolation(t *testing.T) {
	s, hs := newTestServer(t, Options{Runner: chaosRunner, BreakerThreshold: -1})

	status, jr := postJSON(t, hs.URL, `{"replica":"restaurant","scale":0.05,"options":{"seed":666}}`)
	if status != http.StatusInternalServerError || jr.Kind != "internal" {
		t.Fatalf("panicking job = %d/%q, want 500/internal (error %q)", status, jr.Kind, jr.Error)
	}
	if !strings.Contains(jr.Error, "injected panic") {
		t.Fatalf("panic payload lost: %q", jr.Error)
	}
	if s.c.panics.Load() != 1 {
		t.Fatalf("panics counter = %d, want 1", s.c.panics.Load())
	}

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after panic: %v / %v", err, resp)
	}
	resp.Body.Close()

	status, jr = postJSON(t, hs.URL, `{"replica":"restaurant","scale":0.05}`)
	if status != http.StatusOK || jr.State != JobCompleted {
		t.Fatalf("job after panic = %d/%s, want 200/completed", status, jr.State)
	}
}

// TestJobDeadlineMapsTo504 proves a job that blows its per-job deadline
// surfaces as a 504 carrying the budget taxonomy.
func TestJobDeadlineMapsTo504(t *testing.T) {
	_, hs := newTestServer(t, Options{Runner: chaosRunner, JobTimeout: 50 * time.Millisecond, BreakerThreshold: -1})
	status, jr := postJSON(t, hs.URL, `{"replica":"restaurant","scale":0.05,"options":{"seed":667}}`)
	if status != http.StatusGatewayTimeout || jr.Kind != "budget_exceeded" {
		t.Fatalf("deadline job = %d/%q, want 504/budget_exceeded (error %q)", status, jr.Kind, jr.Error)
	}
	if jr.State != JobFailed {
		t.Fatalf("state = %s, want failed", jr.State)
	}
}

// TestQueuedJobIsShedAfterDeadline proves load shedding: a job whose
// deadline expires while it waits in the queue is answered without
// running.
func TestQueuedJobIsShedAfterDeadline(t *testing.T) {
	gate := make(chan struct{})
	runner := func(ctx context.Context, _ *er.Dataset, o er.Options) (*er.Result, error) {
		if o.Seed == 1000 { // the blocker holding the single worker
			<-gate
		}
		return quickResult(), nil
	}
	s, hs := newTestServer(t, Options{
		Runner:           runner,
		MaxConcurrency:   1,
		QueueDepth:       2,
		JobTimeout:       60 * time.Millisecond,
		BreakerThreshold: -1,
	})

	blockerDone := make(chan int, 1)
	go func() {
		status, _ := postJSON(t, hs.URL, `{"replica":"restaurant","scale":0.05,"options":{"seed":1000}}`)
		blockerDone <- status
	}()
	waitFor(t, func() bool { return s.c.running.Load() == 1 })

	victimDone := make(chan jobResponse, 1)
	victimStatus := make(chan int, 1)
	go func() {
		status, jr := postJSON(t, hs.URL, `{"replica":"restaurant","scale":0.05}`)
		victimStatus <- status
		victimDone <- jr
	}()
	waitFor(t, func() bool { return len(s.queue) == 1 })

	// Hold the worker until the victim's deadline has long expired, then
	// release; the worker must shed the victim instead of running it.
	time.Sleep(120 * time.Millisecond)
	close(gate)

	if status := <-victimStatus; status != http.StatusGatewayTimeout {
		t.Fatalf("victim status = %d, want 504", status)
	}
	if jr := <-victimDone; jr.State != JobShed {
		t.Fatalf("victim state = %s, want shed", jr.State)
	}
	if status := <-blockerDone; status != http.StatusOK {
		t.Fatalf("blocker status = %d, want 200", status)
	}
	if s.c.shed.Load() != 1 {
		t.Fatalf("shed counter = %d, want 1", s.c.shed.Load())
	}
}

// TestDrainingRejectsNewWork proves the admission/readiness flip on
// shutdown: healthz stays 200, readyz and new submissions go 503.
func TestDrainingRejectsNewWork(t *testing.T) {
	s, err := New(Options{Runner: chaosRunner})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	status, jr := postJSON(t, hs.URL, `{"replica":"restaurant","scale":0.05}`)
	if status != http.StatusServiceUnavailable || jr.Kind != "draining" {
		t.Fatalf("post-drain submit = %d/%q, want 503/draining", status, jr.Kind)
	}
	for path, want := range map[string]int{"/healthz": http.StatusOK, "/readyz": http.StatusServiceUnavailable} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s = %d, want %d", path, resp.StatusCode, want)
		}
	}
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("second shutdown not idempotent: %v", err)
	}
}

// TestBreakerTripsOverHTTP drives the breaker through the HTTP surface: a
// run of failing jobs trips the class, subsequent submissions fast-fail
// 503 with Retry-After, and other classes keep working.
func TestBreakerTripsOverHTTP(t *testing.T) {
	failing := func(ctx context.Context, _ *er.Dataset, o er.Options) (*er.Result, error) {
		if o.Seed == 666 {
			return nil, fmt.Errorf("%w: simulated backend failure", er.ErrInternal)
		}
		return quickResult(), nil
	}
	s, hs := newTestServer(t, Options{
		Runner:           failing,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour, // never half-opens during the test
	})

	for i := 0; i < 3; i++ {
		status, _ := postJSON(t, hs.URL, `{"replica":"paper","options":{"seed":666}}`)
		if status != http.StatusInternalServerError {
			t.Fatalf("failing job %d = %d, want 500", i, status)
		}
	}
	resp, err := http.Post(hs.URL+"/resolve", "application/json", strings.NewReader(`{"replica":"paper","options":{"seed":666}}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("tripped class = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("expected Retry-After on a breaker rejection")
	}
	var body errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if body.Kind != "breaker_open" {
		t.Fatalf("kind = %q, want breaker_open", body.Kind)
	}
	if s.c.tripped.Load() != 1 {
		t.Fatalf("tripped counter = %d, want 1", s.c.tripped.Load())
	}

	// Another class is unaffected.
	status, jr := postJSON(t, hs.URL, `{"replica":"restaurant"}`)
	if status != http.StatusOK {
		t.Fatalf("healthy class through tripped server = %d (%s), want 200", status, jr.Error)
	}
}

// waitFor polls a condition with a hard deadline; test-only helper for
// crossing goroutine visibility without sleeping fixed amounts.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSnapshotReuseAcrossJobs submits the same replica twice and asserts
// the second job is served from the snapshot cache: its tokenize and
// block stages are cached, it executes measurably fewer stages, and
// /stats reports the hit.
func TestSnapshotReuseAcrossJobs(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	body := `{"replica":"restaurant","scale":0.2,"seed":7}`

	executed := func(jr jobResponse) int {
		n := 0
		for _, st := range jr.Stages {
			if !st.Cached {
				n++
			}
		}
		return n
	}

	status, first := postJSON(t, hs.URL, body)
	if status != http.StatusOK || first.State != JobCompleted {
		t.Fatalf("first job = %d/%s (error %q)", status, first.State, first.Error)
	}
	if len(first.Stages) == 0 {
		t.Fatal("first job reported no stage trace")
	}
	for _, st := range first.Stages {
		if st.Cached {
			t.Fatalf("first job stage %s cached on a cold cache", st.Stage)
		}
	}

	status, second := postJSON(t, hs.URL, body)
	if status != http.StatusOK || second.State != JobCompleted {
		t.Fatalf("second job = %d/%s (error %q)", status, second.State, second.Error)
	}
	var cached []string
	for _, st := range second.Stages {
		if st.Cached {
			cached = append(cached, st.Stage)
		}
	}
	if len(cached) < 2 {
		t.Fatalf("second job cached stages = %v, want tokenize and block served from the snapshot cache", cached)
	}
	if got, want := executed(second), executed(first); got >= want {
		t.Fatalf("second job executed %d stages, first executed %d; want fewer on a cache hit", got, want)
	}
	if second.Matches != first.Matches || second.Clusters != first.Clusters {
		t.Fatalf("cached run changed the result: matches %d->%d clusters %d->%d",
			first.Matches, second.Matches, first.Clusters, second.Clusters)
	}

	st := getStats(t, hs.URL)
	if !st.SnapshotCache.Enabled || st.SnapshotCache.Hits < 1 {
		t.Fatalf("snapshot cache stats = %+v, want enabled with at least one hit", st.SnapshotCache)
	}
	tok := StageStats{}
	for _, sg := range st.Stages {
		if sg.Stage == "tokenize" {
			tok = sg
		}
	}
	if tok.Executions != 2 || tok.Cached != 1 {
		t.Fatalf("tokenize stage stats = %+v, want 2 executions with 1 cached", tok)
	}
}
