package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
)

// resolveCollectionDelta posts an override-free resolve, which routes
// through the delta-scoped path.
func resolveCollectionDeltaJSON(t *testing.T, base, name string) (int, jobResponse) {
	t.Helper()
	resp, err := http.Post(base+"/collections/"+name+"/resolve", "application/json", nil)
	if err != nil {
		t.Fatalf("POST resolve: %v", err)
	}
	defer resp.Body.Close()
	var jr jobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatalf("decode resolve response: %v", err)
	}
	return resp.StatusCode, jr
}

// TestCollectionDeltaResolve drives the delta-scoped resolve path: the
// first resolve rebuilds the mirror and fuses everything, a resolve after
// one record mutation re-fuses only the touched components, and the
// response and /stats expose the work split.
func TestCollectionDeltaResolve(t *testing.T) {
	_, hs := newTestServer(t, Options{BreakerThreshold: -1})
	n := seedCollection(t, hs.URL, "shops")

	status, jr := resolveCollectionDeltaJSON(t, hs.URL, "shops")
	if status != http.StatusOK || jr.State != JobCompleted {
		t.Fatalf("resolve = %d/%s (%s), want 200/completed", status, jr.State, jr.Error)
	}
	if jr.Records != n {
		t.Fatalf("resolved %d records, want %d", jr.Records, n)
	}
	if jr.Delta == nil {
		t.Fatal("delta-scoped resolve did not report delta stats")
	}
	if jr.Delta.Components == 0 || jr.Delta.ComponentsFused == 0 {
		t.Fatalf("cold resolve should fuse components: %+v", *jr.Delta)
	}
	var deltafuse *stageJSON
	for i := range jr.Stages {
		if jr.Stages[i].Stage == "deltafuse" {
			deltafuse = &jr.Stages[i]
		}
	}
	if deltafuse == nil {
		t.Fatalf("no deltafuse stage in trace: %+v", jr.Stages)
	}
	if deltafuse.ComponentsFused != jr.Delta.ComponentsFused {
		t.Fatalf("stage/delta split mismatch: %+v vs %+v", *deltafuse, *jr.Delta)
	}

	// An unmutated second resolve reuses every component.
	status, jr2 := resolveCollectionDeltaJSON(t, hs.URL, "shops")
	if status != http.StatusOK || jr2.Delta == nil {
		t.Fatalf("second resolve = %d, delta %v", status, jr2.Delta)
	}
	if jr2.Delta.ComponentsFused != 0 || jr2.Delta.ComponentsReused != jr2.Delta.Components {
		t.Fatalf("no-op resolve should reuse everything: %+v", *jr2.Delta)
	}
	if len(jr2.Pairs) != len(jr.Pairs) || jr2.Matches != jr.Matches {
		t.Fatalf("no-op resolve changed results: %d/%d matches", jr2.Matches, jr.Matches)
	}

	// Mutate one record; only its component re-fuses.
	url := fmt.Sprintf("%s/collections/shops/records/r05", hs.URL)
	if status, body := doJSON(t, http.MethodPut, url,
		`{"entity":"e4","source":1,"text":"mission chinese food 2234 mission street sf"}`); status != http.StatusOK {
		t.Fatalf("upsert = %d (%v), want 200", status, body)
	}
	status, jr3 := resolveCollectionDeltaJSON(t, hs.URL, "shops")
	if status != http.StatusOK || jr3.Delta == nil {
		t.Fatalf("post-mutation resolve = %d, delta %v", status, jr3.Delta)
	}
	if jr3.Delta.ComponentsReused == 0 {
		t.Fatalf("post-mutation resolve should reuse untouched components: %+v", *jr3.Delta)
	}

	st := getStats(t, hs.URL)
	if st.Collections.DeltaResolves != 3 {
		t.Fatalf("stats delta_resolves = %d, want 3", st.Collections.DeltaResolves)
	}
	if st.Collections.ResolverRebuilds != 1 {
		t.Fatalf("stats resolver_rebuilds = %d, want 1 (first resolve only)", st.Collections.ResolverRebuilds)
	}
	if st.SnapshotCache.ComponentMisses == 0 || st.SnapshotCache.ComponentEntries == 0 {
		t.Fatalf("component cache stats not populated: %+v", st.SnapshotCache)
	}

	// A resolve with overrides still takes the batch path — no delta stats.
	status, jr4 := resolveCollection(t, hs.URL, "shops")
	if status != http.StatusOK || jr4.State != JobCompleted {
		t.Fatalf("override resolve = %d/%s (%s)", status, jr4.State, jr4.Error)
	}
	if jr4.Delta != nil {
		t.Fatalf("override resolve must use the batch path, got delta %+v", *jr4.Delta)
	}
}

// TestCollectionDeltaResolveDropRecreate pins mirror invalidation: dropping
// and recreating a collection under the same name must not leak the old
// incarnation's state into resolves of the new one.
func TestCollectionDeltaResolveDropRecreate(t *testing.T) {
	_, hs := newTestServer(t, Options{BreakerThreshold: -1})
	seedCollection(t, hs.URL, "shops")
	if status, jr := resolveCollectionDeltaJSON(t, hs.URL, "shops"); status != http.StatusOK || jr.State != JobCompleted {
		t.Fatalf("resolve = %d/%s (%s)", status, jr.State, jr.Error)
	}

	if status, _ := doJSON(t, http.MethodDelete, hs.URL+"/collections/shops", ""); status != http.StatusOK {
		t.Fatalf("drop = %d, want 200", status)
	}
	if status, _ := doJSON(t, http.MethodPost, hs.URL+"/collections", `{"name":"shops"}`); status != http.StatusCreated {
		t.Fatalf("recreate = %d, want 201", status)
	}
	if status, _ := doJSON(t, http.MethodPut, hs.URL+"/collections/shops/records/solo",
		`{"text":"one lonely record"}`); status != http.StatusOK {
		t.Fatalf("upsert = %d, want 200", status)
	}
	status, jr := resolveCollectionDeltaJSON(t, hs.URL, "shops")
	if status != http.StatusOK || jr.State != JobCompleted {
		t.Fatalf("resolve after recreate = %d/%s (%s)", status, jr.State, jr.Error)
	}
	if jr.Records != 1 || jr.Matches != 0 {
		t.Fatalf("recreated collection resolved %d records / %d matches, want 1/0", jr.Records, jr.Matches)
	}
}
