package serve

import (
	"sync"
	"sync/atomic"

	"repro/internal/wal"
)

// Recovery phases for the durable collections state. With no DataDir the
// server is born in recoveryNone (ephemeral collections, no journal);
// with one, it is born in recoveryRunning and a background replay moves
// it to recoveryReady or recoveryFailed. /readyz reports the phase so an
// orchestrator holds traffic until the state is rebuilt.
const (
	recoveryNone int32 = iota
	recoveryRunning
	recoveryReady
	recoveryFailed
)

// recoveryState tracks the background WAL replay and its outcome.
type recoveryState struct {
	phase atomic.Int32
	// done closes when the recovery goroutine finishes (either way); nil
	// when no recovery was started.
	done chan struct{}

	replayed         atomic.Int64
	snapshotRestored atomic.Bool
	tornTail         atomic.Bool
	truncatedBytes   atomic.Int64

	mu  sync.Mutex
	err error
}

func (s *Server) recoveryPhase() int32 { return s.recovery.phase.Load() }

func (s *Server) recoveryError() error {
	s.recovery.mu.Lock()
	defer s.recovery.mu.Unlock()
	return s.recovery.err
}

// startRecovery launches the background replay that rebuilds the
// collections from Options.DataDir. It runs under baseCtx, so a drain
// kill aborts a replay that outlives its server. The *Log is published
// before the phase flips to ready; handlers read it only after observing
// that phase, which is the ordering that makes the plain field safe.
func (s *Server) startRecovery() {
	s.recovery.done = make(chan struct{})
	s.recovery.phase.Store(recoveryRunning)
	o := s.opts
	go func() {
		defer close(s.recovery.done)
		l, rec, err := wal.Open(s.baseCtx, wal.Options{
			Dir:             o.DataDir,
			FS:              o.WALFS,
			MaxSegmentBytes: o.MaxSegmentBytes,
			FsyncInterval:   o.FsyncInterval,
			OnSnapshot: func(_ uint64, data []byte) error {
				s.recovery.snapshotRestored.Store(true)
				return s.cols.restoreJSON(data)
			},
			OnRecord: func(r wal.Record) error {
				if err := s.cols.apply(r); err != nil {
					return err
				}
				s.recovery.replayed.Add(1)
				return nil
			},
			Logf: o.Logf,
		})
		if err != nil {
			s.recovery.mu.Lock()
			s.recovery.err = err
			s.recovery.mu.Unlock()
			s.recovery.phase.Store(recoveryFailed)
			o.Logf("serve: durable-state recovery failed: %v", err)
			return
		}
		s.recovery.tornTail.Store(rec.TornTail)
		s.recovery.truncatedBytes.Store(rec.TruncatedBytes)
		s.walLog = l
		s.recovery.phase.Store(recoveryReady)
		cols, records := s.cols.counts()
		o.Logf("serve: durable state recovered: %d collection(s), %d record(s), snapshot=%v, replayed=%d, torn_tail=%v (%d byte(s) truncated)",
			cols, records, rec.SnapshotRestored, rec.Replayed, rec.TornTail, rec.TruncatedBytes)
	}()
}

// finishDurability runs at the tail of Shutdown, after the drain: wait
// out the recovery goroutine, write the final snapshot (so the next
// startup restores state without replaying the whole tail) and close the
// log. Failures are logged, not returned — the journal on disk is already
// sufficient for the next startup.
func (s *Server) finishDurability() {
	if s.recovery.done == nil {
		return
	}
	<-s.recovery.done
	if s.recoveryPhase() != recoveryReady {
		return
	}
	data, seq, err := s.snapshotWithSeq()
	if err != nil {
		s.opts.Logf("serve: final snapshot skipped: %v", err)
	} else if err := s.walLog.WriteSnapshot(data, seq); err != nil {
		// Includes wal.ErrSnapshotStale, the backstop should a mutation
		// ever slip past the drain: the snapshot is refused rather than
		// written covering a record its payload predates, and the journal
		// on disk still replays every acknowledged write.
		s.opts.Logf("serve: final snapshot failed: %v", err)
	} else {
		s.opts.Logf("serve: final snapshot written at seq %d", seq)
	}
	if err := s.walLog.Close(); err != nil {
		s.opts.Logf("serve: closing journal: %v", err)
	}
}

// recoveryPhaseName renders the phase for /readyz and /stats.
func recoveryPhaseName(phase int32) string {
	switch phase {
	case recoveryRunning:
		return "recovering"
	case recoveryReady:
		return "ready"
	case recoveryFailed:
		return "failed"
	default:
		return "disabled"
	}
}

// durabilityStats snapshots the durable-state layer for /stats; nil when
// no data directory is configured.
func (s *Server) durabilityStats() *DurabilityStats {
	phase := s.recoveryPhase()
	if phase == recoveryNone {
		return nil
	}
	d := &DurabilityStats{
		Phase:            recoveryPhaseName(phase),
		SnapshotRestored: s.recovery.snapshotRestored.Load(),
		ReplayedRecords:  s.recovery.replayed.Load(),
		TornTail:         s.recovery.tornTail.Load(),
		TruncatedBytes:   s.recovery.truncatedBytes.Load(),
	}
	if err := s.recoveryError(); err != nil {
		d.Error = err.Error()
	}
	if phase == recoveryReady {
		w := s.walLog.Stats()
		d.WAL = &w
	}
	return d
}
