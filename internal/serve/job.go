package serve

import (
	"context"
	"sync"
	"time"

	er "repro"
)

// JobState is the lifecycle position of one job. Every job reaches exactly
// one of the terminal states (completed, failed, shed).
type JobState string

const (
	// JobQueued: admitted, waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning: executing on a worker.
	JobRunning JobState = "running"
	// JobCompleted: terminal, resolved successfully.
	JobCompleted JobState = "completed"
	// JobFailed: terminal, ran (or was admitted) and produced an error.
	JobFailed JobState = "failed"
	// JobShed: terminal, dequeued but never run — its deadline could no
	// longer be met, or the server was draining.
	JobShed JobState = "shed"
)

// job is one admitted resolution request, from queue to terminal state.
type job struct {
	id      string
	class   string
	dataset *er.Dataset
	opts    er.Options
	probe   bool // admitted as a half-open breaker probe
	// run, when non-nil, replaces the configured Runner for this job (the
	// delta-scoped collection resolve path); dataset and opts then serve
	// only the response metadata.
	run func(ctx context.Context) (*er.Result, error)

	// ctx carries the job deadline and every cancellation source (client
	// gone, drain kill); cancel releases it with an explicit cause, and
	// cleanup tears down the whole context chain (client link, deadline,
	// cancel) at the terminal transition.
	ctx     context.Context
	cancel  context.CancelCauseFunc
	cleanup func()

	enqueuedAt time.Time
	// done is closed by the worker at the terminal transition; the waiting
	// handler (and tests) observe results only after it closes.
	done chan struct{}

	mu        sync.Mutex
	state     JobState
	result    *er.Result
	err       error
	queueWait time.Duration
	runTime   time.Duration
}

// setState transitions the job under its lock.
func (j *job) setState(s JobState) {
	j.mu.Lock()
	j.state = s
	j.mu.Unlock()
}

// view reads the job's mutable fields consistently.
func (j *job) view() (JobState, *er.Result, error, time.Duration, time.Duration) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.result, j.err, j.queueWait, j.runTime
}

// store retains jobs for /jobs/{id} lookups: every live job plus a bounded
// history of terminal ones, evicted oldest-first.
type store struct {
	mu    sync.Mutex
	cap   int
	jobs  map[string]*job
	order []string // insertion order, for eviction
}

func newStore(capacity int) *store {
	return &store{cap: capacity, jobs: make(map[string]*job)}
}

// add registers a job, evicting the oldest terminal job when over
// capacity. Live jobs are never evicted — their count is bounded by the
// queue depth plus the worker pool, both configured.
func (s *store) add(j *job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	for len(s.order) > s.cap {
		evicted := false
		for i, id := range s.order {
			old, ok := s.jobs[id]
			if !ok {
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
			st, _, _, _, _ := old.view()
			if st == JobCompleted || st == JobFailed || st == JobShed {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			break // everything retained is live; allow temporary overflow
		}
	}
}

// get looks a job up by ID.
func (s *store) get(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}
